package quake_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	quake "repro"
)

// TestObservabilityFacade exercises the telemetry surface end to end
// through the public API: enable collection, run distributed kernels,
// snapshot, analyze the window, and serve the HTTP endpoints.
func TestObservabilityFacade(t *testing.T) {
	s, err := quake.ScenarioByName("sf10")
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := quake.PartitionMesh(m, 4, quake.RCB, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := quake.Analyze(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	d, err := quake.NewDist(m, quake.SanFernando(), pt, pr)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	quake.SetTelemetry(true)
	defer quake.SetTelemetry(false)

	before := quake.MetricsSnapshotNow()
	x := make([]float64, 3*m.NumNodes())
	y := make([]float64, len(x))
	for i := range x {
		x[i] = 1
	}
	const iters = 4
	for i := 0; i < iters; i++ {
		if _, err := d.SMVP(y, x); err != nil {
			t.Fatal(err)
		}
	}
	cur := quake.MetricsSnapshotNow()

	w, ok := quake.AnalyzeWindow(cur, before)
	if !ok || w.Iters != iters {
		t.Fatalf("window: ok=%v iters=%d, want %d", ok, w.Iters, iters)
	}
	app := quake.AppProperties{F: pr.Fmax(), Cmax: pr.Cmax(), Bmax: pr.Bmax()}
	mp := quake.T3E()
	rep := quake.AnalyzeFlat(w, app, mp.Tl, mp.Tw)
	if rep.Compute.Lambda < 1 || rep.Drift.PredictedTc <= 0 {
		t.Fatalf("report: λ=%g predicted=%g", rep.Compute.Lambda, rep.Drift.PredictedTc)
	}

	// The flight ring saw the kernels' phase spans.
	if len(quake.FlightEvents()) == 0 {
		t.Error("flight recorder is empty after distributed kernels")
	}

	// HTTP surface.
	addr, shutdown, err := quake.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(context.Background())
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "par_smvp_calls") {
		t.Errorf("/metrics: code=%d, missing par_smvp_calls", resp.StatusCode)
	}
}
