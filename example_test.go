package quake_test

import (
	"fmt"

	quake "repro"
)

// The paper's running example: sf2 partitioned onto 128 subdomains
// (Figure 7). Equation (1) turns a target efficiency and a processor
// speed into a sustained bandwidth requirement.
func ExampleRequiredBandwidth() {
	app := quake.AppProperties{F: 838224, Cmax: 16260, Bmax: 50}
	bw := quake.RequiredBandwidth(app, 0.9, 5e-9) // E=0.9 at 200 MFLOPS
	fmt.Printf("sustained per-PE bandwidth: %.0f MB/s\n", quake.MBps(bw))
	// Output:
	// sustained per-PE bandwidth: 279 MB/s
}

// Equation (2) composes block latency and burst bandwidth into the
// sustained rate a machine actually delivers, and hence an efficiency.
func ExampleEfficiency() {
	app := quake.AppProperties{F: 838224, Cmax: 16260, Bmax: 50}
	t3e := quake.T3E() // measured: Tf=14ns, Tl=22µs, Tw=55ns
	e := quake.Efficiency(app, t3e.Tf, t3e.Tl, t3e.Tw)
	fmt.Printf("sf2/128 on the Cray T3E: %.0f%% efficient\n", 100*e)
	// Output:
	// sf2/128 on the Cray T3E: 85% efficient
}

// The half-bandwidth design rule (Figure 11): pick the point where
// block latency and burst bandwidth each cost half the exchange.
func ExampleHalfBandwidthPoint() {
	app := quake.AppProperties{F: 838224, Cmax: 16260, Bmax: 50}
	bw, lat := quake.HalfBandwidthPoint(app, 0.9, 5e-9)
	fmt.Printf("burst %.0f MB/s at %.1f µs block latency\n", quake.MBps(bw), lat*1e6)
	fixed := app.WithFixedBlocks(4) // cache-line transfers
	_, latFixed := quake.HalfBandwidthPoint(fixed, 0.9, 5e-9)
	fmt.Printf("with 4-word blocks: %.0f ns\n", latFixed*1e9)
	// Output:
	// burst 559 MB/s at 4.7 µs block latency
	// with 4-word blocks: 57 ns
}

// Building a mesh and asking for its communication profile.
func ExamplePartitionMesh() {
	m, err := quake.SF10.Mesh()
	if err != nil {
		fmt.Println(err)
		return
	}
	pt, err := quake.PartitionMesh(m, 16, quake.RCB, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	pr, err := quake.Analyze(m, pt)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("sf10 on 16 PEs: C_max=%d words, B_max=%d blocks, beta=%.2f\n",
		pr.Cmax(), pr.Bmax(), pr.Beta())
	// Output:
	// sf10 on 16 PEs: C_max=2028 words, B_max=16 blocks, beta=1.00
}

// A dot product on a parallel machine is an allreduce — nearly pure
// block latency, the communication implicit solvers add and the Quake
// applications' explicit scheme avoids.
func ExampleAllReduceTime() {
	t3e := quake.T3E()
	t := quake.AllReduceTime(128, 1, t3e.Tl, t3e.Tw)
	fmt.Printf("single-word allreduce over 128 PEs: %.0f µs\n", t*1e6)
	// Output:
	// single-word allreduce over 128 PEs: 309 µs
}
