// Package quake is a reproduction, as a reusable Go library, of the
// system described in "Architectural Implications of a Family of
// Irregular Applications" (O'Hallaron, Shewchuk, Gross; HPCA 1998).
//
// The paper characterizes a family of unstructured finite element
// earthquake simulations — the Quake applications sf10, sf5, sf2, sf1 —
// whose running time is dominated by a repeated sparse matrix-vector
// product (SMVP), and derives from them the bandwidth and latency that
// the communication systems of parallel machines must deliver as
// processors get faster.
//
// This module rebuilds the full pipeline:
//
//   - graded unstructured tetrahedral meshes of a layered basin model
//     (internal/octree, internal/mesh, internal/material),
//   - geometric partitioning onto processing elements and the induced
//     communication profile F, C_max, B_max, M_avg, m_ij, β
//     (internal/partition),
//   - sparse 3×3-block stiffness matrices and Spark98-style SMVP
//     kernels (internal/sparse, internal/fem),
//   - a real parallel SMVP runtime on goroutine PEs and a
//     discrete-event machine simulator (internal/par, internal/comm,
//     internal/machine),
//   - the paper's performance models, Equations (1) and (2), and the
//     derived requirement sweeps of Figures 8-11 (internal/model,
//     internal/quake).
//
// The root package re-exports the pieces a downstream user needs; the
// cmd/ tools and examples/ programs exercise it end to end, and the
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation (see EXPERIMENTS.md).
package quake
