// Network and ordering ablations: the torus-contention check of the
// paper's infinite-capacity network assumption (Section 3.3), and the
// node-ordering locality study in the spirit of Spark98.
package quake_test

import (
	"fmt"
	"math/rand"
	"testing"

	quake "repro"
	"repro/internal/comm"
	"repro/internal/fem"
	"repro/internal/machine"
	"repro/internal/mesh"
	"repro/internal/network"
	"repro/internal/partition"
	"repro/internal/report"
)

// BenchmarkAblationTorusContention runs the sf5/64 exchange over a
// 4×4×4 torus with dimension-ordered routing and finite link bandwidth,
// versus the infinite-capacity model. At link bandwidths comparable to
// the per-PE requirement, contention barely moves the exchange time —
// the paper's justification for modeling only the PE-side costs.
func BenchmarkAblationTorusContention(b *testing.B) {
	m, err := quake.SF5.Mesh()
	if err != nil {
		b.Fatal(err)
	}
	pt, err := partition.PartitionMesh(m, 64, partition.RCB, 1)
	if err != nil {
		b.Fatal(err)
	}
	pr, err := partition.Analyze(m, pt)
	if err != nil {
		b.Fatal(err)
	}
	sched, err := comm.FromMatrix(pr.Msg)
	if err != nil {
		b.Fatal(err)
	}
	tor, err := network.NewTorus(64)
	if err != nil {
		b.Fatal(err)
	}
	t3e := machine.T3E()
	tab := report.New("Ablation: torus link contention (sf5/64, T3E, 4x4x4 DOR torus)",
		"link MB/s", "exchange time", "vs infinite", "max link busy", "max hops")
	var slowAt300 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Rows = tab.Rows[:0]
		free, err := network.Simulate(sched, t3e, tor, network.Config{HopLatency: 100e-9})
		if err != nil {
			b.Fatal(err)
		}
		for _, mbps := range []float64{0, 1000, 600, 300, 100, 30, 10} {
			cfg := network.Config{LinkBytesPerSec: mbps * 1e6, HopLatency: 100e-9}
			res, err := network.Simulate(sched, t3e, tor, cfg)
			if err != nil {
				b.Fatal(err)
			}
			label := fmt.Sprint(mbps)
			if mbps == 0 {
				label = "inf"
			}
			ratio := res.CommTime / free.CommTime
			if mbps == 300 {
				slowAt300 = ratio
			}
			tab.AddRow(label, report.SI(res.CommTime, "s"), report.F(ratio, 3),
				report.SI(res.MaxLinkBusy, "s"), fmt.Sprint(res.MaxHops))
		}
		saveTable(b, "ablation_torus", tab)
	}
	b.ReportMetric(slowAt300, "slowdown@300MB/s")
}

// BenchmarkAblationOrdering measures what node numbering does to SMVP
// throughput: the mesher's native ordering, reverse Cuthill-McKee, and
// a random shuffle, on the sf5 stiffness matrix.
func BenchmarkAblationOrdering(b *testing.B) {
	base, err := quake.SF5.Mesh()
	if err != nil {
		b.Fatal(err)
	}
	rcmPerm := base.RCMOrder()
	rcmMesh, err := base.Permute(rcmPerm)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	randPerm := make([]int32, base.NumNodes())
	for i := range randPerm {
		randPerm[i] = int32(i)
	}
	rng.Shuffle(len(randPerm), func(i, j int) { randPerm[i], randPerm[j] = randPerm[j], randPerm[i] })
	randMesh, err := base.Permute(randPerm)
	if err != nil {
		b.Fatal(err)
	}

	variants := []struct {
		name string
		m    *mesh.Mesh
	}{
		{"native", base},
		{"rcm", rcmMesh},
		{"random", randMesh},
	}
	tab := report.New("Ablation: node ordering (sf5)", "ordering", "avg |i-j|", "max |i-j|", "MFLOPS")
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			sys, err := fem.Assemble(v.m, quake.SanFernando())
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, 3*v.m.NumNodes())
			y := make([]float64, 3*v.m.NumNodes())
			for i := range x {
				x[i] = float64(i%7) * 0.3
			}
			flops := float64(2 * sys.K.NNZ())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.K.MulVec(y, x)
			}
			b.StopTimer()
			mflops := flops / (b.Elapsed().Seconds() / float64(b.N)) / 1e6
			b.ReportMetric(mflops, "MFLOPS")
			b.ReportMetric(v.m.AvgBandwidth(), "avg|i-j|")
			tab.AddRow(v.name, report.F(v.m.AvgBandwidth(), 0),
				report.Int(int64(v.m.Bandwidth())), report.F(mflops, 0))
			saveTable(b, "ablation_ordering_"+v.name, tab)
		})
	}
}

// BenchmarkTorusVsModel cross-checks three fidelity levels on sf5
// across PE counts: the closed-form model (Eq. 2 inputs), the
// infinite-network discrete sim, and the contended torus.
func BenchmarkTorusVsModel(b *testing.B) {
	m, err := quake.SF5.Mesh()
	if err != nil {
		b.Fatal(err)
	}
	t3e := machine.T3E()
	tab := report.New("Validation: model vs infinite-net sim vs contended torus (sf5, T3E, 300 MB/s links)",
		"PEs", "model", "sim", "torus", "torus/model")
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Rows = tab.Rows[:0]
		worst = 0
		for _, p := range []int{8, 27, 64, 125} {
			pt, err := partition.PartitionMesh(m, p, partition.RCB, 1)
			if err != nil {
				b.Fatal(err)
			}
			pr, err := partition.Analyze(m, pt)
			if err != nil {
				b.Fatal(err)
			}
			sched, err := comm.FromMatrix(pr.Msg)
			if err != nil {
				b.Fatal(err)
			}
			tor, err := network.NewTorus(p)
			if err != nil {
				b.Fatal(err)
			}
			modelT := machine.ModelCommTime(sched, t3e)
			simT := machine.Simulate(sched, t3e, machine.NetworkConfig{Transit: 1e-6}).CommTime
			torRes, err := network.Simulate(sched, t3e, tor,
				network.Config{LinkBytesPerSec: 300e6, HopLatency: 100e-9})
			if err != nil {
				b.Fatal(err)
			}
			ratio := torRes.CommTime / modelT
			if ratio > worst {
				worst = ratio
			}
			tab.AddRow(fmt.Sprint(p), report.SI(modelT, "s"), report.SI(simT, "s"),
				report.SI(torRes.CommTime, "s"), report.F(ratio, 3))
		}
		saveTable(b, "validation_torus", tab)
	}
	b.ReportMetric(worst, "worstTorus/Model")
}

// BenchmarkMeshGeneration measures the mesher's throughput end to end:
// octree build + conforming tetrahedralization for the sf5 scenario.
func BenchmarkMeshGeneration(b *testing.B) {
	var elems int
	for i := 0; i < b.N; i++ {
		m, err := quake.SF5.Build()
		if err != nil {
			b.Fatal(err)
		}
		elems = m.NumElems()
	}
	b.ReportMetric(float64(elems)/b.Elapsed().Seconds()*float64(b.N), "elems/s")
}

// BenchmarkSmoothing measures guarded Laplacian smoothing and reports
// the quality change it buys on a fresh sf10-scale mesh.
func BenchmarkSmoothing(b *testing.B) {
	var before, after float64
	for i := 0; i < b.N; i++ {
		m, err := quake.SF10.Build() // fresh: smoothing mutates coordinates
		if err != nil {
			b.Fatal(err)
		}
		before = m.ComputeStats().MaxAspect
		m.Smooth(3, 0.5)
		after = m.ComputeStats().MaxAspect
	}
	b.ReportMetric(before, "aspectBefore")
	b.ReportMetric(after, "aspectAfter")
}
