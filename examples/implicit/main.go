// Implicit contrasts the Quake applications' explicit time stepping
// with an implicit alternative: it solves a static (shifted) system
// K + σM with preconditioned conjugate gradients, counts the dot
// products the solve performs, and uses the paper's machine parameters
// to show what those global reductions would cost on a parallel
// machine. Explicit stepping needs zero allreduces per step; CG needs
// several per iteration, each an almost-pure block-latency operation —
// reinforcing the paper's conclusion that latency is the scarce
// resource.
//
//	go run ./examples/implicit
package main

import (
	"fmt"
	"log"

	quake "repro"
)

func main() {
	s := quake.SF10
	m, err := s.Mesh()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := quake.Assemble(m, quake.SanFernando())
	if err != nil {
		log.Fatal(err)
	}
	n := 3 * m.NumNodes()
	fmt.Printf("%s: solving (K + σM)u = f with %d unknowns\n", s.Name, n)

	// A static surface load over the basin center.
	a := quake.ShiftedOperator{K: sys.K, MassNode: sys.MassNode, Sigma: 25}
	b := make([]float64, n)
	load := sys.NearestNode(quake.Vec3{X: 25, Y: 25, Z: 0})
	b[3*load+2] = 1e3

	diag := a.Diagonal()
	inv := make([]float64, n)
	for i, d := range diag {
		inv[i] = 1 / d
	}
	x := make([]float64, n)
	res, err := quake.SolveCG(a, b, x, quake.CGConfig{MaxIter: 5000, Tol: 1e-8, Precondition: inv})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CG converged=%v in %d iterations (%d SMVPs, %d dot products), residual %.2g\n",
		res.Converged, res.Iterations, res.SMVPs, res.DotProducts, res.Residual)

	// What would those dot products cost on the paper's machines?
	rows, err := quake.Properties(s, quake.PECounts, quake.RCB)
	if err != nil {
		log.Fatal(err)
	}
	t3e := quake.T3E()
	dotsPerIter := float64(res.DotProducts) / float64(res.Iterations)
	fmt.Printf("\nper CG iteration on the %s (%.1f allreduces/iter):\n", t3e.Name, dotsPerIter)
	fmt.Printf("%-6s %14s %14s %18s\n", "PEs", "explicit step", "implicit step", "allreduce share")
	for _, r := range rows {
		app := r.App()
		step, frac := quake.ImplicitStep(app, r.P, int(dotsPerIter+0.5), t3e.Tf, t3e.Tl, t3e.Tw)
		exp := float64(app.F)*t3e.Tf + float64(app.Bmax)*t3e.Tl + float64(app.Cmax)*t3e.Tw
		fmt.Printf("%-6d %11.2f µs %11.2f µs %17.1f%%\n",
			r.P, exp*1e6, step*1e6, 100*frac)
	}
	fmt.Println("\neach single-word allreduce is ~pure block latency: the resource")
	fmt.Println("the paper says will be scarcest. Explicit stepping avoids it entirely.")
}
