// Waveprop simulates an earthquake: a Ricker-wavelet point source at
// depth under the San Fernando basin, integrated with the explicit
// central-difference scheme, with seismograms recorded at the surface.
// It prints an ASCII seismogram and the SMVP share of the run time —
// the measurement behind the paper's claim that the SMVP dominates.
//
//	go run ./examples/waveprop
package main

import (
	"fmt"
	"log"
	"strings"

	quake "repro"
)

func main() {
	s := quake.SF10
	m, err := s.Mesh()
	if err != nil {
		log.Fatal(err)
	}
	mat := quake.SanFernando()
	sys, err := quake.Assemble(m, mat)
	if err != nil {
		log.Fatal(err)
	}
	// Lysmer dampers on the lateral and bottom boundaries keep the
	// outgoing wavefield from reflecting back into the basin (z = 0 is
	// the free surface).
	absorbers, err := quake.BuildAbsorbingDampers(sys, mat, 0)
	if err != nil {
		log.Fatal(err)
	}
	dt := sys.StableDt(0.5)
	steps := 600
	fmt.Printf("%s: %d nodes; dt=%.1f ms, %d steps = %.1f s of ground motion\n",
		s.Name, m.NumNodes(), dt*1e3, steps, dt*float64(steps))

	// Source at 6 km depth under the basin; receivers on the surface at
	// increasing distance from the epicenter.
	epicenter := quake.Vec3{X: 25, Y: 25, Z: 0}
	receivers := []quake.Vec3{
		{X: 25, Y: 25, Z: 0},
		{X: 32, Y: 25, Z: 0},
		{X: 40, Y: 25, Z: 0},
		{X: 48, Y: 25, Z: 0},
	}
	var rcv []int32
	for _, p := range receivers {
		rcv = append(rcv, sys.NearestNode(p))
	}
	res, err := sys.Run(quake.SimConfig{
		Dt:    dt,
		Steps: steps,
		Source: quake.PointSource{
			Location:  quake.Vec3{X: 25, Y: 25, Z: 6},
			Direction: quake.Vec3{Z: 1},
			Amplitude: 2e3,
			PeakFreq:  1 / s.Period,
			Delay:     1.2 * s.Period,
		},
		Receivers: rcv,
		Absorbers: absorbers,
	})
	if err != nil {
		log.Fatal(err)
	}

	for r, p := range receivers {
		fmt.Printf("\nreceiver %d at %.0f km from epicenter:\n", r, p.Dist(epicenter))
		printSeismogram(res.Seismograms[r], dt)
	}
	fmt.Printf("\nSMVP consumed %.1f%% of the run (paper: over 80%%); sustained %.0f MFLOPS\n",
		100*res.SMVPShare(), float64(res.FlopsSMVP)/res.SMVPSeconds/1e6)
}

// printSeismogram renders |u|(t) as a small ASCII strip chart.
func printSeismogram(u []float64, dt float64) {
	const cols = 64
	peak := 0.0
	for _, v := range u {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		fmt.Println("  (no motion)")
		return
	}
	step := len(u) / 8
	for i := 0; i < len(u); i += step {
		bar := int(u[i] / peak * cols)
		fmt.Printf("  t=%5.1fs |%s%s| %.3g\n",
			float64(i)*dt, strings.Repeat("#", bar), strings.Repeat(" ", cols-bar), u[i])
	}
	fmt.Printf("  peak |u| = %.3g\n", peak)
}
