// Partitionstudy quantifies how much the partitioner matters: it
// partitions the sf5 mesh onto 32 PEs with every method in the library,
// compares the induced communication (C_max, B_max, β, bisection
// volume), and translates the difference into modeled efficiency on the
// measured Cray T3E. Geometric bisection's O(n^(2/3)) interfaces are
// what make the paper's computation/communication ratios possible.
//
//	go run ./examples/partitionstudy
package main

import (
	"fmt"
	"log"

	quake "repro"
)

func main() {
	s := quake.SF5
	m, err := s.Mesh()
	if err != nil {
		log.Fatal(err)
	}
	const p = 32
	t3e := quake.T3E()
	fmt.Printf("partitioning %s (%d elements) onto %d PEs\n\n", s.Name, m.NumElems(), p)
	fmt.Printf("%-10s %10s %8s %6s %6s %12s %10s %8s\n",
		"method", "C_max", "B_max", "β", "imbal", "shared nodes", "bisection", "E(T3E)")

	methods := []quake.Method{quake.RCB, quake.Inertial, quake.StripesZ, quake.Linear, quake.Random}
	var rcbCmax int64
	for _, method := range methods {
		pt, err := quake.PartitionMesh(m, p, method, 42)
		if err != nil {
			log.Fatal(err)
		}
		pr, err := quake.Analyze(m, pt)
		if err != nil {
			log.Fatal(err)
		}
		app := quake.AppProperties{F: pr.Fmax(), Cmax: pr.Cmax(), Bmax: pr.Bmax()}
		e := quake.Efficiency(app, t3e.Tf, t3e.Tl, t3e.Tw)
		fmt.Printf("%-10v %10d %8d %6.2f %6.2f %12d %10d %8.3f\n",
			method, pr.Cmax(), pr.Bmax(), pr.Beta(), pr.LoadImbalance(),
			pr.SharedNodes, pr.BisectionWords(), e)
		if method == quake.RCB {
			rcbCmax = pr.Cmax()
		}
	}

	fmt.Println("\nsurface-to-volume scaling of geometric bisection (RCB):")
	fmt.Printf("%-6s %10s %12s %14s\n", "PEs", "C_max", "F/C_max", "C_max·p^(-2/3)·…")
	rows, err := quake.Properties(s, quake.PECounts, quake.RCB)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%-6d %10d %12.0f\n", r.P, r.Cmax, r.Ratio)
	}
	_ = rcbCmax
	fmt.Println("\nF/C_max shrinks only ~2x per 10x problem growth (O(n^(1/3))):")
	for _, sc := range []quake.Scenario{quake.SF10, quake.SF5} {
		rows, err := quake.Properties(sc, []int{32}, quake.RCB)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s/32: F/C_max = %.0f\n", sc.Name, rows[0].Ratio)
	}
}
