// Netdesign plays communication-system architect, the way Section 4 of
// the paper does: given a target efficiency and the sustained MFLOPS of
// future processors, it derives the sustained bandwidth, burst
// bandwidth, and block latency the network must deliver across the sf5
// SMVP sweep, in both block regimes, and checks each machine preset
// against the requirement.
//
//	go run ./examples/netdesign
package main

import (
	"fmt"
	"log"

	quake "repro"
)

func main() {
	const (
		targetE = 0.9
		tf      = 5e-9 // 200-MFLOP PEs, the paper's "future" machine
	)
	s := quake.SF5
	rows, err := quake.Properties(s, quake.PECounts, quake.RCB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network requirements for %s at E=%.0f%% on %.0f-MFLOP PEs\n\n",
		s.Name, targetE*100, quake.MFLOPS(tf))

	fmt.Printf("%-6s %-14s %-22s %-22s\n", "PEs", "sustained MB/s",
		"maximal blocks (bw,lat)", "4-word blocks (bw,lat)")
	var worstBW, worstLat float64
	worstLat = 1e9
	for _, r := range rows {
		app := r.App()
		sustained := quake.MBps(quake.RequiredBandwidth(app, targetE, tf))
		bwMax, latMax := quake.HalfBandwidthPoint(app, targetE, tf)
		bwFix, latFix := quake.HalfBandwidthPoint(app.WithFixedBlocks(4), targetE, tf)
		fmt.Printf("%-6d %-14.0f %7.0f MB/s %8.2fµs %7.0f MB/s %8.0fns\n",
			r.P, sustained,
			quake.MBps(bwMax), latMax*1e6,
			quake.MBps(bwFix), latFix*1e9)
		if b := quake.MBps(bwMax); b > worstBW {
			worstBW = b
		}
		if latMax < worstLat {
			worstLat = latMax
		}
	}
	fmt.Printf("\ndesign point: burst bandwidth ≥ %.0f MB/s with block latency ≤ %.1f µs\n",
		worstBW, worstLat*1e6)

	// Score the presets against the hardest instance.
	hardest := rows[len(rows)-1].App()
	fmt.Printf("\nhow the presets fare on %s/%d:\n", s.Name, rows[len(rows)-1].P)
	for _, m := range []quake.MachineParams{quake.T3D(), quake.T3E(), quake.Current100(), quake.Future200()} {
		e := quake.Efficiency(hardest, m.Tf, m.Tl, m.Tw)
		verdict := "MISSES the 90% target"
		if e >= targetE {
			verdict = "meets the 90% target"
		}
		fmt.Printf("  %-18s E=%.3f  %s\n", m.Name, e, verdict)
	}

	// Latency sensitivity: how efficiency degrades as block latency
	// grows with everything else held at the future machine's values.
	fmt.Println("\nlatency sensitivity on the future machine (sf5/128, maximal blocks):")
	base := quake.Future200()
	for _, tl := range []float64{0, 1e-6, 2e-6, 5e-6, 10e-6, 22e-6, 60e-6} {
		e := quake.Efficiency(hardest, base.Tf, tl, base.Tw)
		fmt.Printf("  T_l = %6.1f µs -> E = %.3f\n", tl*1e6, e)
	}
	fmt.Println("\nblock latency, not bandwidth, is the cliff — the paper's conclusion.")
}
