// Quickstart: build a Quake mesh, partition it, and ask the paper's
// question — what communication system does it need?
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	quake "repro"
)

func main() {
	// 1. Build the sf10 mesh: a graded unstructured tetrahedral model
	// of the San Fernando valley resolving 10-second waves.
	s := quake.SF10
	m, err := s.Mesh()
	if err != nil {
		log.Fatal(err)
	}
	st := m.ComputeStats()
	fmt.Printf("%s: %d nodes, %d elements, %d edges (avg %.1f neighbors/node)\n",
		s.Name, st.Nodes, st.Elems, st.Edges, st.AvgDegree)

	// 2. Partition it onto 16 PEs with recursive coordinate bisection
	// and analyze the communication the partition induces.
	pt, err := quake.PartitionMesh(m, 16, quake.RCB, 1)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := quake.Analyze(m, pt)
	if err != nil {
		log.Fatal(err)
	}
	app := quake.AppProperties{F: pr.Fmax(), Cmax: pr.Cmax(), Bmax: pr.Bmax()}
	fmt.Printf("on 16 PEs: F=%d flops/PE, C_max=%d words, B_max=%d blocks, F/C_max=%.0f, β=%.2f\n",
		app.F, app.Cmax, app.Bmax, pr.CompCommRatio(), pr.Beta())

	// 3. Equation (1): the sustained per-PE bandwidth needed to run
	// this SMVP at 90% efficiency on 200-MFLOP PEs.
	bw := quake.RequiredBandwidth(app, 0.9, 5e-9)
	fmt.Printf("sustained bandwidth for E=0.9 at 200 MFLOPS: %.0f MB/s per PE\n", quake.MBps(bw))

	// 4. Equation (2): what the measured Cray T3E delivers, and the
	// efficiency that implies.
	t3e := quake.T3E()
	e := quake.Efficiency(app, t3e.Tf, t3e.Tl, t3e.Tw)
	fmt.Printf("modeled efficiency on the %s (T_f=%.0fns, T_l=%.0fµs, T_w=%.0fns): %.1f%%\n",
		t3e.Name, t3e.Tf*1e9, t3e.Tl*1e6, t3e.Tw*1e9, 100*e)

	// 5. Run the SMVP for real on goroutine PEs and confirm the
	// distributed result matches the sequential one.
	mat := quake.SanFernando()
	sys, err := quake.Assemble(m, mat)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := quake.NewDist(m, mat, pt, pr)
	if err != nil {
		log.Fatal(err)
	}
	defer dist.Close()
	x := make([]float64, 3*m.NumNodes())
	for i := range x {
		x[i] = float64(i%5) * 0.3
	}
	seq := make([]float64, len(x))
	sys.K.MulVec(seq, x)
	par := make([]float64, len(x))
	if _, err := dist.SMVP(par, x); err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for i := range seq {
		if d := abs(par[i] - seq[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("distributed SMVP matches sequential within %.2g\n", maxDiff)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
