package quake_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	quake "repro"
)

// TestFacadeEndToEnd drives the whole public API once on the smallest
// scenario: mesh, partition, profile, models, schedule, simulator,
// distributed runtime, and the figure tables.
func TestFacadeEndToEnd(t *testing.T) {
	s, err := quake.ScenarioByName("sf10")
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() < 1000 {
		t.Fatalf("suspiciously small mesh: %d nodes", m.NumNodes())
	}

	pt, err := quake.PartitionMesh(m, 8, quake.RCB, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := quake.Analyze(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	app := quake.AppProperties{F: pr.Fmax(), Cmax: pr.Cmax(), Bmax: pr.Bmax()}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}

	// Models.
	bw := quake.RequiredBandwidth(app, 0.9, 5e-9)
	if quake.MBps(bw) <= 0 {
		t.Error("non-positive bandwidth requirement")
	}
	t3e := quake.T3E()
	e := quake.Efficiency(app, t3e.Tf, t3e.Tl, t3e.Tw)
	if e <= 0 || e >= 1 {
		t.Errorf("efficiency = %g", e)
	}
	hbw, hlat := quake.HalfBandwidthPoint(app, 0.9, 5e-9)
	if hbw <= 0 || hlat <= 0 {
		t.Error("bad half-bandwidth point")
	}

	// Exchange schedule and discrete simulation.
	sched, err := quake.ScheduleFromProfile(pr)
	if err != nil {
		t.Fatal(err)
	}
	res := quake.SimulateExchange(sched, t3e, quake.NetworkConfig{Transit: 1e-6})
	if res.CommTime <= 0 {
		t.Error("no simulated exchange time")
	}

	// Real distributed SMVP against the sequential kernel.
	mat := quake.SanFernando()
	sys, err := quake.Assemble(m, mat)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := quake.NewDist(m, mat, pt, pr)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 3*m.NumNodes())
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	seq := make([]float64, len(x))
	sys.K.MulVec(seq, x)
	par := make([]float64, len(x))
	tm, err := dist.SMVP(par, x)
	if err != nil {
		t.Fatal(err)
	}
	if tm.MaxCompute() <= 0 {
		t.Error("no compute time")
	}
	for i := range seq {
		if math.Abs(par[i]-seq[i]) > 1e-9*(1+math.Abs(seq[i])) {
			t.Fatalf("distributed mismatch at %d: %g vs %g", i, par[i], seq[i])
		}
	}

	// Symmetric kernel agrees too.
	sym, err := quake.NewSym(sys.K)
	if err != nil {
		t.Fatal(err)
	}
	ys := make([]float64, len(x))
	sym.MulVec(ys, x)
	for i := range seq {
		if math.Abs(ys[i]-seq[i]) > 1e-9*(1+math.Abs(seq[i])) {
			t.Fatalf("sym mismatch at %d", i)
		}
	}

	// Host T_f measurement.
	if tf := quake.MeasureTf(sys.K, 2); tf <= 0 {
		t.Error("bad measured Tf")
	}
}

func TestFacadeTables(t *testing.T) {
	small := []quake.Scenario{quake.SF10}
	pcs := []int{4, 8}
	if _, err := quake.Fig2Table(small); err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func() (*quake.Table, error){
		"fig6":  func() (*quake.Table, error) { return quake.Fig6Table(small, pcs, quake.RCB) },
		"fig7":  func() (*quake.Table, error) { return quake.Fig7Table(small, pcs, quake.RCB) },
		"fig8":  func() (*quake.Table, error) { return quake.Fig8Table(quake.SF10, pcs, quake.RCB) },
		"fig9":  func() (*quake.Table, error) { return quake.Fig9Table(quake.SF10, pcs, quake.RCB) },
		"fig11": func() (*quake.Table, error) { return quake.Fig11Table(quake.SF10, pcs, quake.RCB) },
	} {
		tab, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var sb strings.Builder
		if err := tab.Render(&sb); err != nil {
			t.Fatalf("%s render: %v", name, err)
		}
		if len(sb.String()) < 50 {
			t.Errorf("%s output too short", name)
		}
	}
	rows, err := quake.Properties(quake.SF10, pcs, quake.RCB)
	if err != nil {
		t.Fatal(err)
	}
	tab := quake.Fig10Table(rows[1], 5e-9, []float64{10, 100})
	if len(tab.Rows) == 0 {
		t.Error("fig10 empty")
	}
}

func TestFamilyAndPresets(t *testing.T) {
	if got := quake.Family(false); len(got) != 4 || got[3].Name != "sf1s" {
		t.Errorf("Family(false) = %v", got)
	}
	if got := quake.Family(true); got[3].Name != "sf1" {
		t.Errorf("Family(true) = %v", got)
	}
	if len(quake.PECounts) != 6 || quake.PECounts[0] != 4 || quake.PECounts[5] != 128 {
		t.Errorf("PECounts = %v", quake.PECounts)
	}
	for _, m := range []quake.MachineParams{quake.T3D(), quake.T3E(), quake.Current100(), quake.Future200()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	if _, err := quake.ScenarioByName("bogus"); err == nil {
		t.Error("bogus scenario accepted")
	}
}

// TestFacadeExtensions drives the extension surface of the facade:
// absorbers, the distributed application, the torus simulator, the
// spark suite, and the distributed CG operator.
func TestFacadeExtensions(t *testing.T) {
	m, err := quake.SF10.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	mat := quake.SanFernando()
	sys, err := quake.Assemble(m, mat)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := quake.BuildAbsorbingDampers(sys, mat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Faces == 0 {
		t.Fatal("no absorber faces")
	}

	pt, err := quake.PartitionMesh(m, 4, quake.Multilevel, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := quake.Analyze(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := quake.NewDist(m, mat, pt, pr)
	if err != nil {
		t.Fatal(err)
	}
	dsim, err := quake.NewDistSim(dist, sys.MassNode, ab)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dsim.Run(m.Coords, quake.SimConfig{
		Dt:    sys.StableDt(0.5),
		Steps: 20,
		Source: quake.PointSource{
			Location: quake.Vec3{X: 25, Y: 25, Z: 5}, Direction: quake.Vec3{Z: 1},
			Amplitude: 1, PeakFreq: 0.1, Delay: 12,
		},
		Absorbers: ab,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 20 || res.ComputeSeconds <= 0 {
		t.Errorf("distributed run: %+v", res)
	}

	// Torus simulation through the facade.
	sched, err := quake.ScheduleFromProfile(pr)
	if err != nil {
		t.Fatal(err)
	}
	tor, err := quake.NewTorus(4)
	if err != nil {
		t.Fatal(err)
	}
	tres, err := quake.SimulateTorus(sched, quake.T3E(), tor, quake.TorusConfig{LinkBytesPerSec: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if tres.CommTime <= 0 {
		t.Error("no torus comm time")
	}

	// Spark suite and overlapped kernel.
	suite, err := quake.NewSparkSuite(sys.K)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 3*m.NumNodes())
	y1 := make([]float64, len(x))
	y2 := make([]float64, len(x))
	for i := range x {
		x[i] = float64(i % 3)
	}
	suite.BMV(y1, x)
	suite.RMV(y2, x, 2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-9*(1+math.Abs(y1[i])) {
			t.Fatal("spark kernels disagree via facade")
		}
	}
	if _, err := dist.SMVPOverlapped(y2, x); err != nil {
		t.Fatal(err)
	}

	// Distributed CG through the facade.
	op := quake.DistOperator{D: dist, Shift: 30, MassNode: sys.MassNode}
	b := make([]float64, op.Dim())
	b[0] = 1
	sol := make([]float64, op.Dim())
	cg, err := quake.SolveCG(op, b, sol, quake.CGConfig{MaxIter: 2000, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if !cg.Converged {
		t.Error("facade CG did not converge")
	}

	// Overlap and implicit models.
	o := quake.OverlapModel{App: quake.AppProperties{F: pr.Fmax(), Cmax: pr.Cmax(), Bmax: pr.Bmax()},
		FBoundary: pr.FBoundaryMax()}
	t3e := quake.T3E()
	if s := o.Speedup(t3e.Tf, t3e.Tl, t3e.Tw); s < 1 || s > 2 {
		t.Errorf("overlap speedup %g", s)
	}
	if step, _ := quake.ImplicitStep(o.App, 4, 3, t3e.Tf, t3e.Tl, t3e.Tw); step <= 0 {
		t.Error("implicit step non-positive")
	}
}

// TestFacadeReliability drives the fault-injection surface through the
// public API: plan parsing round-trips, a corruption plan is armed and
// healed by SolveCG's self-correction, and a dead PE poisons the Dist
// with an ErrDistPoisoned-matchable error.
func TestFacadeReliability(t *testing.T) {
	plan, err := quake.ParseFaultPlan("seed:3;corrupt:pe=1->0,iter=4,bit=62")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := quake.ParseFaultPlan(plan.String())
	if err != nil || rt.String() != plan.String() {
		t.Fatalf("plan does not round-trip: %q vs %q (%v)", rt, plan, err)
	}
	if _, err := quake.ParseFaultPlan("corrupt:pe=-1"); err == nil {
		t.Fatal("malformed plan accepted")
	}

	m, err := quake.SF10.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	mat := quake.SanFernando()
	sys, err := quake.Assemble(m, mat)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := quake.PartitionMesh(m, 4, quake.RCB, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := quake.Analyze(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := quake.NewDist(m, mat, pt, pr)
	if err != nil {
		t.Fatal(err)
	}
	defer dist.Close()

	in, err := dist.InjectFaults(plan)
	if err != nil {
		t.Fatal(err)
	}
	op := quake.DistOperator{D: dist, Shift: 20, MassNode: sys.MassNode}
	n := op.Dim()
	b := make([]float64, n)
	b[3] = 1e2
	x := make([]float64, n)
	res, err := quake.SolveCG(op, b, x, quake.CGConfig{
		MaxIter: 4 * n, Tol: 1e-8, CheckEvery: 5, MaxRecoveries: 8,
	})
	if err != nil || !res.Converged {
		t.Fatalf("healing solve through facade: %+v err=%v", res, err)
	}
	if in.Count(quake.FaultKind(0)) < 1 { // Corrupt is kind 0
		t.Fatalf("no corruption injected: total %d", in.Total())
	}
	if res.Detections < 1 || res.Rollbacks+res.Restarts < 1 {
		t.Fatalf("corruption not healed: %+v", res)
	}

	// A dead PE poisons the Dist for good.
	panicPlan, err := quake.ParseFaultPlan("panic:pe=2,iter=1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dist.InjectFaults(panicPlan); err != nil {
		t.Fatal(err)
	}
	y := make([]float64, n)
	if _, err := dist.SMVP(y, x); !errors.Is(err, quake.ErrDistPoisoned) {
		t.Fatalf("expected ErrDistPoisoned, got %v", err)
	}
	if _, err := dist.SMVP(y, x); !errors.Is(err, quake.ErrDistPoisoned) {
		t.Fatalf("poisoned Dist accepted a later kernel: %v", err)
	}
}

// TestFacadeAggregation drives the two-level exchange through the
// public API: fuse a schedule, replay it on both simulators, run the
// aggregated distributed kernel bit-identically, and sweep node sizes.
func TestFacadeAggregation(t *testing.T) {
	s, err := quake.ScenarioByName("sf10")
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := quake.PartitionMesh(m, 8, quake.RCB, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := quake.Analyze(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := quake.ScheduleFromProfile(pr)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := quake.AggregateSchedule(sched, quake.ContiguousNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Check(sched); err != nil {
		t.Fatal(err)
	}

	// Extended model and β on the fused leg.
	c, b := agg.InterCB()
	if beta := quake.BetaOf(c, b); beta < 1 || beta >= 2 {
		t.Errorf("fused β = %g", beta)
	}
	t3e := quake.T3E()
	local := quake.LocalParams{Tl: quake.OnNode().Tl, Tw: quake.OnNode().Tw}
	app := quake.AggProperties{
		App:       quake.AppProperties{F: pr.Fmax(), Cmax: pr.Cmax(), Bmax: pr.Bmax()},
		InterBmax: agg.InterBmax(), InterCmax: maxOf(c),
		LocalBmax: 1, LocalCmax: agg.CopiedWords(),
	}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if tc := quake.AchievedTcAggregated(app, t3e.Tl, t3e.Tw, local); tc <= 0 {
		t.Error("non-positive aggregated Tc")
	}
	if e := quake.AggregatedEfficiency(app, t3e.Tf, t3e.Tl, t3e.Tw, local); e <= 0 || e >= 1 {
		t.Errorf("aggregated efficiency = %g", e)
	}

	// Both simulators accept the plan.
	mres, err := quake.SimulateExchangeAggregated(agg, t3e, quake.OnNode(), quake.NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if mres.CommTime <= 0 {
		t.Error("no machine-simulated aggregated time")
	}
	tor, err := quake.NewTorus(agg.NumNodes)
	if err != nil {
		t.Fatal(err)
	}
	nres, err := quake.SimulateTorusAggregated(agg, t3e, quake.OnNode(), tor, quake.TorusConfig{HopLatency: 100e-9})
	if err != nil {
		t.Fatal(err)
	}
	if nres.CommTime <= 0 {
		t.Error("no torus-simulated aggregated time")
	}

	// The distributed kernel with aggregation enabled matches flat.
	mat := quake.SanFernando()
	dist, err := quake.NewDist(m, mat, pt, pr)
	if err != nil {
		t.Fatal(err)
	}
	defer dist.Close()
	x := make([]float64, 3*m.NumNodes())
	for i := range x {
		x[i] = math.Cos(float64(i))
	}
	flat := make([]float64, len(x))
	if _, err := dist.SMVP(flat, x); err != nil {
		t.Fatal(err)
	}
	if err := dist.SetAggregation(quake.ContiguousNodes(4)); err != nil {
		t.Fatal(err)
	}
	fused := make([]float64, len(x))
	if _, err := dist.SMVP(fused, x); err != nil {
		t.Fatal(err)
	}
	for i := range flat {
		if fused[i] != flat[i] {
			t.Fatalf("aggregated SMVP not bit-identical at %d", i)
		}
	}
	if fb, _, on := dist.AggregationStats(); !on || fb <= 0 {
		t.Errorf("aggregation stats: fused=%d enabled=%v", fb, on)
	}

	// Node-size sweep and its table.
	rows, err := quake.AggSweep(s, 8, quake.RCB, []int{1, 2, 4}, quake.TorusConfig{HopLatency: 100e-9})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := quake.AggregationSummary("tradeoff", rows).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fused B_max") {
		t.Errorf("sweep table missing fused column:\n%s", sb.String())
	}
}

func maxOf(v []int64) int64 {
	var m int64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
