// Command quakesim runs the actual earthquake simulation: it assembles
// the elastodynamic system for a scenario, integrates it with the
// explicit central-difference scheme (sequentially, timing the SMVP
// share of the run the way Section 2.3 does), then executes the
// distributed SMVP on goroutine PEs and compares measured phase times
// against the closed-form model and the discrete-event simulator.
//
// Usage:
//
//	quakesim                       # sf10, 300 steps, 8 PEs
//	quakesim -scenario sf5 -steps 1000 -pes 16
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/fem"
	"repro/internal/geom"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/quake"
	"repro/internal/report"
	"repro/internal/solver"
)

func main() {
	scenario := flag.String("scenario", "sf10", "scenario name")
	steps := flag.Int("steps", 300, "time steps to integrate")
	pes := flag.Int("pes", 8, "PE count for the distributed SMVP")
	seis := flag.String("seis", "", "write receiver seismograms as CSV to this file")
	trace := flag.String("trace", "", "write a Chrome trace_event JSON file here")
	metrics := flag.String("metrics", "", "write a metrics snapshot JSON file here")
	faults := flag.String("faults", "", "fault-injection soak: arm this plan (e.g. 'corrupt:pe=1->0,iter=4,bit=62') on the distributed runtime and run a self-healing CG solve against a fault-free reference; see docs/RELIABILITY.md")
	flag.Parse()

	if err := run(*scenario, *steps, *pes, *seis, *trace, *metrics, *faults); err != nil {
		fmt.Fprintln(os.Stderr, "quakesim:", err)
		os.Exit(1)
	}
}

func run(name string, steps, pes int, seisPath, tracePath, metricsPath, faultsPlan string) error {
	// Reject a malformed plan before spending minutes simulating; the
	// soak itself runs last.
	var plan *fault.Plan
	if faultsPlan != "" {
		var err error
		if plan, err = fault.Parse(faultsPlan); err != nil {
			return err
		}
	}
	if tracePath != "" || metricsPath != "" {
		obs.SetEnabled(true)
		obs.StartTrace()
		defer func() {
			obs.SetEnabled(false)
			if tr := obs.StopTrace(); tr != nil {
				report.PhaseSummary("Measured phase summary", tr.PhaseStats()).Render(os.Stdout)
				if tracePath != "" {
					if err := writeTrace(tracePath, tr); err != nil {
						fmt.Fprintln(os.Stderr, "quakesim: trace:", err)
					} else {
						fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing or Perfetto)\n", tracePath)
					}
				}
			}
			if metricsPath != "" {
				if err := writeMetrics(metricsPath); err != nil {
					fmt.Fprintln(os.Stderr, "quakesim: metrics:", err)
				} else {
					fmt.Printf("wrote metrics snapshot to %s\n", metricsPath)
				}
			}
		}()
	}
	s, err := quake.ByName(name)
	if err != nil {
		return err
	}
	m, err := s.Mesh()
	if err != nil {
		return err
	}
	mat := quake.Material()
	fmt.Printf("%s: %s nodes, %s elements\n", s.Name,
		report.Int(int64(m.NumNodes())), report.Int(int64(m.NumElems())))

	sys, err := fem.Assemble(m, mat)
	if err != nil {
		return err
	}
	dt := sys.StableDt(0.5)
	fmt.Printf("assembled K: %s nonzeros; stable dt %s\n",
		report.Int(int64(sys.K.NNZ())), report.SI(dt, "s"))

	// Sequential run: measure the SMVP share of total time (the paper
	// reports over 80% for the real applications).
	src := fem.PointSource{
		Location:  geom.V(25, 25, 6),
		Direction: geom.V(0, 0, 1),
		Amplitude: 1e3,
		PeakFreq:  1 / s.Period,
		Delay:     1.2 * s.Period,
	}
	rcv := sys.NearestNode(geom.V(25, 25, 0))
	res, err := sys.Run(fem.SimConfig{Dt: dt, Steps: steps, Source: src, Receivers: []int32{rcv}})
	if err != nil {
		return err
	}
	tf := res.SMVPSeconds / float64(res.FlopsSMVP)
	fmt.Printf("integrated %d steps in %.2fs; SMVP share %.1f%% (paper: >80%%)\n",
		res.Steps, res.TotalSeconds, 100*res.SMVPShare())
	fmt.Printf("achieved T_f = %s (%.0f MFLOPS sustained)\n",
		report.SI(tf, "s/flop"), model.MFLOPS(tf))
	var peak float64
	for _, v := range res.Seismograms[0] {
		if v > peak {
			peak = v
		}
	}
	fmt.Printf("peak surface displacement at basin center: %.3g\n\n", peak)
	if seisPath != "" {
		if err := writeSeismograms(seisPath, dt, res.Seismograms); err != nil {
			return err
		}
		fmt.Printf("wrote seismograms to %s\n\n", seisPath)
	}

	// Distributed SMVP on goroutine PEs.
	pt, err := partition.PartitionMesh(m, pes, partition.RCB, 1)
	if err != nil {
		return err
	}
	pr, err := partition.Analyze(m, pt)
	if err != nil {
		return err
	}
	dist, err := par.NewDist(m, mat, pt, pr)
	if err != nil {
		return err
	}
	defer dist.Close()
	x := make([]float64, 3*m.NumNodes())
	for i := range x {
		x[i] = float64(i%11) * 0.1
	}
	y := make([]float64, len(x))
	var tm *par.Timing
	const reps = 5
	for i := 0; i < reps; i++ {
		if tm, err = dist.SMVP(y, x); err != nil {
			return err
		}
	}
	fmt.Printf("distributed SMVP on %d goroutine PEs: compute %s, exchange %s\n",
		pes, report.SI(tm.MaxCompute().Seconds(), "s"), report.SI(tm.MaxComm().Seconds(), "s"))

	// The full distributed application: same scheme, goroutine PEs.
	dsim, err := par.NewDistSim(dist, sys.MassNode, nil)
	if err != nil {
		return err
	}
	distSteps := steps
	if distSteps > 200 {
		distSteps = 200
	}
	dres, err := dsim.Run(m.Coords, fem.SimConfig{
		Dt: dt, Steps: distSteps, Source: src,
	})
	if err != nil {
		return err
	}
	fmt.Printf("distributed application (%d steps on %d PEs): multiply %s, exchange %s per run\n",
		dres.Steps, pes,
		report.SI(dres.ComputeSeconds, "s"), report.SI(dres.ExchangeSeconds, "s"))

	// Model vs discrete-event simulation of the exchange, on the T3E.
	app := model.AppProperties{F: pr.Fmax(), Cmax: pr.Cmax(), Bmax: pr.Bmax()}
	t3e := machine.T3E()
	sched, err := comm.FromMatrix(pr.Msg)
	if err != nil {
		return err
	}
	modelT := machine.ModelCommTime(sched, t3e)
	exactT := machine.ExactCommTime(sched, t3e)
	simT := machine.Simulate(sched, t3e, machine.NetworkConfig{Transit: 1e-6}).CommTime
	fmt.Printf("\nexchange phase on %s: model %s, exact per-PE %s, discrete sim %s (β=%.2f)\n",
		t3e.Name, report.SI(modelT, "s"), report.SI(exactT, "s"), report.SI(simT, "s"), pr.Beta())
	fmt.Printf("modeled efficiency of %s on %s/%d: %.3f\n",
		t3e.Name, s.Name, pes, model.Efficiency(app, t3e.Tf, t3e.Tl, t3e.Tw))

	// Fault-injection soak: runs last, because a plan with a panic event
	// poisons the Dist for good (the containment being demonstrated).
	if plan != nil {
		if err := soakFaults(dist, sys, plan); err != nil {
			return err
		}
	}
	return nil
}

// soakFaults solves the shifted elastodynamic system with CG twice —
// once fault-free for reference, once with the plan armed and the
// solver's self-healing enabled — and reports what was injected, what
// the solver detected, and how far the healed answer drifted. A plan
// that kills a PE instead demonstrates fail-fast containment: the solve
// returns the poisoned-Dist error and every later kernel refuses to run.
func soakFaults(dist *par.Dist, sys *fem.System, plan *fault.Plan) error {
	fmt.Printf("\nfault soak: plan %q\n", plan)

	op := par.Operator{D: dist, Shift: 20, MassNode: sys.MassNode}
	n := op.Dim()
	b := make([]float64, n)
	b[2] = 50
	b[n-1] = -20
	ref := make([]float64, n)
	rres, err := solver.CG(op, b, ref, solver.Config{MaxIter: 4 * n, Tol: 1e-8})
	if err != nil {
		return fmt.Errorf("reference solve: %w", err)
	}
	if !rres.Converged {
		return fmt.Errorf("reference solve did not converge: %+v", rres)
	}
	fmt.Printf("fault-free reference: %d iterations, residual %.3g\n", rres.Iterations, rres.Residual)

	in, err := dist.InjectFaults(plan)
	if err != nil {
		return err
	}
	x := make([]float64, n)
	res, err := solver.CG(op, b, x, solver.Config{
		MaxIter: 4 * n, Tol: 1e-8, CheckEvery: 5, MaxRecoveries: 8,
	})
	injected := ""
	for _, k := range []fault.Kind{fault.Corrupt, fault.Drop, fault.Dup, fault.Delay, fault.Stall, fault.Panic} {
		if c := in.Count(k); c > 0 {
			injected += fmt.Sprintf(" %s=%d", k, c)
		}
	}
	if injected == "" {
		injected = " none"
	}
	fmt.Printf("injected faults:%s\n", injected)
	if err != nil {
		if errors.Is(err, par.ErrPoisoned) {
			fmt.Printf("contained PE failure: %v\n", err)
			if _, e := dist.SMVP(make([]float64, n), x); e == nil {
				return fmt.Errorf("poisoned Dist accepted a kernel")
			}
			fmt.Println("poisoned Dist fails fast on every later kernel, as documented")
			return nil
		}
		return fmt.Errorf("armed solve: %w", err)
	}
	var drift, scale float64
	for i := range ref {
		if d := math.Abs(x[i] - ref[i]); d > drift {
			drift = d
		}
		if a := math.Abs(ref[i]); a > scale {
			scale = a
		}
	}
	fmt.Printf("self-healing solve: %d iterations, residual %.3g; detections %d, rollbacks %d, restarts %d\n",
		res.Iterations, res.Residual, res.Detections, res.Rollbacks, res.Restarts)
	fmt.Printf("max deviation from fault-free answer: %.3g (solution scale %.3g)\n", drift, scale)
	if !res.Converged {
		return fmt.Errorf("armed solve did not converge: %+v", res)
	}
	if _, err := dist.InjectFaults(nil); err != nil {
		return fmt.Errorf("disarm: %w", err)
	}
	return nil
}

// writeTrace serializes the tracer to path.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics serializes the default registry's snapshot to path.
func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSeismograms emits one CSV row per step: time then |u| at each
// receiver.
func writeSeismograms(path string, dt float64, seis [][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprint(f, "t")
	for r := range seis {
		fmt.Fprintf(f, ",receiver%d", r)
	}
	fmt.Fprintln(f)
	if len(seis) == 0 {
		return nil
	}
	for step := range seis[0] {
		fmt.Fprintf(f, "%g", float64(step)*dt)
		for r := range seis {
			fmt.Fprintf(f, ",%g", seis[r][step])
		}
		fmt.Fprintln(f)
	}
	return nil
}
