// Command quakesim runs the actual earthquake simulation: it assembles
// the elastodynamic system for a scenario, integrates it with the
// explicit central-difference scheme (sequentially, timing the SMVP
// share of the run the way Section 2.3 does), then executes the
// distributed SMVP on goroutine PEs and compares measured phase times
// against the closed-form model and the discrete-event simulator.
//
// Usage:
//
//	quakesim                       # sf10, 300 steps, 8 PEs
//	quakesim -scenario sf5 -steps 1000 -pes 16
//	quakesim -faults 'kill:pe=3,iter=40' -checkpoint ck/   # lose a PE, shrink, resume
//	quakesim -resume ck/                                   # restart from the latest snapshot
//	quakesim -rebalance -faults 'kill:pe=3,iter=20;revive:pe=3,iter=40'
//	                                       # kill, shrink, revive, regrow, rebalance stragglers
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/fem"
	"repro/internal/geom"
	"repro/internal/machine"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/quake"
	rec "repro/internal/recover"
	"repro/internal/report"
	"repro/internal/solver"
)

// options is the validated CLI configuration. Flag parsing and
// semantic validation are separate steps so bad combinations are
// refused with usage before any meshing starts, and so tests can
// drive both run() and the validation table directly.
type options struct {
	scenario string
	steps    int
	pes      int
	seis     string
	trace    string
	metrics  string
	faults   string
	// checkpoint is the directory durable snapshots are written to;
	// every is their iteration period. everySet records whether -every
	// was given explicitly, so "-every" without "-checkpoint" can be
	// rejected instead of silently ignored.
	checkpoint string
	every      int
	everySet   bool
	// resume is the directory the run restarts from.
	resume string
	// http is the observability listen address (expvar, Prometheus
	// /metrics, JSON snapshot, pprof, flight ring); "" disables it.
	http string
	// flight is the flight-recorder auto-dump path; "" leaves dumping
	// disarmed. main() defaults it when a fault plan is armed.
	flight string
	// rebalance arms straggler-driven live rebalancing in the recovery
	// supervisor: measured per-PE compute imbalance above the hysteresis
	// threshold migrates boundary layers off stragglers at checkpoints.
	rebalance bool

	// plan is the parsed -faults plan, filled in by validate.
	plan *fault.Plan

	// httpReady, when non-nil, receives the bound -http address once the
	// server is up (non-blocking send). Tests use it to query the
	// endpoints mid-solve.
	httpReady chan string
}

// parseOptions binds the flag set. Parse errors (unknown flags, bad
// syntax) are returned after the FlagSet has printed usage to out.
func parseOptions(args []string, out io.Writer) (*options, error) {
	opt := &options{}
	fs := flag.NewFlagSet("quakesim", flag.ContinueOnError)
	fs.SetOutput(out)
	fs.StringVar(&opt.scenario, "scenario", "sf10", "scenario name")
	fs.IntVar(&opt.steps, "steps", 300, "time steps to integrate")
	fs.IntVar(&opt.pes, "pes", 8, "PE count for the distributed SMVP")
	fs.StringVar(&opt.seis, "seis", "", "write receiver seismograms as CSV to this file")
	fs.StringVar(&opt.trace, "trace", "", "write a Chrome trace_event JSON file here")
	fs.StringVar(&opt.metrics, "metrics", "", "write a metrics snapshot JSON file here")
	fs.StringVar(&opt.faults, "faults", "", "fault-injection soak: arm this plan (e.g. 'corrupt:pe=1->0,iter=4,bit=62') on the distributed runtime and run a self-healing CG solve against a fault-free reference; a plan with a kill event instead demonstrates shrink-to-survivors recovery; see docs/RELIABILITY.md")
	fs.StringVar(&opt.checkpoint, "checkpoint", "", "write durable solver checkpoints to this directory (see -every)")
	fs.IntVar(&opt.every, "every", 10, "checkpoint period in CG iterations (requires -checkpoint)")
	fs.StringVar(&opt.resume, "resume", "", "resume the solve from the latest checkpoint in this directory")
	fs.StringVar(&opt.http, "http", "", "serve live observability on this address (e.g. ':8080'): Prometheus /metrics, /metrics.json, /flight, expvar /debug/vars, /debug/pprof")
	fs.StringVar(&opt.flight, "flight", "", "arm the flight recorder to dump its ring to this file when a PE faults or a recovery fires (defaults to quakesim.flight.trace.json when -faults is set)")
	fs.BoolVar(&opt.rebalance, "rebalance", false, "arm straggler-driven live rebalancing: when measured per-PE compute imbalance stays above the threshold, migrate boundary layers off the straggler at a checkpoint; see docs/RELIABILITY.md")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "every" {
			opt.everySet = true
		}
	})
	if fs.NArg() > 0 {
		fmt.Fprintf(out, "quakesim: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments")
	}
	return opt, nil
}

// validate enforces the cross-flag rules up front: counts are
// positive, the fault plan parses, a checkpoint period is sane, and a
// resume directory actually exists. It fills opt.plan as a side
// effect.
func (opt *options) validate() error {
	if opt.steps < 1 {
		return fmt.Errorf("-steps must be at least 1, got %d", opt.steps)
	}
	if opt.pes < 1 {
		return fmt.Errorf("-pes must be at least 1, got %d", opt.pes)
	}
	if opt.faults != "" {
		plan, err := fault.Parse(opt.faults)
		if err != nil {
			return err
		}
		opt.plan = plan
	}
	if opt.checkpoint != "" && opt.every < 1 {
		return fmt.Errorf("-checkpoint needs a positive -every, got %d", opt.every)
	}
	if opt.everySet && opt.checkpoint == "" {
		return fmt.Errorf("-every is only meaningful with -checkpoint")
	}
	if opt.resume != "" {
		fi, err := os.Stat(opt.resume)
		if err != nil {
			return fmt.Errorf("-resume directory: %w", err)
		}
		if !fi.IsDir() {
			return fmt.Errorf("-resume: %s is not a directory", opt.resume)
		}
	}
	return nil
}

func main() {
	opt, err := parseOptions(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2) // the FlagSet already printed the problem and usage
	}
	if err := opt.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "quakesim:", err)
		fmt.Fprintln(os.Stderr, "run 'quakesim -h' for usage")
		os.Exit(2)
	}
	// CLI nicety only (direct run() callers opt in explicitly): a fault
	// soak without a dump destination still gets its post-mortem.
	if opt.flight == "" && opt.faults != "" {
		opt.flight = "quakesim.flight.trace.json"
	}
	if err := run(opt); err != nil {
		fmt.Fprintln(os.Stderr, "quakesim:", err)
		os.Exit(1)
	}
}

func run(opt *options) error {
	name, steps, pes := opt.scenario, opt.steps, opt.pes
	seisPath, tracePath, metricsPath := opt.seis, opt.trace, opt.metrics
	// Reject a malformed plan before spending minutes simulating; the
	// soak itself runs last. (validate() already parsed CLI plans; this
	// covers direct run() callers.)
	plan := opt.plan
	if plan == nil && opt.faults != "" {
		var err error
		if plan, err = fault.Parse(opt.faults); err != nil {
			return err
		}
	}
	if opt.flight != "" {
		obs.FlightRecorder.SetDumpPath(opt.flight)
		defer obs.FlightRecorder.SetDumpPath("")
	}
	if opt.http != "" {
		// Live inspection implies telemetry: enable the registry so the
		// endpoints have something to serve.
		obs.SetEnabled(true)
		addr, shutdown, err := export.Serve(opt.http)
		if err != nil {
			return fmt.Errorf("-http: %w", err)
		}
		defer shutdown(context.Background())
		fmt.Printf("observability: http://%s/ (metrics, flight ring, pprof)\n", addr)
		if opt.httpReady != nil {
			select {
			case opt.httpReady <- addr:
			default:
			}
		}
	}
	if tracePath != "" || metricsPath != "" {
		obs.SetEnabled(true)
		obs.StartTrace()
		defer func() {
			obs.SetEnabled(false)
			if tr := obs.StopTrace(); tr != nil {
				report.PhaseSummary("Measured phase summary", tr.PhaseStats()).Render(os.Stdout)
				if tracePath != "" {
					if err := writeTrace(tracePath, tr); err != nil {
						fmt.Fprintln(os.Stderr, "quakesim: trace:", err)
					} else {
						fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing or Perfetto)\n", tracePath)
					}
				}
			}
			if metricsPath != "" {
				if err := writeMetrics(metricsPath); err != nil {
					fmt.Fprintln(os.Stderr, "quakesim: metrics:", err)
				} else {
					fmt.Printf("wrote metrics snapshot to %s\n", metricsPath)
				}
			}
		}()
	}
	s, err := quake.ByName(name)
	if err != nil {
		return err
	}
	m, err := s.Mesh()
	if err != nil {
		return err
	}
	mat := quake.Material()
	fmt.Printf("%s: %s nodes, %s elements\n", s.Name,
		report.Int(int64(m.NumNodes())), report.Int(int64(m.NumElems())))

	sys, err := fem.Assemble(m, mat)
	if err != nil {
		return err
	}
	dt := sys.StableDt(0.5)
	fmt.Printf("assembled K: %s nonzeros; stable dt %s\n",
		report.Int(int64(sys.K.NNZ())), report.SI(dt, "s"))

	// Sequential run: measure the SMVP share of total time (the paper
	// reports over 80% for the real applications).
	src := fem.PointSource{
		Location:  geom.V(25, 25, 6),
		Direction: geom.V(0, 0, 1),
		Amplitude: 1e3,
		PeakFreq:  1 / s.Period,
		Delay:     1.2 * s.Period,
	}
	rcv := sys.NearestNode(geom.V(25, 25, 0))
	res, err := sys.Run(fem.SimConfig{Dt: dt, Steps: steps, Source: src, Receivers: []int32{rcv}})
	if err != nil {
		return err
	}
	tf := res.SMVPSeconds / float64(res.FlopsSMVP)
	fmt.Printf("integrated %d steps in %.2fs; SMVP share %.1f%% (paper: >80%%)\n",
		res.Steps, res.TotalSeconds, 100*res.SMVPShare())
	fmt.Printf("achieved T_f = %s (%.0f MFLOPS sustained)\n",
		report.SI(tf, "s/flop"), model.MFLOPS(tf))
	var peak float64
	for _, v := range res.Seismograms[0] {
		if v > peak {
			peak = v
		}
	}
	fmt.Printf("peak surface displacement at basin center: %.3g\n\n", peak)
	if seisPath != "" {
		if err := writeSeismograms(seisPath, dt, res.Seismograms); err != nil {
			return err
		}
		fmt.Printf("wrote seismograms to %s\n\n", seisPath)
	}

	// Distributed SMVP on goroutine PEs.
	pt, err := partition.PartitionMesh(m, pes, partition.RCB, 1)
	if err != nil {
		return err
	}
	pr, err := partition.Analyze(m, pt)
	if err != nil {
		return err
	}
	dist, err := par.NewDist(m, mat, pt, pr)
	if err != nil {
		return err
	}
	defer dist.Close()
	x := make([]float64, 3*m.NumNodes())
	for i := range x {
		x[i] = float64(i%11) * 0.1
	}
	y := make([]float64, len(x))
	var tm *par.Timing
	const reps = 5
	for i := 0; i < reps; i++ {
		if tm, err = dist.SMVP(y, x); err != nil {
			return err
		}
	}
	fmt.Printf("distributed SMVP on %d goroutine PEs: compute %s, exchange %s\n",
		pes, report.SI(tm.MaxCompute().Seconds(), "s"), report.SI(tm.MaxComm().Seconds(), "s"))

	// The full distributed application: same scheme, goroutine PEs.
	dsim, err := par.NewDistSim(dist, sys.MassNode, nil)
	if err != nil {
		return err
	}
	distSteps := steps
	if distSteps > 200 {
		distSteps = 200
	}
	dres, err := dsim.Run(m.Coords, fem.SimConfig{
		Dt: dt, Steps: distSteps, Source: src,
	})
	if err != nil {
		return err
	}
	fmt.Printf("distributed application (%d steps on %d PEs): multiply %s, exchange %s per run\n",
		dres.Steps, pes,
		report.SI(dres.ComputeSeconds, "s"), report.SI(dres.ExchangeSeconds, "s"))

	// Model vs discrete-event simulation of the exchange, on the T3E.
	app := model.AppProperties{F: pr.Fmax(), Cmax: pr.Cmax(), Bmax: pr.Bmax()}
	t3e := machine.T3E()
	sched, err := comm.FromMatrix(pr.Msg)
	if err != nil {
		return err
	}
	modelT := machine.ModelCommTime(sched, t3e)
	exactT := machine.ExactCommTime(sched, t3e)
	simT := machine.Simulate(sched, t3e, machine.NetworkConfig{Transit: 1e-6}).CommTime
	fmt.Printf("\nexchange phase on %s: model %s, exact per-PE %s, discrete sim %s (β=%.2f)\n",
		t3e.Name, report.SI(modelT, "s"), report.SI(exactT, "s"), report.SI(simT, "s"), pr.Beta())
	fmt.Printf("modeled efficiency of %s on %s/%d: %.3f\n",
		t3e.Name, s.Name, pes, model.Efficiency(app, t3e.Tf, t3e.Tl, t3e.Tw))

	// Fault soak / graceful-degradation demo: runs last, because a plan
	// with a panic event poisons the Dist for good (the containment
	// being demonstrated). Checkpointing, resume, rebalancing, and
	// kill/revive plans route to the recovery supervisor; other plans to
	// the self-healing soak.
	if opt.checkpoint != "" || opt.resume != "" || opt.rebalance ||
		(plan != nil && (plan.Has(fault.Kill) || plan.Has(fault.Revive))) {
		return recoveryRun(opt, plan, dist, sys, m, mat, pt)
	}
	if plan != nil {
		if err := soakFaults(dist, sys, plan); err != nil {
			return err
		}
	}
	return nil
}

// recoveryRun demonstrates elastic recovery: it solves the shifted
// elastodynamic system under the recovery supervisor, writing durable
// checkpoints when -checkpoint is set, restarting from the latest
// snapshot when -resume is set, shrinking onto the survivors when the
// plan kills a PE, regrowing onto revived slots when the plan revives
// one, and — with -rebalance — migrating boundary layers off measured
// stragglers at checkpoints. The supervisor owns the fault injector;
// the plan is handed over unarmed.
func recoveryRun(opt *options, plan *fault.Plan, dist *par.Dist, sys *fem.System,
	m *mesh.Mesh, mat *material.Model, pt *partition.Partition) error {
	fmt.Printf("\nelastic recovery: checkpoint=%q every=%d resume=%q rebalance=%v plan=%q\n",
		opt.checkpoint, opt.every, opt.resume, opt.rebalance, opt.faults)

	op := par.Operator{D: dist, Shift: 20, MassNode: sys.MassNode}
	n := op.Dim()
	b := make([]float64, n)
	b[2] = 50
	b[n-1] = -20
	meshID := rec.MeshID(m)

	var store *rec.Store
	if opt.checkpoint != "" {
		var err error
		if store, err = rec.NewStore(opt.checkpoint); err != nil {
			return err
		}
	}

	cfg := rec.SuperviseConfig{
		Solver: solver.Config{MaxIter: 4 * n, Tol: 1e-8, CheckpointEvery: opt.every},
		Store:  store,
		MeshID: meshID,
		Plan:   plan,
	}
	if opt.rebalance {
		// The rebalancer's windows come from the live per-PE accumulators.
		obs.SetEnabled(true)
		cfg.Rebalance = &rec.RebalanceConfig{}
	}
	if opt.resume != "" {
		rs, err := rec.NewStore(opt.resume)
		if err != nil {
			return err
		}
		ck, path, err := rs.Latest()
		if err != nil {
			return fmt.Errorf("-resume: %w", err)
		}
		if ck.MeshID != meshID {
			return fmt.Errorf("-resume: checkpoint %s was taken on a different mesh (id %016x, this run %016x)",
				path, ck.MeshID, meshID)
		}
		if int(ck.P) != pt.P {
			return fmt.Errorf("-resume: checkpoint %s was taken at %d PEs; rerun with -pes %d", path, ck.P, ck.P)
		}
		cfg.Solver.Resume = ck.State()
		cfg.AdvanceKernels = ck.FaultIter // don't replay kernels the first run already executed
		if cfg.Plan == nil && ck.FaultPlan != "" {
			// The snapshot carries the *remaining* plan; re-arm it so a
			// restarted process keeps absorbing the events that never fired.
			if cfg.Plan, err = fault.Parse(ck.FaultPlan); err != nil {
				return fmt.Errorf("-resume: checkpoint fault plan %q: %w", ck.FaultPlan, err)
			}
			fmt.Printf("re-armed the remaining fault plan from the checkpoint: %q\n", ck.FaultPlan)
		}
		fmt.Printf("resuming from %s at CG iteration %d (global kernel count %d)\n", path, ck.Iter, ck.FaultIter)
	}

	x := make([]float64, n)
	out, err := rec.Supervise(dist, &rec.System{Mesh: m, Material: mat, Part: pt, Shift: 20, MassNode: sys.MassNode},
		b, x, cfg)
	if out != nil && out.Dist != nil && out.Dist != dist {
		defer out.Dist.Close() // rebuilt after a transition; the original is closed by Supervise
	}
	if err != nil {
		return fmt.Errorf("supervised solve: %w", err)
	}
	if out.Shrinks > 0 {
		fmt.Printf("lost PE(s) %v mid-solve; shrank %d time(s) and resumed from the last checkpoint\n",
			out.DeadPEs, out.Shrinks)
	}
	if out.Grows > 0 {
		fmt.Printf("revived PE slot(s) %v; regrew the partition %d time(s) back to %d PEs\n",
			out.RevivedPEs, out.Grows, out.Part.P)
	}
	if out.Migrations > 0 {
		fmt.Printf("straggler rebalancing migrated %d boundary layer(s)\n", out.Migrations)
	}
	if opt.rebalance && out.FinalLambda > 0 {
		fmt.Printf("final measured compute imbalance λ = %.3f\n", out.FinalLambda)
	}
	if !out.Result.Converged {
		return fmt.Errorf("supervised solve did not converge: %+v", out.Result)
	}
	fmt.Printf("solve finished on %d PEs: %d iterations, residual %.3g, %d durable checkpoint(s)\n",
		out.Part.P, out.Result.Iterations, out.Result.Residual, out.Result.Checkpoints)
	if store != nil {
		fmt.Printf("checkpoints in %s; restart with: quakesim -scenario %s -pes %d -resume %s\n",
			store.Dir(), opt.scenario, out.Part.P, store.Dir())
	}
	return nil
}

// soakFaults solves the shifted elastodynamic system with CG twice —
// once fault-free for reference, once with the plan armed and the
// solver's self-healing enabled — and reports what was injected, what
// the solver detected, and how far the healed answer drifted. A plan
// that kills a PE instead demonstrates fail-fast containment: the solve
// returns the poisoned-Dist error and every later kernel refuses to run.
func soakFaults(dist *par.Dist, sys *fem.System, plan *fault.Plan) error {
	fmt.Printf("\nfault soak: plan %q\n", plan)

	op := par.Operator{D: dist, Shift: 20, MassNode: sys.MassNode}
	n := op.Dim()
	b := make([]float64, n)
	b[2] = 50
	b[n-1] = -20
	ref := make([]float64, n)
	rres, err := solver.CG(op, b, ref, solver.Config{MaxIter: 4 * n, Tol: 1e-8})
	if err != nil {
		return fmt.Errorf("reference solve: %w", err)
	}
	if !rres.Converged {
		return fmt.Errorf("reference solve did not converge: %+v", rres)
	}
	fmt.Printf("fault-free reference: %d iterations, residual %.3g\n", rres.Iterations, rres.Residual)

	in, err := dist.InjectFaults(plan)
	if err != nil {
		return err
	}
	x := make([]float64, n)
	res, err := solver.CG(op, b, x, solver.Config{
		MaxIter: 4 * n, Tol: 1e-8, CheckEvery: 5, MaxRecoveries: 8,
	})
	injected := ""
	for _, k := range []fault.Kind{fault.Corrupt, fault.Drop, fault.Dup, fault.Delay, fault.Stall, fault.Panic, fault.Kill} {
		if c := in.Count(k); c > 0 {
			injected += fmt.Sprintf(" %s=%d", k, c)
		}
	}
	if injected == "" {
		injected = " none"
	}
	fmt.Printf("injected faults:%s\n", injected)
	if err != nil {
		if errors.Is(err, par.ErrPoisoned) {
			fmt.Printf("contained PE failure: %v\n", err)
			if _, e := dist.SMVP(make([]float64, n), x); e == nil {
				return fmt.Errorf("poisoned Dist accepted a kernel")
			}
			fmt.Println("poisoned Dist fails fast on every later kernel, as documented")
			return nil
		}
		return fmt.Errorf("armed solve: %w", err)
	}
	var drift, scale float64
	for i := range ref {
		if d := math.Abs(x[i] - ref[i]); d > drift {
			drift = d
		}
		if a := math.Abs(ref[i]); a > scale {
			scale = a
		}
	}
	fmt.Printf("self-healing solve: %d iterations, residual %.3g; detections %d, rollbacks %d, restarts %d\n",
		res.Iterations, res.Residual, res.Detections, res.Rollbacks, res.Restarts)
	fmt.Printf("max deviation from fault-free answer: %.3g (solution scale %.3g)\n", drift, scale)
	if !res.Converged {
		return fmt.Errorf("armed solve did not converge: %+v", res)
	}
	if _, err := dist.InjectFaults(nil); err != nil {
		return fmt.Errorf("disarm: %w", err)
	}
	return nil
}

// writeTrace serializes the tracer to path.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics serializes the default registry's snapshot to path.
func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSeismograms emits one CSV row per step: time then |u| at each
// receiver.
func writeSeismograms(path string, dt float64, seis [][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprint(f, "t")
	for r := range seis {
		fmt.Fprintf(f, ",receiver%d", r)
	}
	fmt.Fprintln(f)
	if len(seis) == 0 {
		return nil
	}
	for step := range seis[0] {
		fmt.Fprintf(f, "%g", float64(step)*dt)
		for r := range seis {
			fmt.Fprintf(f, ",%g", seis[r][step])
		}
		fmt.Fprintln(f)
	}
	return nil
}
