// Command quakesim runs the actual earthquake simulation: it assembles
// the elastodynamic system for a scenario, integrates it with the
// explicit central-difference scheme (sequentially, timing the SMVP
// share of the run the way Section 2.3 does), then executes the
// distributed SMVP on goroutine PEs and compares measured phase times
// against the closed-form model and the discrete-event simulator.
//
// Usage:
//
//	quakesim                       # sf10, 300 steps, 8 PEs
//	quakesim -scenario sf5 -steps 1000 -pes 16
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/comm"
	"repro/internal/fem"
	"repro/internal/geom"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/quake"
	"repro/internal/report"
)

func main() {
	scenario := flag.String("scenario", "sf10", "scenario name")
	steps := flag.Int("steps", 300, "time steps to integrate")
	pes := flag.Int("pes", 8, "PE count for the distributed SMVP")
	seis := flag.String("seis", "", "write receiver seismograms as CSV to this file")
	trace := flag.String("trace", "", "write a Chrome trace_event JSON file here")
	metrics := flag.String("metrics", "", "write a metrics snapshot JSON file here")
	flag.Parse()

	if err := run(*scenario, *steps, *pes, *seis, *trace, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "quakesim:", err)
		os.Exit(1)
	}
}

func run(name string, steps, pes int, seisPath, tracePath, metricsPath string) error {
	if tracePath != "" || metricsPath != "" {
		obs.SetEnabled(true)
		obs.StartTrace()
		defer func() {
			obs.SetEnabled(false)
			if tr := obs.StopTrace(); tr != nil {
				report.PhaseSummary("Measured phase summary", tr.PhaseStats()).Render(os.Stdout)
				if tracePath != "" {
					if err := writeTrace(tracePath, tr); err != nil {
						fmt.Fprintln(os.Stderr, "quakesim: trace:", err)
					} else {
						fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing or Perfetto)\n", tracePath)
					}
				}
			}
			if metricsPath != "" {
				if err := writeMetrics(metricsPath); err != nil {
					fmt.Fprintln(os.Stderr, "quakesim: metrics:", err)
				} else {
					fmt.Printf("wrote metrics snapshot to %s\n", metricsPath)
				}
			}
		}()
	}
	s, err := quake.ByName(name)
	if err != nil {
		return err
	}
	m, err := s.Mesh()
	if err != nil {
		return err
	}
	mat := quake.Material()
	fmt.Printf("%s: %s nodes, %s elements\n", s.Name,
		report.Int(int64(m.NumNodes())), report.Int(int64(m.NumElems())))

	sys, err := fem.Assemble(m, mat)
	if err != nil {
		return err
	}
	dt := sys.StableDt(0.5)
	fmt.Printf("assembled K: %s nonzeros; stable dt %s\n",
		report.Int(int64(sys.K.NNZ())), report.SI(dt, "s"))

	// Sequential run: measure the SMVP share of total time (the paper
	// reports over 80% for the real applications).
	src := fem.PointSource{
		Location:  geom.V(25, 25, 6),
		Direction: geom.V(0, 0, 1),
		Amplitude: 1e3,
		PeakFreq:  1 / s.Period,
		Delay:     1.2 * s.Period,
	}
	rcv := sys.NearestNode(geom.V(25, 25, 0))
	res, err := sys.Run(fem.SimConfig{Dt: dt, Steps: steps, Source: src, Receivers: []int32{rcv}})
	if err != nil {
		return err
	}
	tf := res.SMVPSeconds / float64(res.FlopsSMVP)
	fmt.Printf("integrated %d steps in %.2fs; SMVP share %.1f%% (paper: >80%%)\n",
		res.Steps, res.TotalSeconds, 100*res.SMVPShare())
	fmt.Printf("achieved T_f = %s (%.0f MFLOPS sustained)\n",
		report.SI(tf, "s/flop"), model.MFLOPS(tf))
	var peak float64
	for _, v := range res.Seismograms[0] {
		if v > peak {
			peak = v
		}
	}
	fmt.Printf("peak surface displacement at basin center: %.3g\n\n", peak)
	if seisPath != "" {
		if err := writeSeismograms(seisPath, dt, res.Seismograms); err != nil {
			return err
		}
		fmt.Printf("wrote seismograms to %s\n\n", seisPath)
	}

	// Distributed SMVP on goroutine PEs.
	pt, err := partition.PartitionMesh(m, pes, partition.RCB, 1)
	if err != nil {
		return err
	}
	pr, err := partition.Analyze(m, pt)
	if err != nil {
		return err
	}
	dist, err := par.NewDist(m, mat, pt, pr)
	if err != nil {
		return err
	}
	defer dist.Close()
	x := make([]float64, 3*m.NumNodes())
	for i := range x {
		x[i] = float64(i%11) * 0.1
	}
	y := make([]float64, len(x))
	var tm *par.Timing
	const reps = 5
	for i := 0; i < reps; i++ {
		if tm, err = dist.SMVP(y, x); err != nil {
			return err
		}
	}
	fmt.Printf("distributed SMVP on %d goroutine PEs: compute %s, exchange %s\n",
		pes, report.SI(tm.MaxCompute().Seconds(), "s"), report.SI(tm.MaxComm().Seconds(), "s"))

	// The full distributed application: same scheme, goroutine PEs.
	dsim, err := par.NewDistSim(dist, sys.MassNode, nil)
	if err != nil {
		return err
	}
	distSteps := steps
	if distSteps > 200 {
		distSteps = 200
	}
	dres, err := dsim.Run(m.Coords, fem.SimConfig{
		Dt: dt, Steps: distSteps, Source: src,
	})
	if err != nil {
		return err
	}
	fmt.Printf("distributed application (%d steps on %d PEs): multiply %s, exchange %s per run\n",
		dres.Steps, pes,
		report.SI(dres.ComputeSeconds, "s"), report.SI(dres.ExchangeSeconds, "s"))

	// Model vs discrete-event simulation of the exchange, on the T3E.
	app := model.AppProperties{F: pr.Fmax(), Cmax: pr.Cmax(), Bmax: pr.Bmax()}
	t3e := machine.T3E()
	sched, err := comm.FromMatrix(pr.Msg)
	if err != nil {
		return err
	}
	modelT := machine.ModelCommTime(sched, t3e)
	exactT := machine.ExactCommTime(sched, t3e)
	simT := machine.Simulate(sched, t3e, machine.NetworkConfig{Transit: 1e-6}).CommTime
	fmt.Printf("\nexchange phase on %s: model %s, exact per-PE %s, discrete sim %s (β=%.2f)\n",
		t3e.Name, report.SI(modelT, "s"), report.SI(exactT, "s"), report.SI(simT, "s"), pr.Beta())
	fmt.Printf("modeled efficiency of %s on %s/%d: %.3f\n",
		t3e.Name, s.Name, pes, model.Efficiency(app, t3e.Tf, t3e.Tl, t3e.Tw))
	return nil
}

// writeTrace serializes the tracer to path.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics serializes the default registry's snapshot to path.
func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSeismograms emits one CSV row per step: time then |u| at each
// receiver.
func writeSeismograms(path string, dt float64, seis [][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprint(f, "t")
	for r := range seis {
		fmt.Fprintf(f, ",receiver%d", r)
	}
	fmt.Fprintln(f)
	if len(seis) == 0 {
		return nil
	}
	for step := range seis[0] {
		fmt.Fprintf(f, "%g", float64(step)*dt)
		for r := range seis {
			fmt.Fprintf(f, ",%g", seis[r][step])
		}
		fmt.Fprintln(f)
	}
	return nil
}
