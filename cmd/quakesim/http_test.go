package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRunHTTP drives a live solve with -http armed and queries every
// observability endpoint while the run is in flight: Prometheus text
// /metrics, the JSON snapshot, expvar, the flight ring, and pprof.
func TestRunHTTP(t *testing.T) {
	opt := base(60, 4)
	opt.http = "127.0.0.1:0"
	opt.httpReady = make(chan string, 1)

	done := make(chan error, 1)
	go func() { done <- run(opt) }()

	var addr string
	select {
	case addr = <-opt.httpReady:
	case err := <-done:
		t.Fatalf("run finished before the HTTP server came up: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("timed out waiting for -http server")
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Prometheus text format, with live solver counters in it.
	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "# TYPE ") {
		t.Errorf("/metrics: code=%d, not Prometheus text", code)
	}
	// JSON snapshot parses back into an obs.Snapshot.
	if code, body := get("/metrics.json"); code != 200 {
		t.Errorf("/metrics.json: code=%d", code)
	} else {
		var s obs.Snapshot
		if err := json.Unmarshal([]byte(body), &s); err != nil {
			t.Errorf("/metrics.json: %v", err)
		}
	}
	// expvar with the registry published under "obs".
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, `"obs"`) {
		t.Errorf("/debug/vars: code=%d, missing obs key", code)
	}
	// Flight ring serves as JSON.
	if code, body := get("/flight"); code != 200 || !strings.Contains(body, `"events"`) {
		t.Errorf("/flight: code=%d", code)
	}
	// pprof index and a cheap profile.
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code=%d", code)
	}
	if code, _ := get("/debug/pprof/goroutine?debug=1"); code != 200 {
		t.Errorf("/debug/pprof/goroutine: code=%d", code)
	}

	// Poll the snapshot while the solve is live: once the distributed
	// kernels start, the per-PE phase telemetry must show up.
	sawPhases := false
	for !sawPhases {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !sawPhases {
				t.Log("run finished before a poll caught the phase accumulators live")
			}
			return
		case <-time.After(5 * time.Millisecond):
			resp, err := http.Get("http://" + addr + "/metrics.json")
			if err != nil {
				continue // server may already be gone; the done case decides
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var s obs.Snapshot
			if json.Unmarshal(body, &s) == nil {
				_, sawPhases = s.PEAccums["par.phase.compute.ns"]
			}
		}
	}

	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunFaultFlightDump runs a kill-plan recovery with -flight armed
// and asserts the dump exists and holds fault + recovery events.
func TestRunFaultFlightDump(t *testing.T) {
	dir := t.TempDir()
	opt := base(20, 4)
	opt.faults = "kill:pe=2,iter=6"
	opt.checkpoint = filepath.Join(dir, "ck")
	opt.every = 2
	opt.flight = filepath.Join(dir, "flight.trace.json")
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(opt.flight)
	if err != nil {
		t.Fatalf("flight dump not written: %v", err)
	}
	var dump struct {
		Reason string `json:"reason"`
		Events []struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
			PE   int    `json:"pe"`
		} `json:"events"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("flight dump invalid JSON: %v", err)
	}
	var sawSpan, sawFault bool
	for _, e := range dump.Events {
		switch e.Kind {
		case "span":
			sawSpan = true
		case "fault", "recovery":
			sawFault = true
		}
	}
	if !sawSpan || !sawFault {
		names := make([]string, 0, len(dump.Events))
		for _, e := range dump.Events {
			names = append(names, fmt.Sprintf("%s:%s", e.Kind, e.Name))
		}
		t.Errorf("dump missing span=%v fault/recovery=%v events; got %v", sawSpan, sawFault, names)
	}
}
