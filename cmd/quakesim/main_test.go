package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRun(t *testing.T) {
	seis := filepath.Join(t.TempDir(), "seis.csv")
	if err := run("sf10", 40, 4, seis, "", "", ""); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(seis)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("empty seismogram file")
	}
}

func TestRunTelemetry(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "metrics.json")
	if err := run("sf10", 20, 4, "", trace, metrics, ""); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{trace, metrics} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var v map[string]any
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("%s: invalid JSON: %v", path, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 10, 2, "", "", "", ""); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run("sf10", 10, 2, "", "", "", "garble:pe=0"); err == nil {
		t.Error("malformed fault plan accepted")
	}
}

// TestRunFaultSoak drives the -faults path end to end: seeded exchange
// corruption aimed at an owner PE must be detected and healed, and the
// run must still exit cleanly.
func TestRunFaultSoak(t *testing.T) {
	plan := "seed:3;corrupt:pe=1->0,iter=4,bit=62"
	if err := run("sf10", 20, 4, "", "", "", plan); err != nil {
		t.Fatal(err)
	}
}

// TestRunFaultPanicContained: a plan that kills a PE mid-solve must end
// the run with the documented containment report, not an error or hang.
func TestRunFaultPanicContained(t *testing.T) {
	if err := run("sf10", 20, 4, "", "", "", "panic:pe=1,iter=3"); err != nil {
		t.Fatal(err)
	}
}
