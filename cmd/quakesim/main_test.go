package main

import "testing"

import (
	"os"
	"path/filepath"
)

func TestRun(t *testing.T) {
	seis := filepath.Join(t.TempDir(), "seis.csv")
	if err := run("sf10", 40, 4, seis); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(seis)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("empty seismogram file")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 10, 2, ""); err == nil {
		t.Error("unknown scenario accepted")
	}
}
