package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// base returns options as the flag defaults would produce them, ready
// for direct run() calls.
func base(steps, pes int) *options {
	return &options{scenario: "sf10", steps: steps, pes: pes, every: 10}
}

func TestRun(t *testing.T) {
	opt := base(40, 4)
	opt.seis = filepath.Join(t.TempDir(), "seis.csv")
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(opt.seis)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("empty seismogram file")
	}
}

func TestRunTelemetry(t *testing.T) {
	dir := t.TempDir()
	opt := base(20, 4)
	opt.trace = filepath.Join(dir, "trace.json")
	opt.metrics = filepath.Join(dir, "metrics.json")
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{opt.trace, opt.metrics} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var v map[string]any
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("%s: invalid JSON: %v", path, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	opt := base(10, 2)
	opt.scenario = "bogus"
	if err := run(opt); err == nil {
		t.Error("unknown scenario accepted")
	}
	opt = base(10, 2)
	opt.faults = "garble:pe=0"
	if err := run(opt); err == nil {
		t.Error("malformed fault plan accepted")
	}
}

// TestRunFaultSoak drives the -faults path end to end: seeded exchange
// corruption aimed at an owner PE must be detected and healed, and the
// run must still exit cleanly.
func TestRunFaultSoak(t *testing.T) {
	opt := base(20, 4)
	opt.faults = "seed:3;corrupt:pe=1->0,iter=4,bit=62"
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
}

// TestRunFaultPanicContained: a plan that panics a PE mid-solve must end
// the run with the documented containment report, not an error or hang.
func TestRunFaultPanicContained(t *testing.T) {
	opt := base(20, 4)
	opt.faults = "panic:pe=1,iter=3"
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
}

// TestRunRecovery drives graceful degradation end to end from the CLI
// layer: a kill plan with -checkpoint set must shrink to the survivors
// and finish, leaving durable snapshots behind; a second run with
// -resume must restart from those snapshots and also finish.
func TestRunRecovery(t *testing.T) {
	ckdir := filepath.Join(t.TempDir(), "ck")
	opt := base(20, 4)
	opt.faults = "kill:pe=2,iter=8"
	opt.checkpoint = ckdir
	opt.every = 5
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(ckdir)
	if err != nil {
		t.Fatal(err)
	}
	ckpts := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".qck") {
			ckpts++
		}
	}
	if ckpts == 0 {
		t.Fatal("no durable checkpoints written")
	}
	// After the shrink the snapshots record the survivor width (3), so
	// the restarted process must be launched at -pes 3.
	ropt := base(20, 3)
	ropt.resume = ckdir
	if err := run(ropt); err != nil {
		t.Fatal(err)
	}
	// A resume at the wrong width must be refused, not crash.
	wopt := base(20, 4)
	wopt.resume = ckdir
	if err := run(wopt); err == nil {
		t.Fatal("resume at the wrong PE count accepted")
	}
}

// TestRunElasticRecovery drives the kill→shrink→revive→grow round trip
// from the CLI layer with rebalancing armed: the run must finish at
// full width, leave durable snapshots behind, and a -resume at the
// original PE count must restart from them and also finish (the
// snapshot records the regrown width).
func TestRunElasticRecovery(t *testing.T) {
	ckdir := filepath.Join(t.TempDir(), "ck")
	opt := base(20, 4)
	opt.faults = "kill:pe=2,iter=8;revive:pe=2,iter=16"
	opt.checkpoint = ckdir
	opt.every = 4
	opt.rebalance = true
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
	ropt := base(20, 4)
	ropt.resume = ckdir
	ropt.rebalance = true
	if err := run(ropt); err != nil {
		t.Fatal(err)
	}
}

// TestBadFlagCombos pins the up-front CLI validation: every bad
// combination must be refused before any meshing starts, and the valid
// ones must pass.
func TestBadFlagCombos(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		ok   bool
	}{
		{"defaults", nil, true},
		{"checkpoint-ok", []string{"-checkpoint", filepath.Join(dir, "ck"), "-every", "5"}, true},
		{"resume-ok", []string{"-resume", dir}, true},
		{"unknown-flag", []string{"-bogus"}, false},
		{"positional-args", []string{"stray"}, false},
		{"zero-steps", []string{"-steps", "0"}, false},
		{"negative-pes", []string{"-pes", "-1"}, false},
		{"malformed-plan", []string{"-faults", "garble:pe=0"}, false},
		{"checkpoint-every-zero", []string{"-checkpoint", dir, "-every", "0"}, false},
		{"checkpoint-every-negative", []string{"-checkpoint", dir, "-every", "-3"}, false},
		{"every-without-checkpoint", []string{"-every", "5"}, false},
		{"resume-missing-dir", []string{"-resume", filepath.Join(dir, "no-such-dir")}, false},
		{"resume-not-a-dir", []string{"-resume", file}, false},
		{"rebalance-ok", []string{"-rebalance"}, true},
		{"rebalance-with-revive-plan", []string{"-rebalance", "-faults", "kill:pe=1,iter=5;revive:pe=1,iter=9"}, true},
		{"revive-without-iter", []string{"-faults", "revive:pe=1"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			opt, err := parseOptions(tc.args, &buf)
			if err == nil {
				err = opt.validate()
			}
			if tc.ok && err != nil {
				t.Fatalf("valid combination refused: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("invalid combination accepted")
			}
		})
	}
}
