// Command quakerepro regenerates every paper figure in one shot and
// writes them to a directory (default results/), without going through
// the benchmark harness. It is the "reproduce the paper" button.
//
// With -trace and/or -metrics it also executes a measured distributed
// SMVP pass on the largest requested scenario, so the written telemetry
// contains real per-PE compute/exchange spans and exchanged-byte
// counters that can be cross-checked against the analytic C_max
// accounting. Unknown -format values are an error.
//
// Usage:
//
//	quakerepro                              # sf10+sf5 quick pass into results/
//	quakerepro -scenarios sf10,sf5,sf2 -out results -format md
//	quakerepro -scenarios sf10 -trace trace.json -metrics metrics.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/quake"
	"repro/internal/report"
)

func main() {
	scenarios := flag.String("scenarios", "sf10,sf5", "comma-separated scenario names")
	out := flag.String("out", "results", "output directory")
	format := flag.String("format", "text", "output format: text|md|csv")
	trace := flag.String("trace", "", "write a Chrome trace_event JSON file here")
	metrics := flag.String("metrics", "", "write a metrics snapshot JSON file here")
	pes := flag.Int("pes", 8, "PE count of the measured pass run for -trace/-metrics")
	httpAddr := flag.String("http", "", "serve live observability on this address while the figures regenerate (Prometheus /metrics, /metrics.json, /flight, expvar, pprof)")
	flag.Parse()

	if err := run(*scenarios, *out, *format, *trace, *metrics, *pes, *httpAddr); err != nil {
		fmt.Fprintln(os.Stderr, "quakerepro:", err)
		os.Exit(1)
	}
}

func run(scenarioList, outDir, format, tracePath, metricsPath string, pes int, httpAddr string) error {
	if httpAddr != "" {
		obs.SetEnabled(true)
		addr, shutdown, err := export.Serve(httpAddr)
		if err != nil {
			return fmt.Errorf("-http: %w", err)
		}
		defer shutdown(context.Background())
		fmt.Printf("observability: http://%s/\n", addr)
	}
	telemetry := tracePath != "" || metricsPath != ""
	if telemetry {
		obs.SetEnabled(true)
		obs.StartTrace()
		defer func() {
			obs.SetEnabled(false)
			obs.StopTrace()
		}()
	}
	var ss []quake.Scenario
	for _, name := range strings.Split(scenarioList, ",") {
		s, err := quake.ByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		ss = append(ss, s)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	largest := ss[len(ss)-1]
	method := partition.RCB

	var ext string
	var write func(t *report.Table, f *os.File) error
	switch format {
	case "text":
		ext, write = ".txt", func(t *report.Table, f *os.File) error { return t.Render(f) }
	case "md":
		ext, write = ".md", func(t *report.Table, f *os.File) error { return t.Markdown(f) }
	case "csv":
		ext, write = ".csv", func(t *report.Table, f *os.File) error { return t.CSV(f) }
	default:
		return fmt.Errorf("unknown format %q (want text, md, or csv)", format)
	}
	save := func(name string, t *report.Table, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		f, err := os.Create(filepath.Join(outDir, name+ext))
		if err != nil {
			return err
		}
		defer f.Close()
		return write(t, f)
	}

	type job struct {
		name string
		make func() (*report.Table, error)
	}
	jobs := []job{
		{"fig2_mesh_sizes", func() (*report.Table, error) { return quake.Fig2Table(ss) }},
		{"fig6_beta", func() (*report.Table, error) { return quake.Fig6Table(ss, quake.PECounts, method) }},
		{"fig7_properties", func() (*report.Table, error) { return quake.Fig7Table(ss, quake.PECounts, method) }},
		{"fig8_bisection", func() (*report.Table, error) { return quake.Fig8Table(largest, quake.PECounts, method) }},
		{"fig9_sustained_bw", func() (*report.Table, error) { return quake.Fig9Table(largest, quake.PECounts, method) }},
		{"fig11_half_bandwidth", func() (*report.Table, error) { return quake.Fig11Table(largest, quake.PECounts, method) }},
	}
	for _, j := range jobs {
		t, err := j.make()
		if err := save(j.name, t, err); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", j.name)
	}

	// Figure 10 needs a properties row.
	rows, err := quake.Properties(largest, quake.PECounts, method)
	if err != nil {
		return err
	}
	last := rows[len(rows)-1]
	bursts := []float64{1, 3, 10, 30, 100, 300, 1000, 3000, 10000}
	if err := save("fig10_tradeoff", quake.Fig10Table(last, 5e-9, bursts), nil); err != nil {
		return err
	}
	fmt.Println("wrote fig10_tradeoff")

	// EXFLOW comparison on the largest instance.
	cmp, err := quake.CompareEXFLOW(largest, last)
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("EXFLOW vs %s/%d", largest.Name, last.P),
		"metric", "EXFLOW", "ours", "paper sf2/128")
	t.AddRow("KB/MFLOP", report.F(cmp.EXFLOWKBPerMFLOP, 0),
		report.F(cmp.QuakeKBPerMFLOP, 1), report.F(quake.PaperQuakeKBPerMFLOP, 0))
	t.AddRow("msgs/MFLOP", report.F(cmp.EXFLOWMsgsPerMFLOP, 0),
		report.F(cmp.QuakeMsgsPerMFLOP, 1), report.F(quake.PaperQuakeMsgsPerMFLOP, 0))
	t.AddRow("avg msg KB", report.F(cmp.EXFLOWAvgMsgKB, 1),
		report.F(cmp.QuakeAvgMsgKB, 1), report.F(quake.PaperQuakeAvgMsgKB, 1))
	if err := save("exflow_comparison", t, nil); err != nil {
		return err
	}
	fmt.Println("wrote exflow_comparison")

	// Preset machine efficiencies across the sweep.
	t2 := report.New("Modeled efficiency of preset machines on "+largest.Name,
		"subdomains", "T3D", "T3E", "current-100", "future-200")
	presets := []struct{ tf, tl, tw float64 }{
		{30e-9, 60e-6, 230e-9},
		{14e-9, 22e-6, 55e-9},
		{10e-9, 22e-6, 55e-9},
		{5e-9, 2e-6, 13e-9},
	}
	for _, r := range rows {
		cells := []string{fmt.Sprint(r.P)}
		for _, m := range presets {
			cells = append(cells, report.F(model.Efficiency(r.App(), m.tf, m.tl, m.tw), 3))
		}
		t2.AddRow(cells...)
	}
	if err := save("preset_efficiency", t2, nil); err != nil {
		return err
	}
	fmt.Println("wrote preset_efficiency")

	if !telemetry {
		return nil
	}
	// Measured pass: run the real goroutine-PE SMVP on the largest
	// scenario so the trace carries per-PE compute/exchange spans and
	// the metrics carry observed exchange volumes.
	if err := measuredPass(largest, pes); err != nil {
		return err
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := obs.Default.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote metrics snapshot to %s\n", metricsPath)
	}
	tr := obs.StopTrace()
	if tr != nil {
		if err := report.PhaseSummary("Measured phase summary", tr.PhaseStats()).Render(os.Stdout); err != nil {
			return err
		}
		if tracePath != "" {
			f, err := os.Create(tracePath)
			if err != nil {
				return err
			}
			if err := tr.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing or Perfetto)\n", tracePath)
		}
	}
	return nil
}

// measuredReps is how many barrier-variant SMVPs the measured pass
// executes; one overlapped-variant SMVP follows them.
const measuredReps = 3

// measuredPass executes a few distributed SMVPs (barrier and overlapped
// variants) on goroutine PEs and prints the observed exchange volume
// against the partition profile's analytic C accounting.
func measuredPass(s quake.Scenario, pes int) error {
	m, err := s.Mesh()
	if err != nil {
		return err
	}
	pt, err := partition.PartitionMesh(m, pes, partition.RCB, 1)
	if err != nil {
		return err
	}
	pr, err := partition.Analyze(m, pt)
	if err != nil {
		return err
	}
	dist, err := par.NewDist(m, quake.Material(), pt, pr)
	if err != nil {
		return err
	}
	defer dist.Close()
	x := make([]float64, 3*m.NumNodes())
	for i := range x {
		x[i] = float64(i%11) * 0.1
	}
	y := make([]float64, len(x))
	before := obs.Default.Snapshot()
	const reps = measuredReps
	for i := 0; i < reps; i++ {
		if _, err := dist.SMVP(y, x); err != nil {
			return err
		}
	}
	if _, err := dist.SMVPOverlapped(y, x); err != nil {
		return err
	}
	after := obs.Default.Snapshot()

	// Cross-check: per-PE observed bytes vs 8·C[i] per SMVP invocation.
	var observedMax, analyticMax int64
	for i := 0; i < pes; i++ {
		name := fmt.Sprintf("par.exchange.bytes.pe%d", i)
		observed := (after.Counters[name] - before.Counters[name]) / (reps + 1)
		if observed > observedMax {
			observedMax = observed
		}
		if c := 8 * pr.C[i]; c > analyticMax {
			analyticMax = c
		}
	}
	fmt.Printf("measured pass on %s/%d: observed max exchange %s B/SMVP, analytic 8·C_max %s B\n",
		s.Name, pes, report.Int(observedMax), report.Int(analyticMax))
	return nil
}
