package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunText(t *testing.T) {
	dir := t.TempDir()
	if err := run("sf10", dir, "text"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig2_mesh_sizes.txt", "fig6_beta.txt", "fig7_properties.txt",
		"fig8_bisection.txt", "fig9_sustained_bw.txt", "fig10_tradeoff.txt",
		"fig11_half_bandwidth.txt", "exflow_comparison.txt", "preset_efficiency.txt",
	} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

func TestRunMarkdown(t *testing.T) {
	dir := t.TempDir()
	if err := run("sf10", dir, "md"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig7_properties.md")); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("sf10", dir, "csv"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig7_properties.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("sf10", t.TempDir(), "xml"); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run("bogus", t.TempDir(), "text"); err == nil {
		t.Error("unknown scenario accepted")
	}
}
