package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/quake"
)

func TestRunText(t *testing.T) {
	dir := t.TempDir()
	if err := run("sf10", dir, "text", "", "", 8, ""); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig2_mesh_sizes.txt", "fig6_beta.txt", "fig7_properties.txt",
		"fig8_bisection.txt", "fig9_sustained_bw.txt", "fig10_tradeoff.txt",
		"fig11_half_bandwidth.txt", "exflow_comparison.txt", "preset_efficiency.txt",
	} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

func TestRunMarkdown(t *testing.T) {
	dir := t.TempDir()
	if err := run("sf10", dir, "md", "", "", 8, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig7_properties.md")); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("sf10", dir, "csv", "", "", 8, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig7_properties.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("sf10", t.TempDir(), "xml", "", "", 8, ""); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run("bogus", t.TempDir(), "text", "", "", 8, ""); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestRunTelemetry is the end-to-end acceptance check: quakerepro with
// -trace/-metrics emits valid Chrome trace JSON with distinct
// compute/exchange spans per PE, and per-PE exchanged-byte counters
// that match the partition profile's analytic C accounting.
func TestRunTelemetry(t *testing.T) {
	const pes = 4
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")

	before := obs.Default.Snapshot()
	if err := run("sf10", dir, "text", tracePath, metricsPath, pes, ""); err != nil {
		t.Fatal(err)
	}

	// --- metrics: observed exchange bytes vs analytic C accounting ---
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	m, err := quake.SF10.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := partition.PartitionMesh(m, pes, partition.RCB, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := partition.Analyze(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	// The measured pass runs measuredReps barrier SMVPs plus one
	// overlapped SMVP; each moves 8·C[i] bytes through PE i.
	const invocations = measuredReps + 1
	for i := 0; i < pes; i++ {
		name := fmt.Sprintf("par.exchange.bytes.pe%d", i)
		delta := snap.Counters[name] - before.Counters[name]
		want := invocations * 8 * pr.C[i]
		if delta != want {
			t.Errorf("%s: observed %d bytes, analytic %d", name, delta, want)
		}
	}

	// --- trace: valid JSON, compute+exchange spans on every PE track ---
	data, err = os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	computeTids := make(map[int]bool)
	exchangeTids := make(map[int]bool)
	for _, e := range file.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		switch e.Cat {
		case "compute":
			computeTids[e.Tid] = true
		case "exchange":
			exchangeTids[e.Tid] = true
		}
	}
	if len(computeTids) < pes || len(exchangeTids) < pes {
		t.Fatalf("want compute and exchange spans on %d distinct PE tracks, got %d/%d",
			pes, len(computeTids), len(exchangeTids))
	}
}
