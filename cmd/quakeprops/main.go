// Command quakeprops partitions the scenario meshes across the paper's
// subdomain sweep and prints the SMVP property tables: Figure 7 (F,
// C_max, B_max, M_avg, F/C_max) and Figure 6 (the β error bounds).
//
// Usage:
//
//	quakeprops                       # sf10+sf5 quick sweep
//	quakeprops -scenarios sf10,sf5,sf2 -pes 4,8,16,32,64,128
//	quakeprops -method random        # partition-quality ablation
//	quakeprops -csv                  # CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/partition"
	"repro/internal/quake"
	"repro/internal/report"
)

func main() {
	scenarios := flag.String("scenarios", "sf10,sf5", "comma-separated scenario names")
	pes := flag.String("pes", "4,8,16,32,64,128", "comma-separated PE counts")
	method := flag.String("method", "rcb", "partitioner: rcb|inertial|random|linear|stripes-z")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	if err := run(*scenarios, *pes, *method, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "quakeprops:", err)
		os.Exit(1)
	}
}

func run(scenarioList, peList, methodName string, csv bool) error {
	var ss []quake.Scenario
	for _, name := range strings.Split(scenarioList, ",") {
		s, err := quake.ByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		ss = append(ss, s)
	}
	pcounts, err := parseInts(peList)
	if err != nil {
		return err
	}
	method, err := parseMethod(methodName)
	if err != nil {
		return err
	}

	emit := func(t *report.Table) error {
		if csv {
			return t.CSV(os.Stdout)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		_, err := fmt.Println()
		return err
	}

	t7, err := quake.Fig7Table(ss, pcounts, method)
	if err != nil {
		return err
	}
	if err := emit(t7); err != nil {
		return err
	}
	t6, err := quake.Fig6Table(ss, pcounts, method)
	if err != nil {
		return err
	}
	return emit(t6)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad PE count %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseMethod(name string) (partition.Method, error) {
	for _, m := range []partition.Method{
		partition.RCB, partition.Inertial, partition.Random,
		partition.Linear, partition.StripesZ, partition.Multilevel,
	} {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown method %q", name)
}
