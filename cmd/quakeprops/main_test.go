package main

import "testing"

func TestRun(t *testing.T) {
	if err := run("sf10", "4,8", "rcb", false); err != nil {
		t.Fatal(err)
	}
	if err := run("sf10", "4", "multilevel", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", "4", "rcb", false); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run("sf10", "x", "rcb", false); err == nil {
		t.Error("bad PE list accepted")
	}
	if err := run("sf10", "4", "magic", false); err == nil {
		t.Error("unknown method accepted")
	}
}
