package main

import "testing"

func TestRun(t *testing.T) {
	if err := run("sf10", 2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 2, 2); err == nil {
		t.Error("unknown scenario accepted")
	}
}
