// Command spark98 runs the Spark98-style SMVP kernel suite (see the
// paper's postscript) on a scenario's stiffness matrix and reports the
// throughput of each storage/parallelization variant.
//
// Usage:
//
//	spark98                      # sf10, all kernels, GOMAXPROCS threads
//	spark98 -scenario sf5 -iters 20 -threads 8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/fem"
	"repro/internal/model"
	"repro/internal/quake"
	"repro/internal/report"
	"repro/internal/spark"
)

func main() {
	scenario := flag.String("scenario", "sf10", "scenario name")
	iters := flag.Int("iters", 10, "SMVPs per kernel")
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "threads for parallel kernels")
	flag.Parse()

	if err := run(*scenario, *iters, *threads); err != nil {
		fmt.Fprintln(os.Stderr, "spark98:", err)
		os.Exit(1)
	}
}

func run(name string, iters, threads int) error {
	s, err := quake.ByName(name)
	if err != nil {
		return err
	}
	m, err := s.Mesh()
	if err != nil {
		return err
	}
	sys, err := fem.Assemble(m, quake.Material())
	if err != nil {
		return err
	}
	suite, err := spark.NewSuite(sys.K)
	if err != nil {
		return err
	}
	flops := float64(2*sys.K.NNZ()) * float64(iters)
	x := make([]float64, 3*m.NumNodes())
	y := make([]float64, 3*m.NumNodes())
	for i := range x {
		x[i] = float64(i%13) * 0.17
	}

	fmt.Printf("spark98 kernels on %s (%s nonzeros, %d iterations, %d threads)\n\n",
		s.Name, report.Int(int64(sys.K.NNZ())), iters, threads)
	tab := report.New("", "kernel", "storage", "parallel", "time/SMVP", "MFLOPS")
	bench := func(kernel, storage, par string, f func()) {
		f() // warm up
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		el := time.Since(start).Seconds()
		tab.AddRow(kernel, storage, par,
			report.SI(el/float64(iters), "s"),
			report.F(model.MFLOPS(el/flops), 0))
	}
	bench(spark.KernelSMV, "scalar CSR", "no", func() { suite.SMV(y, x) })
	bench(spark.KernelBMV, "3x3 BCSR", "no", func() { suite.BMV(y, x) })
	bench(spark.KernelSMVSym, "sym BCSR", "no", func() { suite.SMVSym(y, x) })
	bench(spark.KernelSMVTh, "3x3 BCSR", fmt.Sprintf("%d threads", threads),
		func() { suite.SMVTh(y, x, threads) })
	bench(spark.KernelRMV, "sym BCSR", fmt.Sprintf("%d repl", threads),
		func() { suite.RMV(y, x, threads) })
	bench(spark.KernelLockMV, "sym BCSR", fmt.Sprintf("%d locks", threads),
		func() { suite.LockMV(y, x, threads) })
	return tab.Render(os.Stdout)
}
