package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkDistMulVec-8         	     100	    123456 ns/op	      64 B/op	       2 allocs/op
BenchmarkFig7Properties-8     	       2	 510000000 ns/op
BenchmarkTfLocalSMVP/sf10-8   	      50	  20000.5 ns/op
--- BENCH: BenchmarkSMVPShare-8
    bench_test.go:280: smvp share 0.85
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkDistMulVec":       123456,
		"BenchmarkFig7Properties":   510000000,
		"BenchmarkTfLocalSMVP/sf10": 20000.5,
	}
	if len(rep.NsPerOp) != len(want) {
		t.Fatalf("parsed %d results, want %d: %v", len(rep.NsPerOp), len(want), rep.NsPerOp)
	}
	for name, ns := range want {
		if rep.NsPerOp[name] != ns {
			t.Errorf("%s = %v, want %v", name, rep.NsPerOp[name], ns)
		}
	}
	if rep.GoVersion == "" || rep.Date == "" {
		t.Error("missing run metadata")
	}
	if rep.GOMAXPROCS != 8 {
		t.Errorf("GOMAXPROCS = %d, want 8 (from the -8 name suffix)", rep.GOMAXPROCS)
	}
	if rep.NumCPU <= 0 {
		t.Errorf("NumCPU = %d, want > 0", rep.NumCPU)
	}
	if got := rep.BytesPerOp["BenchmarkDistMulVec"]; got != 64 {
		t.Errorf("BytesPerOp = %v, want 64", got)
	}
	if got := rep.AllocsPerOp["BenchmarkDistMulVec"]; got != 2 {
		t.Errorf("AllocsPerOp = %v, want 2", got)
	}
	if _, ok := rep.AllocsPerOp["BenchmarkFig7Properties"]; ok {
		t.Error("allocs recorded for a line without -benchmem columns")
	}
}

// TestParseNoSuffix: output from a GOMAXPROCS=1 run has no -N suffix;
// the report then falls back to this process's setting rather than
// recording zero.
func TestParseNoSuffix(t *testing.T) {
	rep, err := parse(strings.NewReader("BenchmarkX \t 10 \t 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOMAXPROCS <= 0 {
		t.Errorf("GOMAXPROCS = %d, want positive fallback", rep.GOMAXPROCS)
	}
	if rep.BytesPerOp != nil || rep.AllocsPerOp != nil {
		t.Error("memory maps should be omitted when no -benchmem columns exist")
	}
}

// TestGitMetadata: run inside this repository, the report must carry
// HEAD's full hash; the dirty flag just has to be a sane bool (the
// test tree may legitimately be mid-edit).
func TestGitMetadata(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not installed")
	}
	rep, err := parse(strings.NewReader("BenchmarkX \t 10 \t 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.GitCommit) != 40 {
		t.Fatalf("GitCommit = %q, want a 40-hex hash", rep.GitCommit)
	}
	for _, c := range rep.GitCommit {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("GitCommit %q contains non-hex %q", rep.GitCommit, c)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, out, "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.NsPerOp["BenchmarkDistMulVec"] != 123456 {
		t.Fatalf("round trip lost data: %+v", rep)
	}
}

// TestObsOverhead: Enabled/Disabled benchmark pairs from the telemetry
// package collapse into an obs_overhead entry; unpaired names do not.
func TestObsOverhead(t *testing.T) {
	const out = `BenchmarkHistogramEnabled-8 	 1000000 	 12.5 ns/op
BenchmarkHistogramDisabled-8 	 1000000 	 2.5 ns/op
BenchmarkPEAccumEnabled-8 	 1000000 	 8.0 ns/op
BenchmarkFlightRecord-8 	 1000000 	 50 ns/op
`
	rep, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ObsOverhead) != 1 {
		t.Fatalf("ObsOverhead = %v, want exactly the Histogram pair", rep.ObsOverhead)
	}
	ov, ok := rep.ObsOverhead["Histogram"]
	if !ok || ov.EnabledNs != 12.5 || ov.DisabledNs != 2.5 || ov.DeltaNs != 10 {
		t.Errorf("Histogram overhead = %+v, want {12.5 2.5 10}", ov)
	}
}

// TestPhasePercentiles: a telemetry snapshot produced by the real
// registry folds into the report as histogram percentiles.
func TestPhasePercentiles(t *testing.T) {
	r := obs.NewRegistry()
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	h := r.Histogram("par.phase.compute.hist_ns")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "metrics.json")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, out, snap, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	pp, ok := rep.Phases["par.phase.compute.hist_ns"]
	if !ok {
		t.Fatalf("phase_percentiles missing the histogram: %+v", rep.Phases)
	}
	if pp.Count != 100 || pp.MaxNS != 100 {
		t.Errorf("count=%d max=%d, want 100/100", pp.Count, pp.MaxNS)
	}
	if pp.P50NS <= 0 || pp.P95NS < pp.P50NS || float64(pp.MaxNS) < pp.P95NS {
		t.Errorf("percentile ordering broken: p50=%g p95=%g max=%d", pp.P50NS, pp.P95NS, pp.MaxNS)
	}

	// A snapshot with no observations is an explicit error, not a
	// silently empty report section.
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"counters":{},"gauges":{},"histograms":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, out, empty, ""); err == nil {
		t.Error("want error for a snapshot with no histogram observations")
	}
}

// TestRecoverySection: recover.* counters and the rebalance-λ gauge in
// a -metrics snapshot fold into the report's recovery section; a
// snapshot without recovery activity omits it entirely.
func TestRecoverySection(t *testing.T) {
	r := obs.NewRegistry()
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	r.Histogram("par.phase.compute.hist_ns").Observe(42)
	r.Counter("recover.shrinks").Add(2)
	r.Counter("recover.grows").Add(2)
	r.Counter("recover.migrations").Add(3)
	r.Counter("recover.resumes").Add(5)
	r.Gauge("recover.rebalance.lambda").Set(1.07)

	dir := t.TempDir()
	snap := filepath.Join(dir, "metrics.json")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, out, snap, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Recovery == nil {
		t.Fatal("recovery section missing from the report")
	}
	got := *rep.Recovery
	want := RecoveryStats{Shrinks: 2, Grows: 2, Migrations: 3, Resumes: 5, RebalanceLambda: 1.07}
	if got != want {
		t.Errorf("recovery = %+v, want %+v", got, want)
	}

	// A quiet snapshot (histograms only) omits the section.
	quiet := obs.NewRegistry()
	quiet.Histogram("par.phase.compute.hist_ns").Observe(7)
	qs := filepath.Join(dir, "quiet.json")
	qf, err := os.Create(qs)
	if err != nil {
		t.Fatal(err)
	}
	if err := quiet.Snapshot().WriteJSON(qf); err != nil {
		t.Fatal(err)
	}
	qf.Close()
	if err := run(in, out, qs, ""); err != nil {
		t.Fatal(err)
	}
	if data, err = os.ReadFile(out); err != nil {
		t.Fatal(err)
	}
	rep = Report{}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Recovery != nil {
		t.Errorf("quiet snapshot produced a recovery section: %+v", rep.Recovery)
	}
}

// kernelOutput carries the ablation sub-benchmarks and both CG solves,
// the full population of the report's kernels section.
const kernelOutput = `BenchmarkAblationKernels/csr-8 	 200 	 5000 ns/op
BenchmarkAblationKernels/bcsr-8 	 200 	 2400 ns/op
BenchmarkAblationKernels/sym-8 	 200 	 1600 ns/op
BenchmarkAblationKernels/csr_seg-8 	 200 	 4800 ns/op
BenchmarkAblationKernels/fused-8 	 200 	 2000 ns/op
BenchmarkDistCGSolve-8 	 10 	 40000000 ns/op
BenchmarkDistCGSolveFused-8 	 10 	 30000000 ns/op
`

// TestKernelsSection: the kernel benchmarks fold into the kernels map
// under their short keys, and a -prev snapshot attaches speedup deltas.
func TestKernelsSection(t *testing.T) {
	dir := t.TempDir()
	prev := filepath.Join(dir, "BENCH_2026-08-05.json")
	prevRep := map[string]any{"ns_per_op": map[string]float64{
		"BenchmarkAblationKernels/csr": 6000,
		"BenchmarkDistCGSolve":         44000000,
	}}
	raw, _ := json.Marshal(prevRep)
	if err := os.WriteFile(prev, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(in, []byte(kernelOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, out, "", prev); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"csr", "bcsr", "sym", "csr_seg", "fused", "cg_unfused", "cg_fused"} {
		if _, ok := rep.Kernels[key]; !ok {
			t.Errorf("kernels section missing %q: %+v", key, rep.Kernels)
		}
	}
	csr := rep.Kernels["csr"]
	if csr.NsPerOp != 5000 || csr.PrevNsPerOp != 6000 || csr.SpeedupVsPrev != 1.2 {
		t.Errorf("csr = %+v, want {5000 6000 1.2}", csr)
	}
	// No entry in the previous snapshot → current-only, no phantom deltas.
	if f := rep.Kernels["fused"]; f.PrevNsPerOp != 0 || f.SpeedupVsPrev != 0 {
		t.Errorf("fused should have no prev delta, got %+v", f)
	}
	if cg := rep.Kernels["cg_unfused"]; cg.SpeedupVsPrev != 1.1 {
		t.Errorf("cg_unfused speedup = %v, want 1.1", cg.SpeedupVsPrev)
	}
}

// TestKernelsPrevAutoDiscovery: with no -prev, the newest BENCH_*.json
// in the cwd is used — skipping the file being written, so a same-day
// rerun still compares against the real predecessor.
func TestKernelsPrevAutoDiscovery(t *testing.T) {
	dir := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	older := map[string]any{"ns_per_op": map[string]float64{"BenchmarkAblationKernels/csr": 10000}}
	raw, _ := json.Marshal(older)
	if err := os.WriteFile("BENCH_2026-08-01.json", raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// The out file already exists (rerun): it must not be chosen as prev.
	if err := os.WriteFile("BENCH_2026-08-08.json", []byte(`{"ns_per_op":{"BenchmarkAblationKernels/csr":1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("bench.txt", []byte(kernelOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("bench.txt", "BENCH_2026-08-08.json", "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile("BENCH_2026-08-08.json")
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if csr := rep.Kernels["csr"]; csr.PrevNsPerOp != 10000 || csr.SpeedupVsPrev != 2 {
		t.Errorf("auto-discovered prev wrong: %+v, want prev=10000 speedup=2", csr)
	}
}

// TestRunGuard: the -guard gate passes when fused is at or under
// unfused × slack and fails when it regresses past it (or when the
// guard benchmarks are missing entirely).
func TestRunGuard(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	ok := write("ok.txt", "BenchmarkKernelGuard/unfused-8 \t 100 \t 3000 ns/op\nBenchmarkKernelGuard/fused-8 \t 100 \t 2500 ns/op\n")
	if err := runGuard(ok, 1.10); err != nil {
		t.Errorf("guard failed on a faster fused kernel: %v", err)
	}
	slow := write("slow.txt", "BenchmarkKernelGuard/unfused-8 \t 100 \t 3000 ns/op\nBenchmarkKernelGuard/fused-8 \t 100 \t 3500 ns/op\n")
	if err := runGuard(slow, 1.10); err == nil {
		t.Error("guard passed a fused kernel 1.17x slower than unfused")
	}
	// Within slack: slightly slower fused is tolerated (timer noise on a
	// loaded CI box), the gate is for real regressions.
	if err := runGuard(slow, 1.20); err != nil {
		t.Errorf("guard failed within slack: %v", err)
	}
	missing := write("missing.txt", "BenchmarkKernelGuard/unfused-8 \t 100 \t 3000 ns/op\n")
	if err := runGuard(missing, 1.10); err == nil {
		t.Error("guard passed with the fused benchmark missing")
	}
}

func TestRunNoResults(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(in, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, filepath.Join(dir, "out.json"), "", ""); err == nil {
		t.Fatal("want error on input with no benchmark lines")
	}
}
