package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkDistMulVec-8         	     100	    123456 ns/op	      64 B/op	       2 allocs/op
BenchmarkFig7Properties-8     	       2	 510000000 ns/op
BenchmarkTfLocalSMVP/sf10-8   	      50	  20000.5 ns/op
--- BENCH: BenchmarkSMVPShare-8
    bench_test.go:280: smvp share 0.85
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkDistMulVec":       123456,
		"BenchmarkFig7Properties":   510000000,
		"BenchmarkTfLocalSMVP/sf10": 20000.5,
	}
	if len(rep.NsPerOp) != len(want) {
		t.Fatalf("parsed %d results, want %d: %v", len(rep.NsPerOp), len(want), rep.NsPerOp)
	}
	for name, ns := range want {
		if rep.NsPerOp[name] != ns {
			t.Errorf("%s = %v, want %v", name, rep.NsPerOp[name], ns)
		}
	}
	if rep.GoVersion == "" || rep.Date == "" {
		t.Error("missing run metadata")
	}
	if rep.GOMAXPROCS != 8 {
		t.Errorf("GOMAXPROCS = %d, want 8 (from the -8 name suffix)", rep.GOMAXPROCS)
	}
	if rep.NumCPU <= 0 {
		t.Errorf("NumCPU = %d, want > 0", rep.NumCPU)
	}
	if got := rep.BytesPerOp["BenchmarkDistMulVec"]; got != 64 {
		t.Errorf("BytesPerOp = %v, want 64", got)
	}
	if got := rep.AllocsPerOp["BenchmarkDistMulVec"]; got != 2 {
		t.Errorf("AllocsPerOp = %v, want 2", got)
	}
	if _, ok := rep.AllocsPerOp["BenchmarkFig7Properties"]; ok {
		t.Error("allocs recorded for a line without -benchmem columns")
	}
}

// TestParseNoSuffix: output from a GOMAXPROCS=1 run has no -N suffix;
// the report then falls back to this process's setting rather than
// recording zero.
func TestParseNoSuffix(t *testing.T) {
	rep, err := parse(strings.NewReader("BenchmarkX \t 10 \t 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOMAXPROCS <= 0 {
		t.Errorf("GOMAXPROCS = %d, want positive fallback", rep.GOMAXPROCS)
	}
	if rep.BytesPerOp != nil || rep.AllocsPerOp != nil {
		t.Error("memory maps should be omitted when no -benchmem columns exist")
	}
}

// TestGitMetadata: run inside this repository, the report must carry
// HEAD's full hash; the dirty flag just has to be a sane bool (the
// test tree may legitimately be mid-edit).
func TestGitMetadata(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not installed")
	}
	rep, err := parse(strings.NewReader("BenchmarkX \t 10 \t 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.GitCommit) != 40 {
		t.Fatalf("GitCommit = %q, want a 40-hex hash", rep.GitCommit)
	}
	for _, c := range rep.GitCommit {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("GitCommit %q contains non-hex %q", rep.GitCommit, c)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.NsPerOp["BenchmarkDistMulVec"] != 123456 {
		t.Fatalf("round trip lost data: %+v", rep)
	}
}

func TestRunNoResults(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(in, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, filepath.Join(dir, "out.json")); err == nil {
		t.Fatal("want error on input with no benchmark lines")
	}
}
