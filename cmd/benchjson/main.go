// Command benchjson converts `go test -bench` output into a
// machine-readable JSON file mapping benchmark name to ns/op — plus,
// when the run used -benchmem, B/op and allocs/op — so the repository's
// performance and allocation trajectory can be tracked commit over
// commit (the `make bench-json` target writes BENCH_<date>.json this
// way).
//
// Usage:
//
// With -metrics it additionally folds a telemetry snapshot (the JSON
// written by `quakerepro -metrics` or served at /metrics.json) into the
// report as per-histogram p50/p95/max, so phase-latency percentiles
// ride along with the ns/op numbers. Enabled/Disabled benchmark pairs
// from internal/obs are summarized under obs_overhead, pinning the
// per-operation cost of leaving telemetry on.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH_2026-08-05.json
//	benchjson -in bench_output.txt -metrics metrics.json -out BENCH_2026-08-05.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Report is the file's shape: run metadata plus per-benchmark metrics.
// GOMAXPROCS is the processor width the benchmarks themselves ran at,
// recovered from the -N suffix go test appends to benchmark names (the
// earlier behavior — recording benchjson's own GOMAXPROCS — said
// nothing about the run being described). NumCPU records the host
// width so a throttled run is visible.
type Report struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	// GitCommit and GitDirty pin the exact source state the benchmarks
	// ran against, so a BENCH_<date>.json can be matched back to a
	// commit (and a dirty tree is never mistaken for one). Both are
	// omitted when git is unavailable or the cwd is not a repository.
	GitCommit   string             `json:"git_commit,omitempty"`
	GitDirty    bool               `json:"git_dirty,omitempty"`
	NumCPU      int                `json:"num_cpu"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	NsPerOp     map[string]float64 `json:"ns_per_op"`
	BytesPerOp  map[string]float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
	// ObsOverhead pairs every BenchmarkXxxEnabled/BenchmarkXxxDisabled
	// couple found in the run — the telemetry primitives benchmark both
	// states — so the cost of leaving collection on is tracked per
	// commit alongside the kernel numbers.
	ObsOverhead map[string]Overhead `json:"obs_overhead,omitempty"`
	// Phases summarizes the histograms of a -metrics telemetry snapshot
	// (quakerepro -metrics, or a saved /metrics.json) as latency
	// percentiles, keyed by metric name.
	Phases map[string]PhasePercentiles `json:"phase_percentiles,omitempty"`
}

// Overhead is one enabled-vs-disabled benchmark pair.
type Overhead struct {
	EnabledNs  float64 `json:"enabled_ns"`
	DisabledNs float64 `json:"disabled_ns"`
	DeltaNs    float64 `json:"delta_ns"`
}

// PhasePercentiles are the rank-interpolated percentiles of one
// telemetry histogram.
type PhasePercentiles struct {
	Count int64   `json:"count"`
	P50NS float64 `json:"p50_ns"`
	P95NS float64 `json:"p95_ns"`
	MaxNS int64   `json:"max_ns"`
}

// benchLine matches one benchmark result line, e.g.
// "BenchmarkDistMulVec-8   100   123456 ns/op   64 B/op   2 allocs/op",
// capturing the name, the GOMAXPROCS suffix, ns/op, and the rest.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

// memCols matches the -benchmem columns in a result line's tail.
var (
	bytesCol  = regexp.MustCompile(`([0-9.]+) B/op`)
	allocsCol = regexp.MustCompile(`([0-9.]+) allocs/op`)
)

func main() {
	in := flag.String("in", "", "input file (default: stdin)")
	out := flag.String("out", "", "output JSON file (default: stdout)")
	metrics := flag.String("metrics", "", "telemetry snapshot JSON to fold in as phase percentiles")
	flag.Parse()

	if err := run(*in, *out, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(inPath, outPath, metricsPath string) error {
	var r io.Reader = os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rep, err := parse(r)
	if err != nil {
		return err
	}
	if len(rep.NsPerOp) == 0 {
		return fmt.Errorf("no benchmark results found in input")
	}
	if metricsPath != "" {
		rep.Phases, err = phasePercentiles(metricsPath)
		if err != nil {
			return fmt.Errorf("-metrics: %w", err)
		}
	}
	var w io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parse scans benchmark output. When the same benchmark appears more
// than once (several packages, -count>1), the last result wins. The
// report's GOMAXPROCS is the widest -N suffix seen, falling back to
// this process's setting when the output carries no suffix.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{
		Date:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		NsPerOp:     make(map[string]float64),
		BytesPerOp:  make(map[string]float64),
		AllocsPerOp: make(map[string]float64),
	}
	rep.GitCommit, rep.GitDirty = gitInfo()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		rep.NsPerOp[m[1]] = ns
		if procs, err := strconv.Atoi(m[2]); err == nil && procs > rep.GOMAXPROCS {
			rep.GOMAXPROCS = procs
		}
		if bm := bytesCol.FindStringSubmatch(m[4]); bm != nil {
			if v, err := strconv.ParseFloat(bm[1], 64); err == nil {
				rep.BytesPerOp[m[1]] = v
			}
		}
		if am := allocsCol.FindStringSubmatch(m[4]); am != nil {
			if v, err := strconv.ParseFloat(am[1], 64); err == nil {
				rep.AllocsPerOp[m[1]] = v
			}
		}
	}
	if rep.GOMAXPROCS == 0 {
		rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	}
	if len(rep.BytesPerOp) == 0 {
		rep.BytesPerOp = nil
	}
	if len(rep.AllocsPerOp) == 0 {
		rep.AllocsPerOp = nil
	}
	rep.ObsOverhead = obsOverhead(rep.NsPerOp)
	return rep, sc.Err()
}

// obsOverhead pairs BenchmarkXxxEnabled with BenchmarkXxxDisabled and
// keys the result by the bare Xxx; unpaired benchmarks are skipped.
func obsOverhead(ns map[string]float64) map[string]Overhead {
	out := make(map[string]Overhead)
	for name, en := range ns {
		if !strings.HasSuffix(name, "Enabled") {
			continue
		}
		base := strings.TrimSuffix(name, "Enabled")
		dis, ok := ns[base+"Disabled"]
		if !ok {
			continue
		}
		key := strings.TrimPrefix(base, "Benchmark")
		out[key] = Overhead{EnabledNs: en, DisabledNs: dis, DeltaNs: en - dis}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// phasePercentiles reads a telemetry snapshot and summarizes every
// non-empty histogram as p50/p95/max.
func phasePercentiles(path string) (map[string]PhasePercentiles, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s obs.Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, err
	}
	out := make(map[string]PhasePercentiles)
	for name, h := range s.Histograms {
		if h.Count == 0 {
			continue
		}
		out[name] = PhasePercentiles{
			Count: h.Count,
			P50NS: h.Quantile(0.50),
			P95NS: h.Quantile(0.95),
			MaxNS: h.Max,
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no histogram observations in snapshot", path)
	}
	return out, nil
}

// gitInfo returns HEAD's hash and whether the working tree differs
// from it. Both degrade to zero values when git is missing or the cwd
// is outside a repository, so the tool stays usable on a bare
// benchmark box.
func gitInfo() (commit string, dirty bool) {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "", false
	}
	commit = strings.TrimSpace(string(out))
	st, err := exec.Command("git", "status", "--porcelain").Output()
	return commit, err == nil && len(strings.TrimSpace(string(st))) > 0
}
