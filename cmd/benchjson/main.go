// Command benchjson converts `go test -bench` output into a
// machine-readable JSON file mapping benchmark name to ns/op, so the
// repository's performance trajectory can be tracked commit over commit
// (the `make bench-json` target writes BENCH_<date>.json this way).
//
// Usage:
//
//	go test -bench=. ./... | benchjson -out BENCH_2026-08-05.json
//	benchjson -in bench_output.txt -out BENCH_2026-08-05.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"time"
)

// Report is the file's shape: run metadata plus name → ns/op.
type Report struct {
	Date       string             `json:"date"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NsPerOp    map[string]float64 `json:"ns_per_op"`
}

// benchLine matches one benchmark result line, e.g.
// "BenchmarkDistMulVec-8   100   123456 ns/op   64 B/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	in := flag.String("in", "", "input file (default: stdin)")
	out := flag.String("out", "", "output JSON file (default: stdout)")
	flag.Parse()

	if err := run(*in, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(inPath, outPath string) error {
	var r io.Reader = os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rep, err := parse(r)
	if err != nil {
		return err
	}
	if len(rep.NsPerOp) == 0 {
		return fmt.Errorf("no benchmark results found in input")
	}
	var w io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parse scans benchmark output. When the same benchmark appears more
// than once (several packages, -count>1), the last result wins.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NsPerOp:    make(map[string]float64),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		rep.NsPerOp[m[1]] = ns
	}
	return rep, sc.Err()
}
