// Command benchjson converts `go test -bench` output into a
// machine-readable JSON file mapping benchmark name to ns/op — plus,
// when the run used -benchmem, B/op and allocs/op — so the repository's
// performance and allocation trajectory can be tracked commit over
// commit (the `make bench-json` target writes BENCH_<date>.json this
// way).
//
// Usage:
//
// With -metrics it additionally folds a telemetry snapshot (the JSON
// written by `quakerepro -metrics` or served at /metrics.json) into the
// report as per-histogram p50/p95/max, so phase-latency percentiles
// ride along with the ns/op numbers. Enabled/Disabled benchmark pairs
// from internal/obs are summarized under obs_overhead, pinning the
// per-operation cost of leaving telemetry on.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH_2026-08-05.json
//	benchjson -in bench_output.txt -metrics metrics.json -out BENCH_2026-08-05.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Report is the file's shape: run metadata plus per-benchmark metrics.
// GOMAXPROCS is the processor width the benchmarks themselves ran at,
// recovered from the -N suffix go test appends to benchmark names (the
// earlier behavior — recording benchjson's own GOMAXPROCS — said
// nothing about the run being described). NumCPU records the host
// width so a throttled run is visible.
type Report struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	// GitCommit and GitDirty pin the exact source state the benchmarks
	// ran against, so a BENCH_<date>.json can be matched back to a
	// commit (and a dirty tree is never mistaken for one). Both are
	// omitted when git is unavailable or the cwd is not a repository.
	GitCommit   string             `json:"git_commit,omitempty"`
	GitDirty    bool               `json:"git_dirty,omitempty"`
	NumCPU      int                `json:"num_cpu"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	NsPerOp     map[string]float64 `json:"ns_per_op"`
	BytesPerOp  map[string]float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
	// ObsOverhead pairs every BenchmarkXxxEnabled/BenchmarkXxxDisabled
	// couple found in the run — the telemetry primitives benchmark both
	// states — so the cost of leaving collection on is tracked per
	// commit alongside the kernel numbers.
	ObsOverhead map[string]Overhead `json:"obs_overhead,omitempty"`
	// Phases summarizes the histograms of a -metrics telemetry snapshot
	// (quakerepro -metrics, or a saved /metrics.json) as latency
	// percentiles, keyed by metric name.
	Phases map[string]PhasePercentiles `json:"phase_percentiles,omitempty"`
	// Recovery summarizes the elastic-recovery activity of a -metrics
	// telemetry snapshot — shrink/grow/migration/resume counts and the
	// last measured compute imbalance λ — so a soak run's report shows
	// what the supervisor absorbed. Omitted when the snapshot recorded
	// no recovery activity.
	Recovery *RecoveryStats `json:"recovery,omitempty"`
	// Kernels is the A/B view of the SMVP kernel variants and the
	// fused-vs-unfused CG solves, keyed by short kernel name (csr, bcsr,
	// sym, csr_seg, fused, cg_unfused, cg_fused). When a previous
	// BENCH_*.json is available (-prev, or auto-discovered), each entry
	// carries that snapshot's ns/op and the speedup against it, so a
	// kernel regression is visible in the report itself, not only by
	// diffing files.
	Kernels map[string]KernelStat `json:"kernels,omitempty"`
}

// KernelStat is one kernel's A/B entry.
type KernelStat struct {
	NsPerOp float64 `json:"ns_per_op"`
	// PrevNsPerOp and SpeedupVsPrev compare against the previous
	// snapshot; both are absent when no previous file carries the
	// benchmark. SpeedupVsPrev > 1 means this run is faster.
	PrevNsPerOp   float64 `json:"prev_ns_per_op,omitempty"`
	SpeedupVsPrev float64 `json:"speedup_vs_prev,omitempty"`
}

// kernelBenchmarks maps benchmark names to the short kernel keys of the
// report's kernels section.
var kernelBenchmarks = map[string]string{
	"BenchmarkAblationKernels/csr":     "csr",
	"BenchmarkAblationKernels/bcsr":    "bcsr",
	"BenchmarkAblationKernels/sym":     "sym",
	"BenchmarkAblationKernels/csr_seg": "csr_seg",
	"BenchmarkAblationKernels/fused":   "fused",
	"BenchmarkDistCGSolve":             "cg_unfused",
	"BenchmarkDistCGSolveFused":        "cg_fused",
}

// RecoveryStats is the report's recovery section, read from the
// recover.* metrics of a telemetry snapshot.
type RecoveryStats struct {
	Shrinks         int64   `json:"shrinks"`
	Grows           int64   `json:"grows"`
	Migrations      int64   `json:"migrations"`
	Resumes         int64   `json:"resumes"`
	RebalanceLambda float64 `json:"rebalance_lambda,omitempty"`
}

// Overhead is one enabled-vs-disabled benchmark pair.
type Overhead struct {
	EnabledNs  float64 `json:"enabled_ns"`
	DisabledNs float64 `json:"disabled_ns"`
	DeltaNs    float64 `json:"delta_ns"`
}

// PhasePercentiles are the rank-interpolated percentiles of one
// telemetry histogram.
type PhasePercentiles struct {
	Count int64   `json:"count"`
	P50NS float64 `json:"p50_ns"`
	P95NS float64 `json:"p95_ns"`
	MaxNS int64   `json:"max_ns"`
}

// benchLine matches one benchmark result line, e.g.
// "BenchmarkDistMulVec-8   100   123456 ns/op   64 B/op   2 allocs/op",
// capturing the name, the GOMAXPROCS suffix, ns/op, and the rest.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

// memCols matches the -benchmem columns in a result line's tail.
var (
	bytesCol  = regexp.MustCompile(`([0-9.]+) B/op`)
	allocsCol = regexp.MustCompile(`([0-9.]+) allocs/op`)
)

func main() {
	in := flag.String("in", "", "input file (default: stdin)")
	out := flag.String("out", "", "output JSON file (default: stdout)")
	metrics := flag.String("metrics", "", "telemetry snapshot JSON to fold in as phase percentiles")
	prev := flag.String("prev", "", "previous BENCH_*.json for kernel speedup deltas (default: newest BENCH_*.json in cwd, excluding -out)")
	guard := flag.Bool("guard", false, "guard mode: read BenchmarkKernelGuard/{unfused,fused} results and fail when fused is slower than unfused beyond -slack")
	slack := flag.Float64("slack", 1.10, "guard tolerance: fused must stay below unfused × slack")
	flag.Parse()

	if *guard {
		if err := runGuard(*in, *slack); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*in, *out, *metrics, *prev); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runGuard is the kernel-regression gate (`make bench-smoke`): the
// fused kernel exists to be faster than separate passes, so a run where
// it comes out slower than the unfused baseline beyond the slack is a
// regression and fails the build.
func runGuard(inPath string, slack float64) error {
	var r io.Reader = os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rep, err := parse(r)
	if err != nil {
		return err
	}
	unfused, ok := rep.NsPerOp["BenchmarkKernelGuard/unfused"]
	if !ok {
		return fmt.Errorf("guard: BenchmarkKernelGuard/unfused not found in input")
	}
	fused, ok := rep.NsPerOp["BenchmarkKernelGuard/fused"]
	if !ok {
		return fmt.Errorf("guard: BenchmarkKernelGuard/fused not found in input")
	}
	if fused > unfused*slack {
		return fmt.Errorf("guard: fused kernel regressed: %.0f ns/op vs unfused %.0f ns/op (limit %.0f = unfused × %.2f)",
			fused, unfused, unfused*slack, slack)
	}
	fmt.Printf("kernel guard ok: fused %.0f ns/op ≤ unfused %.0f ns/op × %.2f\n", fused, unfused, slack)
	return nil
}

func run(inPath, outPath, metricsPath, prevPath string) error {
	var r io.Reader = os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rep, err := parse(r)
	if err != nil {
		return err
	}
	if len(rep.NsPerOp) == 0 {
		return fmt.Errorf("no benchmark results found in input")
	}
	if metricsPath != "" {
		snap, err := loadSnapshot(metricsPath)
		if err != nil {
			return fmt.Errorf("-metrics: %w", err)
		}
		if rep.Phases, err = phasePercentiles(metricsPath, snap); err != nil {
			return fmt.Errorf("-metrics: %w", err)
		}
		rep.Recovery = recoveryStats(snap)
	}
	rep.Kernels = kernelStats(rep.NsPerOp, prevPath, outPath)
	var w io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parse scans benchmark output. When the same benchmark appears more
// than once (several packages, -count>1), the last result wins. The
// report's GOMAXPROCS is the widest -N suffix seen, falling back to
// this process's setting when the output carries no suffix.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{
		Date:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		NsPerOp:     make(map[string]float64),
		BytesPerOp:  make(map[string]float64),
		AllocsPerOp: make(map[string]float64),
	}
	rep.GitCommit, rep.GitDirty = gitInfo()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		rep.NsPerOp[m[1]] = ns
		if procs, err := strconv.Atoi(m[2]); err == nil && procs > rep.GOMAXPROCS {
			rep.GOMAXPROCS = procs
		}
		if bm := bytesCol.FindStringSubmatch(m[4]); bm != nil {
			if v, err := strconv.ParseFloat(bm[1], 64); err == nil {
				rep.BytesPerOp[m[1]] = v
			}
		}
		if am := allocsCol.FindStringSubmatch(m[4]); am != nil {
			if v, err := strconv.ParseFloat(am[1], 64); err == nil {
				rep.AllocsPerOp[m[1]] = v
			}
		}
	}
	if rep.GOMAXPROCS == 0 {
		rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	}
	if len(rep.BytesPerOp) == 0 {
		rep.BytesPerOp = nil
	}
	if len(rep.AllocsPerOp) == 0 {
		rep.AllocsPerOp = nil
	}
	rep.ObsOverhead = obsOverhead(rep.NsPerOp)
	return rep, sc.Err()
}

// obsOverhead pairs BenchmarkXxxEnabled with BenchmarkXxxDisabled and
// keys the result by the bare Xxx; unpaired benchmarks are skipped.
func obsOverhead(ns map[string]float64) map[string]Overhead {
	out := make(map[string]Overhead)
	for name, en := range ns {
		if !strings.HasSuffix(name, "Enabled") {
			continue
		}
		base := strings.TrimSuffix(name, "Enabled")
		dis, ok := ns[base+"Disabled"]
		if !ok {
			continue
		}
		key := strings.TrimPrefix(base, "Benchmark")
		out[key] = Overhead{EnabledNs: en, DisabledNs: dis, DeltaNs: en - dis}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// kernelStats extracts the kernel A/B section from the parsed ns/op
// map and, when a previous snapshot is available, attaches the
// speedup-vs-previous deltas. prevPath == "" auto-discovers the newest
// BENCH_*.json in the working directory (skipping the file being
// written, so a same-day rerun compares against the real predecessor).
// A missing or unreadable previous file degrades to current-only
// entries — the section must never block writing a fresh snapshot.
func kernelStats(ns map[string]float64, prevPath, outPath string) map[string]KernelStat {
	out := make(map[string]KernelStat)
	for bench, key := range kernelBenchmarks {
		v, ok := ns[bench]
		if !ok {
			continue
		}
		out[key] = KernelStat{NsPerOp: v}
	}
	if len(out) == 0 {
		return nil
	}
	prevNs := loadPrevNs(prevPath, outPath)
	if prevNs != nil {
		for bench, key := range kernelBenchmarks {
			st, ok := out[key]
			if !ok {
				continue
			}
			if pv, ok := prevNs[bench]; ok && pv > 0 {
				st.PrevNsPerOp = pv
				st.SpeedupVsPrev = pv / st.NsPerOp
				out[key] = st
			}
		}
	}
	return out
}

// loadPrevNs resolves and reads the previous snapshot's ns_per_op map,
// returning nil when there is none.
func loadPrevNs(prevPath, outPath string) map[string]float64 {
	if prevPath == "" {
		matches, err := filepath.Glob("BENCH_*.json")
		if err != nil {
			return nil
		}
		sort.Strings(matches) // BENCH_YYYY-MM-DD.json: lexical order is date order
		for i := len(matches) - 1; i >= 0; i-- {
			if outPath != "" && filepath.Clean(matches[i]) == filepath.Clean(outPath) {
				continue
			}
			prevPath = matches[i]
			break
		}
		if prevPath == "" {
			return nil
		}
	}
	raw, err := os.ReadFile(prevPath)
	if err != nil {
		return nil
	}
	var prev struct {
		NsPerOp map[string]float64 `json:"ns_per_op"`
	}
	if err := json.Unmarshal(raw, &prev); err != nil {
		return nil
	}
	return prev.NsPerOp
}

// loadSnapshot reads and parses a telemetry snapshot file.
func loadSnapshot(path string) (*obs.Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := &obs.Snapshot{}
	if err := json.Unmarshal(raw, s); err != nil {
		return nil, err
	}
	return s, nil
}

// phasePercentiles summarizes every non-empty histogram of a telemetry
// snapshot as p50/p95/max.
func phasePercentiles(path string, s *obs.Snapshot) (map[string]PhasePercentiles, error) {
	out := make(map[string]PhasePercentiles)
	for name, h := range s.Histograms {
		if h.Count == 0 {
			continue
		}
		out[name] = PhasePercentiles{
			Count: h.Count,
			P50NS: h.Quantile(0.50),
			P95NS: h.Quantile(0.95),
			MaxNS: h.Max,
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no histogram observations in snapshot", path)
	}
	return out, nil
}

// recoveryStats extracts the elastic-recovery section from a telemetry
// snapshot, nil when the run recorded no recovery activity at all.
func recoveryStats(s *obs.Snapshot) *RecoveryStats {
	r := &RecoveryStats{
		Shrinks:         s.Counters["recover.shrinks"],
		Grows:           s.Counters["recover.grows"],
		Migrations:      s.Counters["recover.migrations"],
		Resumes:         s.Counters["recover.resumes"],
		RebalanceLambda: s.Gauges["recover.rebalance.lambda"],
	}
	if r.Shrinks == 0 && r.Grows == 0 && r.Migrations == 0 && r.Resumes == 0 && r.RebalanceLambda == 0 {
		return nil
	}
	return r
}

// gitInfo returns HEAD's hash and whether the working tree differs
// from it. Both degrade to zero values when git is missing or the cwd
// is outside a repository, so the tool stays usable on a bare
// benchmark box.
func gitInfo() (commit string, dirty bool) {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "", false
	}
	commit = strings.TrimSpace(string(out))
	st, err := exec.Command("git", "status", "--porcelain").Output()
	return commit, err == nil && len(strings.TrimSpace(string(st))) > 0
}
