// Command quakenet studies the interconnection network: it runs a
// scenario's exchange schedule over a contended 3D torus with
// dimension-ordered routing and compares against the paper's
// infinite-capacity assumption, sweeping per-link bandwidth. With -agg
// it also sweeps the two-level (node-aware) aggregated exchange over a
// range of node sizes, reporting the blocks-vs-words tradeoff.
//
// Usage:
//
//	quakenet                           # sf5 on 64 PEs (4x4x4 torus)
//	quakenet -scenario sf5 -pes 27 -hop 100e-9
//	quakenet -method multilevel        # swap the partitioner
//	quakenet -agg -nodesize 2,4,8,16   # aggregation tradeoff table
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/machine"
	"repro/internal/network"
	"repro/internal/partition"
	"repro/internal/quake"
	"repro/internal/report"
)

func main() {
	scenario := flag.String("scenario", "sf5", "scenario name")
	pes := flag.Int("pes", 64, "PE count (factored into a torus)")
	hop := flag.Float64("hop", 100e-9, "per-hop router latency (s)")
	method := flag.String("method", "rcb", "partitioner (rcb|inertial|random|linear|stripes-z|multilevel)")
	agg := flag.Bool("agg", false, "also sweep the two-level aggregated exchange")
	nodesize := flag.String("nodesize", "2,4,8,16", "comma-separated node sizes for -agg")
	flag.Parse()

	if err := run(*scenario, *pes, *hop, *method, *agg, *nodesize); err != nil {
		fmt.Fprintln(os.Stderr, "quakenet:", err)
		os.Exit(1)
	}
}

// parseNodeSizes parses the -nodesize list and prepends the flat
// anchor (node size 1) so the tradeoff table is self-contained.
func parseNodeSizes(s string) ([]int, error) {
	sizes := []int{1}
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad node size %q", f)
		}
		if n != 1 {
			sizes = append(sizes, n)
		}
	}
	return sizes, nil
}

func run(name string, pes int, hop float64, methodName string, agg bool, nodesize string) error {
	s, err := quake.ByName(name)
	if err != nil {
		return err
	}
	method, err := partition.MethodByName(methodName)
	if err != nil {
		return err
	}
	m, err := s.Mesh()
	if err != nil {
		return err
	}
	pt, err := partition.PartitionMesh(m, pes, method, 1)
	if err != nil {
		return err
	}
	pr, err := partition.Analyze(m, pt)
	if err != nil {
		return err
	}
	sched, err := comm.FromMatrix(pr.Msg)
	if err != nil {
		return err
	}
	tor, err := network.NewTorus(pes)
	if err != nil {
		return err
	}
	t3e := machine.T3E()
	fmt.Printf("%s/%d (%s) on a %dx%dx%d torus (%s PE parameters, %.0f ns/hop)\n\n",
		s.Name, pes, method, tor.DX, tor.DY, tor.DZ, t3e.Name, hop*1e9)

	free, err := network.Simulate(sched, t3e, tor, network.Config{HopLatency: hop})
	if err != nil {
		return err
	}
	tab := report.New("exchange time vs per-link bandwidth",
		"link MB/s", "exchange", "vs infinite", "max link busy", "avg link busy")
	tab.AddRow("inf", report.SI(free.CommTime, "s"), "1.000", "-", "-")
	for _, mbps := range []float64{1000, 600, 300, 100, 30, 10, 3} {
		res, err := network.Simulate(sched, t3e, tor,
			network.Config{LinkBytesPerSec: mbps * 1e6, HopLatency: hop})
		if err != nil {
			return err
		}
		tab.AddRow(fmt.Sprint(mbps),
			report.SI(res.CommTime, "s"),
			report.F(res.CommTime/free.CommTime, 3),
			report.SI(res.MaxLinkBusy, "s"),
			report.SI(res.AvgLinkBusy, "s"))
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nmax hops used: %d; the PE-side costs (T_l=%s, T_w=%s per word)\n",
		free.MaxHops, report.SI(t3e.Tl, "s"), report.SI(t3e.Tw, "s"))
	fmt.Println("dominate until links are starved — the paper's §3.3 assumption.")

	if !agg {
		return nil
	}
	sizes, err := parseNodeSizes(nodesize)
	if err != nil {
		return err
	}
	rows, err := quake.AggSweep(s, pes, method, sizes,
		network.Config{LinkBytesPerSec: 300e6, HopLatency: hop})
	if err != nil {
		return err
	}
	fmt.Println()
	title := fmt.Sprintf("two-level exchange: blocks vs words (%s/%d, %s, 300 MB/s links, %s intra-node)",
		s.Name, pes, method, machine.OnNode().Name)
	if err := report.AggregationSummary(title, rows).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nfused inter-node blocks pay T_l once per node pair; the copied words ride")
	fmt.Println("the on-node fabric — the node-aware answer to the paper's latency wall.")
	return nil
}
