package main

import (
	"reflect"
	"testing"
)

func TestRunMethods(t *testing.T) {
	// Both supported partitioners drive the full pipeline; sf10 at 8
	// PEs keeps the meshing cheap.
	for _, method := range []string{"rcb", "multilevel"} {
		if err := run("sf10", 8, 100e-9, method, false, ""); err != nil {
			t.Errorf("method %s: %v", method, err)
		}
	}
}

func TestRunAggregated(t *testing.T) {
	if err := run("sf10", 8, 100e-9, "rcb", true, "2,4"); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 8, 0, "rcb", false, ""); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run("sf10", -1, 0, "rcb", false, ""); err == nil {
		t.Error("bad PE count accepted")
	}
	if err := run("sf10", 8, 0, "metis", false, ""); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run("sf10", 8, 0, "rcb", true, "0,4"); err == nil {
		t.Error("node size 0 accepted")
	}
	if err := run("sf10", 8, 0, "rcb", true, "x"); err == nil {
		t.Error("non-numeric node size accepted")
	}
}

func TestParseNodeSizes(t *testing.T) {
	got, err := parseNodeSizes(" 2, 8 ,1,")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 8}; !reflect.DeepEqual(got, want) {
		t.Errorf("parseNodeSizes = %v, want %v", got, want)
	}
	if _, err := parseNodeSizes("-3"); err == nil {
		t.Error("negative node size accepted")
	}
}
