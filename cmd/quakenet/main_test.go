package main

import "testing"

func TestRun(t *testing.T) {
	if err := run("sf10", 8, 100e-9); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 8, 0); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run("sf10", -1, 0); err == nil {
		t.Error("bad PE count accepted")
	}
}
