// Command quakemodel evaluates the paper's communication-requirement
// models on a scenario and prints Figures 8 through 11 plus the EXFLOW
// comparison from the introduction.
//
// Usage:
//
//	quakemodel                     # sf5 quick sweep
//	quakemodel -scenario sf2 -pes 4,8,16,32,64,128   # the paper's runs
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/quake"
	"repro/internal/report"
)

func main() {
	scenario := flag.String("scenario", "sf5", "scenario name")
	pes := flag.String("pes", "4,8,16,32,64,128", "comma-separated PE counts")
	flag.Parse()

	if err := run(*scenario, *pes); err != nil {
		fmt.Fprintln(os.Stderr, "quakemodel:", err)
		os.Exit(1)
	}
}

func run(name, peList string) error {
	s, err := quake.ByName(name)
	if err != nil {
		return err
	}
	var pcounts []int
	for _, part := range strings.Split(peList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad PE count %q: %w", part, err)
		}
		pcounts = append(pcounts, v)
	}
	method := partition.RCB

	emit := func(t *report.Table, err error) error {
		if err != nil {
			return err
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		_, err = fmt.Println()
		return err
	}

	if err := emit(quake.Fig8Table(s, pcounts, method)); err != nil {
		return err
	}
	if err := emit(quake.Fig9Table(s, pcounts, method)); err != nil {
		return err
	}

	rows, err := quake.Properties(s, pcounts, method)
	if err != nil {
		return err
	}
	last := rows[len(rows)-1]
	bursts := []float64{1, 3, 10, 30, 100, 300, 1000, 3000, 10000}
	if err := emit(quake.Fig10Table(last, 5e-9, bursts), nil); err != nil {
		return err
	}
	if err := emit(quake.Fig11Table(s, pcounts, method)); err != nil {
		return err
	}

	// EXFLOW comparison (paper Section 1), on the largest PE count.
	cmp, err := quake.CompareEXFLOW(s, last)
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("EXFLOW vs %s/%d (paper: EXFLOW vs sf2/128)", s.Name, last.P),
		"metric", "EXFLOW (published)", fmt.Sprintf("%s/%d (ours)", s.Name, last.P), "paper sf2/128")
	t.AddRow("comm volume KB/MFLOP",
		report.F(cmp.EXFLOWKBPerMFLOP, 0), report.F(cmp.QuakeKBPerMFLOP, 1),
		report.F(quake.PaperQuakeKBPerMFLOP, 0))
	t.AddRow("messages/MFLOP",
		report.F(cmp.EXFLOWMsgsPerMFLOP, 0), report.F(cmp.QuakeMsgsPerMFLOP, 1),
		report.F(quake.PaperQuakeMsgsPerMFLOP, 0))
	t.AddRow("avg message KB",
		report.F(cmp.EXFLOWAvgMsgKB, 1), report.F(cmp.QuakeAvgMsgKB, 1),
		report.F(quake.PaperQuakeAvgMsgKB, 1))
	t.AddRow("data MB/PE", "2.0", report.F(cmp.QuakeMBPerPE, 2), "2.0")
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	// Achieved efficiency of the preset machines on each instance.
	t2 := report.New(fmt.Sprintf("Modeled efficiency of preset machines on %s", s.Name),
		"subdomains", "T3D", "T3E", "current-100", "future-200")
	for _, r := range rows {
		app := r.App()
		cells := []string{fmt.Sprint(r.P)}
		for _, m := range []struct{ tf, tl, tw float64 }{
			{30e-9, 60e-6, 230e-9},
			{14e-9, 22e-6, 55e-9},
			{10e-9, 22e-6, 55e-9},
			{5e-9, 2e-6, 13e-9},
		} {
			cells = append(cells, report.F(model.Efficiency(app, m.tf, m.tl, m.tw), 3))
		}
		t2.AddRow(cells...)
	}
	return t2.Render(os.Stdout)
}
