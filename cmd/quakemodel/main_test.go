package main

import "testing"

func TestRun(t *testing.T) {
	if err := run("sf10", "4,8"); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", "4"); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run("sf10", "4,oops"); err == nil {
		t.Error("bad PE list accepted")
	}
}
