package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

func TestParseOptionsDefaults(t *testing.T) {
	opt, err := parseOptions(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.addr != ":8090" || opt.warm != 1 || opt.smoke {
		t.Fatalf("defaults: %+v", opt)
	}
	if err := opt.validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
}

func TestParseOptionsErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"stray-positional"},
		{"-max-concurrent", "x"},
	}
	for _, args := range cases {
		if _, err := parseOptions(args, io.Discard); err == nil {
			t.Errorf("parseOptions(%v) accepted", args)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []options{
		{addr: ":0", maxConcurrent: -1, warm: 1},
		{addr: ":0", warm: 0},
		{addr: ":0", warm: 1, smoke: true, smokePEs: 0},
	}
	for _, opt := range cases {
		if err := opt.validate(); err == nil {
			t.Errorf("validate(%+v) accepted", opt)
		}
	}
}

// TestRunSmoke is the whole binary end to end: server up, cold solve,
// cached solve, counters asserted, graceful shutdown — the same path
// `make serve-smoke` gates in CI.
func TestRunSmoke(t *testing.T) {
	opt := &options{
		addr: "127.0.0.1:0", warm: 1,
		smoke: true, smokeScenario: "sf10", smokePEs: 2,
	}
	var out strings.Builder
	if err := run(context.Background(), opt, &out); err != nil {
		t.Fatalf("run -smoke: %v\n%s", err, out.String())
	}
	for _, want := range []string{"smoke sf10/p2", "hits=1 misses=1", "smoke ok, shut down cleanly"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("smoke output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunServeAndShutdown runs the server mode: ready address, live
// endpoints, one solve over HTTP, then a context cancel (the SIGTERM
// path) must drain and return nil.
func TestRunServeAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opt := &options{addr: "127.0.0.1:0", warm: 1, ready: make(chan string, 1)}
	var out strings.Builder
	done := make(chan error, 1)
	go func() { done <- run(ctx, opt, &out) }()

	var addr string
	select {
	case addr = <-opt.ready:
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	var cold, warm serve.SolveResult
	if err := postSolve(base, `{"scenario":"sf10","pes":2}`, &cold); err != nil {
		t.Fatalf("cold solve over HTTP: %v", err)
	}
	if err := postSolve(base, `{"scenario":"sf10","pes":2}`, &warm); err != nil {
		t.Fatalf("warm solve over HTTP: %v", err)
	}
	if !cold.Converged || cold.CacheHit {
		t.Fatalf("cold solve: converged=%v cache_hit=%v", cold.Converged, cold.CacheHit)
	}
	if !warm.Converged || !warm.CacheHit {
		t.Fatalf("warm solve: converged=%v cache_hit=%v", warm.Converged, warm.CacheHit)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on shutdown\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after context cancel")
	}
	if !strings.Contains(out.String(), "shut down cleanly") {
		t.Fatalf("missing clean-shutdown line:\n%s", out.String())
	}
}
