// Command quaked is the warm-pool simulation service: a long-running
// HTTP/JSON server over internal/serve that caches mesh, partition,
// schedule, and assembly artifacts per (scenario, p, method, nodesize)
// tuple and keeps persistent-PE Dist runtimes warm between requests, so
// repeat solves skip every setup stage and go straight to CG.
//
// Usage:
//
//	quaked                          # serve on :8090
//	quaked -addr :9000 -warm 2 -max-concurrent 4
//	quaked -smoke                   # start, solve twice (cold + cached),
//	                                # assert the hit counter, shut down
//
// The service exposes the full observability surface (Prometheus
// /metrics, /metrics.json, /flight, expvar, pprof) on the same port;
// see docs/SERVICE.md for the endpoint reference.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/serve"
)

// options is the validated CLI configuration, kept separate from flag
// parsing so tests can drive run() directly.
type options struct {
	addr            string
	maxConcurrent   int
	maxQueue        int
	warm            int
	maxPEs          int
	maxIter         int
	maxDeadline     time.Duration
	checkpointEvery int
	// smoke runs the self-test instead of serving: two identical solves
	// against the live server (one cold, one cached), the cache-hit
	// counters asserted through /metrics.json, then a clean shutdown.
	smoke         bool
	smokeScenario string
	smokePEs      int

	// ready, when non-nil, receives the bound address once the server
	// is up (non-blocking send). Tests use it to drive the endpoints.
	ready chan string
}

// parseOptions binds the flag set. Parse errors are returned after the
// FlagSet has printed usage to out.
func parseOptions(args []string, out io.Writer) (*options, error) {
	opt := &options{}
	fs := flag.NewFlagSet("quaked", flag.ContinueOnError)
	fs.SetOutput(out)
	fs.StringVar(&opt.addr, "addr", ":8090", "listen address (':0' picks a free port)")
	fs.IntVar(&opt.maxConcurrent, "max-concurrent", 0, "solves executing at once (0 = GOMAXPROCS)")
	fs.IntVar(&opt.maxQueue, "max-queue", 0, "admitted solves waiting beyond the running ones (0 = default 8); overflow is refused with 429")
	fs.IntVar(&opt.warm, "warm", 1, "warm workers kept per cached artifact")
	fs.IntVar(&opt.maxPEs, "max-pes", 0, "per-request PE ceiling (0 = default 128)")
	fs.IntVar(&opt.maxIter, "max-iter", 0, "hard per-request iteration cap (0 = default 200000)")
	fs.DurationVar(&opt.maxDeadline, "max-deadline", 0, "per-request wall-budget ceiling, also the default budget (0 = 5m)")
	fs.IntVar(&opt.checkpointEvery, "checkpoint-every", 0, "solver checkpoint period in CG iterations (0 = default 10); also the progress-event and cancellation granularity")
	fs.BoolVar(&opt.smoke, "smoke", false, "self-test: start the server, run one cold and one cached solve, assert the cache counters via /metrics.json, shut down")
	fs.StringVar(&opt.smokeScenario, "smoke-scenario", "sf10", "scenario the -smoke solves use")
	fs.IntVar(&opt.smokePEs, "smoke-pes", 4, "PE count the -smoke solves use")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(out, "quaked: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments")
	}
	return opt, nil
}

// validate enforces the cross-flag rules up front.
func (opt *options) validate() error {
	if opt.maxConcurrent < 0 {
		return fmt.Errorf("-max-concurrent must be >= 0, got %d", opt.maxConcurrent)
	}
	if opt.warm < 1 {
		return fmt.Errorf("-warm must be at least 1, got %d", opt.warm)
	}
	if opt.smoke && opt.smokePEs < 1 {
		return fmt.Errorf("-smoke-pes must be at least 1, got %d", opt.smokePEs)
	}
	return nil
}

func main() {
	opt, err := parseOptions(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2) // the FlagSet already printed the problem and usage
	}
	if err := opt.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "quaked:", err)
		fmt.Fprintln(os.Stderr, "run 'quaked -h' for usage")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "quaked:", err)
		os.Exit(1)
	}
}

// run starts the engine and server, then either serves until ctx is
// canceled (SIGINT/SIGTERM) or, with -smoke, exercises the server once
// and exits. Shutdown is graceful either way: the listener closes
// first, in-flight requests drain, then the warm pools are released.
func run(ctx context.Context, opt *options, out io.Writer) error {
	// A service without telemetry is undebuggable; the export surface
	// shares the listener, so enable the registry unconditionally.
	obs.SetEnabled(true)
	eng := serve.NewEngine(serve.Config{
		MaxConcurrent:   opt.maxConcurrent,
		MaxQueue:        opt.maxQueue,
		WarmPool:        opt.warm,
		MaxPEs:          opt.maxPEs,
		MaxIter:         opt.maxIter,
		MaxDeadline:     opt.maxDeadline,
		CheckpointEvery: opt.checkpointEvery,
	})
	defer eng.Close()

	addr, shutdown, err := export.ServeWith(opt.addr, serve.NewMux(eng))
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	fmt.Fprintf(out, "quaked: serving on http://%s/ (solves under /v1/, metrics under /metrics)\n", addr)
	if opt.ready != nil {
		select {
		case opt.ready <- addr:
		default:
		}
	}

	if opt.smoke {
		smokeErr := smoke(addr, opt, out)
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if smokeErr != nil {
			return fmt.Errorf("smoke: %w", smokeErr)
		}
		fmt.Fprintln(out, "quaked: smoke ok, shut down cleanly")
		return nil
	}

	<-ctx.Done()
	fmt.Fprintln(out, "quaked: signal received, draining")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(out, "quaked: shut down cleanly")
	return nil
}

// smoke drives the live server through the cache's happy path: the
// first solve cold-builds the artifacts, the second must be served from
// the cache — asserted both from the response's cache_hit field and
// from the serve.cache.{hits,misses} counters scraped off
// /metrics.json.
func smoke(addr string, opt *options, out io.Writer) error {
	base := "http://" + addr
	body := fmt.Sprintf(`{"scenario":%q,"pes":%d}`, opt.smokeScenario, opt.smokePEs)

	var cold, warm serve.SolveResult
	if err := postSolve(base, body, &cold); err != nil {
		return fmt.Errorf("cold solve: %w", err)
	}
	if cold.CacheHit {
		return fmt.Errorf("first solve reported cache_hit=true; expected a cold build")
	}
	if !cold.Converged || !cold.Certified {
		return fmt.Errorf("cold solve: converged=%v certified=%v (cert residual %.3g)",
			cold.Converged, cold.Certified, cold.CertResidual)
	}
	if err := postSolve(base, body, &warm); err != nil {
		return fmt.Errorf("cached solve: %w", err)
	}
	if !warm.CacheHit {
		return fmt.Errorf("second identical solve reported cache_hit=false; expected a cache hit")
	}
	if warm.Fingerprints != cold.Fingerprints {
		return fmt.Errorf("cached solve served different artifacts: %+v vs %+v",
			warm.Fingerprints, cold.Fingerprints)
	}
	if warm.SolutionFP != cold.SolutionFP {
		return fmt.Errorf("cached solve diverged: solution fingerprint %x vs %x",
			warm.SolutionFP, cold.SolutionFP)
	}

	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		return fmt.Errorf("scraping /metrics.json: %w", err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decoding /metrics.json: %w", err)
	}
	hits, misses := snap.Counters["serve.cache.hits"], snap.Counters["serve.cache.misses"]
	if misses != 1 || hits < 1 {
		return fmt.Errorf("cache counters off: serve.cache.misses=%d (want 1), serve.cache.hits=%d (want >=1)", misses, hits)
	}
	fmt.Fprintf(out, "quaked: smoke %s/p%d cold %.0fms (%d iters) cached %.0fms (%d iters), hits=%d misses=%d\n",
		opt.smokeScenario, opt.smokePEs, cold.WallMS, cold.Iterations, warm.WallMS, warm.Iterations, hits, misses)
	return nil
}

// postSolve runs one POST /v1/solve and decodes the result.
func postSolve(base, body string, res *serve.SolveResult) error {
	resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(res)
}
