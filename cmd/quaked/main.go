// Command quaked is the warm-pool simulation service: a long-running
// HTTP/JSON server over internal/serve that caches mesh, partition,
// schedule, and assembly artifacts per (scenario, p, method, nodesize)
// tuple and keeps persistent-PE Dist runtimes warm between requests, so
// repeat solves skip every setup stage and go straight to CG.
//
// Usage:
//
//	quaked                          # serve on :8090
//	quaked -addr :9000 -warm 2 -max-concurrent 4
//	quaked -smoke                   # start, solve twice (cold + cached),
//	                                # assert the hit counter, shut down
//
// The service exposes the full observability surface (Prometheus
// /metrics, /metrics.json, /flight, expvar, pprof) on the same port;
// see docs/SERVICE.md for the endpoint reference.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/serve"
)

// options is the validated CLI configuration, kept separate from flag
// parsing so tests can drive run() directly.
type options struct {
	addr            string
	maxConcurrent   int
	maxQueue        int
	warm            int
	maxPEs          int
	maxIter         int
	maxDeadline     time.Duration
	checkpointEvery int
	// journalDir makes jobs durable: accepted solves are journaled
	// there and an engine restart on the same directory replays them.
	journalDir string
	// smoke runs the self-test instead of serving: two identical solves
	// against the live server (one cold, one cached), the cache-hit
	// counters asserted through /metrics.json, then a clean shutdown.
	smoke         bool
	smokeScenario string
	smokePEs      int
	// chaos runs the durability drill instead of serving: a solve with
	// a kill fault is submitted as a detached job, migrates off the
	// dead worker, the whole server is torn down mid-solve, and a fresh
	// engine on the same journal must replay and finish it — zero lost
	// jobs, asserted through the jobs API and the serve.job.* counters.
	chaos bool

	// ready, when non-nil, receives the bound address once the server
	// is up (non-blocking send). Tests use it to drive the endpoints.
	ready chan string
}

// parseOptions binds the flag set. Parse errors are returned after the
// FlagSet has printed usage to out.
func parseOptions(args []string, out io.Writer) (*options, error) {
	opt := &options{}
	fs := flag.NewFlagSet("quaked", flag.ContinueOnError)
	fs.SetOutput(out)
	fs.StringVar(&opt.addr, "addr", ":8090", "listen address (':0' picks a free port)")
	fs.IntVar(&opt.maxConcurrent, "max-concurrent", 0, "solves executing at once (0 = GOMAXPROCS)")
	fs.IntVar(&opt.maxQueue, "max-queue", 0, "admitted solves waiting beyond the running ones (0 = default 8); overflow is refused with 429")
	fs.IntVar(&opt.warm, "warm", 1, "warm workers kept per cached artifact")
	fs.IntVar(&opt.maxPEs, "max-pes", 0, "per-request PE ceiling (0 = default 128)")
	fs.IntVar(&opt.maxIter, "max-iter", 0, "hard per-request iteration cap (0 = default 200000)")
	fs.DurationVar(&opt.maxDeadline, "max-deadline", 0, "per-request wall-budget ceiling, also the default budget (0 = 5m)")
	fs.IntVar(&opt.checkpointEvery, "checkpoint-every", 0, "solver checkpoint period in CG iterations (0 = default 10); also the progress-event and cancellation granularity")
	fs.StringVar(&opt.journalDir, "journal", "", "durable-job journal directory; a restart on the same directory replays accepted-but-unfinished jobs (empty = jobs are volatile)")
	fs.BoolVar(&opt.smoke, "smoke", false, "self-test: start the server, run one cold and one cached solve, assert the cache counters via /metrics.json, shut down")
	fs.StringVar(&opt.smokeScenario, "smoke-scenario", "sf10", "scenario the -smoke and -chaos solves use")
	fs.IntVar(&opt.smokePEs, "smoke-pes", 4, "PE count the -smoke and -chaos solves use")
	fs.BoolVar(&opt.chaos, "chaos", false, "durability drill: kill a worker mid-solve (job migrates), restart the engine mid-solve on the same journal, assert the job replays and completes with zero lost jobs")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(out, "quaked: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments")
	}
	return opt, nil
}

// validate enforces the cross-flag rules up front.
func (opt *options) validate() error {
	if opt.maxConcurrent < 0 {
		return fmt.Errorf("-max-concurrent must be >= 0, got %d", opt.maxConcurrent)
	}
	if opt.warm < 1 {
		return fmt.Errorf("-warm must be at least 1, got %d", opt.warm)
	}
	if (opt.smoke || opt.chaos) && opt.smokePEs < 1 {
		return fmt.Errorf("-smoke-pes must be at least 1, got %d", opt.smokePEs)
	}
	if opt.chaos && opt.smokePEs < 2 {
		return fmt.Errorf("-chaos needs at least 2 PEs to kill one, got %d", opt.smokePEs)
	}
	return nil
}

func main() {
	opt, err := parseOptions(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2) // the FlagSet already printed the problem and usage
	}
	if err := opt.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "quaked:", err)
		fmt.Fprintln(os.Stderr, "run 'quaked -h' for usage")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "quaked:", err)
		os.Exit(1)
	}
}

// run starts the engine and server, then either serves until ctx is
// canceled (SIGINT/SIGTERM) or, with -smoke, exercises the server once
// and exits. Shutdown is graceful either way: the listener closes
// first, in-flight requests drain, then the warm pools are released.
func run(ctx context.Context, opt *options, out io.Writer) error {
	// A service without telemetry is undebuggable; the export surface
	// shares the listener, so enable the registry unconditionally.
	obs.SetEnabled(true)
	if opt.chaos {
		return chaos(opt, out)
	}
	eng, err := serve.NewEngine(serve.Config{
		MaxConcurrent:   opt.maxConcurrent,
		MaxQueue:        opt.maxQueue,
		WarmPool:        opt.warm,
		MaxPEs:          opt.maxPEs,
		MaxIter:         opt.maxIter,
		MaxDeadline:     opt.maxDeadline,
		CheckpointEvery: opt.checkpointEvery,
		JournalDir:      opt.journalDir,
	})
	if err != nil {
		return fmt.Errorf("-journal: %w", err)
	}
	defer eng.Close()

	addr, shutdown, err := export.ServeWith(opt.addr, serve.NewMux(eng))
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	fmt.Fprintf(out, "quaked: serving on http://%s/ (solves under /v1/, metrics under /metrics)\n", addr)
	if opt.ready != nil {
		select {
		case opt.ready <- addr:
		default:
		}
	}

	if opt.smoke {
		smokeErr := smoke(addr, opt, out)
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if smokeErr != nil {
			return fmt.Errorf("smoke: %w", smokeErr)
		}
		fmt.Fprintln(out, "quaked: smoke ok, shut down cleanly")
		return nil
	}

	<-ctx.Done()
	fmt.Fprintln(out, "quaked: signal received, draining")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(out, "quaked: shut down cleanly")
	return nil
}

// smoke drives the live server through the cache's happy path: the
// first solve cold-builds the artifacts, the second must be served from
// the cache — asserted both from the response's cache_hit field and
// from the serve.cache.{hits,misses} counters scraped off
// /metrics.json.
func smoke(addr string, opt *options, out io.Writer) error {
	base := "http://" + addr
	body := fmt.Sprintf(`{"scenario":%q,"pes":%d}`, opt.smokeScenario, opt.smokePEs)

	var cold, warm serve.SolveResult
	if err := postSolve(base, body, &cold); err != nil {
		return fmt.Errorf("cold solve: %w", err)
	}
	if cold.CacheHit {
		return fmt.Errorf("first solve reported cache_hit=true; expected a cold build")
	}
	if !cold.Converged || !cold.Certified {
		return fmt.Errorf("cold solve: converged=%v certified=%v (cert residual %.3g)",
			cold.Converged, cold.Certified, cold.CertResidual)
	}
	if err := postSolve(base, body, &warm); err != nil {
		return fmt.Errorf("cached solve: %w", err)
	}
	if !warm.CacheHit {
		return fmt.Errorf("second identical solve reported cache_hit=false; expected a cache hit")
	}
	if warm.Fingerprints != cold.Fingerprints {
		return fmt.Errorf("cached solve served different artifacts: %+v vs %+v",
			warm.Fingerprints, cold.Fingerprints)
	}
	if warm.SolutionFP != cold.SolutionFP {
		return fmt.Errorf("cached solve diverged: solution fingerprint %x vs %x",
			warm.SolutionFP, cold.SolutionFP)
	}

	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		return fmt.Errorf("scraping /metrics.json: %w", err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decoding /metrics.json: %w", err)
	}
	hits, misses := snap.Counters["serve.cache.hits"], snap.Counters["serve.cache.misses"]
	if misses != 1 || hits < 1 {
		return fmt.Errorf("cache counters off: serve.cache.misses=%d (want 1), serve.cache.hits=%d (want >=1)", misses, hits)
	}
	fmt.Fprintf(out, "quaked: smoke %s/p%d cold %.0fms (%d iters) cached %.0fms (%d iters), hits=%d misses=%d\n",
		opt.smokeScenario, opt.smokePEs, cold.WallMS, cold.Iterations, warm.WallMS, warm.Iterations, hits, misses)
	return nil
}

// chaos is the durability drill behind `make serve-chaos`: prove that
// neither a dead worker nor a dead process loses an accepted job.
//
// Phase 1 starts a journaled server, submits a detached solve armed
// with a kill fault and migrate recovery, waits until the job has
// migrated off the killed worker and written a durable checkpoint,
// then tears the whole server down mid-solve (the job parks in the
// journal). Phase 2 starts a fresh engine on the same journal
// directory and requires the replayed job to complete — converged,
// certified, resumed past its checkpoint rather than restarted — with
// every journaled job accounted for.
func chaos(opt *options, out io.Writer) error {
	dir := opt.journalDir
	if dir == "" {
		d, err := os.MkdirTemp("", "quaked-chaos-*")
		if err != nil {
			return fmt.Errorf("chaos journal dir: %w", err)
		}
		defer os.RemoveAll(d)
		dir = d
	}
	cfg := serve.Config{
		MaxConcurrent:   opt.maxConcurrent,
		MaxQueue:        opt.maxQueue,
		WarmPool:        opt.warm,
		MaxPEs:          opt.maxPEs,
		MaxIter:         opt.maxIter,
		MaxDeadline:     opt.maxDeadline,
		JournalDir:      dir,
		CheckpointEvery: 5,
		// Pace the solver so the drill reliably catches the job
		// mid-flight for the forced restart.
		CheckpointDelay: 25 * time.Millisecond,
	}

	// Phase 1: migrate off a killed worker, then die mid-solve.
	eng, err := serve.NewEngine(cfg)
	if err != nil {
		return fmt.Errorf("chaos phase 1 engine: %w", err)
	}
	addr, shutdown, err := export.ServeWith("127.0.0.1:0", serve.NewMux(eng))
	if err != nil {
		eng.Close()
		return fmt.Errorf("chaos phase 1 server: %w", err)
	}
	base := "http://" + addr
	body := fmt.Sprintf(`{"scenario":%q,"pes":%d,"tol":1e-12,"faults":"kill:pe=1,iter=5","recovery":"migrate","detach":true,"idempotency_key":"chaos-drill"}`,
		opt.smokeScenario, opt.smokePEs)
	resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return fmt.Errorf("chaos submit: %w", err)
	}
	var st serve.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || st.ID == "" {
		return fmt.Errorf("chaos submit: status %d, job %+v, err %v", resp.StatusCode, st, err)
	}
	fmt.Fprintf(out, "quaked: chaos job %s accepted on %s\n", st.ID, addr)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: job %s never migrated (last: %+v)", st.ID, st)
		}
		if st, err = getJob(base, st.ID); err != nil {
			return fmt.Errorf("chaos polling job: %w", err)
		}
		if st.State == serve.JobCompleted || st.State == serve.JobFailed || st.State == serve.JobCanceled {
			return fmt.Errorf("chaos: job %s reached %s before the forced restart — solve too fast for the drill", st.ID, st.State)
		}
		if st.Migrations >= 1 && st.CheckpointIter >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Fprintf(out, "quaked: chaos job migrated (attempts=%d migrations=%d ckpt_iter=%d), forcing restart mid-solve\n",
		st.Attempts, st.Migrations, st.CheckpointIter)
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	err = shutdown(sctx)
	cancel()
	if err != nil {
		return fmt.Errorf("chaos phase 1 shutdown: %w", err)
	}
	eng.Close()

	// Phase 2: a fresh engine on the same journal replays and finishes.
	cfg.CheckpointDelay = 0
	eng2, err := serve.NewEngine(cfg)
	if err != nil {
		return fmt.Errorf("chaos phase 2 engine: %w", err)
	}
	defer eng2.Close()
	addr2, shutdown2, err := export.ServeWith("127.0.0.1:0", serve.NewMux(eng2))
	if err != nil {
		return fmt.Errorf("chaos phase 2 server: %w", err)
	}
	base2 := "http://" + addr2
	deadline = time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: replayed job %s never finished (last: %+v)", st.ID, st)
		}
		if st, err = getJob(base2, st.ID); err != nil {
			return fmt.Errorf("chaos polling replayed job: %w", err)
		}
		if st.State == serve.JobCompleted || st.State == serve.JobFailed || st.State == serve.JobCanceled {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != serve.JobCompleted || !st.Replayed {
		return fmt.Errorf("chaos: replayed job ended %s (replayed=%v, error %q)", st.State, st.Replayed, st.Error)
	}
	if st.Result == nil || !st.Result.Converged || !st.Result.Certified {
		return fmt.Errorf("chaos: replayed job result %+v not converged+certified", st.Result)
	}

	// Zero lost jobs: everything the journal accepted is tracked and
	// finished, and the counters show a real migration, replay, and
	// checkpoint resume (no pre-checkpoint iterations re-run).
	var list struct {
		Jobs []serve.JobStatus `json:"jobs"`
	}
	if err := getJSON(base2+"/v1/jobs", &list); err != nil {
		return fmt.Errorf("chaos listing jobs: %w", err)
	}
	found := false
	for _, j := range list.Jobs {
		if j.ID == st.ID {
			found = true
		}
		if j.State != serve.JobCompleted {
			return fmt.Errorf("chaos: journaled job %s ended %s — a job was lost or stuck", j.ID, j.State)
		}
	}
	if !found {
		return fmt.Errorf("chaos: job %s missing from the restarted engine's job list", st.ID)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := getJSON(base2+"/metrics.json", &snap); err != nil {
		return fmt.Errorf("chaos scraping metrics: %w", err)
	}
	for _, c := range []string{"serve.job.migrations", "serve.job.requeued", "serve.job.replays", "serve.job.resumed_iters_saved"} {
		if snap.Counters[c] < 1 {
			return fmt.Errorf("chaos: counter %s = %d, want >= 1", c, snap.Counters[c])
		}
	}
	sctx2, cancel2 := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel2()
	if err := shutdown2(sctx2); err != nil {
		return fmt.Errorf("chaos phase 2 shutdown: %w", err)
	}
	fmt.Fprintf(out, "quaked: chaos ok — job %s survived 1 worker kill + 1 process restart (iters=%d, saved=%d, migrations=%d)\n",
		st.ID, st.Result.Iterations, snap.Counters["serve.job.resumed_iters_saved"], snap.Counters["serve.job.migrations"])
	return nil
}

// getJob fetches one job's status.
func getJob(base, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := getJSON(base+"/v1/jobs/"+id, &st)
	return st, err
}

// getJSON fetches and decodes one JSON endpoint.
func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// postSolve runs one POST /v1/solve and decodes the result.
func postSolve(base, body string, res *serve.SolveResult) error {
	resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(res)
}
