// Command quakegen generates the synthetic San Fernando meshes and
// prints their sizes against the paper's Figure 2. With -out it also
// writes the mesh in the binary format read by mesh.Read.
//
// Usage:
//
//	quakegen                      # sf10+sf5+sf2+sf1s size table
//	quakegen -full                # include the 2.4M-node sf1
//	quakegen -scenario sf5 -out sf5.qmesh
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mesh"
	"repro/internal/quake"
	"repro/internal/report"
)

func main() {
	scenario := flag.String("scenario", "", "generate a single scenario (sf10|sf5|sf2|sf1|sf1s)")
	out := flag.String("out", "", "write the generated mesh to this file (requires -scenario)")
	vtk := flag.String("vtk", "", "write the mesh in legacy VTK format, with the local shear velocity as point data (requires -scenario)")
	full := flag.Bool("full", false, "include the full-scale sf1 in the table sweep")
	flag.Parse()

	if err := run(*scenario, *out, *vtk, *full); err != nil {
		fmt.Fprintln(os.Stderr, "quakegen:", err)
		os.Exit(1)
	}
}

func run(scenario, out, vtk string, full bool) error {
	if scenario != "" {
		s, err := quake.ByName(scenario)
		if err != nil {
			return err
		}
		m, err := s.Mesh()
		if err != nil {
			return err
		}
		printStats(s, m)
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := m.Write(f); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
		if vtk != "" {
			mat := quake.Material()
			vs := make([]float64, m.NumNodes())
			for i, p := range m.Coords {
				vs[i] = mat.ShearVelocity(p)
			}
			f, err := os.Create(vtk)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := m.WriteVTK(f, s.Name+" mesh", mesh.VTKField{Name: "Vs", Data: vs}); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", vtk)
		}
		return nil
	}
	if out != "" || vtk != "" {
		return fmt.Errorf("-out/-vtk require -scenario")
	}
	tab, err := quake.Fig2Table(quake.Family(full))
	if err != nil {
		return err
	}
	return tab.Render(os.Stdout)
}

func printStats(s quake.Scenario, m *mesh.Mesh) {
	st := m.ComputeStats()
	fmt.Printf("%s: period %gs, %s nodes (paper %s), %s elements, %s edges, avg degree %.1f, %.2f KB/node\n",
		s.Name, s.Period,
		report.Int(int64(st.Nodes)), report.Int(s.PaperNodes),
		report.Int(int64(st.Elems)), report.Int(int64(st.Edges)),
		st.AvgDegree, st.BytesPerNode/1024)
}
