package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunTable(t *testing.T) {
	if err := run("", "", "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleScenarioWithOutputs(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "m.qmesh")
	vtk := filepath.Join(dir, "m.vtk")
	if err := run("sf10", out, vtk, false); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{out, vtk} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", "", "", false); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run("", "x.mesh", "", false); err == nil {
		t.Error("-out without -scenario accepted")
	}
}
