// Irregularity ablation: the paper's framing contrasts irregular
// (unstructured, graded) applications with regular grid codes. Here the
// same pipeline runs on the basin-graded sf5 mesh and on a uniform mesh
// of comparable resolution, quantifying exactly what irregularity costs
// in communication balance.
package quake_test

import (
	"testing"

	quake "repro"
	"repro/internal/machine"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/octree"
	"repro/internal/partition"
	iq "repro/internal/quake"
	"repro/internal/report"
)

// uniformMesh builds a regular counterpart to sf5: a homogeneous
// halfspace meshed at constant resolution over the same domain.
func uniformMesh(b *testing.B) *mesh.Mesh {
	b.Helper()
	mat := material.Uniform(0.7) // h = 0.7·5/2.0 = 1.75 km everywhere
	tr, err := octree.Build(iq.Domain(4), mat.Sizing(quake.SF5.Period, quake.SF5.PPW))
	if err != nil {
		b.Fatal(err)
	}
	m, err := mesh.FromTree(tr)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAblationIrregularity compares communication balance between
// the irregular (graded) and regular (uniform) workloads on 64 PEs.
func BenchmarkAblationIrregularity(b *testing.B) {
	irr, err := quake.SF5.Mesh()
	if err != nil {
		b.Fatal(err)
	}
	reg := uniformMesh(b)
	t3e := machine.T3E()
	tab := report.New("Ablation: irregular (sf5) vs regular (uniform) workload, 64 PEs, RCB",
		"workload", "nodes", "C_max", "C_max/C_avg", "B_max", "β", "M_avg", "load imbal", "E(T3E)")
	var cmaxRatioIrr, cmaxRatioReg float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Rows = tab.Rows[:0]
		for _, w := range []struct {
			name string
			m    *mesh.Mesh
		}{{"irregular", irr}, {"regular", reg}} {
			pt, err := partition.PartitionMesh(w.m, 64, partition.RCB, 1)
			if err != nil {
				b.Fatal(err)
			}
			pr, err := partition.Analyze(w.m, pt)
			if err != nil {
				b.Fatal(err)
			}
			var csum int64
			for _, c := range pr.C {
				csum += c
			}
			cavg := float64(csum) / float64(pr.P)
			ratio := float64(pr.Cmax()) / cavg
			if w.name == "irregular" {
				cmaxRatioIrr = ratio
			} else {
				cmaxRatioReg = ratio
			}
			app := model.AppProperties{F: pr.Fmax(), Cmax: pr.Cmax(), Bmax: pr.Bmax()}
			tab.AddRow(w.name,
				report.Int(int64(w.m.NumNodes())),
				report.Int(pr.Cmax()),
				report.F(ratio, 2),
				report.Int(pr.Bmax()),
				report.F(pr.Beta(), 2),
				report.F(pr.Mavg(), 0),
				report.F(pr.LoadImbalance(), 3),
				report.F(model.Efficiency(app, t3e.Tf, t3e.Tl, t3e.Tw), 3))
		}
		saveTable(b, "ablation_irregularity", tab)
	}
	// The irregular workload should show visibly worse communication
	// balance than the regular one.
	b.ReportMetric(cmaxRatioIrr, "Cmax/Cavg_irregular")
	b.ReportMetric(cmaxRatioReg, "Cmax/Cavg_regular")
	if cmaxRatioIrr < cmaxRatioReg {
		b.Logf("note: irregular workload better balanced than regular (%.2f vs %.2f)",
			cmaxRatioIrr, cmaxRatioReg)
	}
}
