package quake

import (
	"context"
	"errors"
	"testing"
)

// TestSessionFacade drives the Open/Solve/Status/Close handle over the
// process-wide engine: a first solve cold-builds sf10's artifacts, a
// reopened session on the same tuple is served warm, and results carry
// matching fingerprints.
func TestSessionFacade(t *testing.T) {
	defer CloseServing()

	s, err := Open(SessionSpec{Scenario: "sf10", PEs: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st := s.Status()
	if st.CacheHit {
		t.Fatal("first Open of a tuple reported a cache hit")
	}

	res, err := s.Solve(context.Background(), SolveSpec{Tol: 1e-8})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Converged || !res.Certified {
		t.Fatalf("facade solve: converged=%v certified=%v", res.Converged, res.Certified)
	}
	if !res.CacheHit {
		t.Fatal("session solve did not report the cached artifacts")
	}
	if st2 := s.Status(); st2.Solves != 1 || st2.LastIter != res.Iterations {
		t.Fatalf("status after solve: %+v", st2)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Solve(context.Background(), SolveSpec{}); !errors.Is(err, ErrServeClosed) {
		t.Fatalf("solve on closed session: %v, want ErrServeClosed", err)
	}

	// Reopen: same tuple, warm artifacts, identical answer.
	s2, err := Open(SessionSpec{Scenario: "sf10", PEs: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if !s2.Status().CacheHit {
		t.Fatal("reopened tuple was rebuilt instead of served from cache")
	}
	res2, err := s2.Solve(context.Background(), SolveSpec{Tol: 1e-8})
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if res2.SolutionFP != res.SolutionFP || res2.Fingerprints != res.Fingerprints {
		t.Fatalf("warm solve diverged: %x vs %x", res2.SolutionFP, res.SolutionFP)
	}
}

// TestCloseServingIdempotent: closing twice is safe, and a later Open
// starts a fresh engine instead of touching the torn-down one.
func TestCloseServingIdempotent(t *testing.T) {
	CloseServing()
	CloseServing()
	s, err := Open(SessionSpec{Scenario: "sf10", PEs: 2})
	if err != nil {
		t.Fatalf("Open after CloseServing: %v, want a fresh engine", err)
	}
	if s.Status().CacheHit {
		t.Fatal("fresh engine reported warm artifacts")
	}
	CloseServing()
}
