package quake_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestMetricNamesDocumented is the doc-drift guard for the telemetry
// surface: every metric name registered anywhere in the tree must
// appear in the docs/OBSERVABILITY.md metrics table. Registration
// sites are found by scanning non-test sources for obs.Get* calls —
// literal names, fmt.Sprintf formats, and "prefix." + var concats —
// and doc entries may use <placeholder> wildcards and {a,b} brace
// lists. Adding a metric without documenting it fails this test.
func TestMetricNamesDocumented(t *testing.T) {
	patterns := docMetricPatterns(t)
	names, prefixes := registeredMetricNames(t)

	var missing []string
	for _, n := range names {
		if !anyPatternMatches(patterns, n) {
			missing = append(missing, n)
		}
	}
	for _, p := range prefixes {
		ok := false
		for _, pat := range patterns {
			if strings.HasPrefix(pat.text, p) {
				ok = true
				break
			}
		}
		if !ok {
			missing = append(missing, p+"*")
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		t.Errorf("metrics registered in code but absent from the docs/OBSERVABILITY.md table:\n  %s",
			strings.Join(missing, "\n  "))
	}
}

type docPattern struct {
	text string // wildcards as *
	re   *regexp.Regexp
}

// docMetricPatterns extracts every `code span` from the metrics-table
// rows of docs/OBSERVABILITY.md, expanding {a,b,c} alternatives and
// turning <placeholder> into a wildcard.
func docMetricPatterns(t *testing.T) []docPattern {
	t.Helper()
	raw, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	span := regexp.MustCompile("`([^`]+)`")
	placeholder := regexp.MustCompile(`<[^>]+>`)
	var out []docPattern
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(strings.TrimSpace(line), "|") {
			continue
		}
		for _, m := range span.FindAllStringSubmatch(line, -1) {
			for _, expanded := range expandBraces(m[1]) {
				text := placeholder.ReplaceAllString(expanded, "*")
				re := "^" + strings.ReplaceAll(regexp.QuoteMeta(text), `\*`, `[^ ]+`) + "$"
				out = append(out, docPattern{text: text, re: regexp.MustCompile(re)})
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("no metric patterns found in docs/OBSERVABILITY.md table")
	}
	return out
}

// expandBraces turns "a.{x,y}" into ["a.x", "a.y"] (one brace group
// per name is enough for the table's vocabulary).
func expandBraces(s string) []string {
	open := strings.Index(s, "{")
	close := strings.Index(s, "}")
	if open < 0 || close < open {
		return []string{s}
	}
	var out []string
	for _, alt := range strings.Split(s[open+1:close], ",") {
		out = append(out, expandBraces(s[:open]+alt+s[close+1:])...)
	}
	return out
}

var (
	// obs.GetCounter("name"), obs.GetPEAccum("name", n), and the
	// Sprintf / "prefix." + var forms that the same call wraps.
	regCall = regexp.MustCompile(`obs\.Get(?:Counter|Gauge|Histogram|PEAccum)\(\s*(?:fmt\.Sprintf\()?"([^"]+)"`)
	// A "some.prefix." + variable concat assigned or passed as a
	// metric name (e.g. the fault injector's prebuilt counter names).
	regConcat  = regexp.MustCompile(`[=(]\s*"([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)*\.)"\s*\+`)
	sprintfFmt = regexp.MustCompile(`%[a-zA-Z]`)
)

// registeredMetricNames scans the non-test Go sources of internal/ and
// cmd/ for metric registrations. It returns concrete names (Sprintf
// verbs replaced by a representative expansion) and open-ended name
// prefixes from concat registrations.
func registeredMetricNames(t *testing.T) (names, prefixes []string) {
	t.Helper()
	seen := map[string]bool{}
	seenPrefix := map[string]bool{}
	for _, root := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			text := string(src)
			if !strings.Contains(text, "obs.Get") {
				return nil
			}
			for _, m := range regCall.FindAllStringSubmatch(text, -1) {
				name := m[1]
				if strings.HasSuffix(name, ".") {
					seenPrefix[name] = true
					continue
				}
				seen[sprintfFmt.ReplaceAllString(name, "0")] = true
			}
			for _, m := range regConcat.FindAllStringSubmatch(text, -1) {
				seenPrefix[m[1]] = true
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for n := range seen {
		names = append(names, n)
	}
	for p := range seenPrefix {
		prefixes = append(prefixes, p)
	}
	sort.Strings(names)
	sort.Strings(prefixes)
	if len(names) == 0 {
		t.Fatal("scanner found no metric registrations — the regexes have drifted from the code")
	}
	return names, prefixes
}

func anyPatternMatches(patterns []docPattern, name string) bool {
	for _, p := range patterns {
		if p.re.MatchString(name) {
			return true
		}
	}
	return false
}
