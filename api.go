package quake

import (
	"context"
	"net/http"
	"sync"

	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/fem"
	"repro/internal/geom"
	"repro/internal/machine"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/export"
	"repro/internal/par"
	"repro/internal/partition"
	iq "repro/internal/quake"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/solver"
	"repro/internal/spark"
	"repro/internal/sparse"
)

// Geometry and substrate types.
type (
	// Vec3 is a 3D point or direction (km).
	Vec3 = geom.Vec3
	// Mesh is an unstructured tetrahedral mesh.
	Mesh = mesh.Mesh
	// MeshStats summarizes mesh size and quality.
	MeshStats = mesh.Stats
	// Material is the layered rock/basin velocity model.
	Material = material.Model
	// BCSR is a 3×3-block sparse matrix (the stiffness format).
	BCSR = sparse.BCSR
	// SymBCSR is the symmetric upper-triangle storage variant.
	SymBCSR = sparse.SymBCSR
)

// Partitioning and analysis types.
type (
	// Partition maps mesh elements to processing elements.
	Partition = partition.Partition
	// Profile is the communication analysis of a partition: per-PE F,
	// C, B, the message matrix, and the β bound.
	Profile = partition.Profile
	// Method selects a partitioning algorithm.
	Method = partition.Method
)

// Partitioning methods.
const (
	RCB      = partition.RCB
	Inertial = partition.Inertial
	Random   = partition.Random
	Linear   = partition.Linear
	StripesZ = partition.StripesZ
	// Multilevel is the Chaco/METIS-style multilevel KL/FM partitioner.
	Multilevel = partition.Multilevel
)

// Model and machine types.
type (
	// AppProperties are the model inputs (F, C_max, B_max).
	AppProperties = model.AppProperties
	// MachineParams describe a machine (T_f, T_l, T_w).
	MachineParams = machine.Params
	// NetworkConfig configures the discrete-event exchange simulator.
	NetworkConfig = machine.NetworkConfig
	// Schedule is an explicit per-PE block-transfer plan.
	Schedule = comm.Schedule
	// Dist is the distributed SMVP operator run on persistent goroutine
	// PEs: created once, the PEs and their exchange buffers are reused
	// by every kernel call (zero steady-state allocations). Call Close
	// to release the goroutines; see docs/PERFORMANCE.md.
	Dist = par.Dist
	// ParTiming holds the per-PE phase durations of a distributed SMVP.
	// The kernels return a Dist-owned ParTiming that the next call
	// overwrites — copy it to keep it.
	ParTiming = par.Timing
	// DistSim is the distributed time-stepping application.
	DistSim = par.DistSim
	// DistSimResult reports a distributed run with phase timings.
	DistSimResult = par.DistSimResult
	// DistOperator adapts the distributed SMVP to solver.Operator, so
	// CG runs with every matrix application on goroutine PEs.
	DistOperator = par.Operator
	// System is the assembled finite element problem (K and mass).
	System = fem.System
	// SimConfig configures an elastodynamic run.
	SimConfig = fem.SimConfig
	// SimResult reports a run's outcome and SMVP share of runtime.
	SimResult = fem.SimResult
	// PointSource is a Ricker-wavelet body force.
	PointSource = fem.PointSource
	// AbsorbingDampers are Lysmer viscous boundary dampers.
	AbsorbingDampers = fem.AbsorbingDampers
	// VTKField is one named point-data array for Mesh.WriteVTK.
	VTKField = mesh.VTKField
)

// BuildAbsorbingDampers assembles boundary dampers that keep outgoing
// waves from reflecting off the artificial mesh boundary; surfaceZ
// identifies the free surface, which stays undamped.
func BuildAbsorbingDampers(s *System, mat *Material, surfaceZ float64) (*AbsorbingDampers, error) {
	return fem.BuildAbsorbingDampers(s, mat, surfaceZ)
}

// Scenario and experiment types.
type (
	// Scenario is one member of the sf family.
	Scenario = iq.Scenario
	// PropsRow is one Figure 7 row: the SMVP properties of a scenario
	// at one PE count.
	PropsRow = iq.PropsRow
	// HalfPoint is one Figure 11 half-bandwidth design point.
	HalfPoint = iq.HalfPoint
	// Table is an aligned text/CSV table.
	Table = report.Table
)

// The calibrated scenario family (see Figure 2 of the paper).
var (
	SF10     = iq.SF10
	SF5      = iq.SF5
	SF2      = iq.SF2
	SF1      = iq.SF1
	SF1Small = iq.SF1Small
)

// PECounts is the subdomain sweep used by the paper's tables (4..128).
var PECounts = iq.PECounts

// Family returns the scenario sweep; full=true includes the 2.4M-node
// sf1 instead of the reduced sf1s proxy.
func Family(full bool) []Scenario { return iq.Family(full) }

// ScenarioByName looks up sf10, sf5, sf2, sf1, or sf1s.
func ScenarioByName(name string) (Scenario, error) { return iq.ByName(name) }

// SanFernando returns the default material model.
func SanFernando() *Material { return material.SanFernando() }

// PartitionMesh divides the mesh elements among p PEs.
func PartitionMesh(m *Mesh, p int, method Method, seed int64) (*Partition, error) {
	return partition.PartitionMesh(m, p, method, seed)
}

// Analyze computes the communication profile of a partition.
func Analyze(m *Mesh, pt *Partition) (*Profile, error) { return partition.Analyze(m, pt) }

// Assemble builds the global stiffness matrix and lumped mass.
func Assemble(m *Mesh, mat *Material) (*System, error) { return fem.Assemble(m, mat) }

// NewDist builds the distributed SMVP operator for a partitioned mesh.
func NewDist(m *Mesh, mat *Material, pt *Partition, pr *Profile) (*Dist, error) {
	return par.NewDist(m, mat, pt, pr)
}

// NewDistSim builds the distributed time-stepping application on top of
// a distributed operator; massNode is the global lumped mass (from
// Assemble) and absorbers may be nil.
func NewDistSim(d *Dist, massNode []float64, absorbers *AbsorbingDampers) (*DistSim, error) {
	return par.NewDistSim(d, massNode, absorbers)
}

// Machine presets from the paper.
var (
	T3D        = machine.T3D
	T3E        = machine.T3E
	Current100 = machine.Current100
	Future200  = machine.Future200
)

// Model functions (Equations 1 and 2 and their derived quantities).
var (
	// RequiredTc solves Equation (1) for the word time meeting a target
	// efficiency.
	RequiredTc = model.RequiredTc
	// RequiredBandwidth is 8/RequiredTc in bytes per second (Figure 9).
	RequiredBandwidth = model.RequiredBandwidth
	// AchievedTc evaluates Equation (2) for a machine on an application.
	AchievedTc = model.AchievedTc
	// Efficiency is the modeled E for an application on a machine.
	Efficiency = model.Efficiency
	// HalfBandwidthPoint is the Figure 11 design rule.
	HalfBandwidthPoint = model.HalfBandwidthPoint
	// BisectionBandwidth is the Figure 8 requirement.
	BisectionBandwidth = model.BisectionBandwidth
	// MFLOPS and MBps convert to reporting units.
	MFLOPS = model.MFLOPS
	MBps   = model.MBps
)

// ScheduleFromProfile builds the maximal-block exchange schedule of a
// communication profile.
func ScheduleFromProfile(pr *Profile) (*Schedule, error) { return comm.FromMatrix(pr.Msg) }

// SimulateExchange runs the discrete-event simulation of one exchange
// phase on the given machine and network.
func SimulateExchange(s *Schedule, p MachineParams, net NetworkConfig) machine.SimResult {
	return machine.Simulate(s, p, net)
}

// MeasureTf times the local SMVP on this host and returns seconds per
// flop (the paper's T_f measurement, Section 3.1).
func MeasureTf(k *BCSR, iters int) float64 { return par.MeasureTf(k, iters) }

// NewSym converts a block-symmetric BCSR matrix to the Spark98-style
// symmetric upper-triangle storage.
func NewSym(k *BCSR) (*SymBCSR, error) { return sparse.NewSymFromBCSR(k) }

// Extension types: overlap modeling, implicit (CG) solves, and the
// Spark98 kernel suite.
type (
	// OverlapModel quantifies what overlapping computation with
	// communication buys (paper footnote 1); see model.Overlap.
	OverlapModel = model.Overlap
	// SparkSuite bundles the Spark98-style SMVP kernel variants.
	SparkSuite = spark.Suite
	// CGConfig and CGResult configure and report conjugate gradient
	// solves (the implicit-method extension).
	CGConfig = solver.Config
	CGResult = solver.Result
	// CGWorkspace preallocates the CG iteration vectors so repeated
	// solves (an implicit time stepper) stop reallocating them; pass it
	// via CGConfig.Workspace.
	CGWorkspace = solver.Workspace
	// ShiftedOperator is K + σ·diag(M), the SPD system an implicit
	// method solves each step.
	ShiftedOperator = solver.Shifted
)

// NewSparkSuite builds the Spark98 kernel suite from a stiffness matrix.
func NewSparkSuite(k *BCSR) (*SparkSuite, error) { return spark.NewSuite(k) }

// SolveCG runs (optionally preconditioned) conjugate gradients.
func SolveCG(a solver.Operator, b, x []float64, cfg CGConfig) (*CGResult, error) {
	return solver.CG(a, b, x, cfg)
}

// NewCGWorkspace preallocates a CG workspace for operators of scalar
// dimension n (3·nodes for the stiffness operators).
func NewCGWorkspace(n int) *CGWorkspace { return solver.NewWorkspace(n) }

// AllReduceTime models the cost of a global reduction over p PEs — the
// extra communication implicit methods add per dot product.
var AllReduceTime = model.AllReduceTime

// ImplicitStep models one CG iteration's time and its allreduce share.
var ImplicitStep = model.ImplicitStep

// Torus is a 3D torus interconnect with dimension-ordered routing and
// finite link bandwidth, for checking the infinite-capacity network
// assumption against a contended fabric.
type Torus = network.Torus

// TorusConfig sets link bandwidth and hop latency for SimulateTorus.
type TorusConfig = network.Config

// NewTorus factors a PE count into the most cube-like torus shape.
func NewTorus(p int) (Torus, error) { return network.NewTorus(p) }

// SimulateTorus runs an exchange schedule over a contended torus.
func SimulateTorus(s *Schedule, p MachineParams, t Torus, cfg TorusConfig) (network.Result, error) {
	return network.Simulate(s, p, t, cfg)
}

// Properties computes Figure 7 rows for a scenario.
func Properties(s Scenario, pcounts []int, method Method) ([]PropsRow, error) {
	return iq.Properties(s, pcounts, method)
}

// Reliability: deterministic fault injection on the distributed runtime
// and the self-healing CG solver built against it. The plan grammar,
// containment contract, and recovery semantics are in
// docs/RELIABILITY.md.
type (
	// FaultPlan is a parsed fault-injection plan: seeded, ordered fault
	// events the runtime executes at its exchange boundary.
	FaultPlan = fault.Plan
	// FaultEvent is one planned fault (corrupt, drop, dup, delay, stall,
	// or panic) bound to a PE and optionally a kernel invocation.
	FaultEvent = fault.Event
	// FaultKind enumerates the fault event kinds.
	FaultKind = fault.Kind
	// FaultInjector is an armed plan: it injects at the exchange
	// boundary and counts what it injected, per kind. Obtain one from
	// Dist.InjectFaults.
	FaultInjector = fault.Injector
)

// ParseFaultPlan parses the fault-plan grammar, e.g.
// "corrupt:pe=2,iter=5;stall:pe=0,dur=10ms;panic:pe=1,iter=12".
func ParseFaultPlan(s string) (*FaultPlan, error) { return fault.Parse(s) }

// ErrDistPoisoned marks every error a Dist returns after one of its PEs
// died mid-kernel: the runtime contains the failure, fails the in-flight
// call, and refuses all later kernels (errors.Is-matchable).
var ErrDistPoisoned = par.ErrPoisoned

// Experiment tables (one per paper figure).
var (
	Fig2Table  = iq.Fig2Table
	Fig6Table  = iq.Fig6Table
	Fig7Table  = iq.Fig7Table
	Fig8Table  = iq.Fig8Table
	Fig9Table  = iq.Fig9Table
	Fig10Table = iq.Fig10Table
	Fig11Table = iq.Fig11Table
	// MeasuredTfTable regenerates the Eq.(1)/(2) requirements at a
	// measured per-flop time next to the paper-era baseline, showing how
	// the required T_c and bandwidths shift with the real kernel speed.
	MeasuredTfTable = iq.MeasuredTfTable
)

// TfShift quantifies how the Eq.(1)/(2) requirements move when the
// assumed T_f is replaced by a measured one; build with ShiftTf.
type TfShift = model.TfShift

// ShiftTf evaluates the Eq.(1)/(2) requirements at a baseline and a
// measured per-flop time and returns the shift.
var ShiftTf = model.ShiftTf

// Two-level (node-aware) exchange aggregation: same-node-pair messages
// fuse into one inter-node block plus on-node gather/scatter copies,
// trading copied words for the Eq.(2) block-latency term. The
// transform, its invariants, and the extended model are in
// docs/COMMUNICATION.md.
type (
	// Aggregated is a fused two-level exchange plan (four schedule legs
	// plus the PE→node mapping); build one with AggregateSchedule.
	Aggregated = comm.Aggregated
	// AggProperties are the extended-Eq.(2) inputs: inter-node and
	// on-node (C, B) maxima of an aggregated plan.
	AggProperties = model.AggProperties
	// LocalParams are the on-node copy costs (T_l, T_w) the gather and
	// scatter legs pay.
	LocalParams = model.LocalParams
	// AggregationRow is one node size of a blocks-vs-words sweep.
	AggregationRow = report.AggregationRow
)

// AggregateSchedule fuses a flat exchange schedule under a PE→node
// mapping. The aggregated plan moves bit-identical payloads: Dist
// kernels with SetAggregation produce exactly the flat results.
func AggregateSchedule(s *Schedule, nodeOf func(pe int32) int32) (*Aggregated, error) {
	return comm.Aggregate(s, nodeOf)
}

// ContiguousNodes maps PEs to nodes in contiguous blocks of the given
// size — the mapping cluster schedulers produce for packed ranks.
func ContiguousNodes(size int) func(pe int32) int32 { return comm.ContiguousNodes(size) }

// OnNode is the intra-node copy-cost preset used as LocalParams'
// machine-shaped counterpart by the aggregated simulators.
func OnNode() MachineParams { return machine.OnNode() }

// Extended model: Eq.(2) split into an inter-node leg at machine
// (Tl, Tw) and gather/scatter legs at on-node costs.
var (
	AchievedTcAggregated = model.AchievedTcAggregated
	AggregatedEfficiency = model.AggregatedEfficiency
	// BetaOf is the Eq.(2) β load-imbalance bound for any per-PE (C, B)
	// pair, e.g. an Aggregated plan's InterCB.
	BetaOf = model.BetaOf
)

// SimulateExchangeAggregated replays an aggregated plan's three phases
// (gather, fused inter-node, scatter) on the discrete-event machine
// simulator; p prices the inter-node leg, local the on-node copies.
func SimulateExchangeAggregated(a *Aggregated, p, local MachineParams, net NetworkConfig) (machine.AggSimResult, error) {
	return machine.SimulateAggregated(a, p, local, net)
}

// SimulateTorusAggregated replays the fused inter-node leg over a
// contended torus of nodes (t.PEs() must equal a.NumNodes).
func SimulateTorusAggregated(a *Aggregated, p, local MachineParams, t Torus, cfg TorusConfig) (network.AggResult, error) {
	return network.SimulateAggregated(a, p, local, t, cfg)
}

// AggSweep evaluates the blocks-vs-words tradeoff of a scenario over a
// range of node sizes (cmd/quakenet -agg).
func AggSweep(s Scenario, p int, method Method, nodeSizes []int, cfg TorusConfig) ([]AggregationRow, error) {
	return iq.AggSweep(s, p, method, nodeSizes, cfg)
}

// AggregationSummary renders a node-size sweep as a table.
func AggregationSummary(title string, rows []AggregationRow) *Table {
	return report.AggregationSummary(title, rows)
}

// Observability: live telemetry, analytics, and the HTTP surface.
type (
	// MetricsSnapshot is a point-in-time copy of the telemetry
	// registry: counters, gauges, log2 histograms, and per-PE phase
	// accumulators. Sub produces the delta between two snapshots.
	MetricsSnapshot = obs.Snapshot
	// FlightEvent is one entry of the always-on flight-recorder ring.
	FlightEvent = obs.FlightEvent
	// AnalysisWindow is a per-PE view of accumulated phase time over a
	// span of kernel iterations.
	AnalysisWindow = analyze.Window
	// AnalysisReport bundles λ, stragglers, the achieved T_f/T_c
	// decomposition, and Eq.(2) drift for one window.
	AnalysisReport = analyze.Report
)

// SetTelemetry enables or disables metric collection process-wide.
// Collection is off by default; the hot paths stay allocation-free
// either way.
func SetTelemetry(enabled bool) { obs.SetEnabled(enabled) }

// MetricsSnapshotNow copies the current state of the default registry.
func MetricsSnapshotNow() *MetricsSnapshot { return obs.Default.Snapshot() }

// ServeMetrics starts the observability HTTP server on addr (":0"
// picks a free port): Prometheus text /metrics, JSON /metrics.json,
// the flight ring at /flight, expvar /debug/vars, and /debug/pprof.
// It returns the bound address and a shutdown function.
func ServeMetrics(addr string) (string, func(context.Context) error, error) {
	return export.Serve(addr)
}

// AnalyzeWindow extracts the per-PE phase window recorded between two
// snapshots (prev may be nil for run-so-far totals) — the input to
// AnalyzeFlat/AnalyzeAggregated.
func AnalyzeWindow(cur, prev *MetricsSnapshot) (AnalysisWindow, bool) {
	return analyze.FromSnapshots(cur, prev)
}

// AnalyzeFlat computes λ, stragglers, the achieved decomposition, and
// Eq.(2) drift of a window against the flat-schedule model.
func AnalyzeFlat(w AnalysisWindow, app AppProperties, Tl, Tw float64) AnalysisReport {
	return analyze.Analyze(w, app, Tl, Tw)
}

// AnalyzeAggregated computes the same report against the two-level
// aggregated exchange model.
func AnalyzeAggregated(w AnalysisWindow, agg AggProperties, Tl, Tw float64, local LocalParams) AnalysisReport {
	return analyze.AnalyzeAggregated(w, agg, Tl, Tw, local)
}

// ArmFlightDump points the process-wide flight recorder at a dump file
// ("" disarms): when a PE faults, a barrier poisons, or a shrink
// recovery fires, the ring of recent spans and fault/solver/recovery
// events is written there as JSON.
func ArmFlightDump(path string) { obs.FlightRecorder.SetDumpPath(path) }

// FlightEvents returns the flight recorder's current ring contents,
// oldest first.
func FlightEvents() []FlightEvent { return obs.FlightRecorder.Events() }

// Serving: the warm-pool session facade over internal/serve. Open a
// session once, Solve it many times, Close when done — the expensive
// mesh/partition/schedule/assembly artifacts and the warm Dist pool
// live in a process-wide engine keyed by deterministic fingerprints,
// so construct-use-Close callers and the quaked HTTP service share the
// same cache semantics. See docs/SERVICE.md.
type (
	// ServeConfig tunes the serving engine: admission bounds, warm-pool
	// size, per-request budget ceilings, and the scenario resolver.
	ServeConfig = serve.Config
	// ServeEngine is the serving core: the artifact cache, the warm
	// worker pools, and bounded admission.
	ServeEngine = serve.Engine
	// Session is a warm handle on one cached (scenario, p, method,
	// nodesize) tuple.
	Session = serve.Session
	// SessionSpec names the tuple a session binds to.
	SessionSpec = serve.SessionSpec
	// SessionStatus is a session's point-in-time state.
	SessionStatus = serve.Status
	// SolveSpec is one solve's parameters and budgets.
	SolveSpec = serve.SolveSpec
	// SolveOutcome reports one served solve: convergence, cache and
	// fingerprint provenance, recovery transitions, certification.
	SolveOutcome = serve.SolveResult
	// SolveProgress is one residual progress sample.
	SolveProgress = serve.Progress
	// JobStatus is a durable job's point-in-time public state: lifecycle
	// state, attempts, migrations, checkpoint iteration.
	JobStatus = serve.JobStatus
)

// Serving errors, for errors.Is against Session and engine results.
var (
	ErrServeBusy     = serve.ErrBusy
	ErrServeCanceled = serve.ErrCanceled
	ErrServeClosed   = serve.ErrClosed
)

// NewServeEngine builds a serving engine; Close releases its pools.
// The error is the job journal's (ServeConfig.JournalDir); an engine
// without one cannot fail.
func NewServeEngine(cfg ServeConfig) (*ServeEngine, error) { return serve.NewEngine(cfg) }

// ServeMux returns the quaked HTTP surface for an engine: /v1/ solve
// and session endpoints plus the full observability export.
func ServeMux(e *ServeEngine) *http.ServeMux { return serve.NewMux(e) }

// The process-wide default engine behind Open, built lazily.
var (
	defaultServeMu sync.Mutex
	defaultServe   *serve.Engine
)

// Open creates (or re-binds) a session on the process-wide serving
// engine, cold-building the tuple's artifacts on first use and serving
// them warm afterwards. Telemetry is enabled as a side effect — the
// cache counters are the engine's observable contract.
func Open(spec SessionSpec) (*Session, error) {
	defaultServeMu.Lock()
	if defaultServe == nil {
		obs.SetEnabled(true)
		// No JournalDir → the constructor cannot fail.
		defaultServe, _ = serve.NewEngine(serve.Config{})
	}
	e := defaultServe
	defaultServeMu.Unlock()
	return e.Open(spec)
}

// CloseServing shuts the process-wide engine down, releasing every
// pooled runtime. A later Open starts a fresh (cold) engine.
func CloseServing() {
	defaultServeMu.Lock()
	e := defaultServe
	defaultServe = nil
	defaultServeMu.Unlock()
	if e != nil {
		e.Close()
	}
}
