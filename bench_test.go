// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus validation and ablation benches. Each benchmark both
// measures its computation and writes the rendered table to results/
// (once per run), so a single
//
//	go test -bench=. -benchmem
//
// regenerates every artifact recorded in EXPERIMENTS.md.
//
// Scenario scope is controlled by environment variables:
//
//	(default)       sf10, sf5, sf2  — the paper's running examples
//	QUAKE_LARGE=1   adds sf1s, the reduced-scale sf1 proxy
//	QUAKE_FULL=1    adds the genuine 2.4M-node sf1 (needs several GB)
package quake_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	quake "repro"
	"repro/internal/comm"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/obs"
	obsanalyze "repro/internal/obs/analyze"
	"repro/internal/partition"
	iq "repro/internal/quake"
	"repro/internal/report"
)

// benchScenarios returns the scenario sweep for the harness run.
func benchScenarios() []quake.Scenario {
	ss := []quake.Scenario{quake.SF10, quake.SF5, quake.SF2}
	if os.Getenv("QUAKE_FULL") == "1" {
		return append(ss, quake.SF1)
	}
	if os.Getenv("QUAKE_LARGE") == "1" {
		return append(ss, quake.SF1Small)
	}
	return ss
}

// largestScenario is the stand-in for the paper's sf2 running example.
func largestScenario() quake.Scenario {
	ss := benchScenarios()
	return ss[len(ss)-1]
}

var resultOnce sync.Map // filename -> *sync.Once

// saveTable writes a rendered table to results/<name>.txt once per run.
func saveTable(b *testing.B, name string, t *report.Table) {
	b.Helper()
	onceIface, _ := resultOnce.LoadOrStore(name, &sync.Once{})
	onceIface.(*sync.Once).Do(func() {
		if err := os.MkdirAll("results", 0o755); err != nil {
			b.Fatalf("mkdir results: %v", err)
		}
		f, err := os.Create(filepath.Join("results", name+".txt"))
		if err != nil {
			b.Fatalf("create result: %v", err)
		}
		defer f.Close()
		if err := t.Render(f); err != nil {
			b.Fatalf("render result: %v", err)
		}
	})
}

// BenchmarkFig2MeshSizes regenerates Figure 2: the sizes of the Quake
// meshes, generated versus paper.
func BenchmarkFig2MeshSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := quake.Fig2Table(benchScenarios())
		if err != nil {
			b.Fatal(err)
		}
		saveTable(b, "fig2_mesh_sizes", t)
	}
}

// BenchmarkFig6Beta regenerates Figure 6: the β error bounds on T_c for
// every scenario and subdomain count.
func BenchmarkFig6Beta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := quake.Fig6Table(benchScenarios(), quake.PECounts, quake.RCB)
		if err != nil {
			b.Fatal(err)
		}
		saveTable(b, "fig6_beta", t)
	}
}

// BenchmarkFig7Properties regenerates Figure 7: F, C_max, B_max, M_avg,
// and F/C_max for every scenario and subdomain count.
func BenchmarkFig7Properties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := quake.Fig7Table(benchScenarios(), quake.PECounts, quake.RCB)
		if err != nil {
			b.Fatal(err)
		}
		saveTable(b, "fig7_properties", t)
	}
	rows, err := quake.Properties(largestScenario(), []int{128}, quake.RCB)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rows[0].Cmax), "Cmax/128PE")
	b.ReportMetric(rows[0].Ratio, "F/Cmax/128PE")
}

// BenchmarkFig8Bisection regenerates Figure 8: sustained bisection
// bandwidth requirements for the running example.
func BenchmarkFig8Bisection(b *testing.B) {
	s := largestScenario()
	var worst float64
	for i := 0; i < b.N; i++ {
		t, err := quake.Fig8Table(s, quake.PECounts, quake.RCB)
		if err != nil {
			b.Fatal(err)
		}
		saveTable(b, "fig8_bisection", t)
		rows, err := quake.Properties(s, quake.PECounts, quake.RCB)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			tc := model.RequiredTc(r.App(), 0.9, 5e-9)
			if bw := model.MBps(model.BisectionBandwidth(r.BisectionWords, r.Cmax, tc)); bw > worst {
				worst = bw
			}
		}
	}
	b.ReportMetric(worst, "worstMB/s")
}

// BenchmarkFig9SustainedBW regenerates Figure 9: sustained per-PE
// bandwidth requirements for the running example.
func BenchmarkFig9SustainedBW(b *testing.B) {
	s := largestScenario()
	var worst float64
	for i := 0; i < b.N; i++ {
		t, err := quake.Fig9Table(s, quake.PECounts, quake.RCB)
		if err != nil {
			b.Fatal(err)
		}
		saveTable(b, "fig9_sustained_bw", t)
		rows, err := quake.Properties(s, quake.PECounts, quake.RCB)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if bw := model.MBps(model.RequiredBandwidth(r.App(), 0.9, 5e-9)); bw > worst {
				worst = bw
			}
		}
	}
	b.ReportMetric(worst, "worstMB/s")
}

// BenchmarkFig10Tradeoff regenerates Figure 10: the burst-bandwidth /
// block-latency tradeoff for the running example at its largest PE
// count, in both block regimes.
func BenchmarkFig10Tradeoff(b *testing.B) {
	s := largestScenario()
	bursts := []float64{1, 3, 10, 30, 100, 300, 1000, 3000, 10000}
	var lastLat float64
	for i := 0; i < b.N; i++ {
		rows, err := quake.Properties(s, quake.PECounts, quake.RCB)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[len(rows)-1]
		saveTable(b, "fig10_tradeoff", quake.Fig10Table(r, 5e-9, bursts))
		tc := model.RequiredTc(r.App(), 0.9, 5e-9)
		lastLat = model.LatencyBudget(r.App(), tc, 0)
	}
	b.ReportMetric(lastLat*1e6, "maxLatency_µs")
}

// BenchmarkFig11HalfBandwidth regenerates Figure 11: the
// half-bandwidth / half-latency design points across the whole sweep.
func BenchmarkFig11HalfBandwidth(b *testing.B) {
	s := largestScenario()
	var hardest iq.HalfPoint
	for i := 0; i < b.N; i++ {
		t, err := quake.Fig11Table(s, quake.PECounts, quake.RCB)
		if err != nil {
			b.Fatal(err)
		}
		saveTable(b, "fig11_half_bandwidth", t)
		points, err := iq.Fig11Points(s, quake.PECounts, quake.RCB)
		if err != nil {
			b.Fatal(err)
		}
		hardest = points[0]
		for _, p := range points {
			if p.Regime == "maximal" && p.BurstMBps > hardest.BurstMBps {
				hardest = p
			}
		}
	}
	b.ReportMetric(hardest.BurstMBps, "hardestBurstMB/s")
	b.ReportMetric(hardest.Latency*1e6, "hardestLatency_µs")
}

// BenchmarkEXFLOWComparison regenerates the introduction's comparison
// of the Quake profile against the published EXFLOW profile.
func BenchmarkEXFLOWComparison(b *testing.B) {
	s := largestScenario()
	var cmp *iq.EXFLOWComparison
	for i := 0; i < b.N; i++ {
		rows, err := quake.Properties(s, []int{128}, quake.RCB)
		if err != nil {
			b.Fatal(err)
		}
		cmp, err = iq.CompareEXFLOW(s, rows[0])
		if err != nil {
			b.Fatal(err)
		}
		t := report.New(fmt.Sprintf("EXFLOW vs %s/128", s.Name),
			"metric", "EXFLOW", "ours", "paper sf2/128")
		t.AddRow("KB/MFLOP", report.F(cmp.EXFLOWKBPerMFLOP, 0),
			report.F(cmp.QuakeKBPerMFLOP, 1), report.F(iq.PaperQuakeKBPerMFLOP, 0))
		t.AddRow("msgs/MFLOP", report.F(cmp.EXFLOWMsgsPerMFLOP, 0),
			report.F(cmp.QuakeMsgsPerMFLOP, 1), report.F(iq.PaperQuakeMsgsPerMFLOP, 0))
		t.AddRow("avg msg KB", report.F(cmp.EXFLOWAvgMsgKB, 1),
			report.F(cmp.QuakeAvgMsgKB, 1), report.F(iq.PaperQuakeAvgMsgKB, 1))
		t.AddRow("MB/PE", "2.0", report.F(cmp.QuakeMBPerPE, 2), "2.0")
		saveTable(b, "exflow_comparison", t)
	}
	b.ReportMetric(cmp.QuakeKBPerMFLOP, "KB/MFLOP")
	b.ReportMetric(cmp.QuakeMsgsPerMFLOP, "msgs/MFLOP")
}

// BenchmarkTfLocalSMVP measures the host's T_f on each scenario's
// assembled stiffness matrix (Section 3.1: T_f is steady across
// instances on a given machine). The per-op time is one full local
// SMVP; the metric reports the derived sustained MFLOPS.
func BenchmarkTfLocalSMVP(b *testing.B) {
	for _, s := range benchScenarios() {
		b.Run(s.Name, func(b *testing.B) {
			m, err := s.Mesh()
			if err != nil {
				b.Fatal(err)
			}
			sys, err := quake.Assemble(m, quake.SanFernando())
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, 3*m.NumNodes())
			y := make([]float64, 3*m.NumNodes())
			for i := range x {
				x[i] = float64(i%7) * 0.5
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.K.MulVec(y, x)
			}
			b.StopTimer()
			flops := float64(2 * sys.K.NNZ())
			tf := b.Elapsed().Seconds() / float64(b.N) / flops
			b.ReportMetric(model.MFLOPS(tf), "MFLOPS")
			b.ReportMetric(tf*1e9, "Tf_ns")
		})
	}
}

// BenchmarkSMVPShare integrates the sf10 application for a short run
// and reports the fraction of time in the SMVP (Section 2.3: over 80%).
func BenchmarkSMVPShare(b *testing.B) {
	m, err := quake.SF10.Mesh()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := quake.Assemble(m, quake.SanFernando())
	if err != nil {
		b.Fatal(err)
	}
	dt := sys.StableDt(0.5)
	var share float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.Run(quake.SimConfig{
			Dt: dt, Steps: 100,
			Source: quake.PointSource{
				Location:  quake.Vec3{X: 25, Y: 25, Z: 6},
				Direction: quake.Vec3{Z: 1},
				Amplitude: 1e3, PeakFreq: 0.1, Delay: 12,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		share = res.SMVPShare()
	}
	b.ReportMetric(100*share, "SMVP_%")
}

// BenchmarkModelValidation compares the paper's closed-form model
// against the exact per-PE time and the discrete-event simulation on
// the measured T3E, verifying the β bound holds.
func BenchmarkModelValidation(b *testing.B) {
	s := quake.SF5
	m, err := s.Mesh()
	if err != nil {
		b.Fatal(err)
	}
	t3e := machine.T3E()
	var worstRatio float64
	tab := report.New("Model vs exact vs discrete simulation (Cray T3E, "+s.Name+")",
		"PEs", "model", "exact", "β", "model/exact", "sim", "sim/exact")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		worstRatio = 0
		tab.Rows = tab.Rows[:0]
		for _, p := range quake.PECounts {
			pt, err := partition.PartitionMesh(m, p, partition.RCB, 1)
			if err != nil {
				b.Fatal(err)
			}
			pr, err := partition.Analyze(m, pt)
			if err != nil {
				b.Fatal(err)
			}
			sched, err := comm.FromMatrix(pr.Msg)
			if err != nil {
				b.Fatal(err)
			}
			modelT := machine.ModelCommTime(sched, t3e)
			exactT := machine.ExactCommTime(sched, t3e)
			simT := machine.Simulate(sched, t3e, machine.NetworkConfig{Transit: 1e-6}).CommTime
			beta := pr.Beta()
			ratio := modelT / exactT
			if ratio > beta+1e-9 {
				b.Fatalf("p=%d: model/exact %.4f exceeds β %.4f", p, ratio, beta)
			}
			if ratio > worstRatio {
				worstRatio = ratio
			}
			tab.AddRow(fmt.Sprint(p), report.SI(modelT, "s"), report.SI(exactT, "s"),
				report.F(beta, 2), report.F(ratio, 3),
				report.SI(simT, "s"), report.F(simT/exactT, 3))
		}
		saveTable(b, "model_validation", tab)
	}
	b.ReportMetric(worstRatio, "worstModel/Exact")
}

// BenchmarkAblationPartitioners quantifies partitioner quality: C_max
// and modeled T3E efficiency per method on sf5/32.
func BenchmarkAblationPartitioners(b *testing.B) {
	m, err := quake.SF5.Mesh()
	if err != nil {
		b.Fatal(err)
	}
	t3e := machine.T3E()
	tab := report.New("Ablation: partitioner quality on sf5/32",
		"method", "C_max", "B_max", "β", "E(T3E)")
	var spread float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Rows = tab.Rows[:0]
		var best, worst float64
		for _, method := range []partition.Method{
			partition.RCB, partition.Inertial, partition.StripesZ,
			partition.Linear, partition.Random,
		} {
			pt, err := partition.PartitionMesh(m, 32, method, 42)
			if err != nil {
				b.Fatal(err)
			}
			pr, err := partition.Analyze(m, pt)
			if err != nil {
				b.Fatal(err)
			}
			app := model.AppProperties{F: pr.Fmax(), Cmax: pr.Cmax(), Bmax: pr.Bmax()}
			e := model.Efficiency(app, t3e.Tf, t3e.Tl, t3e.Tw)
			if best == 0 || e > best {
				best = e
			}
			if worst == 0 || e < worst {
				worst = e
			}
			tab.AddRow(method.String(), report.Int(pr.Cmax()), report.Int(pr.Bmax()),
				report.F(pr.Beta(), 2), report.F(e, 3))
		}
		spread = best - worst
		saveTable(b, "ablation_partitioners", tab)
	}
	b.ReportMetric(spread, "efficiencySpread")
}

// BenchmarkAblationKernels compares the SMVP kernel variants on sf5:
// scalar CSR, 3×3-block BCSR, and symmetric upper storage.
func BenchmarkAblationKernels(b *testing.B) {
	m, err := quake.SF5.Mesh()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := quake.Assemble(m, quake.SanFernando())
	if err != nil {
		b.Fatal(err)
	}
	csr := sys.K.ToCSR()
	sym, err := quake.NewSym(sys.K)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 3*m.NumNodes())
	y := make([]float64, 3*m.NumNodes())
	for i := range x {
		x[i] = float64(i%9) * 0.25
	}
	flops := float64(2 * sys.K.NNZ())
	b.Run("bcsr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys.K.MulVec(y, x)
		}
		b.ReportMetric(flops/(b.Elapsed().Seconds()/float64(b.N))/1e6, "MFLOPS")
	})
	b.Run("csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csr.MulVec(y, x)
		}
		b.ReportMetric(flops/(b.Elapsed().Seconds()/float64(b.N))/1e6, "MFLOPS")
	})
	b.Run("sym", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sym.MulVec(y, x)
		}
		b.ReportMetric(flops/(b.Elapsed().Seconds()/float64(b.N))/1e6, "MFLOPS")
	})
	b.Run("csr_seg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csr.MulVecSegmented(y, x)
		}
		b.ReportMetric(flops/(b.Elapsed().Seconds()/float64(b.N))/1e6, "MFLOPS")
	})
	// The fused kernel does strictly more work (the dot rides along), so
	// comparing its ns/op against bcsr shows what the fusion costs — the
	// win is the separate dot sweep it makes unnecessary.
	b.Run("fused", func(b *testing.B) {
		var d float64
		for i := 0; i < b.N; i++ {
			d = sys.K.MulVecDot(y, x)
		}
		_ = d
		b.ReportMetric(flops/(b.Elapsed().Seconds()/float64(b.N))/1e6, "MFLOPS")
	})
}

// BenchmarkKernelGuard is the regression gate behind `make bench-smoke`:
// the unfused arm is the pre-fusion shape (SMVP sweep, then a separate
// dot sweep over x and y), the fused arm is MulVecDot doing both in one
// pass. `benchjson -guard` fails the build if fused comes out slower
// than unfused beyond the slack — the fused path exists to win, and a
// loss means someone broke it.
func BenchmarkKernelGuard(b *testing.B) {
	m, err := quake.SF5.Mesh()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := quake.Assemble(m, quake.SanFernando())
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 3*m.NumNodes())
	y := make([]float64, 3*m.NumNodes())
	for i := range x {
		x[i] = float64(i%9) * 0.25
	}
	b.Run("unfused", func(b *testing.B) {
		var d float64
		for i := 0; i < b.N; i++ {
			sys.K.MulVec(y, x)
			d = 0
			for j := range x {
				d += x[j] * y[j]
			}
		}
		_ = d
	})
	b.Run("fused", func(b *testing.B) {
		var d float64
		for i := 0; i < b.N; i++ {
			d = sys.K.MulVecDot(y, x)
		}
		_ = d
	})
}

// BenchmarkMeasuredTfShift closes the measured-T_f feedback loop: it
// runs the distributed SMVP under live telemetry, recovers the achieved
// per-flop time from the phase accumulators (obs/analyze), and
// regenerates the Eq.(1)/(2) requirements table at that measured T_f
// next to the paper-era 5 ns (200 MFLOPS) baseline. The rendered table
// (results/eq12_measured_tf.txt) is the PR's quantitative answer to
// "how does a faster local kernel shift the required T_c".
func BenchmarkMeasuredTfShift(b *testing.B) {
	s := quake.SF5
	m, err := s.Mesh()
	if err != nil {
		b.Fatal(err)
	}
	pt, err := partition.PartitionMesh(m, 8, partition.RCB, 1)
	if err != nil {
		b.Fatal(err)
	}
	pr, err := partition.Analyze(m, pt)
	if err != nil {
		b.Fatal(err)
	}
	dist, err := quake.NewDist(m, quake.SanFernando(), pt, pr)
	if err != nil {
		b.Fatal(err)
	}
	defer dist.Close()
	x := make([]float64, 3*m.NumNodes())
	y := make([]float64, 3*m.NumNodes())
	for i := range x {
		x[i] = float64(i%7) * 0.5
	}
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	if _, err := dist.SMVP(y, x); err != nil { // steady state before measuring
		b.Fatal(err)
	}
	before := obs.Default.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.SMVP(y, x); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	w, ok := obsanalyze.FromSnapshots(obs.Default.Snapshot(), before)
	if !ok {
		b.Fatal("no analysis window in telemetry delta")
	}
	app := model.AppProperties{F: pr.Fmax(), Cmax: pr.Cmax(), Bmax: pr.Bmax()}
	ach := obsanalyze.AchievedOf(w, app)
	if ach.Tf <= 0 {
		b.Fatal("achieved Tf not recovered from telemetry")
	}
	const baseTf = 5e-9 // the paper's 200 MFLOPS machine
	tab, err := quake.MeasuredTfTable(s, quake.PECounts, quake.RCB, baseTf, ach.Tf)
	if err != nil {
		b.Fatal(err)
	}
	saveTable(b, "eq12_measured_tf", tab)
	b.ReportMetric(ach.Tf*1e9, "measuredTf_ns")
	b.ReportMetric(baseTf/ach.Tf, "speedupVsBase")
}

// BenchmarkAblationBisectionNetwork shows bisection bandwidth is not
// the bottleneck: the discrete simulation's exchange time barely moves
// until the bisection channel is starved far below realistic capacity.
func BenchmarkAblationBisectionNetwork(b *testing.B) {
	m, err := quake.SF5.Mesh()
	if err != nil {
		b.Fatal(err)
	}
	pt, err := partition.PartitionMesh(m, 64, partition.RCB, 1)
	if err != nil {
		b.Fatal(err)
	}
	pr, err := partition.Analyze(m, pt)
	if err != nil {
		b.Fatal(err)
	}
	sched, err := comm.FromMatrix(pr.Msg)
	if err != nil {
		b.Fatal(err)
	}
	t3e := machine.T3E()
	tab := report.New("Ablation: finite bisection bandwidth (sf5/64, T3E)",
		"bisection MB/s", "exchange time", "slowdown vs infinite")
	var knee float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Rows = tab.Rows[:0]
		free := machine.Simulate(sched, t3e, machine.NetworkConfig{}).CommTime
		knee = 0
		for _, mbps := range []float64{0, 10000, 1000, 300, 100, 30, 10, 3, 1} {
			net := machine.NetworkConfig{BisectionBytesPerSec: mbps * 1e6}
			ct := machine.Simulate(sched, t3e, net).CommTime
			label := fmt.Sprint(mbps)
			if mbps == 0 {
				label = "inf"
			}
			slow := ct / free
			tab.AddRow(label, report.SI(ct, "s"), report.F(slow, 2))
			if slow > 1.5 && (knee == 0 || mbps > knee) {
				knee = mbps
			}
		}
		saveTable(b, "ablation_bisection", tab)
	}
	b.ReportMetric(knee, "kneeMB/s")
}

// BenchmarkParallelSMVP measures the real goroutine runtime: one
// distributed SMVP per op at each PE count.
func BenchmarkParallelSMVP(b *testing.B) {
	m, err := quake.SF5.Mesh()
	if err != nil {
		b.Fatal(err)
	}
	mat := quake.SanFernando()
	for _, p := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			pt, err := partition.PartitionMesh(m, p, partition.RCB, 1)
			if err != nil {
				b.Fatal(err)
			}
			pr, err := partition.Analyze(m, pt)
			if err != nil {
				b.Fatal(err)
			}
			dist, err := quake.NewDist(m, mat, pt, pr)
			if err != nil {
				b.Fatal(err)
			}
			defer dist.Close()
			x := make([]float64, 3*m.NumNodes())
			y := make([]float64, 3*m.NumNodes())
			for i := range x {
				x[i] = float64(i%5) * 0.2
			}
			// The persistent-PE runtime's steady state is allocation-free;
			// report it so BENCH_<date>.json pins the property.
			b.ReportAllocs()
			b.ResetTimer()
			var tm *quake.ParTiming
			for i := 0; i < b.N; i++ {
				if tm, err = dist.SMVP(y, x); err != nil {
					b.Fatal(err)
				}
			}
			if tm != nil {
				b.ReportMetric(tm.MaxCompute().Seconds()*1e6, "compute_µs")
				b.ReportMetric(tm.MaxComm().Seconds()*1e6, "exchange_µs")
			}
		})
	}
}
