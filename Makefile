# Convenience targets for the quake reproduction.

GO ?= go
BENCH_DATE := $(shell date +%Y-%m-%d)

.PHONY: all build vet test race bench bench-json ci repro examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/ ./internal/par/ ./internal/spark/

# The gate CI runs: build + vet + full tests, plus the race detector on
# the concurrency-heavy packages.
ci: build vet test race

# Regenerates every table/figure into results/ and records the raw
# benchmark log (the EXPERIMENTS.md pipeline), then distills it into a
# machine-readable BENCH_<date>.json for the perf trajectory.
bench: bench-json

bench-json:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
	$(GO) run ./cmd/benchjson -in bench_output.txt -out BENCH_$(BENCH_DATE).json
	@echo "wrote BENCH_$(BENCH_DATE).json"

# One-shot figure regeneration without the benchmark harness.
repro:
	$(GO) run ./cmd/quakerepro -scenarios sf10,sf5,sf2

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/waveprop
	$(GO) run ./examples/netdesign
	$(GO) run ./examples/partitionstudy
	$(GO) run ./examples/implicit

clean:
	rm -rf results bench_output.txt test_output.txt
