# Convenience targets for the quake reproduction.

GO ?= go

.PHONY: all build vet test race bench repro examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/par/ ./internal/spark/

# Regenerates every table/figure into results/ and records the raw
# benchmark log (the EXPERIMENTS.md pipeline).
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# One-shot figure regeneration without the benchmark harness.
repro:
	$(GO) run ./cmd/quakerepro -scenarios sf10,sf5,sf2

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/waveprop
	$(GO) run ./examples/netdesign
	$(GO) run ./examples/partitionstudy
	$(GO) run ./examples/implicit

clean:
	rm -rf results bench_output.txt test_output.txt
