# Convenience targets for the quake reproduction.

GO ?= go
BENCH_DATE := $(shell date +%Y-%m-%d)

.PHONY: all build vet test race bench bench-json bench-smoke fuzz-smoke soak-smoke serve-smoke serve-chaos cover ci repro examples clean

# Benchmarks must run at the host's full width: a throttled GOMAXPROCS
# makes every parallel benchmark meaningless (the PE goroutines
# serialize), and the snapshot would record a number describing nothing.
# Override with `make bench-json BENCH_PROCS=4` to study a fixed width.
BENCH_PROCS ?= $(shell nproc)

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race . ./internal/fault/ ./internal/obs/... ./internal/par/ ./internal/partition/ ./internal/recover/ ./internal/serve/ ./internal/solver/ ./internal/sparse/ ./internal/spark/

# The gate CI runs: build + vet + full tests (as a coverage run with a
# floor), plus the race detector on the concurrency-heavy packages, plus
# a one-iteration benchmark smoke run so the kernel entry points cannot
# silently rot, plus a few seconds of fuzzing on the parsers that face
# untrusted input, plus the elastic-recovery chaos soak, the quaked
# service smoke, and the durable-job chaos drill.
ci: build vet cover race bench-smoke fuzz-smoke soak-smoke serve-smoke serve-chaos

# Total statement coverage must not sink below the floor (measured
# 88.1% when the gate was introduced; the margin absorbs run-to-run
# noise from timing-dependent branches, not feature work shipped
# without tests).
COVER_FLOOR ?= 85.0

cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { sub(/%/, "", $$3); printf "total coverage: %s%% (floor %s%%)\n", $$3, floor; \
		 if ($$3 + 0 < floor + 0) { print "FAIL: coverage below floor"; exit 1 } }'

# Regenerates every table/figure into results/ and records the raw
# benchmark log (the EXPERIMENTS.md pipeline), then distills it into a
# machine-readable BENCH_<date>.json for the perf trajectory
# (ns/op + B/op + allocs/op; see cmd/benchjson).
bench: bench-json

bench-json:
	GOMAXPROCS=$(BENCH_PROCS) $(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
	$(GO) run ./cmd/benchjson -in bench_output.txt -out BENCH_$(BENCH_DATE).json
	@echo "wrote BENCH_$(BENCH_DATE).json"

# Executes each distributed-kernel benchmark once (no timing fidelity):
# a fast gate that the parallel SMVP entry points still run, and that
# the fault-injection hooks stay allocation-free on their hot path.
# The second step is the kernel-regression guard: it times the fused
# MulVecDot against the unfused SMVP+dot pair (enough iterations for a
# stable number) and fails if fusion has stopped paying for itself
# (`benchjson -guard`, 10% slack for timer noise).
bench-smoke:
	$(GO) test -run='^$$' -bench='ParallelSMVP|OverlappedSMVP|FaultHookOverhead' -benchtime=1x -benchmem .
	$(GO) test -run='^$$' -bench='KernelGuard' -benchtime=50x . | $(GO) run ./cmd/benchjson -guard

# Short mutation runs of the fuzz targets: the parsers that accept
# untrusted input (the message-matrix schedule builder, the fault-plan
# grammar, and the durable-checkpoint decoder) plus the
# aggregation-invariant fuzzer that hunts for schedules where the
# two-level fusion drops or reorders words. Go allows one -fuzz pattern
# per invocation, so each target gets its own run.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzFromMatrix -fuzztime=5s ./internal/comm/
	$(GO) test -run='^$$' -fuzz=FuzzAggregate -fuzztime=5s ./internal/comm/
	$(GO) test -run='^$$' -fuzz=FuzzParsePlan -fuzztime=5s ./internal/fault/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeCheckpoint -fuzztime=5s ./internal/recover/
	$(GO) test -run='^$$' -fuzz=FuzzSolveRequest -fuzztime=5s ./internal/serve/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeJournal -fuzztime=5s ./internal/serve/

# The elastic-recovery chaos soak: an actual quakesim run that loses a
# PE mid-solve, shrinks to the survivors, revives the slot, regrows to
# full width, and finishes with straggler rebalancing armed — the
# kill→shrink→revive→grow round trip exercised end to end from the CLI,
# not just in unit tests. The multi-fault in-process soak also runs
# (TestMultiFaultSoak: two kills + two revivals in one solve).
soak-smoke:
	$(GO) run ./cmd/quakesim -scenario sf10 -steps 20 -pes 8 -rebalance \
		-faults 'kill:pe=3,iter=12;revive:pe=3,iter=32' \
		-checkpoint soak-ck -every 5 -flight soak.flight.trace.json
	rm -rf soak-ck soak.flight.trace.json
	$(GO) test -count=1 -run 'TestMultiFaultSoak|TestKillReviveRoundTrip' ./internal/recover/

# The quaked service smoke: start the warm-pool server, run one cold
# and one cached solve against it over HTTP, assert the
# serve.cache.{hits,misses} counters through /metrics.json, and shut
# down gracefully — the whole serving stack exercised as a binary, not
# just in unit tests (see docs/SERVICE.md).
serve-smoke:
	$(GO) run ./cmd/quaked -addr 127.0.0.1:0 -smoke

# The durable-job chaos drill: a solve with a kill fault and migrate
# recovery is submitted over HTTP with an idempotency key, the whole
# engine is torn down mid-solve after at least one migration and one
# durable checkpoint, and a second engine on the same journal replays
# the job and finishes it from the checkpoint — crash-safety of the
# jobs WAL exercised as a binary (see docs/RELIABILITY.md).
serve-chaos:
	$(GO) run ./cmd/quaked -chaos -smoke-pes 4

# One-shot figure regeneration without the benchmark harness.
repro:
	$(GO) run ./cmd/quakerepro -scenarios sf10,sf5,sf2

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/waveprop
	$(GO) run ./examples/netdesign
	$(GO) run ./examples/partitionstudy
	$(GO) run ./examples/implicit

clean:
	rm -rf results bench_output.txt test_output.txt coverage.out
