// Sensitivity sweeps: how the reproduction's free knobs (mesh
// resolution, basin softness) move the quantities the paper's
// conclusions rest on. These bound the effect of our calibration
// choices on the reproduced results.
package quake_test

import (
	"testing"

	quake "repro"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/octree"
	"repro/internal/partition"
	iq "repro/internal/quake"
	"repro/internal/report"
)

// BenchmarkSensitivityPPW sweeps the points-per-wavelength calibration
// knob on the sf5 period and reports how mesh size and F/C_max respond.
// The F/C_max trend with size must be robust to the calibration choice.
func BenchmarkSensitivityPPW(b *testing.B) {
	mat := quake.SanFernando()
	tab := report.New("Sensitivity: points-per-wavelength (period 5 s, 32 PEs, RCB)",
		"PPW", "nodes", "elements", "F/C_max", "β", "M_avg")
	var ratios []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Rows = tab.Rows[:0]
		ratios = ratios[:0]
		for _, ppw := range []float64{1.5, 2.0, 2.5, 3.0} {
			tr, err := octree.Build(iq.Domain(8), mat.Sizing(5, ppw))
			if err != nil {
				b.Fatal(err)
			}
			m, err := mesh.FromTree(tr)
			if err != nil {
				b.Fatal(err)
			}
			pt, err := partition.PartitionMesh(m, 32, partition.RCB, 1)
			if err != nil {
				b.Fatal(err)
			}
			pr, err := partition.Analyze(m, pt)
			if err != nil {
				b.Fatal(err)
			}
			ratios = append(ratios, pr.CompCommRatio())
			tab.AddRow(report.F(ppw, 1),
				report.Int(int64(m.NumNodes())), report.Int(int64(m.NumElems())),
				report.F(pr.CompCommRatio(), 0), report.F(pr.Beta(), 2),
				report.F(pr.Mavg(), 0))
		}
		saveTable(b, "sensitivity_ppw", tab)
	}
	// Finer meshes (higher PPW) must have higher F/C_max at fixed P —
	// the O(n^{1/3}) law, independent of the calibration constant.
	for i := 1; i < len(ratios); i++ {
		if ratios[i] < ratios[i-1]*0.95 {
			b.Fatalf("F/C_max not rising with resolution: %v", ratios)
		}
	}
	b.ReportMetric(ratios[len(ratios)-1]/ratios[0], "ratioSpread")
}

// BenchmarkSensitivityBasinContrast sweeps the basin softness: a softer
// basin means a larger velocity contrast, a more strongly graded mesh,
// and worse communication balance. This locates our synthetic model
// within the space of plausible San Fernando models.
func BenchmarkSensitivityBasinContrast(b *testing.B) {
	tab := report.New("Sensitivity: basin shear velocity (period 5 s, PPW 2, 32 PEs)",
		"basin Vs km/s", "contrast", "nodes", "C_max/C_avg", "E(T3E model)")
	var worstBalance float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Rows = tab.Rows[:0]
		worstBalance = 0
		for _, vs := range []float64{0.4, 0.8, 1.5, 3.0} {
			mat := material.SanFernando()
			mat.BasinVsSurface = vs
			if vs >= mat.RockVs {
				mat.BasinVsSurface = mat.RockVs
			}
			tr, err := octree.Build(iq.Domain(8), mat.Sizing(5, 2.0))
			if err != nil {
				b.Fatal(err)
			}
			m, err := mesh.FromTree(tr)
			if err != nil {
				b.Fatal(err)
			}
			pt, err := partition.PartitionMesh(m, 32, partition.RCB, 1)
			if err != nil {
				b.Fatal(err)
			}
			pr, err := partition.Analyze(m, pt)
			if err != nil {
				b.Fatal(err)
			}
			var csum int64
			for _, c := range pr.C {
				csum += c
			}
			balance := float64(pr.Cmax()) / (float64(csum) / float64(pr.P))
			if balance > worstBalance {
				worstBalance = balance
			}
			app := model.AppProperties{F: pr.Fmax(), Cmax: pr.Cmax(), Bmax: pr.Bmax()}
			t3e := quake.T3E()
			tab.AddRow(report.F(vs, 1),
				report.F(mat.RockVs/mat.BasinVsSurface, 1),
				report.Int(int64(m.NumNodes())),
				report.F(balance, 2),
				report.F(model.Efficiency(app, t3e.Tf, t3e.Tl, t3e.Tw), 3))
		}
		saveTable(b, "sensitivity_contrast", tab)
	}
	b.ReportMetric(worstBalance, "worstCmax/Cavg")
}
