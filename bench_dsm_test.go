// DSM regime benchmarks: page-grain communication with false sharing,
// across page sizes and node orderings — the software-DSM block regime
// the paper cites (TreadMarks) taken seriously.
package quake_test

import (
	"fmt"
	"testing"

	quake "repro"
	"repro/internal/dsm"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/report"
)

// BenchmarkDSMFalseSharing sweeps the page size on sf5/64 and reports
// the volume amplification and the modeled efficiency with
// software-DSM costs (per-page fault handling ~300 µs, the TreadMarks
// ballpark). Node ordering changes how shared nodes cluster into
// pages, so the sweep runs on both the native and the RCM-renumbered
// mesh.
func BenchmarkDSMFalseSharing(b *testing.B) {
	base, err := quake.SF5.Mesh()
	if err != nil {
		b.Fatal(err)
	}
	perm := base.RCMOrder()
	rcm, err := base.Permute(perm)
	if err != nil {
		b.Fatal(err)
	}
	const (
		pageFault = 300e-6 // Tl per page on a software DSM
		twDSM     = 55e-9  // same wire speed as the T3E
		tf        = 10e-9
	)
	tab := report.New("DSM regime: page-grain exchange (sf5/64, page fault 300 µs)",
		"ordering", "page words", "amplification", "pages max/PE", "E(model)")
	var worstAmp float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Rows = tab.Rows[:0]
		worstAmp = 0
		for _, variant := range []struct {
			name string
			m    *quake.Mesh
		}{{"native", base}, {"rcm", rcm}} {
			pt, err := partition.PartitionMesh(variant.m, 64, partition.RCB, 1)
			if err != nil {
				b.Fatal(err)
			}
			pr, err := partition.Analyze(variant.m, pt)
			if err != nil {
				b.Fatal(err)
			}
			for _, pw := range []int64{4, 16, 64, 512} {
				a, err := dsm.Analyze(pr, dsm.Layout{PageWords: pw})
				if err != nil {
					b.Fatal(err)
				}
				if amp := a.Amplification(); amp > worstAmp {
					worstAmp = amp
				}
				app := model.AppProperties{F: pr.Fmax(), Cmax: a.Cmax(), Bmax: a.Bmax()}
				e := model.Efficiency(app, tf, pageFault, twDSM)
				tab.AddRow(variant.name, fmt.Sprint(pw),
					report.F(a.Amplification(), 2),
					report.Int(a.Bmax()),
					report.F(e, 3))
			}
		}
		saveTable(b, "dsm_false_sharing", tab)
	}
	b.ReportMetric(worstAmp, "worstAmplification")
}
