// Fault-injection overhead: the injector hooks sit on the distributed
// kernel's hot path (after local compute, around every block post and
// receive), so the disarmed configuration must cost nothing — a nil
// check per hook site and zero allocations — and even an armed plan
// whose events never match should add only the per-event match scans.
package quake_test

import (
	"testing"

	quake "repro"
	"repro/internal/partition"
)

// BenchmarkFaultHookOverhead times the steady-state distributed SMVP
// with the injector disarmed, armed with a plan that never fires, and
// armed with an every-iteration corruption, so the price of each
// configuration is visible side by side. The disarmed case is the
// acceptance bar: it must match the plain kernel (0 allocs/op; the
// zero-alloc property itself is pinned by TestSMVPZeroAlloc).
func BenchmarkFaultHookOverhead(b *testing.B) {
	m, err := quake.SF10.Mesh()
	if err != nil {
		b.Fatal(err)
	}
	pt, err := quake.PartitionMesh(m, 4, partition.RCB, 1)
	if err != nil {
		b.Fatal(err)
	}
	pr, err := quake.Analyze(m, pt)
	if err != nil {
		b.Fatal(err)
	}
	dist, err := quake.NewDist(m, quake.SanFernando(), pt, pr)
	if err != nil {
		b.Fatal(err)
	}
	defer dist.Close()
	x := make([]float64, 3*m.NumNodes())
	y := make([]float64, 3*m.NumNodes())
	for i := range x {
		x[i] = float64(i%7) * 0.25
	}

	cases := []struct {
		name string
		plan string // "" leaves the injector disarmed
	}{
		{"disarmed", ""},
		// Armed but idle: the event's iteration is never reached, so the
		// hooks run their match scans without ever injecting.
		{"armed-idle", "corrupt:pe=1->0,iter=1000000"},
		{"armed-firing", "corrupt:pe=1->0,bit=3"},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			if c.plan != "" {
				plan, err := quake.ParseFaultPlan(c.plan)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dist.InjectFaults(plan); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := dist.SMVP(y, x); err != nil { // reach steady state
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dist.SMVP(y, x); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if _, err := dist.InjectFaults(nil); err != nil {
				b.Fatal(err)
			}
		})
	}
}
