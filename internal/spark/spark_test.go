package spark

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fem"
	"repro/internal/geom"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/octree"
	"repro/internal/partition"
	"repro/internal/sparse"
)

// buildSuite assembles a small stiffness matrix and wraps it in a
// Suite, with locals from a 4-way RCB partition.
func buildSuite(t testing.TB) (*Suite, *mesh.Mesh) {
	t.Helper()
	cfg := octree.Config{Origin: geom.V(0, 0, 0), CubeSize: 1, Nx: 2, Ny: 1, Nz: 1, MaxDepth: 3}
	h := func(p geom.Vec3) float64 { return math.Max(0.15, 0.4*p.Dist(geom.V(0.5, 0.5, 0.5))) }
	tr, err := octree.Build(cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mesh.FromTree(tr)
	if err != nil {
		t.Fatal(err)
	}
	mat := material.SanFernando()
	mat.BasinCenter = geom.V(0.5, 0.5, 0)
	mat.BasinSemi = geom.V(0.5, 0.4, 0.4)
	sys, err := fem.Assemble(m, mat)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSuite(sys.K)
	if err != nil {
		t.Fatal(err)
	}
	// Attach locals for lmv: extract residency-based submatrices scaled
	// so the subdomain sum reproduces the global matrix. We reuse the
	// element-assembly approach: assemble per-subdomain matrices from
	// element stiffness like par does, but inline to keep the test
	// self-contained.
	pt, err := partition.PartitionMesh(m, 4, partition.RCB, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := partition.Analyze(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	locals, nodes := assembleLocals(t, m, mat, pt, pr)
	if err := s.WithLocals(locals, nodes); err != nil {
		t.Fatal(err)
	}
	return s, m
}

func assembleLocals(t testing.TB, m *mesh.Mesh, mat *material.Model, pt *partition.Partition, pr *partition.Profile) ([]*sparse.BCSR, [][]int32) {
	t.Helper()
	p := pt.P
	g2l := make([]map[int32]int32, p)
	for i := 0; i < p; i++ {
		g2l[i] = make(map[int32]int32)
		for l, g := range pr.NodesOnPE[i] {
			g2l[i][g] = int32(l)
		}
	}
	edgesSeen := make([]map[[2]int32]bool, p)
	edges := make([][][2]int32, p)
	for i := range edgesSeen {
		edgesSeen[i] = make(map[[2]int32]bool)
	}
	for e, tet := range m.Tets {
		pe := pt.ElemPE[e]
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				la, lb := g2l[pe][tet[a]], g2l[pe][tet[b]]
				if la > lb {
					la, lb = lb, la
				}
				key := [2]int32{la, lb}
				if !edgesSeen[pe][key] {
					edgesSeen[pe][key] = true
					edges[pe] = append(edges[pe], key)
				}
			}
		}
	}
	locals := make([]*sparse.BCSR, p)
	for i := 0; i < p; i++ {
		locals[i] = sparse.NewBCSRStructure(len(pr.NodesOnPE[i]), edges[i])
	}
	for e, tet := range m.Tets {
		pe := pt.ElemPE[e]
		var v [4]geom.Vec3
		for a := 0; a < 4; a++ {
			v[a] = m.Coords[tet[a]]
		}
		lambda, mu, _ := mat.Elastic(m.Centroid(e))
		blocks, _, ok := fem.ElementStiffness(v, lambda, mu)
		if !ok {
			t.Fatal("degenerate element")
		}
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				locals[pe].AddBlock(g2l[pe][tet[a]], g2l[pe][tet[b]], &blocks[a][b])
			}
		}
	}
	return locals, pr.NodesOnPE
}

func TestAllKernelsAgree(t *testing.T) {
	s, m := buildSuite(t)
	n3 := 3 * m.NumNodes()
	rng := rand.New(rand.NewSource(17))
	x := make([]float64, n3)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := make([]float64, n3)
	s.BMV(ref, x)

	check := func(name string, y []float64) {
		t.Helper()
		for i := range ref {
			if math.Abs(y[i]-ref[i]) > 1e-9*(1+math.Abs(ref[i])) {
				t.Fatalf("%s: y[%d] = %g, want %g", name, i, y[i], ref[i])
			}
		}
	}

	y := make([]float64, n3)
	s.SMV(y, x)
	check(KernelSMV, y)

	y = make([]float64, n3)
	s.SMVSym(y, x)
	check(KernelSMVSym, y)

	y = make([]float64, n3)
	if err := s.LMV(y, x); err != nil {
		t.Fatal(err)
	}
	check(KernelLMV, y)

	for _, threads := range []int{1, 2, 4, 7} {
		y = make([]float64, n3)
		s.SMVTh(y, x, threads)
		check(KernelSMVTh, y)

		y = make([]float64, n3)
		s.RMV(y, x, threads)
		check(KernelRMV, y)

		y = make([]float64, n3)
		s.LockMV(y, x, threads)
		check(KernelLockMV, y)
	}
}

func TestLMVRequiresLocals(t *testing.T) {
	s := &Suite{N: 2}
	if err := s.LMV(nil, nil); err == nil {
		t.Error("lmv without locals accepted")
	}
}

func TestWithLocalsValidation(t *testing.T) {
	s, _ := buildSuite(t)
	if err := s.WithLocals(s.Locals, s.LocalNodes[:1]); err == nil {
		t.Error("mismatched lengths accepted")
	}
	bad := sparse.NewBCSRStructure(1, nil)
	if err := s.WithLocals([]*sparse.BCSR{bad}, [][]int32{{0, 1}}); err == nil {
		t.Error("mismatched node count accepted")
	}
}

func TestThreadsClamped(t *testing.T) {
	s, m := buildSuite(t)
	n3 := 3 * m.NumNodes()
	x := make([]float64, n3)
	for i := range x {
		x[i] = 1
	}
	ref := make([]float64, n3)
	s.BMV(ref, x)
	// More threads than rows, and the zero default, must both work.
	y := make([]float64, n3)
	s.SMVTh(y, x, m.NumNodes()+100)
	for i := range ref {
		if math.Abs(y[i]-ref[i]) > 1e-9*(1+math.Abs(ref[i])) {
			t.Fatal("overthreaded smvth wrong")
		}
	}
	y = make([]float64, n3)
	s.RMV(y, x, 0)
	for i := range ref {
		if math.Abs(y[i]-ref[i]) > 1e-9*(1+math.Abs(ref[i])) {
			t.Fatal("default-threaded rmv wrong")
		}
	}
}

func TestRaceSafety(t *testing.T) {
	// Exercised under -race in CI: concurrent kernels on shared input.
	s, m := buildSuite(t)
	n3 := 3 * m.NumNodes()
	x := make([]float64, n3)
	for i := range x {
		x[i] = float64(i % 3)
	}
	done := make(chan struct{}, 3)
	for k := 0; k < 3; k++ {
		go func() {
			y := make([]float64, n3)
			s.RMV(y, x, 4)
			s.LockMV(y, x, 4)
			done <- struct{}{}
		}()
	}
	for k := 0; k < 3; k++ {
		<-done
	}
}
