// Package spark reimplements the Spark98 kernel suite that the paper's
// postscript points to: a family of sequential and parallel SMVP
// kernels over the San Fernando meshes, designed to expose how storage
// format and parallelization strategy change the character of the same
// computation. (D. O'Hallaron, "Spark98: Sparse matrix kernels for
// shared memory and message passing systems", CMU-CS-97-178.)
//
// The suite's kernels, translated to this library's substrate:
//
//	smv   — sequential SMVP, scalar CSR storage
//	bmv   — sequential SMVP, 3×3-block BCSR storage
//	smvsym— sequential SMVP, symmetric upper-triangle block storage
//	lmv   — "local" SMVP: partitioned matrices multiplied one
//	        subdomain at a time in one thread (models one PE's work)
//	mmv   — message-passing parallel SMVP (package par's runtime)
//	smvth — shared-memory parallel SMVP, row-partitioned, no locks
//	rmv   — shared-memory parallel symmetric SMVP with per-thread
//	        replicated accumulators and a reduction (Spark98's rmv)
//	lockmv— shared-memory parallel symmetric SMVP with per-node locks
//	        (Spark98's hmv-style contended variant)
//
// All kernels compute the same y = K·x and are cross-validated in the
// tests; the benchmarks compare their throughput the way the Spark98
// report does.
package spark

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/obs"
	"repro/internal/sparse"
)

// Kernel names, for harnesses and reports.
const (
	KernelSMV    = "smv"
	KernelBMV    = "bmv"
	KernelSMVSym = "smvsym"
	KernelLMV    = "lmv"
	KernelSMVTh  = "smvth"
	KernelRMV    = "rmv"
	KernelLockMV = "lockmv"
)

// Suite bundles the storage variants of one stiffness matrix so the
// kernels can run side by side.
type Suite struct {
	N   int // block rows
	B   *sparse.BCSR
	CSR *sparse.CSR
	Sym *sparse.SymBCSR
	// Locals are the per-subdomain matrices and node lists for lmv;
	// optional (nil when the suite was built without a partition).
	Locals     []*sparse.BCSR
	LocalNodes [][]int32

	// met maps kernel name to its pre-resolved telemetry handles, so
	// each kernel invocation costs two atomic adds (no-ops while obs
	// is disabled).
	met map[string]kernelMetrics
	// lmvFlops is the flop count of one LMV pass, set by WithLocals.
	lmvFlops int64
}

// kernelMetrics counts invocations and floating-point operations of one
// kernel, under the Spark98 convention of two flops per used scalar.
type kernelMetrics struct {
	calls *obs.Counter
	flops *obs.Counter
}

func newKernelMetrics(kernel string) kernelMetrics {
	return kernelMetrics{
		calls: obs.GetCounter("spark." + kernel + ".calls"),
		flops: obs.GetCounter("spark." + kernel + ".flops"),
	}
}

// record logs one invocation of the kernel.
func (s *Suite) record(kernel string, flops int64) {
	m := s.met[kernel]
	m.calls.Add(1)
	m.flops.Add(flops)
}

// NewSuite builds the storage variants from a block-symmetric BCSR.
func NewSuite(k *sparse.BCSR) (*Suite, error) {
	sym, err := sparse.NewSymFromBCSR(k)
	if err != nil {
		return nil, fmt.Errorf("spark: %w", err)
	}
	s := &Suite{N: k.N, B: k, CSR: k.ToCSR(), Sym: sym,
		met: make(map[string]kernelMetrics)}
	for _, name := range []string{KernelSMV, KernelBMV, KernelSMVSym,
		KernelLMV, KernelSMVTh, KernelRMV, KernelLockMV} {
		s.met[name] = newKernelMetrics(name)
	}
	return s, nil
}

// WithLocals attaches per-subdomain local matrices (see par.Dist) for
// the lmv kernel. locals[i] is the local matrix of subdomain i over the
// global nodes nodes[i].
func (s *Suite) WithLocals(locals []*sparse.BCSR, nodes [][]int32) error {
	if len(locals) != len(nodes) {
		return fmt.Errorf("spark: %d locals but %d node lists", len(locals), len(nodes))
	}
	for i := range locals {
		if locals[i].N != len(nodes[i]) {
			return fmt.Errorf("spark: local %d has %d rows, %d nodes", i, locals[i].N, len(nodes[i]))
		}
	}
	s.Locals = locals
	s.LocalNodes = nodes
	s.lmvFlops = 0
	for _, k := range locals {
		s.lmvFlops += int64(2 * k.NNZ())
	}
	return nil
}

// SMV runs the scalar-CSR sequential kernel.
func (s *Suite) SMV(y, x []float64) {
	s.record(KernelSMV, int64(2*s.CSR.NNZ()))
	s.CSR.MulVec(y, x)
}

// BMV runs the block-CSR sequential kernel.
func (s *Suite) BMV(y, x []float64) {
	s.record(KernelBMV, int64(2*s.B.NNZ()))
	s.B.MulVec(y, x)
}

// SMVSym runs the symmetric-storage sequential kernel.
func (s *Suite) SMVSym(y, x []float64) {
	s.record(KernelSMVSym, int64(2*s.Sym.EquivalentNNZ()))
	s.Sym.MulVec(y, x)
}

// LMV runs the partitioned kernel sequentially: each subdomain's local
// matrix is applied to its local slice of x, and the partial results
// are summed into global y. Requires WithLocals.
func (s *Suite) LMV(y, x []float64) error {
	if s.Locals == nil {
		return fmt.Errorf("spark: lmv requires local matrices")
	}
	s.record(KernelLMV, s.lmvFlops)
	for i := range y {
		y[i] = 0
	}
	for d, k := range s.Locals {
		nodes := s.LocalNodes[d]
		xl := make([]float64, 3*len(nodes))
		yl := make([]float64, 3*len(nodes))
		for l, g := range nodes {
			copy(xl[3*l:3*l+3], x[3*g:3*g+3])
		}
		k.MulVec(yl, xl)
		for l, g := range nodes {
			y[3*g] += yl[3*l]
			y[3*g+1] += yl[3*l+1]
			y[3*g+2] += yl[3*l+2]
		}
	}
	return nil
}

// SMVTh runs the shared-memory parallel kernel: block rows are divided
// into contiguous ranges, one goroutine per range. With unsymmetric
// storage each row's result is written by exactly one goroutine, so no
// synchronization beyond the final join is needed — this is Spark98's
// natural shared-memory kernel.
func (s *Suite) SMVTh(y, x []float64, threads int) {
	s.record(KernelSMVTh, int64(2*s.B.NNZ()))
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > s.N {
		threads = s.N
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		lo := s.N * t / threads
		hi := s.N * (t + 1) / threads
		go func(lo, hi int) {
			defer wg.Done()
			a := s.B
			for i := lo; i < hi; i++ {
				var s0, s1, s2 float64
				for k := a.RowOff[i]; k < a.RowOff[i+1]; k++ {
					j := int(a.Col[k]) * 3
					v := a.Val[9*k : 9*k+9 : 9*k+9]
					x0, x1, x2 := x[j], x[j+1], x[j+2]
					s0 += v[0]*x0 + v[1]*x1 + v[2]*x2
					s1 += v[3]*x0 + v[4]*x1 + v[5]*x2
					s2 += v[6]*x0 + v[7]*x1 + v[8]*x2
				}
				y[3*i] = s0
				y[3*i+1] = s1
				y[3*i+2] = s2
			}
		}(lo, hi)
	}
	wg.Wait()
}

// RMV runs the replicated-accumulator parallel symmetric kernel:
// symmetric storage halves matrix traffic but makes two goroutines
// want to update the same y entry, so each goroutine accumulates into
// a private copy of y and a parallel reduction sums the copies. This
// is the strategy Spark98 calls rmv.
func (s *Suite) RMV(y, x []float64, threads int) {
	s.record(KernelRMV, int64(2*s.Sym.EquivalentNNZ()))
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > s.N {
		threads = s.N
	}
	n3 := 3 * s.N
	priv := make([][]float64, threads)
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		lo := s.N * t / threads
		hi := s.N * (t + 1) / threads
		go func(t, lo, hi int) {
			defer wg.Done()
			yp := make([]float64, n3)
			sym := s.Sym
			for i := lo; i < hi; i++ {
				d := sym.Diag[9*i : 9*i+9 : 9*i+9]
				xi0, xi1, xi2 := x[3*i], x[3*i+1], x[3*i+2]
				ai0 := d[0]*xi0 + d[1]*xi1 + d[2]*xi2
				ai1 := d[3]*xi0 + d[4]*xi1 + d[5]*xi2
				ai2 := d[6]*xi0 + d[7]*xi1 + d[8]*xi2
				for k := sym.RowOff[i]; k < sym.RowOff[i+1]; k++ {
					j := int(sym.Col[k]) * 3
					v := sym.Val[9*k : 9*k+9 : 9*k+9]
					xj0, xj1, xj2 := x[j], x[j+1], x[j+2]
					ai0 += v[0]*xj0 + v[1]*xj1 + v[2]*xj2
					ai1 += v[3]*xj0 + v[4]*xj1 + v[5]*xj2
					ai2 += v[6]*xj0 + v[7]*xj1 + v[8]*xj2
					yp[j] += v[0]*xi0 + v[3]*xi1 + v[6]*xi2
					yp[j+1] += v[1]*xi0 + v[4]*xi1 + v[7]*xi2
					yp[j+2] += v[2]*xi0 + v[5]*xi1 + v[8]*xi2
				}
				yp[3*i] += ai0
				yp[3*i+1] += ai1
				yp[3*i+2] += ai2
			}
			priv[t] = yp
		}(t, lo, hi)
	}
	wg.Wait()
	// Parallel reduction over disjoint ranges of y.
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		lo := n3 * t / threads
		hi := n3 * (t + 1) / threads
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				var sum float64
				for _, yp := range priv {
					sum += yp[i]
				}
				y[i] = sum
			}
		}(lo, hi)
	}
	wg.Wait()
}

// LockMV runs the lock-based parallel symmetric kernel: like RMV but
// updating the shared y directly under striped mutexes. It exists to
// measure what Spark98 measured — that fine-grained locking is the
// losing strategy for this access pattern.
func (s *Suite) LockMV(y, x []float64, threads int) {
	s.record(KernelLockMV, int64(2*s.Sym.EquivalentNNZ()))
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > s.N {
		threads = s.N
	}
	const stripes = 1024
	var locks [stripes]sync.Mutex
	for i := range y {
		y[i] = 0
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		lo := s.N * t / threads
		hi := s.N * (t + 1) / threads
		go func(lo, hi int) {
			defer wg.Done()
			sym := s.Sym
			for i := lo; i < hi; i++ {
				d := sym.Diag[9*i : 9*i+9 : 9*i+9]
				xi0, xi1, xi2 := x[3*i], x[3*i+1], x[3*i+2]
				ai0 := d[0]*xi0 + d[1]*xi1 + d[2]*xi2
				ai1 := d[3]*xi0 + d[4]*xi1 + d[5]*xi2
				ai2 := d[6]*xi0 + d[7]*xi1 + d[8]*xi2
				for k := sym.RowOff[i]; k < sym.RowOff[i+1]; k++ {
					j := int(sym.Col[k])
					v := sym.Val[9*k : 9*k+9 : 9*k+9]
					xj0, xj1, xj2 := x[3*j], x[3*j+1], x[3*j+2]
					ai0 += v[0]*xj0 + v[1]*xj1 + v[2]*xj2
					ai1 += v[3]*xj0 + v[4]*xj1 + v[5]*xj2
					ai2 += v[6]*xj0 + v[7]*xj1 + v[8]*xj2
					m := &locks[j%stripes]
					m.Lock()
					y[3*j] += v[0]*xi0 + v[3]*xi1 + v[6]*xi2
					y[3*j+1] += v[1]*xi0 + v[4]*xi1 + v[7]*xi2
					y[3*j+2] += v[2]*xi0 + v[5]*xi1 + v[8]*xi2
					m.Unlock()
				}
				m := &locks[i%stripes]
				m.Lock()
				y[3*i] += ai0
				y[3*i+1] += ai1
				y[3*i+2] += ai2
				m.Unlock()
			}
		}(lo, hi)
	}
	wg.Wait()
}
