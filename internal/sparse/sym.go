package sparse

import (
	"fmt"
	"sort"
)

// SymBCSR stores a symmetric 3×3-block matrix in upper-triangular block
// form, the storage scheme used by the Spark98 kernels: the diagonal
// block of every block row plus the strictly-upper blocks. The SMVP
// kernel applies each off-diagonal block twice (once directly, once
// transposed), halving memory traffic for the matrix at the cost of a
// scattered update to y.
type SymBCSR struct {
	N      int
	RowOff []int64   // per block row, into Col/Val (upper blocks only)
	Col    []int32   // column > row
	Val    []float64 // 9 per upper block
	Diag   []float64 // 9 per block row
}

// NewSymFromBCSR converts a block-symmetric BCSR matrix to symmetric
// storage. It returns an error if the sparsity pattern is asymmetric.
func NewSymFromBCSR(a *BCSR) (*SymBCSR, error) {
	s := &SymBCSR{
		N:      a.N,
		RowOff: make([]int64, a.N+1),
		Diag:   make([]float64, 9*a.N),
	}
	for i := 0; i < a.N; i++ {
		for k := a.RowOff[i]; k < a.RowOff[i+1]; k++ {
			j := a.Col[k]
			switch {
			case j == int32(i):
				copy(s.Diag[9*i:9*i+9], a.Val[9*k:9*k+9])
			case j > int32(i):
				if a.BlockIndex(j, int32(i)) < 0 {
					return nil, fmt.Errorf("sparse: pattern asymmetric at block (%d,%d)", i, j)
				}
				s.Col = append(s.Col, j)
				s.Val = append(s.Val, a.Val[9*k:9*k+9]...)
			}
		}
		s.RowOff[i+1] = int64(len(s.Col))
	}
	return s, nil
}

// NNZBlocks returns the number of stored blocks (diagonal + upper).
func (s *SymBCSR) NNZBlocks() int { return s.N + len(s.Col) }

// EquivalentNNZ returns the number of scalar nonzeros of the full
// (unfolded) matrix this symmetric storage represents; the SMVP performs
// 2·EquivalentNNZ() flops just like the unsymmetric kernel.
func (s *SymBCSR) EquivalentNNZ() int { return 9 * (s.N + 2*len(s.Col)) }

// MulVec computes y = A·x using symmetric storage. x and y are length
// 3N and must not alias.
func (s *SymBCSR) MulVec(y, x []float64) {
	if len(x) != 3*s.N || len(y) != 3*s.N {
		panic(fmt.Sprintf("sparse: SymBCSR MulVec dimension mismatch: N=%d, x %d, y %d", s.N, len(x), len(y)))
	}
	// Diagonal pass initializes y.
	for i := 0; i < s.N; i++ {
		d := s.Diag[9*i : 9*i+9 : 9*i+9]
		x0, x1, x2 := x[3*i], x[3*i+1], x[3*i+2]
		y[3*i] = d[0]*x0 + d[1]*x1 + d[2]*x2
		y[3*i+1] = d[3]*x0 + d[4]*x1 + d[5]*x2
		y[3*i+2] = d[6]*x0 + d[7]*x1 + d[8]*x2
	}
	// Upper blocks: apply block to y[i] and its transpose to y[j]. The
	// row loop re-slices Col/Val per row like the BCSR kernel; the
	// accumulation order is unchanged, so the output stays bit-identical
	// to the reference formulation.
	rowOff := s.RowOff
	lo := rowOff[0]
	for i := 0; i < s.N; i++ {
		hi := rowOff[i+1]
		cols := s.Col[lo:hi]
		vals := s.Val[9*lo : 9*hi : 9*hi]
		xi0, xi1, xi2 := x[3*i], x[3*i+1], x[3*i+2]
		var ai0, ai1, ai2 float64
		vi := 0
		for _, c := range cols {
			j := int(c) * 3
			v := vals[vi : vi+9 : vi+9]
			xj0, xj1, xj2 := x[j], x[j+1], x[j+2]
			ai0 += v[0]*xj0 + v[1]*xj1 + v[2]*xj2
			ai1 += v[3]*xj0 + v[4]*xj1 + v[5]*xj2
			ai2 += v[6]*xj0 + v[7]*xj1 + v[8]*xj2
			y[j] += v[0]*xi0 + v[3]*xi1 + v[6]*xi2
			y[j+1] += v[1]*xi0 + v[4]*xi1 + v[7]*xi2
			y[j+2] += v[2]*xi0 + v[5]*xi1 + v[8]*xi2
			vi += 9
		}
		y[3*i] += ai0
		y[3*i+1] += ai1
		y[3*i+2] += ai2
		lo = hi
	}
}

// Submatrix extracts the BCSR submatrix of a induced by the given node
// set: the result has len(nodes) block rows, with block (p, q) equal to
// a's block (nodes[p], nodes[q]). This is how each PE's local stiffness
// matrix is built from the global one: K_ij resides on any PE on which
// nodes i and j both reside.
func Submatrix(a *BCSR, nodes []int32) *BCSR {
	local := make(map[int32]int32, len(nodes))
	for p, g := range nodes {
		local[g] = int32(p)
	}
	n := len(nodes)
	rowOff := make([]int64, n+1)
	var cols []int32
	var vals []float64
	for p, g := range nodes {
		start := len(cols)
		for k := a.RowOff[g]; k < a.RowOff[g+1]; k++ {
			if q, ok := local[a.Col[k]]; ok {
				cols = append(cols, q)
				vals = append(vals, a.Val[9*k:9*k+9]...)
			}
		}
		// Column order within the row follows global order, which is not
		// necessarily local order; sort by local index.
		seg := cols[start:]
		vseg := vals[9*start:]
		idx := make([]int, len(seg))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool { return seg[idx[x]] < seg[idx[y]] })
		sc := make([]int32, len(seg))
		sv := make([]float64, len(vseg))
		for out, in := range idx {
			sc[out] = seg[in]
			copy(sv[9*out:9*out+9], vseg[9*in:9*in+9])
		}
		copy(seg, sc)
		copy(vseg, sv)
		rowOff[p+1] = int64(len(cols))
	}
	return &BCSR{N: n, RowOff: rowOff, Col: cols, Val: vals}
}
