package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// referenceCSRMulVec is the pre-optimization CSR kernel, kept verbatim
// as the bit-exact oracle: the tuned MulVec must produce the same
// floats because it only hoists slice headers, never reassociates.
func referenceCSRMulVec(a *CSR, y, x []float64) {
	for i := 0; i < a.Rows; i++ {
		sum := 0.0
		for k := a.RowOff[i]; k < a.RowOff[i+1]; k++ {
			sum += a.Val[k] * x[a.Col[k]]
		}
		y[i] = sum
	}
}

// referenceBCSRMulVec is the pre-optimization BCSR kernel, the bit-exact
// oracle for the register-resident rewrite.
func referenceBCSRMulVec(a *BCSR, y, x []float64) {
	for i := 0; i < a.N; i++ {
		var s0, s1, s2 float64
		for k := a.RowOff[i]; k < a.RowOff[i+1]; k++ {
			j := int(a.Col[k]) * 3
			v := a.Val[9*k : 9*k+9 : 9*k+9]
			x0, x1, x2 := x[j], x[j+1], x[j+2]
			s0 += v[0]*x0 + v[1]*x1 + v[2]*x2
			s1 += v[3]*x0 + v[4]*x1 + v[5]*x2
			s2 += v[6]*x0 + v[7]*x1 + v[8]*x2
		}
		y[3*i] = s0
		y[3*i+1] = s1
		y[3*i+2] = s2
	}
}

func seqDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func randVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// TestTunedKernelsBitIdentical pins the tuning contract: the rewritten
// CSR/BCSR hot loops are pure scheduling changes, so every output float
// matches the reference kernels bit for bit. Any reassociation — which
// would silently move regress.Vector fingerprints of solution vectors —
// fails here before it reaches the golden suite.
func TestTunedKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		b := randomBCSR(rng, n)
		x := randVec(rng, 3*n)
		yt := make([]float64, 3*n)
		yr := make([]float64, 3*n)
		b.MulVec(yt, x)
		referenceBCSRMulVec(b, yr, x)
		for i := range yt {
			if math.Float64bits(yt[i]) != math.Float64bits(yr[i]) {
				t.Fatalf("trial %d: BCSR.MulVec[%d] = %x, reference %x", trial,
					i, math.Float64bits(yt[i]), math.Float64bits(yr[i]))
			}
		}
		c := b.ToCSR()
		yt = make([]float64, 3*n)
		yr = make([]float64, 3*n)
		c.MulVec(yt, x)
		referenceCSRMulVec(c, yr, x)
		for i := range yt {
			if math.Float64bits(yt[i]) != math.Float64bits(yr[i]) {
				t.Fatalf("trial %d: CSR.MulVec[%d] = %x, reference %x", trial,
					i, math.Float64bits(yt[i]), math.Float64bits(yr[i]))
			}
		}
	}
}

// TestMulVecDotBitIdentical: the fused kernels return exactly the value
// a separate sequential dot over their own output produces — the
// property that lets fused CG reproduce unfused CG bit for bit on a
// local operator.
func TestMulVecDotBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		b := randomBCSR(rng, n)
		x := randVec(rng, 3*n)

		yf := make([]float64, 3*n)
		ys := make([]float64, 3*n)
		df := b.MulVecDot(yf, x)
		b.MulVec(ys, x)
		for i := range yf {
			if yf[i] != ys[i] {
				t.Fatalf("trial %d: BCSR fused y[%d] = %g, separate %g", trial, i, yf[i], ys[i])
			}
		}
		if want := seqDot(x, ys); math.Float64bits(df) != math.Float64bits(want) {
			t.Fatalf("trial %d: BCSR fused dot %x, sequential %x", trial,
				math.Float64bits(df), math.Float64bits(want))
		}

		c := b.ToCSR()
		df = c.MulVecDot(yf, x)
		c.MulVec(ys, x)
		if want := seqDot(x, ys); math.Float64bits(df) != math.Float64bits(want) {
			t.Fatalf("trial %d: CSR fused dot %x, sequential %x", trial,
				math.Float64bits(df), math.Float64bits(want))
		}
	}
}

func TestMulVecDotPanics(t *testing.T) {
	c := &CSR{Rows: 2, Cols: 3, RowOff: make([]int64, 3)}
	defer func() {
		if recover() == nil {
			t.Fatal("MulVecDot on a non-square matrix did not panic")
		}
	}()
	c.MulVecDot(make([]float64, 2), make([]float64, 3))
}

// denseMulVec is the O(n²) oracle for the segmented-sum fuzz: exact
// accumulation via compensated summation so the tolerance budget is
// spent on the kernel under test, not the oracle.
func denseMulVec(a *CSR, y, x []float64) {
	for i := 0; i < a.Rows; i++ {
		var sum, comp float64
		for k := a.RowOff[i]; k < a.RowOff[i+1]; k++ {
			term := a.Val[k]*x[a.Col[k]] - comp
			t := sum + term
			comp = (t - sum) - term
			sum = t
		}
		y[i] = sum
	}
}

// TestSegmentedMatchesDense exercises both segmented paths (short rows
// take the sequential loop, long rows the 4-way segmented sum) against
// the compensated oracle.
func TestSegmentedMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	// A matrix with deliberately long rows: a dense band plus noise, so
	// rows far exceed segThreshold.
	rows, cols := 60, 60
	var ri, ci []int32
	var v []float64
	for i := 0; i < rows; i++ {
		width := 4 + rng.Intn(50) // mixes short and long rows
		for w := 0; w < width; w++ {
			ri = append(ri, int32(i))
			ci = append(ci, int32(rng.Intn(cols)))
			v = append(v, rng.NormFloat64())
		}
	}
	a, err := NewCSRFromTriplets(rows, cols, ri, ci, v)
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(rng, cols)
	ys := make([]float64, rows)
	yd := make([]float64, rows)
	a.MulVecSegmented(ys, x)
	denseMulVec(a, yd, x)
	for i := range ys {
		scale := 1.0
		for k := a.RowOff[i]; k < a.RowOff[i+1]; k++ {
			scale += math.Abs(a.Val[k] * x[a.Col[k]])
		}
		if math.Abs(ys[i]-yd[i]) > 1e-12*scale {
			t.Fatalf("row %d: segmented %g, dense %g (scale %g)", i, ys[i], yd[i], scale)
		}
	}
}

// FuzzSegmentedSum drives MulVecSegmented with fuzzer-chosen structure
// and values and checks every row against the compensated dense oracle:
// the segmented reduction may reassociate but must never drop,
// duplicate, or misroute a term.
func FuzzSegmentedSum(f *testing.F) {
	f.Add(uint16(8), uint16(40), int64(1))
	f.Add(uint16(1), uint16(0), int64(2))
	f.Add(uint16(33), uint16(700), int64(3))
	f.Fuzz(func(t *testing.T, nRaw uint16, nnzRaw uint16, seed int64) {
		n := 1 + int(nRaw)%64
		nnz := int(nnzRaw) % 2048
		rng := rand.New(rand.NewSource(seed))
		ri := make([]int32, nnz)
		ci := make([]int32, nnz)
		v := make([]float64, nnz)
		// Derive values from the seed deterministically; bias toward a
		// few heavy rows so the long-row path is exercised.
		heavy := rng.Intn(n)
		for k := 0; k < nnz; k++ {
			if rng.Intn(3) == 0 {
				ri[k] = int32(heavy)
			} else {
				ri[k] = int32(rng.Intn(n))
			}
			ci[k] = int32(rng.Intn(n))
			v[k] = rng.NormFloat64() * math.Ldexp(1, rng.Intn(20)-10)
		}
		a, err := NewCSRFromTriplets(n, n, ri, ci, v)
		if err != nil {
			t.Fatal(err)
		}
		x := randVec(rng, n)
		ys := make([]float64, n)
		yd := make([]float64, n)
		a.MulVecSegmented(ys, x)
		denseMulVec(a, yd, x)
		for i := range ys {
			scale := 1.0
			for k := a.RowOff[i]; k < a.RowOff[i+1]; k++ {
				scale += math.Abs(a.Val[k] * x[a.Col[k]])
			}
			if math.Abs(ys[i]-yd[i]) > 1e-12*scale {
				t.Fatalf("row %d: segmented %g, dense %g", i, ys[i], yd[i])
			}
		}
	})
}
