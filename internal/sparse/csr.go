// Package sparse implements the sparse matrix formats and sequential
// sparse matrix–vector product (SMVP) kernels at the heart of the Quake
// applications. The stiffness matrix K is a 3n×3n matrix with a 3×3
// block for every mesh edge (and node), so the natural formats are
// scalar CSR and 3×3-block CSR (BCSR), plus a symmetric variant that
// stores only the upper triangle the way the Spark98 kernels do.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a scalar compressed-sparse-row matrix. Row i's nonzeros are
// Col[RowOff[i]:RowOff[i+1]] (sorted ascending) with values in the
// corresponding positions of Val.
type CSR struct {
	Rows, Cols int
	RowOff     []int64
	Col        []int32
	Val        []float64
}

// NNZ returns the number of stored nonzeros.
func (a *CSR) NNZ() int { return len(a.Col) }

// NewCSRFromTriplets builds a rows×cols CSR matrix from coordinate
// triplets. Duplicate (row, col) entries are summed. The inputs are not
// modified.
func NewCSRFromTriplets(rows, cols int, ri, ci []int32, v []float64) (*CSR, error) {
	if len(ri) != len(ci) || len(ri) != len(v) {
		return nil, fmt.Errorf("sparse: triplet slices have mismatched lengths %d/%d/%d",
			len(ri), len(ci), len(v))
	}
	for k := range ri {
		if ri[k] < 0 || int(ri[k]) >= rows || ci[k] < 0 || int(ci[k]) >= cols {
			return nil, fmt.Errorf("sparse: triplet %d (%d,%d) out of %d×%d", k, ri[k], ci[k], rows, cols)
		}
	}
	order := make([]int, len(ri))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := order[x], order[y]
		if ri[a] != ri[b] {
			return ri[a] < ri[b]
		}
		return ci[a] < ci[b]
	})
	m := &CSR{Rows: rows, Cols: cols, RowOff: make([]int64, rows+1)}
	lastRow, lastCol := int32(-1), int32(-1)
	for _, k := range order {
		if ri[k] == lastRow && ci[k] == lastCol {
			m.Val[len(m.Val)-1] += v[k]
			continue
		}
		m.Col = append(m.Col, ci[k])
		m.Val = append(m.Val, v[k])
		lastRow, lastCol = ri[k], ci[k]
		m.RowOff[ri[k]+1]++
	}
	for i := 0; i < rows; i++ {
		m.RowOff[i+1] += m.RowOff[i]
	}
	return m, nil
}

// MulVec computes y = A·x. y and x must not alias; len(x) = Cols,
// len(y) = Rows.
//
// The row loop re-slices Col/Val once per row and ranges over the
// column segment, so the inner loop carries no per-element bounds
// checks on the matrix arrays and no repeated RowOff loads — the
// accumulation order is unchanged (left to right within the row), so
// the result is bit-identical to the reference formulation.
func (a *CSR) MulVec(y, x []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: A is %d×%d, x %d, y %d",
			a.Rows, a.Cols, len(x), len(y)))
	}
	rowOff := a.RowOff
	lo := rowOff[0]
	for i := 0; i < a.Rows; i++ {
		hi := rowOff[i+1]
		cols := a.Col[lo:hi]
		vals := a.Val[lo:hi:hi]
		var sum float64
		for k, c := range cols {
			sum += vals[k] * x[c]
		}
		y[i] = sum
		lo = hi
	}
}

// MulVecDot computes y = A·x and returns x·y accumulated in the same
// pass, for square matrices. The dot is accumulated one scalar product
// at a time in row order — exactly the order a separate sequential
// dot(x, y) would use — so MulVecDot(y, x) is bit-identical to
// MulVec(y, x) followed by dot(x, y), while touching y only once.
func (a *CSR) MulVecDot(y, x []float64) float64 {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("sparse: MulVecDot needs a square matrix, got %d×%d", a.Rows, a.Cols))
	}
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: MulVecDot dimension mismatch: A is %d×%d, x %d, y %d",
			a.Rows, a.Cols, len(x), len(y)))
	}
	rowOff := a.RowOff
	lo := rowOff[0]
	var d float64
	for i := 0; i < a.Rows; i++ {
		hi := rowOff[i+1]
		cols := a.Col[lo:hi]
		vals := a.Val[lo:hi:hi]
		var sum float64
		for k, c := range cols {
			sum += vals[k] * x[c]
		}
		y[i] = sum
		d += x[i] * sum
		lo = hi
	}
	return d
}

// segThreshold is the row length above which MulVecSegmented switches
// from the single-accumulator loop to the four-way segmented sum. Short
// rows gain nothing from extra accumulators (the chain is shorter than
// the FP-add latency window) and would pay the drain step.
const segThreshold = 16

// MulVecSegmented computes y = A·x using a segmented sum on long rows:
// rows with more than segThreshold nonzeros accumulate into four
// independent partial sums (breaking the floating-point add dependence
// chain that serializes the classic kernel) which are reduced at the
// end of the row. The result differs from MulVec only by the
// reassociation of each long row's sum — a relative perturbation of
// order machine epsilon per row, never a dropped or duplicated term.
// Use it when the matrix has long rows and the caller tolerates
// reassociated rounding; MulVec remains the bit-exact reference.
func (a *CSR) MulVecSegmented(y, x []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: MulVecSegmented dimension mismatch: A is %d×%d, x %d, y %d",
			a.Rows, a.Cols, len(x), len(y)))
	}
	rowOff := a.RowOff
	lo := rowOff[0]
	for i := 0; i < a.Rows; i++ {
		hi := rowOff[i+1]
		cols := a.Col[lo:hi]
		vals := a.Val[lo:hi:hi]
		if len(cols) <= segThreshold {
			var sum float64
			for k, c := range cols {
				sum += vals[k] * x[c]
			}
			y[i] = sum
			lo = hi
			continue
		}
		var s0, s1, s2, s3 float64
		k := 0
		for ; k+4 <= len(cols); k += 4 {
			s0 += vals[k] * x[cols[k]]
			s1 += vals[k+1] * x[cols[k+1]]
			s2 += vals[k+2] * x[cols[k+2]]
			s3 += vals[k+3] * x[cols[k+3]]
		}
		for ; k < len(cols); k++ {
			s0 += vals[k] * x[cols[k]]
		}
		y[i] = (s0 + s1) + (s2 + s3)
		lo = hi
	}
}

// At returns the (i, j) entry (zero if not stored).
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.RowOff[i], a.RowOff[i+1]
	seg := a.Col[lo:hi]
	k := sort.Search(len(seg), func(p int) bool { return seg[p] >= int32(j) })
	if k < len(seg) && seg[k] == int32(j) {
		return a.Val[lo+int64(k)]
	}
	return 0
}

// IsSymmetric reports whether the matrix is numerically symmetric within
// the given relative tolerance. Only meaningful for square matrices.
func (a *CSR) IsSymmetric(tol float64) bool {
	if a.Rows != a.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowOff[i]; k < a.RowOff[i+1]; k++ {
			j := int(a.Col[k])
			if j < i {
				continue
			}
			v, vt := a.Val[k], a.At(j, i)
			if math.Abs(v-vt) > tol*(1+math.Abs(v)+math.Abs(vt)) {
				return false
			}
		}
	}
	return true
}
