// Package sparse implements the sparse matrix formats and sequential
// sparse matrix–vector product (SMVP) kernels at the heart of the Quake
// applications. The stiffness matrix K is a 3n×3n matrix with a 3×3
// block for every mesh edge (and node), so the natural formats are
// scalar CSR and 3×3-block CSR (BCSR), plus a symmetric variant that
// stores only the upper triangle the way the Spark98 kernels do.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a scalar compressed-sparse-row matrix. Row i's nonzeros are
// Col[RowOff[i]:RowOff[i+1]] (sorted ascending) with values in the
// corresponding positions of Val.
type CSR struct {
	Rows, Cols int
	RowOff     []int64
	Col        []int32
	Val        []float64
}

// NNZ returns the number of stored nonzeros.
func (a *CSR) NNZ() int { return len(a.Col) }

// NewCSRFromTriplets builds a rows×cols CSR matrix from coordinate
// triplets. Duplicate (row, col) entries are summed. The inputs are not
// modified.
func NewCSRFromTriplets(rows, cols int, ri, ci []int32, v []float64) (*CSR, error) {
	if len(ri) != len(ci) || len(ri) != len(v) {
		return nil, fmt.Errorf("sparse: triplet slices have mismatched lengths %d/%d/%d",
			len(ri), len(ci), len(v))
	}
	for k := range ri {
		if ri[k] < 0 || int(ri[k]) >= rows || ci[k] < 0 || int(ci[k]) >= cols {
			return nil, fmt.Errorf("sparse: triplet %d (%d,%d) out of %d×%d", k, ri[k], ci[k], rows, cols)
		}
	}
	order := make([]int, len(ri))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := order[x], order[y]
		if ri[a] != ri[b] {
			return ri[a] < ri[b]
		}
		return ci[a] < ci[b]
	})
	m := &CSR{Rows: rows, Cols: cols, RowOff: make([]int64, rows+1)}
	lastRow, lastCol := int32(-1), int32(-1)
	for _, k := range order {
		if ri[k] == lastRow && ci[k] == lastCol {
			m.Val[len(m.Val)-1] += v[k]
			continue
		}
		m.Col = append(m.Col, ci[k])
		m.Val = append(m.Val, v[k])
		lastRow, lastCol = ri[k], ci[k]
		m.RowOff[ri[k]+1]++
	}
	for i := 0; i < rows; i++ {
		m.RowOff[i+1] += m.RowOff[i]
	}
	return m, nil
}

// MulVec computes y = A·x. y and x must not alias; len(x) = Cols,
// len(y) = Rows.
func (a *CSR) MulVec(y, x []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: A is %d×%d, x %d, y %d",
			a.Rows, a.Cols, len(x), len(y)))
	}
	for i := 0; i < a.Rows; i++ {
		sum := 0.0
		for k := a.RowOff[i]; k < a.RowOff[i+1]; k++ {
			sum += a.Val[k] * x[a.Col[k]]
		}
		y[i] = sum
	}
}

// At returns the (i, j) entry (zero if not stored).
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.RowOff[i], a.RowOff[i+1]
	seg := a.Col[lo:hi]
	k := sort.Search(len(seg), func(p int) bool { return seg[p] >= int32(j) })
	if k < len(seg) && seg[k] == int32(j) {
		return a.Val[lo+int64(k)]
	}
	return 0
}

// IsSymmetric reports whether the matrix is numerically symmetric within
// the given relative tolerance. Only meaningful for square matrices.
func (a *CSR) IsSymmetric(tol float64) bool {
	if a.Rows != a.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowOff[i]; k < a.RowOff[i+1]; k++ {
			j := int(a.Col[k])
			if j < i {
				continue
			}
			v, vt := a.Val[k], a.At(j, i)
			if math.Abs(v-vt) > tol*(1+math.Abs(v)+math.Abs(vt)) {
				return false
			}
		}
	}
	return true
}
