package sparse

import (
	"fmt"
	"math"
	"sort"
)

// BCSR is a block compressed-sparse-row matrix with dense 3×3 blocks,
// the natural format for a stiffness matrix with three degrees of
// freedom per mesh node. Block row i's blocks are
// Col[RowOff[i]:RowOff[i+1]] (sorted ascending); the values of block k
// occupy Val[9k:9k+9] in row-major order.
type BCSR struct {
	N      int // block rows (= block cols; matrix is 3N×3N scalars)
	RowOff []int64
	Col    []int32
	Val    []float64
}

// NewBCSRStructure allocates a zero-valued BCSR for an n-node mesh whose
// unique undirected edges are given: every node gets a diagonal block,
// and every edge (i, j) gets blocks (i, j) and (j, i). This is exactly
// the sparsity of the assembled stiffness matrix.
func NewBCSRStructure(n int, edges [][2]int32) *BCSR {
	rowCnt := make([]int64, n+1)
	for i := 0; i < n; i++ {
		rowCnt[i+1] = 1 // diagonal
	}
	for _, e := range edges {
		rowCnt[e[0]+1]++
		rowCnt[e[1]+1]++
	}
	for i := 0; i < n; i++ {
		rowCnt[i+1] += rowCnt[i]
	}
	nb := rowCnt[n]
	m := &BCSR{
		N:      n,
		RowOff: rowCnt,
		Col:    make([]int32, nb),
		Val:    make([]float64, 9*nb),
	}
	cursor := make([]int64, n)
	for i := 0; i < n; i++ {
		cursor[i] = m.RowOff[i]
		m.Col[cursor[i]] = int32(i)
		cursor[i]++
	}
	for _, e := range edges {
		m.Col[cursor[e[0]]] = e[1]
		cursor[e[0]]++
		m.Col[cursor[e[1]]] = e[0]
		cursor[e[1]]++
	}
	for i := 0; i < n; i++ {
		seg := m.Col[m.RowOff[i]:m.RowOff[i+1]]
		sort.Slice(seg, func(a, b int) bool { return seg[a] < seg[b] })
	}
	return m
}

// NNZBlocks returns the number of stored 3×3 blocks.
func (a *BCSR) NNZBlocks() int { return len(a.Col) }

// NNZ returns the number of stored scalar entries.
func (a *BCSR) NNZ() int { return 9 * len(a.Col) }

// BlockIndex returns the storage index of block (i, j), or -1 if the
// block is not in the sparsity pattern.
func (a *BCSR) BlockIndex(i, j int32) int64 {
	lo, hi := a.RowOff[i], a.RowOff[i+1]
	seg := a.Col[lo:hi]
	k := sort.Search(len(seg), func(p int) bool { return seg[p] >= j })
	if k < len(seg) && seg[k] == j {
		return lo + int64(k)
	}
	return -1
}

// AddBlock accumulates the 3×3 block b (row-major) into block (i, j).
// It panics if the block is outside the sparsity pattern: assembly must
// only touch node pairs connected by a mesh edge.
func (a *BCSR) AddBlock(i, j int32, b *[9]float64) {
	k := a.BlockIndex(i, j)
	if k < 0 {
		panic(fmt.Sprintf("sparse: block (%d,%d) outside sparsity pattern", i, j))
	}
	v := a.Val[9*k : 9*k+9]
	for p := 0; p < 9; p++ {
		v[p] += b[p]
	}
}

// Block returns a copy of block (i, j) (zeros if absent).
func (a *BCSR) Block(i, j int32) [9]float64 {
	var out [9]float64
	if k := a.BlockIndex(i, j); k >= 0 {
		copy(out[:], a.Val[9*k:9*k+9])
	}
	return out
}

// MulVec computes y = A·x where x and y are scalar vectors of length 3N
// (three degrees of freedom per block row). This is the reference SMVP
// kernel; the computation performs 2·NNZ() useful flops, matching the
// paper's F = 2m accounting.
//
// The hot loop keeps the three row sums register-resident and walks a
// per-row re-slice of Col/Val: the 3×3 micro-kernel is fully unrolled,
// the row offsets are loaded once per row instead of once per block,
// and the value cursor advances by 9 through a row-local slice instead
// of re-indexing the whole Val array per block. The floating-point
// evaluation order of each sum is exactly the reference kernel's, so
// the output is bit-identical.
func (a *BCSR) MulVec(y, x []float64) {
	if len(x) != 3*a.N || len(y) != 3*a.N {
		panic(fmt.Sprintf("sparse: BCSR MulVec dimension mismatch: N=%d, x %d, y %d", a.N, len(x), len(y)))
	}
	rowOff := a.RowOff
	lo := rowOff[0]
	for i := 0; i < a.N; i++ {
		hi := rowOff[i+1]
		cols := a.Col[lo:hi]
		vals := a.Val[9*lo : 9*hi : 9*hi]
		var s0, s1, s2 float64
		vi := 0
		for _, c := range cols {
			j := int(c) * 3
			v := vals[vi : vi+9 : vi+9]
			x0, x1, x2 := x[j], x[j+1], x[j+2]
			s0 += v[0]*x0 + v[1]*x1 + v[2]*x2
			s1 += v[3]*x0 + v[4]*x1 + v[5]*x2
			s2 += v[6]*x0 + v[7]*x1 + v[8]*x2
			vi += 9
		}
		y[3*i] = s0
		y[3*i+1] = s1
		y[3*i+2] = s2
		lo = hi
	}
}

// MulVecDot computes y = A·x and returns x·y accumulated in the same
// pass over the matrix: the fused kernel a CG iteration uses to obtain
// ap = A·p and pᵀAp without a second sweep over the vectors. The dot is
// accumulated one scalar product at a time in ascending index order —
// the same order a sequential dot(x, y) uses — so the returned value is
// bit-identical to MulVec followed by a separate dot.
func (a *BCSR) MulVecDot(y, x []float64) float64 {
	if len(x) != 3*a.N || len(y) != 3*a.N {
		panic(fmt.Sprintf("sparse: BCSR MulVecDot dimension mismatch: N=%d, x %d, y %d", a.N, len(x), len(y)))
	}
	rowOff := a.RowOff
	lo := rowOff[0]
	var d float64
	for i := 0; i < a.N; i++ {
		hi := rowOff[i+1]
		cols := a.Col[lo:hi]
		vals := a.Val[9*lo : 9*hi : 9*hi]
		var s0, s1, s2 float64
		vi := 0
		for _, c := range cols {
			j := int(c) * 3
			v := vals[vi : vi+9 : vi+9]
			x0, x1, x2 := x[j], x[j+1], x[j+2]
			s0 += v[0]*x0 + v[1]*x1 + v[2]*x2
			s1 += v[3]*x0 + v[4]*x1 + v[5]*x2
			s2 += v[6]*x0 + v[7]*x1 + v[8]*x2
			vi += 9
		}
		y[3*i] = s0
		y[3*i+1] = s1
		y[3*i+2] = s2
		d += x[3*i] * s0
		d += x[3*i+1] * s1
		d += x[3*i+2] * s2
		lo = hi
	}
	return d
}

// MulVecRows computes y's entries for the given block rows only:
// y[3r:3r+3] = (A·x)[3r:3r+3] for each r in rows. Other entries of y
// are left untouched. Used by the overlapped SMVP to compute boundary
// rows before interior rows. Shares MulVec's row-resliced hot loop and
// bit-exact accumulation order.
func (a *BCSR) MulVecRows(y, x []float64, rows []int32) {
	if len(x) != 3*a.N || len(y) != 3*a.N {
		panic(fmt.Sprintf("sparse: MulVecRows dimension mismatch: N=%d, x %d, y %d", a.N, len(x), len(y)))
	}
	rowOff := a.RowOff
	for _, i := range rows {
		lo, hi := rowOff[i], rowOff[i+1]
		cols := a.Col[lo:hi]
		vals := a.Val[9*lo : 9*hi : 9*hi]
		var s0, s1, s2 float64
		vi := 0
		for _, c := range cols {
			j := int(c) * 3
			v := vals[vi : vi+9 : vi+9]
			x0, x1, x2 := x[j], x[j+1], x[j+2]
			s0 += v[0]*x0 + v[1]*x1 + v[2]*x2
			s1 += v[3]*x0 + v[4]*x1 + v[5]*x2
			s2 += v[6]*x0 + v[7]*x1 + v[8]*x2
			vi += 9
		}
		y[3*i] = s0
		y[3*i+1] = s1
		y[3*i+2] = s2
	}
}

// ToCSR expands the block matrix into scalar CSR form.
func (a *BCSR) ToCSR() *CSR {
	n3 := 3 * a.N
	c := &CSR{
		Rows:   n3,
		Cols:   n3,
		RowOff: make([]int64, n3+1),
		Col:    make([]int32, 0, a.NNZ()),
		Val:    make([]float64, 0, a.NNZ()),
	}
	for i := 0; i < a.N; i++ {
		for r := 0; r < 3; r++ {
			for k := a.RowOff[i]; k < a.RowOff[i+1]; k++ {
				j := a.Col[k]
				for cc := 0; cc < 3; cc++ {
					c.Col = append(c.Col, 3*j+int32(cc))
					c.Val = append(c.Val, a.Val[9*k+int64(3*r+cc)])
				}
			}
			c.RowOff[3*i+r+1] = int64(len(c.Col))
		}
	}
	return c
}

// IsBlockSymmetric reports whether A equals its transpose within tol
// (block (i,j) equals the transpose of block (j,i)).
func (a *BCSR) IsBlockSymmetric(tol float64) bool {
	for i := 0; i < a.N; i++ {
		for k := a.RowOff[i]; k < a.RowOff[i+1]; k++ {
			j := a.Col[k]
			if j < int32(i) {
				continue
			}
			kt := a.BlockIndex(j, int32(i))
			if kt < 0 {
				return false
			}
			v, vt := a.Val[9*k:9*k+9], a.Val[9*kt:9*kt+9]
			for r := 0; r < 3; r++ {
				for c := 0; c < 3; c++ {
					x, y := v[3*r+c], vt[3*c+r]
					if math.Abs(x-y) > tol*(1+math.Abs(x)+math.Abs(y)) {
						return false
					}
				}
			}
		}
	}
	return true
}
