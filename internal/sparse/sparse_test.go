package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCSRFromTriplets(t *testing.T) {
	// [ 1 2 0 ]
	// [ 0 0 3 ]  with a duplicate on (0,0): 0.5 + 0.5
	a, err := NewCSRFromTriplets(2, 3,
		[]int32{0, 0, 1, 0}, []int32{0, 1, 2, 0}, []float64{0.5, 2, 3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3 (duplicates summed)", a.NNZ())
	}
	if got := a.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %g", got)
	}
	if got := a.At(1, 2); got != 3 {
		t.Errorf("At(1,2) = %g", got)
	}
	if got := a.At(1, 0); got != 0 {
		t.Errorf("At(1,0) = %g, want 0", got)
	}
	y := make([]float64, 2)
	a.MulVec(y, []float64{1, 10, 100})
	if y[0] != 21 || y[1] != 300 {
		t.Errorf("MulVec = %v", y)
	}
}

func TestCSRFromTripletsErrors(t *testing.T) {
	if _, err := NewCSRFromTriplets(2, 2, []int32{0}, []int32{0, 1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewCSRFromTriplets(2, 2, []int32{5}, []int32{0}, []float64{1}); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, err := NewCSRFromTriplets(2, 2, []int32{0}, []int32{-1}, []float64{1}); err == nil {
		t.Error("negative col accepted")
	}
}

func TestCSRMulVecPanicsOnBadDims(t *testing.T) {
	a, _ := NewCSRFromTriplets(2, 2, []int32{0}, []int32{0}, []float64{1})
	defer func() {
		if recover() == nil {
			t.Error("no panic on dimension mismatch")
		}
	}()
	a.MulVec(make([]float64, 2), make([]float64, 3))
}

func TestCSRIsSymmetric(t *testing.T) {
	sym, _ := NewCSRFromTriplets(2, 2,
		[]int32{0, 0, 1, 1}, []int32{0, 1, 0, 1}, []float64{1, 5, 5, 2})
	if !sym.IsSymmetric(1e-12) {
		t.Error("symmetric matrix reported asymmetric")
	}
	asym, _ := NewCSRFromTriplets(2, 2,
		[]int32{0, 0, 1, 1}, []int32{0, 1, 0, 1}, []float64{1, 5, 4, 2})
	if asym.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
	rect, _ := NewCSRFromTriplets(2, 3, nil, nil, nil)
	if rect.IsSymmetric(1e-12) {
		t.Error("rectangular matrix reported symmetric")
	}
}

// randomBCSR builds a random block-symmetric BCSR on a random graph.
func randomBCSR(rng *rand.Rand, n int) *BCSR {
	seen := map[[2]int32]bool{}
	var edges [][2]int32
	for k := 0; k < 3*n; k++ {
		i, j := int32(rng.Intn(n)), int32(rng.Intn(n))
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		if seen[[2]int32{i, j}] {
			continue
		}
		seen[[2]int32{i, j}] = true
		edges = append(edges, [2]int32{i, j})
	}
	a := NewBCSRStructure(n, edges)
	for i := 0; i < n; i++ {
		var b [9]float64
		for p := range b {
			b[p] = rng.NormFloat64()
		}
		// Symmetrize diagonal block.
		var bs [9]float64
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				bs[3*r+c] = (b[3*r+c] + b[3*c+r]) / 2
			}
		}
		a.AddBlock(int32(i), int32(i), &bs)
	}
	for _, e := range edges {
		var b [9]float64
		for p := range b {
			b[p] = rng.NormFloat64()
		}
		var bt [9]float64
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				bt[3*c+r] = b[3*r+c]
			}
		}
		a.AddBlock(e[0], e[1], &b)
		a.AddBlock(e[1], e[0], &bt)
	}
	return a
}

func TestBCSRStructure(t *testing.T) {
	a := NewBCSRStructure(3, [][2]int32{{0, 1}, {1, 2}})
	if a.NNZBlocks() != 3+4 {
		t.Errorf("NNZBlocks = %d, want 7", a.NNZBlocks())
	}
	if a.NNZ() != 9*7 {
		t.Errorf("NNZ = %d", a.NNZ())
	}
	if a.BlockIndex(0, 2) != -1 {
		t.Error("absent block found")
	}
	if a.BlockIndex(2, 1) < 0 {
		t.Error("present block not found")
	}
	// Columns sorted per row.
	for i := 0; i < a.N; i++ {
		for k := a.RowOff[i] + 1; k < a.RowOff[i+1]; k++ {
			if a.Col[k-1] >= a.Col[k] {
				t.Fatalf("row %d columns not sorted", i)
			}
		}
	}
}

func TestBCSRAddBlockPanicsOutsidePattern(t *testing.T) {
	a := NewBCSRStructure(3, [][2]int32{{0, 1}})
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-pattern block")
		}
	}()
	var b [9]float64
	a.AddBlock(0, 2, &b)
}

func TestBCSRMulVecMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		a := randomBCSR(rng, n)
		c := a.ToCSR()
		x := make([]float64, 3*n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, 3*n)
		y2 := make([]float64, 3*n)
		a.MulVec(y1, x)
		c.MulVec(y2, x)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-10*(1+math.Abs(y1[i])) {
				t.Fatalf("trial %d: y[%d] BCSR %g vs CSR %g", trial, i, y1[i], y2[i])
			}
		}
	}
}

func TestSymBCSRMatchesBCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		a := randomBCSR(rng, n)
		if !a.IsBlockSymmetric(1e-12) {
			t.Fatal("randomBCSR not symmetric")
		}
		s, err := NewSymFromBCSR(a)
		if err != nil {
			t.Fatal(err)
		}
		if s.EquivalentNNZ() != a.NNZ() {
			t.Errorf("EquivalentNNZ = %d, want %d", s.EquivalentNNZ(), a.NNZ())
		}
		x := make([]float64, 3*n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, 3*n)
		y2 := make([]float64, 3*n)
		a.MulVec(y1, x)
		s.MulVec(y2, x)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-9*(1+math.Abs(y1[i])) {
				t.Fatalf("trial %d: y[%d] BCSR %g vs Sym %g", trial, i, y1[i], y2[i])
			}
		}
	}
}

func TestBCSRBlockRoundtrip(t *testing.T) {
	a := NewBCSRStructure(2, [][2]int32{{0, 1}})
	b := [9]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	a.AddBlock(0, 1, &b)
	a.AddBlock(0, 1, &b)
	got := a.Block(0, 1)
	for p := range got {
		if got[p] != 2*b[p] {
			t.Fatalf("block accumulate: %v", got)
		}
	}
	zero := a.Block(1, 1)
	for _, v := range zero {
		if v != 0 {
			t.Fatal("untouched diagonal block not zero")
		}
	}
	if got := a.Block(1, 0); got[0] != 0 {
		// (1,0) is in the pattern but never written.
		t.Fatalf("block (1,0) = %v", got)
	}
}

func TestSubmatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomBCSR(rng, 12)
	nodes := []int32{2, 5, 7, 11}
	sub := Submatrix(a, nodes)
	if sub.N != 4 {
		t.Fatalf("sub.N = %d", sub.N)
	}
	for p, gp := range nodes {
		for q, gq := range nodes {
			want := a.Block(gp, gq)
			got := sub.Block(int32(p), int32(q))
			if want != got {
				t.Errorf("sub(%d,%d) = %v, want %v", p, q, got, want)
			}
		}
	}
	// Columns sorted per row.
	for i := 0; i < sub.N; i++ {
		for k := sub.RowOff[i] + 1; k < sub.RowOff[i+1]; k++ {
			if sub.Col[k-1] >= sub.Col[k] {
				t.Fatalf("submatrix row %d columns not sorted", i)
			}
		}
	}
}

func TestSymRejectsAsymmetricPattern(t *testing.T) {
	a := NewBCSRStructure(3, [][2]int32{{0, 1}})
	// Manually break the pattern: drop block (1,0) by rebuilding.
	broken := &BCSR{
		N:      3,
		RowOff: []int64{0, 2, 3, 4},
		Col:    []int32{0, 1, 1, 2},
		Val:    make([]float64, 9*4),
	}
	_ = a
	if _, err := NewSymFromBCSR(broken); err == nil {
		t.Error("asymmetric pattern accepted")
	}
}

// Property: SMVP is linear: A(αx + z) = αAx + Az.
func TestQuickSMVPLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := randomBCSR(rng, 20)
	n3 := 3 * a.N
	f := func(seed int64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e6 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, n3)
		z := make([]float64, n3)
		for i := range x {
			x[i], z[i] = r.NormFloat64(), r.NormFloat64()
		}
		comb := make([]float64, n3)
		for i := range comb {
			comb[i] = alpha*x[i] + z[i]
		}
		y1 := make([]float64, n3)
		y2 := make([]float64, n3)
		y3 := make([]float64, n3)
		a.MulVec(y1, comb)
		a.MulVec(y2, x)
		a.MulVec(y3, z)
		for i := range y1 {
			want := alpha*y2[i] + y3[i]
			if math.Abs(y1[i]-want) > 1e-8*(1+math.Abs(want))*(1+math.Abs(alpha)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{Values: func(v []reflect.Value, r *rand.Rand) {
		v[0] = reflect.ValueOf(r.Int63())
		v[1] = reflect.ValueOf(r.NormFloat64() * 10)
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: for symmetric A, x·(Ay) = y·(Ax).
func TestQuickSymmetrySelfAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	a := randomBCSR(rng, 15)
	n3 := 3 * a.N
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, n3)
		y := make([]float64, n3)
		for i := range x {
			x[i], y[i] = r.NormFloat64(), r.NormFloat64()
		}
		ax := make([]float64, n3)
		ay := make([]float64, n3)
		a.MulVec(ax, x)
		a.MulVec(ay, y)
		var d1, d2, scale float64
		for i := range x {
			d1 += x[i] * ay[i]
			d2 += y[i] * ax[i]
			scale += math.Abs(x[i]*ay[i]) + math.Abs(y[i]*ax[i])
		}
		return math.Abs(d1-d2) < 1e-9*(1+scale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
