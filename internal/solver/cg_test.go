package solver

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fem"
	"repro/internal/geom"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/octree"
	"repro/internal/sparse"
)

func buildSystem(t testing.TB) *fem.System {
	t.Helper()
	cfg := octree.Config{Origin: geom.V(0, 0, 0), CubeSize: 1, Nx: 1, Ny: 1, Nz: 1, MaxDepth: 3}
	h := func(p geom.Vec3) float64 { return math.Max(0.2, 0.5*p.Dist(geom.V(0.5, 0.5, 0))) }
	tr, err := octree.Build(cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mesh.FromTree(tr)
	if err != nil {
		t.Fatal(err)
	}
	mat := material.SanFernando()
	mat.BasinCenter = geom.V(0.5, 0.5, 0)
	mat.BasinSemi = geom.V(0.4, 0.4, 0.3)
	sys, err := fem.Assemble(m, mat)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func shifted(sys *fem.System) Shifted {
	return Shifted{K: sys.K, MassNode: sys.MassNode, Sigma: 10}
}

func TestCGSolvesShiftedSystem(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	n := a.Dim()
	rng := rand.New(rand.NewSource(4))
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.Apply(b, want)

	x := make([]float64, n)
	res, err := CG(a, b, x, Config{MaxIter: 4 * n, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: %d iters, residual %g", res.Iterations, res.Residual)
	}
	// Verify the actual residual, not just the reported one.
	ax := make([]float64, n)
	a.Apply(ax, x)
	var num, den float64
	for i := range b {
		num += (b[i] - ax[i]) * (b[i] - ax[i])
		den += b[i] * b[i]
	}
	if math.Sqrt(num/den) > 1e-8 {
		t.Errorf("true residual %g", math.Sqrt(num/den))
	}
	if res.SMVPs != res.Iterations+1 {
		t.Errorf("SMVPs = %d, iterations = %d", res.SMVPs, res.Iterations)
	}
	if res.DotProducts < 3*res.Iterations {
		t.Errorf("DotProducts = %d for %d iterations", res.DotProducts, res.Iterations)
	}
}

func TestJacobiPreconditioningHelps(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	n := a.Dim()
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.37)
	}
	plain := make([]float64, n)
	resPlain, err := CG(a, b, plain, Config{MaxIter: 10 * n, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	diag := a.Diagonal()
	inv := make([]float64, n)
	for i, d := range diag {
		if d <= 0 {
			t.Fatalf("non-positive diagonal %g at %d", d, i)
		}
		inv[i] = 1 / d
	}
	pre := make([]float64, n)
	resPre, err := CG(a, b, pre, Config{MaxIter: 10 * n, Tol: 1e-8, Precondition: inv})
	if err != nil {
		t.Fatal(err)
	}
	if !resPlain.Converged || !resPre.Converged {
		t.Fatalf("convergence: plain %v, jacobi %v", resPlain.Converged, resPre.Converged)
	}
	// The basin/rock stiffness contrast makes the system ill-conditioned
	// enough that Jacobi should reduce iterations.
	if resPre.Iterations >= resPlain.Iterations {
		t.Errorf("jacobi %d iters >= plain %d", resPre.Iterations, resPlain.Iterations)
	}
	// Both yield the same solution.
	for i := range plain {
		if math.Abs(plain[i]-pre[i]) > 1e-5*(1+math.Abs(plain[i])) {
			t.Fatalf("solutions differ at %d: %g vs %g", i, plain[i], pre[i])
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	n := a.Dim()
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 // nonzero guess must be reset
	}
	res, err := CG(a, make([]float64, n), x, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("zero RHS not converged")
	}
	for i, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %g, want 0", i, v)
		}
	}
}

func TestCGErrors(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	n := a.Dim()
	if _, err := CG(a, make([]float64, 3), make([]float64, n), Config{}); err == nil {
		t.Error("short b accepted")
	}
	if _, err := CG(a, make([]float64, n), make([]float64, n),
		Config{Precondition: make([]float64, 2)}); err == nil {
		t.Error("short preconditioner accepted")
	}
}

func TestCGRejectsIndefinite(t *testing.T) {
	// A 1-block matrix with a negative diagonal entry is indefinite.
	k := sparse.NewBCSRStructure(1, nil)
	blk := [9]float64{-1, 0, 0, 0, -1, 0, 0, 0, -1}
	k.AddBlock(0, 0, &blk)
	a := BCSROperator{M: k}
	b := []float64{1, 1, 1}
	x := make([]float64, 3)
	if _, err := CG(a, b, x, Config{MaxIter: 10}); err == nil {
		t.Error("indefinite operator accepted")
	}
}

func TestBCSROperator(t *testing.T) {
	sys := buildSystem(t)
	op := BCSROperator{M: sys.K}
	if op.Dim() != 3*sys.K.N {
		t.Errorf("Dim = %d", op.Dim())
	}
	x := make([]float64, op.Dim())
	for i := range x {
		x[i] = float64(i % 3)
	}
	y1 := make([]float64, op.Dim())
	y2 := make([]float64, op.Dim())
	op.Apply(y1, x)
	sys.K.MulVec(y2, x)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("operator disagrees with matrix")
		}
	}
}

func TestShiftedDiagonal(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	d := a.Diagonal()
	// Spot-check: applying A to a unit vector recovers the diagonal.
	n := a.Dim()
	for _, idx := range []int{0, 7, n - 1} {
		e := make([]float64, n)
		e[idx] = 1
		y := make([]float64, n)
		a.Apply(y, e)
		if math.Abs(y[idx]-d[idx]) > 1e-9*(1+math.Abs(d[idx])) {
			t.Errorf("diagonal[%d] = %g, apply gives %g", idx, d[idx], y[idx])
		}
	}
}
