package solver

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// corruptingOp wraps an Operator and corrupts the output of chosen
// Apply calls (1-based call index), modelling the silent data faults
// the distributed runtime's injector produces at the exchange boundary.
type corruptingOp struct {
	Operator
	calls   int
	corrupt map[int]float64 // call index -> value added to entry 0
}

func (c *corruptingOp) Apply(y, x []float64) error {
	c.calls++
	if err := c.Operator.Apply(y, x); err != nil {
		return err
	}
	if delta, ok := c.corrupt[c.calls]; ok {
		y[0] += delta
	}
	return nil
}

// failingOp errors after a fixed number of Apply calls, modelling a
// Dist poisoned mid-solve.
type failingOp struct {
	Operator
	calls, failAt int
	err           error
}

func (f *failingOp) Apply(y, x []float64) error {
	f.calls++
	if f.calls >= f.failAt {
		return f.err
	}
	return f.Operator.Apply(y, x)
}

func solveRHS(n int) []float64 {
	b := make([]float64, n)
	b[2] = 50
	b[n-1] = -20
	return b
}

// TestHealingRecoversFromCorruption corrupts two operator applications
// mid-solve and requires self-healing CG to detect, recover, and reach
// the fault-free answer with a certified true residual.
func TestHealingRecoversFromCorruption(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	n := a.Dim()
	b := solveRHS(n)

	clean := make([]float64, n)
	if res, err := CG(a, b, clean, Config{MaxIter: 6 * n, Tol: 1e-10}); err != nil || !res.Converged {
		t.Fatalf("clean solve: %+v err=%v", res, err)
	}

	op := &corruptingOp{Operator: a, corrupt: map[int]float64{4: 1e7, 19: -3e8}}
	healed := make([]float64, n)
	res, err := CG(op, b, healed, Config{MaxIter: 6 * n, Tol: 1e-10, CheckEvery: 5, MaxRecoveries: 8})
	if err != nil {
		t.Fatalf("healing solve: %v", err)
	}
	if !res.Converged {
		t.Fatalf("healing solve did not converge: %+v", res)
	}
	if res.Detections < 1 || res.Rollbacks+res.Restarts < 1 {
		t.Fatalf("corruption went unnoticed: %+v", res)
	}
	var scale float64
	for _, v := range clean {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for i := range clean {
		if math.Abs(healed[i]-clean[i]) > 1e-6*(1+scale) {
			t.Fatalf("healed solution differs at %d: %g vs %g", i, healed[i], clean[i])
		}
	}
}

// TestHealingEscalatesToRestart feeds a corruption burst dense enough
// that the first rollback lands inside it: the repeat detection must
// escalate to a Krylov restart rather than looping on the checkpoint.
func TestHealingEscalatesToRestart(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	n := a.Dim()
	b := solveRHS(n)
	burst := map[int]float64{}
	for c := 8; c <= 16; c++ {
		burst[c] = 1e9
	}
	op := &corruptingOp{Operator: a, corrupt: burst}
	x := make([]float64, n)
	res, err := CG(op, b, x, Config{MaxIter: 6 * n, Tol: 1e-10, CheckEvery: 4, MaxRecoveries: 12})
	if err != nil {
		t.Fatalf("healing solve: %v", err)
	}
	if !res.Converged || res.Restarts < 1 {
		t.Fatalf("expected convergence via ≥1 restart: %+v", res)
	}
}

// TestHealingBounded: an operator corrupting every application can
// never be outrun; the solve must fail with the recovery budget
// exhausted rather than loop or return a wrong answer.
func TestHealingBounded(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	n := a.Dim()
	b := solveRHS(n)
	always := map[int]float64{}
	for c := 1; c <= 100*n; c++ {
		always[c] = 1e9
	}
	op := &corruptingOp{Operator: a, corrupt: always}
	x := make([]float64, n)
	res, err := CG(op, b, x, Config{MaxIter: 6 * n, Tol: 1e-10, CheckEvery: 3, MaxRecoveries: 4})
	if err == nil {
		t.Fatalf("persistently corrupted solve succeeded: %+v", res)
	}
	if !strings.Contains(err.Error(), "recoveries") {
		t.Fatalf("unexpected error: %v", err)
	}
	if res.Rollbacks+res.Restarts != 4 {
		t.Fatalf("recovery budget not honored: %+v", res)
	}
}

// TestNonFiniteWithoutHealing: with self-healing disarmed, a NaN from
// the operator must surface as a hard error, not an endless iteration.
func TestNonFiniteWithoutHealing(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	n := a.Dim()
	b := solveRHS(n)
	op := &corruptingOp{Operator: a, corrupt: map[int]float64{3: math.NaN()}}
	x := make([]float64, n)
	_, err := CG(op, b, x, Config{MaxIter: 6 * n, Tol: 1e-10})
	if err == nil {
		t.Fatal("NaN-corrupted solve without healing returned no error")
	}
}

// TestNonFiniteWithHealing: the same NaN with healing armed is detected
// and recovered.
func TestNonFiniteWithHealing(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	n := a.Dim()
	b := solveRHS(n)
	op := &corruptingOp{Operator: a, corrupt: map[int]float64{3: math.NaN()}}
	x := make([]float64, n)
	res, err := CG(op, b, x, Config{MaxIter: 6 * n, Tol: 1e-10, CheckEvery: 5})
	if err != nil || !res.Converged {
		t.Fatalf("NaN with healing: %+v err=%v", res, err)
	}
	if res.Detections < 1 {
		t.Fatalf("NaN went undetected: %+v", res)
	}
}

// TestOperatorErrorPropagates: an Apply error aborts the solve — with
// and without healing — and is wrapped for errors.Is.
func TestOperatorErrorPropagates(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	n := a.Dim()
	b := solveRHS(n)
	sentinel := errors.New("runtime poisoned")
	for _, cfg := range []Config{
		{MaxIter: 6 * n, Tol: 1e-10},
		{MaxIter: 6 * n, Tol: 1e-10, CheckEvery: 5},
	} {
		op := &failingOp{Operator: a, failAt: 7, err: sentinel}
		x := make([]float64, n)
		_, err := CG(op, b, x, cfg)
		if !errors.Is(err, sentinel) {
			t.Fatalf("CheckEvery=%d: operator error not propagated: %v", cfg.CheckEvery, err)
		}
	}
}

// TestHealingZeroOverheadPath: CheckEvery=0 must run the classic
// iteration — no extra operator applications, no checkpoint traffic.
func TestHealingZeroOverheadPath(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	n := a.Dim()
	b := solveRHS(n)
	x := make([]float64, n)
	res, err := CG(a, b, x, Config{MaxIter: 6 * n, Tol: 1e-9})
	if err != nil || !res.Converged {
		t.Fatalf("plain solve: %+v err=%v", res, err)
	}
	if res.SMVPs != res.Iterations+1 {
		t.Fatalf("disarmed solve performed extra operator applications: %+v", res)
	}
	if res.Detections != 0 || res.Rollbacks != 0 || res.Restarts != 0 {
		t.Fatalf("disarmed solve reported recovery activity: %+v", res)
	}
}
