package solver

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fem"
	"repro/internal/sparse"
)

// shiftedBCSR materializes K + σ·diag(M) as a plain BCSR matrix so a
// BCSROperator over it is SPD. This is the operator on which the fused
// path is certified *bit-identical*: BCSR.MulVecDot and fusedUpdate
// both preserve sequential accumulation order.
func shiftedBCSR(sys *fem.System, sigma float64) *sparse.BCSR {
	k := sys.K
	m := &sparse.BCSR{
		N:      k.N,
		RowOff: append([]int64(nil), k.RowOff...),
		Col:    append([]int32(nil), k.Col...),
		Val:    append([]float64(nil), k.Val...),
	}
	for i := 0; i < m.N; i++ {
		f := sigma * sys.MassNode[i]
		blk := [9]float64{f, 0, 0, 0, f, 0, 0, 0, f}
		m.AddBlock(int32(i), int32(i), &blk)
	}
	return m
}

func randRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

// TestFusedBitIdenticalLocal is the strong certification: on a local
// BCSROperator the fused solve retraces the unfused solve float for
// float — same iterate, same residual, same iteration count — with and
// without the Jacobi preconditioner, and with self-healing armed.
func TestFusedBitIdenticalLocal(t *testing.T) {
	sys := buildSystem(t)
	a := BCSROperator{M: shiftedBCSR(sys, 10)}
	n := a.Dim()
	b := randRHS(n, 42)

	diag := make([]float64, n)
	for i := 0; i < a.M.N; i++ {
		blk := a.M.Block(int32(i), int32(i))
		diag[3*i] = 1 / blk[0]
		diag[3*i+1] = 1 / blk[4]
		diag[3*i+2] = 1 / blk[8]
	}

	cases := []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{MaxIter: 4 * n, Tol: 1e-10}},
		{"jacobi", Config{MaxIter: 4 * n, Tol: 1e-10, Precondition: diag}},
		{"healing", Config{MaxIter: 4 * n, Tol: 1e-10, CheckEvery: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			xu := make([]float64, n)
			cfgU := tc.cfg
			ru, err := CG(a, b, xu, cfgU)
			if err != nil {
				t.Fatal(err)
			}
			xf := make([]float64, n)
			cfgF := tc.cfg
			cfgF.Fused = true
			rf, err := CG(a, b, xf, cfgF)
			if err != nil {
				t.Fatal(err)
			}
			if !ru.Converged || !rf.Converged {
				t.Fatalf("convergence: unfused %v, fused %v", ru.Converged, rf.Converged)
			}
			if ru.Iterations != rf.Iterations {
				t.Fatalf("iterations: unfused %d, fused %d", ru.Iterations, rf.Iterations)
			}
			if math.Float64bits(ru.Residual) != math.Float64bits(rf.Residual) {
				t.Fatalf("residual: unfused %x, fused %x",
					math.Float64bits(ru.Residual), math.Float64bits(rf.Residual))
			}
			for i := range xu {
				if math.Float64bits(xu[i]) != math.Float64bits(xf[i]) {
					t.Fatalf("x[%d]: unfused %x, fused %x", i,
						math.Float64bits(xu[i]), math.Float64bits(xf[i]))
				}
			}
			// The fused path must actually save work: fewer than the
			// unfused path's dot-product count is not expected (the merged
			// reductions are still counted), but SMVPs must match.
			if ru.SMVPs != rf.SMVPs {
				t.Errorf("SMVPs: unfused %d, fused %d", ru.SMVPs, rf.SMVPs)
			}
		})
	}
}

// TestFusedShiftedTolerance certifies the tolerance-level agreement on
// a Shifted operator, whose ApplyDot folds the mass-shift terms into
// the dot in a different order than a separate sequential dot.
func TestFusedShiftedTolerance(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	n := a.Dim()
	b := randRHS(n, 7)

	xu := make([]float64, n)
	ru, err := CG(a, b, xu, Config{MaxIter: 4 * n, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	xf := make([]float64, n)
	rf, err := CG(a, b, xf, Config{MaxIter: 4 * n, Tol: 1e-10, Fused: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ru.Converged || !rf.Converged {
		t.Fatalf("convergence: unfused %v, fused %v", ru.Converged, rf.Converged)
	}
	// Same Krylov space, reorderings of O(machine eps): iteration counts
	// may differ by a step or two, solutions agree to solve tolerance.
	if d := ru.Iterations - rf.Iterations; d < -3 || d > 3 {
		t.Errorf("iteration counts far apart: unfused %d, fused %d", ru.Iterations, rf.Iterations)
	}
	for i := range xu {
		if math.Abs(xu[i]-xf[i]) > 1e-6*(1+math.Abs(xu[i])) {
			t.Fatalf("x[%d]: unfused %g, fused %g", i, xu[i], xf[i])
		}
	}
}

// unfusedOnly hides an operator's ApplyDot so only the Operator
// interface is visible to the solver.
type unfusedOnly struct{ Operator }

// TestFusedFallsBack: Config.Fused on an operator without ApplyDot
// silently takes the unfused path and still solves.
func TestFusedFallsBack(t *testing.T) {
	sys := buildSystem(t)
	a := unfusedOnly{shifted(sys)}
	n := a.Dim()
	b := randRHS(n, 3)
	x := make([]float64, n)
	res, err := CG(a, b, x, Config{MaxIter: 4 * n, Tol: 1e-8, Fused: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("fallback solve did not converge: %d iters, residual %g", res.Iterations, res.Residual)
	}
}

// TestFusedApplyDotShifted pins the Shifted.ApplyDot contract directly:
// y matches Apply bit for bit, the dot matches a separate sequential
// dot to rounding.
func TestFusedApplyDotShifted(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	n := a.Dim()
	x := randRHS(n, 11)
	yf := make([]float64, n)
	ys := make([]float64, n)
	d, err := a.ApplyDot(yf, x)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Apply(ys, x); err != nil {
		t.Fatal(err)
	}
	for i := range yf {
		if math.Float64bits(yf[i]) != math.Float64bits(ys[i]) {
			t.Fatalf("y[%d]: fused %x, separate %x", i,
				math.Float64bits(yf[i]), math.Float64bits(ys[i]))
		}
	}
	want := dot(x, ys)
	var scale float64
	for i := range x {
		scale += math.Abs(x[i] * ys[i])
	}
	if math.Abs(d-want) > 1e-12*(1+scale) {
		t.Fatalf("dot: fused %g, separate %g (scale %g)", d, want, scale)
	}
}
