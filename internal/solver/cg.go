// Package solver provides a preconditioned conjugate gradient solver
// built on the SMVP kernel. The Quake applications use explicit time
// stepping precisely so that the SMVP is the *only* parallel operation;
// implicit methods solve a linear system each step with CG, which adds
// global dot products (allreduce communication) to the profile. This
// package supplies the solver itself and, together with
// model.AllReduce, lets the harness quantify what the paper's explicit
// choice avoids.
package solver

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/sparse"
)

// Operator is a square linear operator on block vectors (length 3·N
// scalars for N block rows).
type Operator interface {
	// Apply computes y = A·x. y and x must not alias.
	Apply(y, x []float64)
	// Dim returns the scalar dimension of the operator.
	Dim() int
}

// BCSROperator adapts a BCSR matrix to the Operator interface.
type BCSROperator struct{ M *sparse.BCSR }

// Apply implements Operator.
func (o BCSROperator) Apply(y, x []float64) { o.M.MulVec(y, x) }

// Dim implements Operator.
func (o BCSROperator) Dim() int { return 3 * o.M.N }

// Shifted is the operator A = K + σ·diag(M): the stiffness matrix plus
// a scaled lumped-mass diagonal. K alone is positive semidefinite (it
// annihilates rigid-body modes); any σ > 0 makes the operator strictly
// positive definite, which CG requires. Physically this is the
// frequency-domain (Helmholtz-like) or backward-Euler system matrix.
type Shifted struct {
	K *sparse.BCSR
	// MassNode holds one lumped mass per block row, applied to all
	// three of the row's degrees of freedom.
	MassNode []float64
	Sigma    float64
}

// Apply implements Operator.
func (s Shifted) Apply(y, x []float64) {
	s.K.MulVec(y, x)
	for i, m := range s.MassNode {
		f := s.Sigma * m
		y[3*i] += f * x[3*i]
		y[3*i+1] += f * x[3*i+1]
		y[3*i+2] += f * x[3*i+2]
	}
}

// Dim implements Operator.
func (s Shifted) Dim() int { return 3 * s.K.N }

// Diagonal returns the scalar diagonal of the operator, used to build
// the Jacobi preconditioner.
func (s Shifted) Diagonal() []float64 {
	d := make([]float64, s.Dim())
	for i := 0; i < s.K.N; i++ {
		blk := s.K.Block(int32(i), int32(i))
		d[3*i] = blk[0] + s.Sigma*s.MassNode[i]
		d[3*i+1] = blk[4] + s.Sigma*s.MassNode[i]
		d[3*i+2] = blk[8] + s.Sigma*s.MassNode[i]
	}
	return d
}

// Result reports a CG solve.
type Result struct {
	Iterations int
	Residual   float64 // final ‖b − Ax‖₂ / ‖b‖₂
	Converged  bool
	// SMVPs is the number of operator applications (one per iteration
	// plus one for the initial residual) — the communicating operation
	// count an implicit method would execute.
	SMVPs int
	// DotProducts is the number of global dot products performed — each
	// is an allreduce on a parallel machine.
	DotProducts int
}

// Config controls the CG iteration.
type Config struct {
	MaxIter int
	Tol     float64 // relative residual target
	// Precondition, when non-nil, is the inverse-diagonal (Jacobi)
	// preconditioner: z = Precondition ⊙ r.
	Precondition []float64
	// Workspace, when non-nil, supplies the iteration vectors so
	// repeated solves reuse one set of allocations (an implicit time
	// stepper calls CG every step). A workspace must not be shared by
	// concurrent solves.
	Workspace *Workspace
}

// Workspace holds CG's four iteration vectors (r, z, p, Ap). One
// workspace serves any operator whose dimension fits; it grows on
// demand and is reused across solves via Config.Workspace.
type Workspace struct {
	r, z, p, ap []float64
}

// NewWorkspace preallocates a workspace for operators of scalar
// dimension n (3·nodes for the distributed stiffness operator).
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.ensure(n)
	return w
}

// ensure sizes the vectors for dimension n, reallocating only when the
// capacity is insufficient. CG fully initializes every vector before
// reading it, so stale contents are harmless.
func (w *Workspace) ensure(n int) {
	if cap(w.r) < n {
		w.r = make([]float64, n)
		w.z = make([]float64, n)
		w.p = make([]float64, n)
		w.ap = make([]float64, n)
	}
	w.r = w.r[:n]
	w.z = w.z[:n]
	w.p = w.p[:n]
	w.ap = w.ap[:n]
}

// CG solves A·x = b by (optionally Jacobi-preconditioned) conjugate
// gradients, overwriting x with the solution (x's initial content is
// the starting guess).
func CG(a Operator, b, x []float64, cfg Config) (*Result, error) {
	n := a.Dim()
	if len(b) != n || len(x) != n {
		return nil, fmt.Errorf("solver: dimension mismatch: A %d, b %d, x %d", n, len(b), len(x))
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = n
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-8
	}
	if cfg.Precondition != nil && len(cfg.Precondition) != n {
		return nil, fmt.Errorf("solver: preconditioner length %d, want %d", len(cfg.Precondition), n)
	}

	res := &Result{}

	// Telemetry: one solve span on the driver track, aggregate counters,
	// and (when tracing) a residual counter series per iteration.
	sp := obs.StartSpan(obs.TrackDriver, "solve", "solver.cg")
	tracer := obs.ActiveTracer()
	obs.GetCounter("solver.cg.solves").Add(1)
	iterations := obs.GetCounter("solver.cg.iterations")
	smvps := obs.GetCounter("solver.cg.smvps")
	dots := obs.GetCounter("solver.cg.dotproducts")
	residual := obs.GetGauge("solver.cg.residual")
	defer func() {
		iterations.Add(int64(res.Iterations))
		smvps.Add(int64(res.SMVPs))
		dots.Add(int64(res.DotProducts))
		residual.Set(res.Residual)
		obs.GetHistogram("solver.cg.iters_per_solve").Observe(int64(res.Iterations))
		sp.EndWith(map[string]any{
			"iterations": res.Iterations,
			"residual":   res.Residual,
			"converged":  res.Converged,
		})
	}()

	ws := cfg.Workspace
	if ws == nil {
		ws = NewWorkspace(n)
	} else {
		ws.ensure(n)
	}
	r, z, p, ap := ws.r, ws.z, ws.p, ws.ap

	a.Apply(ap, x)
	res.SMVPs++
	for i := range r {
		r[i] = b[i] - ap[i]
	}
	normB := norm2(b)
	res.DotProducts++
	if normB == 0 {
		for i := range x {
			x[i] = 0
		}
		res.Converged = true
		return res, nil
	}
	applyPrec := func(dst, src []float64) {
		if cfg.Precondition == nil {
			copy(dst, src)
			return
		}
		for i := range src {
			dst[i] = cfg.Precondition[i] * src[i]
		}
	}
	applyPrec(z, r)
	copy(p, z)
	rz := dot(r, z)
	res.DotProducts++

	for iter := 0; iter < cfg.MaxIter; iter++ {
		res.Iterations = iter + 1
		a.Apply(ap, p)
		res.SMVPs++
		pap := dot(p, ap)
		res.DotProducts++
		if pap <= 0 {
			return res, fmt.Errorf("solver: operator not positive definite (pᵀAp = %g at iteration %d)", pap, iter)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rn := norm2(r)
		res.DotProducts++
		res.Residual = rn / normB
		if tracer != nil {
			tracer.CounterEvent(obs.TrackDriver, "solver.cg.residual", res.Residual)
		}
		if res.Residual <= cfg.Tol {
			res.Converged = true
			return res, nil
		}
		applyPrec(z, r)
		rzNew := dot(r, z)
		res.DotProducts++
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return res, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }
