// Package solver provides a preconditioned conjugate gradient solver
// built on the SMVP kernel. The Quake applications use explicit time
// stepping precisely so that the SMVP is the *only* parallel operation;
// implicit methods solve a linear system each step with CG, which adds
// global dot products (allreduce communication) to the profile. This
// package supplies the solver itself and, together with
// model.AllReduce, lets the harness quantify what the paper's explicit
// choice avoids.
package solver

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/sparse"
)

// ErrInterrupted reports that Config.Interrupt stopped the solve at a
// durable checkpoint boundary. The iterate is consistent: the State just
// delivered to OnCheckpoint resumes the solve bit for bit via
// Config.Resume. The elastic-recovery supervisor uses this to pause a
// solve, regrow or rebalance the partition, and continue on the rebuilt
// operator.
var ErrInterrupted = errors.New("solver: interrupted at checkpoint")

// Operator is a square linear operator on block vectors (length 3·N
// scalars for N block rows).
type Operator interface {
	// Apply computes y = A·x. y and x must not alias. A returned error
	// is fatal to the solve: it means the operator itself can no longer
	// produce answers (e.g. a poisoned distributed runtime), which no
	// amount of rollback can repair.
	Apply(y, x []float64) error
	// Dim returns the scalar dimension of the operator.
	Dim() int
}

// FusedOperator is an Operator that can additionally produce the dot
// product x·y in the same pass over the matrix that computes y = A·x.
// CG's hot loop needs exactly this pair (ap = A·p and pᵀAp), and fusing
// them removes one full sweep over the vectors per iteration — on a
// distributed operator it also removes one of the two global
// reductions. Config.Fused opts a solve into this path.
type FusedOperator interface {
	Operator
	// ApplyDot computes y = A·x and returns x·y. The same error
	// contract as Apply: a returned error is fatal to the solve.
	ApplyDot(y, x []float64) (float64, error)
}

// BCSROperator adapts a BCSR matrix to the Operator interface.
type BCSROperator struct{ M *sparse.BCSR }

// Apply implements Operator.
func (o BCSROperator) Apply(y, x []float64) error {
	o.M.MulVec(y, x)
	return nil
}

// ApplyDot implements FusedOperator. The sparse fused kernel
// accumulates the dot in sequential index order, so this path is
// bit-identical to Apply followed by a separate dot.
func (o BCSROperator) ApplyDot(y, x []float64) (float64, error) {
	return o.M.MulVecDot(y, x), nil
}

// Dim implements Operator.
func (o BCSROperator) Dim() int { return 3 * o.M.N }

// Shifted is the operator A = K + σ·diag(M): the stiffness matrix plus
// a scaled lumped-mass diagonal. K alone is positive semidefinite (it
// annihilates rigid-body modes); any σ > 0 makes the operator strictly
// positive definite, which CG requires. Physically this is the
// frequency-domain (Helmholtz-like) or backward-Euler system matrix.
type Shifted struct {
	K *sparse.BCSR
	// MassNode holds one lumped mass per block row, applied to all
	// three of the row's degrees of freedom.
	MassNode []float64
	Sigma    float64
}

// Apply implements Operator.
func (s Shifted) Apply(y, x []float64) error {
	s.K.MulVec(y, x)
	for i, m := range s.MassNode {
		f := s.Sigma * m
		y[3*i] += f * x[3*i]
		y[3*i+1] += f * x[3*i+1]
		y[3*i+2] += f * x[3*i+2]
	}
	return nil
}

// ApplyDot implements FusedOperator: the stiffness product and its dot
// ride one pass over K, then the diagonal mass shift folds its own
// contribution to both y and the dot in a second short sweep. The shift
// terms enter the dot in a different order than a separate sequential
// dot over the finished y, so the result agrees to rounding, not bit
// for bit — the tolerance the fused-CG certification tests allow.
func (s Shifted) ApplyDot(y, x []float64) (float64, error) {
	d := s.K.MulVecDot(y, x)
	for i, m := range s.MassNode {
		f := s.Sigma * m
		x0, x1, x2 := x[3*i], x[3*i+1], x[3*i+2]
		y[3*i] += f * x0
		y[3*i+1] += f * x1
		y[3*i+2] += f * x2
		d += f * (x0*x0 + x1*x1 + x2*x2)
	}
	return d, nil
}

// Dim implements Operator.
func (s Shifted) Dim() int { return 3 * s.K.N }

// Diagonal returns the scalar diagonal of the operator, used to build
// the Jacobi preconditioner.
func (s Shifted) Diagonal() []float64 {
	d := make([]float64, s.Dim())
	for i := 0; i < s.K.N; i++ {
		blk := s.K.Block(int32(i), int32(i))
		d[3*i] = blk[0] + s.Sigma*s.MassNode[i]
		d[3*i+1] = blk[4] + s.Sigma*s.MassNode[i]
		d[3*i+2] = blk[8] + s.Sigma*s.MassNode[i]
	}
	return d
}

// Result reports a CG solve.
type Result struct {
	Iterations int
	Residual   float64 // final ‖b − Ax‖₂ / ‖b‖₂
	Converged  bool
	// SMVPs is the number of operator applications (one per iteration
	// plus one for the initial residual) — the communicating operation
	// count an implicit method would execute.
	SMVPs int
	// DotProducts is the number of global dot products performed — each
	// is an allreduce on a parallel machine.
	DotProducts int
	// Detections counts the times self-healing (Config.CheckEvery > 0)
	// caught an inconsistency: non-finite iteration values, a pᵀAp
	// breakdown, or the recursive residual drifting from the true
	// residual b − A·x.
	Detections int
	// Rollbacks counts restorations of the last certified checkpoint
	// (x, r, p, ρ).
	Rollbacks int
	// Restarts counts the recoveries that rebuilt the Krylov state from
	// the true residual because a plain rollback had already been tried
	// against the same checkpoint without an audit passing since.
	Restarts int
	// Checkpoints counts the State snapshots handed to
	// Config.OnCheckpoint.
	Checkpoints int
}

// State is a resumable snapshot of the CG iteration: exactly the tuple
// (x, r, p, ρ) entering iteration Iter. Because each CG iteration reads
// only that tuple (z and Ap are scratch, fully rewritten before use), a
// solve resumed from a State retraces the uninterrupted iteration
// bit for bit — same operator, same floats, same operation order. The
// slices are private copies; the solver never aliases them with its
// workspace.
type State struct {
	// Iter is the 0-based index of the next iteration to execute.
	Iter int
	// X, R, P are the iterate, recursive residual, and search direction
	// entering iteration Iter.
	X, R, P []float64
	// Rho is ρ = rᵀz entering iteration Iter.
	Rho float64
}

// Config controls the CG iteration.
type Config struct {
	MaxIter int
	Tol     float64 // relative residual target
	// Precondition, when non-nil, is the inverse-diagonal (Jacobi)
	// preconditioner: z = Precondition ⊙ r.
	Precondition []float64
	// Workspace, when non-nil, supplies the iteration vectors so
	// repeated solves reuse one set of allocations (an implicit time
	// stepper calls CG every step). A workspace must not be shared by
	// concurrent solves.
	Workspace *Workspace
	// CheckEvery > 0 arms self-healing: every CheckEvery iterations CG
	// recomputes the true residual b − A·x and compares it with the
	// recursively updated residual. Drift beyond DriftTol, a non-finite
	// value anywhere in the iteration, or a pᵀAp breakdown triggers a
	// rollback to the last certified checkpoint of (x, r, p, ρ); a
	// repeat detection from the same checkpoint escalates to a full
	// Krylov restart rebuilt from the true residual. Apparent
	// convergence is then certified against the true residual, so a
	// corrupted operator cannot yield a silently wrong answer. Zero
	// disables self-healing: the classic iteration, with hard errors on
	// non-finite values.
	CheckEvery int
	// DriftTol is the allowed relative gap between the true and
	// recursive residuals before a recovery is triggered: an audit
	// detects when |‖b−Ax‖ − ‖r‖| > DriftTol·(‖b‖ + ‖r‖). The ‖r‖ term
	// keeps roundoff in two large norms from reading as corruption far
	// from convergence. Defaults to 1e-6.
	DriftTol float64
	// MaxRecoveries bounds rollbacks + restarts per solve; exceeding it
	// fails the solve with an error. Defaults to 5.
	MaxRecoveries int
	// CheckpointEvery > 0 arms durable checkpointing: OnCheckpoint
	// receives a State snapshot before the first iteration and then
	// after every CheckpointEvery-th iteration's (p, ρ) update — the
	// consistent tuple entering the next iteration. Snapshots are taken
	// off the per-iteration hot path and may allocate; they are
	// independent of self-healing (CheckEvery). Ignored when
	// OnCheckpoint is nil.
	CheckpointEvery int
	// OnCheckpoint consumes durable snapshots. The *State and its
	// slices are owned by the callee.
	OnCheckpoint func(*State)
	// Interrupt, when non-nil, is polled immediately after every
	// OnCheckpoint delivery (so it runs only when durable checkpointing
	// is armed). Returning true stops the solve with ErrInterrupted;
	// the snapshot just delivered is the exact state to Resume from.
	Interrupt func(iter int) bool
	// Resume, when non-nil, restarts the solve from a captured State
	// instead of the caller's x: the snapshot's (x, r, p, ρ) are loaded
	// and the iteration continues at State.Iter, reproducing the
	// uninterrupted run bit for bit.
	Resume *State
	// Fused opts the solve into the fused kernels when the operator
	// implements FusedOperator: ap = A·p and pᵀAp come out of one pass
	// over the matrix (ApplyDot), and the x/r updates, residual norm,
	// preconditioner application, and ρ = rᵀz merge into a single sweep
	// over the vectors. An iteration then touches the matrix once and
	// the iteration vectors twice (fused update + p-direction update)
	// instead of making six separate vector sweeps. With a local
	// BCSROperator the fused iteration is bit-identical to the unfused
	// one (the fused kernels preserve sequential accumulation order);
	// with a Shifted or distributed operator the merged reductions
	// reorder sums, so the two paths agree to solve tolerance rather
	// than bit for bit — certified by the fused-vs-unfused property
	// tests. Operators without ApplyDot fall back to the unfused path.
	Fused bool
}

// Workspace holds CG's four iteration vectors (r, z, p, Ap) and, when
// self-healing is armed, the checkpoint copies of x, r and p. One
// workspace serves any operator whose dimension fits; it grows on
// demand and is reused across solves via Config.Workspace.
type Workspace struct {
	r, z, p, ap   []float64
	ckX, ckR, ckP []float64
}

// NewWorkspace preallocates a workspace for operators of scalar
// dimension n (3·nodes for the distributed stiffness operator).
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.ensure(n)
	return w
}

// ensure sizes the vectors for dimension n, reallocating only when the
// capacity is insufficient. CG fully initializes every vector before
// reading it, so stale contents are harmless.
func (w *Workspace) ensure(n int) {
	if cap(w.r) < n {
		w.r = make([]float64, n)
		w.z = make([]float64, n)
		w.p = make([]float64, n)
		w.ap = make([]float64, n)
	}
	w.r = w.r[:n]
	w.z = w.z[:n]
	w.p = w.p[:n]
	w.ap = w.ap[:n]
}

// ensureCheckpoint sizes the checkpoint vectors, allocated only for
// solves that arm self-healing.
func (w *Workspace) ensureCheckpoint(n int) {
	if cap(w.ckX) < n {
		w.ckX = make([]float64, n)
		w.ckR = make([]float64, n)
		w.ckP = make([]float64, n)
	}
	w.ckX = w.ckX[:n]
	w.ckR = w.ckR[:n]
	w.ckP = w.ckP[:n]
}

// CG solves A·x = b by (optionally Jacobi-preconditioned) conjugate
// gradients, overwriting x with the solution (x's initial content is
// the starting guess).
func CG(a Operator, b, x []float64, cfg Config) (*Result, error) {
	n := a.Dim()
	if len(b) != n || len(x) != n {
		return nil, fmt.Errorf("solver: dimension mismatch: A %d, b %d, x %d", n, len(b), len(x))
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = n
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-8
	}
	if cfg.Precondition != nil && len(cfg.Precondition) != n {
		return nil, fmt.Errorf("solver: preconditioner length %d, want %d", len(cfg.Precondition), n)
	}
	healing := cfg.CheckEvery > 0
	if cfg.DriftTol <= 0 {
		cfg.DriftTol = 1e-6
	}
	if cfg.MaxRecoveries <= 0 {
		cfg.MaxRecoveries = 5
	}
	fop, hasFused := a.(FusedOperator)
	fused := cfg.Fused && hasFused

	res := &Result{}

	// Telemetry: one solve span on the driver track, aggregate counters,
	// and (when tracing) a residual counter series per iteration.
	sp := obs.StartSpan(obs.TrackDriver, "solve", "solver.cg")
	tracer := obs.ActiveTracer()
	obs.GetCounter("solver.cg.solves").Add(1)
	if fused {
		obs.GetCounter("solver.cg.fused_solves").Add(1)
	}
	iterations := obs.GetCounter("solver.cg.iterations")
	smvps := obs.GetCounter("solver.cg.smvps")
	dots := obs.GetCounter("solver.cg.dotproducts")
	residual := obs.GetGauge("solver.cg.residual")
	detections := obs.GetCounter("solver.cg.detections")
	rollbacks := obs.GetCounter("solver.cg.rollbacks")
	restarts := obs.GetCounter("solver.cg.restarts")
	defer func() {
		iterations.Add(int64(res.Iterations))
		smvps.Add(int64(res.SMVPs))
		dots.Add(int64(res.DotProducts))
		residual.Set(res.Residual)
		detections.Add(int64(res.Detections))
		rollbacks.Add(int64(res.Rollbacks))
		restarts.Add(int64(res.Restarts))
		obs.GetHistogram("solver.cg.iters_per_solve").Observe(int64(res.Iterations))
		sp.EndWith(map[string]any{
			"iterations": res.Iterations,
			"residual":   res.Residual,
			"converged":  res.Converged,
			"detections": res.Detections,
		})
	}()

	ws := cfg.Workspace
	if ws == nil {
		ws = NewWorkspace(n)
	} else {
		ws.ensure(n)
	}
	if healing {
		ws.ensureCheckpoint(n)
	}
	r, z, p, ap := ws.r, ws.z, ws.p, ws.ap

	normB := norm2(b)
	res.DotProducts++
	if normB == 0 {
		for i := range x {
			x[i] = 0
		}
		res.Converged = true
		return res, nil
	}
	applyPrec := func(dst, src []float64) {
		if cfg.Precondition == nil {
			copy(dst, src)
			return
		}
		for i := range src {
			dst[i] = cfg.Precondition[i] * src[i]
		}
	}
	var rz, ckRz float64
	startIter := 0
	if st := cfg.Resume; st != nil {
		if len(st.X) != n || len(st.R) != n || len(st.P) != n {
			return nil, fmt.Errorf("solver: resume state dimension mismatch: x %d, r %d, p %d, want %d", len(st.X), len(st.R), len(st.P), n)
		}
		if st.Iter < 0 || st.Iter >= cfg.MaxIter {
			return nil, fmt.Errorf("solver: resume iteration %d outside [0,%d)", st.Iter, cfg.MaxIter)
		}
		copy(x, st.X)
		copy(r, st.R)
		copy(p, st.P)
		rz = st.Rho
		startIter = st.Iter
		obs.GetCounter("solver.cg.resumes").Add(1)
		obs.RecordFlight(obs.FlightSolver, "solver.cg.resume", -1, int64(st.Iter), 0)
	} else {
		if err := a.Apply(ap, x); err != nil {
			return res, fmt.Errorf("solver: operator failed: %w", err)
		}
		res.SMVPs++
		for i := range r {
			r[i] = b[i] - ap[i]
		}
		applyPrec(z, r)
		copy(p, z)
		rz = dot(r, z)
		res.DotProducts++
	}

	// trueResidual evaluates ‖b − A·x‖ directly, using ap as scratch: at
	// every call site the previous A·p has already been consumed by the
	// x/r update, and the next iteration overwrites ap before reading
	// it. (It must NOT use z — the fused path builds z = M⁻¹r before the
	// audits run and the p-direction update reads it after them.)
	trueResidual := func() (float64, error) {
		if err := a.Apply(ap, x); err != nil {
			return 0, err
		}
		res.SMVPs++
		var s float64
		for i := range ap {
			d := b[i] - ap[i]
			s += d * d
		}
		res.DotProducts++
		return math.Sqrt(s), nil
	}

	// ckTr is the true residual ‖b − A·x‖ certified for the current
	// checkpoint; ckUsed marks a checkpoint that has already served a
	// rollback without an audit passing since.
	var ckTr float64
	var ckUsed bool
	checkpoint := func(tr float64) {
		copy(ws.ckX, x)
		copy(ws.ckR, r)
		copy(ws.ckP, p)
		ckRz = rz
		ckTr = tr
		ckUsed = false
	}

	// heal recovers from a detected inconsistency. trNow is the true
	// residual already measured at the current x (NaN when unknown, e.g.
	// after a non-finite breakdown). The first recovery from a given
	// checkpoint restores the full Krylov state (x, r, p, ρ) and
	// resumes — cheap, and correct when the corruption struck after the
	// checkpoint was certified. A repeat detection before the next audit
	// passes means the checkpointed state itself carries the fault (a
	// certified checkpoint may still hide a sub-DriftTol recursion gap
	// that regrows), so the recovery escalates: keep the better of the
	// current and checkpointed x and rebuild the Krylov state from the
	// true residual (r = b − A·x, p = z, ρ = rᵀz). The rebuilt state is
	// exact by construction, and restarted CG from any finite x converges
	// to the SPD solution.
	heal := func(reason string, trNow float64) error {
		res.Detections++
		obs.RecordFlight(obs.FlightSolver, "solver.cg.detect", -1, int64(res.Iterations), 0)
		if res.Rollbacks+res.Restarts >= cfg.MaxRecoveries {
			return fmt.Errorf("solver: fault persisted after %d recoveries (last detection: %s)", cfg.MaxRecoveries, reason)
		}
		if !ckUsed {
			copy(x, ws.ckX)
			copy(r, ws.ckR)
			copy(p, ws.ckP)
			rz = ckRz
			ckUsed = true
			res.Rollbacks++
			obs.RecordFlight(obs.FlightSolver, "solver.cg.rollback", -1, int64(res.Iterations), 0)
			return nil
		}
		if !isFinite(trNow) || trNow > ckTr {
			copy(x, ws.ckX)
		}
		res.Restarts++
		obs.RecordFlight(obs.FlightSolver, "solver.cg.restart", -1, int64(res.Iterations), 0)
		for i := range x {
			if !isFinite(x[i]) {
				x[i] = 0
			}
		}
		if err := a.Apply(ap, x); err != nil {
			return fmt.Errorf("solver: operator failed during restart: %w", err)
		}
		res.SMVPs++
		for i := range r {
			r[i] = b[i] - ap[i]
		}
		applyPrec(z, r)
		copy(p, z)
		rz = dot(r, z)
		res.DotProducts++
		checkpoint(norm2(r))
		res.DotProducts++
		return nil
	}

	if healing {
		checkpoint(norm2(r))
		res.DotProducts++
	}

	// Durable checkpoints: deep-copied States handed to the caller, who
	// typically persists them (internal/recover) or holds them for a
	// shrink-to-survivors rebuild. The cold path may allocate — only the
	// SMVP inside Apply is alloc-free steady state.
	durable := cfg.CheckpointEvery > 0 && cfg.OnCheckpoint != nil
	snapshot := func(iter int) *State {
		return &State{
			Iter: iter,
			X:    append([]float64(nil), x...),
			R:    append([]float64(nil), r...),
			P:    append([]float64(nil), p...),
			Rho:  rz,
		}
	}
	if durable && cfg.Resume == nil {
		// Iteration-0 snapshot, so a fault before the first periodic
		// checkpoint still leaves a consistent state to resume from.
		res.Checkpoints++
		cfg.OnCheckpoint(snapshot(0))
		if cfg.Interrupt != nil && cfg.Interrupt(0) {
			return res, ErrInterrupted
		}
	}

	for iter := startIter; iter < cfg.MaxIter; iter++ {
		res.Iterations = iter + 1
		var pap float64
		if fused {
			var err error
			if pap, err = fop.ApplyDot(ap, p); err != nil {
				return res, fmt.Errorf("solver: operator failed at iteration %d: %w", iter, err)
			}
		} else {
			if err := a.Apply(ap, p); err != nil {
				return res, fmt.Errorf("solver: operator failed at iteration %d: %w", iter, err)
			}
			pap = dot(p, ap)
		}
		res.SMVPs++
		res.DotProducts++
		if !isFinite(pap) || pap <= 0 {
			if !healing {
				return res, fmt.Errorf("solver: breakdown: pᵀAp = %g at iteration %d (operator not positive definite, or corrupted)", pap, iter)
			}
			if err := heal(fmt.Sprintf("pᵀAp = %g at iteration %d", pap, iter), math.NaN()); err != nil {
				return res, err
			}
			continue
		}
		alpha := rz / pap
		var rn float64
		var rzNext float64
		var rzNextValid bool
		if fused {
			// One sweep: x/r updates, ‖r‖², z = M⁻¹r, and ρ = rᵀz. The
			// precomputed (z, ρ) are consumed after the audits below —
			// which is why trueResidual scratches in ap, not z.
			rn2, rzf := fusedUpdate(x, r, z, p, ap, cfg.Precondition, alpha)
			rn = math.Sqrt(rn2)
			rzNext, rzNextValid = rzf, true
			res.DotProducts += 2 // ‖r‖² and rᵀz, merged into the sweep
		} else {
			for i := range x {
				x[i] += alpha * p[i]
				r[i] -= alpha * ap[i]
			}
			rn = norm2(r)
			res.DotProducts++
		}
		if !isFinite(rn) {
			if !healing {
				return res, fmt.Errorf("solver: residual became non-finite (‖r‖ = %g) at iteration %d", rn, iter)
			}
			if err := heal(fmt.Sprintf("‖r‖ = %g at iteration %d", rn, iter), math.NaN()); err != nil {
				return res, err
			}
			continue
		}
		res.Residual = rn / normB
		if tracer != nil {
			tracer.CounterEvent(obs.TrackDriver, "solver.cg.residual", res.Residual)
		}
		if res.Residual <= cfg.Tol {
			if !healing {
				res.Converged = true
				return res, nil
			}
			// Certify convergence against the true residual: a corrupted
			// exchange can drive the recursive residual to zero while x
			// is wrong.
			tr, err := trueResidual()
			if err != nil {
				return res, fmt.Errorf("solver: operator failed certifying convergence: %w", err)
			}
			if isFinite(tr) && tr/normB <= cfg.Tol {
				res.Residual = tr / normB
				res.Converged = true
				return res, nil
			}
			if err := heal(fmt.Sprintf("recursive residual %.3g converged but true residual is %.3g at iteration %d", res.Residual, tr/normB, iter), tr); err != nil {
				return res, err
			}
			continue
		}
		// Periodic audit: compare the recursive residual with the true
		// residual. The drift threshold scales with the current residual
		// so roundoff in two large norms is not mistaken for corruption.
		// A passing state is certified, but the checkpoint itself is
		// saved only after the upcoming (p, ρ) update: saving here would
		// capture (x_{k+1}, r_{k+1}, p_k, ρ_k) — a mixed-generation tuple
		// whose resumption re-applies the p_k step from the wrong iterate
		// and quietly diverges.
		certified := false
		var certTr float64
		if healing && (iter+1)%cfg.CheckEvery == 0 {
			tr, err := trueResidual()
			if err != nil {
				return res, fmt.Errorf("solver: operator failed at residual audit: %w", err)
			}
			if !isFinite(tr) || math.Abs(tr-rn) > cfg.DriftTol*(normB+rn) {
				if err := heal(fmt.Sprintf("residual drift |%.6g − %.6g| exceeds %g·(‖b‖+‖r‖) at iteration %d", tr, rn, cfg.DriftTol, iter), tr); err != nil {
					return res, err
				}
				continue
			}
			certified, certTr = true, tr
		}
		var rzNew float64
		if rzNextValid {
			rzNew = rzNext
		} else {
			applyPrec(z, r)
			rzNew = dot(r, z)
			res.DotProducts++
		}
		if healing && !isFinite(rzNew) {
			if err := heal(fmt.Sprintf("ρ = %g at iteration %d", rzNew, iter), math.NaN()); err != nil {
				return res, err
			}
			continue
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		if certified {
			// (x_{k+1}, r_{k+1}, p_{k+1}, ρ_{k+1}) — exactly the state
			// entering the next iteration, safe to resume from.
			checkpoint(certTr)
		}
		if durable && (iter+1)%cfg.CheckpointEvery == 0 {
			res.Checkpoints++
			cfg.OnCheckpoint(snapshot(iter + 1))
			if cfg.Interrupt != nil && cfg.Interrupt(iter+1) {
				return res, ErrInterrupted
			}
		}
	}
	return res, nil
}

// fusedUpdate is the fused CG vector sweep: in one pass over the
// iteration vectors it applies x += α·p and r −= α·ap, accumulates
// ‖r‖², applies the Jacobi preconditioner z = M⁻¹·r, and accumulates
// ρ = rᵀz. Each reduction is accumulated one term at a time in
// ascending index order — the same order the separate norm2/dot calls
// of the unfused path use — so the fused sweep produces bit-identical
// x, r, z, ‖r‖², and ρ. Without a preconditioner z = r and ρ = ‖r‖²,
// again exactly what copy + dot(r, z) yields.
func fusedUpdate(x, r, z, p, ap, prec []float64, alpha float64) (rn2, rz float64) {
	if prec == nil {
		for i := range x {
			x[i] += alpha * p[i]
			ri := r[i] - alpha*ap[i]
			r[i] = ri
			z[i] = ri
			rn2 += ri * ri
		}
		return rn2, rn2
	}
	for i := range x {
		x[i] += alpha * p[i]
		ri := r[i] - alpha*ap[i]
		r[i] = ri
		rn2 += ri * ri
		zi := prec[i] * ri
		z[i] = zi
		rz += ri * zi
	}
	return rn2, rz
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }
