package solver

import (
	"errors"
	"math/rand"
	"testing"
)

// TestCGResumeBitIdentical is the checkpoint/restart contract: a solve
// interrupted at a durable checkpoint and resumed from it must retrace
// the uninterrupted run bit for bit — identical solution bits,
// identical final residual, identical total iteration count. This is
// what lets a crashed quakesim pick up from disk with no numerical
// drift.
func TestCGResumeBitIdentical(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	n := a.Dim()
	rng := rand.New(rand.NewSource(11))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	cfg := Config{MaxIter: 4 * n, Tol: 1e-10}

	// Reference: uninterrupted solve, recording every 7th-iteration state.
	var states []*State
	ref := make([]float64, n)
	refCfg := cfg
	refCfg.CheckpointEvery = 7
	refCfg.OnCheckpoint = func(s *State) { states = append(states, s) }
	refRes, err := CG(a, b, ref, refCfg)
	if err != nil || !refRes.Converged {
		t.Fatalf("reference solve: converged=%v err=%v", refRes != nil && refRes.Converged, err)
	}
	if refRes.Checkpoints != len(states) || len(states) < 3 {
		t.Fatalf("checkpoints: counted %d, captured %d", refRes.Checkpoints, len(states))
	}
	if states[0].Iter != 0 || states[1].Iter != 7 {
		t.Fatalf("checkpoint iterations %d, %d; want 0, 7", states[0].Iter, states[1].Iter)
	}

	// Resume from a mid-solve snapshot; the caller's x is ignored.
	st := states[len(states)/2]
	got := make([]float64, n)
	resumeCfg := cfg
	resumeCfg.Resume = st
	gotRes, err := CG(a, b, got, resumeCfg)
	if err != nil || !gotRes.Converged {
		t.Fatalf("resumed solve: converged=%v err=%v", gotRes != nil && gotRes.Converged, err)
	}
	if gotRes.Iterations != refRes.Iterations {
		t.Fatalf("resumed run took %d total iterations, uninterrupted took %d", gotRes.Iterations, refRes.Iterations)
	}
	if gotRes.Residual != refRes.Residual {
		t.Fatalf("final residuals differ: %x vs %x", gotRes.Residual, refRes.Residual)
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("resumed solution differs from uninterrupted at %d: %x vs %x", i, got[i], ref[i])
		}
	}

	// Resume also composes with self-healing and preconditioning.
	prec := precFromDiagonal(a)
	var pStates []*State
	pRef := make([]float64, n)
	pCfg := Config{MaxIter: 4 * n, Tol: 1e-10, Precondition: prec, CheckEvery: 5,
		CheckpointEvery: 6, OnCheckpoint: func(s *State) { pStates = append(pStates, s) }}
	pRefRes, err := CG(a, b, pRef, pCfg)
	if err != nil || !pRefRes.Converged {
		t.Fatalf("preconditioned reference: converged=%v err=%v", pRefRes != nil && pRefRes.Converged, err)
	}
	pGot := make([]float64, n)
	pResume := Config{MaxIter: 4 * n, Tol: 1e-10, Precondition: prec, CheckEvery: 5,
		Resume: pStates[len(pStates)/2]}
	pGotRes, err := CG(a, b, pGot, pResume)
	if err != nil || !pGotRes.Converged {
		t.Fatalf("preconditioned resume: converged=%v err=%v", pGotRes != nil && pGotRes.Converged, err)
	}
	for i := range pGot {
		if pGot[i] != pRef[i] {
			t.Fatalf("preconditioned resumed solution differs at %d: %x vs %x", i, pGot[i], pRef[i])
		}
	}
}

// TestCGInterruptResume pins the cooperative-pause contract the elastic
// supervisor relies on: Config.Interrupt firing at a checkpoint stops
// the solve with ErrInterrupted, and resuming from the snapshot just
// delivered completes with bit-identical results to an uninterrupted
// run.
func TestCGInterruptResume(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	n := a.Dim()
	rng := rand.New(rand.NewSource(29))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	cfg := Config{MaxIter: 4 * n, Tol: 1e-10}

	ref := make([]float64, n)
	refRes, err := CG(a, b, ref, cfg)
	if err != nil || !refRes.Converged {
		t.Fatalf("reference solve: converged=%v err=%v", refRes != nil && refRes.Converged, err)
	}

	var last *State
	intCfg := cfg
	intCfg.CheckpointEvery = 5
	intCfg.OnCheckpoint = func(s *State) { last = s }
	intCfg.Interrupt = func(iter int) bool { return iter >= 10 }
	got := make([]float64, n)
	res, err := CG(a, b, got, intCfg)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted solve: err=%v, want ErrInterrupted", err)
	}
	if res.Converged {
		t.Fatal("interrupted solve reported convergence")
	}
	if last == nil || last.Iter != 10 {
		t.Fatalf("last checkpoint iter = %v, want 10", last)
	}

	resumeCfg := cfg
	resumeCfg.Resume = last
	gotRes, err := CG(a, b, got, resumeCfg)
	if err != nil || !gotRes.Converged {
		t.Fatalf("resumed solve: converged=%v err=%v", gotRes != nil && gotRes.Converged, err)
	}
	if gotRes.Iterations != refRes.Iterations || gotRes.Residual != refRes.Residual {
		t.Fatalf("resumed run: %d iters residual %x; uninterrupted: %d iters residual %x",
			gotRes.Iterations, gotRes.Residual, refRes.Iterations, refRes.Residual)
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("resumed solution differs from uninterrupted at %d: %x vs %x", i, got[i], ref[i])
		}
	}

	// Interrupt firing at the iteration-0 snapshot stops before any
	// iteration runs.
	var first *State
	zeroCfg := cfg
	zeroCfg.CheckpointEvery = 5
	zeroCfg.OnCheckpoint = func(s *State) { first = s }
	zeroCfg.Interrupt = func(int) bool { return true }
	if _, err := CG(a, b, make([]float64, n), zeroCfg); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("iteration-0 interrupt: err=%v, want ErrInterrupted", err)
	}
	if first == nil || first.Iter != 0 {
		t.Fatalf("iteration-0 interrupt delivered checkpoint %v, want Iter 0", first)
	}
}

func precFromDiagonal(a Shifted) []float64 {
	d := a.Diagonal()
	inv := make([]float64, len(d))
	for i, v := range d {
		inv[i] = 1 / v
	}
	return inv
}

// TestCGResumeValidation pins the resume-state checks: wrong dimensions
// and out-of-range iterations are rejected up front, never solved.
func TestCGResumeValidation(t *testing.T) {
	sys := buildSystem(t)
	a := shifted(sys)
	n := a.Dim()
	b := make([]float64, n)
	b[0] = 1
	x := make([]float64, n)
	bad := &State{Iter: 0, X: make([]float64, n-1), R: make([]float64, n), P: make([]float64, n)}
	if _, err := CG(a, b, x, Config{Resume: bad}); err == nil {
		t.Fatal("short resume state accepted")
	}
	late := &State{Iter: 10, X: make([]float64, n), R: make([]float64, n), P: make([]float64, n)}
	if _, err := CG(a, b, x, Config{MaxIter: 5, Resume: late}); err == nil {
		t.Fatal("resume iteration past MaxIter accepted")
	}
}
