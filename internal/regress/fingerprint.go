// Package regress computes stable fingerprints of the pipeline's
// intermediate products — meshes, partitions, communication schedules,
// rendered model tables — so golden tests can pin the entire
// octree→mesh→partition→model chain with a handful of 64-bit values.
// Any drift in the mesher's refinement rule, the partitioner's
// splitting order, or a model formula changes a fingerprint and fails
// the suite loudly, which is what makes multi-layer refactors (like
// the two-level exchange) safe to land.
//
// Fingerprints are FNV-1a hashes over exact bit patterns: float64
// coordinates are hashed via math.Float64bits, so even a 1-ULP
// perturbation is detected. They are portable across platforms (Go
// floats are IEEE-754 everywhere) but NOT across intentional algorithm
// changes — regenerate with `go test ./internal/regress -update` and
// review the diff when an upstream change is deliberate.
package regress

import (
	"encoding/binary"
	"hash"
	"hash/fnv"
	"math"
	"strings"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/partition"
	"repro/internal/report"
)

func u64(h hash.Hash64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:]) // fnv.Write never errors
}

func i64(h hash.Hash64, v int64) { u64(h, uint64(v)) }

// Mesh fingerprints the full geometry and topology: node count, every
// coordinate's exact bits, element count, and every tetrahedron's
// vertex ids in order.
func Mesh(m *mesh.Mesh) uint64 {
	h := fnv.New64a()
	i64(h, int64(m.NumNodes()))
	for _, c := range m.Coords {
		u64(h, math.Float64bits(c.X))
		u64(h, math.Float64bits(c.Y))
		u64(h, math.Float64bits(c.Z))
	}
	i64(h, int64(m.NumElems()))
	for _, t := range m.Tets {
		for _, v := range t {
			i64(h, int64(v))
		}
	}
	return h.Sum64()
}

// Partition fingerprints the element-to-PE assignment.
func Partition(pt *partition.Partition) uint64 {
	h := fnv.New64a()
	i64(h, int64(pt.P))
	for _, pe := range pt.ElemPE {
		i64(h, int64(pe))
	}
	return h.Sum64()
}

// Schedule fingerprints a communication schedule: every message's
// endpoints and volume in the schedule's deterministic order.
func Schedule(s *comm.Schedule) uint64 {
	h := fnv.New64a()
	i64(h, int64(s.P))
	for _, msgs := range s.Out {
		i64(h, int64(len(msgs)))
		for _, m := range msgs {
			i64(h, int64(m.From))
			i64(h, int64(m.To))
			i64(h, m.Words)
		}
	}
	return h.Sum64()
}

// Vector fingerprints a float64 vector's exact bit patterns: two runs
// are bit-identical iff their Vector fingerprints match. Used by the
// checkpoint/resume tests to compare whole solution vectors with one
// equality. Solution-vector fingerprints are compared within a single
// process, never stored in the golden file — floating-point contraction
// differs across architectures, while the golden file must not.
func Vector(xs []float64) uint64 {
	h := fnv.New64a()
	i64(h, int64(len(xs)))
	for _, v := range xs {
		u64(h, math.Float64bits(v))
	}
	return h.Sum64()
}

// Table fingerprints a rendered report table — headers, formatting,
// and every cell — so the model outputs are pinned exactly as a human
// reads them.
func Table(t *report.Table) uint64 {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		panic(err) // Render to a strings.Builder cannot fail
	}
	h := fnv.New64a()
	h.Write([]byte(sb.String()))
	return h.Sum64()
}
