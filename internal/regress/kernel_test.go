package regress

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/quake"
)

// TestKernelFusionLeavesPipelineUntouched is the fusion PR's golden
// guard: the tuned/fused kernels are pure scheduling changes, so (1)
// the fused SMVP must produce the bit-identical product vector the
// plain SMVP does, and (2) running them must not perturb any pipeline
// product upstream of the kernel — the mesh, the partition, and the
// re-derived exchange schedule hash exactly as before. Combined with
// TestGoldenFingerprints (which pins those hashes against the golden
// file), this proves a kernel change cannot silently leak into the
// partitioning or communication layers.
func TestKernelFusionLeavesPipelineUntouched(t *testing.T) {
	m, err := quake.SF10.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := partition.PartitionMesh(m, 8, partition.RCB, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := partition.Analyze(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := comm.FromMatrix(pr.Msg)
	if err != nil {
		t.Fatal(err)
	}
	meshFP, partFP, schedFP := Mesh(m), Partition(pt), Schedule(sched)

	dist, err := par.NewDist(m, quake.Material(), pt, pr)
	if err != nil {
		t.Fatal(err)
	}
	defer dist.Close()
	n := 3 * m.NumNodes()
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i)) * 0.5
	}
	y := make([]float64, n)
	yf := make([]float64, n)
	if _, err := dist.SMVP(y, x); err != nil {
		t.Fatal(err)
	}
	d, _, err := dist.SMVPDot(yf, x)
	if err != nil {
		t.Fatal(err)
	}
	if Vector(y) != Vector(yf) {
		t.Error("fused SMVPDot product is not bit-identical to SMVP")
	}
	var want float64
	for i := range x {
		want += x[i] * y[i]
	}
	if scale := math.Abs(want) + 1; math.Abs(d-want) > 1e-9*scale {
		t.Errorf("fused dot %g vs sequential %g", d, want)
	}

	// Re-derive the schedule from a fresh analysis after the kernels ran:
	// every upstream fingerprint must be exactly what it was.
	pr2, err := partition.Analyze(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	sched2, err := comm.FromMatrix(pr2.Msg)
	if err != nil {
		t.Fatal(err)
	}
	if Mesh(m) != meshFP {
		t.Error("mesh fingerprint drifted after kernel runs")
	}
	if Partition(pt) != partFP {
		t.Error("partition fingerprint drifted after kernel runs")
	}
	if Schedule(sched2) != schedFP {
		t.Error("re-derived schedule fingerprint drifted after kernel runs")
	}
}
