package regress

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fem"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/quake"
	rec "repro/internal/recover"
	"repro/internal/solver"
)

// TestResumeBitIdenticalThroughDisk certifies the durable restart
// guarantee end to end: a distributed CG solve that checkpoints to
// disk, is "interrupted" (a second process simulated by fresh state),
// and resumes from the store's latest snapshot produces a solution
// vector whose fingerprint is bit-identical to the uninterrupted run.
// This is the same store/resume path `quakesim -checkpoint/-resume`
// drives from the CLI. Fingerprints are compared in-process — the
// golden file pins only integer artifacts (see Vector).
func TestResumeBitIdenticalThroughDisk(t *testing.T) {
	m, err := quake.SF10.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	mat := quake.Material()
	pt, err := partition.PartitionMesh(m, 4, partition.RCB, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := partition.Analyze(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := fem.Assemble(m, mat)
	if err != nil {
		t.Fatal(err)
	}
	n := 3 * m.NumNodes()
	rng := rand.New(rand.NewSource(77))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	meshID := rec.MeshID(m)
	cfg := solver.Config{MaxIter: 6 * n, Tol: 1e-10}

	// Uninterrupted run, checkpointing every 5 iterations to disk.
	store, err := rec.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d1, err := par.NewDist(m, mat, pt, pr)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, n)
	out, err := rec.Solve(d1, &rec.System{Mesh: m, Material: mat, Part: pt, Shift: 20, MassNode: sys.MassNode},
		b, ref, rec.Config{Solver: withCkpt(cfg, 5), Store: store, MeshID: meshID})
	d1.Close()
	if err != nil || !out.Result.Converged {
		t.Fatalf("uninterrupted solve: err=%v", err)
	}

	// "Crash": all in-memory state is discarded; only the store
	// survives. Resume from its latest snapshot on a fresh Dist.
	ck, path, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if ck.MeshID != meshID {
		t.Fatalf("checkpoint %s carries mesh id %x, want %x", path, ck.MeshID, meshID)
	}
	if int(ck.P) != pt.P {
		t.Fatalf("checkpoint width %d, want %d", ck.P, pt.P)
	}
	d2, err := par.NewDist(m, mat, pt, pr)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := make([]float64, n)
	rcfg := cfg
	rcfg.Resume = ck.State()
	res, err := solver.CG(par.Operator{D: d2, Shift: 20, MassNode: sys.MassNode}, b, got, rcfg)
	if err != nil || !res.Converged {
		t.Fatalf("resumed solve: err=%v", err)
	}

	if rf, gf := Vector(ref), Vector(got); rf != gf {
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("resumed run diverged at scalar %d: %x vs %x (fingerprints %016x vs %016x)",
					i, got[i], ref[i], gf, rf)
			}
		}
		t.Fatalf("fingerprints differ (%016x vs %016x) with no differing scalar", gf, rf)
	}
	if math.Float64bits(res.Residual) != math.Float64bits(out.Result.Residual) {
		t.Fatalf("final residuals differ: %x vs %x", res.Residual, out.Result.Residual)
	}
}

func withCkpt(cfg solver.Config, every int) solver.Config {
	cfg.CheckpointEvery = every
	return cfg
}
