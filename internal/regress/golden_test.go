package regress

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/quake"
	rec "repro/internal/recover"
	"repro/internal/report"
)

var update = flag.Bool("update", false, "regenerate the golden fingerprints")

const goldenFile = "testdata/fingerprints.txt"

// goldenPCounts are the pinned subdomain counts. The scenarios are
// sf10 and sf5: the issue's sf2 (~2M elements) takes minutes to mesh,
// far beyond unit-test budget, so the two cheap family members stand
// in — they exercise the identical octree/partition/model code paths.
var goldenPCounts = []int{4, 8}

// fingerprints computes the full golden map: mesh, partition, and
// exchange-schedule hashes per scenario/p, plus the rendered Figure 6
// and Figure 7 model tables.
func fingerprints(t *testing.T) map[string]uint64 {
	t.Helper()
	got := make(map[string]uint64)
	for _, s := range quake.Small() {
		m, err := s.Mesh()
		if err != nil {
			t.Fatal(err)
		}
		got["mesh/"+s.Name] = Mesh(m)
		for _, p := range goldenPCounts {
			for _, method := range []partition.Method{partition.RCB, partition.Multilevel} {
				key := fmt.Sprintf("%s/p%d/%s", s.Name, p, method)
				pt, err := partition.PartitionMesh(m, p, method, 1)
				if err != nil {
					t.Fatal(err)
				}
				got["partition/"+key] = Partition(pt)
				pr, err := partition.Analyze(m, pt)
				if err != nil {
					t.Fatal(err)
				}
				sched, err := comm.FromMatrix(pr.Msg)
				if err != nil {
					t.Fatal(err)
				}
				got["schedule/"+key] = Schedule(sched)
				// Shrink-to-survivors is pure integer remapping, so its
				// partition and re-derived schedule are golden-stable:
				// pin the p−1 rebuild after losing PE 3.
				if p == 8 && method == partition.RCB {
					spt, err := rec.ShrinkPartition(m, pt, 3)
					if err != nil {
						t.Fatal(err)
					}
					spr, err := partition.Analyze(m, spt)
					if err != nil {
						t.Fatal(err)
					}
					ssched, err := comm.FromMatrix(spr.Msg)
					if err != nil {
						t.Fatal(err)
					}
					got["shrink/"+key+"/dead3/partition"] = Partition(spt)
					got["shrink/"+key+"/dead3/schedule"] = Schedule(ssched)
					// Expand-to-recovered is the deterministic dual:
					// pin regrowing the shrunk partition back onto a
					// revived slot 3.
					gpt, _, err := rec.GrowPartition(m, spt, 3)
					if err != nil {
						t.Fatal(err)
					}
					gpr, err := partition.Analyze(m, gpt)
					if err != nil {
						t.Fatal(err)
					}
					gsched, err := comm.FromMatrix(gpr.Msg)
					if err != nil {
						t.Fatal(err)
					}
					got["grow/"+key+"/revive3/partition"] = Partition(gpt)
					got["grow/"+key+"/revive3/schedule"] = Schedule(gsched)
					// The rebalance pass is deterministic for fixed loads:
					// pin migrating off a synthetically doubled straggler
					// (PE 0 billed at twice its element count).
					loads := make([]int64, pt.P)
					for q, sz := range pt.Sizes() {
						loads[q] = int64(sz) * 1000
					}
					loads[0] *= 2
					rpt, _, err := rec.RebalancePartition(m, pt, loads, 2)
					if err != nil {
						t.Fatal(err)
					}
					rpr, err := partition.Analyze(m, rpt)
					if err != nil {
						t.Fatal(err)
					}
					rsched, err := comm.FromMatrix(rpr.Msg)
					if err != nil {
						t.Fatal(err)
					}
					got["rebalance/"+key+"/hot0/partition"] = Partition(rpt)
					got["rebalance/"+key+"/hot0/schedule"] = Schedule(rsched)
				}
			}
		}
		f6, err := quake.Fig6Table([]quake.Scenario{s}, goldenPCounts, partition.RCB)
		if err != nil {
			t.Fatal(err)
		}
		got["table/fig6/"+s.Name] = Table(f6)
		f7, err := quake.Fig7Table([]quake.Scenario{s}, goldenPCounts, partition.RCB)
		if err != nil {
			t.Fatal(err)
		}
		got["table/fig7/"+s.Name] = Table(f7)
	}
	return got
}

// TestGoldenFingerprints pins the octree→mesh→partition→schedule→model
// pipeline against testdata/fingerprints.txt. On mismatch it names the
// drifted stage; regenerate deliberately with
// `go test ./internal/regress -update` and review the diff.
func TestGoldenFingerprints(t *testing.T) {
	got := fingerprints(t)
	if *update {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		sb.WriteString("# golden pipeline fingerprints; regenerate: go test ./internal/regress -update\n")
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s %016x\n", k, got[k])
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fingerprints to %s", len(got), goldenFile)
		return
	}

	want := readGolden(t)
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: in golden file but no longer computed (stale key? rerun -update)", k)
			continue
		}
		if g != w {
			t.Errorf("%s: fingerprint %016x, golden %016x — upstream output drifted; "+
				"if intentional, rerun with -update and review", k, g, w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: computed but missing from golden file (rerun -update)", k)
		}
	}
}

func readGolden(t *testing.T) map[string]uint64 {
	t.Helper()
	f, err := os.Open(goldenFile)
	if err != nil {
		t.Fatalf("%v (generate with `go test ./internal/regress -update`)", err)
	}
	defer f.Close()
	want := make(map[string]uint64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		v, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			t.Fatalf("malformed golden value in %q: %v", line, err)
		}
		want[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFingerprintSensitivity demonstrates the detection property the
// golden suite relies on: the smallest possible perturbation at each
// stage — one coordinate nudged by one ULP (exactly what a one-line
// mesher change would do everywhere), one element reassigned, one
// message grown by a word, one table cell edited — flips the
// corresponding fingerprint.
func TestFingerprintSensitivity(t *testing.T) {
	m, err := quake.SF10.Build() // private copy: Mesh() caches a shared one
	if err != nil {
		t.Fatal(err)
	}
	base := Mesh(m)
	m.Coords[0].X = math.Nextafter(m.Coords[0].X, math.Inf(1))
	if Mesh(m) == base {
		t.Error("1-ULP coordinate perturbation not detected")
	}
	m.Coords[0].X = math.Nextafter(m.Coords[0].X, math.Inf(-1))
	if Mesh(m) != base {
		t.Error("fingerprint not restored after undoing the perturbation")
	}

	pt, err := partition.PartitionMesh(m, 4, partition.RCB, 1)
	if err != nil {
		t.Fatal(err)
	}
	pbase := Partition(pt)
	pt.ElemPE[0] = (pt.ElemPE[0] + 1) % int32(pt.P)
	if Partition(pt) == pbase {
		t.Error("single element reassignment not detected")
	}

	s, err := comm.FromMatrix([][]int64{{0, 6, 3}, {6, 0, 9}, {3, 9, 0}})
	if err != nil {
		t.Fatal(err)
	}
	sbase := Schedule(s)
	s.Out[0][0].Words++
	if Schedule(s) == sbase {
		t.Error("one-word message growth not detected")
	}

	tab := report.New("t", "a", "b")
	tab.AddRow("1", "2")
	tbase := Table(tab)
	tab.Rows[0][1] = "3"
	if Table(tab) == tbase {
		t.Error("table cell edit not detected")
	}
}
