// Package fem assembles and advances the linear elastodynamic finite
// element problem the Quake applications solve: seismic wave propagation
// through a heterogeneous volume, discretized with linear tetrahedra and
// integrated with an explicit central-difference scheme. Each time step
// performs exactly one stiffness SMVP, which is why the paper can reduce
// the whole application to the behavior of that kernel.
package fem

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// ElementStiffness computes the 4×4 grid of 3×3 node-pair blocks of the
// stiffness matrix of a linear (constant-strain) tetrahedron with
// vertices v and isotropic Lamé parameters (lambda, mu). Block (a, b)
// couples the three displacement DOF of vertex a to those of vertex b:
//
//	K_ab[i][j] = V·( λ·∂Nₐ/∂xᵢ·∂N_b/∂xⱼ + μ·∂Nₐ/∂xⱼ·∂N_b/∂xᵢ
//	               + μ·δᵢⱼ·∇Nₐ·∇N_b )
//
// ok is false for degenerate elements.
func ElementStiffness(v [4]geom.Vec3, lambda, mu float64) (blocks [4][4][9]float64, vol float64, ok bool) {
	grads, vol, ok := geom.TetShapeGradients(v[0], v[1], v[2], v[3])
	if !ok || vol <= 0 {
		return blocks, vol, false
	}
	for a := 0; a < 4; a++ {
		ga := [3]float64{grads[a].X, grads[a].Y, grads[a].Z}
		for b := 0; b < 4; b++ {
			gb := [3]float64{grads[b].X, grads[b].Y, grads[b].Z}
			dot := ga[0]*gb[0] + ga[1]*gb[1] + ga[2]*gb[2]
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					val := lambda*ga[i]*gb[j] + mu*ga[j]*gb[i]
					if i == j {
						val += mu * dot
					}
					blocks[a][b][3*i+j] = vol * val
				}
			}
		}
	}
	return blocks, vol, true
}

// ElementLumpedMass returns the lumped (row-sum) mass per vertex of a
// tetrahedron with density rho: each vertex carries a quarter of the
// element mass, identically in all three DOF.
func ElementLumpedMass(v [4]geom.Vec3, rho float64) (perVertex float64, err error) {
	vol := geom.TetVolume(v[0], v[1], v[2], v[3])
	if vol <= 0 {
		return 0, fmt.Errorf("fem: non-positive element volume %g", vol)
	}
	return rho * vol / 4, nil
}

// Ricker returns the value at time t of a Ricker wavelet with the given
// peak (center) frequency fp and time delay t0. The Ricker wavelet is
// the standard point-source time history in seismic modeling.
func Ricker(t, fp, t0 float64) float64 {
	a := math.Pi * fp * (t - t0)
	a2 := a * a
	return (1 - 2*a2) * math.Exp(-a2)
}
