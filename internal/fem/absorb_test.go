package fem

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/material"
)

func TestBuildAbsorbingDampers(t *testing.T) {
	sys := smallSystem(t)
	mat := smallMaterial()
	ab, err := BuildAbsorbingDampers(sys, mat, 0) // free surface at z=0
	if err != nil {
		t.Fatal(err)
	}
	if ab.Faces == 0 {
		t.Fatal("no boundary faces found")
	}
	// Damped nodes lie on the boundary, never strictly inside, and no
	// free-surface-only node is damped.
	const eps = 1e-9
	for i, blk := range ab.Blocks {
		if blk == ([9]float64{}) {
			continue
		}
		p := sys.Mesh.Coords[i]
		onSide := p.X < eps || p.X > 1-eps || p.Y < eps || p.Y > 1-eps || p.Z > 1-eps
		if !onSide {
			t.Fatalf("interior/free-surface node %d at %v damped", i, p)
		}
		// Damping blocks are symmetric positive semidefinite.
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				if math.Abs(blk[3*r+c]-blk[3*c+r]) > 1e-12 {
					t.Fatalf("node %d damper asymmetric", i)
				}
			}
			if blk[3*r+r] < 0 {
				t.Fatalf("node %d damper has negative diagonal", i)
			}
		}
	}
}

func smallMaterial() *material.Model {
	mat := material.SanFernando()
	mat.BasinCenter = geom.V(0.5, 0.5, 0)
	mat.BasinSemi = geom.V(0.4, 0.35, 0.3)
	return mat
}

func TestAbsorbersReduceReflections(t *testing.T) {
	sys := smallSystem(t)
	mat := smallMaterial()
	ab, err := BuildAbsorbingDampers(sys, mat, 0)
	if err != nil {
		t.Fatal(err)
	}
	dt := sys.StableDt(0.5)
	src := PointSource{
		Location:  geom.V(0.5, 0.5, 0.2),
		Direction: geom.V(0, 0, 1),
		Amplitude: 10,
		PeakFreq:  3,
		Delay:     0.4,
	}
	// Long run: by the end, the pulse has hit the boundary many times.
	// Compare the late-time displacement magnitude with and without
	// absorbers at an interior receiver.
	rcv := sys.NearestNode(geom.V(0.5, 0.5, 0.5))
	run := func(a *AbsorbingDampers) float64 {
		res, err := sys.Run(SimConfig{
			Dt: dt, Steps: 900, Source: src, Absorbers: a,
			Receivers: []int32{rcv},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Late-time energy proxy: mean |u| over the final quarter.
		seis := res.Seismograms[0]
		var sum float64
		for _, v := range seis[3*len(seis)/4:] {
			sum += v
		}
		return sum
	}
	reflected := run(nil)
	absorbed := run(ab)
	if absorbed >= reflected {
		t.Errorf("absorbers did not reduce late-time motion: %g vs %g", absorbed, reflected)
	}
}

func TestApplyDampers(t *testing.T) {
	sys := smallSystem(t)
	ab, err := BuildAbsorbingDampers(sys, smallMaterial(), 0)
	if err != nil {
		t.Fatal(err)
	}
	n := sys.NumDOF()
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	f := make([]float64, n)
	ab.Apply(f, v)
	// Force must oppose motion: fᵀv ≤ 0 with strict inequality somewhere.
	var dotfv float64
	for i := range f {
		dotfv += f[i] * v[i]
	}
	if dotfv >= 0 {
		t.Errorf("damper force not dissipative: f·v = %g", dotfv)
	}
}

func TestSolve3x3(t *testing.T) {
	a := [9]float64{4, 1, 0, 1, 5, 2, 0, 2, 6}
	want := [3]float64{1, -2, 3}
	b := [3]float64{
		a[0]*want[0] + a[1]*want[1] + a[2]*want[2],
		a[3]*want[0] + a[4]*want[1] + a[5]*want[2],
		a[6]*want[0] + a[7]*want[1] + a[8]*want[2],
	}
	got := solve3x3(&a, b)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}
