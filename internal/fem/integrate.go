package fem

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
)

// PointSource describes a body-force point source with a Ricker wavelet
// time history, applied to the mesh node nearest Location.
type PointSource struct {
	Location  geom.Vec3
	Direction geom.Vec3 // force direction (normalized internally)
	Amplitude float64
	PeakFreq  float64 // Ricker peak frequency (Hz)
	Delay     float64 // Ricker delay t0 (s); typically ~1.2/PeakFreq
}

// SimConfig configures an explicit elastodynamic run.
type SimConfig struct {
	Dt      float64
	Steps   int
	Source  PointSource
	Damping float64 // mass-proportional damping coefficient (1/s), 0 for none
	// Absorbers, when non-nil, applies Lysmer viscous boundary dampers
	// (see BuildAbsorbingDampers) so outgoing waves are not reflected
	// back into the domain.
	Absorbers *AbsorbingDampers
	// Receivers lists node indices whose displacement magnitude is
	// recorded every step.
	Receivers []int32
}

// SimResult reports the outcome and the timing decomposition of a run.
// SMVPSeconds/TotalSeconds is the paper's "over 80% of running time"
// measurement.
type SimResult struct {
	Steps        int
	SMVPSeconds  float64
	TotalSeconds float64
	// Seismograms[r][s] is |u| at receiver r after step s.
	Seismograms [][]float64
	// MaxDisplacement over all nodes and steps.
	MaxDisplacement float64
	// FlopsSMVP is the total useful flop count of all SMVPs (2·nnz·steps).
	FlopsSMVP int64
}

// SMVPShare returns the fraction of run time spent in the SMVP kernel.
func (r *SimResult) SMVPShare() float64 {
	if r.TotalSeconds == 0 {
		return 0
	}
	return r.SMVPSeconds / r.TotalSeconds
}

// solve3x3 solves a·x = b for a 3×3 row-major matrix by Cramer's rule.
// The absorber system matrix I + dt·M⁻¹·C is strictly diagonally
// dominant, so the determinant is safely away from zero.
func solve3x3(a *[9]float64, b [3]float64) [3]float64 {
	det := a[0]*(a[4]*a[8]-a[5]*a[7]) -
		a[1]*(a[3]*a[8]-a[5]*a[6]) +
		a[2]*(a[3]*a[7]-a[4]*a[6])
	inv := 1 / det
	return [3]float64{
		inv * (b[0]*(a[4]*a[8]-a[5]*a[7]) - a[1]*(b[1]*a[8]-a[5]*b[2]) + a[2]*(b[1]*a[7]-a[4]*b[2])),
		inv * (a[0]*(b[1]*a[8]-a[5]*b[2]) - b[0]*(a[3]*a[8]-a[5]*a[6]) + a[2]*(a[3]*b[2]-b[1]*a[6])),
		inv * (a[0]*(a[4]*b[2]-b[1]*a[7]) - a[1]*(a[3]*b[2]-b[1]*a[6]) + b[0]*(a[3]*a[7]-a[4]*a[6])),
	}
}

// NearestNode returns the index of the mesh node closest to p.
func (s *System) NearestNode(p geom.Vec3) int32 {
	best := int32(0)
	bestD := math.Inf(1)
	for i, c := range s.Mesh.Coords {
		if d := c.Dist(p); d < bestD {
			bestD = d
			best = int32(i)
		}
	}
	return best
}

// Run integrates the semi-discrete system M·ü + C·u̇ + K·u = f with the
// explicit central-difference method:
//
//	u⁺ = u + dt·v + dt²·M⁻¹(f − K·u − C·v)
//	(velocity form, equivalent to the classic three-level scheme)
//
// Each step performs exactly one stiffness SMVP, mirroring the Quake
// applications. The SMVP is timed separately so the share of total run
// time can be compared with the paper's >80% claim.
func (s *System) Run(cfg SimConfig) (*SimResult, error) {
	if cfg.Dt <= 0 {
		return nil, fmt.Errorf("fem: Dt must be positive, got %g", cfg.Dt)
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("fem: Steps must be positive, got %d", cfg.Steps)
	}
	if stable := s.StableDt(1.0); cfg.Dt > stable {
		return nil, fmt.Errorf("fem: Dt %g exceeds CFL limit %g", cfg.Dt, stable)
	}
	for _, r := range cfg.Receivers {
		if r < 0 || int(r) >= s.Mesh.NumNodes() {
			return nil, fmt.Errorf("fem: receiver node %d out of range", r)
		}
	}
	n := s.Mesh.NumNodes()
	dof := 3 * n
	u := make([]float64, dof)
	v := make([]float64, dof)
	ku := make([]float64, dof)

	srcNode := s.NearestNode(cfg.Source.Location)
	dir := cfg.Source.Direction.Normalize()
	if dir == (geom.Vec3{}) {
		dir = geom.V(0, 0, 1)
	}

	res := &SimResult{
		Steps:       cfg.Steps,
		Seismograms: make([][]float64, len(cfg.Receivers)),
	}
	for i := range res.Seismograms {
		res.Seismograms[i] = make([]float64, cfg.Steps)
	}

	start := time.Now()
	var smvp time.Duration
	for step := 0; step < cfg.Steps; step++ {
		t := float64(step) * cfg.Dt

		t0 := time.Now()
		s.K.MulVec(ku, u)
		smvp += time.Since(t0)
		res.FlopsSMVP += int64(2 * s.K.NNZ())

		amp := cfg.Source.Amplitude * Ricker(t, cfg.Source.PeakFreq, cfg.Source.Delay)
		fx, fy, fz := amp*dir.X, amp*dir.Y, amp*dir.Z

		for i := 0; i < n; i++ {
			invM := 1 / s.MassNode[i]
			var rhs [3]float64
			for d := 0; d < 3; d++ {
				k := 3*i + d
				f := -ku[k]
				if int32(i) == srcNode {
					switch d {
					case 0:
						f += fx
					case 1:
						f += fy
					default:
						f += fz
					}
				}
				rhs[d] = v[k] + cfg.Dt*(invM*f-cfg.Damping*v[k])
			}
			if cfg.Absorbers != nil {
				blk := &cfg.Absorbers.Blocks[i]
				if blk[0] != 0 || blk[4] != 0 || blk[8] != 0 {
					// Implicit treatment of the boundary damper:
					// (I + dt·M⁻¹·C)·v⁺ = rhs. Unconditionally stable
					// regardless of the damper magnitude.
					var a [9]float64
					s := cfg.Dt * invM
					for p := 0; p < 9; p++ {
						a[p] = s * blk[p]
					}
					a[0] += 1
					a[4] += 1
					a[8] += 1
					rhs = solve3x3(&a, rhs)
				}
			}
			for d := 0; d < 3; d++ {
				k := 3*i + d
				v[k] = rhs[d]
				u[k] += cfg.Dt * v[k]
			}
		}

		for r, node := range cfg.Receivers {
			k := 3 * int(node)
			res.Seismograms[r][step] = math.Sqrt(u[k]*u[k] + u[k+1]*u[k+1] + u[k+2]*u[k+2])
		}
		if step%16 == 0 || step == cfg.Steps-1 {
			for i := 0; i < dof; i += 7 { // sampled norm check, cheap
				if math.IsNaN(u[i]) || math.Abs(u[i]) > 1e12 {
					return nil, fmt.Errorf("fem: solution diverged at step %d", step)
				}
			}
		}
	}
	res.TotalSeconds = time.Since(start).Seconds()
	res.SMVPSeconds = smvp.Seconds()
	for i := 0; i < dof; i += 3 {
		m := math.Sqrt(u[i]*u[i] + u[i+1]*u[i+1] + u[i+2]*u[i+2])
		if m > res.MaxDisplacement {
			res.MaxDisplacement = m
		}
	}
	return res, nil
}
