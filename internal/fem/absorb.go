package fem

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/material"
)

// AbsorbingDampers builds Lysmer-Kuhlemeyer viscous dampers on the
// lateral and bottom faces of the domain, the standard way finite
// element earthquake codes (including the Quake applications) keep
// outgoing waves from reflecting off the artificial mesh boundary. For
// each boundary face the damper applies a traction −ρ·Vp·v_n on the
// normal velocity component and −ρ·Vs·v_t on the tangential ones,
// lumped to the face's nodes. The free surface (z = domain top) is left
// undamped.
//
// The result is a per-node 3×3 damping block to be used as C in
// M·ü + C·u̇ + K·u = f; SimConfig.NodeDampers carries it into Run.
type AbsorbingDampers struct {
	// Blocks[i] is the 3×3 damping matrix of node i (row-major), zero
	// for interior and free-surface nodes.
	Blocks [][9]float64
	// Faces is the number of boundary faces that received dampers.
	Faces int
}

// BuildAbsorbingDampers scans the mesh for boundary faces (triangles
// belonging to exactly one element) away from the free surface and
// assembles the lumped damper blocks.
func BuildAbsorbingDampers(s *System, mat *material.Model, surfaceZ float64) (*AbsorbingDampers, error) {
	if err := mat.Validate(); err != nil {
		return nil, err
	}
	m := s.Mesh
	type tri [3]int32
	// A face key maps to the number of adjacent elements.
	count := make(map[tri]int8, 4*m.NumElems())
	for _, tet := range m.Tets {
		for omit := 0; omit < 4; omit++ {
			var f tri
			k := 0
			for i := 0; i < 4; i++ {
				if i != omit {
					f[k] = tet[i]
					k++
				}
			}
			sort.Slice(f[:], func(a, b int) bool { return f[a] < f[b] })
			count[f]++
		}
	}
	out := &AbsorbingDampers{Blocks: make([][9]float64, m.NumNodes())}
	const eps = 1e-9
	for f, c := range count {
		if c != 1 {
			continue // interior face
		}
		a, b, cc := m.Coords[f[0]], m.Coords[f[1]], m.Coords[f[2]]
		// Skip the free surface: all three nodes at surfaceZ.
		if math.Abs(a.Z-surfaceZ) < eps && math.Abs(b.Z-surfaceZ) < eps && math.Abs(cc.Z-surfaceZ) < eps {
			continue
		}
		area := geom.TriangleArea(a, b, cc)
		if area == 0 {
			return nil, fmt.Errorf("fem: degenerate boundary face %v", f)
		}
		n := b.Sub(a).Cross(cc.Sub(a)).Normalize()
		centroid := a.Add(b).Add(cc).Scale(1.0 / 3)
		_, mu, rho := mat.Elastic(centroid)
		vs := math.Sqrt(mu / rho)
		vp := vs * mat.VpVsRatio
		// Damper per unit area: ρVp on normal, ρVs on tangent. As a
		// tensor: ρVs·I + ρ(Vp−Vs)·n⊗n. Lump one third of the face to
		// each node.
		w := area / 3
		cN := rho * (vp - vs) * w
		cT := rho * vs * w
		nn := [3]float64{n.X, n.Y, n.Z}
		for _, node := range f {
			blk := &out.Blocks[node]
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					blk[3*i+j] += cN * nn[i] * nn[j]
					if i == j {
						blk[3*i+j] += cT
					}
				}
			}
		}
		out.Faces++
	}
	return out, nil
}

// Apply computes f -= C·v for every damped node.
func (d *AbsorbingDampers) Apply(f, v []float64) {
	for i := range d.Blocks {
		blk := &d.Blocks[i]
		if blk[0] == 0 && blk[4] == 0 && blk[8] == 0 {
			continue
		}
		v0, v1, v2 := v[3*i], v[3*i+1], v[3*i+2]
		f[3*i] -= blk[0]*v0 + blk[1]*v1 + blk[2]*v2
		f[3*i+1] -= blk[3]*v0 + blk[4]*v1 + blk[5]*v2
		f[3*i+2] -= blk[6]*v0 + blk[7]*v1 + blk[8]*v2
	}
}
