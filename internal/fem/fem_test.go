package fem

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/octree"
)

var unitTet = [4]geom.Vec3{geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0), geom.V(0, 0, 1)}

func TestElementStiffnessSymmetric(t *testing.T) {
	blocks, vol, ok := ElementStiffness(unitTet, 2.0, 1.0)
	if !ok {
		t.Fatal("unit tet degenerate")
	}
	if math.Abs(vol-1.0/6) > 1e-15 {
		t.Errorf("vol = %g", vol)
	}
	// K_ab[i][j] == K_ba[j][i].
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					x := blocks[a][b][3*i+j]
					y := blocks[b][a][3*j+i]
					if math.Abs(x-y) > 1e-12*(1+math.Abs(x)) {
						t.Fatalf("asymmetry at (%d,%d)[%d,%d]: %g vs %g", a, b, i, j, x, y)
					}
				}
			}
		}
	}
}

func TestElementStiffnessDegenerate(t *testing.T) {
	flat := [4]geom.Vec3{geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0), geom.V(1, 1, 0)}
	if _, _, ok := ElementStiffness(flat, 1, 1); ok {
		t.Error("degenerate element accepted")
	}
	// Negatively oriented tets are rejected too.
	neg := [4]geom.Vec3{unitTet[1], unitTet[0], unitTet[2], unitTet[3]}
	if _, _, ok := ElementStiffness(neg, 1, 1); ok {
		t.Error("inverted element accepted")
	}
}

// applyElement computes y = K_e · x for the 12-DOF element vector x.
func applyElement(blocks *[4][4][9]float64, x *[12]float64) (y [12]float64) {
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					y[3*a+i] += blocks[a][b][3*i+j] * x[3*b+j]
				}
			}
		}
	}
	return y
}

func TestElementStiffnessRigidBodyModes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		var v [4]geom.Vec3
		for {
			for i := range v {
				v[i] = geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
			}
			if geom.TetVolume(v[0], v[1], v[2], v[3]) > 0.05 {
				break
			}
		}
		lambda := 0.5 + rng.Float64()*3
		mu := 0.5 + rng.Float64()*3
		blocks, _, ok := ElementStiffness(v, lambda, mu)
		if !ok {
			t.Fatal("unexpected degenerate element")
		}
		// Rigid translation: u = const.
		var trans [12]float64
		tx, ty, tz := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		for a := 0; a < 4; a++ {
			trans[3*a], trans[3*a+1], trans[3*a+2] = tx, ty, tz
		}
		y := applyElement(&blocks, &trans)
		for i, val := range y {
			if math.Abs(val) > 1e-9 {
				t.Fatalf("trial %d: translation not annihilated, y[%d]=%g", trial, i, val)
			}
		}
		// Infinitesimal rotation: u(x) = ω × x has zero strain.
		w := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		var rot [12]float64
		for a := 0; a < 4; a++ {
			u := w.Cross(v[a])
			rot[3*a], rot[3*a+1], rot[3*a+2] = u.X, u.Y, u.Z
		}
		y = applyElement(&blocks, &rot)
		for i, val := range y {
			if math.Abs(val) > 1e-8*(1+w.Norm()) {
				t.Fatalf("trial %d: rotation not annihilated, y[%d]=%g", trial, i, val)
			}
		}
		// Positive semidefinite: xᵀKx ≥ 0 for random x.
		var x [12]float64
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y = applyElement(&blocks, &x)
		var q float64
		for i := range x {
			q += x[i] * y[i]
		}
		if q < -1e-9 {
			t.Fatalf("trial %d: xᵀKx = %g < 0", trial, q)
		}
	}
}

func TestElementLumpedMass(t *testing.T) {
	m, err := ElementLumpedMass(unitTet, 2.4)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.4 * (1.0 / 6) / 4
	if math.Abs(m-want) > 1e-15 {
		t.Errorf("mass = %g, want %g", m, want)
	}
	flat := [4]geom.Vec3{unitTet[0], unitTet[1], unitTet[2], geom.V(1, 1, 0)}
	if _, err := ElementLumpedMass(flat, 1); err == nil {
		t.Error("degenerate element accepted")
	}
}

func TestRickerWavelet(t *testing.T) {
	// Peak value 1 at t = t0.
	if got := Ricker(0.3, 2, 0.3); got != 1 {
		t.Errorf("Ricker peak = %g", got)
	}
	// Symmetric about t0.
	if a, b := Ricker(0.2, 2, 0.3), Ricker(0.4, 2, 0.3); math.Abs(a-b) > 1e-15 {
		t.Errorf("Ricker asymmetric: %g vs %g", a, b)
	}
	// Decays to ~0 far away.
	if got := Ricker(3, 2, 0.3); math.Abs(got) > 1e-10 {
		t.Errorf("Ricker tail = %g", got)
	}
	// Zero crossings at t0 ± 1/(π·fp·√2).
	z := 0.3 + 1/(math.Pi*2*math.Sqrt2)
	if got := Ricker(z, 2, 0.3); math.Abs(got) > 1e-12 {
		t.Errorf("Ricker at zero crossing = %g", got)
	}
}

// smallSystem assembles a small graded mesh with the San Fernando
// material model scaled to the unit cube.
func smallSystem(t testing.TB) *System {
	t.Helper()
	cfg := octree.Config{Origin: geom.V(0, 0, 0), CubeSize: 1, Nx: 1, Ny: 1, Nz: 1, MaxDepth: 3}
	h := func(p geom.Vec3) float64 {
		return math.Max(0.15, 0.4*p.Dist(geom.V(0.5, 0.5, 0)))
	}
	tr, err := octree.Build(cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mesh.FromTree(tr)
	if err != nil {
		t.Fatal(err)
	}
	mat := material.SanFernando()
	mat.BasinCenter = geom.V(0.5, 0.5, 0)
	mat.BasinSemi = geom.V(0.4, 0.35, 0.3)
	sys, err := Assemble(m, mat)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestAssembleGlobalProperties(t *testing.T) {
	sys := smallSystem(t)
	if !sys.K.IsBlockSymmetric(1e-9) {
		t.Error("assembled K not symmetric")
	}
	// K annihilates global translations.
	n := sys.Mesh.NumNodes()
	x := make([]float64, 3*n)
	for i := 0; i < n; i++ {
		x[3*i], x[3*i+1], x[3*i+2] = 1, -2, 0.5
	}
	y := make([]float64, 3*n)
	sys.K.MulVec(y, x)
	for i, v := range y {
		if math.Abs(v) > 1e-8 {
			t.Fatalf("K·translation nonzero at %d: %g", i, v)
		}
	}
	// All lumped masses positive; total mass = ∫ρ dV.
	var total float64
	for _, m := range sys.MassNode {
		if m <= 0 {
			t.Fatal("non-positive nodal mass")
		}
		total += m
	}
	if total <= 0 {
		t.Fatal("zero total mass")
	}
	if sys.StableDt(0.5) <= 0 {
		t.Error("non-positive stable dt")
	}
}

func TestAssembleErrors(t *testing.T) {
	if _, err := Assemble(&mesh.Mesh{}, material.SanFernando()); err == nil {
		t.Error("empty mesh accepted")
	}
	bad := material.SanFernando()
	bad.RockVs = -1
	sys := smallSystem(t)
	if _, err := Assemble(sys.Mesh, bad); err == nil {
		t.Error("invalid material accepted")
	}
}

func TestRunPropagatesWave(t *testing.T) {
	sys := smallSystem(t)
	dt := sys.StableDt(0.5)
	src := sys.NearestNode(geom.V(0.5, 0.5, 0.1))
	rcv := sys.NearestNode(geom.V(0.9, 0.9, 0.9))
	res, err := sys.Run(SimConfig{
		Dt:    dt,
		Steps: 400,
		Source: PointSource{
			Location:  geom.V(0.5, 0.5, 0.1),
			Direction: geom.V(0, 0, 1),
			Amplitude: 1,
			PeakFreq:  2,
			Delay:     0.6,
		},
		Receivers: []int32{src, rcv},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDisplacement <= 0 {
		t.Fatal("no displacement produced")
	}
	// The wave must reach the far receiver with nonzero amplitude.
	var peakFar float64
	for _, v := range res.Seismograms[1] {
		if v > peakFar {
			peakFar = v
		}
	}
	if peakFar <= 0 {
		t.Error("wave never reached far receiver")
	}
	// And the source-adjacent receiver should move first and more.
	var peakNear float64
	for _, v := range res.Seismograms[0] {
		if v > peakNear {
			peakNear = v
		}
	}
	if peakNear <= peakFar {
		t.Errorf("near peak %g <= far peak %g", peakNear, peakFar)
	}
	if res.FlopsSMVP != int64(2*sys.K.NNZ())*int64(res.Steps) {
		t.Errorf("FlopsSMVP = %d", res.FlopsSMVP)
	}
	if res.SMVPShare() <= 0 || res.SMVPShare() >= 1 {
		t.Errorf("SMVP share = %g", res.SMVPShare())
	}
}

func TestRunRemainsBoundedWithDamping(t *testing.T) {
	sys := smallSystem(t)
	dt := sys.StableDt(0.4)
	res, err := sys.Run(SimConfig{
		Dt:      dt,
		Steps:   300,
		Damping: 0.5,
		Source: PointSource{
			Location:  geom.V(0.5, 0.5, 0),
			Direction: geom.V(1, 0, 0),
			Amplitude: 5,
			PeakFreq:  3,
			Delay:     0.4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDisplacement > 1e3 {
		t.Errorf("suspiciously large displacement %g", res.MaxDisplacement)
	}
}

func TestRunConfigErrors(t *testing.T) {
	sys := smallSystem(t)
	if _, err := sys.Run(SimConfig{Dt: 0, Steps: 10}); err == nil {
		t.Error("Dt=0 accepted")
	}
	if _, err := sys.Run(SimConfig{Dt: 1e-4, Steps: 0}); err == nil {
		t.Error("Steps=0 accepted")
	}
	if _, err := sys.Run(SimConfig{Dt: 100, Steps: 10}); err == nil {
		t.Error("unstable Dt accepted")
	}
	if _, err := sys.Run(SimConfig{Dt: sys.StableDt(0.5), Steps: 1, Receivers: []int32{-1}}); err == nil {
		t.Error("bad receiver accepted")
	}
}

func TestRunDivergenceDetected(t *testing.T) {
	sys := smallSystem(t)
	// Just past the CFL limit: the run should either error up front or
	// detect divergence. Use a dt slightly under the estimate times a
	// fudge to get instability but pass the guard.
	dt := sys.StableDt(1.0) * 0.999
	_, err := sys.Run(SimConfig{
		Dt:    dt,
		Steps: 4000,
		Source: PointSource{
			Location:  geom.V(0.5, 0.5, 0),
			Direction: geom.V(1, 1, 1),
			Amplitude: 1e6,
			PeakFreq:  5,
			Delay:     0.2,
		},
	})
	// Divergence is not guaranteed at exactly the estimate, so accept
	// either outcome, but a NaN result must never be silently returned.
	if err == nil {
		t.Log("run at ~CFL limit stayed stable (acceptable)")
	}
}

func TestNearestNode(t *testing.T) {
	sys := smallSystem(t)
	for _, p := range []geom.Vec3{geom.V(0, 0, 0), geom.V(1, 1, 1), geom.V(0.3, 0.7, 0.2)} {
		idx := sys.NearestNode(p)
		d := sys.Mesh.Coords[idx].Dist(p)
		for i, c := range sys.Mesh.Coords {
			if c.Dist(p) < d-1e-12 {
				t.Fatalf("node %d closer to %v than reported %d", i, p, idx)
			}
		}
	}
}

// TestEnergyBoundedAfterSource checks the discrete energy of the
// undamped scheme: once the Ricker source has died out, total energy
// (kinetic + strain) must stay essentially constant — the symplectic
// central-difference integrator neither creates nor destroys energy
// below the CFL limit.
func TestEnergyBoundedAfterSource(t *testing.T) {
	sys := smallSystem(t)
	dt := sys.StableDt(0.4)
	// Short, early source: delay 0.3 s, dead after ~0.6 s.
	steps := int(2.0 / dt)
	res, err := sys.Run(SimConfig{
		Dt:    dt,
		Steps: steps,
		Source: PointSource{
			Location:  geom.V(0.5, 0.5, 0.3),
			Direction: geom.V(0, 0, 1),
			Amplitude: 1,
			PeakFreq:  5,
			Delay:     0.3,
		},
		Receivers: []int32{sys.NearestNode(geom.V(0.5, 0.5, 0))},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Proxy: the receiver displacement magnitude must not grow
	// systematically after the source dies (no numerical instability,
	// no energy injection). Compare max over the middle third against
	// max over the final third.
	seis := res.Seismograms[0]
	third := len(seis) / 3
	maxIn := func(xs []float64) float64 {
		m := 0.0
		for _, v := range xs {
			if v > m {
				m = v
			}
		}
		return m
	}
	mid := maxIn(seis[third : 2*third])
	late := maxIn(seis[2*third:])
	if late > 1.5*mid {
		t.Errorf("late motion %g grows beyond mid-run %g: energy not bounded", late, mid)
	}
}
