package fem

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/sparse"
)

// System holds the assembled spatial discretization: the global
// stiffness matrix K (3n×3n in 3×3-block CSR form) and the lumped mass
// vector (one positive scalar per node, shared by its three DOF).
type System struct {
	Mesh *mesh.Mesh
	K    *sparse.BCSR
	// MassNode[i] is the lumped mass at node i; the scalar mass matrix
	// diagonal is MassNode repeated three times per node.
	MassNode []float64
	// MaxVp is the largest compressional wave speed encountered during
	// assembly, used for the stability estimate.
	MaxVp float64
	// MinEdge is the shortest element edge encountered, used for the
	// stability estimate.
	MinEdge float64
}

// Assemble builds the global stiffness and lumped mass for the mesh,
// sampling the material model at each element centroid (constant
// properties per element, the usual choice for constant-strain tets).
func Assemble(m *mesh.Mesh, mat *material.Model) (*System, error) {
	if err := mat.Validate(); err != nil {
		return nil, err
	}
	if m.NumElems() == 0 {
		return nil, fmt.Errorf("fem: empty mesh")
	}
	sys := &System{
		Mesh:     m,
		K:        sparse.NewBCSRStructure(m.NumNodes(), m.Edges()),
		MassNode: make([]float64, m.NumNodes()),
		MinEdge:  inf(),
	}
	for e := 0; e < m.NumElems(); e++ {
		t := m.Tets[e]
		var v [4]geom.Vec3
		for i := 0; i < 4; i++ {
			v[i] = m.Coords[t[i]]
		}
		lambda, mu, rho := mat.Elastic(m.Centroid(e))
		blocks, _, ok := ElementStiffness(v, lambda, mu)
		if !ok {
			return nil, fmt.Errorf("fem: degenerate element %d", e)
		}
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				sys.K.AddBlock(t[a], t[b], &blocks[a][b])
			}
		}
		mass, err := ElementLumpedMass(v, rho)
		if err != nil {
			return nil, fmt.Errorf("fem: element %d: %w", e, err)
		}
		for _, node := range t {
			sys.MassNode[node] += mass
		}
		// Track stability quantities.
		vs := mat.ShearVelocity(m.Centroid(e))
		if vp := vs * mat.VpVsRatio; vp > sys.MaxVp {
			sys.MaxVp = vp
		}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if d := v[i].Dist(v[j]); d < sys.MinEdge {
					sys.MinEdge = d
				}
			}
		}
	}
	for i, mss := range sys.MassNode {
		if mss <= 0 {
			return nil, fmt.Errorf("fem: node %d has non-positive lumped mass %g", i, mss)
		}
	}
	return sys, nil
}

// NumDOF returns the number of scalar degrees of freedom (3 per node).
func (s *System) NumDOF() int { return 3 * s.Mesh.NumNodes() }

// StableDt estimates the largest stable explicit time step by the CFL
// condition dt ≤ safety · h_min / V_p,max.
func (s *System) StableDt(safety float64) float64 {
	return safety * s.MinEdge / s.MaxVp
}

func inf() float64 { return 1e308 }
