package mesh

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
)

// magic identifies the binary mesh format; the version byte allows the
// layout to evolve.
var magic = [8]byte{'Q', 'M', 'E', 'S', 'H', '0', '0', '1'}

// Write serializes the mesh to w in a compact little-endian binary
// format: header, node coordinates (3 float64 each), then element node
// indices (4 int32 each).
func (m *Mesh) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(m.NumNodes()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(m.NumElems()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [24]byte
	for _, p := range m.Coords {
		binary.LittleEndian.PutUint64(buf[0:8], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(p.Y))
		binary.LittleEndian.PutUint64(buf[16:24], math.Float64bits(p.Z))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	var tbuf [16]byte
	for _, t := range m.Tets {
		for i, v := range t {
			binary.LittleEndian.PutUint32(tbuf[4*i:4*i+4], uint32(v))
		}
		if _, err := bw.Write(tbuf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a mesh written by Write.
func Read(r io.Reader) (*Mesh, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("mesh: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("mesh: bad magic %q", got[:])
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("mesh: reading header: %w", err)
	}
	nNodes := binary.LittleEndian.Uint64(hdr[0:8])
	nElems := binary.LittleEndian.Uint64(hdr[8:16])
	const maxEntities = 1 << 31
	if nNodes > maxEntities || nElems > maxEntities {
		return nil, fmt.Errorf("mesh: implausible sizes %d nodes, %d elements", nNodes, nElems)
	}
	// Let the slices grow as the data actually arrives instead of
	// trusting the header for a huge upfront allocation: a corrupt or
	// hostile header then fails with a read error after at most one
	// initial chunk, and append's geometric growth keeps honest large
	// files linear.
	const chunk = 1 << 16
	initial := func(n uint64) int {
		if n > chunk {
			return chunk
		}
		return int(n)
	}
	m := &Mesh{
		Coords: make([]geom.Vec3, 0, initial(nNodes)),
		Tets:   make([][4]int32, 0, initial(nElems)),
	}
	var buf [24]byte
	for i := uint64(0); i < nNodes; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("mesh: reading node %d: %w", i, err)
		}
		m.Coords = append(m.Coords, geom.V(
			math.Float64frombits(binary.LittleEndian.Uint64(buf[0:8])),
			math.Float64frombits(binary.LittleEndian.Uint64(buf[8:16])),
			math.Float64frombits(binary.LittleEndian.Uint64(buf[16:24]))))
	}
	var tbuf [16]byte
	for i := uint64(0); i < nElems; i++ {
		if _, err := io.ReadFull(br, tbuf[:]); err != nil {
			return nil, fmt.Errorf("mesh: reading element %d: %w", i, err)
		}
		var t [4]int32
		for j := 0; j < 4; j++ {
			t[j] = int32(binary.LittleEndian.Uint32(tbuf[4*j : 4*j+4]))
		}
		m.Tets = append(m.Tets, t)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
