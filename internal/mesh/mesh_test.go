package mesh

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/geom"
)

// twoTets builds a tiny hand-made mesh: two tetrahedra sharing a face.
func twoTets() *Mesh {
	return &Mesh{
		Coords: []geom.Vec3{
			geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0),
			geom.V(0, 0, 1), geom.V(1, 1, 1),
		},
		Tets: [][4]int32{
			{0, 1, 2, 3},
			{1, 2, 3, 4}, // shares face (1,2,3)
		},
	}
}

func TestEdgesUniqueSorted(t *testing.T) {
	m := twoTets()
	edges := m.Edges()
	// Nodes {0..4}; edges: all pairs of {0,1,2,3} (6) plus 4-{1,2,3} (3).
	want := [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4},
	}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
	if m.NumEdges() != 9 {
		t.Errorf("NumEdges = %d", m.NumEdges())
	}
}

func TestEdgesCached(t *testing.T) {
	m := twoTets()
	a := m.Edges()
	b := m.Edges()
	if &a[0] != &b[0] {
		t.Error("Edges not cached")
	}
}

func TestAdjacency(t *testing.T) {
	m := twoTets()
	adj := m.Adjacency()
	wantDeg := []int{3, 4, 4, 4, 3}
	for i, w := range wantDeg {
		if got := adj.Degree(i); got != w {
			t.Errorf("degree(%d) = %d, want %d", i, got, w)
		}
	}
	// Neighbor lists sorted and symmetric.
	for i := 0; i < m.NumNodes(); i++ {
		ns := adj.Neighbors(i)
		for k, nb := range ns {
			if k > 0 && ns[k-1] >= nb {
				t.Errorf("neighbors of %d not strictly sorted: %v", i, ns)
			}
			found := false
			for _, back := range adj.Neighbors(int(nb)) {
				if back == int32(i) {
					found = true
				}
			}
			if !found {
				t.Errorf("adjacency not symmetric: %d -> %d", i, nb)
			}
		}
	}
}

func TestCentroidVolume(t *testing.T) {
	m := twoTets()
	if got := m.Volume(0); math.Abs(got-1.0/6) > 1e-15 {
		t.Errorf("Volume(0) = %g", got)
	}
	want := geom.V(0.25, 0.25, 0.25)
	if got := m.Centroid(0); got.Dist(want) > 1e-15 {
		t.Errorf("Centroid(0) = %v", got)
	}
}

func TestValidateCatchesBadMesh(t *testing.T) {
	m := twoTets()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid mesh rejected: %v", err)
	}
	bad := twoTets()
	bad.Tets[0][1] = 99
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range node accepted")
	}
	flipped := twoTets()
	flipped.Tets[0] = [4]int32{1, 0, 2, 3} // negative volume
	if err := flipped.Validate(); err == nil {
		t.Error("negative-volume element accepted")
	}
}

func TestStatsEmptyMesh(t *testing.T) {
	m := &Mesh{}
	s := m.ComputeStats()
	if s.Nodes != 0 || s.Elems != 0 || s.AvgDegree != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	m := twoTets()
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != m.NumNodes() || got.NumElems() != m.NumElems() {
		t.Fatalf("roundtrip sizes: %d/%d", got.NumNodes(), got.NumElems())
	}
	for i := range m.Coords {
		if got.Coords[i] != m.Coords[i] {
			t.Errorf("node %d = %v, want %v", i, got.Coords[i], m.Coords[i])
		}
	}
	for i := range m.Tets {
		if got.Tets[i] != m.Tets[i] {
			t.Errorf("tet %d = %v, want %v", i, got.Tets[i], m.Tets[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a mesh file at all"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Correct magic but truncated body.
	var buf bytes.Buffer
	m := twoTets()
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input accepted")
	}
}
