package mesh

import (
	"strings"
	"testing"
)

func TestWriteVTK(t *testing.T) {
	m := twoTets()
	scal := []float64{0, 1, 2, 3, 4}
	vec := make([]float64, 15)
	for i := range vec {
		vec[i] = float64(i) * 0.5
	}
	var sb strings.Builder
	err := m.WriteVTK(&sb, "test mesh",
		VTKField{Name: "height", Data: scal},
		VTKField{Name: "disp", Data: vec})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"test mesh",
		"DATASET UNSTRUCTURED_GRID",
		"POINTS 5 double",
		"CELLS 2 10",
		"CELL_TYPES 2",
		"POINT_DATA 5",
		"SCALARS height double 1",
		"VECTORS disp double",
		"4 0 1 2 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
	// Two VTK_TETRA cell type lines after the CELL_TYPES header.
	_, after, found := strings.Cut(out, "CELL_TYPES 2\n")
	if !found || !strings.HasPrefix(after, "10\n10\n") {
		t.Error("missing VTK_TETRA cell types")
	}
}

func TestWriteVTKDefaults(t *testing.T) {
	m := twoTets()
	var sb strings.Builder
	if err := m.WriteVTK(&sb, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "quake mesh") {
		t.Error("default title missing")
	}
	if strings.Contains(sb.String(), "POINT_DATA") {
		t.Error("POINT_DATA without fields")
	}
}

func TestWriteVTKErrors(t *testing.T) {
	m := twoTets()
	var sb strings.Builder
	if err := m.WriteVTK(&sb, "t", VTKField{Name: "", Data: make([]float64, 5)}); err == nil {
		t.Error("unnamed field accepted")
	}
	if err := m.WriteVTK(&sb, "t", VTKField{Name: "x", Data: make([]float64, 7)}); err == nil {
		t.Error("wrong-length field accepted")
	}
}
