package mesh

import (
	"bytes"
	"testing"
)

// FuzzRead hardens the binary mesh reader: arbitrary input must yield
// either a valid mesh or an error — never a panic, never an invalid
// mesh. Run the fuzzer with `go test -fuzz FuzzRead ./internal/mesh`;
// the seed corpus (a valid file and a few mutations) runs under plain
// `go test`.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if err := twoTets().Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("QMESH001 garbage"))
	f.Add(valid[:len(valid)-7]) // truncated
	// Header claims absurd sizes.
	corrupt := append([]byte(nil), valid...)
	for i := 8; i < 16; i++ {
		corrupt[i] = 0xff
	}
	f.Add(corrupt)
	// Element index out of range.
	badIdx := append([]byte(nil), valid...)
	badIdx[len(badIdx)-1] = 0x7f
	f.Add(badIdx)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parses must satisfy the structural invariants.
		if err := m.Validate(); err != nil {
			t.Fatalf("Read returned an invalid mesh: %v", err)
		}
	})
}
