package mesh

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/octree"
)

func buildTree(t *testing.T, cfg octree.Config, h octree.Sizing) *octree.Tree {
	t.Helper()
	tr, err := octree.Build(cfg, h)
	if err != nil {
		t.Fatalf("octree.Build: %v", err)
	}
	return tr
}

func genMesh(t *testing.T, cfg octree.Config, h octree.Sizing) *Mesh {
	t.Helper()
	m, err := FromTree(buildTree(t, cfg, h))
	if err != nil {
		t.Fatalf("FromTree: %v", err)
	}
	return m
}

func unitCfg(depth int) octree.Config {
	return octree.Config{Origin: geom.V(0, 0, 0), CubeSize: 1, Nx: 1, Ny: 1, Nz: 1, MaxDepth: depth}
}

// gradedCfg returns a mesh with a genuine coarse/fine interface.
func gradedMesh(t *testing.T) *Mesh {
	h := func(p geom.Vec3) float64 {
		d := p.Dist(geom.V(0.1, 0.2, 0.3))
		return math.Max(0.04, 0.4*d)
	}
	return genMesh(t, unitCfg(6), h)
}

func TestSingleCubeMesh(t *testing.T) {
	m := genMesh(t, unitCfg(0), func(geom.Vec3) float64 { return 10 })
	// One cube: 8 corners + 6 face centers + 1 cell center = 15 nodes;
	// 6 faces × 4 triangles = 24 tets.
	if m.NumNodes() != 15 {
		t.Errorf("nodes = %d, want 15", m.NumNodes())
	}
	if m.NumElems() != 24 {
		t.Errorf("elems = %d, want 24", m.NumElems())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	s := m.ComputeStats()
	if math.Abs(s.TotalVolume-1) > 1e-12 {
		t.Errorf("total volume = %g, want 1", s.TotalVolume)
	}
}

func TestUniformMeshVolume(t *testing.T) {
	m := genMesh(t, unitCfg(3), func(geom.Vec3) float64 { return 0.3 })
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	s := m.ComputeStats()
	if math.Abs(s.TotalVolume-1) > 1e-9 {
		t.Errorf("total volume = %g, want 1", s.TotalVolume)
	}
	if s.Elems != 64*24 {
		t.Errorf("elems = %d, want %d", s.Elems, 64*24)
	}
}

func TestGradedMeshConforming(t *testing.T) {
	m := gradedMesh(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	checkConforming(t, m, unitCfg(6).Domain())
	s := m.ComputeStats()
	if math.Abs(s.TotalVolume-1) > 1e-9 {
		t.Errorf("total volume = %g, want 1 (gap or overlap in mesh)", s.TotalVolume)
	}
}

func TestAnisotropicDomainConforming(t *testing.T) {
	cfg := octree.Config{Origin: geom.V(0, 0, 0), CubeSize: 2, Nx: 3, Ny: 2, Nz: 1, MaxDepth: 4}
	h := func(p geom.Vec3) float64 { return math.Max(0.3, p.X*0.4) }
	m := genMesh(t, cfg, h)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	checkConforming(t, m, cfg.Domain())
	s := m.ComputeStats()
	if want := cfg.Domain().Volume(); math.Abs(s.TotalVolume-want) > 1e-9*want {
		t.Errorf("total volume = %g, want %g", s.TotalVolume, want)
	}
}

// checkConforming verifies the fundamental mesh invariant: every
// triangular face is shared by exactly two tetrahedra, except boundary
// faces (on the domain surface), which belong to exactly one.
func checkConforming(t *testing.T, m *Mesh, domain geom.Box) {
	t.Helper()
	type tri [3]int32
	count := make(map[tri]int, 4*len(m.Tets))
	for _, tet := range m.Tets {
		for omit := 0; omit < 4; omit++ {
			var f tri
			k := 0
			for i := 0; i < 4; i++ {
				if i != omit {
					f[k] = tet[i]
					k++
				}
			}
			sort.Slice(f[:], func(a, b int) bool { return f[a] < f[b] })
			count[f]++
		}
	}
	const eps = 1e-9
	onBoundary := func(f tri) bool {
		for axis := 0; axis < 3; axis++ {
			for _, plane := range []float64{domain.Lo.Component(axis), domain.Hi.Component(axis)} {
				ok := true
				for _, v := range f {
					if math.Abs(m.Coords[v].Component(axis)-plane) > eps {
						ok = false
						break
					}
				}
				if ok {
					return true
				}
			}
		}
		return false
	}
	bad := 0
	for f, c := range count {
		switch c {
		case 2:
			// interior face, fine
		case 1:
			if !onBoundary(f) {
				bad++
				if bad <= 5 {
					t.Errorf("interior face %v (%v %v %v) has only one element",
						f, m.Coords[f[0]], m.Coords[f[1]], m.Coords[f[2]])
				}
			}
		default:
			bad++
			if bad <= 5 {
				t.Errorf("face %v shared by %d elements", f, c)
			}
		}
	}
	if bad > 5 {
		t.Errorf("... and %d more non-conforming faces", bad-5)
	}
}

func TestMeshDeterministic(t *testing.T) {
	a := gradedMesh(t)
	b := gradedMesh(t)
	if a.NumNodes() != b.NumNodes() || a.NumElems() != b.NumElems() {
		t.Fatalf("sizes differ: (%d,%d) vs (%d,%d)",
			a.NumNodes(), a.NumElems(), b.NumNodes(), b.NumElems())
	}
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			t.Fatalf("node %d differs", i)
		}
	}
	for i := range a.Tets {
		if a.Tets[i] != b.Tets[i] {
			t.Fatalf("element %d differs", i)
		}
	}
}

func TestMeshDegreeInExpectedRange(t *testing.T) {
	// The paper reports ~13 neighbors per node on average for its
	// unstructured meshes. Our octree meshes should land in the same
	// regime (roughly 10–17).
	m := gradedMesh(t)
	s := m.ComputeStats()
	if s.AvgDegree < 10 || s.AvgDegree > 17 {
		t.Errorf("average degree = %g, want ~13 (10..17)", s.AvgDegree)
	}
	// Nonzeros per row ≈ 3·(degree+1); the paper quotes ~42.
	if s.NnzPerRow < 33 || s.NnzPerRow > 54 {
		t.Errorf("nnz/row = %g, want ~42 (33..54)", s.NnzPerRow)
	}
}

func TestMeshQuality(t *testing.T) {
	m := gradedMesh(t)
	s := m.ComputeStats()
	if s.MinVolume <= 0 {
		t.Errorf("min volume = %g, want positive", s.MinVolume)
	}
	// Fan tets of a cube have bounded aspect ratio; grading makes it a
	// bit worse but it must stay far from degenerate.
	if s.MaxAspect > 12 {
		t.Errorf("max aspect ratio = %g, suspiciously bad", s.MaxAspect)
	}
}

func TestLatticeBudgetExceeded(t *testing.T) {
	// A geometrically graded point feature reaches depth 18 with only
	// O(depth) leaves, but 16 root cubes at depth 18 need lattice
	// coordinates up to 16·2^19 = 2^23, beyond the 21-bit key budget.
	cfg := octree.Config{Origin: geom.V(0, 0, 0), CubeSize: 1, Nx: 16, Ny: 1, Nz: 1, MaxDepth: 18}
	hmin := 1.0 / float64(int64(1)<<18)
	tr := buildTree(t, cfg, func(p geom.Vec3) float64 {
		return math.Max(hmin, 0.5*p.Norm())
	})
	if tr.MaxLeafDepth() != 18 {
		t.Skip("tree did not reach depth 18")
	}
	if _, err := FromTree(tr); err == nil {
		t.Error("expected lattice budget error")
	}
}

// TestQuickRandomMeshesConforming drives the full mesher with random
// graded sizings and verifies conformity, positive volumes, and exact
// volume cover on each.
func TestQuickRandomMeshesConforming(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := octree.Config{
			Origin:   geom.V(0, 0, 0),
			CubeSize: 1,
			Nx:       1 + rng.Intn(2),
			Ny:       1 + rng.Intn(2),
			Nz:       1,
			MaxDepth: 4,
		}
		target := geom.V(rng.Float64()*float64(cfg.Nx), rng.Float64()*float64(cfg.Ny), rng.Float64())
		strength := 0.2 + rng.Float64()*0.5
		m := genMesh(t, cfg, func(p geom.Vec3) float64 {
			return math.Max(1.0/16, strength*p.Dist(target))
		})
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkConforming(t, m, cfg.Domain())
		s := m.ComputeStats()
		if want := cfg.Domain().Volume(); math.Abs(s.TotalVolume-want) > 1e-9*want {
			t.Fatalf("seed %d: volume %g, want %g", seed, s.TotalVolume, want)
		}
	}
}
