package mesh

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestSmoothKeepsMeshValid(t *testing.T) {
	m := gradedMesh(t)
	before := m.ComputeStats()
	moved := m.Smooth(3, 0.5)
	if moved == 0 {
		t.Fatal("no nodes moved")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("smoothing broke the mesh: %v", err)
	}
	after := m.ComputeStats()
	// Topology untouched.
	if after.Nodes != before.Nodes || after.Elems != before.Elems || after.Edges != before.Edges {
		t.Fatal("smoothing changed topology")
	}
	// Domain preserved: total volume unchanged (boundary fixed).
	if math.Abs(after.TotalVolume-before.TotalVolume) > 1e-9*before.TotalVolume {
		t.Fatalf("volume changed: %g -> %g", before.TotalVolume, after.TotalVolume)
	}
	// Quality not catastrophically worse (usually better).
	if after.MaxAspect > before.MaxAspect*1.5 {
		t.Errorf("aspect degraded: %g -> %g", before.MaxAspect, after.MaxAspect)
	}
	conformCfg := unitCfg(6)
	checkConforming(t, m, conformCfg.Domain())
}

func TestSmoothBoundaryFixed(t *testing.T) {
	m := gradedMesh(t)
	bnd := m.boundaryNodes()
	saved := make([]geom.Vec3, 0)
	idx := make([]int, 0)
	for v, b := range bnd {
		if b {
			saved = append(saved, m.Coords[v])
			idx = append(idx, v)
		}
	}
	if len(idx) == 0 {
		t.Fatal("no boundary nodes detected")
	}
	m.Smooth(2, 0.7)
	for k, v := range idx {
		if m.Coords[v] != saved[k] {
			t.Fatalf("boundary node %d moved", v)
		}
	}
}

func TestSmoothNoOpCases(t *testing.T) {
	m := gradedMesh(t)
	if got := m.Smooth(0, 0.5); got != 0 {
		t.Errorf("passes=0 moved %d", got)
	}
	if got := m.Smooth(1, 0); got != 0 {
		t.Errorf("relax=0 moved %d", got)
	}
	if got := m.Smooth(1, 1.5); got != 0 {
		t.Errorf("relax>1 moved %d", got)
	}
	// A single-cube mesh has only one interior node (the center) whose
	// neighbor centroid is itself, so smoothing converges immediately.
	single := genMesh(t, unitCfg(0), func(geom.Vec3) float64 { return 10 })
	single.Smooth(1, 0.5)
	if err := single.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBoundaryNodesOnCube(t *testing.T) {
	m := genMesh(t, unitCfg(1), func(geom.Vec3) float64 { return 0.6 })
	bnd := m.boundaryNodes()
	const eps = 1e-12
	for v, b := range bnd {
		p := m.Coords[v]
		onSurf := p.X < eps || p.X > 1-eps || p.Y < eps || p.Y > 1-eps || p.Z < eps || p.Z > 1-eps
		if b != onSurf {
			t.Fatalf("node %d at %v: boundary=%v, surface=%v", v, p, b, onSurf)
		}
	}
}
