package mesh

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// RCMOrder computes a reverse Cuthill-McKee ordering of the mesh nodes:
// a breadth-first traversal from a pseudo-peripheral node, visiting
// neighbors in increasing-degree order, then reversed. RCM clusters
// each row's nonzero columns near the diagonal, which improves the
// cache behavior of the SMVP — the kind of ordering effect the Spark98
// study measured on these meshes. The result is a permutation perm
// where perm[new] = old node index.
func (m *Mesh) RCMOrder() []int32 {
	adj := m.Adjacency()
	n := m.NumNodes()
	perm := make([]int32, 0, n)
	visited := make([]bool, n)
	// Process every connected component (conforming meshes of a box are
	// connected, but stay safe).
	for seed := 0; seed < n; seed++ {
		if visited[seed] {
			continue
		}
		start := pseudoPeripheralNode(adj, int32(seed))
		visited[start] = true
		queue := []int32{start}
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			perm = append(perm, v)
			nbrs := append([]int32(nil), adj.Neighbors(int(v))...)
			sort.Slice(nbrs, func(a, b int) bool {
				da, db := adj.Degree(int(nbrs[a])), adj.Degree(int(nbrs[b]))
				if da != db {
					return da < db
				}
				return nbrs[a] < nbrs[b]
			})
			for _, u := range nbrs {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	// Reverse.
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// pseudoPeripheralNode runs two BFS sweeps to find a node of nearly
// maximal eccentricity.
func pseudoPeripheralNode(adj *Adjacency, seed int32) int32 {
	far := bfsLast(adj, seed)
	return bfsLast(adj, far)
}

func bfsLast(adj *Adjacency, start int32) int32 {
	n := len(adj.Off) - 1
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []int32{start}
	last := start
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		last = v
		for _, u := range adj.Neighbors(int(v)) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return last
}

// Permute returns a new mesh with nodes renumbered by perm (perm[new] =
// old): coordinates are reordered and element node indices remapped.
// Element order and orientation are unchanged.
func (m *Mesh) Permute(perm []int32) (*Mesh, error) {
	n := m.NumNodes()
	if len(perm) != n {
		return nil, fmt.Errorf("mesh: permutation length %d, want %d", len(perm), n)
	}
	inv := make([]int32, n)
	seen := make([]bool, n)
	for newIdx, old := range perm {
		if old < 0 || int(old) >= n {
			return nil, fmt.Errorf("mesh: permutation entry %d out of range", old)
		}
		if seen[old] {
			return nil, fmt.Errorf("mesh: permutation repeats node %d", old)
		}
		seen[old] = true
		inv[old] = int32(newIdx)
	}
	out := &Mesh{
		Coords: make([]geom.Vec3, n),
		Tets:   make([][4]int32, len(m.Tets)),
	}
	for newIdx, old := range perm {
		out.Coords[newIdx] = m.Coords[old]
	}
	for e, t := range m.Tets {
		for i := 0; i < 4; i++ {
			out.Tets[e][i] = inv[t[i]]
		}
	}
	return out, nil
}

// Bandwidth returns the matrix bandwidth induced by the current node
// numbering: max |i − j| over mesh edges. Smaller is cache-friendlier.
func (m *Mesh) Bandwidth() int32 {
	var bw int32
	for _, e := range m.Edges() {
		if d := e[1] - e[0]; d > bw {
			bw = d
		}
	}
	return bw
}

// AvgBandwidth returns the mean |i − j| over mesh edges, a smoother
// locality measure than the max.
func (m *Mesh) AvgBandwidth() float64 {
	edges := m.Edges()
	if len(edges) == 0 {
		return 0
	}
	var sum float64
	for _, e := range edges {
		sum += float64(e[1] - e[0])
	}
	return sum / float64(len(edges))
}
