package mesh

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/octree"
)

// FromTree generates a conforming tetrahedral mesh from a balanced
// octree.
//
// Construction: every leaf cube contributes a center vertex; every
// *minimal face* — a face of the finer of the two cells sharing it (or
// the cell's own face on the boundary) — contributes a face-center
// vertex. Each minimal face is triangulated as a fan from its face
// center over its boundary ring, where the ring consists of the four
// face corners plus the midpoint of any face edge that is itself a
// corner of some leaf (a "hanging" vertex induced by finer cells around
// that edge). Each triangle is then joined to the adjacent cell centers,
// yielding tetrahedra.
//
// Because the ring of a minimal face is a pure function of the global
// leaf-corner set, both cells sharing a face triangulate it identically,
// so the mesh is conforming by construction. All vertices live on an
// integer lattice at resolution 2^(maxDepth+1) per root cube, making
// deduplication exact.
func FromTree(t *octree.Tree) (*Mesh, error) {
	sp := obs.StartSpan(obs.TrackDriver, "setup", "mesh.generate")
	defer sp.End()
	cfg := t.Config()
	maxD := t.MaxLeafDepth()
	// Lattice resolution: 2^(maxD+1) per depth-0 cube (so cell centers
	// and face midpoints are lattice points at every depth).
	shiftBase := uint(maxD + 1)
	maxCoord := int64(cfg.Nx) << shiftBase
	if c := int64(cfg.Ny) << shiftBase; c > maxCoord {
		maxCoord = c
	}
	if c := int64(cfg.Nz) << shiftBase; c > maxCoord {
		maxCoord = c
	}
	if maxCoord >= 1<<21 {
		return nil, fmt.Errorf("mesh: lattice resolution %d exceeds 21-bit key budget (reduce depth or grid)", maxCoord)
	}

	leaves := t.Leaves()
	g := &generator{
		tree:  t,
		scale: cfg.CubeSize / float64(int64(1)<<shiftBase),
		vid:   make(map[uint64]int32, 4*len(leaves)),
	}

	// Phase 1: register all leaf corner vertices so ring construction
	// can test "is this midpoint a corner of some leaf?" exactly.
	g.corner = make(map[uint64]struct{}, 2*len(leaves))
	for _, c := range leaves {
		lo, size := g.cellLattice(c)
		for i := 0; i < 8; i++ {
			p := lat{
				lo[0] + int64(i&1)*size,
				lo[1] + int64((i>>1)&1)*size,
				lo[2] + int64((i>>2)&1)*size,
			}
			g.corner[p.key()] = struct{}{}
		}
	}
	// Assign corner vertex indices in deterministic leaf order.
	for _, c := range leaves {
		lo, size := g.cellLattice(c)
		for i := 0; i < 8; i++ {
			g.vertex(lat{
				lo[0] + int64(i&1)*size,
				lo[1] + int64((i>>1)&1)*size,
				lo[2] + int64((i>>2)&1)*size,
			})
		}
	}

	// Phase 2: emit tetrahedra.
	for _, c := range leaves {
		g.emitCell(c)
	}
	m := &Mesh{Coords: g.coords, Tets: g.tets}
	obs.GetCounter("mesh.generate.calls").Add(1)
	obs.GetCounter("mesh.generate.nodes").Add(int64(len(m.Coords)))
	obs.GetCounter("mesh.generate.elems").Add(int64(len(m.Tets)))
	return m, nil
}

// lat is an integer lattice point.
type lat [3]int64

func (p lat) key() uint64 {
	return uint64(p[0]) | uint64(p[1])<<21 | uint64(p[2])<<42
}

type generator struct {
	tree   *octree.Tree
	scale  float64 // physical length of one lattice unit
	corner map[uint64]struct{}
	vid    map[uint64]int32
	coords []geom.Vec3
	tets   [][4]int32
}

// cellLattice returns the lattice coordinates of the cell's minimum
// corner and its lattice edge length.
func (g *generator) cellLattice(c octree.Cell) (lo lat, size int64) {
	shift := uint(g.tree.MaxLeafDepth() + 1 - int(c.Depth))
	size = int64(1) << shift
	return lat{int64(c.X) << shift, int64(c.Y) << shift, int64(c.Z) << shift}, size
}

// vertex returns the index for the lattice point, creating it if new.
func (g *generator) vertex(p lat) int32 {
	k := p.key()
	if id, ok := g.vid[k]; ok {
		return id
	}
	id := int32(len(g.coords))
	g.vid[k] = id
	origin := g.tree.Config().Origin
	g.coords = append(g.coords, origin.Add(geom.V(
		float64(p[0])*g.scale, float64(p[1])*g.scale, float64(p[2])*g.scale)))
	return id
}

// faceRect describes one square face on the lattice: axis is the normal
// direction, plane the lattice coordinate along that axis, (u0, v0) the
// minimum corner in the two tangential axes (ordered by axis index), and
// size the lattice edge length.
type faceRect struct {
	axis   int
	plane  int64
	u0, v0 int64
	size   int64
}

// point maps tangential coordinates (u, v) on the face to a lattice point.
func (f faceRect) point(u, v int64) lat {
	switch f.axis {
	case 0:
		return lat{f.plane, u, v}
	case 1:
		return lat{u, f.plane, v}
	default:
		return lat{u, v, f.plane}
	}
}

// cellFace returns the lattice rectangle of the given face of cell c.
func (g *generator) cellFace(c octree.Cell, face int) faceRect {
	lo, size := g.cellLattice(c)
	axis := face / 2
	plane := lo[axis]
	if face&1 == 1 {
		plane += size
	}
	var u0, v0 int64
	switch axis {
	case 0:
		u0, v0 = lo[1], lo[2]
	case 1:
		u0, v0 = lo[0], lo[2]
	default:
		u0, v0 = lo[0], lo[1]
	}
	return faceRect{axis: axis, plane: plane, u0: u0, v0: v0, size: size}
}

// emitCell generates the tetrahedra that connect the cell center of c to
// the triangulations of the minimal faces on each of its six sides.
func (g *generator) emitCell(c octree.Cell) {
	lo, size := g.cellLattice(c)
	half := size / 2
	center := g.vertex(lat{lo[0] + half, lo[1] + half, lo[2] + half})
	for face := 0; face < octree.NumFaces; face++ {
		ns := g.tree.FaceNeighbors(c, face)
		if len(ns) == 4 {
			// Finer side: the minimal faces are the neighbors' faces.
			for _, n := range ns {
				g.emitFace(center, g.cellFace(n, face^1))
			}
			continue
		}
		g.emitFace(center, g.cellFace(c, face))
	}
}

// emitFace fans the minimal face from its center vertex and joins each
// resulting triangle to the cell-center vertex, producing tetrahedra.
func (g *generator) emitFace(center int32, f faceRect) {
	half := f.size / 2
	fc := g.vertex(f.point(f.u0+half, f.v0+half))
	ring := g.faceRing(f)
	for i := range ring {
		a := ring[i]
		b := ring[(i+1)%len(ring)]
		g.emitTet(center, fc, a, b)
	}
}

// faceRing returns the boundary vertex indices of the face in cyclic
// order: corners plus any hanging midpoints (lattice points that are
// corners of some leaf).
func (g *generator) faceRing(f faceRect) []int32 {
	s := f.size
	h := s / 2
	// Cyclic corner coordinates.
	cu := [4]int64{f.u0, f.u0 + s, f.u0 + s, f.u0}
	cv := [4]int64{f.v0, f.v0, f.v0 + s, f.v0 + s}
	// Midpoint coordinates between corner i and corner i+1.
	mu := [4]int64{f.u0 + h, f.u0 + s, f.u0 + h, f.u0}
	mv := [4]int64{f.v0, f.v0 + h, f.v0 + s, f.v0 + h}
	ring := make([]int32, 0, 8)
	for i := 0; i < 4; i++ {
		ring = append(ring, g.vertex(f.point(cu[i], cv[i])))
		mp := f.point(mu[i], mv[i])
		if _, ok := g.corner[mp.key()]; ok {
			ring = append(ring, g.vertex(mp))
		}
	}
	return ring
}

// emitTet appends the tetrahedron, flipping two vertices if needed so
// the signed volume is positive.
func (g *generator) emitTet(a, b, c, d int32) {
	vol := geom.TetVolume(g.coords[a], g.coords[b], g.coords[c], g.coords[d])
	if vol < 0 {
		c, d = d, c
	}
	g.tets = append(g.tets, [4]int32{a, b, c, d})
}
