// Package mesh provides unstructured tetrahedral meshes: a deterministic
// conforming mesher over balanced octrees (package octree), plus the
// connectivity queries the rest of the system needs — element node
// lists, unique edges, and node adjacency in CSR form.
//
// The mesher substitutes for the Delaunay-based Archimedes tool chain
// used by the Quake project. What matters for the paper's analysis is
// not the exact triangulation but the family of graph properties it
// induces: unstructured connectivity, average nodal degree around 13,
// spatial grading by the sizing function, and O(n^(2/3)) surface-to-
// volume scaling of partition interfaces. The octree mesher reproduces
// those properties with exact integer-lattice vertex identification and
// no floating-point predicates.
package mesh

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Mesh is an unstructured tetrahedral mesh. Nodes are numbered from 0;
// each element lists its four node indices with positive orientation
// (positive signed volume).
type Mesh struct {
	Coords []geom.Vec3
	Tets   [][4]int32

	// edges caches the result of Edges.
	edges [][2]int32
}

// NumNodes returns the number of mesh nodes.
func (m *Mesh) NumNodes() int { return len(m.Coords) }

// NumElems returns the number of tetrahedral elements.
func (m *Mesh) NumElems() int { return len(m.Tets) }

// Centroid returns the centroid of element e.
func (m *Mesh) Centroid(e int) geom.Vec3 {
	t := m.Tets[e]
	return geom.TetCentroid(m.Coords[t[0]], m.Coords[t[1]], m.Coords[t[2]], m.Coords[t[3]])
}

// Volume returns the signed volume of element e.
func (m *Mesh) Volume(e int) float64 {
	t := m.Tets[e]
	return geom.TetVolume(m.Coords[t[0]], m.Coords[t[1]], m.Coords[t[2]], m.Coords[t[3]])
}

// Edges returns the unique undirected node-to-node edges of the mesh
// (pairs with first index < second), sorted lexicographically. The
// result is computed once and cached; callers must not modify it.
//
// Every pair of nodes that appear together in some element is connected:
// these are exactly the node pairs for which the stiffness matrix K has
// an off-diagonal 3×3 block.
func (m *Mesh) Edges() [][2]int32 {
	if m.edges != nil {
		return m.edges
	}
	packed := make([]uint64, 0, 6*len(m.Tets))
	for _, t := range m.Tets {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				a, b := t[i], t[j]
				if a > b {
					a, b = b, a
				}
				packed = append(packed, uint64(a)<<32|uint64(b))
			}
		}
	}
	sort.Slice(packed, func(i, j int) bool { return packed[i] < packed[j] })
	edges := make([][2]int32, 0, len(packed)/4)
	var prev uint64 = math.MaxUint64
	for _, p := range packed {
		if p == prev {
			continue
		}
		prev = p
		edges = append(edges, [2]int32{int32(p >> 32), int32(p & 0xffffffff)})
	}
	m.edges = edges
	return edges
}

// NumEdges returns the number of unique undirected edges.
func (m *Mesh) NumEdges() int { return len(m.Edges()) }

// Adjacency is a CSR representation of the node adjacency graph:
// neighbors of node i are Nbr[Off[i]:Off[i+1]], sorted ascending, not
// including i itself.
type Adjacency struct {
	Off []int64
	Nbr []int32
}

// Degree returns the number of neighbors of node i.
func (a *Adjacency) Degree(i int) int { return int(a.Off[i+1] - a.Off[i]) }

// Neighbors returns the neighbor list of node i (aliasing internal
// storage; callers must not modify it).
func (a *Adjacency) Neighbors(i int) []int32 { return a.Nbr[a.Off[i]:a.Off[i+1]] }

// Adjacency builds the symmetric node adjacency structure from the mesh
// edges.
func (m *Mesh) Adjacency() *Adjacency {
	n := m.NumNodes()
	edges := m.Edges()
	off := make([]int64, n+1)
	for _, e := range edges {
		off[e[0]+1]++
		off[e[1]+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	nbr := make([]int32, off[n])
	cursor := make([]int64, n)
	copy(cursor, off[:n])
	for _, e := range edges {
		nbr[cursor[e[0]]] = e[1]
		cursor[e[0]]++
		nbr[cursor[e[1]]] = e[0]
		cursor[e[1]]++
	}
	// Edges are emitted in lexicographic order, so each neighbor list is
	// already partially ordered; sort each list to guarantee it.
	for i := 0; i < n; i++ {
		lst := nbr[off[i]:off[i+1]]
		sort.Slice(lst, func(a, b int) bool { return lst[a] < lst[b] })
	}
	return &Adjacency{Off: off, Nbr: nbr}
}

// Stats summarizes the size and quality of a mesh. The fields mirror
// Figure 2 of the paper plus the rules of thumb quoted in Section 2
// (about 13 neighbors per node, about 42 nonzeros per matrix row, about
// 1.2 KB of runtime state per node).
type Stats struct {
	Nodes, Elems, Edges int
	AvgDegree           float64 // average node degree (neighbors, excluding self)
	NnzPerRow           float64 // average nonzero scalars per row of the 3n×3n stiffness matrix
	BytesPerNode        float64 // estimated runtime bytes per node (matrix blocks + vectors)
	MinVolume           float64
	MaxVolume           float64
	TotalVolume         float64
	MaxAspect           float64 // worst tetrahedron aspect ratio
}

// ComputeStats scans the mesh and returns its statistics.
func (m *Mesh) ComputeStats() Stats {
	s := Stats{
		Nodes:     m.NumNodes(),
		Elems:     m.NumElems(),
		Edges:     m.NumEdges(),
		MinVolume: math.Inf(1),
	}
	for e := range m.Tets {
		v := m.Volume(e)
		s.TotalVolume += v
		if v < s.MinVolume {
			s.MinVolume = v
		}
		if v > s.MaxVolume {
			s.MaxVolume = v
		}
		t := m.Tets[e]
		if a := geom.TetAspectRatio(m.Coords[t[0]], m.Coords[t[1]], m.Coords[t[2]], m.Coords[t[3]]); a > s.MaxAspect {
			s.MaxAspect = a
		}
	}
	if s.Nodes > 0 {
		s.AvgDegree = 2 * float64(s.Edges) / float64(s.Nodes)
		// Each edge contributes two off-diagonal 3×3 blocks; each node a
		// diagonal block. Rows: 3n. Nonzeros: 9(2E + N).
		s.NnzPerRow = 9 * (2*float64(s.Edges) + float64(s.Nodes)) / (3 * float64(s.Nodes))
		// Runtime state per the paper's accounting: the stiffness matrix
		// blocks at 8 bytes/scalar plus index structure, three solution
		// vectors (displacement at two time levels plus force) of 3
		// doubles each, and the lumped mass diagonal.
		blocks := 2*float64(s.Edges) + float64(s.Nodes)
		matrixBytes := blocks*9*8 + blocks*4 // values + column indices
		vectorBytes := float64(s.Nodes) * (3*3*8 + 3*8)
		s.BytesPerNode = (matrixBytes + vectorBytes) / float64(s.Nodes)
	}
	return s
}

// Validate performs basic structural checks: node indices in range and
// strictly positive element volumes. It returns the first problem found.
func (m *Mesh) Validate() error {
	n := int32(m.NumNodes())
	for e, t := range m.Tets {
		for _, v := range t {
			if v < 0 || v >= n {
				return fmt.Errorf("mesh: element %d references node %d (have %d nodes)", e, v, n)
			}
		}
		if vol := m.Volume(e); vol <= 0 {
			return fmt.Errorf("mesh: element %d has non-positive volume %g", e, vol)
		}
	}
	return nil
}
