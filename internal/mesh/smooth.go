package mesh

import (
	"sort"

	"repro/internal/geom"
)

// Smooth performs guarded Laplacian smoothing: each interior node is
// pulled toward the centroid of its neighbors by the relaxation factor
// (0 < relax ≤ 1), and a move is applied only if every incident
// tetrahedron keeps a safely positive volume. Boundary nodes never
// move, so the domain shape is preserved exactly; the mesh topology is
// untouched. Returns the number of accepted moves summed over passes.
//
// The native octree fan meshes are already well-shaped, so smoothing
// changes their quality little (the guard keeps any local degradation
// bounded); the feature exists for downstream users deforming meshes or
// importing distorted ones through mesh.Read.
func (m *Mesh) Smooth(passes int, relax float64) int {
	if passes <= 0 || relax <= 0 || relax > 1 {
		return 0
	}
	n := m.NumNodes()
	adj := m.Adjacency()

	// Node → incident elements.
	cnt := make([]int32, n+1)
	for _, t := range m.Tets {
		for _, v := range t {
			cnt[v+1]++
		}
	}
	for i := 0; i < n; i++ {
		cnt[i+1] += cnt[i]
	}
	inc := make([]int32, cnt[n])
	cursor := make([]int32, n)
	copy(cursor, cnt[:n])
	for e, t := range m.Tets {
		for _, v := range t {
			inc[cursor[v]] = int32(e)
			cursor[v]++
		}
	}

	boundary := m.boundaryNodes()
	moved := 0
	const volGuard = 0.2 // new min incident volume ≥ 20% of old
	for pass := 0; pass < passes; pass++ {
		for v := 0; v < n; v++ {
			if boundary[v] {
				continue
			}
			nbrs := adj.Neighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			var target geom.Vec3
			for _, u := range nbrs {
				target = target.Add(m.Coords[u])
			}
			target = target.Scale(1 / float64(len(nbrs)))
			old := m.Coords[v]
			candidate := geom.Lerp(old, target, relax)

			minBefore := m.minIncidentVolume(inc[cnt[v]:cnt[v+1]])
			m.Coords[v] = candidate
			minAfter := m.minIncidentVolume(inc[cnt[v]:cnt[v+1]])
			if minAfter <= 0 || minAfter < volGuard*minBefore {
				m.Coords[v] = old // reject
				continue
			}
			moved++
		}
	}
	return moved
}

// minIncidentVolume returns the smallest signed volume among the
// elements listed.
func (m *Mesh) minIncidentVolume(elems []int32) float64 {
	min := 0.0
	for i, e := range elems {
		v := m.Volume(int(e))
		if i == 0 || v < min {
			min = v
		}
	}
	return min
}

// boundaryNodes flags every node that lies on a boundary face (a
// triangle belonging to exactly one element).
func (m *Mesh) boundaryNodes() []bool {
	type tri [3]int32
	count := make(map[tri]int8, 4*len(m.Tets))
	for _, t := range m.Tets {
		for omit := 0; omit < 4; omit++ {
			var f tri
			k := 0
			for i := 0; i < 4; i++ {
				if i != omit {
					f[k] = t[i]
					k++
				}
			}
			sort.Slice(f[:], func(a, b int) bool { return f[a] < f[b] })
			count[f]++
		}
	}
	out := make([]bool, m.NumNodes())
	for f, c := range count {
		if c == 1 {
			out[f[0]] = true
			out[f[1]] = true
			out[f[2]] = true
		}
	}
	return out
}
