package mesh

import (
	"bufio"
	"fmt"
	"io"
)

// WriteVTK writes the mesh in legacy VTK ASCII format (UNSTRUCTURED_GRID
// with VTK_TETRA cells) so generated meshes and simulation fields can be
// inspected in ParaView/VisIt. fields optionally attaches point data:
// each entry is a named scalar (length NumNodes) or vector (length
// 3·NumNodes) array.
func (m *Mesh) WriteVTK(w io.Writer, title string, fields ...VTKField) error {
	for _, f := range fields {
		if err := f.validate(m.NumNodes()); err != nil {
			return err
		}
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	if title == "" {
		title = "quake mesh"
	}
	fmt.Fprintln(bw, title)
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET UNSTRUCTURED_GRID")
	fmt.Fprintf(bw, "POINTS %d double\n", m.NumNodes())
	for _, p := range m.Coords {
		fmt.Fprintf(bw, "%g %g %g\n", p.X, p.Y, p.Z)
	}
	fmt.Fprintf(bw, "CELLS %d %d\n", m.NumElems(), 5*m.NumElems())
	for _, t := range m.Tets {
		fmt.Fprintf(bw, "4 %d %d %d %d\n", t[0], t[1], t[2], t[3])
	}
	fmt.Fprintf(bw, "CELL_TYPES %d\n", m.NumElems())
	for range m.Tets {
		fmt.Fprintln(bw, 10) // VTK_TETRA
	}
	if len(fields) > 0 {
		fmt.Fprintf(bw, "POINT_DATA %d\n", m.NumNodes())
		for _, f := range fields {
			if err := f.write(bw, m.NumNodes()); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// VTKField is one named point-data array for WriteVTK.
type VTKField struct {
	Name string
	// Data holds NumNodes scalars or 3·NumNodes interleaved vector
	// components.
	Data []float64
}

func (f VTKField) validate(nodes int) error {
	if f.Name == "" {
		return fmt.Errorf("mesh: VTK field needs a name")
	}
	if len(f.Data) != nodes && len(f.Data) != 3*nodes {
		return fmt.Errorf("mesh: VTK field %q has %d values; want %d (scalar) or %d (vector)",
			f.Name, len(f.Data), nodes, 3*nodes)
	}
	return nil
}

func (f VTKField) write(w io.Writer, nodes int) error {
	if len(f.Data) == nodes {
		fmt.Fprintf(w, "SCALARS %s double 1\nLOOKUP_TABLE default\n", f.Name)
		for _, v := range f.Data {
			if _, err := fmt.Fprintf(w, "%g\n", v); err != nil {
				return err
			}
		}
		return nil
	}
	fmt.Fprintf(w, "VECTORS %s double\n", f.Name)
	for i := 0; i < nodes; i++ {
		if _, err := fmt.Fprintf(w, "%g %g %g\n",
			f.Data[3*i], f.Data[3*i+1], f.Data[3*i+2]); err != nil {
			return err
		}
	}
	return nil
}
