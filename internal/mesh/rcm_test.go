package mesh

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestRCMPermutationValid(t *testing.T) {
	m := gradedMesh(t)
	perm := m.RCMOrder()
	if len(perm) != m.NumNodes() {
		t.Fatalf("perm length %d, want %d", len(perm), m.NumNodes())
	}
	seen := make([]bool, m.NumNodes())
	for _, v := range perm {
		if v < 0 || int(v) >= m.NumNodes() {
			t.Fatalf("out of range entry %d", v)
		}
		if seen[v] {
			t.Fatalf("repeated entry %d", v)
		}
		seen[v] = true
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	m := gradedMesh(t)
	perm := m.RCMOrder()
	rm, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	before, after := m.AvgBandwidth(), rm.AvgBandwidth()
	if after >= before {
		t.Errorf("RCM did not reduce average bandwidth: %.0f -> %.0f", before, after)
	}
	if rm.Bandwidth() >= m.Bandwidth()*2 {
		t.Errorf("RCM max bandwidth blew up: %d -> %d", m.Bandwidth(), rm.Bandwidth())
	}
}

func TestPermutePreservesGeometry(t *testing.T) {
	m := gradedMesh(t)
	perm := m.RCMOrder()
	rm, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Validate(); err != nil {
		t.Fatalf("permuted mesh invalid: %v", err)
	}
	if rm.NumNodes() != m.NumNodes() || rm.NumElems() != m.NumElems() {
		t.Fatal("sizes changed")
	}
	// Same total volume, same per-element volume (orientation kept).
	for e := 0; e < m.NumElems(); e++ {
		if math.Abs(rm.Volume(e)-m.Volume(e)) > 1e-12*(1+math.Abs(m.Volume(e))) {
			t.Fatalf("element %d volume changed", e)
		}
	}
	// Edge count invariant under renumbering.
	if rm.NumEdges() != m.NumEdges() {
		t.Fatalf("edge count changed: %d -> %d", m.NumEdges(), rm.NumEdges())
	}
	// Coordinates are a permutation of the originals.
	if perm[0] >= 0 {
		old := perm[17%len(perm)]
		if rm.Coords[17%len(perm)] != m.Coords[old] {
			t.Error("coordinate mapping wrong")
		}
	}
}

func TestPermuteErrors(t *testing.T) {
	m := twoTets()
	if _, err := m.Permute([]int32{0, 1}); err == nil {
		t.Error("short perm accepted")
	}
	if _, err := m.Permute([]int32{0, 1, 2, 3, 9}); err == nil {
		t.Error("out-of-range perm accepted")
	}
	if _, err := m.Permute([]int32{0, 1, 2, 3, 3}); err == nil {
		t.Error("repeated perm accepted")
	}
}

func TestPermuteIdentity(t *testing.T) {
	m := twoTets()
	id := []int32{0, 1, 2, 3, 4}
	got, err := m.Permute(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Coords {
		if got.Coords[i] != m.Coords[i] {
			t.Fatal("identity permutation moved nodes")
		}
	}
	for e := range m.Tets {
		if got.Tets[e] != m.Tets[e] {
			t.Fatal("identity permutation changed elements")
		}
	}
}

func TestRCMHandlesDisconnected(t *testing.T) {
	// Two disjoint tetrahedra.
	m := &Mesh{
		Coords: []geom.Vec3{
			geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0), geom.V(0, 0, 1),
			geom.V(5, 0, 0), geom.V(6, 0, 0), geom.V(5, 1, 0), geom.V(5, 0, 1),
		},
		Tets: [][4]int32{{0, 1, 2, 3}, {4, 5, 6, 7}},
	}
	perm := m.RCMOrder()
	if len(perm) != 8 {
		t.Fatalf("perm length %d", len(perm))
	}
	seen := map[int32]bool{}
	for _, v := range perm {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatal("not a permutation")
	}
}
