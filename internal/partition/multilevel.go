package partition

import (
	"fmt"
	"sort"

	"repro/internal/mesh"
)

// Multilevel is a multilevel graph partitioner in the style of
// Chaco/METIS, which the paper cites as the modern alternative to its
// geometric partitioner: the element dual graph is coarsened by
// heavy-edge matching, bisected greedily at the coarsest level, and the
// bisection is refined with Kernighan-Lin/Fiduccia-Mattheyses boundary
// passes as it is projected back up. Recursive bisection extends it to
// arbitrary part counts.
const Multilevel Method = 100

// graph is a weighted undirected graph in CSR form.
type graph struct {
	xadj []int64
	adj  []int32
	ew   []int32 // edge weights, parallel to adj
	vw   []int32 // vertex weights
}

func (g *graph) n() int { return len(g.vw) }

// totalVW returns the sum of the selected vertices' weights.
func totalVW(g *graph, verts []int32) int64 {
	var s int64
	for _, v := range verts {
		s += int64(g.vw[v])
	}
	return s
}

// elementDualGraph builds the face-adjacency graph of the mesh's
// elements: vertices are elements (weight 1), and two elements are
// connected when they share a triangular face (weight 1). Conforming
// tet meshes give each element at most four neighbors.
func elementDualGraph(m *mesh.Mesh) (*graph, error) {
	ne := m.NumElems()
	if m.NumNodes() >= 1<<21 {
		return nil, fmt.Errorf("partition: mesh too large for packed face keys (%d nodes)", m.NumNodes())
	}
	type faceRef struct {
		key  uint64
		elem int32
	}
	refs := make([]faceRef, 0, 4*ne)
	for e, t := range m.Tets {
		for omit := 0; omit < 4; omit++ {
			var f [3]int32
			k := 0
			for i := 0; i < 4; i++ {
				if i != omit {
					f[k] = t[i]
					k++
				}
			}
			if f[0] > f[1] {
				f[0], f[1] = f[1], f[0]
			}
			if f[1] > f[2] {
				f[1], f[2] = f[2], f[1]
			}
			if f[0] > f[1] {
				f[0], f[1] = f[1], f[0]
			}
			refs = append(refs, faceRef{
				key:  uint64(f[0])<<42 | uint64(f[1])<<21 | uint64(f[2]),
				elem: int32(e),
			})
		}
	}
	sort.Slice(refs, func(a, b int) bool {
		if refs[a].key != refs[b].key {
			return refs[a].key < refs[b].key
		}
		return refs[a].elem < refs[b].elem
	})
	deg := make([]int64, ne+1)
	for i := 1; i < len(refs); i++ {
		if refs[i].key == refs[i-1].key {
			deg[refs[i-1].elem+1]++
			deg[refs[i].elem+1]++
		}
	}
	for i := 0; i < ne; i++ {
		deg[i+1] += deg[i]
	}
	g := &graph{
		xadj: deg,
		adj:  make([]int32, deg[ne]),
		ew:   make([]int32, deg[ne]),
		vw:   make([]int32, ne),
	}
	for i := range g.vw {
		g.vw[i] = 1
	}
	for i := range g.ew {
		g.ew[i] = 1
	}
	cursor := make([]int64, ne)
	copy(cursor, g.xadj[:ne])
	for i := 1; i < len(refs); i++ {
		if refs[i].key == refs[i-1].key {
			a, b := refs[i-1].elem, refs[i].elem
			g.adj[cursor[a]] = b
			cursor[a]++
			g.adj[cursor[b]] = a
			cursor[b]++
		}
	}
	return g, nil
}

// multilevelPartition assigns parts PEs (starting at base) to the
// vertices listed in verts, writing results into out.
func multilevelPartition(g *graph, verts []int32, base, parts int, out []int32) {
	if parts == 1 {
		for _, v := range verts {
			out[v] = int32(base)
		}
		return
	}
	left := parts / 2
	targetLeft := totalVW(g, verts) * int64(left) / int64(parts)
	side := bisectMultilevel(g, verts, targetLeft)
	var lv, rv []int32
	for i, v := range verts {
		if side[i] == 0 {
			lv = append(lv, v)
		} else {
			rv = append(rv, v)
		}
	}
	// Degenerate split guard: fall back to an index split.
	if len(lv) == 0 || len(rv) == 0 {
		k := len(verts) * left / parts
		if k < 1 {
			k = 1
		}
		lv, rv = verts[:k], verts[k:]
	}
	multilevelPartition(g, lv, base, left, out)
	multilevelPartition(g, rv, base+left, parts-left, out)
}

// bisectMultilevel bisects the induced subgraph on verts into sides 0
// and 1 with target weight targetLeft on side 0. Returns the side of
// each vertex, parallel to verts.
func bisectMultilevel(g *graph, verts []int32, targetLeft int64) []int8 {
	sub := induce(g, verts)
	const coarsestSize = 160
	var hierarchy []*coarsening
	cur := sub
	for cur.n() > coarsestSize {
		c := coarsen(cur)
		// Matching stalls (e.g. disconnected star graphs): stop.
		if c.coarse.n() >= cur.n()*9/10 {
			break
		}
		hierarchy = append(hierarchy, c)
		cur = c.coarse
	}
	side := initialBisect(cur, targetLeft)
	refine(cur, side, targetLeft)
	for i := len(hierarchy) - 1; i >= 0; i-- {
		c := hierarchy[i]
		fineSide := make([]int8, c.fine.n())
		for v := range fineSide {
			fineSide[v] = side[c.match[v]]
		}
		side = fineSide
		refine(c.fine, side, targetLeft)
	}
	return side
}

// induce extracts the subgraph on verts with vertices renumbered
// 0..len(verts)-1.
func induce(g *graph, verts []int32) *graph {
	local := make(map[int32]int32, len(verts))
	for i, v := range verts {
		local[v] = int32(i)
	}
	sub := &graph{xadj: make([]int64, len(verts)+1), vw: make([]int32, len(verts))}
	for i, v := range verts {
		sub.vw[i] = g.vw[v]
		for k := g.xadj[v]; k < g.xadj[v+1]; k++ {
			if _, ok := local[g.adj[k]]; ok {
				sub.xadj[i+1]++
			}
		}
	}
	for i := 0; i < len(verts); i++ {
		sub.xadj[i+1] += sub.xadj[i]
	}
	sub.adj = make([]int32, sub.xadj[len(verts)])
	sub.ew = make([]int32, len(sub.adj))
	cursor := make([]int64, len(verts))
	copy(cursor, sub.xadj[:len(verts)])
	for i, v := range verts {
		for k := g.xadj[v]; k < g.xadj[v+1]; k++ {
			if l, ok := local[g.adj[k]]; ok {
				sub.adj[cursor[i]] = l
				sub.ew[cursor[i]] = g.ew[k]
				cursor[i]++
			}
		}
	}
	return sub
}

// coarsening records one level of the multilevel hierarchy.
type coarsening struct {
	fine   *graph
	coarse *graph
	match  []int32 // fine vertex -> coarse vertex
}

// coarsen contracts a heavy-edge matching of g.
func coarsen(g *graph) *coarsening {
	n := g.n()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	coarseID := int32(0)
	// Visit vertices in order; deterministic and cache-friendly.
	for v := 0; v < n; v++ {
		if match[v] >= 0 {
			continue
		}
		bestW := int32(-1)
		best := int32(-1)
		for k := g.xadj[v]; k < g.xadj[v+1]; k++ {
			u := g.adj[k]
			if match[u] < 0 && u != int32(v) && g.ew[k] > bestW {
				bestW = g.ew[k]
				best = u
			}
		}
		match[v] = coarseID
		if best >= 0 {
			match[best] = coarseID
		}
		coarseID++
	}
	// Build the coarse graph by aggregating edges.
	cn := int(coarseID)
	cvw := make([]int32, cn)
	for v := 0; v < n; v++ {
		cvw[match[v]] += g.vw[v]
	}
	type cedge struct {
		a, b int32
		w    int32
	}
	edges := make([]cedge, 0, len(g.adj)/2)
	for v := 0; v < n; v++ {
		cv := match[v]
		for k := g.xadj[v]; k < g.xadj[v+1]; k++ {
			cu := match[g.adj[k]]
			if cv < cu {
				edges = append(edges, cedge{cv, cu, g.ew[k]})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	coarse := &graph{xadj: make([]int64, cn+1), vw: cvw}
	uniq := 0
	for i := 0; i < len(edges); {
		j := i
		for j < len(edges) && edges[j].a == edges[i].a && edges[j].b == edges[i].b {
			j++
		}
		coarse.xadj[edges[i].a+1]++
		coarse.xadj[edges[i].b+1]++
		uniq++
		i = j
	}
	for i := 0; i < cn; i++ {
		coarse.xadj[i+1] += coarse.xadj[i]
	}
	cadj := make([]int32, 2*uniq)
	cew := make([]int32, 2*uniq)
	cursor := make([]int64, cn)
	copy(cursor, coarse.xadj[:cn])
	for i := 0; i < len(edges); {
		j := i
		w := int32(0)
		for j < len(edges) && edges[j].a == edges[i].a && edges[j].b == edges[i].b {
			w += edges[j].w
			j++
		}
		a, b := edges[i].a, edges[i].b
		cadj[cursor[a]] = b
		cew[cursor[a]] = w
		cursor[a]++
		cadj[cursor[b]] = a
		cew[cursor[b]] = w
		cursor[b]++
		i = j
	}
	coarse.adj = cadj
	coarse.ew = cew
	return &coarsening{fine: g, coarse: coarse, match: match}
}

// initialBisect grows side 0 by BFS from a pseudo-peripheral vertex
// until it holds targetLeft weight.
func initialBisect(g *graph, targetLeft int64) []int8 {
	n := g.n()
	side := make([]int8, n)
	for i := range side {
		side[i] = 1
	}
	if n == 0 {
		return side
	}
	start := pseudoPeripheral(g)
	var w int64
	queue := []int32{start}
	visited := make([]bool, n)
	visited[start] = true
	for len(queue) > 0 && w < targetLeft {
		v := queue[0]
		queue = queue[1:]
		side[v] = 0
		w += int64(g.vw[v])
		for k := g.xadj[v]; k < g.xadj[v+1]; k++ {
			u := g.adj[k]
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
		// Disconnected graph: restart BFS from any unvisited vertex.
		if len(queue) == 0 && w < targetLeft {
			for u := 0; u < n; u++ {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, int32(u))
					break
				}
			}
		}
	}
	return side
}

// pseudoPeripheral runs two BFS sweeps to find a vertex far from the
// graph's "center", a good seed for region growing.
func pseudoPeripheral(g *graph) int32 {
	far := bfsFarthest(g, 0)
	return bfsFarthest(g, far)
}

func bfsFarthest(g *graph, start int32) int32 {
	n := g.n()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []int32{start}
	last := start
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		last = v
		for k := g.xadj[v]; k < g.xadj[v+1]; k++ {
			u := g.adj[k]
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return last
}

// refine runs greedy KL/FM-style boundary passes: repeatedly move the
// boundary vertex with the best cut gain to the other side, provided
// the move keeps the side weights within tolerance of the target.
func refine(g *graph, side []int8, targetLeft int64) {
	n := g.n()
	var total int64
	for v := 0; v < n; v++ {
		total += int64(g.vw[v])
	}
	var wLeft int64
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			wLeft += int64(g.vw[v])
		}
	}
	tol := total / 50 // 2% imbalance allowance
	if tol < 2 {
		tol = 2
	}
	gain := func(v int32) int32 {
		var ext, intw int32
		for k := g.xadj[v]; k < g.xadj[v+1]; k++ {
			if side[g.adj[k]] == side[v] {
				intw += g.ew[k]
			} else {
				ext += g.ew[k]
			}
		}
		return ext - intw
	}
	for pass := 0; pass < 8; pass++ {
		moved := 0
		for v := int32(0); int(v) < n; v++ {
			// Only boundary vertices can have positive gain.
			onBoundary := false
			for k := g.xadj[v]; k < g.xadj[v+1]; k++ {
				if side[g.adj[k]] != side[v] {
					onBoundary = true
					break
				}
			}
			if !onBoundary {
				continue
			}
			gv := gain(v)
			if gv <= 0 {
				continue
			}
			// Balance check for the move.
			var newLeft int64
			if side[v] == 0 {
				newLeft = wLeft - int64(g.vw[v])
			} else {
				newLeft = wLeft + int64(g.vw[v])
			}
			if newLeft < targetLeft-tol || newLeft > targetLeft+tol {
				continue
			}
			side[v] ^= 1
			wLeft = newLeft
			moved++
		}
		if moved == 0 {
			break
		}
	}
}

// partitionMultilevel is the Method dispatch target for Multilevel.
func partitionMultilevel(m *mesh.Mesh, p int, out []int32) error {
	g, err := elementDualGraph(m)
	if err != nil {
		return err
	}
	verts := make([]int32, g.n())
	for i := range verts {
		verts[i] = int32(i)
	}
	multilevelPartition(g, verts, 0, p, out)
	return nil
}
