package partition

import (
	"sort"
	"testing"
)

// TestBoundaryLayerProperties pins the layer contract: every returned
// element belongs to from, shares at least one node with to's region,
// the list is ascending, and non-adjacent PE pairs yield an empty
// layer.
func TestBoundaryLayerProperties(t *testing.T) {
	m := testMesh(t)
	pt := mustPartition(t, m, 8, RCB)
	pr := mustAnalyze(t, m, pt)

	adjacentPairs := 0
	for from := 0; from < pt.P; from++ {
		for to := 0; to < pt.P; to++ {
			if from == to {
				continue
			}
			layer := BoundaryLayer(m, pt, from, to)
			if (pr.Msg[from][to] > 0) != (len(layer) > 0) {
				t.Fatalf("pair %d→%d: Msg=%d but layer has %d elements", from, to, pr.Msg[from][to], len(layer))
			}
			if len(layer) == 0 {
				continue
			}
			adjacentPairs++
			if !sort.SliceIsSorted(layer, func(a, b int) bool { return layer[a] < layer[b] }) {
				t.Fatalf("pair %d→%d: layer not ascending", from, to)
			}
			toNodes := make(map[int32]bool)
			for e, tet := range m.Tets {
				if int(pt.ElemPE[e]) == to {
					for _, v := range tet {
						toNodes[v] = true
					}
				}
			}
			for _, e := range layer {
				if int(pt.ElemPE[e]) != from {
					t.Fatalf("pair %d→%d: layer element %d is on PE %d", from, to, e, pt.ElemPE[e])
				}
				touches := false
				for _, v := range m.Tets[e] {
					if toNodes[v] {
						touches = true
						break
					}
				}
				if !touches {
					t.Fatalf("pair %d→%d: layer element %d does not touch the receiver", from, to, e)
				}
			}
		}
	}
	if adjacentPairs == 0 {
		t.Fatal("no adjacent PE pairs in an 8-way RCB partition")
	}
}

// TestConnectivityWords checks the Σ 3·(λ−1) accounting against a
// direct recount and its relationship to the all-pairs exchange volume:
// equal when every shared node has λ = 2, strictly below half of
// TotalWords otherwise.
func TestConnectivityWords(t *testing.T) {
	m := testMesh(t)
	pt := mustPartition(t, m, 8, RCB)
	pr := mustAnalyze(t, m, pt)

	var want int64
	maxLambda := 0
	for _, lst := range pr.NodePEs {
		if len(lst) > maxLambda {
			maxLambda = len(lst)
		}
		if len(lst) > 1 {
			want += WordsPerNode * int64(len(lst)-1)
		}
	}
	if got := pr.ConnectivityWords(); got != want {
		t.Fatalf("ConnectivityWords = %d, recount %d", got, want)
	}
	// TotalWords counts 3·λ·(λ−1) per node (all ordered pairs), so
	// connectivity ≤ TotalWords/2 with equality iff all λ ≤ 2.
	if cw, tw := pr.ConnectivityWords(), pr.TotalWords(); cw > tw/2 {
		t.Fatalf("connectivity %d exceeds half the exchange volume %d", cw, tw)
	} else if maxLambda > 2 && cw == tw/2 {
		t.Fatalf("λ_max = %d but connectivity %d equals half of %d", maxLambda, cw, tw)
	}
}

// TestMigrationDeltaMatchesRecount applies a real boundary-layer move
// and checks that the predicted delta equals the difference of full
// ConnectivityWords recomputations, and that Migrate produced a valid
// partition with exactly the layer reassigned.
func TestMigrationDeltaMatchesRecount(t *testing.T) {
	m := testMesh(t)
	pt := mustPartition(t, m, 8, RCB)
	pr := mustAnalyze(t, m, pt)

	moves := 0
	for from := 0; from < pt.P && moves < 4; from++ {
		for _, to := range pr.MeshNeighbors(from) {
			layer := BoundaryLayer(m, pt, from, to)
			if len(layer) == 0 || len(layer) == pt.Sizes()[from] {
				continue
			}
			delta, err := MigrationDelta(m, pt, layer, from, to)
			if err != nil {
				t.Fatal(err)
			}
			moved, err := Migrate(m, pt, layer, from, to)
			if err != nil {
				t.Fatal(err)
			}
			after := mustAnalyze(t, m, moved)
			if got := after.ConnectivityWords() - pr.ConnectivityWords(); got != delta {
				t.Fatalf("move %d→%d (%d elems): predicted delta %d, recount %d", from, to, len(layer), delta, got)
			}
			changed := 0
			for e := range moved.ElemPE {
				if moved.ElemPE[e] != pt.ElemPE[e] {
					changed++
					if int(moved.ElemPE[e]) != to || int(pt.ElemPE[e]) != from {
						t.Fatalf("element %d moved %d→%d, want %d→%d", e, pt.ElemPE[e], moved.ElemPE[e], from, to)
					}
				}
			}
			if changed != len(layer) {
				t.Fatalf("move %d→%d: %d elements changed, layer has %d", from, to, changed, len(layer))
			}
			moves++
			if moves >= 4 {
				break
			}
		}
	}
	if moves == 0 {
		t.Fatal("no movable boundary layer found")
	}
}

// TestMigrateErrors pins the rejection paths: bad PEs, elements not on
// the source PE, out-of-range ids, and moves that would empty the
// source.
func TestMigrateErrors(t *testing.T) {
	m := testMesh(t)
	pt := mustPartition(t, m, 4, RCB)

	if _, err := MigrationDelta(m, pt, nil, 0, 0); err == nil {
		t.Error("from == to accepted")
	}
	if _, err := MigrationDelta(m, pt, nil, -1, 2); err == nil {
		t.Error("negative source PE accepted")
	}
	if _, err := MigrationDelta(m, pt, []int32{int32(m.NumElems())}, 0, 1); err == nil {
		t.Error("out-of-range element accepted")
	}
	var notOnZero int32 = -1
	for e, pe := range pt.ElemPE {
		if pe != 0 {
			notOnZero = int32(e)
			break
		}
	}
	if _, err := MigrationDelta(m, pt, []int32{notOnZero}, 0, 1); err == nil {
		t.Error("element not on source PE accepted")
	}
	// Draining every element of PE 0 must be rejected by Validate.
	var all []int32
	for e, pe := range pt.ElemPE {
		if pe == 0 {
			all = append(all, int32(e))
		}
	}
	if _, err := Migrate(m, pt, all, 0, 1); err == nil {
		t.Error("move emptying the source PE accepted")
	}
}
