package partition

import (
	"fmt"
	"sort"

	"repro/internal/mesh"
)

// This file holds the partition-level accounting the elastic rebalancer
// (internal/recover) builds on: boundary-layer extraction and
// connectivity-metric scoring. Migration decisions are priced by true
// boundary word volume — the hypergraph connectivity metric, which the
// Ballard et al. line of work shows is what edge-count proxies
// mis-price — never by element count alone.

// BoundaryLayer returns the elements of PE from that share at least one
// mesh node with PE to's region, in ascending element order. This is
// exactly the set whose migration from→to cannot create new
// communication partners for to: every moved element already touches
// to's halo. An empty slice means the two regions are not mesh-adjacent.
func BoundaryLayer(m *mesh.Mesh, pt *Partition, from, to int) []int32 {
	touched := make([]bool, m.NumNodes())
	for e, t := range m.Tets {
		if int(pt.ElemPE[e]) != to {
			continue
		}
		for _, v := range t {
			touched[v] = true
		}
	}
	var layer []int32
	for e, t := range m.Tets {
		if int(pt.ElemPE[e]) != from {
			continue
		}
		for _, v := range t {
			if touched[v] {
				layer = append(layer, int32(e))
				break
			}
		}
	}
	return layer
}

// ConnectivityWords returns the partition's communication volume under
// the hypergraph connectivity metric: Σ_v 3·(λ_v − 1) words, where λ_v
// is the number of PEs node v resides on. Each of the λ−1 non-owner
// replicas of a node must obtain its three partial sums, so this is the
// minimum one-directional word traffic the sharing pattern forces —
// unlike TotalWords, which counts the all-pairs exchange the runtime
// actually performs (3·λ·(λ−1) words per node) and therefore
// over-weights nodes shared by many PEs quadratically.
func (pr *Profile) ConnectivityWords() int64 {
	var v int64
	for _, lst := range pr.NodePEs {
		if len(lst) > 1 {
			v += WordsPerNode * int64(len(lst)-1)
		}
	}
	return v
}

// MigrationDelta returns the change in connectivity words (see
// ConnectivityWords) caused by reassigning elems from PE from to PE to,
// without mutating pt. Negative means the move reduces communication
// volume. Only the nodes touched by the moved elements can change their
// residency, so the cost is proportional to the layer's footprint plus
// one pass over the mesh to index those nodes' elements.
func MigrationDelta(m *mesh.Mesh, pt *Partition, elems []int32, from, to int) (int64, error) {
	if from < 0 || from >= pt.P || to < 0 || to >= pt.P || from == to {
		return 0, fmt.Errorf("partition: migration %d→%d invalid for %d PEs", from, to, pt.P)
	}
	moved := make(map[int32]bool, len(elems))
	affected := make(map[int32]bool, 4*len(elems))
	for _, e := range elems {
		if e < 0 || int(e) >= m.NumElems() {
			return 0, fmt.Errorf("partition: migrating element %d of %d", e, m.NumElems())
		}
		if int(pt.ElemPE[e]) != from {
			return 0, fmt.Errorf("partition: element %d is on PE %d, not %d", e, pt.ElemPE[e], from)
		}
		moved[e] = true
		for _, v := range m.Tets[e] {
			affected[v] = true
		}
	}

	// Per-affected-node PE sets before and after the move. One mesh scan
	// collects the incident elements of the affected nodes.
	type residency struct{ before, after map[int32]bool }
	res := make(map[int32]*residency, len(affected))
	for v := range affected {
		res[v] = &residency{before: make(map[int32]bool), after: make(map[int32]bool)}
	}
	for e, t := range m.Tets {
		pe := pt.ElemPE[e]
		npe := pe
		if moved[int32(e)] {
			npe = int32(to)
		}
		for _, v := range t {
			if r, ok := res[v]; ok {
				r.before[pe] = true
				r.after[npe] = true
			}
		}
	}
	var delta int64
	for _, r := range res {
		delta += WordsPerNode * int64(len(r.after)-len(r.before))
	}
	return delta, nil
}

// Migrate returns a copy of pt with elems reassigned from PE from to PE
// to. The inputs are validated the same way as MigrationDelta; the
// result additionally passes Validate, so a move that would empty PE
// from is rejected rather than producing a partition no schedule can be
// built for.
func Migrate(m *mesh.Mesh, pt *Partition, elems []int32, from, to int) (*Partition, error) {
	if _, err := MigrationDelta(m, pt, elems, from, to); err != nil {
		return nil, err
	}
	out := &Partition{P: pt.P, ElemPE: append([]int32(nil), pt.ElemPE...)}
	for _, e := range elems {
		out.ElemPE[e] = int32(to)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("partition: migration %d→%d of %d elements: %w", from, to, len(elems), err)
	}
	return out, nil
}

// BoundaryWords returns pr.Msg[a][b]: the words PE a sends PE b per
// exchange, i.e. three words per node the two regions share. It is the
// true-volume score the rebalancer ranks receiver candidates by
// (symmetric, so the direction does not matter).
func (pr *Profile) BoundaryWords(a, b int) int64 {
	if a < 0 || a >= pr.P || b < 0 || b >= pr.P {
		return 0
	}
	return pr.Msg[a][b]
}

// MeshNeighbors returns the PEs whose regions share at least one node
// with PE pe's region, ascending. These are the only legal receivers
// for a boundary-layer migration out of pe: moving a layer to a
// non-adjacent PE would manufacture brand-new communication edges.
func (pr *Profile) MeshNeighbors(pe int) []int {
	if pe < 0 || pe >= pr.P {
		return nil
	}
	var out []int
	for q := 0; q < pr.P; q++ {
		if q != pe && pr.Msg[pe][q] > 0 {
			out = append(out, q)
		}
	}
	sort.Ints(out)
	return out
}
