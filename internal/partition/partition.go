// Package partition divides the elements of an unstructured mesh among
// processing elements (PEs) and analyzes the communication structure the
// division induces on the parallel SMVP.
//
// The Quake applications used the recursive geometric bisection
// algorithm of Miller, Teng, Thurston, and Vavasis; this package
// provides the classic geometric family — recursive coordinate bisection
// and recursive inertial bisection on element centroids — together with
// deliberately poor baselines (random, linear, striped) that the
// ablation benchmarks use to show how much partition quality matters to
// C_max and B_max.
package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/obs"
)

// Method selects a partitioning algorithm.
type Method int

const (
	// RCB is recursive coordinate bisection: split the element set at
	// the weighted median along the longest axis of its bounding box,
	// recursively.
	RCB Method = iota
	// Inertial is recursive inertial bisection: like RCB but splitting
	// perpendicular to the principal axis of the centroid distribution.
	Inertial
	// Random assigns elements to PEs uniformly at random (a worst-case
	// baseline: interface grows with subdomain volume, not surface).
	Random
	// Linear assigns contiguous ranges of element indices. Element order
	// from the octree mesher is depth-then-space, so this is a weak but
	// not pathological baseline.
	Linear
	// StripesZ slices the domain into p slabs along z by element count.
	StripesZ
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case RCB:
		return "rcb"
	case Inertial:
		return "inertial"
	case Random:
		return "random"
	case Linear:
		return "linear"
	case StripesZ:
		return "stripes-z"
	case Multilevel:
		return "multilevel"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// Methods lists every built-in partitioner.
func Methods() []Method {
	return []Method{RCB, Inertial, Random, Linear, StripesZ, Multilevel}
}

// MethodByName returns the method whose String() matches name, for
// command-line -method flags.
func MethodByName(name string) (Method, error) {
	for _, m := range Methods() {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("partition: unknown method %q", name)
}

// Partition maps each mesh element to a PE (subdomain).
type Partition struct {
	P      int
	ElemPE []int32
}

// PartitionMesh partitions the elements of m into p subdomains with the
// given method. seed is used only by the Random method.
func PartitionMesh(m *mesh.Mesh, p int, method Method, seed int64) (*Partition, error) {
	sp := obs.StartSpan(obs.TrackDriver, "setup", "partition."+method.String())
	defer sp.End()
	obs.GetCounter("partition.calls").Add(1)
	if p <= 0 {
		return nil, fmt.Errorf("partition: p must be positive, got %d", p)
	}
	ne := m.NumElems()
	if ne == 0 {
		return nil, fmt.Errorf("partition: empty mesh")
	}
	if p > ne {
		return nil, fmt.Errorf("partition: more PEs (%d) than elements (%d)", p, ne)
	}
	out := &Partition{P: p, ElemPE: make([]int32, ne)}
	switch method {
	case RCB, Inertial:
		cents := make([]geom.Vec3, ne)
		for e := 0; e < ne; e++ {
			cents[e] = m.Centroid(e)
		}
		idx := make([]int32, ne)
		for i := range idx {
			idx[i] = int32(i)
		}
		bisect(cents, idx, 0, p, out.ElemPE, method == Inertial)
	case Random:
		rng := rand.New(rand.NewSource(seed))
		for e := range out.ElemPE {
			out.ElemPE[e] = int32(rng.Intn(p))
		}
	case Linear:
		for e := range out.ElemPE {
			out.ElemPE[e] = int32(int64(e) * int64(p) / int64(ne))
		}
	case Multilevel:
		if err := partitionMultilevel(m, p, out.ElemPE); err != nil {
			return nil, err
		}
	case StripesZ:
		order := make([]int32, ne)
		for i := range order {
			order[i] = int32(i)
		}
		z := make([]float64, ne)
		for e := 0; e < ne; e++ {
			z[e] = m.Centroid(e).Z
		}
		sort.SliceStable(order, func(a, b int) bool { return z[order[a]] < z[order[b]] })
		for rank, e := range order {
			out.ElemPE[e] = int32(int64(rank) * int64(p) / int64(ne))
		}
	default:
		return nil, fmt.Errorf("partition: unknown method %v", method)
	}
	return out, nil
}

// bisect recursively splits idx (element indices) into parts PEs,
// assigning PE numbers starting at base. Splits are proportional so
// non-power-of-two part counts stay balanced.
func bisect(cents []geom.Vec3, idx []int32, base, parts int, out []int32, inertial bool) {
	if parts == 1 {
		for _, e := range idx {
			out[e] = int32(base)
		}
		return
	}
	left := parts / 2
	// Elements going to the left side, proportional to PE counts.
	nLeft := int(int64(len(idx)) * int64(left) / int64(parts))
	if nLeft < 1 {
		nLeft = 1
	}
	if nLeft > len(idx)-1 {
		nLeft = len(idx) - 1
	}

	var axisDir geom.Vec3
	if inertial {
		axisDir = principalAxis(cents, idx)
	} else {
		// Longest axis of the centroid bounding box.
		box := geom.Box{Lo: cents[idx[0]], Hi: cents[idx[0]]}
		for _, e := range idx {
			box.Lo = geom.Min(box.Lo, cents[e])
			box.Hi = geom.Max(box.Hi, cents[e])
		}
		axisDir = geom.Vec3{}.WithComponent(box.LongestAxis(), 1)
	}
	// Partial selection: order by projection onto the axis. Sorting is
	// O(n log n) but keeps the code simple and deterministic; ties are
	// broken by element index for reproducibility.
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := cents[idx[a]].Dot(axisDir), cents[idx[b]].Dot(axisDir)
		if pa != pb {
			return pa < pb
		}
		return idx[a] < idx[b]
	})
	bisect(cents, idx[:nLeft], base, left, out, inertial)
	bisect(cents, idx[nLeft:], base+left, parts-left, out, inertial)
}

// principalAxis returns the dominant eigenvector of the covariance of
// the selected centroids, computed by power iteration. Falls back to the
// x axis for degenerate distributions.
func principalAxis(cents []geom.Vec3, idx []int32) geom.Vec3 {
	var mean geom.Vec3
	for _, e := range idx {
		mean = mean.Add(cents[e])
	}
	mean = mean.Scale(1 / float64(len(idx)))
	// 3×3 covariance (symmetric).
	var cxx, cxy, cxz, cyy, cyz, czz float64
	for _, e := range idx {
		d := cents[e].Sub(mean)
		cxx += d.X * d.X
		cxy += d.X * d.Y
		cxz += d.X * d.Z
		cyy += d.Y * d.Y
		cyz += d.Y * d.Z
		czz += d.Z * d.Z
	}
	v := geom.V(1, 1, 1).Normalize()
	for iter := 0; iter < 50; iter++ {
		w := geom.V(
			cxx*v.X+cxy*v.Y+cxz*v.Z,
			cxy*v.X+cyy*v.Y+cyz*v.Z,
			cxz*v.X+cyz*v.Y+czz*v.Z)
		n := w.Norm()
		if n == 0 {
			return geom.V(1, 0, 0)
		}
		w = w.Scale(1 / n)
		if w.Sub(v).Norm() < 1e-12 {
			return w
		}
		v = w
	}
	return v
}

// Sizes returns the number of elements assigned to each PE.
func (pt *Partition) Sizes() []int {
	sizes := make([]int, pt.P)
	for _, pe := range pt.ElemPE {
		sizes[pe]++
	}
	return sizes
}

// Validate checks that every element is assigned to a PE in range and
// that no PE is empty.
func (pt *Partition) Validate() error {
	sizes := make([]int, pt.P)
	for e, pe := range pt.ElemPE {
		if pe < 0 || int(pe) >= pt.P {
			return fmt.Errorf("partition: element %d assigned to PE %d of %d", e, pe, pt.P)
		}
		sizes[pe]++
	}
	for pe, s := range sizes {
		if s == 0 {
			return fmt.Errorf("partition: PE %d has no elements", pe)
		}
	}
	return nil
}
