package partition

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/octree"
)

// testMesh builds a modest graded mesh shared by the tests.
func testMesh(t testing.TB) *mesh.Mesh {
	t.Helper()
	cfg := octree.Config{Origin: geom.V(0, 0, 0), CubeSize: 1, Nx: 2, Ny: 2, Nz: 1, MaxDepth: 4}
	h := func(p geom.Vec3) float64 {
		d := p.Dist(geom.V(1, 1, 0.5))
		return math.Max(0.08, 0.3*d)
	}
	tr, err := octree.Build(cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mesh.FromTree(tr)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustPartition(t testing.TB, m *mesh.Mesh, p int, method Method) *Partition {
	t.Helper()
	pt, err := PartitionMesh(m, p, method, 1)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func mustAnalyze(t testing.TB, m *mesh.Mesh, pt *Partition) *Profile {
	t.Helper()
	pr, err := Analyze(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestPartitionErrors(t *testing.T) {
	m := testMesh(t)
	if _, err := PartitionMesh(m, 0, RCB, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := PartitionMesh(m, m.NumElems()+1, RCB, 0); err == nil {
		t.Error("p > elements accepted")
	}
	if _, err := PartitionMesh(&mesh.Mesh{}, 2, RCB, 0); err == nil {
		t.Error("empty mesh accepted")
	}
	if _, err := PartitionMesh(m, 2, Method(99), 0); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		RCB: "rcb", Inertial: "inertial", Random: "random",
		Linear: "linear", StripesZ: "stripes-z", Method(42): "method(42)",
	} {
		if got := m.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(m), got, want)
		}
	}
}

func TestAllMethodsProduceValidBalancedPartitions(t *testing.T) {
	m := testMesh(t)
	for _, method := range []Method{RCB, Inertial, Random, Linear, StripesZ} {
		for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
			pt := mustPartition(t, m, p, method)
			if err := pt.Validate(); err != nil {
				t.Errorf("%v/p=%d: %v", method, p, err)
				continue
			}
			sizes := pt.Sizes()
			min, max := sizes[0], sizes[0]
			for _, s := range sizes {
				if s < min {
					min = s
				}
				if s > max {
					max = s
				}
			}
			// Geometric and deterministic methods must balance element
			// counts tightly; random is looser.
			limit := 1.10
			if method == Random {
				limit = 1.6
			}
			if p > 1 && float64(max)/float64(min) > limit {
				t.Errorf("%v/p=%d: element imbalance %d..%d", method, p, min, max)
			}
		}
	}
}

func TestRCBDeterministic(t *testing.T) {
	m := testMesh(t)
	a := mustPartition(t, m, 8, RCB)
	b := mustPartition(t, m, 8, RCB)
	for e := range a.ElemPE {
		if a.ElemPE[e] != b.ElemPE[e] {
			t.Fatalf("element %d differs", e)
		}
	}
}

func TestRCBSpatialLocality(t *testing.T) {
	// With p=2 on this symmetric domain, RCB should split roughly along
	// a plane: the two subdomain centroids must be clearly separated.
	m := testMesh(t)
	pt := mustPartition(t, m, 2, RCB)
	var c0, c1 geom.Vec3
	var n0, n1 int
	for e := 0; e < m.NumElems(); e++ {
		if pt.ElemPE[e] == 0 {
			c0 = c0.Add(m.Centroid(e))
			n0++
		} else {
			c1 = c1.Add(m.Centroid(e))
			n1++
		}
	}
	c0 = c0.Scale(1 / float64(n0))
	c1 = c1.Scale(1 / float64(n1))
	if c0.Dist(c1) < 0.3 {
		t.Errorf("RCB halves not spatially separated: centroids %v, %v", c0, c1)
	}
}

func TestGeometricBeatsRandomOnCommunication(t *testing.T) {
	m := testMesh(t)
	for _, method := range []Method{RCB, Inertial} {
		geo := mustAnalyze(t, m, mustPartition(t, m, 8, method))
		rnd := mustAnalyze(t, m, mustPartition(t, m, 8, Random))
		if geo.Cmax()*2 > rnd.Cmax() {
			t.Errorf("%v C_max=%d not clearly better than random C_max=%d",
				method, geo.Cmax(), rnd.Cmax())
		}
	}
}

func TestProfileInvariants(t *testing.T) {
	m := testMesh(t)
	for _, method := range []Method{RCB, Inertial, Random, Linear, StripesZ} {
		for _, p := range []int{2, 4, 8, 13} {
			pt := mustPartition(t, m, p, method)
			pr := mustAnalyze(t, m, pt)
			checkProfileInvariants(t, m, pr, method)
		}
	}
}

func checkProfileInvariants(t *testing.T, m *mesh.Mesh, pr *Profile, method Method) {
	t.Helper()
	// Message matrix symmetric with zero diagonal, since every message
	// is matched by an equal-length reply.
	for i := 0; i < pr.P; i++ {
		if pr.Msg[i][i] != 0 {
			t.Errorf("%v: self-message on PE %d", method, i)
		}
		for j := 0; j < pr.P; j++ {
			if pr.Msg[i][j] != pr.Msg[j][i] {
				t.Errorf("%v: asymmetric messages %d<->%d", method, i, j)
			}
			if pr.Msg[i][j]%WordsPerNode != 0 {
				t.Errorf("%v: message not multiple of 3 words", method)
			}
		}
	}
	for i := 0; i < pr.P; i++ {
		// C_i is even (sent+received) and divisible by 3 (DOF), so by 6.
		if pr.C[i]%6 != 0 {
			t.Errorf("%v: C[%d]=%d not divisible by 6", method, i, pr.C[i])
		}
		if pr.B[i]%2 != 0 {
			t.Errorf("%v: B[%d]=%d odd", method, i, pr.B[i])
		}
	}
	// Sum of F over PEs ≥ sequential flop count (replication only adds).
	seq := int64(2 * 9 * (2*m.NumEdges() + m.NumNodes()))
	var sumF int64
	for _, f := range pr.F {
		sumF += f
	}
	if sumF < seq {
		t.Errorf("%v: ΣF = %d < sequential %d", method, sumF, seq)
	}
	if pr.P == 1 {
		if sumF != seq {
			t.Errorf("%v: single PE F = %d, want exactly %d", method, sumF, seq)
		}
		if pr.Cmax() != 0 || pr.Bmax() != 0 {
			t.Errorf("%v: single PE communicates", method)
		}
	}
	// β within its proven range [1, 2].
	if b := pr.Beta(); b < 1 || b > 2 {
		t.Errorf("%v: β = %g outside [1,2]", method, b)
	}
	// Bisection volume cannot exceed total volume.
	if pr.BisectionWords() > pr.TotalWords() {
		t.Errorf("%v: bisection words %d > total %d", method, pr.BisectionWords(), pr.TotalWords())
	}
	// B_max consistent with neighbor count.
	if got, want := pr.Bmax(), int64(2*pr.MaxNeighbors()); got != want && pr.P > 1 {
		// Bmax is attained by some PE; MaxNeighbors is the max partner
		// count, and B_i = 2 * partners(i), so the maxima coincide.
		t.Errorf("%v: Bmax = %d, 2*MaxNeighbors = %d", method, got, want)
	}
	// Resident node lists: every node resides somewhere; shared count
	// consistent with NodePEs.
	shared := 0
	for i, lst := range pr.NodePEs {
		if len(lst) == 0 {
			t.Fatalf("%v: node %d resides nowhere", method, i)
		}
		if len(lst) > 1 {
			shared++
		}
	}
	if shared != pr.SharedNodes {
		t.Errorf("%v: SharedNodes = %d, counted %d", method, pr.SharedNodes, shared)
	}
	// C equals 6 words per shared-pair incidence: cross-check against
	// NodePEs directly.
	wantC := make([]int64, pr.P)
	for _, lst := range pr.NodePEs {
		for a := 0; a < len(lst); a++ {
			for b := 0; b < len(lst); b++ {
				if a != b {
					wantC[lst[a]] += 2 * WordsPerNode
				}
			}
		}
	}
	for i := 0; i < pr.P; i++ {
		if pr.C[i] != wantC[i] {
			t.Errorf("%v: C[%d] = %d, want %d", method, i, pr.C[i], wantC[i])
		}
	}
}

func TestAnalyzeRejectsMismatch(t *testing.T) {
	m := testMesh(t)
	pt := &Partition{P: 2, ElemPE: make([]int32, 3)}
	if _, err := Analyze(m, pt); err == nil {
		t.Error("mismatched partition accepted")
	}
	bad := mustPartition(t, m, 4, RCB)
	bad.ElemPE[0] = 99
	if _, err := Analyze(m, bad); err == nil {
		t.Error("invalid PE id accepted")
	}
}

func TestMavgAndRatios(t *testing.T) {
	m := testMesh(t)
	pr := mustAnalyze(t, m, mustPartition(t, m, 8, RCB))
	if pr.Mavg() <= 0 {
		t.Errorf("Mavg = %g", pr.Mavg())
	}
	if pr.CompCommRatio() <= 0 {
		t.Errorf("F/Cmax = %g", pr.CompCommRatio())
	}
	if pr.LoadImbalance() < 1 {
		t.Errorf("load imbalance %g < 1", pr.LoadImbalance())
	}
	single := mustAnalyze(t, m, mustPartition(t, m, 1, RCB))
	if !math.IsInf(single.CompCommRatio(), 1) {
		t.Errorf("single PE ratio = %g, want +Inf", single.CompCommRatio())
	}
	if single.Mavg() != 0 {
		t.Errorf("single PE Mavg = %g", single.Mavg())
	}
	if single.Beta() != 1 {
		t.Errorf("single PE beta = %g", single.Beta())
	}
}

// The surface-to-volume law: quadrupling PE count for a fixed mesh must
// increase C_max only modestly while F drops ~4x, so F/C_max falls.
func TestCompCommRatioFallsWithMorePEs(t *testing.T) {
	m := testMesh(t)
	r4 := mustAnalyze(t, m, mustPartition(t, m, 4, RCB)).CompCommRatio()
	r16 := mustAnalyze(t, m, mustPartition(t, m, 16, RCB)).CompCommRatio()
	if r16 >= r4 {
		t.Errorf("F/Cmax did not fall: p=4 %g, p=16 %g", r4, r16)
	}
}

func TestDistributionOf(t *testing.T) {
	d := DistributionOf([]int64{10, 2, 8, 4, 6})
	if d.Min != 2 || d.Max != 10 || d.Median != 6 || d.Mean != 6 {
		t.Errorf("distribution = %+v", d)
	}
	if d.P90 != 10 {
		t.Errorf("P90 = %d", d.P90)
	}
	empty := DistributionOf(nil)
	if empty != (Distribution{}) {
		t.Errorf("empty distribution = %+v", empty)
	}
}

func TestProfileDistributions(t *testing.T) {
	m := testMesh(t)
	pr := mustAnalyze(t, m, mustPartition(t, m, 8, RCB))
	for name, d := range map[string]Distribution{
		"C": pr.CDistribution(),
		"B": pr.BDistribution(),
		"F": pr.FDistribution(),
	} {
		if d.Min > d.Median || d.Median > d.P90 || d.P90 > d.Max {
			t.Errorf("%s distribution not ordered: %+v", name, d)
		}
		if d.Mean <= 0 || float64(d.Max) < d.Mean {
			t.Errorf("%s mean out of range: %+v", name, d)
		}
	}
	if got := pr.CDistribution().Max; got != pr.Cmax() {
		t.Errorf("C max %d != Cmax %d", got, pr.Cmax())
	}
	if got := pr.BDistribution().Max; got != pr.Bmax() {
		t.Errorf("B max %d != Bmax %d", got, pr.Bmax())
	}
}
