package partition

import (
	"testing"
)

func TestElementDualGraph(t *testing.T) {
	m := testMesh(t)
	g, err := elementDualGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if g.n() != m.NumElems() {
		t.Fatalf("graph has %d vertices, mesh %d elements", g.n(), m.NumElems())
	}
	// Tetrahedra have at most four face neighbors.
	for v := 0; v < g.n(); v++ {
		deg := g.xadj[v+1] - g.xadj[v]
		if deg > 4 {
			t.Fatalf("element %d has %d face neighbors", v, deg)
		}
		// Symmetry.
		for k := g.xadj[v]; k < g.xadj[v+1]; k++ {
			u := g.adj[k]
			found := false
			for kk := g.xadj[u]; kk < g.xadj[u+1]; kk++ {
				if g.adj[kk] == int32(v) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("dual graph asymmetric at %d-%d", v, u)
			}
		}
	}
	// The dual graph of a conforming mesh of a box is connected.
	if far := bfsFarthest(g, 0); far == 0 && g.n() > 1 {
		// bfsFarthest returns the last visited vertex; for a connected
		// graph with >1 vertices it cannot be the start unless start is
		// the unique farthest, which BFS ordering prevents here.
		t.Log("bfsFarthest returned start; acceptable but unusual")
	}
	visited := 0
	dist := make([]int32, g.n())
	for i := range dist {
		dist[i] = -1
	}
	queue := []int32{0}
	dist[0] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		visited++
		for k := g.xadj[v]; k < g.xadj[v+1]; k++ {
			if dist[g.adj[k]] < 0 {
				dist[g.adj[k]] = dist[v] + 1
				queue = append(queue, g.adj[k])
			}
		}
	}
	if visited != g.n() {
		t.Fatalf("dual graph disconnected: %d of %d reached", visited, g.n())
	}
}

func TestMultilevelValidBalanced(t *testing.T) {
	m := testMesh(t)
	for _, p := range []int{2, 3, 4, 8, 16} {
		pt := mustPartition(t, m, p, Multilevel)
		if err := pt.Validate(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		sizes := pt.Sizes()
		min, max := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if float64(max) > 1.25*float64(min) {
			t.Errorf("p=%d: imbalance %d..%d", p, min, max)
		}
	}
}

func TestMultilevelProfileInvariants(t *testing.T) {
	m := testMesh(t)
	for _, p := range []int{4, 8} {
		pr := mustAnalyze(t, m, mustPartition(t, m, p, Multilevel))
		checkProfileInvariants(t, m, pr, Multilevel)
	}
}

func TestMultilevelCompetitiveWithRCB(t *testing.T) {
	// The multilevel partitioner should produce interface volumes in
	// the same league as RCB (within 2x either way), and far better
	// than random.
	m := testMesh(t)
	ml := mustAnalyze(t, m, mustPartition(t, m, 8, Multilevel))
	rcb := mustAnalyze(t, m, mustPartition(t, m, 8, RCB))
	rnd := mustAnalyze(t, m, mustPartition(t, m, 8, Random))
	if ml.Cmax() > 2*rcb.Cmax() {
		t.Errorf("multilevel C_max %d vs RCB %d: worse than 2x", ml.Cmax(), rcb.Cmax())
	}
	if ml.Cmax()*2 > rnd.Cmax() {
		t.Errorf("multilevel C_max %d not clearly better than random %d", ml.Cmax(), rnd.Cmax())
	}
}

func TestMultilevelDeterministic(t *testing.T) {
	m := testMesh(t)
	a := mustPartition(t, m, 8, Multilevel)
	b := mustPartition(t, m, 8, Multilevel)
	for e := range a.ElemPE {
		if a.ElemPE[e] != b.ElemPE[e] {
			t.Fatalf("element %d differs", e)
		}
	}
}

func TestCoarsenPreservesWeight(t *testing.T) {
	m := testMesh(t)
	g, err := elementDualGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	c := coarsen(g)
	var fineW, coarseW int64
	for _, w := range g.vw {
		fineW += int64(w)
	}
	for _, w := range c.coarse.vw {
		coarseW += int64(w)
	}
	if fineW != coarseW {
		t.Fatalf("weight not preserved: %d -> %d", fineW, coarseW)
	}
	if c.coarse.n() >= g.n() {
		t.Fatalf("no coarsening: %d -> %d", g.n(), c.coarse.n())
	}
	// Coarse graph symmetric with positive weights.
	for v := 0; v < c.coarse.n(); v++ {
		for k := c.coarse.xadj[v]; k < c.coarse.xadj[v+1]; k++ {
			if c.coarse.ew[k] <= 0 {
				t.Fatal("non-positive coarse edge weight")
			}
		}
	}
}

func TestRefineImprovesCut(t *testing.T) {
	m := testMesh(t)
	g, err := elementDualGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	n := g.n()
	// Deliberately bad balanced split: odd/even interleave.
	side := make([]int8, n)
	var wLeft int64
	for v := 0; v < n; v++ {
		side[v] = int8(v % 2)
		if side[v] == 0 {
			wLeft += int64(g.vw[v])
		}
	}
	cut := func() int64 {
		var c int64
		for v := 0; v < n; v++ {
			for k := g.xadj[v]; k < g.xadj[v+1]; k++ {
				if side[g.adj[k]] != side[v] {
					c += int64(g.ew[k])
				}
			}
		}
		return c / 2
	}
	before := cut()
	refine(g, side, wLeft)
	after := cut()
	if after >= before {
		t.Errorf("refine did not improve cut: %d -> %d", before, after)
	}
}
