package partition

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/obs"
)

// WordsPerNode is the number of 64-bit words exchanged per shared node
// per direction: one per degree of freedom (x, y, z displacement).
const WordsPerNode = 3

// Profile captures everything the paper's models need to know about a
// partitioned SMVP: per-PE flop counts, communication words and block
// counts, and the full PE-to-PE message matrix. All conventions follow
// the paper (Figure 7):
//
//   - F[i] is the flop count of PE i's local SMVP: two flops per stored
//     scalar nonzero of the local stiffness matrix, where the local
//     matrix holds block K_ij for every resident node pair — including
//     blocks replicated on several PEs.
//   - Msg[i][j] is the number of 64-bit words PE i sends to PE j during
//     the exchange: three words per node shared between i and j. The
//     matrix is symmetric, because every message is matched by an equal
//     reply carrying the partner's partial sums.
//   - C[i] counts words sent AND received by PE i (hence even and
//     divisible by six), and B[i] counts blocks sent and received under
//     maximal aggregation (one block per neighbor per direction).
type Profile struct {
	P   int
	F   []int64
	C   []int64
	B   []int64
	Msg [][]int64

	// FBoundary[i] is the portion of F[i] spent on block rows whose row
	// node is shared with another PE. These rows must be computed
	// before the exchange can start, so F - FBoundary is the work
	// available to hide communication behind when the application
	// overlaps the phases (the paper's footnote 1; see model.Overlap).
	FBoundary []int64

	// NodesOnPE lists the global node ids resident on each PE, sorted.
	// A node is resident on every PE that owns an element touching it.
	NodesOnPE [][]int32
	// NodePEs is the CSR-ish per-node list of PEs the node resides on,
	// sorted; shared nodes are those with more than one entry.
	NodePEs [][]int32
	// SharedNodes is the total number of nodes resident on >1 PE.
	SharedNodes int
}

// Analyze computes the communication profile of the partitioned mesh.
func Analyze(m *mesh.Mesh, pt *Partition) (*Profile, error) {
	sp := obs.StartSpan(obs.TrackDriver, "setup", "partition.analyze")
	defer sp.End()
	if len(pt.ElemPE) != m.NumElems() {
		return nil, fmt.Errorf("partition: partition covers %d elements, mesh has %d",
			len(pt.ElemPE), m.NumElems())
	}
	if err := pt.Validate(); err != nil {
		return nil, err
	}
	n := m.NumNodes()
	p := pt.P
	pr := &Profile{
		P:       p,
		F:       make([]int64, p),
		C:       make([]int64, p),
		B:       make([]int64, p),
		NodePEs: make([][]int32, n),
	}

	// Node residency: node i resides on PE p iff some element of p
	// touches i.
	for e, t := range m.Tets {
		pe := pt.ElemPE[e]
		for _, v := range t {
			lst := pr.NodePEs[v]
			found := false
			for _, q := range lst {
				if q == pe {
					found = true
					break
				}
			}
			if !found {
				pr.NodePEs[v] = append(lst, pe)
			}
		}
	}
	for i := range pr.NodePEs {
		lst := pr.NodePEs[i]
		sort.Slice(lst, func(a, b int) bool { return lst[a] < lst[b] })
		if len(lst) > 1 {
			pr.SharedNodes++
		}
	}

	// Resident node lists per PE.
	pr.NodesOnPE = make([][]int32, p)
	for i := 0; i < n; i++ {
		for _, pe := range pr.NodePEs[i] {
			pr.NodesOnPE[pe] = append(pr.NodesOnPE[pe], int32(i))
		}
	}

	// Message matrix: 3 words per shared node per ordered PE pair.
	pr.Msg = make([][]int64, p)
	for i := range pr.Msg {
		pr.Msg[i] = make([]int64, p)
	}
	for i := 0; i < n; i++ {
		lst := pr.NodePEs[i]
		for a := 0; a < len(lst); a++ {
			for b := a + 1; b < len(lst); b++ {
				pr.Msg[lst[a]][lst[b]] += WordsPerNode
				pr.Msg[lst[b]][lst[a]] += WordsPerNode
			}
		}
	}

	// C and B from the message matrix.
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i == j || pr.Msg[i][j] == 0 {
				continue
			}
			pr.C[i] += pr.Msg[i][j] + pr.Msg[j][i] // sent + received
			pr.B[i] += 2                           // one block out, one in
		}
	}

	// F: local nonzero blocks = resident diagonal blocks + two blocks
	// per edge whose endpoints are both resident on the PE. The edge
	// residency set is the intersection of the endpoint residency sets.
	// Boundary blocks are those in rows of shared nodes.
	blocks := make([]int64, p)
	bblocks := make([]int64, p)
	for i := 0; i < n; i++ {
		shared := len(pr.NodePEs[i]) > 1
		for _, pe := range pr.NodePEs[i] {
			blocks[pe]++
			if shared {
				bblocks[pe]++
			}
		}
	}
	for _, e := range m.Edges() {
		la, lb := pr.NodePEs[e[0]], pr.NodePEs[e[1]]
		aShared, bShared := len(la) > 1, len(lb) > 1
		// Intersect two short sorted lists.
		x, y := 0, 0
		for x < len(la) && y < len(lb) {
			switch {
			case la[x] < lb[y]:
				x++
			case la[x] > lb[y]:
				y++
			default:
				blocks[la[x]] += 2 // (a,b) and (b,a)
				if aShared {
					bblocks[la[x]]++ // row a block (a,b)
				}
				if bShared {
					bblocks[la[x]]++ // row b block (b,a)
				}
				x++
				y++
			}
		}
	}
	pr.FBoundary = make([]int64, p)
	for i := 0; i < p; i++ {
		pr.F[i] = 2 * 9 * blocks[i] // two flops per scalar nonzero
		pr.FBoundary[i] = 2 * 9 * bblocks[i]
	}
	obs.GetCounter("partition.analyze.calls").Add(1)
	obs.GetGauge("partition.shared_nodes").Set(float64(pr.SharedNodes))
	return pr, nil
}

// FBoundaryMax returns max_i FBoundary[i].
func (pr *Profile) FBoundaryMax() int64 { return maxi64(pr.FBoundary) }

// Fmax returns max_i F[i], the paper's per-PE flop count F.
func (pr *Profile) Fmax() int64 { return maxi64(pr.F) }

// Cmax returns max_i C[i], the paper's C_max.
func (pr *Profile) Cmax() int64 { return maxi64(pr.C) }

// Bmax returns max_i B[i] under maximal aggregation, the paper's B_max.
func (pr *Profile) Bmax() int64 { return maxi64(pr.B) }

// TotalWords returns the total directed communication volume in words.
func (pr *Profile) TotalWords() int64 {
	var v int64
	for i := range pr.Msg {
		for j := range pr.Msg[i] {
			v += pr.Msg[i][j]
		}
	}
	return v
}

// TotalMessages returns the number of directed messages (nonzero m_ij).
func (pr *Profile) TotalMessages() int64 {
	var c int64
	for i := range pr.Msg {
		for j := range pr.Msg[i] {
			if i != j && pr.Msg[i][j] > 0 {
				c++
			}
		}
	}
	return c
}

// Mavg returns the average message size in words (Figure 7's M_avg):
// total directed volume over directed message count.
func (pr *Profile) Mavg() float64 {
	msgs := pr.TotalMessages()
	if msgs == 0 {
		return 0
	}
	return float64(pr.TotalWords()) / float64(msgs)
}

// CompCommRatio returns F/C_max, the computation/communication ratio of
// Figure 7. It returns +Inf when there is no communication.
func (pr *Profile) CompCommRatio() float64 {
	c := pr.Cmax()
	if c == 0 {
		return math.Inf(1)
	}
	return float64(pr.Fmax()) / float64(c)
}

// Beta computes the paper's error bound β on the model's assumption that
// the max-words PE is also the max-blocks PE:
//
//	β = 1 + min over PEs i of max{ C_max(B_max−B_i)/(C_i·B_max),
//	                               B_max(C_max−C_i)/(B_i·C_max) }.
//
// β is 1 when some PE attains both maxima and is provably below 2. PEs
// that do not communicate at all are skipped (they cannot bound the
// communication phase). The computation lives in model.BetaOf so the
// aggregated exchange can evaluate the same bound on its fused leg's
// per-PE vectors.
func (pr *Profile) Beta() float64 { return model.BetaOf(pr.C, pr.B) }

// BisectionWords returns the number of words crossing the canonical
// bisection (PEs 0..P/2-1 versus the rest) during one exchange phase:
// V = 2·Σ_{i<P/2} Σ_{j≥P/2} m_ij, per Section 4.2.
func (pr *Profile) BisectionWords() int64 {
	half := pr.P / 2
	var v int64
	for i := 0; i < half; i++ {
		for j := half; j < pr.P; j++ {
			v += pr.Msg[i][j]
		}
	}
	return 2 * v
}

// MaxNeighbors returns the largest number of distinct communication
// partners of any PE (B_max/2 under maximal aggregation).
func (pr *Profile) MaxNeighbors() int {
	best := 0
	for i := 0; i < pr.P; i++ {
		cnt := 0
		for j := 0; j < pr.P; j++ {
			if i != j && pr.Msg[i][j] > 0 {
				cnt++
			}
		}
		if cnt > best {
			best = cnt
		}
	}
	return best
}

// LoadImbalance returns max(F)/mean(F), a measure of how evenly the
// partitioner spread the computation.
func (pr *Profile) LoadImbalance() float64 {
	var sum int64
	for _, f := range pr.F {
		sum += f
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(pr.P)
	return float64(pr.Fmax()) / mean
}

// Distribution summarizes the spread of a per-PE quantity. The paper's
// tables report only maxima; the technical report it draws on also
// studies the distributions, which show how far the partitioner is
// from balancing communication (not just computation).
type Distribution struct {
	Min, Median, P90, Max int64
	Mean                  float64
}

// DistributionOf computes the summary of a per-PE quantity.
func DistributionOf(xs []int64) Distribution {
	if len(xs) == 0 {
		return Distribution{}
	}
	sorted := make([]int64, len(xs))
	copy(sorted, xs)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	pick := func(q float64) int64 {
		i := int(math.Ceil(q * float64(len(sorted)-1)))
		return sorted[i]
	}
	return Distribution{
		Min:    sorted[0],
		Median: pick(0.5),
		P90:    pick(0.9),
		Max:    sorted[len(sorted)-1],
		Mean:   float64(sum) / float64(len(sorted)),
	}
}

// CDistribution summarizes the per-PE communication word counts.
func (pr *Profile) CDistribution() Distribution { return DistributionOf(pr.C) }

// BDistribution summarizes the per-PE block counts.
func (pr *Profile) BDistribution() Distribution { return DistributionOf(pr.B) }

// FDistribution summarizes the per-PE flop counts.
func (pr *Profile) FDistribution() Distribution { return DistributionOf(pr.F) }

func maxi64(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
