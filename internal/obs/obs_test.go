package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// withEnabled runs f with metrics collection on, restoring the prior
// state afterwards so tests compose.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	f()
}

func TestDisabledIsNoOp(t *testing.T) {
	r := NewRegistry()
	SetEnabled(false)
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(5)
	g.Set(3.25)
	h.Observe(1024)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled telemetry recorded: counter=%d gauge=%g hist=%d",
			c.Value(), g.Value(), h.Count())
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	withEnabled(t, func() {
		var c *Counter
		var g *Gauge
		var h *Histogram
		c.Add(1)
		g.Set(1)
		h.Observe(1)
		if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
			t.Fatal("nil metrics should read zero")
		}
	})
}

func TestConcurrentUpdates(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		const workers = 16
		const perWorker = 1000
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				c := r.Counter("shared.counter")
				h := r.Histogram("shared.hist")
				g := r.Gauge("shared.gauge")
				for i := 0; i < perWorker; i++ {
					c.Add(1)
					h.Observe(int64(i % 4096))
					g.Set(float64(w))
				}
			}(w)
		}
		wg.Wait()
		if got := r.Counter("shared.counter").Value(); got != workers*perWorker {
			t.Fatalf("counter = %d, want %d", got, workers*perWorker)
		}
		if got := r.Histogram("shared.hist").Count(); got != workers*perWorker {
			t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
		}
	})
}

func TestHistogramBuckets(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		h := r.Histogram("h")
		// 0 and negatives → zero bucket (le 1); 1 → [1,2); 2,3 → [2,4);
		// 1024 → [1024,2048).
		for _, v := range []int64{0, -7, 1, 2, 3, 1024} {
			h.Observe(v)
		}
		snap := r.Snapshot().Histograms["h"]
		if snap.Count != 6 {
			t.Fatalf("count = %d, want 6", snap.Count)
		}
		if snap.Sum != 0-7+1+2+3+1024 {
			t.Fatalf("sum = %d", snap.Sum)
		}
		want := map[uint64]int64{1: 2, 2: 1, 4: 2, 2048: 1}
		if len(snap.Buckets) != len(want) {
			t.Fatalf("buckets = %+v, want bounds %v", snap.Buckets, want)
		}
		for _, b := range snap.Buckets {
			if want[b.Le] != b.Count {
				t.Fatalf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
			}
		}
	})
}

func TestSnapshotDeterminism(t *testing.T) {
	withEnabled(t, func() {
		build := func() *Registry {
			r := NewRegistry()
			// Populate in different orders; JSON must come out identical.
			names := []string{"z.last", "a.first", "m.mid"}
			for _, n := range names {
				r.Counter(n).Add(3)
				r.Gauge("g." + n).Set(1.5)
				r.Histogram("h." + n).Observe(17)
			}
			return r
		}
		var bufs [2]bytes.Buffer
		for i := range bufs {
			if err := build().Snapshot().WriteJSON(&bufs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
			t.Fatalf("snapshots differ:\n%s\nvs\n%s", bufs[0].String(), bufs[1].String())
		}
		// And the JSON is parseable with the expected top-level shape.
		var m map[string]json.RawMessage
		if err := json.Unmarshal(bufs[0].Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"counters", "gauges", "histograms"} {
			if _, ok := m[key]; !ok {
				t.Fatalf("snapshot JSON missing %q", key)
			}
		}
	})
}

func TestCounterNamesPrefix(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		r.Counter("par.exchange.bytes.pe1").Add(1)
		r.Counter("par.exchange.bytes.pe0").Add(1)
		r.Counter("spark.smv.calls").Add(1)
		got := r.Snapshot().CounterNames("par.exchange.bytes.")
		if len(got) != 2 || got[0] != "par.exchange.bytes.pe0" || got[1] != "par.exchange.bytes.pe1" {
			t.Fatalf("CounterNames = %v", got)
		}
	})
}

func TestRegistryReset(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		r.Counter("c").Add(1)
		r.Reset()
		if got := r.Counter("c").Value(); got != 0 {
			t.Fatalf("after reset counter = %d", got)
		}
	})
}

func BenchmarkCounterDisabled(b *testing.B) {
	SetEnabled(false)
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
