package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanNoOpWhenInactive(t *testing.T) {
	StopTrace()
	sp := StartSpanPE("compute", "x", 0)
	if sp.Active() {
		t.Fatal("span active without a tracer")
	}
	sp.End() // must not panic
}

func TestTraceJSONWellFormed(t *testing.T) {
	tr := StartTrace()
	defer StopTrace()

	sp := StartSpan(TrackDriver, "setup", "mesh.generate")
	time.Sleep(time.Millisecond)
	sp.End()

	var wg sync.WaitGroup
	for pe := 0; pe < 4; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			c := StartSpanPE("compute", "par.smvp.compute", pe)
			time.Sleep(time.Millisecond)
			c.End()
			e := StartSpanPE("exchange", "par.smvp.exchange", pe)
			e.EndWith(map[string]any{"bytes": 4096})
		}(pe)
	}
	wg.Wait()
	tr.CounterEvent(TrackDriver, "cg.residual", 0.5)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}

	threadNames := make(map[int]string)
	computeTids := make(map[int]bool)
	exchangeTids := make(map[int]bool)
	var sawCounter, sawDriver bool
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				threadNames[e.Tid] = e.Args["name"].(string)
			}
		case "X":
			if e.Dur < 0 || e.Ts < 0 {
				t.Fatalf("negative ts/dur in %+v", e)
			}
			switch e.Name {
			case "par.smvp.compute":
				computeTids[e.Tid] = true
			case "par.smvp.exchange":
				exchangeTids[e.Tid] = true
				if e.Args["bytes"].(float64) != 4096 {
					t.Fatalf("exchange args = %v", e.Args)
				}
			case "mesh.generate":
				sawDriver = true
			}
		case "C":
			sawCounter = true
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if !sawDriver || !sawCounter {
		t.Fatalf("missing driver span (%v) or counter event (%v)", sawDriver, sawCounter)
	}
	if len(computeTids) != 4 || len(exchangeTids) != 4 {
		t.Fatalf("want compute+exchange spans on 4 distinct tracks, got %d/%d",
			len(computeTids), len(exchangeTids))
	}
	for tid := range computeTids {
		name := threadNames[tid]
		if name == "" || name == TrackDriver {
			t.Fatalf("PE span on unlabeled track %d (%q)", tid, name)
		}
	}
}

func TestPhaseStats(t *testing.T) {
	tr := StartTrace()
	defer StopTrace()
	for pe := 0; pe < 2; pe++ {
		sp := StartSpanPE("compute", "phaseA", pe)
		time.Sleep(2 * time.Millisecond)
		sp.End()
	}
	sp := StartSpan(TrackDriver, "setup", "phaseB")
	sp.End()

	stats := tr.PhaseStats()
	if len(stats) != 2 {
		t.Fatalf("got %d phases, want 2", len(stats))
	}
	if stats[0].Name != "phaseA" {
		t.Fatalf("phases not sorted by total time: %+v", stats)
	}
	a := stats[0]
	if a.Count != 2 || a.Tracks != 2 || a.Total < a.Max || a.Max <= 0 {
		t.Fatalf("phaseA stat inconsistent: %+v", a)
	}
}

func TestPETrackNames(t *testing.T) {
	if PETrack(3) != "pe3" || PETrack(300) != "pe300" {
		t.Fatalf("PETrack naming broken: %q %q", PETrack(3), PETrack(300))
	}
}
