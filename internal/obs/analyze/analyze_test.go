package analyze

import (
	"math"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12+1e-9*math.Abs(b)
}

func TestImbalanceOf(t *testing.T) {
	im := ImbalanceOf([]int64{100, 200, 300, 400})
	if !almost(im.Lambda, 1.6) {
		t.Fatalf("Lambda = %g, want 1.6", im.Lambda)
	}
	if im.Mean != 250 || im.Max != 400 {
		t.Fatalf("Mean/Max = %v/%v, want 250/400", im.Mean, im.Max)
	}
	if im.Straggler != 3 {
		t.Fatalf("Straggler = %d, want 3", im.Straggler)
	}
	// Threshold 1.2×250 = 300: only PE3 (400) exceeds it.
	if len(im.Stragglers) != 1 || im.Stragglers[0] != 3 {
		t.Fatalf("Stragglers = %v, want [3]", im.Stragglers)
	}

	if bal := ImbalanceOf([]int64{7, 7, 7}); !almost(bal.Lambda, 1) || len(bal.Stragglers) != 0 {
		t.Fatalf("balanced vector: λ=%g stragglers=%v", bal.Lambda, bal.Stragglers)
	}
	if empty := ImbalanceOf(nil); empty.Lambda != 1 || empty.Straggler != -1 {
		t.Fatalf("empty vector: %+v", empty)
	}
	if zero := ImbalanceOf([]int64{0, 0}); zero.Lambda != 1 || zero.Straggler != -1 {
		t.Fatalf("zero vector: %+v", zero)
	}
}

func TestAchievedOf(t *testing.T) {
	w := Window{
		Iters:      10,
		ComputeNS:  []int64{100, 400}, // max 400ns over 10 iters → 40ns/iter
		ExchangeNS: []int64{100, 80},  // max 100ns → 10ns/iter
	}
	app := model.AppProperties{F: 8, Cmax: 5, Bmax: 10}
	a := AchievedOf(w, app)
	if !almost(a.ComputePerIter, 40e-9) {
		t.Fatalf("ComputePerIter = %g, want 40e-9", a.ComputePerIter)
	}
	if !almost(a.ExchangePerIter, 10e-9) {
		t.Fatalf("ExchangePerIter = %g, want 10e-9", a.ExchangePerIter)
	}
	if !almost(a.Tf, 5e-9) {
		t.Fatalf("Tf = %g, want 5e-9", a.Tf)
	}
	if !almost(a.Tc, 2e-9) {
		t.Fatalf("Tc = %g, want 2e-9", a.Tc)
	}
	if z := AchievedOf(Window{}, app); z != (Achieved{}) {
		t.Fatalf("empty window achieved %+v, want zero", z)
	}
}

func TestDriftFlat(t *testing.T) {
	w := Window{Iters: 10, ExchangeNS: []int64{100}} // measured Tc = 10ns/5 = 2ns
	app := model.AppProperties{F: 8, Cmax: 5, Bmax: 10}

	// Eq.(2): (Bmax/Cmax)·Tl + Tw = 2·0.5ns + 1ns = 2ns → zero drift.
	d := DriftFlat(w, app, 0.5e-9, 1e-9)
	if !almost(d.PredictedTc, 2e-9) || !almost(d.MeasuredTc, 2e-9) || !almost(d.Rel, 0) {
		t.Fatalf("zero-drift case: %+v", d)
	}

	// Predicted 1.5ns, measured 2ns → +33.3% drift.
	d = DriftFlat(w, app, 0.5e-9, 0.5e-9)
	if !almost(d.PredictedTc, 1.5e-9) || !almost(d.Rel, 1.0/3.0) {
		t.Fatalf("slow case: %+v", d)
	}

	// Measured faster than predicted → negative drift.
	d = DriftFlat(w, app, 1e-9, 2e-9) // predicted 4ns
	if d.Rel >= 0 || !almost(d.Rel, -0.5) {
		t.Fatalf("fast case: %+v", d)
	}
}

func TestDriftAggregated(t *testing.T) {
	w := Window{Iters: 10, ExchangeNS: []int64{100}} // measured Tc = 2ns
	agg := model.AggProperties{
		App:       model.AppProperties{F: 8, Cmax: 5, Bmax: 10},
		InterBmax: 2, InterCmax: 4,
		LocalBmax: 4, LocalCmax: 6,
	}
	local := model.LocalParams{Tl: 0.25e-9, Tw: 0.5e-9}
	// (2/5)·1ns + (4/5)·0.5ns + (4/5)·0.25ns + (6/5)·0.5ns = 1.6ns
	d := DriftAggregated(w, agg, 1e-9, 0.5e-9, local)
	if !almost(d.PredictedTc, 1.6e-9) {
		t.Fatalf("PredictedTc = %g, want 1.6e-9", d.PredictedTc)
	}
	if !almost(d.Rel, (2.0-1.6)/1.6) {
		t.Fatalf("Rel = %g, want 0.25", d.Rel)
	}
}

func TestFromSnapshots(t *testing.T) {
	prevEnabled := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prevEnabled)

	r := obs.NewRegistry()
	comp := r.PEAccum(MetricCompute, 2)
	exch := r.PEAccum(MetricExchange, 2)
	upd := r.PEAccum(MetricUpdate, 2)

	comp.Observe(0, 100)
	comp.Observe(1, 150)
	exch.Observe(0, 30)
	exch.Observe(1, 20)
	upd.Observe(0, 10)
	upd.Observe(1, 10)
	prev := r.Snapshot()

	for i := 0; i < 3; i++ {
		comp.Observe(0, 100)
		comp.Observe(1, 200)
		exch.Observe(0, 40)
		exch.Observe(1, 10)
		upd.Observe(0, 5)
		upd.Observe(1, 5)
	}
	cur := r.Snapshot()

	w, ok := FromSnapshots(cur, prev)
	if !ok {
		t.Fatal("window not found in delta snapshot")
	}
	if w.Iters != 3 {
		t.Fatalf("Iters = %d, want 3", w.Iters)
	}
	if w.ComputeNS[0] != 300 || w.ComputeNS[1] != 600 {
		t.Fatalf("ComputeNS = %v, want [300 600]", w.ComputeNS)
	}
	if w.ExchangeNS[0] != 120 || w.ExchangeNS[1] != 30 {
		t.Fatalf("ExchangeNS = %v, want [120 30]", w.ExchangeNS)
	}
	if w.UpdateNS[0] != 15 || w.UpdateNS[1] != 15 {
		t.Fatalf("UpdateNS = %v, want [15 15]", w.UpdateNS)
	}

	// Full snapshot (nil prev) sees the cumulative totals.
	full, ok := FromSnapshots(cur, nil)
	if !ok || full.Iters != 4 || full.ComputeNS[0] != 400 {
		t.Fatalf("full window: ok=%v %+v", ok, full)
	}

	// A snapshot with no phase accumulators yields no window.
	if _, ok := FromSnapshot(obs.NewRegistry().Snapshot()); ok {
		t.Fatal("empty registry should not produce a window")
	}
	if _, ok := FromSnapshot(nil); ok {
		t.Fatal("nil snapshot should not produce a window")
	}
}

func TestReportStringAndPublish(t *testing.T) {
	prevEnabled := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prevEnabled)

	w := Window{
		Iters:      10,
		ComputeNS:  []int64{100, 400},
		ExchangeNS: []int64{100, 80},
	}
	app := model.AppProperties{F: 8, Cmax: 5, Bmax: 10}
	rep := Analyze(w, app, 0.5e-9, 1e-9)
	if rep.Schedule != "flat" {
		t.Fatalf("Schedule = %q", rep.Schedule)
	}
	if !almost(rep.Compute.Lambda, 1.6) {
		t.Fatalf("compute λ = %g", rep.Compute.Lambda)
	}
	if s := rep.String(); s == "" {
		t.Fatal("empty report string")
	}

	rep.Publish()
	snap := obs.Default.Snapshot()
	if g := snap.Gauges["analyze.compute.lambda"]; !almost(g, 1.6) {
		t.Fatalf("published λ gauge = %g, want 1.6", g)
	}
	if _, found := snap.Gauges["analyze.drift.rel"]; !found {
		t.Fatal("drift gauge not published")
	}
}

func TestImbalanceDurations(t *testing.T) {
	im := ImbalanceOf([]int64{int64(time.Millisecond), int64(3 * time.Millisecond)})
	if im.Max != 3*time.Millisecond {
		t.Fatalf("Max = %v, want 3ms", im.Max)
	}
	if im.Mean != 2*time.Millisecond {
		t.Fatalf("Mean = %v, want 2ms", im.Mean)
	}
}
