package analyze_test

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/quake"
)

// TestAnalyzeSFScenario runs a real sf-family operator under both the
// flat and the node-aware aggregated schedule and asserts the analyzer
// produces a coherent report from live telemetry: λ ≥ 1 with a valid
// straggler, a positive achieved decomposition, and a finite Eq.(2)
// drift against the matching schedule model.
func TestAnalyzeSFScenario(t *testing.T) {
	const p = 4

	m, err := quake.SF10.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := partition.PartitionMesh(m, p, partition.RCB, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := partition.Analyze(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	d, err := par.NewDist(m, quake.Material(), pt, pr)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	x := make([]float64, 3*d.GlobalNodes)
	y := make([]float64, 3*d.GlobalNodes)
	for i := range x {
		x[i] = float64(i%11) * 0.1
	}
	runWindow := func(iters int) analyze.Window {
		t.Helper()
		before := obs.Default.Snapshot()
		for i := 0; i < iters; i++ {
			if _, err := d.SMVP(y, x); err != nil {
				t.Fatal(err)
			}
		}
		w, ok := analyze.FromSnapshots(obs.Default.Snapshot(), before)
		if !ok {
			t.Fatal("no analysis window in telemetry delta")
		}
		if w.Iters != int64(iters) {
			t.Fatalf("window covers %d iters, want %d", w.Iters, iters)
		}
		return w
	}

	app := model.AppProperties{F: pr.Fmax(), Cmax: pr.Cmax(), Bmax: pr.Bmax()}
	t3e := machine.T3E()

	checkReport := func(rep analyze.Report, schedule string) {
		t.Helper()
		if rep.Schedule != schedule {
			t.Errorf("Schedule = %q, want %q", rep.Schedule, schedule)
		}
		if rep.Compute.Lambda < 1 {
			t.Errorf("%s compute λ = %g, want >= 1", schedule, rep.Compute.Lambda)
		}
		if rep.Compute.Straggler < 0 || rep.Compute.Straggler >= p {
			t.Errorf("%s straggler PE%d out of range", schedule, rep.Compute.Straggler)
		}
		if rep.Exchange.Lambda < 1 {
			t.Errorf("%s exchange λ = %g, want >= 1", schedule, rep.Exchange.Lambda)
		}
		if rep.Achieved.Tf <= 0 || rep.Achieved.Tc <= 0 {
			t.Errorf("%s achieved Tf=%g Tc=%g, want > 0", schedule,
				rep.Achieved.Tf, rep.Achieved.Tc)
		}
		if rep.Drift.PredictedTc <= 0 || rep.Drift.MeasuredTc <= 0 {
			t.Errorf("%s drift Tc measured=%g predicted=%g, want > 0", schedule,
				rep.Drift.MeasuredTc, rep.Drift.PredictedTc)
		}
		// Drift on an in-memory runtime vs a T3E model is large but must
		// be finite and consistent with its inputs.
		wantRel := (rep.Drift.MeasuredTc - rep.Drift.PredictedTc) / rep.Drift.PredictedTc
		if rep.Drift.Rel != wantRel {
			t.Errorf("%s drift Rel = %g, want %g", schedule, rep.Drift.Rel, wantRel)
		}
	}

	// Flat schedule.
	flatW := runWindow(8)
	checkReport(analyze.Analyze(flatW, app, t3e.Tl, t3e.Tw), "flat")

	// Aggregated (node-aware) schedule: two PEs per node.
	nodeOf := comm.ContiguousNodes(2)
	if err := d.SetAggregation(nodeOf); err != nil {
		t.Fatal(err)
	}
	sched, err := comm.FromMatrix(pr.Msg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := comm.Aggregate(sched, nodeOf)
	if err != nil {
		t.Fatal(err)
	}
	ic, ib := a.InterCB()
	lc, lb := a.LocalCB()
	agg := model.AggProperties{
		App:       app,
		InterBmax: maxI64(ib), InterCmax: maxI64(ic),
		LocalBmax: maxI64(lb), LocalCmax: maxI64(lc),
	}
	if err := agg.Validate(); err != nil {
		t.Fatal(err)
	}
	local := model.LocalParams{Tl: t3e.Tl / 10, Tw: t3e.Tw / 10}

	aggW := runWindow(8)
	checkReport(analyze.AnalyzeAggregated(aggW, agg, t3e.Tl, t3e.Tw, local), "aggregated")
}

func maxI64(xs []int64) int64 {
	var m int64
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
