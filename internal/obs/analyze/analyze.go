// Package analyze turns raw per-PE telemetry into the paper's
// diagnostic quantities. From a registry snapshot window (typically
// cur.Sub(prev) around a batch of SMVP or integration iterations) it
// computes the load-imbalance factor λ = max/mean per-PE compute time,
// identifies stragglers, recovers the achieved T_f and per-word
// exchange cost, and measures drift between the observed exchange time
// and the Equation (2) prediction — for both the flat and the
// node-aware aggregated schedule. Drift is the sensor: a partition
// whose measured exchange diverges from its model is mis-balanced or
// contended, which is exactly the signal elastic rebalancing needs.
package analyze

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

// Metric names the persistent-PE runtime records and this package
// consumes. The runtime observes one value per PE per kernel
// invocation, so each accumulator's per-PE Count is the iteration
// count and Sum the accumulated phase nanoseconds.
const (
	MetricCompute  = "par.phase.compute.ns"
	MetricExchange = "par.phase.exchange.ns"
	MetricUpdate   = "par.phase.update.ns"
)

// Window is a per-PE view of accumulated phase time over some span of
// iterations: index = PE, values = nanoseconds.
type Window struct {
	Iters      int64   // kernel invocations covered (max per-PE count)
	ComputeNS  []int64 // per-PE compute-phase nanoseconds
	ExchangeNS []int64 // per-PE exchange-phase nanoseconds
	UpdateNS   []int64 // per-PE update-phase nanoseconds (integration only)
}

// FromSnapshot extracts a Window from a snapshot (pass a delta from
// Snapshot.Sub to isolate an iteration window; pass a full snapshot
// for run-so-far totals). ok is false when the snapshot carries no
// phase accumulators — telemetry disabled or the runtime never ran.
func FromSnapshot(s *obs.Snapshot) (w Window, ok bool) {
	if s == nil {
		return w, false
	}
	compute, found := s.PEAccums[MetricCompute]
	if !found {
		return w, false
	}
	w.ComputeNS = compute.Sum
	for _, n := range compute.Count {
		if n > w.Iters {
			w.Iters = n
		}
	}
	if ex, found := s.PEAccums[MetricExchange]; found {
		w.ExchangeNS = ex.Sum
	}
	if up, found := s.PEAccums[MetricUpdate]; found {
		w.UpdateNS = up.Sum
	}
	return w, w.Iters > 0
}

// FromSnapshots is FromSnapshot over the delta cur−prev.
func FromSnapshots(cur, prev *obs.Snapshot) (Window, bool) {
	if cur == nil {
		return Window{}, false
	}
	if prev == nil {
		return FromSnapshot(cur)
	}
	return FromSnapshot(cur.Sub(prev))
}

// Imbalance is the paper's load-balance view of one phase: λ = max/mean
// over per-PE accumulated time. λ = 1 is perfect balance; efficiency
// lost to imbalance is (λ−1)/λ of the phase.
type Imbalance struct {
	Lambda     float64       // max / mean per-PE time (1 when empty)
	Mean, Max  time.Duration // per-PE accumulated phase time
	Straggler  int           // PE holding Max; −1 when empty
	Stragglers []int         // PEs above the straggler threshold × mean
}

// StragglerFactor is the default threshold: a PE is a straggler when
// its accumulated phase time exceeds this multiple of the mean.
const StragglerFactor = 1.2

// ImbalanceOf computes the imbalance of one per-PE phase vector.
func ImbalanceOf(perPE []int64) Imbalance {
	im := Imbalance{Lambda: 1, Straggler: -1}
	if len(perPE) == 0 {
		return im
	}
	var sum, max int64
	argmax := 0
	for pe, v := range perPE {
		sum += v
		if v > max {
			max, argmax = v, pe
		}
	}
	if sum == 0 {
		return im
	}
	mean := float64(sum) / float64(len(perPE))
	im.Lambda = float64(max) / mean
	im.Mean = time.Duration(mean)
	im.Max = time.Duration(max)
	im.Straggler = argmax
	for pe, v := range perPE {
		if float64(v) > StragglerFactor*mean {
			im.Stragglers = append(im.Stragglers, pe)
		}
	}
	return im
}

// Achieved is the measured machine-parameter decomposition for a
// window: what T_f and per-word exchange cost the run actually got,
// per kernel iteration, from the slowest PE's point of view (the
// barrier makes the max PE the one everyone waits for).
type Achieved struct {
	ComputePerIter  float64 // seconds of max-PE compute per iteration
	ExchangePerIter float64 // seconds of max-PE exchange per iteration
	Tf              float64 // achieved per-flop time: ComputePerIter / F
	Tc              float64 // achieved per-word exchange cost: ExchangePerIter / Cmax
}

// AchievedOf recovers the achieved parameters from a window using the
// partition's static properties (F flops per PE per SMVP, Cmax words).
func AchievedOf(w Window, app model.AppProperties) Achieved {
	var a Achieved
	if w.Iters == 0 {
		return a
	}
	iters := float64(w.Iters)
	a.ComputePerIter = float64(maxOf(w.ComputeNS)) / iters * 1e-9
	a.ExchangePerIter = float64(maxOf(w.ExchangeNS)) / iters * 1e-9
	if app.F > 0 {
		a.Tf = a.ComputePerIter / float64(app.F)
	}
	if app.Cmax > 0 {
		a.Tc = a.ExchangePerIter / float64(app.Cmax)
	}
	return a
}

// Drift compares the measured per-word exchange cost against the
// Equation (2) prediction for the active schedule. Rel is the signed
// relative drift (measured−predicted)/predicted: positive means the
// exchange ran slower than the model says it should — contention,
// imbalance, or a schedule the model does not capture.
type Drift struct {
	MeasuredTc  float64 // seconds per payload word, from telemetry
	PredictedTc float64 // seconds per payload word, from Eq.(2)
	Rel         float64 // (measured − predicted) / predicted
}

func driftOf(measured, predicted float64) Drift {
	d := Drift{MeasuredTc: measured, PredictedTc: predicted}
	if predicted > 0 {
		d.Rel = (measured - predicted) / predicted
	}
	return d
}

// DriftFlat measures drift against the flat-schedule Eq.(2):
// AchievedTc = (Bmax/Cmax)·Tl + Tw.
func DriftFlat(w Window, app model.AppProperties, Tl, Tw float64) Drift {
	return driftOf(AchievedOf(w, app).Tc, model.AchievedTc(app, Tl, Tw))
}

// DriftAggregated measures drift against the two-level aggregated
// Eq.(2) extension for a node-aware schedule.
func DriftAggregated(w Window, agg model.AggProperties, Tl, Tw float64, local model.LocalParams) Drift {
	return driftOf(AchievedOf(w, agg.App).Tc, model.AchievedTcAggregated(agg, Tl, Tw, local))
}

// Report bundles the full analysis of one window.
type Report struct {
	Window   Window
	Compute  Imbalance // λ over per-PE compute time
	Exchange Imbalance // λ over per-PE exchange time
	Achieved Achieved
	Drift    Drift
	Schedule string // "flat" or "aggregated"
}

// Analyze runs the full flat-schedule analysis of a window.
func Analyze(w Window, app model.AppProperties, Tl, Tw float64) Report {
	return Report{
		Window:   w,
		Compute:  ImbalanceOf(w.ComputeNS),
		Exchange: ImbalanceOf(w.ExchangeNS),
		Achieved: AchievedOf(w, app),
		Drift:    DriftFlat(w, app, Tl, Tw),
		Schedule: "flat",
	}
}

// AnalyzeAggregated runs the full analysis against the aggregated
// (node-aware) schedule model.
func AnalyzeAggregated(w Window, agg model.AggProperties, Tl, Tw float64, local model.LocalParams) Report {
	return Report{
		Window:   w,
		Compute:  ImbalanceOf(w.ComputeNS),
		Exchange: ImbalanceOf(w.ExchangeNS),
		Achieved: AchievedOf(w, agg.App),
		Drift:    DriftAggregated(w, agg, Tl, Tw, local),
		Schedule: "aggregated",
	}
}

// Publish mirrors the report's headline numbers into gauges in the
// default registry, so the HTTP surface (and the future rebalancer)
// sees the latest analysis without recomputing it.
func (r Report) Publish() {
	obs.GetGauge("analyze.compute.lambda").Set(r.Compute.Lambda)
	obs.GetGauge("analyze.exchange.lambda").Set(r.Exchange.Lambda)
	obs.GetGauge("analyze.achieved.tf").Set(r.Achieved.Tf)
	obs.GetGauge("analyze.achieved.tc").Set(r.Achieved.Tc)
	obs.GetGauge("analyze.drift.rel").Set(r.Drift.Rel)
}

// String renders a one-line operator summary.
func (r Report) String() string {
	return fmt.Sprintf(
		"%s schedule, %d iters: λ_comp=%.3f λ_exch=%.3f straggler=PE%d Tf=%.3gs Tc=%.3gs drift=%+.1f%%",
		r.Schedule, r.Window.Iters, r.Compute.Lambda, r.Exchange.Lambda,
		r.Compute.Straggler, r.Achieved.Tf, r.Achieved.Tc, 100*r.Drift.Rel)
}

func maxOf(xs []int64) int64 {
	var m int64
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
