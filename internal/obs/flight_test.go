package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestFlightRingWraps(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 10; i++ {
		f.Record(FlightSpan, "phase", i, int64(i), time.Duration(i))
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	events := f.Events()
	if len(events) != 4 {
		t.Fatalf("Events len = %d, want 4", len(events))
	}
	// The ring keeps the most recent four, oldest first.
	for i, e := range events {
		if want := 6 + i; e.PE != want {
			t.Fatalf("event %d PE = %d, want %d", i, e.PE, want)
		}
		if e.Seq != uint64(7+i) {
			t.Fatalf("event %d Seq = %d, want %d", i, e.Seq, 7+i)
		}
	}
}

func TestFlightPartialFill(t *testing.T) {
	f := NewFlight(16)
	f.Record(FlightFault, "fault.kill", 2, 5, 0)
	f.Record(FlightRecovery, "recover.shrink", -1, 0, 0)
	events := f.Events()
	if len(events) != 2 {
		t.Fatalf("Events len = %d, want 2", len(events))
	}
	if events[0].Kind != FlightFault || events[0].Name != "fault.kill" || events[0].PE != 2 {
		t.Fatalf("unexpected first event: %+v", events[0])
	}
	if events[1].Kind != FlightRecovery || events[1].PE != -1 {
		t.Fatalf("unexpected second event: %+v", events[1])
	}
	if events[0].T > events[1].T {
		t.Fatal("timestamps should be monotonic")
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *Flight
	f.Record(FlightSpan, "x", 0, 0, 0)
	f.SetDumpPath("nope")
	if f.Len() != 0 || f.Events() != nil || f.DumpPath() != "" {
		t.Fatal("nil recorder should be inert")
	}
	if p, err := f.Dump("reason"); p != "" || err != nil {
		t.Fatalf("nil Dump = %q, %v", p, err)
	}
}

func TestFlightDumpDisabledByDefault(t *testing.T) {
	f := NewFlight(8)
	f.Record(FlightSpan, "x", 0, 0, 0)
	if p, err := f.Dump("whatever"); p != "" || err != nil {
		t.Fatalf("Dump without a path should be a no-op, got %q, %v", p, err)
	}
}

func TestFlightDumpJSON(t *testing.T) {
	f := NewFlight(8)
	f.Record(FlightSpan, "par.smvp.compute", 1, 3, 42*time.Microsecond)
	f.Record(FlightFault, "fault.panic", 1, 3, 0)
	path := filepath.Join(t.TempDir(), "flight.trace.json")
	f.SetDumpPath(path)
	got, err := f.Dump("pe fault")
	if err != nil {
		t.Fatal(err)
	}
	if got != path {
		t.Fatalf("Dump returned %q, want %q", got, path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Reason string `json:"reason"`
		Events []struct {
			Kind string  `json:"kind"`
			Name string  `json:"name"`
			PE   int     `json:"pe"`
			Iter int64   `json:"iter"`
			DUs  float64 `json:"dur_us"`
		} `json:"events"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Reason != "pe fault" {
		t.Fatalf("reason = %q, want %q", dump.Reason, "pe fault")
	}
	if len(dump.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(dump.Events))
	}
	if dump.Events[0].Kind != "span" || dump.Events[0].Name != "par.smvp.compute" ||
		dump.Events[0].DUs != 42 {
		t.Fatalf("unexpected span event: %+v", dump.Events[0])
	}
	if dump.Events[1].Kind != "fault" || dump.Events[1].PE != 1 || dump.Events[1].Iter != 3 {
		t.Fatalf("unexpected fault event: %+v", dump.Events[1])
	}
}

func TestFlightWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewFlight(4).WriteJSON(&buf, "empty"); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) != 0 {
		t.Fatalf("empty recorder dumped %d events", len(dump.Events))
	}
}

func TestFlightConcurrentRecord(t *testing.T) {
	f := NewFlight(64)
	var wg sync.WaitGroup
	const workers = 8
	wg.Add(workers + 1)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record(FlightSpan, "concurrent", w, int64(i), 0)
			}
		}(w)
	}
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = f.Events()
			_ = f.Len()
		}
	}()
	wg.Wait()
	events := f.Events()
	if len(events) != 64 {
		t.Fatalf("final ring holds %d events, want 64", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("sequence gap at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlight(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(FlightSpan, "bench.span", i&7, int64(i), time.Microsecond)
	}
}
