package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects timed spans on named tracks and serializes them in
// the Chrome trace_event format, loadable in chrome://tracing and
// Perfetto. Each track (one per PE, plus "driver" for sequential
// stages) becomes a thread row; spans become complete ("X") events.
//
// A tracer becomes the process-wide collection point via StartTrace;
// span helpers (StartSpan, StartSpanPE) are no-ops while no tracer is
// active, costing one atomic pointer load.
type Tracer struct {
	start time.Time

	mu     sync.Mutex
	events []traceEvent
	tids   map[string]int
	order  []string // track names in tid order
}

// traceEvent is one Chrome trace_event object. Ts and Dur are in
// microseconds per the format.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// active is the installed tracer, nil when tracing is off.
var active atomic.Pointer[Tracer]

// NewTracer returns a tracer whose clock starts now. Most callers want
// StartTrace instead, which also installs the tracer globally.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now(), tids: make(map[string]int)}
}

// StartTrace installs a fresh tracer as the global span sink and
// returns it, replacing any previous one.
func StartTrace() *Tracer {
	tr := NewTracer()
	active.Store(tr)
	return tr
}

// StopTrace uninstalls and returns the global tracer (nil if tracing
// was not active). The returned tracer can still be written out.
func StopTrace() *Tracer {
	return active.Swap(nil)
}

// ActiveTracer returns the installed tracer, or nil.
func ActiveTracer() *Tracer { return active.Load() }

// TrackDriver is the track for sequential, non-PE stages (mesh
// generation, partitioning, solves).
const TrackDriver = "driver"

// tid interns a track name. Caller must hold mu.
func (tr *Tracer) tid(track string) int {
	id, ok := tr.tids[track]
	if !ok {
		id = len(tr.order)
		tr.tids[track] = id
		tr.order = append(tr.order, track)
	}
	return id
}

// complete records a finished span.
func (tr *Tracer) complete(track, cat, name string, t0 time.Time, dur time.Duration, args map[string]any) {
	ts := float64(t0.Sub(tr.start)) / float64(time.Microsecond)
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.events = append(tr.events, traceEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts: ts, Dur: float64(dur) / float64(time.Microsecond),
		Tid: tr.tid(track), Args: args,
	})
}

// CounterEvent records a Chrome counter ("C") sample — a stepped graph
// in the viewer. Used for e.g. CG residual progression.
func (tr *Tracer) CounterEvent(track, name string, value float64) {
	if tr == nil {
		return
	}
	ts := float64(time.Since(tr.start)) / float64(time.Microsecond)
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.events = append(tr.events, traceEvent{
		Name: name, Ph: "C", Ts: ts, Tid: tr.tid(track),
		Args: map[string]any{"value": value},
	})
}

// Span is an in-flight timed region. The zero Span (from a disabled
// helper) is inert: End is a no-op.
type Span struct {
	tr    *Tracer
	track string
	cat   string
	name  string
	t0    time.Time
}

// StartSpan opens a span on the given track if tracing is active.
func StartSpan(track, cat, name string) Span {
	tr := active.Load()
	if tr == nil {
		return Span{}
	}
	return Span{tr: tr, track: track, cat: cat, name: name, t0: time.Now()}
}

// peTracks caches the track names of the first PEs so the hot per-PE
// span path does not allocate.
var peTracks = func() []string {
	names := make([]string, 256)
	for i := range names {
		names[i] = fmt.Sprintf("pe%d", i)
	}
	return names
}()

// PETrack returns the track name of PE number pe ("pe0", "pe1", …).
func PETrack(pe int) string {
	if pe >= 0 && pe < len(peTracks) {
		return peTracks[pe]
	}
	return fmt.Sprintf("pe%d", pe)
}

// StartSpanPE opens a span on PE pe's track if tracing is active.
func StartSpanPE(cat, name string, pe int) Span {
	tr := active.Load()
	if tr == nil {
		return Span{}
	}
	return Span{tr: tr, track: PETrack(pe), cat: cat, name: name, t0: time.Now()}
}

// End closes the span, recording a complete event.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	s.tr.complete(s.track, s.cat, s.name, s.t0, time.Since(s.t0), nil)
}

// EndWith closes the span with key/value annotations shown in the
// viewer's detail pane.
func (s Span) EndWith(args map[string]any) {
	if s.tr == nil {
		return
	}
	s.tr.complete(s.track, s.cat, s.name, s.t0, time.Since(s.t0), args)
}

// Active reports whether the span will record on End (i.e. tracing was
// on when it was started).
func (s Span) Active() bool { return s.tr != nil }

// traceFile is the on-disk shape: the standard JSON object form of the
// trace_event format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON serializes the trace, prepending thread_name metadata so
// viewers label each track. Safe to call while spans are still being
// recorded (it snapshots under the lock), though traces are normally
// written after StopTrace.
func (tr *Tracer) WriteJSON(w io.Writer) error {
	tr.mu.Lock()
	events := make([]traceEvent, 0, len(tr.order)+len(tr.events))
	for id, name := range tr.order {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Tid: id,
			Args: map[string]any{"name": name},
		})
	}
	events = append(events, tr.events...)
	tr.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// PhaseStat aggregates the spans sharing one name: how often the phase
// ran, total and longest duration, and how many distinct tracks (PEs)
// it ran on.
type PhaseStat struct {
	Name   string
	Count  int64
	Total  time.Duration
	Max    time.Duration
	Tracks int
}

// PhaseStats aggregates recorded spans by name, sorted by total time
// descending — the measured per-phase profile the report table prints.
func (tr *Tracer) PhaseStats() []PhaseStat {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	type agg struct {
		stat   PhaseStat
		tracks map[int]struct{}
	}
	byName := make(map[string]*agg)
	for _, e := range tr.events {
		if e.Ph != "X" {
			continue
		}
		a, ok := byName[e.Name]
		if !ok {
			a = &agg{stat: PhaseStat{Name: e.Name}, tracks: make(map[int]struct{})}
			byName[e.Name] = a
		}
		d := time.Duration(e.Dur * float64(time.Microsecond))
		a.stat.Count++
		a.stat.Total += d
		if d > a.stat.Max {
			a.stat.Max = d
		}
		a.tracks[e.Tid] = struct{}{}
	}
	out := make([]PhaseStat, 0, len(byName))
	for _, a := range byName {
		a.stat.Tracks = len(a.tracks)
		out = append(out, a.stat)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// NumEvents returns the number of recorded events (excluding the
// metadata events WriteJSON prepends).
func (tr *Tracer) NumEvents() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.events)
}
