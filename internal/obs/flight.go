package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Flight is the fault flight recorder: an always-on, bounded ring
// buffer of recent phase spans and solver/fault/recovery events. Unlike
// the metrics registry (gated by the global telemetry flag) and the
// tracer (active only when installed), the recorder runs unconditionally
// — recording is a mutex, a few stores into a preallocated slot, and no
// allocation, cheap enough to leave enabled in production. When a PE
// faults, the barrier poisons, or a shrink-to-survivors recovery fires,
// the runtime dumps the ring to a trace file (Dump), turning the
// reliability machinery's last moments from silent into forensic: the
// dump shows exactly which PEs were in which phase, what the injector
// did, and how the recovery unfolded, in the order it happened.
type Flight struct {
	mu    sync.Mutex
	start time.Time
	buf   []FlightEvent
	seq   uint64 // total events ever recorded; buf[(seq-1)%len] is newest
	path  string // auto-dump destination; "" disables dumping
}

// FlightKind classifies a recorded event.
type FlightKind uint8

const (
	// FlightSpan is a completed kernel phase on one PE.
	FlightSpan FlightKind = iota
	// FlightFault is an injected or genuine fault (PE panic, corrupt
	// delivery, barrier poison).
	FlightFault
	// FlightSolver is a solver lifecycle event (detection, rollback,
	// restart, resume).
	FlightSolver
	// FlightRecovery is a recovery action (shrink, checkpoint, restore).
	FlightRecovery

	numFlightKinds = 4
)

var flightKindNames = [numFlightKinds]string{"span", "fault", "solver", "recovery"}

// String returns the kind's dump-file name.
func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) {
		return flightKindNames[k]
	}
	return "unknown"
}

// FlightEvent is one recorded event. PE is −1 for driver-side events;
// Iter is the fault injector's kernel index when one is armed (0
// otherwise); Dur is zero for instantaneous events.
type FlightEvent struct {
	Seq  uint64
	T    time.Duration // since recorder start
	Kind FlightKind
	Name string
	PE   int
	Iter int64
	Dur  time.Duration
}

// NewFlight returns a recorder holding the most recent n events.
func NewFlight(n int) *Flight {
	if n < 1 {
		n = 1
	}
	return &Flight{start: time.Now(), buf: make([]FlightEvent, n)}
}

// FlightRecorder is the process-wide recorder the runtime records into.
// 4096 events hold several hundred SMVP invocations of per-PE context
// at typical PE counts — ample history for a post-mortem.
var FlightRecorder = NewFlight(4096)

// Record appends an event to the ring, overwriting the oldest once
// full. Allocation-free: callers pass static (or prebuilt) names.
func (f *Flight) Record(kind FlightKind, name string, pe int, iter int64, dur time.Duration) {
	if f == nil {
		return
	}
	t := time.Since(f.start)
	f.mu.Lock()
	e := &f.buf[f.seq%uint64(len(f.buf))]
	f.seq++
	e.Seq = f.seq
	e.T = t
	e.Kind = kind
	e.Name = name
	e.PE = pe
	e.Iter = iter
	e.Dur = dur
	f.mu.Unlock()
}

// Events returns the recorded events, oldest first.
func (f *Flight) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.seq
	cap64 := uint64(len(f.buf))
	if n > cap64 {
		n = cap64
	}
	out := make([]FlightEvent, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, f.buf[(f.seq-n+i)%cap64])
	}
	return out
}

// Len returns how many events the ring currently holds.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.seq > uint64(len(f.buf)) {
		return len(f.buf)
	}
	return int(f.seq)
}

// SetDumpPath sets the file Dump writes to; "" disables dumping (the
// default, so tests and libraries never drop files into the working
// directory uninvited). CLIs set it when reliability machinery is
// armed.
func (f *Flight) SetDumpPath(path string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.path = path
	f.mu.Unlock()
}

// DumpPath returns the configured auto-dump destination.
func (f *Flight) DumpPath() string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.path
}

// flightDump is the on-disk shape of a flight-recorder dump.
type flightDump struct {
	Reason   string            `json:"reason"`
	DumpedAt string            `json:"dumped_at"`
	Events   []flightDumpEvent `json:"events"`
}

type flightDumpEvent struct {
	Seq  uint64  `json:"seq"`
	TUs  float64 `json:"t_us"`
	Kind string  `json:"kind"`
	Name string  `json:"name"`
	PE   int     `json:"pe"`
	Iter int64   `json:"iter,omitempty"`
	DUs  float64 `json:"dur_us,omitempty"`
}

// WriteJSON serializes the ring (oldest first) with the dump reason.
func (f *Flight) WriteJSON(w io.Writer, reason string) error {
	events := f.Events()
	d := flightDump{
		Reason:   reason,
		DumpedAt: time.Now().UTC().Format(time.RFC3339Nano),
		Events:   make([]flightDumpEvent, len(events)),
	}
	for i, e := range events {
		d.Events[i] = flightDumpEvent{
			Seq:  e.Seq,
			TUs:  float64(e.T) / float64(time.Microsecond),
			Kind: e.Kind.String(),
			Name: e.Name,
			PE:   e.PE,
			Iter: e.Iter,
			DUs:  float64(e.Dur) / float64(time.Microsecond),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// Dump writes the ring to the configured path (overwriting an earlier
// dump — later dumps carry strictly more context) and returns the path
// written, or "" when dumping is disabled. Failures are returned, not
// fatal: the recorder is forensics, never the reason a run dies.
func (f *Flight) Dump(reason string) (string, error) {
	path := f.DumpPath()
	if path == "" {
		return "", nil
	}
	file, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := f.WriteJSON(file, reason); err != nil {
		file.Close()
		return "", err
	}
	return path, file.Close()
}

// RecordFlight records into the process-wide recorder.
func RecordFlight(kind FlightKind, name string, pe int, iter int64, dur time.Duration) {
	FlightRecorder.Record(kind, name, pe, iter, dur)
}

// DumpFlight dumps the process-wide recorder; a no-op (returning "")
// until SetDumpPath has armed a destination.
func DumpFlight(reason string) (string, error) { return FlightRecorder.Dump(reason) }
