package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		h := r.Histogram("q.hist")
		// 100 observations 1..100: p50 should land near 50, p95 near 95,
		// max exactly 100 (the atomic max makes Quantile(1) exact).
		for v := int64(1); v <= 100; v++ {
			h.Observe(v)
		}
		s := r.Snapshot().Histograms["q.hist"]
		if s.Max != 100 {
			t.Fatalf("Max = %d, want 100", s.Max)
		}
		if got := s.Quantile(1); got != 100 {
			t.Fatalf("Quantile(1) = %g, want 100", got)
		}
		// log2 buckets give coarse interpolation; allow one bucket of slack.
		if p50 := s.Quantile(0.5); p50 < 32 || p50 > 64 {
			t.Fatalf("Quantile(0.5) = %g, want within [32,64]", p50)
		}
		if p95 := s.Quantile(0.95); p95 < 64 || p95 > 100 {
			t.Fatalf("Quantile(0.95) = %g, want within [64,100]", p95)
		}
		if mean := s.Mean(); math.Abs(mean-50.5) > 1e-9 {
			t.Fatalf("Mean = %g, want 50.5", mean)
		}
		// Out-of-range q clamps to [0,1].
		if s.Quantile(-1) != s.Quantile(0) || s.Quantile(2) != 100 {
			t.Fatalf("out-of-range quantiles misbehaved: %g %g",
				s.Quantile(-1), s.Quantile(2))
		}
	})
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var s HistogramSnapshot
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot should report zero quantile and mean")
	}
}

func TestSnapshotSubDelta(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		c := r.Counter("d.counter")
		h := r.Histogram("d.hist")
		a := r.PEAccum("d.accum", 2)
		c.Add(10)
		h.Observe(4)
		a.Observe(0, 7)
		before := r.Snapshot()
		c.Add(5)
		h.Observe(4)
		h.Observe(1024)
		a.Observe(0, 3)
		a.Observe(1, 9)
		after := r.Snapshot()

		d := after.Sub(before)
		if got := d.Counters["d.counter"]; got != 5 {
			t.Fatalf("counter delta = %d, want 5", got)
		}
		dh := d.Histograms["d.hist"]
		if dh.Count != 2 || dh.Sum != 1028 {
			t.Fatalf("hist delta count=%d sum=%d, want 2/1028", dh.Count, dh.Sum)
		}
		if dh.Max != 1024 {
			t.Fatalf("hist delta keeps current max: got %d, want 1024", dh.Max)
		}
		da := d.PEAccums["d.accum"]
		if da.Count[0] != 1 || da.Sum[0] != 3 {
			t.Fatalf("PE0 delta = %d/%d, want 1/3", da.Count[0], da.Sum[0])
		}
		if da.Count[1] != 1 || da.Sum[1] != 9 {
			t.Fatalf("PE1 delta = %d/%d, want 1/9", da.Count[1], da.Sum[1])
		}
	})
}

func TestPEAccumBasics(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		a := r.PEAccum("pe.accum", 3)
		if a.Size() != 3 {
			t.Fatalf("Size = %d, want 3", a.Size())
		}
		a.Observe(0, 5)
		a.Observe(0, 2)
		a.Observe(2, 11)
		// Out-of-range and nil are silent no-ops.
		a.Observe(-1, 1)
		a.Observe(3, 1)
		var nilA *PEAccum
		nilA.Observe(0, 1)
		if nilA.Size() != 0 {
			t.Fatal("nil accumulator should have size 0")
		}

		s := a.Snapshot()
		if s.Count[0] != 2 || s.Sum[0] != 7 || s.Max[0] != 5 {
			t.Fatalf("PE0 = %d/%d/%d, want 2/7/5", s.Count[0], s.Sum[0], s.Max[0])
		}
		if s.Count[1] != 0 || s.Sum[1] != 0 {
			t.Fatalf("PE1 should be empty, got %d/%d", s.Count[1], s.Sum[1])
		}
		if s.Count[2] != 1 || s.Sum[2] != 11 || s.Max[2] != 11 {
			t.Fatalf("PE2 = %d/%d/%d, want 1/11/11", s.Count[2], s.Sum[2], s.Max[2])
		}
	})
}

func TestPEAccumGrow(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		a := r.PEAccum("grow.accum", 2)
		a.Observe(1, 42)
		// Re-resolving with a larger size widens in place, preserving data.
		b := r.PEAccum("grow.accum", 4)
		if a != b {
			t.Fatal("PEAccum should return the same accumulator")
		}
		if b.Size() != 4 {
			t.Fatalf("Size after grow = %d, want 4", b.Size())
		}
		s := b.Snapshot()
		if s.Sum[1] != 42 {
			t.Fatalf("grow lost data: sum[1] = %d, want 42", s.Sum[1])
		}
		// Re-resolving smaller never shrinks.
		if r.PEAccum("grow.accum", 1).Size() != 4 {
			t.Fatal("PEAccum must not shrink")
		}
	})
}

func TestPEAccumDisabled(t *testing.T) {
	prev := Enabled()
	SetEnabled(false)
	defer SetEnabled(prev)
	r := NewRegistry()
	a := r.PEAccum("off.accum", 2)
	a.Observe(0, 9)
	if s := a.Snapshot(); s.Count[0] != 0 {
		t.Fatal("disabled accumulator recorded an observation")
	}
}

// TestConcurrentHistogramSnapshot races many histogram and PEAccum
// writers against snapshot readers; correctness here is "the race
// detector stays quiet and totals add up".
func TestConcurrentHistogramSnapshot(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		const writers = 8
		const perWriter = 2000
		h := r.Histogram("race.hist")
		a := r.PEAccum("race.accum", writers)

		var wg sync.WaitGroup
		wg.Add(writers + 2)
		for w := 0; w < writers; w++ {
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					h.Observe(int64(i))
					a.Observe(w, 1)
				}
			}(w)
		}
		// Two readers snapshotting concurrently with the writers.
		for rd := 0; rd < 2; rd++ {
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					s := r.Snapshot()
					hs := s.Histograms["race.hist"]
					var bucketTotal int64
					for _, b := range hs.Buckets {
						bucketTotal += b.Count
					}
					if bucketTotal != hs.Count {
						t.Errorf("snapshot bucket total %d != count %d",
							bucketTotal, hs.Count)
						return
					}
				}
			}()
		}
		wg.Wait()

		s := r.Snapshot()
		if got := s.Histograms["race.hist"].Count; got != writers*perWriter {
			t.Fatalf("hist count = %d, want %d", got, writers*perWriter)
		}
		as := s.PEAccums["race.accum"]
		for w := 0; w < writers; w++ {
			if as.Count[w] != perWriter {
				t.Fatalf("PE%d count = %d, want %d", w, as.Count[w], perWriter)
			}
		}
	})
}

func BenchmarkHistogramEnabled(b *testing.B) {
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	r := NewRegistry()
	h := r.Histogram("bench.hist")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	prev := Enabled()
	SetEnabled(false)
	defer SetEnabled(prev)
	r := NewRegistry()
	h := r.Histogram("bench.hist")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkPEAccumEnabled(b *testing.B) {
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	r := NewRegistry()
	a := r.PEAccum("bench.accum", 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Observe(i&7, int64(i))
	}
}

func BenchmarkPEAccumDisabled(b *testing.B) {
	prev := Enabled()
	SetEnabled(false)
	defer SetEnabled(prev)
	r := NewRegistry()
	a := r.PEAccum("bench.accum", 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Observe(i&7, int64(i))
	}
}
