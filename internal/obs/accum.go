package obs

import (
	"sync/atomic"
)

// PEAccum is a per-PE accumulator: one (count, sum, max) triple per
// processing element, updated lock-free by the PE goroutines. It is the
// registry's answer to the paper's per-PE load question — λ = max/mean
// of per-PE compute time needs every PE's accumulated phase time, not a
// single merged histogram — without the per-name map lookups and string
// formatting that made "metric.pe<i>" counters awkward to consume.
//
// Observe is allocation-free and gated on the global telemetry flag,
// so instrument sites resolve the accumulator once and call it from the
// kernel hot path; the analyze package reads the per-slot sums out of a
// registry snapshot.
type PEAccum struct {
	slots atomic.Pointer[[]peSlot]
}

// peSlot is one PE's accumulator cell.
type peSlot struct {
	count atomic.Int64
	sum   atomic.Int64
	max   atomic.Int64
}

// Observe adds v to PE pe's slot when telemetry is enabled. A nil
// accumulator and an out-of-range pe are no-ops, so optional
// instrumentation needs no guards.
func (a *PEAccum) Observe(pe int, v int64) {
	if a == nil || !enabled.Load() {
		return
	}
	sp := a.slots.Load()
	if sp == nil || pe < 0 || pe >= len(*sp) {
		return
	}
	s := &(*sp)[pe]
	s.count.Add(1)
	s.sum.Add(v)
	for {
		m := s.max.Load()
		if v <= m || s.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Size returns the number of PE slots.
func (a *PEAccum) Size() int {
	if a == nil {
		return 0
	}
	sp := a.slots.Load()
	if sp == nil {
		return 0
	}
	return len(*sp)
}

// grow widens the accumulator to at least n slots, preserving recorded
// values. Called with the registry lock held (construction time, never
// the hot path). Concurrent Observes during the swap land in whichever
// slice they loaded; a just-copied slot may lose one racing update,
// which is acceptable for construction-time resizing.
func (a *PEAccum) grow(n int) {
	old := a.slots.Load()
	if old != nil && len(*old) >= n {
		return
	}
	slots := make([]peSlot, n)
	if old != nil {
		for i := range *old {
			s := &(*old)[i]
			slots[i].count.Store(s.count.Load())
			slots[i].sum.Store(s.sum.Load())
			slots[i].max.Store(s.max.Load())
		}
	}
	a.slots.Store(&slots)
}

// PEAccumSnapshot is the serializable state of a per-PE accumulator:
// parallel per-PE vectors, index = PE number.
type PEAccumSnapshot struct {
	Count []int64 `json:"count"`
	Sum   []int64 `json:"sum"`
	Max   []int64 `json:"max"`
}

// Snapshot copies the accumulator's current state.
func (a *PEAccum) Snapshot() PEAccumSnapshot {
	var out PEAccumSnapshot
	if a == nil {
		return out
	}
	sp := a.slots.Load()
	if sp == nil {
		return out
	}
	n := len(*sp)
	out.Count = make([]int64, n)
	out.Sum = make([]int64, n)
	out.Max = make([]int64, n)
	for i := range *sp {
		s := &(*sp)[i]
		out.Count[i] = s.count.Load()
		out.Sum[i] = s.sum.Load()
		out.Max[i] = s.max.Load()
	}
	return out
}

// Sub returns the per-PE delta since prev. Slots prev did not have
// (the accumulator grew) keep their full values; Max is this
// snapshot's, as a running maximum cannot be differenced.
func (as PEAccumSnapshot) Sub(prev PEAccumSnapshot) PEAccumSnapshot {
	out := PEAccumSnapshot{
		Count: make([]int64, len(as.Count)),
		Sum:   make([]int64, len(as.Sum)),
		Max:   append([]int64(nil), as.Max...),
	}
	for i, v := range as.Count {
		if i < len(prev.Count) {
			v -= prev.Count[i]
		}
		out.Count[i] = v
	}
	for i, v := range as.Sum {
		if i < len(prev.Sum) {
			v -= prev.Sum[i]
		}
		out.Sum[i] = v
	}
	return out
}

// PEAccum returns the named accumulator with at least n slots, creating
// or widening it as needed. Like the other registry accessors it is a
// construction-time call: resolve once, then Observe from the hot path.
func (r *Registry) PEAccum(name string, n int) *PEAccum {
	r.mu.RLock()
	a, ok := r.accums[name]
	r.mu.RUnlock()
	if ok && a.Size() >= n {
		return a
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if a, ok = r.accums[name]; !ok {
		a = &PEAccum{}
		r.accums[name] = a
	}
	a.grow(n)
	return a
}

// GetPEAccum resolves a per-PE accumulator in the default registry.
func GetPEAccum(name string, n int) *PEAccum { return Default.PEAccum(name, n) }
