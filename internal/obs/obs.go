// Package obs is the telemetry substrate of the reproduction: a
// dependency-free, concurrency-safe metrics registry (counters, gauges,
// power-of-two-bucket histograms) plus a span tracer that emits Chrome
// trace_event JSON (see trace.go). The paper's whole argument rests on
// measured per-phase behavior — compute time F·T_f versus an exchange
// split into block latency B_max·T_l and wire time C_max·T_w — so every
// stage of the pipeline reports here: mesh generation, partitioning,
// the goroutine-PE SMVP phases, the Spark98 kernels, the CG solver, and
// the DSM/network simulators.
//
// Telemetry is off by default and gated by one global atomic flag, so
// instrumented hot loops cost a single predictable branch when
// disabled. Instrument sites should resolve their metric pointers once
// (at operator construction, not per call) and then call Add/Observe
// unconditionally; the no-op path is a load and a branch.
//
// Metric names are dotted paths, lowercase, with per-PE metrics
// suffixed ".pe<i>" (e.g. "par.exchange.bytes.pe3"). The registry
// snapshot marshals to JSON with sorted keys, so identical runs produce
// byte-identical snapshots.
package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled is the global metrics switch. Tracing has its own activation
// (a non-nil active tracer); see trace.go.
var enabled atomic.Bool

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns metric collection on or off, globally.
func SetEnabled(on bool) { enabled.Store(on) }

// Counter is a monotonically increasing int64, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n when telemetry is enabled. A nil
// counter is a no-op, so optional instrumentation needs no guards.
func (c *Counter) Add(n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v when telemetry is enabled. A nil gauge is a no-op.
func (g *Gauge) Set(v float64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (zero if never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the bucket count: bucket 0 holds zero (and negative)
// observations, bucket k≥1 holds values in [2^(k-1), 2^k).
const histBuckets = 65

// Histogram counts non-negative int64 observations in fixed
// power-of-two buckets — a natural fit for message sizes in bytes,
// per-PE block counts, and phase durations in nanoseconds, all of
// which the paper characterizes by order of magnitude. Safe for
// concurrent use, lock-free, and allocation-free on the Observe path.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records v when telemetry is enabled. Negative values land in
// the zero bucket. A nil histogram is a no-op.
func (h *Histogram) Observe(v int64) {
	if h == nil || !enabled.Load() {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed value (zero before any observation;
// negative observations do not lower it).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Bucket is one non-empty histogram bucket in a snapshot. Le is the
// exclusive upper bound (a power of two; 1 for the zero bucket).
type Bucket struct {
	Le    uint64 `json:"le"`
	Count int64  `json:"count"`
}

// HistogramSnapshot is the serializable state of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (hs HistogramSnapshot) Mean() float64 {
	if hs.Count == 0 {
		return 0
	}
	return float64(hs.Sum) / float64(hs.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the power-of-two
// buckets by linear interpolation inside the bucket holding the target
// rank. The estimate is exact to within one octave — the resolution the
// log₂ buckets buy for zero hot-path cost — and the top estimate is
// clamped to the recorded Max, so Quantile(1) is exact.
func (hs HistogramSnapshot) Quantile(q float64) float64 {
	if hs.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(hs.Count)
	var cum int64
	for _, b := range hs.Buckets {
		next := cum + b.Count
		if float64(next) >= rank {
			// Bucket [lo, hi) holds the rank; interpolate on position.
			hi := float64(b.Le)
			lo := hi / 2
			if b.Le <= 1 {
				lo = 0
			}
			frac := (rank - float64(cum)) / float64(b.Count)
			v := lo + frac*(hi-lo)
			if hs.Max > 0 && v > float64(hs.Max) {
				v = float64(hs.Max)
			}
			return v
		}
		cum = next
	}
	return float64(hs.Max)
}

// Sub returns the histogram delta since prev: the observations recorded
// between the two snapshots. Max is this snapshot's (a running maximum
// cannot be differenced).
func (hs HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: hs.Count - prev.Count, Sum: hs.Sum - prev.Sum, Max: hs.Max}
	old := make(map[uint64]int64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		old[b.Le] = b.Count
	}
	for _, b := range hs.Buckets {
		if n := b.Count - old[b.Le]; n != 0 {
			out.Buckets = append(out.Buckets, Bucket{Le: b.Le, Count: n})
		}
	}
	return out
}

// Registry holds named metrics. Metrics are created on first use and
// live for the registry's lifetime; instrument sites should cache the
// returned pointers rather than re-resolving names in hot loops.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	accums   map[string]*PEAccum
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		accums:   make(map[string]*PEAccum),
	}
}

// Default is the process-wide registry all package-level helpers use.
var Default = NewRegistry()

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// GetCounter resolves a counter in the default registry.
func GetCounter(name string) *Counter { return Default.Counter(name) }

// GetGauge resolves a gauge in the default registry.
func GetGauge(name string) *Gauge { return Default.Gauge(name) }

// GetHistogram resolves a histogram in the default registry.
func GetHistogram(name string) *Histogram { return Default.Histogram(name) }

// Reset drops every metric in the registry. Intended for tests and for
// CLIs that take several independent measurements in one process.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.hists = make(map[string]*Histogram)
	r.accums = make(map[string]*PEAccum)
}

// Snapshot is a point-in-time copy of a registry's metrics. Maps
// marshal with sorted keys, so equal states produce identical JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	PEAccums   map[string]PEAccumSnapshot   `json:"pe_accums,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
		for i := 0; i < histBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			le := uint64(1)
			if i > 0 {
				le = 1 << uint(i)
			}
			hs.Buckets = append(hs.Buckets, Bucket{Le: le, Count: n})
		}
		s.Histograms[name] = hs
	}
	if len(r.accums) > 0 {
		s.PEAccums = make(map[string]PEAccumSnapshot, len(r.accums))
		for name, a := range r.accums {
			s.PEAccums[name] = a.Snapshot()
		}
	}
	return s
}

// Sub returns the delta snapshot: counters, histograms, and per-PE
// accumulators record what happened strictly between prev and s, which
// is how a caller isolates one solve (or one iteration window) from a
// long-lived process's cumulative registry. Gauges are last-value-wins
// and keep s's values.
func (s *Snapshot) Sub(prev *Snapshot) *Snapshot {
	out := &Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, hs := range s.Histograms {
		out.Histograms[name] = hs.Sub(prev.Histograms[name])
	}
	if len(s.PEAccums) > 0 {
		out.PEAccums = make(map[string]PEAccumSnapshot, len(s.PEAccums))
		for name, as := range s.PEAccums {
			out.PEAccums[name] = as.Sub(prev.PEAccums[name])
		}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// CounterNames returns the sorted names of counters matching the given
// prefix ("" matches all).
func (s *Snapshot) CounterNames(prefix string) []string {
	var names []string
	for name := range s.Counters {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

var expvarOnce sync.Once

// PublishExpvar exposes the default registry's snapshot under the
// expvar key "obs" (visible at /debug/vars on any server that mounts
// expvar). Safe to call more than once.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any { return Default.Snapshot() }))
	})
}
