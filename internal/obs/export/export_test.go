package export

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/testutil"
)

func withEnabled(t *testing.T, f func()) {
	t.Helper()
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	f()
}

func TestWritePrometheus(t *testing.T) {
	withEnabled(t, func() {
		r := obs.NewRegistry()
		r.Counter("solver.cg.iterations").Add(12)
		r.Counter("par.exchange.bytes.pe0").Add(100)
		r.Counter("par.exchange.bytes.pe1").Add(200)
		r.Gauge("solver.cg.residual").Set(0.5)
		h := r.Histogram("par.exchange.msg_bytes")
		h.Observe(3)
		h.Observe(100)
		a := r.PEAccum("par.phase.compute.ns", 2)
		a.Observe(0, 50)
		a.Observe(1, 70)

		var b strings.Builder
		WritePrometheus(&b, r.Snapshot())
		out := b.String()

		for _, want := range []string{
			"# TYPE solver_cg_iterations counter",
			"solver_cg_iterations 12",
			// .pe<i> suffixes collapse into one metric with pe labels.
			"# TYPE par_exchange_bytes counter",
			`par_exchange_bytes{pe="0"} 100`,
			`par_exchange_bytes{pe="1"} 200`,
			"# TYPE solver_cg_residual gauge",
			"solver_cg_residual 0.5",
			"# TYPE par_exchange_msg_bytes histogram",
			`par_exchange_msg_bytes_bucket{le="+Inf"} 2`,
			"par_exchange_msg_bytes_sum 103",
			"par_exchange_msg_bytes_count 2",
			"par_exchange_msg_bytes_max 100",
			`par_phase_compute_ns_sum{pe="0"} 50`,
			`par_phase_compute_ns_sum{pe="1"} 70`,
		} {
			if !strings.Contains(out, want) {
				t.Errorf("prometheus output missing %q\n---\n%s", want, out)
			}
		}
		// Buckets must be cumulative: value 3 lands below value 100's
		// bucket, so the later bucket's count includes the earlier one.
		if !strings.Contains(out, `par_exchange_msg_bytes_bucket{le="128"} 2`) {
			t.Errorf("cumulative bucket missing\n---\n%s", out)
		}
	})
}

func TestSplitPELabel(t *testing.T) {
	cases := []struct {
		in, base, pe string
	}{
		{"par.exchange.bytes.pe7", "par.exchange.bytes", "7"},
		{"par.exchange.bytes.pe12", "par.exchange.bytes", "12"},
		{"solver.cg.iterations", "solver.cg.iterations", ""},
		{"weird.pe", "weird.pe", ""},
		{"weird.pex3", "weird.pex3", ""},
	}
	for _, c := range cases {
		base, pe := splitPELabel(c.in)
		if base != c.base || pe != c.pe {
			t.Errorf("splitPELabel(%q) = %q,%q want %q,%q", c.in, base, pe, c.base, c.pe)
		}
	}
}

func TestPromName(t *testing.T) {
	if got := promName("par.smvp.calls"); got != "par_smvp_calls" {
		t.Fatalf("promName = %q", got)
	}
	if got := promName("9lives"); got != "_9lives" {
		t.Fatalf("promName leading digit = %q", got)
	}
}

func TestMuxEndpoints(t *testing.T) {
	withEnabled(t, func() {
		obs.GetCounter("export.test.hits").Add(3)
		obs.RecordFlight(obs.FlightSpan, "export.test.span", 0, 1, 0)

		srv := httptest.NewServer(NewMux(nil, nil))
		defer srv.Close()

		get := func(path string) (int, string) {
			t.Helper()
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			return resp.StatusCode, string(body)
		}

		if code, body := get("/metrics"); code != 200 ||
			!strings.Contains(body, "export_test_hits 3") {
			t.Errorf("/metrics: code=%d body=%q", code, body)
		}
		if code, body := get("/metrics.json"); code != 200 {
			t.Errorf("/metrics.json: code=%d", code)
		} else {
			var s obs.Snapshot
			if err := json.Unmarshal([]byte(body), &s); err != nil {
				t.Errorf("/metrics.json not a snapshot: %v", err)
			} else if s.Counters["export.test.hits"] != 3 {
				t.Errorf("/metrics.json counter = %d, want 3", s.Counters["export.test.hits"])
			}
		}
		if code, body := get("/debug/vars"); code != 200 ||
			!strings.Contains(body, `"obs"`) {
			t.Errorf("/debug/vars: code=%d missing obs key", code)
		}
		if code, body := get("/flight"); code != 200 ||
			!strings.Contains(body, "export.test.span") {
			t.Errorf("/flight: code=%d body missing span", code)
		}
		if code, _ := get("/debug/pprof/"); code != 200 {
			t.Errorf("/debug/pprof/: code=%d", code)
		}
		if code, _ := get("/debug/pprof/cmdline"); code != 200 {
			t.Errorf("/debug/pprof/cmdline: code=%d", code)
		}
		if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
			t.Errorf("/: code=%d", code)
		}
		if code, _ := get("/nonexistent"); code != 404 {
			t.Errorf("/nonexistent: code=%d, want 404", code)
		}
	})
}

func TestServe(t *testing.T) {
	addr, shutdown, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(context.Background())
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics via Serve: %d", resp.StatusCode)
	}
}

// TestServeWithGracefulDrain pins the shutdown ordering: requests
// already in flight on /metrics and /flight when shutdown begins must
// complete with 200 before the shutdown call returns. The middleware
// holds each handler mid-request until the test observes that shutdown
// has started.
func TestServeWithGracefulDrain(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	entered := make(chan string, 2)
	release := make(chan struct{})
	inner := NewMux(nil, nil)
	held := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- r.URL.Path
		<-release
		inner.ServeHTTP(w, r)
	})
	addr, shutdown, err := ServeWith("127.0.0.1:0", held)
	if err != nil {
		t.Fatal(err)
	}

	type reply struct {
		path string
		code int
		err  error
	}
	replies := make(chan reply, 2)
	client := &http.Client{}
	defer client.CloseIdleConnections()
	for _, path := range []string{"/metrics", "/flight"} {
		go func(path string) {
			resp, err := client.Get("http://" + addr + path)
			if err != nil {
				replies <- reply{path, 0, err}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			replies <- reply{path, resp.StatusCode, nil}
		}(path)
	}
	<-entered
	<-entered // both requests are now in flight, held mid-handler

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- shutdown(ctx)
	}()

	// Shutdown must wait for the held requests, not kill them.
	select {
	case err := <-done:
		t.Fatalf("shutdown returned (%v) while two requests were still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	for i := 0; i < 2; i++ {
		r := <-replies
		if r.err != nil {
			t.Fatalf("in-flight %s was dropped during shutdown: %v", r.path, r.err)
		}
		if r.code != 200 {
			t.Fatalf("in-flight %s answered %d after drain, want 200", r.path, r.code)
		}
	}

	// New connections are refused once the listener is down.
	if _, err := client.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("request after shutdown unexpectedly succeeded")
	}
}
