// Package export publishes the observability registry over HTTP so a
// long-running solve can be inspected live: expvar at /debug/vars, a
// dependency-free Prometheus text endpoint at /metrics, an indented
// JSON snapshot at /metrics.json, the flight-recorder ring at /flight,
// and net/http/pprof under /debug/pprof/. It is the substrate the
// planned quaked service will mount; today quakesim and quakerepro
// expose it behind a -http flag.
package export

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	"repro/internal/obs"
)

// NewMux returns an http.ServeMux exposing the registry and flight
// recorder. Either argument may be nil to default to the process-wide
// instances.
func NewMux(r *obs.Registry, f *obs.Flight) *http.ServeMux {
	if r == nil {
		r = obs.Default
	}
	if f == nil {
		f = obs.FlightRecorder
	}
	obs.PublishExpvar()

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, indexPage)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		f.WriteJSON(w, "http request")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

const indexPage = `quake observability endpoints:
  /metrics        Prometheus text format
  /metrics.json   JSON registry snapshot
  /flight         flight-recorder ring (JSON)
  /debug/vars     expvar (snapshot under key "obs")
  /debug/pprof/   runtime profiles
`

// Serve starts an HTTP server for the default registry and flight
// recorder on addr (":0" picks a free port). It returns the bound
// address and a shutdown function; the server runs until shut down.
func Serve(addr string) (string, func(context.Context) error, error) {
	return ServeWith(addr, NewMux(nil, nil))
}

// ServeWith starts an HTTP server for an arbitrary handler on addr
// (":0" picks a free port). The returned shutdown function stops
// accepting connections, waits for in-flight requests to drain (bounded
// by its context), and surfaces any earlier serve-loop failure that the
// old fire-and-forget goroutine used to swallow.
func ServeWith(addr string, h http.Handler) (string, func(context.Context) error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	shutdown := func(ctx context.Context) error {
		err := srv.Shutdown(ctx)
		// Serve has returned by now (Shutdown closes the listener
		// first); drain its error so a bind- or accept-loop failure is
		// not lost.
		if serr := <-errc; serr != nil && serr != http.ErrServerClosed && err == nil {
			err = serr
		}
		return err
	}
	return ln.Addr().String(), shutdown, nil
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4), with no external dependencies. Dots in
// metric names become underscores; a ".pe<i>" suffix becomes a
// pe="<i>" label so per-PE series group under one metric name.
// Histograms emit the conventional cumulative _bucket/_sum/_count
// series plus a non-standard _max gauge; per-PE accumulators emit
// _count/_sum/_max with pe labels.
func WritePrometheus(w io.Writer, s *obs.Snapshot) {
	type labeled struct {
		pe  string // "" when unlabeled
		val int64
	}
	grouped := make(map[string][]labeled)
	for name, v := range s.Counters {
		base, pe := splitPELabel(name)
		grouped[base] = append(grouped[base], labeled{pe, v})
	}
	for _, base := range sortedKeys(grouped) {
		series := grouped[base]
		sort.Slice(series, func(i, j int) bool { return series[i].pe < series[j].pe })
		pn := promName(base)
		fmt.Fprintf(w, "# TYPE %s counter\n", pn)
		for _, sv := range series {
			if sv.pe == "" {
				fmt.Fprintf(w, "%s %d\n", pn, sv.val)
			} else {
				fmt.Fprintf(w, "%s{pe=%q} %d\n", pn, sv.pe, sv.val)
			}
		}
	}

	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(w, "%s %g\n", pn, s.Gauges[name])
	}

	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		var cum int64
		for _, b := range hs.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.Le, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, hs.Count)
		fmt.Fprintf(w, "%s_sum %d\n", pn, hs.Sum)
		fmt.Fprintf(w, "%s_count %d\n", pn, hs.Count)
		fmt.Fprintf(w, "# TYPE %s_max gauge\n", pn)
		fmt.Fprintf(w, "%s_max %d\n", pn, hs.Max)
	}

	for _, name := range sortedKeys(s.PEAccums) {
		as := s.PEAccums[name]
		pn := promName(name)
		for _, part := range []struct {
			suffix string
			typ    string
			vals   []int64
		}{
			{"_count", "counter", as.Count},
			{"_sum", "counter", as.Sum},
			{"_max", "gauge", as.Max},
		} {
			fmt.Fprintf(w, "# TYPE %s%s %s\n", pn, part.suffix, part.typ)
			for pe, v := range part.vals {
				fmt.Fprintf(w, "%s%s{pe=\"%d\"} %d\n", pn, part.suffix, pe, v)
			}
		}
	}
}

// splitPELabel splits a ".pe<i>" suffix off a metric name, returning
// the base name and the PE index as a string ("" if none).
func splitPELabel(name string) (base, pe string) {
	i := strings.LastIndex(name, ".pe")
	if i < 0 {
		return name, ""
	}
	digits := name[i+3:]
	if digits == "" {
		return name, ""
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return name, ""
		}
	}
	return name[:i], digits
}

// promName converts a registry name to a valid Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
