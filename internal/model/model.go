// Package model implements the SMVP performance models of Sections 3
// and 4 of the paper: the high-level sustained-bandwidth model
// (Equation 1), the low-level block latency / burst bandwidth model
// (Equation 2), the half-bandwidth design rule, and the bisection
// bandwidth computation. All times are in seconds, all volumes in
// 64-bit words (8 bytes), and rates are returned in bytes/second so the
// report layer can print MB/s directly.
package model

import (
	"fmt"
	"math"
)

// BytesPerWord is the size of one communication word: the applications
// exchange 64-bit floating point values.
const BytesPerWord = 8

// AppProperties are the application/partitioner-side inputs to the
// models, one row of the paper's Figure 7: flops per PE, maximum
// communication words per PE, and maximum communication blocks per PE.
type AppProperties struct {
	F    int64 // flops per PE per SMVP
	Cmax int64 // max words sent+received by any PE per SMVP
	Bmax int64 // max blocks sent+received by any PE per SMVP
}

// Validate reports whether the properties can drive the models.
func (a AppProperties) Validate() error {
	if a.F <= 0 {
		return fmt.Errorf("model: F must be positive, got %d", a.F)
	}
	if a.Cmax < 0 || a.Bmax < 0 {
		return fmt.Errorf("model: Cmax/Bmax must be non-negative, got %d/%d", a.Cmax, a.Bmax)
	}
	if (a.Cmax == 0) != (a.Bmax == 0) {
		return fmt.Errorf("model: Cmax (%d) and Bmax (%d) must be zero together", a.Cmax, a.Bmax)
	}
	return nil
}

// RequiredTc solves Equation (1) for the amortized time per
// communication word T_c that achieves target efficiency E on PEs that
// sustain one flop per Tf seconds:
//
//	T_c = (F / C_max) · ((1 − E) / E) · T_f.
//
// It panics on invalid E or Tf; Cmax must be positive.
func RequiredTc(app AppProperties, E, Tf float64) float64 {
	if E <= 0 || E >= 1 {
		panic(fmt.Sprintf("model: efficiency must be in (0,1), got %g", E))
	}
	if Tf <= 0 {
		panic(fmt.Sprintf("model: Tf must be positive, got %g", Tf))
	}
	if app.Cmax <= 0 {
		panic("model: RequiredTc needs positive Cmax")
	}
	return float64(app.F) / float64(app.Cmax) * (1 - E) / E * Tf
}

// RequiredBandwidth returns the sustained per-PE bandwidth 1/T_c in
// bytes per second implied by RequiredTc (Figure 9).
func RequiredBandwidth(app AppProperties, E, Tf float64) float64 {
	return BytesPerWord / RequiredTc(app, E, Tf)
}

// AchievedTc evaluates Equation (2): the amortized time per word
// delivered by a communication system with block latency Tl and burst
// bandwidth 1/Tw on this application:
//
//	T_c = (B_max / C_max) · T_l + T_w.
func AchievedTc(app AppProperties, Tl, Tw float64) float64 {
	if app.Cmax <= 0 {
		panic("model: AchievedTc needs positive Cmax")
	}
	return float64(app.Bmax)/float64(app.Cmax)*Tl + Tw
}

// PhaseTimes returns the modeled computation and communication phase
// times for one SMVP: T_comp = F·Tf and T_comm = B_max·Tl + C_max·Tw.
func PhaseTimes(app AppProperties, Tf, Tl, Tw float64) (tcomp, tcomm float64) {
	return float64(app.F) * Tf, float64(app.Bmax)*Tl + float64(app.Cmax)*Tw
}

// Efficiency returns the modeled efficiency E = T_comp / (T_comp +
// T_comm) of the SMVP on the given machine parameters.
func Efficiency(app AppProperties, Tf, Tl, Tw float64) float64 {
	tcomp, tcomm := PhaseTimes(app, Tf, Tl, Tw)
	return tcomp / (tcomp + tcomm)
}

// LatencyBudget inverts Equation (2) for the block latency: given a
// required T_c and a burst word time Tw, the observed block latency must
// not exceed
//
//	T_l = (T_c − T_w) · C_max / B_max.
//
// A non-positive result means the target is infeasible even with zero
// latency (the burst bandwidth alone is too slow). This generates the
// diagonal tradeoff curves of Figure 10.
func LatencyBudget(app AppProperties, tc, tw float64) float64 {
	if app.Bmax <= 0 {
		panic("model: LatencyBudget needs positive Bmax")
	}
	return (tc - tw) * float64(app.Cmax) / float64(app.Bmax)
}

// HalfBandwidthPoint returns the paper's suggested design point
// (Section 4.4): choose T_l and T_w such that block latency and burst
// bandwidth each account for half of the communication phase:
//
//	B_max·T_l = C_max·T_w = T_comm/2 ⇒ T_w = T_c/2, T_l = T_c·C_max/(2·B_max).
//
// The returned HalfBW is the burst bandwidth 1/T_w in bytes per second,
// and HalfLatency is T_l in seconds (Figure 11).
func HalfBandwidthPoint(app AppProperties, E, Tf float64) (halfBW, halfLatency float64) {
	tc := RequiredTc(app, E, Tf)
	tw := tc / 2
	tl := tc * float64(app.Cmax) / (2 * float64(app.Bmax))
	return BytesPerWord / tw, tl
}

// WithFixedBlocks returns a copy of app with B_max recomputed for
// fixed-size blocks of w words (e.g. 4-word cache lines): B_max =
// C_max/w, the simplification the paper uses for shared-memory
// machines. w must be positive.
func (a AppProperties) WithFixedBlocks(w int64) AppProperties {
	if w <= 0 {
		panic(fmt.Sprintf("model: block size must be positive, got %d", w))
	}
	b := a.Cmax / w
	if b < 1 && a.Cmax > 0 {
		b = 1
	}
	return AppProperties{F: a.F, Cmax: a.Cmax, Bmax: b}
}

// BisectionBandwidth returns the sustained bisection bandwidth in bytes
// per second required when V words cross the bisection during a
// communication phase lasting C_max·T_c seconds (Section 4.2).
func BisectionBandwidth(bisectionWords, cmax int64, tc float64) float64 {
	if cmax <= 0 || tc <= 0 {
		return 0
	}
	return float64(bisectionWords) * BytesPerWord / (float64(cmax) * tc)
}

// SolveEfficiency returns the efficiency at which the application runs
// on a machine, i.e. Efficiency, but also reports the communication
// fraction 1-E for convenience.
func SolveEfficiency(app AppProperties, Tf, Tl, Tw float64) (E, commFraction float64) {
	E = Efficiency(app, Tf, Tl, Tw)
	return E, 1 - E
}

// LogP maps the paper's parameters onto the LogP model for comparison
// (Section 3.3 discusses the correspondence): o ≈ T_l (per-block
// overhead), g ≈ M_avg·T_w (gap per message at average size), L is the
// network transit latency the paper's model folds into its
// infinite-capacity network assumption, and P is the PE count.
type LogP struct {
	L float64
	O float64
	G float64
	P int
}

// ToLogP derives LogP parameters from the paper's machine and
// application parameters, taking mavg as the average message size in
// words and transit as the assumed constant network latency L.
func ToLogP(tl, tw, mavg, transit float64, p int) LogP {
	return LogP{L: transit, O: tl, G: mavg * tw, P: p}
}

// MFLOPS converts a per-flop time to MFLOPS for reporting.
func MFLOPS(tf float64) float64 { return 1e-6 / tf }

// MBps converts bytes/second to MB/s (10^6 bytes, as the paper uses).
func MBps(bytesPerSec float64) float64 { return bytesPerSec / 1e6 }

// Feasible reports whether a (Tl, Tw) pair meets the required Tc for
// the application (used to test points against Figure 10 curves).
func Feasible(app AppProperties, E, Tf, Tl, Tw float64) bool {
	return AchievedTc(app, Tl, Tw) <= RequiredTc(app, E, Tf)*(1+1e-12)
}

// EfficiencyFromTc returns the efficiency obtained when the achieved
// amortized word time is tc: E = T_comp/(T_comp + C_max·tc).
func EfficiencyFromTc(app AppProperties, Tf, tc float64) float64 {
	tcomp := float64(app.F) * Tf
	return tcomp / (tcomp + float64(app.Cmax)*tc)
}

// Check verifies the algebraic consistency of the model implementation
// for the given inputs: plugging RequiredTc back into EfficiencyFromTc
// must return E. It returns the absolute error (useful in tests).
func Check(app AppProperties, E, Tf float64) float64 {
	tc := RequiredTc(app, E, Tf)
	return math.Abs(EfficiencyFromTc(app, Tf, tc) - E)
}
