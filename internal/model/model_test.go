package model

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// sf2_128 is the paper's running example: sf2 partitioned into 128
// subdomains (Figure 7, bottom-right block).
var sf2_128 = AppProperties{F: 838224, Cmax: 16260, Bmax: 50}

func TestValidate(t *testing.T) {
	if err := sf2_128.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []AppProperties{
		{F: 0, Cmax: 1, Bmax: 1},
		{F: 1, Cmax: -1, Bmax: 1},
		{F: 1, Cmax: 0, Bmax: 2},
		{F: 1, Cmax: 2, Bmax: 0},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, a)
		}
	}
	if err := (AppProperties{F: 5, Cmax: 0, Bmax: 0}).Validate(); err != nil {
		t.Errorf("no-communication properties rejected: %v", err)
	}
}

// TestPaperSustainedBandwidth reproduces the paper's headline numbers
// (Section 4.3): sf2/128 on 200-MFLOP PEs at 90% efficiency needs about
// 300 MBytes/sec of sustained per-PE bandwidth; 100-MFLOP PEs need
// about 120-150 MBytes/sec.
func TestPaperSustainedBandwidth(t *testing.T) {
	tf200 := 5e-9 // 200 MFLOPS
	bw := MBps(RequiredBandwidth(sf2_128, 0.9, tf200))
	if bw < 200 || bw > 350 {
		t.Errorf("sf2/128 @200MFLOPS E=0.9: %g MB/s, paper says ~300", bw)
	}
	tf100 := 10e-9
	bw100 := MBps(RequiredBandwidth(sf2_128, 0.9, tf100))
	if bw100 < 100 || bw100 > 200 {
		t.Errorf("sf2/128 @100MFLOPS E=0.9: %g MB/s, paper says ~120-150", bw100)
	}
	// Lower efficiency and fewer PEs demand much less.
	easy := AppProperties{F: 24640110, Cmax: 55338, Bmax: 6} // sf2/4
	bwEasy := MBps(RequiredBandwidth(easy, 0.5, tf100))
	if bwEasy > 5 {
		t.Errorf("sf2/4 @100MFLOPS E=0.5: %g MB/s, expected a few MB/s", bwEasy)
	}
}

// TestPaperLatencyBudget reproduces Section 4.4: for sf2/128 on
// 200-MFLOP PEs at 90% efficiency with maximal blocks, even infinite
// burst bandwidth requires block latency of about 3 µs or less.
func TestPaperLatencyBudget(t *testing.T) {
	tc := RequiredTc(sf2_128, 0.9, 5e-9)
	// Equations (1)+(2) give ≈9.3 µs here; the paper's prose quotes
	// ≈3 µs, read off Figure 10 (see EXPERIMENTS.md). Either way the
	// budget is single-digit microseconds — the paper's point.
	tlMax := LatencyBudget(sf2_128, tc, 0) // infinite burst bandwidth
	if tlMax < 2e-6 || tlMax > 12e-6 {
		t.Errorf("max latency = %g s, want low µs", tlMax)
	}
	// Four-word blocks: budget collapses to ~100 ns.
	fixed := sf2_128.WithFixedBlocks(4)
	tlFixed := LatencyBudget(fixed, tc, 0)
	if tlFixed < 30e-9 || tlFixed > 200e-9 {
		t.Errorf("4-word-block latency budget = %g s, paper says ≈100 ns", tlFixed)
	}
}

// TestPaperHalfBandwidth reproduces Figure 11's hardest point: sf2/128,
// 200 MFLOPS, E=0.9, maximal blocks needs ~600 MB/s burst bandwidth at
// single-digit-µs latency; with 4-word blocks the latency drops to tens
// of ns. Note: evaluating the paper's printed Equations (1)+(2) gives a
// maximal-block half-latency of 4.7 µs where the prose quotes ≈2 µs
// (the prose numbers appear to be read off the log-log Figure 11); the
// fixed-block values match the prose closely, so we assert the
// equation-derived value here and record the discrepancy in
// EXPERIMENTS.md.
func TestPaperHalfBandwidth(t *testing.T) {
	bw, lat := HalfBandwidthPoint(sf2_128, 0.9, 5e-9)
	if mb := MBps(bw); mb < 400 || mb > 800 {
		t.Errorf("half-bandwidth = %g MB/s, paper says ≈600", mb)
	}
	if lat < 1e-6 || lat > 8e-6 {
		t.Errorf("half-bandwidth latency = %g s, want single-digit µs", lat)
	}
	fixed := sf2_128.WithFixedBlocks(4)
	_, latFixed := HalfBandwidthPoint(fixed, 0.9, 5e-9)
	if latFixed < 5e-9 || latFixed > 150e-9 {
		t.Errorf("fixed-block half latency = %g s, paper says ≈70 ns", latFixed)
	}
}

func TestRequiredTcPanics(t *testing.T) {
	for _, f := range []func(){
		func() { RequiredTc(sf2_128, 0, 1e-8) },
		func() { RequiredTc(sf2_128, 1, 1e-8) },
		func() { RequiredTc(sf2_128, 0.9, 0) },
		func() { RequiredTc(AppProperties{F: 1, Cmax: 0, Bmax: 0}, 0.9, 1e-8) },
		func() { LatencyBudget(AppProperties{F: 1, Cmax: 4, Bmax: 0}, 1e-6, 0) },
		func() { sf2_128.WithFixedBlocks(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEfficiencyRoundTrip(t *testing.T) {
	// Achieving exactly the required Tc yields exactly the target E.
	for _, e := range []float64{0.5, 0.8, 0.9, 0.99} {
		if err := Check(sf2_128, e, 5e-9); err > 1e-12 {
			t.Errorf("E=%g: roundtrip error %g", e, err)
		}
	}
}

func TestEquationTwoConsistency(t *testing.T) {
	// AchievedTc and PhaseTimes must agree: Tcomm = Cmax · Tc.
	tl, tw := 2e-6, 50e-9
	tc := AchievedTc(sf2_128, tl, tw)
	_, tcomm := PhaseTimes(sf2_128, 5e-9, tl, tw)
	if math.Abs(tcomm-float64(sf2_128.Cmax)*tc) > 1e-12*tcomm {
		t.Errorf("Tcomm = %g, Cmax·Tc = %g", tcomm, float64(sf2_128.Cmax)*tc)
	}
}

func TestHalfBandwidthSplitsEvenly(t *testing.T) {
	bw, lat := HalfBandwidthPoint(sf2_128, 0.8, 1e-8)
	tw := BytesPerWord / bw
	latPart := float64(sf2_128.Bmax) * lat
	bwPart := float64(sf2_128.Cmax) * tw
	if math.Abs(latPart-bwPart) > 1e-12*(latPart+bwPart) {
		t.Errorf("halves unequal: latency %g vs bandwidth %g", latPart, bwPart)
	}
	// And together they meet the requirement exactly.
	tc := RequiredTc(sf2_128, 0.8, 1e-8)
	if got := AchievedTc(sf2_128, lat, tw); math.Abs(got-tc) > 1e-12*tc {
		t.Errorf("achieved Tc %g != required %g", got, tc)
	}
}

func TestWithFixedBlocks(t *testing.T) {
	a := AppProperties{F: 100, Cmax: 1000, Bmax: 10}
	fixed := a.WithFixedBlocks(4)
	if fixed.Bmax != 250 {
		t.Errorf("Bmax = %d, want 250", fixed.Bmax)
	}
	if fixed.Cmax != a.Cmax || fixed.F != a.F {
		t.Error("F/Cmax changed")
	}
	tiny := AppProperties{F: 100, Cmax: 3, Bmax: 2}.WithFixedBlocks(8)
	if tiny.Bmax != 1 {
		t.Errorf("tiny Bmax = %d, want 1 (rounded up)", tiny.Bmax)
	}
}

func TestBisectionBandwidth(t *testing.T) {
	// V words over a phase of Cmax·Tc seconds.
	tc := 1e-8
	got := BisectionBandwidth(1000, 500, tc)
	want := 1000.0 * 8 / (500 * tc)
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("bisection bw = %g, want %g", got, want)
	}
	if BisectionBandwidth(1000, 0, tc) != 0 {
		t.Error("zero Cmax should yield 0")
	}
}

func TestConversions(t *testing.T) {
	if got := MFLOPS(5e-9); math.Abs(got-200) > 1e-9 {
		t.Errorf("MFLOPS(5ns) = %g", got)
	}
	if got := MBps(3e8); got != 300 {
		t.Errorf("MBps = %g", got)
	}
}

func TestToLogP(t *testing.T) {
	lp := ToLogP(22e-6, 55e-9, 459, 1e-6, 128)
	if lp.O != 22e-6 || lp.P != 128 || lp.L != 1e-6 {
		t.Errorf("LogP = %+v", lp)
	}
	if math.Abs(lp.G-459*55e-9) > 1e-15 {
		t.Errorf("G = %g", lp.G)
	}
}

func TestFeasible(t *testing.T) {
	tc := RequiredTc(sf2_128, 0.9, 5e-9)
	tw := tc / 2
	tl := LatencyBudget(sf2_128, tc, tw)
	if !Feasible(sf2_128, 0.9, 5e-9, tl, tw) {
		t.Error("exact budget point infeasible")
	}
	if Feasible(sf2_128, 0.9, 5e-9, tl*1.5, tw) {
		t.Error("over-budget point feasible")
	}
}

// Property: efficiency is monotone — decreasing in Tl, Tw and
// increasing in how fast communication is; always in (0, 1].
func TestQuickEfficiencyMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		app := AppProperties{
			F:    1000 + r.Int63n(1e7),
			Cmax: 10 + r.Int63n(1e5),
			Bmax: 2 + r.Int63n(100),
		}
		tf := 1e-9 * (1 + r.Float64()*50)
		tl := 1e-7 * (1 + r.Float64()*100)
		tw := 1e-9 * (1 + r.Float64()*100)
		e := Efficiency(app, tf, tl, tw)
		if e <= 0 || e > 1 {
			return false
		}
		if Efficiency(app, tf, tl*2, tw) > e {
			return false
		}
		if Efficiency(app, tf, tl, tw*2) > e {
			return false
		}
		return true
	}
	cfg := &quick.Config{Values: func(v []reflect.Value, r *rand.Rand) {
		v[0] = reflect.ValueOf(r.Int63())
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: RequiredTc scales linearly in Tf and in F/Cmax, and the
// bandwidth requirement explodes as E → 1.
func TestQuickRequiredTcScaling(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		app := AppProperties{
			F:    1000 + r.Int63n(1e7),
			Cmax: 10 + r.Int63n(1e5),
			Bmax: 2,
		}
		e := 0.1 + 0.8*r.Float64()
		tf := 1e-9 * (1 + r.Float64()*50)
		tc := RequiredTc(app, e, tf)
		if math.Abs(RequiredTc(app, e, 2*tf)-2*tc) > 1e-12*tc {
			return false
		}
		// Harder efficiency ⇒ smaller allowed Tc.
		return RequiredTc(app, math.Min(0.99, e+0.05), tf) < tc
	}
	cfg := &quick.Config{Values: func(v []reflect.Value, r *rand.Rand) {
		v[0] = reflect.ValueOf(r.Int63())
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the half-bandwidth design point always lies exactly on the
// requirement curve (feasible with no slack), for any application.
func TestQuickHalfPointFeasible(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		app := AppProperties{
			F:    1000 + r.Int63n(1e8),
			Cmax: 6 * (1 + r.Int63n(1e4)),
			Bmax: 2 * (1 + r.Int63n(60)),
		}
		e := 0.05 + 0.9*r.Float64()
		tf := 1e-9 * (1 + r.Float64()*100)
		bw, lat := HalfBandwidthPoint(app, e, tf)
		tw := BytesPerWord / bw
		if !Feasible(app, e, tf, lat, tw) {
			return false
		}
		// And 10% more latency must break it.
		return !Feasible(app, e, tf, lat*1.1, tw)
	}
	cfg := &quick.Config{Values: func(v []reflect.Value, r *rand.Rand) {
		v[0] = reflect.ValueOf(r.Int63())
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
