package model

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestOverlapValidate(t *testing.T) {
	good := Overlap{App: sf2_128, FBoundary: sf2_128.F / 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Overlap{
		{App: sf2_128, FBoundary: -1},
		{App: sf2_128, FBoundary: sf2_128.F + 1},
		{App: AppProperties{F: 0, Cmax: 1, Bmax: 1}, FBoundary: 0},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestOverlapTimes(t *testing.T) {
	o := Overlap{App: AppProperties{F: 1000, Cmax: 100, Bmax: 4}, FBoundary: 200}
	tf, tl, tw := 1e-9, 1e-6, 1e-8
	sep, ov := o.Times(tf, tl, tw)
	tcomp := 1000 * tf
	tcomm := 4*tl + 100*tw
	if math.Abs(sep-(tcomp+tcomm)) > 1e-18 {
		t.Errorf("separated = %g", sep)
	}
	// Interior work = 800 ns; tcomm = 5 µs dominates the hidden part.
	want := 200*tf + tcomm
	if math.Abs(ov-want) > 1e-18 {
		t.Errorf("overlapped = %g, want %g", ov, want)
	}
	// Compute-dominated case: interior hides communication entirely.
	o2 := Overlap{App: AppProperties{F: 100000, Cmax: 10, Bmax: 2}, FBoundary: 100}
	_, ov2 := o2.Times(tf, 1e-9, 1e-9)
	if math.Abs(ov2-100000*tf) > 1e-12 {
		t.Errorf("fully hidden overlapped = %g, want %g", ov2, 100000*tf)
	}
	if e := o2.Efficiency(tf, 1e-9, 1e-9); math.Abs(e-1) > 1e-9 {
		t.Errorf("fully hidden efficiency = %g, want 1", e)
	}
}

// Property: overlap never hurts, never more than doubles throughput,
// and overlapped time is at least both the total computation and the
// boundary + communication.
func TestQuickOverlapBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		app := AppProperties{
			F:    1000 + r.Int63n(1e7),
			Cmax: 10 + r.Int63n(1e5),
			Bmax: 2 + r.Int63n(100),
		}
		o := Overlap{App: app, FBoundary: r.Int63n(app.F + 1)}
		tf := 1e-9 * (1 + r.Float64()*30)
		tl := 1e-7 * (1 + r.Float64()*300)
		tw := 1e-9 * (1 + r.Float64()*100)
		sep, ov := o.Times(tf, tl, tw)
		if ov > sep+1e-18 {
			return false // overlap hurt
		}
		s := o.Speedup(tf, tl, tw)
		if s < 1-1e-12 || s > 2+1e-12 {
			return false
		}
		tcomp := float64(app.F) * tf
		_, tcomm := PhaseTimes(app, tf, tl, tw)
		lower := math.Max(tcomp, float64(o.FBoundary)*tf+tcomm)
		return ov >= lower-1e-15*lower
	}
	cfg := &quick.Config{Values: func(v []reflect.Value, r *rand.Rand) {
		v[0] = reflect.ValueOf(r.Int63())
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
