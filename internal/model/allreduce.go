package model

import "math"

// AllReduceTime estimates the cost of a global reduction-and-broadcast
// of `words` 64-bit words over p PEs with the paper's communication
// parameters: a binary combining tree costs ⌈log₂p⌉ block transfers up
// and the same down, each paying the block latency plus the per-word
// burst time:
//
//	T_allreduce = 2·⌈log₂ p⌉·(T_l + words·T_w).
//
// Dot products in implicit solvers are allreduces of a single word, so
// their cost is almost pure block latency — exactly the resource the
// paper identifies as the scarce one.
func AllReduceTime(p int, words int64, tl, tw float64) float64 {
	if p <= 1 {
		return 0
	}
	levels := math.Ceil(math.Log2(float64(p)))
	return 2 * levels * (tl + float64(words)*tw)
}

// ImplicitStep models one CG iteration of an implicit method on the
// same mesh/partition: one SMVP (computation + exchange, as in the
// explicit method) plus nDots single-word allreduces. It returns the
// step time and the fraction of it spent on the allreduces — the
// communication the Quake applications avoid by using explicit time
// stepping.
func ImplicitStep(app AppProperties, p, nDots int, tf, tl, tw float64) (stepTime, allreduceFraction float64) {
	tcomp, tcomm := PhaseTimes(app, tf, tl, tw)
	ar := float64(nDots) * AllReduceTime(p, 1, tl, tw)
	stepTime = tcomp + tcomm + ar
	if stepTime > 0 {
		allreduceFraction = ar / stepTime
	}
	return stepTime, allreduceFraction
}
