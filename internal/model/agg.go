package model

// This file extends the Equation (2) machinery to the two-level
// (node-aware) exchange of comm.Aggregate. The flat model charges every
// block the same latency T_l; on a clustered machine the blocks that
// matter are the inter-node ones, while the gather/scatter copy legs
// move words between PEs of one node at a much cheaper latency and a
// much higher bandwidth. The extended model therefore splits the
// communication term by level:
//
//	T_comm = B_inter·T_l + C_inter·T_w + B_local·T_l_loc + C_local·T_w_loc
//
// and the amortized per-payload-word time becomes
//
//	T_c = (B_inter/C_max)·T_l + (C_inter/C_max)·T_w
//	    + (B_local/C_max)·T_l_loc + (C_local/C_max)·T_w_loc,
//
// where C_max is still the FLAT payload word count — the aggregation's
// copied words appear as the C_local excess, so the comparison against
// RequiredTc (Equation 1) stays apples-to-apples: both describe the
// time to deliver the application's payload.

import (
	"fmt"
	"math"
)

// AggProperties are the per-PE maxima of an aggregated exchange, the
// inputs to the extended Equation (2). All counts follow the paper's
// convention (sent plus received by one PE).
type AggProperties struct {
	// App carries the flat F/Cmax/Bmax; Cmax is the payload normalizer.
	App AppProperties
	// InterBmax and InterCmax are the max inter-node blocks and words
	// of any PE (the fused leader-to-leader leg).
	InterBmax, InterCmax int64
	// LocalBmax and LocalCmax are the max intra-node blocks and words
	// of any PE across the local, gather, and scatter legs.
	LocalBmax, LocalCmax int64
}

// Validate reports whether the properties can drive the model.
func (a AggProperties) Validate() error {
	if err := a.App.Validate(); err != nil {
		return err
	}
	if a.InterBmax < 0 || a.InterCmax < 0 || a.LocalBmax < 0 || a.LocalCmax < 0 {
		return fmt.Errorf("model: negative aggregated maxima %+v", a)
	}
	if (a.InterCmax == 0) != (a.InterBmax == 0) {
		return fmt.Errorf("model: InterCmax (%d) and InterBmax (%d) must be zero together",
			a.InterCmax, a.InterBmax)
	}
	return nil
}

// LocalParams are the intra-node communication parameters: the latency
// and per-word time of a copy between two PEs of the same node (shared
// memory or an on-node interconnect).
type LocalParams struct {
	Tl float64 // intra-node per-block latency
	Tw float64 // intra-node per-word time
}

// AchievedTcAggregated evaluates the extended Equation (2): the
// amortized time per PAYLOAD word of the two-level exchange. With no
// local traffic and the fused leg equal to the flat schedule (node size
// one), it reduces exactly to AchievedTc.
func AchievedTcAggregated(a AggProperties, Tl, Tw float64, local LocalParams) float64 {
	if a.App.Cmax <= 0 {
		panic("model: AchievedTcAggregated needs positive Cmax")
	}
	c := float64(a.App.Cmax)
	return float64(a.InterBmax)/c*Tl + float64(a.InterCmax)/c*Tw +
		float64(a.LocalBmax)/c*local.Tl + float64(a.LocalCmax)/c*local.Tw
}

// AggregatedPhaseTimes returns the modeled computation and
// communication phase times for one SMVP under the two-level exchange.
func AggregatedPhaseTimes(a AggProperties, Tf, Tl, Tw float64, local LocalParams) (tcomp, tcomm float64) {
	tcomp = float64(a.App.F) * Tf
	tcomm = float64(a.InterBmax)*Tl + float64(a.InterCmax)*Tw +
		float64(a.LocalBmax)*local.Tl + float64(a.LocalCmax)*local.Tw
	return tcomp, tcomm
}

// AggregatedEfficiency returns the modeled efficiency of the SMVP under
// the two-level exchange.
func AggregatedEfficiency(a AggProperties, Tf, Tl, Tw float64, local LocalParams) float64 {
	tcomp, tcomm := AggregatedPhaseTimes(a, Tf, Tl, Tw, local)
	return tcomp / (tcomp + tcomm)
}

// AggregatedLatencyBudget inverts the extended Equation (2) for the
// inter-node block latency: the T_l at which the aggregated exchange
// still meets the required amortized word time tc, given the burst word
// time and the local-leg costs. A non-positive result means the target
// is infeasible regardless of latency. Because aggregation divides by
// the (much smaller) InterBmax, its latency budget is correspondingly
// larger than LatencyBudget's — that relaxation is the whole point of
// the transform.
func AggregatedLatencyBudget(a AggProperties, tc, tw float64, local LocalParams) float64 {
	if a.InterBmax <= 0 {
		panic("model: AggregatedLatencyBudget needs positive InterBmax")
	}
	c := float64(a.App.Cmax)
	rest := float64(a.InterCmax)/c*tw +
		float64(a.LocalBmax)/c*local.Tl + float64(a.LocalCmax)/c*local.Tw
	return (tc - rest) * c / float64(a.InterBmax)
}

// BetaOf computes the paper's β error bound from arbitrary per-PE word
// and block vectors:
//
//	β = 1 + min over PEs i of max{ C_max(B_max−B_i)/(C_i·B_max),
//	                               B_max(C_max−C_i)/(B_i·C_max) },
//
// the factor by which B_max·T_l + C_max·T_w can overestimate the true
// max over PEs of B_i·T_l + C_i·T_w. It is 1 when one PE attains both
// maxima and provably below 2; PEs with no traffic are skipped. The
// flat exchange evaluates it on the partition profile's C/B
// (partition.Profile.Beta delegates here); the aggregated exchange on
// the fused leg's per-PE vectors (comm.Aggregated.InterCB), where the
// leader concentration typically drags β back toward 1.
func BetaOf(c, b []int64) float64 {
	var cmax, bmax int64
	for i := range c {
		if c[i] > cmax {
			cmax = c[i]
		}
		if b[i] > bmax {
			bmax = b[i]
		}
	}
	if cmax == 0 || bmax == 0 {
		return 1
	}
	best := math.Inf(1)
	for i := range c {
		ci, bi := c[i], b[i]
		if ci == 0 || bi == 0 {
			continue
		}
		t1 := float64(cmax) * float64(bmax-bi) / (float64(ci) * float64(bmax))
		t2 := float64(bmax) * float64(cmax-ci) / (float64(bi) * float64(cmax))
		if m := math.Max(t1, t2); m < best {
			best = m
		}
	}
	if math.IsInf(best, 1) {
		return 1
	}
	return 1 + best
}
