package model

import (
	"math"
	"testing"
)

func TestAchievedTcAggregatedReducesToFlat(t *testing.T) {
	// Node size one: the fused leg IS the flat schedule and there are
	// no local legs, so the extended model must equal Equation (2).
	app := AppProperties{F: 1e6, Cmax: 9000, Bmax: 48}
	a := AggProperties{App: app, InterBmax: app.Bmax, InterCmax: app.Cmax}
	tl, tw := 22e-6, 55e-9
	got := AchievedTcAggregated(a, tl, tw, LocalParams{})
	want := AchievedTc(app, tl, tw)
	if math.Abs(got-want) > 1e-18 {
		t.Errorf("AchievedTcAggregated = %g, want flat %g", got, want)
	}
	ec, em := AggregatedPhaseTimes(a, 10e-9, tl, tw, LocalParams{})
	fc, fm := PhaseTimes(app, 10e-9, tl, tw)
	if ec != fc || math.Abs(em-fm) > 1e-15 {
		t.Errorf("phase times %g/%g, want %g/%g", ec, em, fc, fm)
	}
}

func TestAchievedTcAggregatedTradesBlocksForWords(t *testing.T) {
	// The aggregation's bargain: far fewer inter-node blocks, some
	// extra copied words at cheap local rates. On a latency-dominated
	// machine the aggregated Tc must come out lower.
	app := AppProperties{F: 1e6, Cmax: 9000, Bmax: 48}
	agg := AggProperties{
		App:       app,
		InterBmax: 8,        // 6× fewer expensive blocks
		InterCmax: app.Cmax, // payload unchanged
		LocalBmax: 60,       // gather/scatter legs
		LocalCmax: 2 * 9000, // every payload word copied twice on-node
	}
	tl, tw := 22e-6, 55e-9
	local := LocalParams{Tl: 0.5e-6, Tw: 5e-9}
	flat := AchievedTc(app, tl, tw)
	hier := AchievedTcAggregated(agg, tl, tw, local)
	if hier >= flat {
		t.Errorf("aggregated Tc %g not below flat %g on a latency-bound machine", hier, flat)
	}
	if e := AggregatedEfficiency(agg, 10e-9, tl, tw, local); e <= Efficiency(app, 10e-9, tl, tw) {
		t.Errorf("aggregated efficiency %g not above flat", e)
	}
}

func TestAggregatedLatencyBudget(t *testing.T) {
	app := AppProperties{F: 1e6, Cmax: 9000, Bmax: 48}
	agg := AggProperties{App: app, InterBmax: 8, InterCmax: 9000, LocalBmax: 60, LocalCmax: 18000}
	local := LocalParams{Tl: 0.5e-6, Tw: 5e-9}
	tc := RequiredTc(app, 0.8, 10e-9)
	tw := 55e-9
	budget := AggregatedLatencyBudget(agg, tc, tw, local)
	// Plugging the budget back in must achieve tc exactly.
	check := AchievedTcAggregated(agg, budget, tw, local)
	if math.Abs(check-tc) > 1e-15 {
		t.Errorf("achieved Tc at budget latency = %g, want %g", check, tc)
	}
	// The aggregated budget must dominate the flat one: the fused leg
	// amortizes each expensive block over more payload.
	if flat := LatencyBudget(app, tc, tw); budget <= flat {
		t.Errorf("aggregated latency budget %g not above flat %g", budget, flat)
	}
}

func TestAggPropertiesValidate(t *testing.T) {
	app := AppProperties{F: 100, Cmax: 10, Bmax: 2}
	good := AggProperties{App: app, InterBmax: 1, InterCmax: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("valid properties rejected: %v", err)
	}
	cases := []AggProperties{
		{App: AppProperties{F: 0, Cmax: 10, Bmax: 2}},          // bad app
		{App: app, InterBmax: -1},                              // negative
		{App: app, InterBmax: 1, InterCmax: 0},                 // B/C not zero together
		{App: app, InterBmax: 0, InterCmax: 5},                 // C without B
		{App: app, InterBmax: 1, InterCmax: 10, LocalCmax: -3}, // negative local
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestBetaOfMatchesKnownCases(t *testing.T) {
	// One PE attains both maxima: β = 1.
	if b := BetaOf([]int64{100, 40}, []int64{8, 4}); b != 1 {
		t.Errorf("dominating PE: β = %g, want 1", b)
	}
	// No traffic at all: β = 1 by convention.
	if b := BetaOf([]int64{0, 0}, []int64{0, 0}); b != 1 {
		t.Errorf("silent PEs: β = %g, want 1", b)
	}
	// Split maxima: PE0 has C_max, PE1 has B_max; β ∈ (1, 2).
	b := BetaOf([]int64{100, 50}, []int64{4, 8})
	if b <= 1 || b >= 2 {
		t.Errorf("split maxima: β = %g, want in (1,2)", b)
	}
	// Silent PEs are skipped, not counted as minimizers.
	b2 := BetaOf([]int64{100, 50, 0}, []int64{4, 8, 0})
	if b2 != b {
		t.Errorf("silent PE changed β: %g vs %g", b2, b)
	}
}
