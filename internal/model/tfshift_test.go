package model

import (
	"math"
	"strings"
	"testing"
)

// TestShiftTfLinear pins the linearity that makes the measured-T_f
// feedback meaningful: required T_c scales by exactly 1/speedup, the
// required bandwidth and the half-bandwidth point by speedup, and the
// half-latency by 1/speedup.
func TestShiftTfLinear(t *testing.T) {
	app := AppProperties{F: 3_000_000, Cmax: 20_000, Bmax: 16}
	const e = 0.8
	base, measured := 5e-9, 2e-9
	s := ShiftTf(app, e, base, measured)

	if got, want := s.Speedup, base/measured; math.Abs(got-want) > 1e-15 {
		t.Errorf("Speedup = %g, want %g", got, want)
	}
	if got, want := s.BaseTc, RequiredTc(app, e, base); got != want {
		t.Errorf("BaseTc = %g, want %g", got, want)
	}
	if got, want := s.MeasuredTc, RequiredTc(app, e, measured); got != want {
		t.Errorf("MeasuredTc = %g, want %g", got, want)
	}
	if ratio := s.BaseTc / s.MeasuredTc; math.Abs(ratio-s.Speedup) > 1e-12*s.Speedup {
		t.Errorf("Tc ratio %g, speedup %g", ratio, s.Speedup)
	}
	if ratio := s.MeasuredBW / s.BaseBW; math.Abs(ratio-s.Speedup) > 1e-12*s.Speedup {
		t.Errorf("BW ratio %g, speedup %g", ratio, s.Speedup)
	}
	if ratio := s.MeasuredHalfBW / s.BaseHalfBW; math.Abs(ratio-s.Speedup) > 1e-12*s.Speedup {
		t.Errorf("half-BW ratio %g, speedup %g", ratio, s.Speedup)
	}
	if ratio := s.BaseHalfLat / s.MeasuredHalfLat; math.Abs(ratio-s.Speedup) > 1e-12*s.Speedup {
		t.Errorf("half-latency ratio %g, speedup %g", ratio, s.Speedup)
	}
	// Cross-check against the standalone helpers.
	if got, want := s.MeasuredBW, RequiredBandwidth(app, e, measured); math.Abs(got-want) > 1e-9 {
		t.Errorf("MeasuredBW = %g, RequiredBandwidth = %g", got, want)
	}
}

func TestShiftTfString(t *testing.T) {
	app := AppProperties{F: 3_000_000, Cmax: 20_000, Bmax: 16}
	s := ShiftTf(app, 0.8, 5e-9, 2.5e-9)
	out := s.String()
	for _, frag := range []string{"2.00×", "required Tc", "MB/s"} {
		if !strings.Contains(out, frag) {
			t.Errorf("String() = %q, missing %q", out, frag)
		}
	}
}
