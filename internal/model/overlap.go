package model

import "fmt"

// Overlap models the restructured SMVP the paper's footnote 1 alludes
// to: a PE first computes the block rows of its shared (boundary)
// nodes, then sends their partial sums while computing its interior
// rows, hiding communication behind interior computation. With
// FBoundary flops of boundary work,
//
//	T_overlap = FBoundary·T_f + max((F − FBoundary)·T_f, T_comm)
//
// versus the phase-separated T = F·T_f + T_comm. The paper deliberately
// models no overlap ("conservative bandwidth and latency estimates");
// this type quantifies what overlap would buy, as an upper bound, for
// the ablation benchmarks.
type Overlap struct {
	App       AppProperties
	FBoundary int64
}

// Validate reports whether the overlap inputs are consistent.
func (o Overlap) Validate() error {
	if err := o.App.Validate(); err != nil {
		return err
	}
	if o.FBoundary < 0 || o.FBoundary > o.App.F {
		return fmt.Errorf("model: FBoundary %d outside [0, F=%d]", o.FBoundary, o.App.F)
	}
	return nil
}

// Times returns the SMVP time without and with (perfect) overlap.
func (o Overlap) Times(Tf, Tl, Tw float64) (separated, overlapped float64) {
	tcomp, tcomm := PhaseTimes(o.App, Tf, Tl, Tw)
	separated = tcomp + tcomm
	boundary := float64(o.FBoundary) * Tf
	interior := tcomp - boundary
	hidden := tcomm
	if interior > hidden {
		hidden = interior
	}
	return separated, boundary + hidden
}

// Speedup returns separated/overlapped time: how much perfect overlap
// can help. It is at most 2 (communication fully hidden and equal to
// computation) and approaches 1 when either phase dominates.
func (o Overlap) Speedup(Tf, Tl, Tw float64) float64 {
	sep, ov := o.Times(Tf, Tl, Tw)
	return sep / ov
}

// Efficiency returns the overlapped efficiency T_comp/T_overlap, the
// analogue of Efficiency for the restructured kernel. Unlike the
// separated-phase efficiency it can reach 1 when communication is
// entirely hidden.
func (o Overlap) Efficiency(Tf, Tl, Tw float64) float64 {
	tcomp, _ := PhaseTimes(o.App, Tf, Tl, Tw)
	_, ov := o.Times(Tf, Tl, Tw)
	return tcomp / ov
}
