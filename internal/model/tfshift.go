package model

import "fmt"

// This file closes the measured-T_f feedback loop: the paper evaluates
// Equations (1) and (2) at assumed per-flop times (100 and 200 MFLOPS,
// i.e. T_f of 10 and 5 ns), but the harness *measures* the achieved
// T_f of its own local kernel (obs/analyze.AchievedOf). A faster local
// kernel lowers T_f, and because Equation (1) is linear in T_f —
//
//	T_c = (F/C_max) · ((1−E)/E) · T_f
//
// — every communication budget tightens by exactly the kernel speedup:
// required T_c scales down, required per-PE bandwidth scales up, and
// the half-bandwidth design point moves proportionally. This is the
// paper's own sensitivity argument (Section 4.3, "faster processors
// need faster networks") made quantitative against the harness's real
// kernels instead of the 1998-era assumption.

// TfShift reports how the Equation (1)/(2) requirements move when the
// assumed per-flop time is replaced by a measured one, for a single
// (application, efficiency) point.
type TfShift struct {
	// BaseTf and MeasuredTf are the two per-flop times being compared
	// (seconds per flop). Speedup = BaseTf/MeasuredTf: > 1 means the
	// measured kernel is faster than the baseline assumption.
	BaseTf, MeasuredTf float64
	Speedup            float64
	// BaseTc and MeasuredTc are the Equation (1) required amortized
	// per-word times at each T_f. MeasuredTc = BaseTc/Speedup.
	BaseTc, MeasuredTc float64
	// BaseBW and MeasuredBW are the sustained per-PE bandwidths 1/T_c
	// implied by each requirement, in bytes/second.
	BaseBW, MeasuredBW float64
	// Half-bandwidth design point (Section 4.4) at each T_f: burst
	// bandwidth in bytes/second and block latency in seconds.
	BaseHalfBW, MeasuredHalfBW   float64
	BaseHalfLat, MeasuredHalfLat float64
}

// ShiftTf evaluates the Equation (1)/(2) requirements at baseTf and
// measuredTf and returns the shift. It panics where RequiredTc
// does (invalid E or non-positive T_f, Cmax, or Bmax).
func ShiftTf(app AppProperties, E, baseTf, measuredTf float64) TfShift {
	s := TfShift{
		BaseTf:     baseTf,
		MeasuredTf: measuredTf,
		Speedup:    baseTf / measuredTf,
		BaseTc:     RequiredTc(app, E, baseTf),
		MeasuredTc: RequiredTc(app, E, measuredTf),
	}
	s.BaseBW = BytesPerWord / s.BaseTc
	s.MeasuredBW = BytesPerWord / s.MeasuredTc
	s.BaseHalfBW, s.BaseHalfLat = HalfBandwidthPoint(app, E, baseTf)
	s.MeasuredHalfBW, s.MeasuredHalfLat = HalfBandwidthPoint(app, E, measuredTf)
	return s
}

// String renders the shift compactly for logs and reports.
func (s TfShift) String() string {
	return fmt.Sprintf("Tf %s → %s (%.2f×): required Tc %s → %s, per-PE BW %.1f → %.1f MB/s",
		fmtSec(s.BaseTf), fmtSec(s.MeasuredTf), s.Speedup,
		fmtSec(s.BaseTc), fmtSec(s.MeasuredTc), MBps(s.BaseBW), MBps(s.MeasuredBW))
}

func fmtSec(v float64) string {
	switch {
	case v <= 0:
		return fmt.Sprintf("%g s", v)
	case v < 1e-6:
		return fmt.Sprintf("%.2f ns", v*1e9)
	case v < 1e-3:
		return fmt.Sprintf("%.2f µs", v*1e6)
	default:
		return fmt.Sprintf("%.2f ms", v*1e3)
	}
}
