package model

import (
	"math"
	"testing"
)

func TestAllReduceTime(t *testing.T) {
	tl, tw := 22e-6, 55e-9
	if got := AllReduceTime(1, 1, tl, tw); got != 0 {
		t.Errorf("p=1 allreduce = %g", got)
	}
	// p=2: one level up, one down.
	want := 2 * (tl + tw)
	if got := AllReduceTime(2, 1, tl, tw); math.Abs(got-want) > 1e-18 {
		t.Errorf("p=2 = %g, want %g", got, want)
	}
	// p=128: 7 levels; p=100: also 7 (ceil log2).
	if got := AllReduceTime(128, 1, tl, tw); math.Abs(got-14*(tl+tw)) > 1e-15 {
		t.Errorf("p=128 = %g", got)
	}
	if AllReduceTime(100, 1, tl, tw) != AllReduceTime(128, 1, tl, tw) {
		t.Error("ceil(log2) rounding wrong")
	}
	// Cost grows with words.
	if AllReduceTime(8, 1000, tl, tw) <= AllReduceTime(8, 1, tl, tw) {
		t.Error("allreduce not growing with volume")
	}
	// Single-word allreduce is latency-dominated on the T3E.
	lat := AllReduceTime(128, 1, tl, 0)
	full := AllReduceTime(128, 1, tl, tw)
	if lat/full < 0.99 {
		t.Errorf("single-word allreduce should be ~pure latency: %g of %g", lat, full)
	}
}

func TestImplicitStep(t *testing.T) {
	tf, tl, tw := 14e-9, 22e-6, 55e-9
	step, frac := ImplicitStep(sf2_128, 128, 3, tf, tl, tw)
	tcomp, tcomm := PhaseTimes(sf2_128, tf, tl, tw)
	if step <= tcomp+tcomm {
		t.Error("implicit step not slower than explicit")
	}
	if frac <= 0 || frac >= 1 {
		t.Errorf("allreduce fraction = %g", frac)
	}
	// More dot products cost more.
	step5, _ := ImplicitStep(sf2_128, 128, 5, tf, tl, tw)
	if step5 <= step {
		t.Error("extra dot products free")
	}
	// On one PE the allreduce is free.
	s1, f1 := ImplicitStep(sf2_128, 1, 3, tf, tl, tw)
	if f1 != 0 || s1 != tcomp+tcomm {
		t.Errorf("p=1: step %g, frac %g", s1, f1)
	}
}
