package fault

import "testing"

// FuzzParsePlan hardens the fault-plan parser: arbitrary input must
// yield either a structurally valid plan or an error — never a panic —
// and the canonical rendering of any accepted plan must parse back to
// the same canonical form (a stable round trip). Run the fuzzer with
// `go test -fuzz FuzzParsePlan ./internal/fault`; the seed corpus runs
// under plain `go test` (and `make fuzz-smoke` gives it a few seconds
// of mutation in CI).
func FuzzParsePlan(f *testing.F) {
	f.Add("corrupt:pe=2,iter=5;stall:pe=0,dur=10ms;panic:pe=1,iter=12;drop:pe=3->1,iter=7")
	f.Add("seed:42;drop:pe=3→1,iter=7")
	f.Add("delay:pe=0->2,dur=250µs;dup:pe=1->0")
	f.Add("corrupt:pe=0->1,word=3,bit=62")
	f.Add("corrupt:pe=-1;;")
	f.Add("seed:;panic:")
	f.Add("pe=1:corrupt")
	f.Add("stall:pe=0,dur=9999999999999999999h")

	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		// Whatever parses must survive its own canonical form.
		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, s, err)
		}
		if p2.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q", canon, p2.String())
		}
		// Accepted events must satisfy the structural invariants the
		// injector relies on.
		for i, e := range p.Events {
			if e.PE < 0 {
				t.Fatalf("event %d has negative PE: %+v", i, e)
			}
			if e.Iter != EveryIter && e.Iter < 1 {
				t.Fatalf("event %d has bad iter: %+v", i, e)
			}
			if e.Bit != Unset && (e.Bit < 0 || e.Bit > 63) {
				t.Fatalf("event %d has bad bit: %+v", i, e)
			}
			if e.Dur < 0 {
				t.Fatalf("event %d has negative duration: %+v", i, e)
			}
		}
	})
}
