// Package fault is the deterministic fault injector for the
// persistent-PE runtime. The paper's exchange model assumes every
// partial-sum transfer arrives intact and on time; real machines drop,
// delay, duplicate, and corrupt transfers, and processing elements
// stall or die mid-kernel. This package turns those pathologies into a
// reproducible experiment: a seeded, parseable *fault plan* describes
// exactly which faults strike which PEs at which kernel invocations,
// and the runtime executes the plan at its exchange boundary.
//
// A plan is a semicolon-separated list of events:
//
//	corrupt:pe=2,iter=5;stall:pe=0,dur=10ms;panic:pe=1,iter=12;drop:pe=3->1,iter=7
//
// Event kinds and their required fields:
//
//	corrupt  pe[->dst]        flip one bit of a posted partial-sum buffer
//	drop     pe->dst          a block transfer is never delivered
//	dup      pe->dst          a block transfer is delivered twice
//	delay    pe->dst, dur     delivery of a block transfer is delayed
//	stall    pe, dur          the PE sleeps mid-kernel (a slow PE)
//	panic    pe               the PE panics mid-kernel (a software fault)
//	kill     pe               the PE dies permanently (recover by shrinking)
//	revive   pe, iter         a replacement PE rejoins at this slot (grow back)
//
// Every event accepts iter=<n> (the 1-based kernel invocation since the
// plan was armed; omitted means every invocation). corrupt additionally
// accepts word=<i> and bit=<b> to pin the flipped bit; when omitted they
// are derived deterministically from the plan seed, with the bit drawn
// from the exponent range so an unspecified corruption is drastic
// rather than vanishing into low-mantissa noise. A leading "seed:<n>"
// entry sets the derivation seed (default 1).
//
// The grammar, the recovery semantics of the layers above, and the
// poisoned-Dist contract are documented in docs/RELIABILITY.md.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the fault event kinds.
type Kind uint8

const (
	// Corrupt flips one bit in a posted partial-sum buffer.
	Corrupt Kind = iota
	// Drop suppresses delivery of one block transfer.
	Drop
	// Dup delivers one block transfer twice.
	Dup
	// Delay postpones delivery of one block transfer.
	Delay
	// Stall puts a PE to sleep mid-kernel.
	Stall
	// Panic makes a PE panic mid-kernel.
	Panic
	// Kill marks a PE permanently dead mid-kernel. Mechanically it
	// panics like Panic, but the panic value is *Killed, which tells the
	// recovery layer (internal/recover) that the PE is gone for good and
	// the run should shrink onto the survivors rather than retry on a
	// rebuilt Dist of the same width.
	Kill
	// Revive announces that a replacement PE is ready to rejoin at the
	// named slot from the given kernel invocation on. The injector
	// itself never fires it — there is nothing to inject into a running
	// kernel; the elastic-recovery supervisor (internal/recover)
	// consumes the event at the next checkpoint boundary and regrows
	// the partition onto the recovered PE. iter= is mandatory: an
	// every-invocation revive is meaningless.
	Revive

	numKinds = 8
)

var kindNames = [numKinds]string{"corrupt", "drop", "dup", "delay", "stall", "panic", "kill", "revive"}

// String returns the plan-grammar name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

func kindByName(s string) (Kind, bool) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// EveryIter is the Iter value matching every kernel invocation.
const EveryIter = -1

// Unset marks an optional Event field whose value is derived from the
// plan seed at injection time.
const Unset = -1

// Event is one planned fault. PE is the acting PE — the stalled or
// panicking PE, or the sender of the faulted transfer. Dst is the
// receiving PE for transfer faults (Drop, Dup, Delay always; Corrupt
// optionally — Unset corrupts the buffers for all neighbors).
type Event struct {
	Kind Kind
	PE   int
	Dst  int
	// Iter is the 1-based kernel invocation (counted from arming) the
	// event fires at; EveryIter fires on all of them.
	Iter int64
	// Dur is the sleep length of Stall and Delay events.
	Dur time.Duration
	// Word and Bit pin the corrupted bit; Unset derives both from the
	// plan seed (the bit from the exponent range, so the corruption is
	// visible).
	Word int
	Bit  int
}

// String renders the event in canonical plan grammar.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	b.WriteString(":pe=")
	b.WriteString(strconv.Itoa(e.PE))
	if e.Dst != Unset {
		b.WriteString("->")
		b.WriteString(strconv.Itoa(e.Dst))
	}
	if e.Iter != EveryIter {
		fmt.Fprintf(&b, ",iter=%d", e.Iter)
	}
	if e.Dur != 0 {
		fmt.Fprintf(&b, ",dur=%s", e.Dur)
	}
	if e.Word != Unset {
		fmt.Fprintf(&b, ",word=%d", e.Word)
	}
	if e.Bit != Unset {
		fmt.Fprintf(&b, ",bit=%d", e.Bit)
	}
	return b.String()
}

// Plan is a parsed fault plan: an ordered list of events plus the seed
// that derives any unpinned corruption targets. The zero Seed is
// normalized to 1 so every plan is deterministic.
type Plan struct {
	Seed   int64
	Events []Event
}

// String renders the plan in canonical grammar; Parse(p.String())
// reproduces the plan exactly.
func (p *Plan) String() string {
	parts := make([]string, 0, len(p.Events)+1)
	if p.Seed != 1 {
		parts = append(parts, fmt.Sprintf("seed:%d", p.Seed))
	}
	for _, e := range p.Events {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, ";")
}

// Validate checks the plan against a PE count: every referenced PE must
// exist. Structural validity (required fields, ranges) is established
// by Parse; Validate is the runtime-facing check.
func (p *Plan) Validate(pes int) error {
	for i, e := range p.Events {
		lim := pes
		if e.Kind == Revive {
			// A revive names an insertion slot, not a live PE: rejoining
			// at index == width appends a new top PE, so pe ≤ pes is
			// valid where every other kind requires pe < pes.
			lim = pes + 1
		}
		if e.PE < 0 || e.PE >= lim {
			return fmt.Errorf("fault: event %d (%s) references PE %d, machine has %d", i, e.Kind, e.PE, pes)
		}
		if e.Dst != Unset && (e.Dst < 0 || e.Dst >= pes) {
			return fmt.Errorf("fault: event %d (%s) references destination PE %d, machine has %d", i, e.Kind, e.Dst, pes)
		}
	}
	return nil
}

// Has reports whether the plan contains at least one event of kind k.
func (p *Plan) Has(k Kind) bool {
	for _, e := range p.Events {
		if e.Kind == k {
			return true
		}
	}
	return false
}

// Parse parses the fault-plan grammar. Whitespace around entries and
// fields is ignored; field order within an event is free; the canonical
// form is produced by String.
func Parse(s string) (*Plan, error) {
	p := &Plan{Seed: 1}
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kindStr, rest, hasFields := strings.Cut(entry, ":")
		kindStr = strings.TrimSpace(kindStr)
		if kindStr == "seed" {
			seed, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", rest)
			}
			if seed == 0 {
				seed = 1
			}
			p.Seed = seed
			continue
		}
		kind, ok := kindByName(kindStr)
		if !ok {
			return nil, fmt.Errorf("fault: unknown event kind %q", kindStr)
		}
		e := Event{Kind: kind, PE: Unset, Dst: Unset, Iter: EveryIter, Word: Unset, Bit: Unset}
		if hasFields {
			if err := parseFields(&e, rest); err != nil {
				return nil, err
			}
		}
		if err := checkEvent(&e); err != nil {
			return nil, err
		}
		p.Events = append(p.Events, e)
	}
	// A seed-only plan would arm an injector that can never fire (and
	// its canonical form would not round-trip); reject it with the
	// empty plan.
	if len(p.Events) == 0 {
		return nil, fmt.Errorf("fault: plan has no events")
	}
	return p, nil
}

func parseFields(e *Event, s string) error {
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return fmt.Errorf("fault: %s: field %q is not key=value", e.Kind, field)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "pe":
			// pe=3 or pe=3->1 (ASCII) or pe=3→1 (arrow).
			src := val
			if a, b, ok := strings.Cut(val, "->"); ok {
				src = a
				dst, err := parseBounded(b, 0, 1<<20)
				if err != nil {
					return fmt.Errorf("fault: %s: bad destination PE %q", e.Kind, b)
				}
				e.Dst = dst
			} else if a, b, ok := strings.Cut(val, "→"); ok {
				src = a
				dst, err := parseBounded(b, 0, 1<<20)
				if err != nil {
					return fmt.Errorf("fault: %s: bad destination PE %q", e.Kind, b)
				}
				e.Dst = dst
			}
			pe, err := parseBounded(src, 0, 1<<20)
			if err != nil {
				return fmt.Errorf("fault: %s: bad PE %q", e.Kind, src)
			}
			e.PE = pe
		case "iter":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return fmt.Errorf("fault: %s: iter must be a positive integer, got %q", e.Kind, val)
			}
			e.Iter = n
		case "dur":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return fmt.Errorf("fault: %s: bad duration %q", e.Kind, val)
			}
			e.Dur = d
		case "word":
			w, err := parseBounded(val, 0, 1<<30)
			if err != nil {
				return fmt.Errorf("fault: %s: bad word index %q", e.Kind, val)
			}
			e.Word = w
		case "bit":
			b, err := parseBounded(val, 0, 63)
			if err != nil {
				return fmt.Errorf("fault: %s: bit must be in [0,63], got %q", e.Kind, val)
			}
			e.Bit = b
		default:
			return fmt.Errorf("fault: %s: unknown field %q", e.Kind, key)
		}
	}
	return nil
}

func parseBounded(s string, lo, hi int) (int, error) {
	s = strings.TrimSpace(s)
	n, err := strconv.Atoi(s)
	if err != nil || n < lo || n > hi {
		return 0, fmt.Errorf("out of range")
	}
	return n, nil
}

// checkEvent enforces per-kind required fields.
func checkEvent(e *Event) error {
	if e.PE == Unset {
		return fmt.Errorf("fault: %s: missing pe=", e.Kind)
	}
	if e.Dst == e.PE && e.Dst != Unset {
		return fmt.Errorf("fault: %s: pe=%d->%d is a self-transfer", e.Kind, e.PE, e.Dst)
	}
	switch e.Kind {
	case Drop, Dup, Delay:
		if e.Dst == Unset {
			return fmt.Errorf("fault: %s: needs a directed transfer (pe=<src>-><dst>)", e.Kind)
		}
	case Revive:
		// The supervisor consumes revives at checkpoint boundaries; an
		// every-invocation revive would regrow on every checkpoint.
		if e.Iter == EveryIter {
			return fmt.Errorf("fault: revive: needs iter=<n> (the kernel invocation the replacement PE is ready at)")
		}
	}
	switch e.Kind {
	case Delay, Stall:
		if e.Dur <= 0 {
			return fmt.Errorf("fault: %s: needs dur=<duration>", e.Kind)
		}
	default:
		if e.Dur != 0 {
			return fmt.Errorf("fault: %s: dur= is only valid on delay and stall", e.Kind)
		}
	}
	if e.Kind != Corrupt && (e.Word != Unset || e.Bit != Unset) {
		return fmt.Errorf("fault: %s: word=/bit= are only valid on corrupt", e.Kind)
	}
	// Transfer direction is meaningless for PE-local faults.
	if (e.Kind == Stall || e.Kind == Panic || e.Kind == Kill || e.Kind == Revive) && e.Dst != Unset {
		return fmt.Errorf("fault: %s: does not take a destination PE", e.Kind)
	}
	return nil
}

// Kinds returns the sorted names of all event kinds (for usage text).
func Kinds() []string {
	out := append([]string(nil), kindNames[:]...)
	sort.Strings(out)
	return out
}
