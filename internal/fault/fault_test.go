package fault

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestParseExamplePlan(t *testing.T) {
	p, err := Parse("corrupt:pe=2,iter=5;stall:pe=0,dur=10ms;panic:pe=1,iter=12;drop:pe=3->1,iter=7")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(p.Events))
	}
	want := []Event{
		{Kind: Corrupt, PE: 2, Dst: Unset, Iter: 5, Word: Unset, Bit: Unset},
		{Kind: Stall, PE: 0, Dst: Unset, Iter: EveryIter, Dur: 10 * time.Millisecond, Word: Unset, Bit: Unset},
		{Kind: Panic, PE: 1, Dst: Unset, Iter: 12, Word: Unset, Bit: Unset},
		{Kind: Drop, PE: 3, Dst: 1, Iter: 7, Word: Unset, Bit: Unset},
	}
	for i, e := range p.Events {
		if e != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
	if p.Seed != 1 {
		t.Errorf("default seed = %d, want 1", p.Seed)
	}
}

func TestParseUnicodeArrowAndSeed(t *testing.T) {
	p, err := Parse("seed:42; drop:pe=3→1,iter=7 ; delay:pe=0->2,dur=1ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Errorf("seed = %d", p.Seed)
	}
	if p.Events[0].Dst != 1 || p.Events[0].PE != 3 {
		t.Errorf("arrow parse: %+v", p.Events[0])
	}
	if p.Events[1].Dur != time.Millisecond {
		t.Errorf("delay dur: %+v", p.Events[1])
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"",                        // empty plan
		";;",                      // only separators
		"explode:pe=1",            // unknown kind
		"corrupt",                 // missing pe
		"corrupt:iter=3",          // missing pe
		"corrupt:pe=1,iter=0",     // iter < 1
		"corrupt:pe=1,iter=-2",    // negative iter
		"corrupt:pe=-1",           // negative pe
		"corrupt:pe=x",            // non-numeric pe
		"corrupt:pe=1,bit=64",     // bit out of range
		"corrupt:pe=1,weird=3",    // unknown field
		"corrupt:pe=1,bit",        // not key=value
		"drop:pe=3",               // drop needs a destination
		"drop:pe=3->3",            // self-transfer
		"stall:pe=0",              // stall needs dur
		"stall:pe=0,dur=-3ms",     // negative duration
		"stall:pe=0,dur=xyz",      // bad duration
		"stall:pe=0->1,dur=1ms",   // stall takes no destination
		"panic:pe=1,dur=1ms",      // dur invalid on panic
		"panic:pe=1,bit=3",        // bit invalid on panic
		"seed:zzz",                // bad seed
		"corrupt:pe=999999999999", // pe out of bounds
		"revive:pe=3",             // revive needs iter
		"revive:pe=3->1,iter=5",   // revive takes no destination
		"revive:pe=3,iter=5,dur=1ms", // dur invalid on revive
		"revive:pe=3,iter=5,bit=2",   // bit invalid on revive
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"corrupt:pe=2,iter=5;stall:pe=0,dur=10ms;panic:pe=1,iter=12;drop:pe=3->1,iter=7",
		"seed:9;corrupt:pe=0->1,word=3,bit=62",
		"dup:pe=1->0;delay:pe=0->1,dur=250µs",
		"kill:pe=5,iter=25;revive:pe=5,iter=40",
	} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(String()=%q): %v", canon, err)
		}
		if p2.String() != canon {
			t.Errorf("round trip unstable: %q -> %q", canon, p2.String())
		}
		if p2.Seed != p.Seed || len(p2.Events) != len(p.Events) {
			t.Errorf("round trip changed plan: %+v vs %+v", p, p2)
		}
		for i := range p.Events {
			if p.Events[i] != p2.Events[i] {
				t.Errorf("event %d changed: %+v vs %+v", i, p.Events[i], p2.Events[i])
			}
		}
	}
}

func TestValidate(t *testing.T) {
	p, err := Parse("corrupt:pe=2,iter=5;drop:pe=3->1,iter=7")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(4); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if err := p.Validate(3); err == nil {
		t.Error("pe=3 accepted on a 3-PE machine")
	}
	if err := p.Validate(2); err == nil {
		t.Error("pe=2 accepted on a 2-PE machine")
	}

	// A revive names an insertion slot: pe == pes is valid (append at
	// the top), pe > pes is not.
	rv, err := Parse("revive:pe=4,iter=10")
	if err != nil {
		t.Fatal(err)
	}
	if err := rv.Validate(4); err != nil {
		t.Errorf("revive pe=4 rejected on a 4-PE machine: %v", err)
	}
	if err := rv.Validate(3); err == nil {
		t.Error("revive pe=4 accepted on a 3-PE machine")
	}
}

func TestInjectorCorruptFlipsOneBit(t *testing.T) {
	p, err := Parse("corrupt:pe=0->1,iter=3,word=2,bit=62")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	buf := []float64{1, 2, 3, 4}
	orig := append([]float64(nil), buf...)

	in.CorruptSend(0, 1, 1, buf) // wrong iter
	in.CorruptSend(1, 0, 3, buf) // wrong pe
	in.CorruptSend(0, 2, 3, buf) // wrong dst
	for i := range buf {
		if buf[i] != orig[i] {
			t.Fatalf("buffer changed by non-matching event at %d", i)
		}
	}

	in.CorruptSend(0, 1, 3, buf)
	if got := math.Float64bits(buf[2]) ^ math.Float64bits(orig[2]); got != 1<<62 {
		t.Errorf("flipped bits = %b, want bit 62", got)
	}
	for _, i := range []int{0, 1, 3} {
		if buf[i] != orig[i] {
			t.Errorf("word %d changed", i)
		}
	}
	if in.Count(Corrupt) != 1 {
		t.Errorf("corrupt count = %d", in.Count(Corrupt))
	}
}

func TestInjectorSeededCorruptionDeterministic(t *testing.T) {
	plan, err := Parse("seed:7;corrupt:pe=0,iter=2")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []float64 {
		in := NewInjector(plan)
		buf := []float64{1, 2, 3, 4, 5}
		in.CorruptSend(0, 1, 2, buf)
		return buf
	}
	a, b := run(), run()
	changed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded corruption not deterministic at word %d", i)
		}
		if a[i] != float64(i+1) {
			changed++
			// Exponent-range default: the perturbation must be drastic.
			if rel := math.Abs(a[i]-float64(i+1)) / float64(i+1); rel < 1e-4 {
				t.Errorf("default corruption too subtle: word %d, rel %g", i, rel)
			}
		}
	}
	if changed != 1 {
		t.Errorf("%d words changed, want 1", changed)
	}
}

func TestInjectorDeliver(t *testing.T) {
	p, err := Parse("drop:pe=1->0,iter=2;dup:pe=2->0,iter=2")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	if r := in.Deliver(1, 0, 1); r != 1 {
		t.Errorf("clean delivery reps = %d", r)
	}
	if r := in.Deliver(1, 0, 2); r != 0 {
		t.Errorf("dropped delivery reps = %d", r)
	}
	if r := in.Deliver(0, 1, 2); r != 1 {
		t.Errorf("reverse direction faulted: reps = %d", r)
	}
	if r := in.Deliver(2, 0, 2); r != 2 {
		t.Errorf("duplicated delivery reps = %d", r)
	}
	if in.Count(Drop) != 1 || in.Count(Dup) != 1 || in.Total() != 2 {
		t.Errorf("counts: drop=%d dup=%d total=%d", in.Count(Drop), in.Count(Dup), in.Total())
	}
}

func TestInjectorPanicAndStall(t *testing.T) {
	p, err := Parse("stall:pe=0,dur=1ms,iter=1;panic:pe=1,iter=2")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	start := time.Now()
	in.AfterCompute(0, 1) // stalls ~1ms
	if time.Since(start) < time.Millisecond {
		t.Error("stall did not sleep")
	}
	in.AfterCompute(1, 1) // wrong iter: no panic
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic event did not panic")
			}
			ip, ok := r.(*Injected)
			if !ok {
				t.Fatalf("panic value %T, want *Injected", r)
			}
			if ip.PE != 1 || ip.Iter != 2 {
				t.Errorf("panic value %+v", ip)
			}
			if !strings.Contains(ip.String(), "PE 1") {
				t.Errorf("panic string %q", ip.String())
			}
		}()
		in.AfterCompute(1, 2)
	}()
	if in.Count(Stall) != 1 || in.Count(Panic) != 1 {
		t.Errorf("counts: stall=%d panic=%d", in.Count(Stall), in.Count(Panic))
	}
}

func TestBeginKernelCounts(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1})
	if it := in.BeginKernel(); it != 1 {
		t.Errorf("first kernel = %d", it)
	}
	if it := in.BeginKernel(); it != 2 {
		t.Errorf("second kernel = %d", it)
	}
	if in.Iter() != 2 {
		t.Errorf("Iter = %d", in.Iter())
	}
}

// TestKillKind pins the kill event end to end: the grammar accepts it
// with the same restrictions as panic (no destination, no duration, no
// corruption fields), it round-trips through String, and firing it
// panics with *Killed — the type the recovery layer keys on to shrink
// the run instead of rebuilding at full width.
func TestKillKind(t *testing.T) {
	p, err := Parse("kill:pe=3,iter=40")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Has(Kill) || p.Has(Panic) {
		t.Errorf("Has: kill=%v panic=%v", p.Has(Kill), p.Has(Panic))
	}
	if got := p.String(); got != "kill:pe=3,iter=40" {
		t.Errorf("canonical form %q", got)
	}
	for _, bad := range []string{
		"kill:pe=0->1,iter=2", // no destination
		"kill:pe=0,dur=1ms",   // no duration
		"kill:pe=0,bit=3",     // no corruption fields
		"kill:iter=2",         // missing pe
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	if err := p.Validate(4); err != nil {
		t.Errorf("valid kill plan rejected: %v", err)
	}
	if err := p.Validate(3); err == nil {
		t.Error("kill:pe=3 accepted on a 3-PE machine")
	}

	in := NewInjector(p)
	in.AfterCompute(3, 39) // wrong iter: nothing fires
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("kill event did not panic")
			}
			k, ok := r.(*Killed)
			if !ok {
				t.Fatalf("panic value %T, want *Killed", r)
			}
			if k.PE != 3 || k.Iter != 40 {
				t.Errorf("kill value %+v", k)
			}
			if !strings.Contains(k.String(), "PE 3") {
				t.Errorf("kill string %q", k.String())
			}
		}()
		in.AfterCompute(3, 40)
	}()
	if in.Count(Kill) != 1 || in.Count(Panic) != 0 {
		t.Errorf("counts: kill=%d panic=%d", in.Count(Kill), in.Count(Panic))
	}
}

// TestInjectorAdvance: a resumed run fast-forwards the kernel counter so
// later events keep their absolute invocation numbers.
func TestInjectorAdvance(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1})
	in.Advance(10)
	if it := in.BeginKernel(); it != 11 {
		t.Errorf("kernel after Advance(10) = %d, want 11", it)
	}
	in.Advance(-5) // ignored
	if in.Iter() != 11 {
		t.Errorf("Iter after negative Advance = %d, want 11", in.Iter())
	}
}
