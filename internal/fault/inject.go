package fault

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Injected is the panic value raised by a Panic event. The runtime's
// containment recovers it like any other PE panic; carrying a distinct
// type lets the resulting error say the fault was planned.
type Injected struct {
	PE   int
	Iter int64
}

func (p *Injected) String() string {
	return fmt.Sprintf("injected panic on PE %d at kernel %d", p.PE, p.Iter)
}

// Killed is the panic value raised by a Kill event: unlike *Injected
// (a software fault a caller may retry at full width), it declares the
// PE permanently lost. The recovery layer keys on this type to decide
// that the only way forward is shrinking the run onto the survivors.
type Killed struct {
	PE   int
	Iter int64
}

func (k *Killed) String() string {
	return fmt.Sprintf("PE %d killed at kernel %d", k.PE, k.Iter)
}

// Injector executes an armed Plan at the runtime's exchange boundary.
// All hook methods are safe for concurrent use by the PE goroutines and
// allocate nothing; the runtime calls them only while a plan is armed,
// so the disarmed hot path stays a nil check. Injection counts are
// tallied internally (always) and mirrored to obs counters (when
// telemetry is enabled) under "fault.injected.<kind>".
type Injector struct {
	seed   int64
	events []Event
	iter   atomic.Int64
	counts [numKinds]atomic.Int64
	met    [numKinds]*obs.Counter
	names  [numKinds]string // flight-recorder names, prebuilt so note stays allocation-free
}

// NewInjector compiles a plan into an armed injector. The plan is
// copied; later mutation of the caller's Plan has no effect.
func NewInjector(p *Plan) *Injector {
	in := &Injector{
		seed:   p.Seed,
		events: append([]Event(nil), p.Events...),
	}
	if in.seed == 0 {
		in.seed = 1
	}
	for k := 0; k < numKinds; k++ {
		in.names[k] = "fault.injected." + kindNames[k]
		in.met[k] = obs.GetCounter(in.names[k])
	}
	return in
}

// BeginKernel advances the injector's kernel-invocation counter and
// returns the new (1-based) index. The runtime calls it once per
// dispatched kernel, under the dispatch lock.
func (in *Injector) BeginKernel() int64 { return in.iter.Add(1) }

// Advance moves the kernel-invocation counter forward by n without
// dispatching kernels. A resumed run uses it to fast-forward a freshly
// armed injector past the kernels the checkpointed run already
// executed, so the remaining planned events fire at the same absolute
// invocations they would have in an uninterrupted run. Negative n is
// ignored.
func (in *Injector) Advance(n int64) {
	if n > 0 {
		in.iter.Add(n)
	}
}

// Iter returns the number of kernels dispatched since arming.
func (in *Injector) Iter() int64 { return in.iter.Load() }

// Count returns how many faults of kind k have been injected.
func (in *Injector) Count(k Kind) int64 {
	if int(k) >= numKinds {
		return 0
	}
	return in.counts[k].Load()
}

// Total returns the total number of injected faults.
func (in *Injector) Total() int64 {
	var t int64
	for k := 0; k < numKinds; k++ {
		t += in.counts[k].Load()
	}
	return t
}

func (in *Injector) note(k Kind, pe int, iter int64) {
	in.counts[k].Add(1)
	in.met[k].Add(1)
	obs.RecordFlight(obs.FlightFault, in.names[k], pe, iter, 0)
}

func (e *Event) fires(iter int64) bool {
	return e.Iter == EveryIter || e.Iter == iter
}

// AfterCompute fires the PE-local events (Stall, Panic) for pe at the
// given kernel. The runtime calls it between the computation phase and
// the posting of partial sums — the point where a dead PE is most
// dangerous, with every peer headed for the phase synchronization.
func (in *Injector) AfterCompute(pe int, iter int64) {
	for i := range in.events {
		e := &in.events[i]
		if e.PE != pe || !e.fires(iter) {
			continue
		}
		switch e.Kind {
		case Stall:
			in.note(Stall, pe, iter)
			time.Sleep(e.Dur)
		case Panic:
			in.note(Panic, pe, iter)
			panic(&Injected{PE: pe, Iter: iter})
		case Kill:
			in.note(Kill, pe, iter)
			panic(&Killed{PE: pe, Iter: iter})
		}
	}
}

// CorruptSend applies Corrupt events to the partial-sum buffer pe has
// just posted for dst, flipping one bit per matching event. Unpinned
// word/bit targets are derived from the plan seed: the word uniformly,
// the bit from the exponent range [52,62] so the corruption perturbs
// the magnitude instead of hiding below the solver's tolerance.
func (in *Injector) CorruptSend(pe, dst int, iter int64, buf []float64) {
	for i := range in.events {
		e := &in.events[i]
		if e.Kind != Corrupt || e.PE != pe || !e.fires(iter) {
			continue
		}
		if e.Dst != Unset && e.Dst != dst {
			continue
		}
		if len(buf) == 0 {
			continue
		}
		h := mix(uint64(in.seed) ^ uint64(pe)<<40 ^ uint64(dst)<<20 ^ uint64(iter))
		w := e.Word
		if w == Unset {
			w = int(h % uint64(len(buf)))
		} else if w >= len(buf) {
			w %= len(buf)
		}
		b := e.Bit
		if b == Unset {
			b = 52 + int((h>>32)%11)
		}
		buf[w] = math.Float64frombits(math.Float64bits(buf[w]) ^ (1 << uint(b)))
		in.note(Corrupt, pe, iter)
	}
}

// Deliver reports how the transfer src→dst should be delivered at the
// given kernel: the returned count is 1 for a clean delivery, 0 for a
// dropped transfer, 2 for a duplicated one. Delay events sleep here, on
// the receiving PE, before delivery — the receiver experiences a late
// message exactly as the paper's latency term models it.
func (in *Injector) Deliver(src, dst int, iter int64) int {
	reps := 1
	for i := range in.events {
		e := &in.events[i]
		if e.PE != src || e.Dst != dst || !e.fires(iter) {
			continue
		}
		switch e.Kind {
		case Drop:
			in.note(Drop, src, iter)
			reps = 0
		case Dup:
			in.note(Dup, src, iter)
			reps = 2
		case Delay:
			in.note(Delay, src, iter)
			time.Sleep(e.Dur)
		}
	}
	return reps
}

// mix is splitmix64: a fast, well-distributed 64-bit mixer, giving the
// injector deterministic per-(seed,pe,dst,iter) corruption targets
// without any global random state.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
