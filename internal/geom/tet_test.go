package geom

import (
	"math"
	"testing"
	"testing/quick"
)

// unitTet is the canonical right tetrahedron with volume 1/6.
var unitTet = [4]Vec3{V(0, 0, 0), V(1, 0, 0), V(0, 1, 0), V(0, 0, 1)}

func TestTetVolumeUnit(t *testing.T) {
	got := TetVolume(unitTet[0], unitTet[1], unitTet[2], unitTet[3])
	if !almostEq(got, 1.0/6, 1e-15) {
		t.Errorf("volume = %v, want 1/6", got)
	}
	// Swapping two vertices negates the volume.
	neg := TetVolume(unitTet[1], unitTet[0], unitTet[2], unitTet[3])
	if !almostEq(neg, -1.0/6, 1e-15) {
		t.Errorf("swapped volume = %v, want -1/6", neg)
	}
}

func TestTetVolumeDegenerate(t *testing.T) {
	// Four coplanar points.
	got := TetVolume(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0), V(1, 1, 0))
	if got != 0 {
		t.Errorf("coplanar volume = %v", got)
	}
}

func TestTetCentroid(t *testing.T) {
	got := TetCentroid(unitTet[0], unitTet[1], unitTet[2], unitTet[3])
	if !vecAlmostEq(got, V(0.25, 0.25, 0.25), 1e-15) {
		t.Errorf("centroid = %v", got)
	}
}

func TestTriangleArea(t *testing.T) {
	got := TriangleArea(V(0, 0, 0), V(2, 0, 0), V(0, 2, 0))
	if !almostEq(got, 2, 1e-15) {
		t.Errorf("area = %v, want 2", got)
	}
}

func TestTetAspectRatio(t *testing.T) {
	// Regular tetrahedron: aspect ratio = sqrt(6) ≈ 2.449.
	a := V(1, 1, 1)
	b := V(1, -1, -1)
	c := V(-1, 1, -1)
	d := V(-1, -1, 1)
	got := TetAspectRatio(a, b, c, d)
	if !almostEq(got, math.Sqrt(6), 1e-12) {
		t.Errorf("regular aspect = %v, want %v", got, math.Sqrt(6))
	}
	if !math.IsInf(TetAspectRatio(V(0, 0, 0), V(1, 0, 0), V(2, 0, 0), V(3, 0, 0)), 1) {
		t.Error("degenerate aspect not +Inf")
	}
}

func TestTetShapeGradients(t *testing.T) {
	grads, vol, ok := TetShapeGradients(unitTet[0], unitTet[1], unitTet[2], unitTet[3])
	if !ok {
		t.Fatal("unit tet reported degenerate")
	}
	if !almostEq(vol, 1.0/6, 1e-15) {
		t.Errorf("vol = %v", vol)
	}
	// For the unit right tet: N0 = 1-x-y-z, N1 = x, N2 = y, N3 = z.
	want := [4]Vec3{V(-1, -1, -1), V(1, 0, 0), V(0, 1, 0), V(0, 0, 1)}
	for i := range grads {
		if !vecAlmostEq(grads[i], want[i], 1e-12) {
			t.Errorf("grad[%d] = %v, want %v", i, grads[i], want[i])
		}
	}
	if _, _, ok := TetShapeGradients(V(0, 0, 0), V(1, 0, 0), V(2, 0, 0), V(3, 0, 0)); ok {
		t.Error("degenerate tet reported ok")
	}
}

// Property: shape function gradients sum to zero (partition of unity),
// and grad N_i dotted with edge (v_j - v_i) recovers the Kronecker
// structure N_i(v_j) = δ_ij for linear elements.
func TestQuickShapeGradientPartitionOfUnity(t *testing.T) {
	f := func(a, b, c, d Vec3) bool {
		grads, vol, ok := TetShapeGradients(a, b, c, d)
		if !ok || math.Abs(vol) < 1e-6 {
			return true // skip near-degenerate draws
		}
		sum := grads[0].Add(grads[1]).Add(grads[2]).Add(grads[3])
		scale := grads[0].Norm() + grads[1].Norm() + grads[2].Norm() + grads[3].Norm()
		if sum.Norm() > 1e-9*(1+scale) {
			return false
		}
		verts := [4]Vec3{a, b, c, d}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				// N_i(v_j) = N_i(v_i) + grad·(v_j - v_i) must be δ_ij.
				val := grads[i].Dot(verts[j].Sub(verts[i]))
				want := 0.0
				if i != j {
					want = -1 // N_i drops from 1 at v_i to 0 at v_j
				}
				if math.Abs(val-want) > 1e-6*(1+grads[i].Norm()*verts[j].Sub(verts[i]).Norm()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: volume is invariant under even permutations of vertices.
func TestQuickVolumePermutation(t *testing.T) {
	f := func(a, b, c, d Vec3) bool {
		v1 := TetVolume(a, b, c, d)
		v2 := TetVolume(b, c, a, d) // even permutation
		v3 := TetVolume(b, a, c, d) // odd permutation
		tol := 1e-9 * (1 + math.Abs(v1))
		return math.Abs(v1-v2) < tol && math.Abs(v1+v3) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
