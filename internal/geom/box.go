package geom

import "fmt"

// Box is an axis-aligned box [Lo, Hi] in 3-space. A Box with any
// Hi component below the corresponding Lo component is empty.
type Box struct {
	Lo, Hi Vec3
}

// NewBox returns the axis-aligned box spanned by the two corner points,
// which may be given in any order.
func NewBox(a, b Vec3) Box { return Box{Min(a, b), Max(a, b)} }

// Size returns the edge lengths of the box along each axis.
func (b Box) Size() Vec3 { return b.Hi.Sub(b.Lo) }

// Center returns the centroid of the box.
func (b Box) Center() Vec3 { return b.Lo.Add(b.Hi).Scale(0.5) }

// Volume returns the volume of the box (0 for empty boxes).
func (b Box) Volume() float64 {
	s := b.Size()
	if s.X < 0 || s.Y < 0 || s.Z < 0 {
		return 0
	}
	return s.X * s.Y * s.Z
}

// Contains reports whether p lies inside or on the boundary of b.
func (b Box) Contains(p Vec3) bool {
	return p.X >= b.Lo.X && p.X <= b.Hi.X &&
		p.Y >= b.Lo.Y && p.Y <= b.Hi.Y &&
		p.Z >= b.Lo.Z && p.Z <= b.Hi.Z
}

// Intersects reports whether b and o share any point.
func (b Box) Intersects(o Box) bool {
	return b.Lo.X <= o.Hi.X && o.Lo.X <= b.Hi.X &&
		b.Lo.Y <= o.Hi.Y && o.Lo.Y <= b.Hi.Y &&
		b.Lo.Z <= o.Hi.Z && o.Lo.Z <= b.Hi.Z
}

// Expand returns b grown by eps on every side.
func (b Box) Expand(eps float64) Box {
	d := Vec3{eps, eps, eps}
	return Box{b.Lo.Sub(d), b.Hi.Add(d)}
}

// Union returns the smallest box containing both b and o.
func (b Box) Union(o Box) Box { return Box{Min(b.Lo, o.Lo), Max(b.Hi, o.Hi)} }

// LongestAxis returns the axis (0, 1, or 2) along which the box is
// longest, preferring the lowest axis on ties.
func (b Box) LongestAxis() int {
	s := b.Size()
	axis := 0
	best := s.X
	if s.Y > best {
		axis, best = 1, s.Y
	}
	if s.Z > best {
		axis = 2
	}
	return axis
}

// MaxDim returns the length of the longest edge of the box.
func (b Box) MaxDim() float64 {
	return b.Size().Component(b.LongestAxis())
}

// String implements fmt.Stringer.
func (b Box) String() string { return fmt.Sprintf("[%v .. %v]", b.Lo, b.Hi) }
