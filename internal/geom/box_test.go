package geom

import (
	"testing"
	"testing/quick"
)

func TestNewBoxOrdersCorners(t *testing.T) {
	b := NewBox(V(3, -1, 5), V(1, 2, 4))
	if b.Lo != V(1, -1, 4) || b.Hi != V(3, 2, 5) {
		t.Errorf("NewBox = %v", b)
	}
}

func TestBoxSizeCenterVolume(t *testing.T) {
	b := NewBox(V(0, 0, 0), V(2, 4, 6))
	if b.Size() != V(2, 4, 6) {
		t.Errorf("Size = %v", b.Size())
	}
	if b.Center() != V(1, 2, 3) {
		t.Errorf("Center = %v", b.Center())
	}
	if b.Volume() != 48 {
		t.Errorf("Volume = %v", b.Volume())
	}
	empty := Box{V(1, 1, 1), V(0, 2, 2)}
	if empty.Volume() != 0 {
		t.Errorf("empty Volume = %v", empty.Volume())
	}
}

func TestBoxContains(t *testing.T) {
	b := NewBox(V(0, 0, 0), V(1, 1, 1))
	cases := []struct {
		p    Vec3
		want bool
	}{
		{V(0.5, 0.5, 0.5), true},
		{V(0, 0, 0), true},
		{V(1, 1, 1), true},
		{V(1.0001, 0.5, 0.5), false},
		{V(0.5, -0.0001, 0.5), false},
	}
	for _, c := range cases {
		if got := b.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestBoxIntersects(t *testing.T) {
	a := NewBox(V(0, 0, 0), V(2, 2, 2))
	if !a.Intersects(NewBox(V(1, 1, 1), V(3, 3, 3))) {
		t.Error("overlapping boxes reported disjoint")
	}
	if !a.Intersects(NewBox(V(2, 0, 0), V(3, 1, 1))) {
		t.Error("touching boxes reported disjoint")
	}
	if a.Intersects(NewBox(V(2.1, 0, 0), V(3, 1, 1))) {
		t.Error("disjoint boxes reported overlapping")
	}
}

func TestBoxExpandUnion(t *testing.T) {
	a := NewBox(V(0, 0, 0), V(1, 1, 1))
	e := a.Expand(0.5)
	if e.Lo != V(-0.5, -0.5, -0.5) || e.Hi != V(1.5, 1.5, 1.5) {
		t.Errorf("Expand = %v", e)
	}
	u := a.Union(NewBox(V(2, -1, 0), V(3, 0.5, 2)))
	if u.Lo != V(0, -1, 0) || u.Hi != V(3, 1, 2) {
		t.Errorf("Union = %v", u)
	}
}

func TestBoxLongestAxis(t *testing.T) {
	cases := []struct {
		b    Box
		want int
	}{
		{NewBox(V(0, 0, 0), V(3, 1, 2)), 0},
		{NewBox(V(0, 0, 0), V(1, 3, 2)), 1},
		{NewBox(V(0, 0, 0), V(1, 2, 3)), 2},
		{NewBox(V(0, 0, 0), V(2, 2, 2)), 0}, // tie prefers lowest axis
	}
	for _, c := range cases {
		if got := c.b.LongestAxis(); got != c.want {
			t.Errorf("LongestAxis(%v) = %d, want %d", c.b, got, c.want)
		}
		if got := c.b.MaxDim(); got != c.b.Size().Component(c.want) {
			t.Errorf("MaxDim(%v) = %v", c.b, got)
		}
	}
}

func TestQuickBoxUnionContains(t *testing.T) {
	f := func(a, b, c, d Vec3) bool {
		b1, b2 := NewBox(a, b), NewBox(c, d)
		u := b1.Union(b2)
		return u.Contains(b1.Lo) && u.Contains(b1.Hi) && u.Contains(b2.Lo) && u.Contains(b2.Hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBoxCenterInside(t *testing.T) {
	f := func(a, b Vec3) bool {
		box := NewBox(a, b)
		return box.Contains(box.Center())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
