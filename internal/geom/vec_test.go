package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

// Generate implements quick.Generator so quick-check draws bounded,
// well-conditioned vectors instead of arbitrary float64 bit patterns.
func (Vec3) Generate(r *rand.Rand, _ int) reflect.Value { return reflect.ValueOf(genVec(r)) }

func genVec(r *rand.Rand) Vec3 {
	return Vec3{r.Float64()*200 - 100, r.Float64()*200 - 100, r.Float64()*200 - 100}
}

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)
	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := V(1, 0, 0).Cross(V(0, 1, 0)); got != V(0, 0, 1) {
		t.Errorf("Cross = %v", got)
	}
	if got := V(3, 4, 0).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := V(3, 4, 0).Norm2(); got != 25 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := V(0, 3, 4).Dist(V(0, 0, 0)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestVecComponentAccess(t *testing.T) {
	a := V(7, 8, 9)
	for axis, want := range []float64{7, 8, 9} {
		if got := a.Component(axis); got != want {
			t.Errorf("Component(%d) = %v, want %v", axis, got, want)
		}
	}
	if got := a.WithComponent(1, -1); got != V(7, -1, 9) {
		t.Errorf("WithComponent = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Component(3) did not panic")
		}
	}()
	a.Component(3)
}

func TestVecWithComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WithComponent(-1) did not panic")
		}
	}()
	V(0, 0, 0).WithComponent(-1, 1)
}

func TestNormalize(t *testing.T) {
	if got := V(0, 0, 0).Normalize(); got != V(0, 0, 0) {
		t.Errorf("Normalize(0) = %v", got)
	}
	n := V(3, 4, 12).Normalize()
	if !almostEq(n.Norm(), 1, 1e-14) {
		t.Errorf("|Normalize| = %v", n.Norm())
	}
}

func TestLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(2, 4, 6)
	if got := Lerp(a, b, 0.5); got != V(1, 2, 3) {
		t.Errorf("Lerp = %v", got)
	}
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	a, b := V(1, 5, -2), V(3, -4, 0)
	if got := Min(a, b); got != V(1, -4, -2) {
		t.Errorf("Min = %v", got)
	}
	if got := Max(a, b); got != V(3, 5, 0) {
		t.Errorf("Max = %v", got)
	}
}

func TestQuickCrossOrthogonal(t *testing.T) {
	f := func(a, b Vec3) bool {
		c := a.Cross(b)
		// c ⟂ a and c ⟂ b up to rounding.
		tol := 1e-9 * (1 + a.Norm()*b.Norm())
		return math.Abs(c.Dot(a)) < tol*(1+c.Norm()) && math.Abs(c.Dot(b)) < tol*(1+c.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDotSymmetric(t *testing.T) {
	f := func(a, b Vec3) bool { return a.Dot(b) == b.Dot(a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddSubRoundtrip(t *testing.T) {
	f := func(a, b Vec3) bool { return vecAlmostEq(a.Add(b).Sub(b), a, 1e-12) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLagrangeIdentity(t *testing.T) {
	// |a×b|² + (a·b)² = |a|²|b|².
	f := func(a, b Vec3) bool {
		lhs := a.Cross(b).Norm2() + a.Dot(b)*a.Dot(b)
		rhs := a.Norm2() * b.Norm2()
		return almostEq(lhs, rhs, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if got := V(1, 2.5, -3).String(); got != "(1, 2.5, -3)" {
		t.Errorf("String = %q", got)
	}
}
