package geom

import "math"

// TetVolume returns the signed volume of the tetrahedron (a, b, c, d).
// The volume is positive when (b-a, c-a, d-a) form a right-handed frame.
func TetVolume(a, b, c, d Vec3) float64 {
	return b.Sub(a).Cross(c.Sub(a)).Dot(d.Sub(a)) / 6
}

// TetCentroid returns the centroid of the tetrahedron (a, b, c, d).
func TetCentroid(a, b, c, d Vec3) Vec3 {
	return a.Add(b).Add(c).Add(d).Scale(0.25)
}

// TriangleArea returns the (unsigned) area of the triangle (a, b, c).
func TriangleArea(a, b, c Vec3) float64 {
	return b.Sub(a).Cross(c.Sub(a)).Norm() / 2
}

// TetAspectRatio returns the ratio of the longest edge of the tetrahedron
// to the diameter of its inscribed sphere; equilateral tetrahedra have
// the minimum possible value of about 2.45 (sqrt(6)), and degenerate
// tetrahedra report +Inf.
func TetAspectRatio(a, b, c, d Vec3) float64 {
	vol := math.Abs(TetVolume(a, b, c, d))
	if vol == 0 {
		return math.Inf(1)
	}
	// Inradius r = 3V / (total face area).
	area := TriangleArea(a, b, c) + TriangleArea(a, b, d) +
		TriangleArea(a, c, d) + TriangleArea(b, c, d)
	r := 3 * vol / area
	longest := 0.0
	pts := [4]Vec3{a, b, c, d}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if e := pts[i].Dist(pts[j]); e > longest {
				longest = e
			}
		}
	}
	return longest / (2 * r)
}

// TetShapeGradients computes the constant gradients of the four linear
// shape functions of the tetrahedron (a, b, c, d) along with its signed
// volume. For a linear tetrahedron the shape function N_i is 1 at vertex
// i and 0 at the others, and its gradient is constant over the element.
// If the element is degenerate (zero volume) ok is false.
func TetShapeGradients(a, b, c, d Vec3) (grads [4]Vec3, vol float64, ok bool) {
	vol = TetVolume(a, b, c, d)
	if vol == 0 {
		return grads, 0, false
	}
	// grad N_i = (opposite face normal, inward) / (3 V_i-scaled). For
	// vertex a the opposite face is (b, c, d); the gradient is
	// (c-b)×(d-b) / (6 V), with signs arranged so sum of gradients is 0.
	inv6V := 1 / (6 * vol)
	grads[0] = c.Sub(b).Cross(d.Sub(b)).Scale(-inv6V)
	grads[1] = c.Sub(a).Cross(d.Sub(a)).Scale(inv6V)
	grads[2] = b.Sub(a).Cross(d.Sub(a)).Scale(-inv6V)
	grads[3] = b.Sub(a).Cross(c.Sub(a)).Scale(inv6V)
	return grads, vol, true
}
