// Package geom provides the small amount of 3D geometry needed by the
// mesher, partitioner, and finite element assembly: vectors, axis-aligned
// boxes, and tetrahedron measures. All coordinates are float64 and the
// units throughout the repository are kilometers unless stated otherwise.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or direction in 3-space.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s*a.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{s * a.X, s * a.Y, s * a.Z} }

// Dot returns the dot product a·b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a×b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm returns the Euclidean length of a.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Norm2 returns the squared Euclidean length of a.
func (a Vec3) Norm2() float64 { return a.Dot(a) }

// Dist returns the Euclidean distance between a and b.
func (a Vec3) Dist(b Vec3) float64 { return a.Sub(b).Norm() }

// Normalize returns a unit vector in the direction of a. The zero vector
// is returned unchanged.
func (a Vec3) Normalize() Vec3 {
	n := a.Norm()
	if n == 0 {
		return a
	}
	return a.Scale(1 / n)
}

// Component returns the axis-th coordinate (0=X, 1=Y, 2=Z).
func (a Vec3) Component(axis int) float64 {
	switch axis {
	case 0:
		return a.X
	case 1:
		return a.Y
	case 2:
		return a.Z
	}
	panic(fmt.Sprintf("geom: invalid axis %d", axis))
}

// WithComponent returns a copy of a with the axis-th coordinate set to v.
func (a Vec3) WithComponent(axis int, v float64) Vec3 {
	switch axis {
	case 0:
		a.X = v
	case 1:
		a.Y = v
	case 2:
		a.Z = v
	default:
		panic(fmt.Sprintf("geom: invalid axis %d", axis))
	}
	return a
}

// String implements fmt.Stringer.
func (a Vec3) String() string { return fmt.Sprintf("(%g, %g, %g)", a.X, a.Y, a.Z) }

// Lerp linearly interpolates between a (t=0) and b (t=1).
func Lerp(a, b Vec3, t float64) Vec3 { return a.Add(b.Sub(a).Scale(t)) }

// Min returns the component-wise minimum of a and b.
func Min(a, b Vec3) Vec3 {
	return Vec3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)}
}

// Max returns the component-wise maximum of a and b.
func Max(a, b Vec3) Vec3 {
	return Vec3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)}
}
