// Package machine models parallel machines at the level the paper
// works: a per-flop time T_f for the local SMVP, and a communication
// system characterized by block latency T_l and burst word time T_w.
// It provides the measured presets the paper quotes (Cray T3D and T3E)
// and its two hypothetical machines (100- and 200-MFLOP PEs), plus a
// discrete-event simulator of the exchange phase that validates the
// closed-form model — including an optional finite-bandwidth bisection
// channel used to demonstrate that bisection bandwidth is not the
// bottleneck.
package machine

import (
	"fmt"
	"sort"

	"repro/internal/comm"
	"repro/internal/obs"
)

// Params describes one machine configuration. Times are in seconds.
type Params struct {
	Name string
	Tf   float64 // sustained time per flop of the local SMVP
	Tl   float64 // block latency: per-block overhead at the PE
	Tw   float64 // burst time per word (inverse burst bandwidth)
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Tf <= 0 || p.Tl < 0 || p.Tw < 0 {
		return fmt.Errorf("machine: invalid parameters %+v", p)
	}
	return nil
}

// The paper's measured and hypothetical machines. The T3E communication
// parameters are the paper's measurements (Section 3.3); the T3D
// parameters are estimates consistent with the strided-copy throughput
// and message overheads reported for it in the paper's references.
func T3D() Params { return Params{Name: "Cray T3D", Tf: 30e-9, Tl: 60e-6, Tw: 230e-9} }

// T3E returns the paper's measured Cray T3E parameters: T_f = 14 ns
// (≈70 MFLOPS on the local SMVP), T_l = 22 µs, T_w = 55 ns.
func T3E() Params { return Params{Name: "Cray T3E", Tf: 14e-9, Tl: 22e-6, Tw: 55e-9} }

// Current100 is the paper's "current" hypothetical machine: 100-MFLOP
// PEs. Communication parameters are left at the T3E's measured values.
func Current100() Params { return Params{Name: "current-100MFLOPS", Tf: 10e-9, Tl: 22e-6, Tw: 55e-9} }

// Future200 is the paper's "future" machine: 200-MFLOP PEs with the
// communication system the paper concludes it needs — ~2 µs block
// latency and ~600 MB/s burst bandwidth (T_w ≈ 13 ns).
func Future200() Params { return Params{Name: "future-200MFLOPS", Tf: 5e-9, Tl: 2e-6, Tw: 13e-9} }

// Presets returns all built-in machines.
func Presets() []Params { return []Params{T3D(), T3E(), Current100(), Future200()} }

// PresetByName returns the preset with the given name.
func PresetByName(name string) (Params, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("machine: unknown preset %q", name)
}

// ExactCommTime evaluates the exact (per-PE) closed-form communication
// phase time for a schedule: max over PEs of B_i·T_l + C_i·T_w. The
// paper's model approximates this by B_max·T_l + C_max·T_w, which can
// overestimate by at most the factor β.
func ExactCommTime(s *comm.Schedule, p Params) float64 {
	b := s.BlocksPerPE()
	c := s.WordsPerPE()
	best := 0.0
	for i := 0; i < s.P; i++ {
		if t := float64(b[i])*p.Tl + float64(c[i])*p.Tw; t > best {
			best = t
		}
	}
	return best
}

// ModelCommTime evaluates the paper's approximate communication phase
// time B_max·T_l + C_max·T_w for a schedule.
func ModelCommTime(s *comm.Schedule, p Params) float64 {
	b := s.BlocksPerPE()
	c := s.WordsPerPE()
	var bmax, cmax int64
	for i := 0; i < s.P; i++ {
		if b[i] > bmax {
			bmax = b[i]
		}
		if c[i] > cmax {
			cmax = c[i]
		}
	}
	return float64(bmax)*p.Tl + float64(cmax)*p.Tw
}

// NetworkConfig configures the discrete-event exchange simulation.
type NetworkConfig struct {
	// Transit is the constant network transit latency added to every
	// block (the paper assumes a constant-latency, infinite-capacity
	// network; this is that constant).
	Transit float64
	// BisectionBytesPerSec, when positive, serializes all blocks whose
	// endpoints lie on opposite sides of the canonical bisection
	// (PE < P/2 versus PE ≥ P/2) through a shared channel with this
	// bandwidth. Zero means infinite bisection capacity.
	BisectionBytesPerSec float64
}

// SimResult reports the outcome of a discrete-event exchange simulation.
type SimResult struct {
	// PETime[i] is the time PE i finished its sends and had processed
	// all its received blocks.
	PETime []float64
	// CommTime is the phase time: max over PEs.
	CommTime float64
	// BisectionBusy is the total time the bisection channel was busy
	// (0 when the channel is infinite).
	BisectionBusy float64
}

// Simulate runs a deterministic discrete-event simulation of one
// exchange phase. Each PE's network interface is a single serial
// resource (matching the paper's accounting, where a PE's B_i and C_i
// count both directions): it first performs its sends back to back,
// each occupying the NI for T_l + words·T_w, then processes incoming
// blocks in arrival order at the same cost, idling when none has
// arrived yet. Block arrival time is the sender-side completion plus
// Transit, plus any queueing delay in the bisection channel.
func Simulate(s *comm.Schedule, p Params, net NetworkConfig) SimResult {
	sp := obs.StartSpan(obs.TrackDriver, "simulate", "machine.simulate")
	defer sp.End()
	type arrival struct {
		at    float64
		words int64
	}
	arrivals := make([][]arrival, s.P)
	sendDone := make([]float64, s.P)

	// Sender side: NIs serialize their sends starting at time zero.
	type crossing struct {
		idx   int // index into arrivals[to]
		to    int32
		end   float64 // sender-side completion
		words int64
	}
	var crossings []crossing
	half := s.P / 2
	for i := 0; i < s.P; i++ {
		busy := 0.0
		for _, m := range s.Out[i] {
			busy += p.Tl + float64(m.Words)*p.Tw
			a := arrival{at: busy + net.Transit, words: m.Words}
			arrivals[m.To] = append(arrivals[m.To], a)
			if net.BisectionBytesPerSec > 0 && (int(m.From) < half) != (int(m.To) < half) {
				crossings = append(crossings, crossing{
					idx:   len(arrivals[m.To]) - 1,
					to:    m.To,
					end:   busy,
					words: m.Words,
				})
			}
		}
		sendDone[i] = busy
	}

	// Bisection channel: serialize crossing blocks in sender-completion
	// order.
	res := SimResult{PETime: make([]float64, s.P)}
	if net.BisectionBytesPerSec > 0 {
		sort.Slice(crossings, func(a, b int) bool {
			if crossings[a].end != crossings[b].end {
				return crossings[a].end < crossings[b].end
			}
			if crossings[a].to != crossings[b].to {
				return crossings[a].to < crossings[b].to
			}
			return crossings[a].idx < crossings[b].idx
		})
		chanFree := 0.0
		for _, c := range crossings {
			start := c.end
			if chanFree > start {
				start = chanFree
			}
			dur := float64(c.words) * 8 / net.BisectionBytesPerSec
			chanFree = start + dur
			res.BisectionBusy += dur
			arrivals[c.to][c.idx].at = chanFree + net.Transit
		}
	}

	// Receiver side: after finishing sends, process arrivals in order.
	for i := 0; i < s.P; i++ {
		as := arrivals[i]
		sort.Slice(as, func(a, b int) bool { return as[a].at < as[b].at })
		busy := sendDone[i]
		for _, a := range as {
			if a.at > busy {
				busy = a.at // idle until the block arrives
			}
			busy += p.Tl + float64(a.words)*p.Tw
		}
		res.PETime[i] = busy
		if busy > res.CommTime {
			res.CommTime = busy
		}
	}
	obs.GetCounter("machine.sim.runs").Add(1)
	obs.GetGauge("machine.sim.comm_seconds").Set(res.CommTime)
	return res
}
