package machine

// Discrete-event replay of the two-level exchange (comm.Aggregate).
// The aggregated exchange runs as three dependent phases — intra-node
// gather (merged with the same-node payload messages), the fused
// leader-to-leader inter-node leg, and the intra-node scatter — each a
// plain schedule replayed by Simulate. The intra-node legs run at the
// node's local parameters (shared memory or an on-node interconnect);
// only the fused leg pays the machine's block latency and, optionally,
// the finite-bisection channel. Phases are barrier-separated (a leader
// cannot fuse before its members have gathered, a member cannot
// scatter before the fused block lands), so the phase times add.

import (
	"fmt"

	"repro/internal/comm"
)

// OnNode returns the default intra-node parameters of the two-level
// exchange: a memcpy-like staging copy between PEs of one node —
// roughly 20× cheaper per block than the T3E's network interface and
// several times its burst bandwidth, consistent with shared-memory
// transfer costs. Tf is the T3E's (unused by the intra-node legs, but
// kept valid for Validate).
func OnNode() Params { return Params{Name: "on-node", Tf: 14e-9, Tl: 1e-6, Tw: 10e-9} }

// AggSimResult reports the three-phase replay of an aggregated
// exchange.
type AggSimResult struct {
	// Gather is the intra-node phase before the fused send: the Local
	// payload messages merged with the Gather copy leg, at local
	// parameters.
	Gather SimResult
	// Internode is the fused leader-to-leader leg at the machine's
	// parameters, through the optional constrained network.
	Internode SimResult
	// Scatter is the intra-node distribution after the fused receive.
	Scatter SimResult
	// CommTime is the total exchange time: the three phase times in
	// sequence.
	CommTime float64
}

// SimulateAggregated replays an aggregated exchange: gather+local at
// the local parameters, the fused inter-node leg at p through net, the
// scatter at the local parameters again. With one PE per node the
// local legs are empty and the fused leg is the flat schedule, so the
// result reduces exactly to Simulate on the flat schedule.
func SimulateAggregated(a *comm.Aggregated, p, local Params, net NetworkConfig) (AggSimResult, error) {
	if err := p.Validate(); err != nil {
		return AggSimResult{}, err
	}
	if local.Tl < 0 || local.Tw < 0 {
		return AggSimResult{}, fmt.Errorf("machine: negative local parameters %+v", local)
	}
	intra, err := comm.Merge(a.Local, a.Gather)
	if err != nil {
		return AggSimResult{}, err
	}
	res := AggSimResult{
		Gather:    Simulate(intra, local, NetworkConfig{}),
		Internode: Simulate(a.Internode, p, net),
		Scatter:   Simulate(a.Scatter, local, NetworkConfig{}),
	}
	res.CommTime = res.Gather.CommTime + res.Internode.CommTime + res.Scatter.CommTime
	return res, nil
}
