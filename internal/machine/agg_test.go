package machine

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
)

func localPreset() Params { return Params{Name: "on-node", Tf: 1e-9, Tl: 0.5e-6, Tw: 5e-9} }

func aggregateFor(t *testing.T, s *comm.Schedule, nodeSize int) *comm.Aggregated {
	t.Helper()
	a, err := comm.Aggregate(s, comm.ContiguousNodes(nodeSize))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestSimulateAggregatedReducesToFlat: with one PE per node the local
// legs are empty and the fused leg is the flat schedule, so the
// three-phase replay must equal the flat simulation bit for bit — on
// random schedules, with and without the bisection channel.
func TestSimulateAggregatedReducesToFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, p := range []int{2, 5, 8, 16} {
		s := mustSchedule(t, randomMatrix(rng, p))
		a := aggregateFor(t, s, 1)
		for _, net := range []NetworkConfig{{}, {Transit: 1e-6}, {BisectionBytesPerSec: 50e6}} {
			flat := Simulate(s, T3E(), net)
			agg, err := SimulateAggregated(a, T3E(), localPreset(), net)
			if err != nil {
				t.Fatal(err)
			}
			if agg.CommTime != flat.CommTime {
				t.Fatalf("p=%d net=%+v: aggregated %g != flat %g",
					p, net, agg.CommTime, flat.CommTime)
			}
			if agg.Gather.CommTime != 0 || agg.Scatter.CommTime != 0 {
				t.Fatalf("p=%d: identity aggregation has local phases %g/%g",
					p, agg.Gather.CommTime, agg.Scatter.CommTime)
			}
		}
	}
}

// TestSimulateAggregatedPhasesAdd: the reported total is exactly the
// sum of the three sequential phase times, and grouping everything
// onto one node leaves no inter-node phase at all.
func TestSimulateAggregatedPhasesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := mustSchedule(t, randomMatrix(rng, 12))
	a := aggregateFor(t, s, 4)
	res, err := SimulateAggregated(a, T3E(), localPreset(), NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Gather.CommTime + res.Internode.CommTime + res.Scatter.CommTime
	if math.Abs(res.CommTime-sum) > 1e-18 {
		t.Fatalf("CommTime %g != phase sum %g", res.CommTime, sum)
	}
	one := aggregateFor(t, s, 12)
	all, err := SimulateAggregated(one, T3E(), localPreset(), NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if all.Internode.CommTime != 0 || all.Scatter.CommTime != 0 {
		t.Fatalf("one-node plan has inter-node %g / scatter %g",
			all.Internode.CommTime, all.Scatter.CommTime)
	}
}

// TestSimulateAggregatedBeatsFlatWhenLatencyBound: the transform's
// reason to exist — on a latency-dominated machine (large T_l, cheap
// local copies) the fused exchange finishes sooner than the flat one.
func TestSimulateAggregatedBeatsFlatWhenLatencyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := mustSchedule(t, randomMatrix(rng, 16))
	a := aggregateFor(t, s, 4)
	// Make blocks expensive and words (and local copies) nearly free.
	p := Params{Name: "latency-bound", Tf: 1e-9, Tl: 100e-6, Tw: 1e-9}
	local := Params{Name: "on-node", Tf: 1e-9, Tl: 0.1e-6, Tw: 0.5e-9}
	flat := Simulate(s, p, NetworkConfig{})
	agg, err := SimulateAggregated(a, p, local, NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.CommTime >= flat.CommTime {
		t.Fatalf("aggregated %g not below flat %g on a latency-bound machine",
			agg.CommTime, flat.CommTime)
	}
}

// TestSimulateAggregatedRejects: invalid machine or local parameters
// are refused.
func TestSimulateAggregatedRejects(t *testing.T) {
	s := mustSchedule(t, [][]int64{{0, 6}, {6, 0}})
	a := aggregateFor(t, s, 2)
	if _, err := SimulateAggregated(a, Params{}, localPreset(), NetworkConfig{}); err == nil {
		t.Error("zero machine parameters accepted")
	}
	if _, err := SimulateAggregated(a, T3E(), Params{Tf: 1e-9, Tl: -1}, NetworkConfig{}); err == nil {
		t.Error("negative local latency accepted")
	}
}
