package machine

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
)

func mustSchedule(t testing.TB, m [][]int64) *comm.Schedule {
	t.Helper()
	s, err := comm.FromMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomMatrix builds a random symmetric message matrix on p PEs.
func randomMatrix(rng *rand.Rand, p int) [][]int64 {
	m := make([][]int64, p)
	for i := range m {
		m[i] = make([]int64, p)
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			if rng.Float64() < 0.4 {
				w := int64(3 * (1 + rng.Intn(200)))
				m[i][j], m[j][i] = w, w
			}
		}
	}
	return m
}

func TestPresets(t *testing.T) {
	for _, p := range Presets() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		got, err := PresetByName(p.Name)
		if err != nil || got != p {
			t.Errorf("PresetByName(%q) = %+v, %v", p.Name, got, err)
		}
	}
	if _, err := PresetByName("nonexistent"); err == nil {
		t.Error("unknown preset accepted")
	}
	// Paper-quoted values.
	if T3E().Tf != 14e-9 || T3E().Tl != 22e-6 || T3E().Tw != 55e-9 {
		t.Errorf("T3E = %+v, want paper values", T3E())
	}
	if Current100().Tf != 10e-9 || Future200().Tf != 5e-9 {
		t.Error("hypothetical machines have wrong Tf")
	}
	bad := Params{Tf: 0}
	if bad.Validate() == nil {
		t.Error("invalid params accepted")
	}
}

func TestModelVersusExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := T3E()
	for trial := 0; trial < 30; trial++ {
		s := mustSchedule(t, randomMatrix(rng, 2+rng.Intn(16)))
		exact := ExactCommTime(s, p)
		model := ModelCommTime(s, p)
		if model < exact-1e-15 {
			t.Fatalf("trial %d: model %g < exact %g", trial, model, exact)
		}
		// The paper proves the overestimate is below a factor of two.
		if exact > 0 && model > 2*exact+1e-15 {
			t.Fatalf("trial %d: model %g > 2×exact %g", trial, model, exact)
		}
	}
}

func TestSimulateMatchesClosedFormWithoutContention(t *testing.T) {
	// Two PEs exchanging one block each: PE0 sends (Tl + w·Tw), then
	// receives PE1's block. With zero transit both NIs finish at
	// exactly 2(Tl + w·Tw) = B_i·Tl + C_i·Tw: the closed form is exact.
	s := mustSchedule(t, [][]int64{{0, 100}, {100, 0}})
	p := Params{Name: "test", Tf: 1e-9, Tl: 1e-6, Tw: 10e-9}
	res := Simulate(s, p, NetworkConfig{})
	exact := ExactCommTime(s, p)
	if math.Abs(res.CommTime-exact) > 1e-15 {
		t.Errorf("sim %g != exact %g", res.CommTime, exact)
	}
	if res.BisectionBusy != 0 {
		t.Error("bisection busy with infinite channel")
	}
}

func TestSimulateNeverBeatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := T3E()
	for trial := 0; trial < 30; trial++ {
		s := mustSchedule(t, randomMatrix(rng, 2+rng.Intn(24)))
		res := Simulate(s, p, NetworkConfig{Transit: 1e-6})
		exact := ExactCommTime(s, p)
		if res.CommTime < exact-1e-12 {
			t.Fatalf("trial %d: sim %g < exact per-PE bound %g", trial, res.CommTime, exact)
		}
		// And the sim should not blow up: the phase is bounded by the
		// sum of everything serialized on one NI plus transit stalls.
		b, c := s.BlocksPerPE(), s.WordsPerPE()
		var btot, ctot int64
		for i := range b {
			btot += b[i]
			ctot += c[i]
		}
		upper := float64(btot)*p.Tl + float64(ctot)*p.Tw + 1e-6*float64(btot+1)
		if res.CommTime > upper {
			t.Fatalf("trial %d: sim %g exceeds serialization bound %g", trial, res.CommTime, upper)
		}
	}
}

func TestSimulatePerPETimes(t *testing.T) {
	s := mustSchedule(t, [][]int64{{0, 30, 0}, {30, 0, 12}, {0, 12, 0}})
	p := Params{Name: "test", Tf: 1e-9, Tl: 1e-6, Tw: 10e-9}
	res := Simulate(s, p, NetworkConfig{})
	if len(res.PETime) != 3 {
		t.Fatalf("PETime len %d", len(res.PETime))
	}
	max := 0.0
	for _, v := range res.PETime {
		if v <= 0 {
			t.Error("non-positive PE time")
		}
		if v > max {
			max = v
		}
	}
	if res.CommTime != max {
		t.Errorf("CommTime %g != max PE time %g", res.CommTime, max)
	}
	// PE1 handles the most blocks and words; it must finish last.
	if !(res.PETime[1] >= res.PETime[0] && res.PETime[1] >= res.PETime[2]) {
		t.Errorf("PE times %v: middle PE should dominate", res.PETime)
	}
}

func TestSimulateBisectionContention(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := mustSchedule(t, randomMatrix(rng, 16))
	p := Future200()
	free := Simulate(s, p, NetworkConfig{}).CommTime
	// A generous bisection channel should barely matter...
	wide := Simulate(s, p, NetworkConfig{BisectionBytesPerSec: 100e9}).CommTime
	if wide > free*1.05 {
		t.Errorf("wide bisection slowed phase: %g vs %g", wide, free)
	}
	// ...a starved one must dominate the phase.
	narrow := Simulate(s, p, NetworkConfig{BisectionBytesPerSec: 1e6})
	if narrow.CommTime < 2*free {
		t.Errorf("narrow bisection did not bottleneck: %g vs %g", narrow.CommTime, free)
	}
	if narrow.BisectionBusy <= 0 {
		t.Error("no bisection busy time recorded")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	m := randomMatrix(rng, 12)
	s1 := mustSchedule(t, m)
	s2 := mustSchedule(t, m)
	p := T3E()
	net := NetworkConfig{Transit: 2e-6, BisectionBytesPerSec: 1e9}
	a := Simulate(s1, p, net)
	b := Simulate(s2, p, net)
	if a.CommTime != b.CommTime || a.BisectionBusy != b.BisectionBusy {
		t.Error("simulation not deterministic")
	}
}

func TestSimulateEmpty(t *testing.T) {
	s := mustSchedule(t, [][]int64{{0}})
	res := Simulate(s, T3E(), NetworkConfig{})
	if res.CommTime != 0 {
		t.Errorf("empty schedule CommTime = %g", res.CommTime)
	}
}
