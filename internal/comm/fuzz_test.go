package comm

import (
	"encoding/binary"
	"testing"
)

// FuzzFromMatrix hardens the schedule builder: an arbitrary message
// matrix — decoded from fuzz bytes as p rows of p little-endian int16
// volumes each (small enough that SplitBlocks stays fast, signed so the
// negative-volume rejection is exercised) — must yield either a schedule that passes Validate with the
// matrix's exact word totals, or an error; never a panic. SplitBlocks
// is driven on every accepted schedule so block splitting inherits the
// same guarantee. Run the fuzzer with `go test -fuzz FuzzFromMatrix
// ./internal/comm`; the seed corpus runs under plain `go test` (and
// `make fuzz-smoke` gives it a few seconds of mutation in CI).
func FuzzFromMatrix(f *testing.F) {
	encode := func(rows [][]int64) []byte {
		var out []byte
		for _, r := range rows {
			for _, w := range r {
				out = binary.LittleEndian.AppendUint16(out, uint16(int16(w)))
			}
		}
		return out
	}
	f.Add(uint8(3), encode(matrix3()))
	f.Add(uint8(2), encode([][]int64{{0, 5}, {7, 0}}))
	f.Add(uint8(2), encode([][]int64{{1, 0}, {0, 0}}))  // self-message
	f.Add(uint8(2), encode([][]int64{{0, -4}, {0, 0}})) // negative volume
	f.Add(uint8(0), []byte{})
	f.Add(uint8(9), []byte{1, 2, 3}) // short data: zero-padded rows

	f.Fuzz(func(t *testing.T, p uint8, data []byte) {
		const maxP = 16
		dim := int(p % (maxP + 1))
		msg := make([][]int64, dim)
		for i := range msg {
			msg[i] = make([]int64, dim)
			for j := range msg[i] {
				off := 2 * (i*dim + j)
				if off+2 <= len(data) {
					msg[i][j] = int64(int16(binary.LittleEndian.Uint16(data[off : off+2])))
				}
			}
		}
		s, err := FromMatrix(msg)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted schedule fails Validate: %v", err)
		}
		// Word totals must match the matrix exactly.
		want := make([]int64, dim)
		for i := range msg {
			for j, w := range msg[i] {
				want[i] += w
				want[j] += w
			}
		}
		got := s.WordsPerPE()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("PE %d words = %d, want %d", i, got[i], want[i])
			}
		}
		// Splitting must preserve totals and never produce oversized or
		// non-positive blocks.
		split, err := s.SplitBlocks(4)
		if err != nil {
			t.Fatalf("SplitBlocks(4) on valid schedule: %v", err)
		}
		for _, msgs := range split.Out {
			for _, m := range msgs {
				if m.Words <= 0 || m.Words > 4 {
					t.Fatalf("block of %d words", m.Words)
				}
			}
		}
		sw := split.WordsPerPE()
		for i := range want {
			if sw[i] != want[i] {
				t.Fatalf("split PE %d words = %d, want %d", i, sw[i], want[i])
			}
		}
	})
}
