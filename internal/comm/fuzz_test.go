package comm

import (
	"encoding/binary"
	"testing"
)

// FuzzFromMatrix hardens the schedule builder: an arbitrary message
// matrix — decoded from fuzz bytes as p rows of p little-endian int16
// volumes each (small enough that SplitBlocks stays fast, signed so the
// negative-volume rejection is exercised) — must yield either a schedule that passes Validate with the
// matrix's exact word totals, or an error; never a panic. SplitBlocks
// is driven on every accepted schedule so block splitting inherits the
// same guarantee. Run the fuzzer with `go test -fuzz FuzzFromMatrix
// ./internal/comm`; the seed corpus runs under plain `go test` (and
// `make fuzz-smoke` gives it a few seconds of mutation in CI).
// FuzzAggregate hardens the two-level transform: any schedule the
// matrix decoder accepts, mapped onto nodes of an arbitrary (fuzzed)
// size, must produce a plan that passes the full Check invariant set —
// leg validity, leader discipline, destination ordering, and exact word
// conservation — and the composition with SplitBlocks must preserve the
// fused per-PE traffic. Run with `go test -fuzz FuzzAggregate
// ./internal/comm`; `make fuzz-smoke` gives it a few seconds in CI.
func FuzzAggregate(f *testing.F) {
	f.Add(uint8(3), uint8(2), []byte{12, 0, 0, 0, 12, 0, 6, 0, 0, 0, 6, 0})
	f.Add(uint8(8), uint8(1), []byte{})
	f.Add(uint8(8), uint8(4), []byte{1, 0, 2, 0, 3, 0, 4, 0})
	f.Add(uint8(16), uint8(3), []byte{9, 0, 9, 0, 9, 0})
	f.Add(uint8(1), uint8(0), []byte{}) // node size 0: rejected mapping

	f.Fuzz(func(t *testing.T, p, nodeSize uint8, data []byte) {
		const maxP = 16
		dim := int(p % (maxP + 1))
		msg := make([][]int64, dim)
		for i := range msg {
			msg[i] = make([]int64, dim)
			for j := range msg[i] {
				off := 2 * (i*dim + j)
				if off+2 <= len(data) {
					msg[i][j] = int64(int16(binary.LittleEndian.Uint16(data[off : off+2])))
				}
			}
		}
		s, err := FromMatrix(msg)
		if err != nil {
			return
		}
		a, err := Aggregate(s, ContiguousNodes(int(nodeSize)))
		if err != nil {
			if nodeSize == 0 || dim == 0 {
				return // rejected mapping or empty schedule: fine
			}
			t.Fatalf("Aggregate(p=%d, nodeSize=%d): %v", dim, nodeSize, err)
		}
		if err := a.Check(s); err != nil {
			t.Fatalf("Check(p=%d, nodeSize=%d): %v", dim, nodeSize, err)
		}
		// Aggregating the split schedule must fuse to the same traffic.
		split, err := s.SplitBlocks(4)
		if err != nil {
			t.Fatalf("SplitBlocks(4) on valid schedule: %v", err)
		}
		aSplit, err := Aggregate(split, ContiguousNodes(int(nodeSize)))
		if err != nil {
			t.Fatalf("Aggregate on split schedule: %v", err)
		}
		if err := aSplit.Check(split); err != nil {
			t.Fatalf("Check on split plan: %v", err)
		}
		c0, b0 := a.InterCB()
		c1, b1 := aSplit.InterCB()
		for i := range c0 {
			if c0[i] != c1[i] || b0[i] != b1[i] {
				t.Fatalf("PE %d fused C/B differ across split inputs: %d/%d vs %d/%d",
					i, c0[i], b0[i], c1[i], b1[i])
			}
		}
	})
}

func FuzzFromMatrix(f *testing.F) {
	encode := func(rows [][]int64) []byte {
		var out []byte
		for _, r := range rows {
			for _, w := range r {
				out = binary.LittleEndian.AppendUint16(out, uint16(int16(w)))
			}
		}
		return out
	}
	f.Add(uint8(3), encode(matrix3()))
	f.Add(uint8(2), encode([][]int64{{0, 5}, {7, 0}}))
	f.Add(uint8(2), encode([][]int64{{1, 0}, {0, 0}}))  // self-message
	f.Add(uint8(2), encode([][]int64{{0, -4}, {0, 0}})) // negative volume
	f.Add(uint8(0), []byte{})
	f.Add(uint8(9), []byte{1, 2, 3}) // short data: zero-padded rows

	f.Fuzz(func(t *testing.T, p uint8, data []byte) {
		const maxP = 16
		dim := int(p % (maxP + 1))
		msg := make([][]int64, dim)
		for i := range msg {
			msg[i] = make([]int64, dim)
			for j := range msg[i] {
				off := 2 * (i*dim + j)
				if off+2 <= len(data) {
					msg[i][j] = int64(int16(binary.LittleEndian.Uint16(data[off : off+2])))
				}
			}
		}
		s, err := FromMatrix(msg)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted schedule fails Validate: %v", err)
		}
		// Word totals must match the matrix exactly.
		want := make([]int64, dim)
		for i := range msg {
			for j, w := range msg[i] {
				want[i] += w
				want[j] += w
			}
		}
		got := s.WordsPerPE()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("PE %d words = %d, want %d", i, got[i], want[i])
			}
		}
		// Splitting must preserve totals and never produce oversized or
		// non-positive blocks.
		split, err := s.SplitBlocks(4)
		if err != nil {
			t.Fatalf("SplitBlocks(4) on valid schedule: %v", err)
		}
		for _, msgs := range split.Out {
			for _, m := range msgs {
				if m.Words <= 0 || m.Words > 4 {
					t.Fatalf("block of %d words", m.Words)
				}
			}
		}
		sw := split.WordsPerPE()
		for i := range want {
			if sw[i] != want[i] {
				t.Fatalf("split PE %d words = %d, want %d", i, sw[i], want[i])
			}
		}
	})
}
