package comm

// This file implements node-aware two-level message aggregation for the
// SMVP exchange. The paper's hard conclusion is that block latency, not
// bandwidth, limits the exchange (Eq. 2, Figures 8-11): every block a
// PE sends or receives costs T_l, so the cheapest exchange is the one
// with the fewest blocks. On clustered machines — several PEs per node,
// expensive inter-node blocks, cheap intra-node copies — the modern
// answer (Bienz et al., "Improving Performance Models for Irregular
// Point-to-Point Communication") is hierarchical aggregation: all
// messages from PEs on node A to PEs on node B travel as ONE fused
// inter-node block between the two node leaders, at the price of extra
// intra-node copy legs that gather the payload into the leader's
// staging buffer and scatter it back out on the far side. Aggregate
// performs that transform on a flat schedule; the four resulting legs
// are themselves ordinary Schedules, so every simulator and model in
// the repository can replay them.

import (
	"fmt"
	"sort"
)

// Aggregated is a two-level exchange plan derived from a flat schedule:
// the same payload, reorganized into four legs that execute in phase
// order Gather → Internode → Scatter, with Local free to proceed
// alongside the gather (it never leaves a node).
//
// Word accounting: Local plus Internode carry exactly the flat
// schedule's payload (word conservation); Gather and Scatter are the
// extra copied words the aggregation spends to buy fewer inter-node
// blocks. All four legs have deterministic ordering: every Out list is
// sorted by destination (ties broken by the construction scan order,
// which is itself deterministic).
type Aggregated struct {
	P int
	// NumNodes is 1 + the largest node id NodeOf maps to.
	NumNodes int
	// NodeOf[pe] is the node housing the PE.
	NodeOf []int32
	// Leader[n] is the lowest-numbered PE on node n, or -1 for a node
	// with no PEs.
	Leader []int32

	// Local holds the same-node messages of the flat schedule,
	// unchanged: they never cross a node boundary, so aggregation
	// leaves them alone.
	Local *Schedule
	// Gather holds the intra-node legs of the send side: each
	// non-leader PE forwards the words it owes each remote node to its
	// own node leader, one block per (PE, destination node) pair.
	// Leaders contribute their payload in place — no gather leg.
	Gather *Schedule
	// Internode holds the fused blocks: one leader-to-leader block per
	// ordered node pair with traffic, carrying the pair's entire
	// payload.
	Internode *Schedule
	// Scatter holds the intra-node legs of the receive side: the
	// destination node's leader forwards each non-leader PE its share
	// of every fused block, one block per (destination PE, source node)
	// pair. Payload addressed to the leader itself needs no scatter leg.
	Scatter *Schedule
}

// ContiguousNodes maps PEs onto nodes of the given size in id order
// (PEs 0..size-1 on node 0, and so on) — the layout of a batch
// scheduler placing ranks densely on a cluster. size must be positive;
// Aggregate rejects the mapping otherwise.
func ContiguousNodes(size int) func(pe int32) int32 {
	return func(pe int32) int32 {
		if size <= 0 {
			return -1 // rejected by Aggregate's validation
		}
		return pe / int32(size)
	}
}

// Aggregate transforms a flat schedule into the two-level plan induced
// by the PE→node mapping. nodeOf must map every PE of s to a node id in
// [0, P) (dense ids; there can be no more nodes than PEs). The input
// schedule must be valid and is not modified.
func Aggregate(s *Schedule, nodeOf func(pe int32) int32) (*Aggregated, error) {
	if s == nil {
		return nil, fmt.Errorf("comm: Aggregate needs a schedule")
	}
	if nodeOf == nil {
		return nil, fmt.Errorf("comm: Aggregate needs a node mapping")
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("comm: Aggregate on invalid schedule: %w", err)
	}
	a := &Aggregated{
		P:      s.P,
		NodeOf: make([]int32, s.P),
	}
	for pe := 0; pe < s.P; pe++ {
		n := nodeOf(int32(pe))
		if n < 0 || int(n) >= s.P {
			return nil, fmt.Errorf("comm: PE %d mapped to node %d, want [0,%d)", pe, n, s.P)
		}
		a.NodeOf[pe] = n
		if int(n)+1 > a.NumNodes {
			a.NumNodes = int(n) + 1
		}
	}
	a.Leader = make([]int32, a.NumNodes)
	for n := range a.Leader {
		a.Leader[n] = -1
	}
	for pe := 0; pe < s.P; pe++ { // ascending: leader = lowest PE on the node
		if n := a.NodeOf[pe]; a.Leader[n] == -1 {
			a.Leader[n] = int32(pe)
		}
	}

	a.Local = &Schedule{P: s.P, Out: make([][]Message, s.P)}
	a.Gather = &Schedule{P: s.P, Out: make([][]Message, s.P)}
	a.Internode = &Schedule{P: s.P, Out: make([][]Message, s.P)}
	a.Scatter = &Schedule{P: s.P, Out: make([][]Message, s.P)}

	// Volume accumulators, keyed so the emission loops below can sort
	// deterministically: fused inter-node payload per ordered node
	// pair, gather words per (sending PE, destination node), scatter
	// words per (destination PE, source node).
	type key struct{ a, b int32 }
	interVol := make(map[key]int64)
	gatherVol := make(map[key]int64)
	scatterVol := make(map[key]int64)
	for i := range s.Out {
		for _, m := range s.Out[i] {
			na, nb := a.NodeOf[m.From], a.NodeOf[m.To]
			if na == nb {
				a.Local.Out[i] = append(a.Local.Out[i], m)
				continue
			}
			interVol[key{na, nb}] += m.Words
			if m.From != a.Leader[na] {
				gatherVol[key{m.From, nb}] += m.Words
			}
			if m.To != a.Leader[nb] {
				scatterVol[key{m.To, na}] += m.Words
			}
		}
	}

	emit := func(vol map[key]int64, place func(k key, w int64)) {
		keys := make([]key, 0, len(vol))
		for k := range vol {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(x, y int) bool {
			if keys[x].a != keys[y].a {
				return keys[x].a < keys[y].a
			}
			return keys[x].b < keys[y].b
		})
		for _, k := range keys {
			place(k, vol[k])
		}
	}
	// Gather: (pe, destNode) ascending ⇒ per-PE lists ordered by
	// destination node; every block goes to the PE's own leader.
	emit(gatherVol, func(k key, w int64) {
		ldr := a.Leader[a.NodeOf[k.a]]
		a.Gather.Out[k.a] = append(a.Gather.Out[k.a], Message{From: k.a, To: ldr, Words: w})
	})
	// Internode: (srcNode, dstNode) ascending ⇒ each leader's list
	// ordered by destination leader (leader order follows node order
	// only coincidentally, so re-sort per sender below).
	emit(interVol, func(k key, w int64) {
		from, to := a.Leader[k.a], a.Leader[k.b]
		a.Internode.Out[from] = append(a.Internode.Out[from], Message{From: from, To: to, Words: w})
	})
	// Scatter: (destPE, srcNode) ascending ⇒ each leader's list ordered
	// by destination PE, ties by source node.
	emit(scatterVol, func(k key, w int64) {
		ldr := a.Leader[a.NodeOf[k.a]]
		a.Scatter.Out[ldr] = append(a.Scatter.Out[ldr], Message{From: ldr, To: k.a, Words: w})
	})
	for pe := 0; pe < s.P; pe++ {
		out := a.Internode.Out[pe]
		sort.SliceStable(out, func(x, y int) bool { return out[x].To < out[y].To })
	}
	return a, nil
}

// PayloadWords returns the end-to-end payload of the plan: the words of
// the Local and Internode legs, which must equal the flat schedule's
// total directed volume.
func (a *Aggregated) PayloadWords() int64 {
	return totalWords(a.Local) + totalWords(a.Internode)
}

// CopiedWords returns the extra words the aggregation copies through
// leader staging buffers: the Gather plus Scatter leg volumes. This is
// the bandwidth price paid for the reduction in inter-node blocks.
func (a *Aggregated) CopiedWords() int64 {
	return totalWords(a.Gather) + totalWords(a.Scatter)
}

// InterBlocksPerPE returns, for each PE, the number of inter-node
// blocks it sends plus receives — the aggregated analogue of the
// paper's B_i, counting only the blocks that pay the expensive
// inter-node latency.
func (a *Aggregated) InterBlocksPerPE() []int64 { return a.Internode.BlocksPerPE() }

// InterBmax returns the maximum over PEs of inter-node blocks sent plus
// received: the aggregated B_max that replaces the flat B_max in the
// extended Equation (2) (see model.AchievedTcAggregated).
func (a *Aggregated) InterBmax() int64 {
	var m int64
	for _, b := range a.InterBlocksPerPE() {
		if b > m {
			m = b
		}
	}
	return m
}

// InterCB returns the per-PE inter-node word and block counts
// (sent+received), the vectors the β error bound needs under
// aggregation (model.BetaOf).
func (a *Aggregated) InterCB() (c, b []int64) {
	return a.Internode.WordsPerPE(), a.Internode.BlocksPerPE()
}

// LocalCB returns the per-PE intra-node word and block counts
// (sent+received) across the Local, Gather, and Scatter legs — the
// cheap on-node traffic of the plan.
func (a *Aggregated) LocalCB() (c, b []int64) {
	c = make([]int64, a.P)
	b = make([]int64, a.P)
	for _, leg := range []*Schedule{a.Local, a.Gather, a.Scatter} {
		lc, lb := leg.WordsPerPE(), leg.BlocksPerPE()
		for i := 0; i < a.P; i++ {
			c[i] += lc[i]
			b[i] += lb[i]
		}
	}
	return c, b
}

// InternodeByNode reprojects the fused leg onto node ids: a schedule
// with one "PE" per node, message (a→b) carrying the fused payload of
// node pair (a,b). This is what replays over a torus whose vertices are
// nodes rather than PEs (network.SimulateAggregated).
func (a *Aggregated) InternodeByNode() *Schedule {
	s := &Schedule{P: a.NumNodes, Out: make([][]Message, a.NumNodes)}
	for pe := range a.Internode.Out {
		for _, m := range a.Internode.Out[pe] {
			na, nb := a.NodeOf[m.From], a.NodeOf[m.To]
			s.Out[na] = append(s.Out[na], Message{From: na, To: nb, Words: m.Words})
		}
	}
	for n := range s.Out {
		out := s.Out[n]
		sort.SliceStable(out, func(x, y int) bool { return out[x].To < out[y].To })
	}
	return s
}

// Check verifies the plan against the flat schedule it was derived
// from: leg validity, leader discipline, deterministic ordering, and
// exact word conservation (payload equality overall, per node pair on
// the fused leg, and per PE on the gather/scatter legs). Tests and the
// fuzz harness call it after every Aggregate.
func (a *Aggregated) Check(flat *Schedule) error {
	if flat == nil || flat.P != a.P {
		return fmt.Errorf("comm: Check against mismatched schedule")
	}
	for name, leg := range map[string]*Schedule{
		"local": a.Local, "gather": a.Gather, "internode": a.Internode, "scatter": a.Scatter,
	} {
		if err := leg.Validate(); err != nil {
			return fmt.Errorf("comm: %s leg invalid: %w", name, err)
		}
		for pe := range leg.Out {
			for i := 1; i < len(leg.Out[pe]); i++ {
				if leg.Out[pe][i].To < leg.Out[pe][i-1].To {
					return fmt.Errorf("comm: %s leg of PE %d not ordered by destination", name, pe)
				}
			}
		}
	}

	// Re-derive the flat traffic split and compare.
	type key struct{ a, b int32 }
	wantInter := make(map[key]int64)
	wantGatherPE := make([]int64, a.P)  // inter-node words sent by non-leader PEs
	wantScatterPE := make([]int64, a.P) // inter-node words received by non-leader PEs
	var wantLocal, flatTotal int64
	for i := range flat.Out {
		for _, m := range flat.Out[i] {
			flatTotal += m.Words
			na, nb := a.NodeOf[m.From], a.NodeOf[m.To]
			if na == nb {
				wantLocal += m.Words
				continue
			}
			wantInter[key{na, nb}] += m.Words
			if m.From != a.Leader[na] {
				wantGatherPE[m.From] += m.Words
			}
			if m.To != a.Leader[nb] {
				wantScatterPE[m.To] += m.Words
			}
		}
	}
	if got := a.PayloadWords(); got != flatTotal {
		return fmt.Errorf("comm: payload %d words, flat schedule has %d", got, flatTotal)
	}
	if got := totalWords(a.Local); got != wantLocal {
		return fmt.Errorf("comm: local leg carries %d words, want %d", got, wantLocal)
	}
	gotInter := make(map[key]int64)
	for pe := range a.Internode.Out {
		for _, m := range a.Internode.Out[pe] {
			na, nb := a.NodeOf[m.From], a.NodeOf[m.To]
			if m.From != a.Leader[na] || m.To != a.Leader[nb] {
				return fmt.Errorf("comm: fused block %d→%d not leader-to-leader", m.From, m.To)
			}
			k := key{na, nb}
			if _, dup := gotInter[k]; dup {
				return fmt.Errorf("comm: node pair (%d,%d) fused into more than one block", na, nb)
			}
			gotInter[k] = m.Words
		}
	}
	if len(gotInter) != len(wantInter) {
		return fmt.Errorf("comm: %d fused blocks, want %d", len(gotInter), len(wantInter))
	}
	for k, w := range wantInter {
		if gotInter[k] != w {
			return fmt.Errorf("comm: node pair (%d,%d) fused %d words, want %d", k.a, k.b, gotInter[k], w)
		}
	}
	for pe := range a.Gather.Out {
		var sent int64
		for _, m := range a.Gather.Out[pe] {
			if m.To != a.Leader[a.NodeOf[pe]] {
				return fmt.Errorf("comm: gather block of PE %d goes to %d, not its leader", pe, m.To)
			}
			sent += m.Words
		}
		if sent != wantGatherPE[pe] {
			return fmt.Errorf("comm: PE %d gathers %d words, want %d", pe, sent, wantGatherPE[pe])
		}
	}
	gotScatter := make([]int64, a.P)
	for pe := range a.Scatter.Out {
		for _, m := range a.Scatter.Out[pe] {
			if m.From != a.Leader[a.NodeOf[m.To]] {
				return fmt.Errorf("comm: scatter block to PE %d comes from %d, not its leader", m.To, m.From)
			}
			gotScatter[m.To] += m.Words
		}
	}
	for pe := range gotScatter {
		if gotScatter[pe] != wantScatterPE[pe] {
			return fmt.Errorf("comm: PE %d scattered %d words, want %d", pe, gotScatter[pe], wantScatterPE[pe])
		}
	}
	return nil
}

// Merge returns a schedule carrying both inputs' messages (same P),
// each per-PE list re-sorted by destination. The phase simulators use
// it to run legs that may proceed together (e.g. Local alongside
// Gather) as one schedule.
func Merge(x, y *Schedule) (*Schedule, error) {
	if x.P != y.P {
		return nil, fmt.Errorf("comm: Merge of schedules with %d and %d PEs", x.P, y.P)
	}
	out := &Schedule{P: x.P, Out: make([][]Message, x.P)}
	for i := 0; i < x.P; i++ {
		out.Out[i] = append(out.Out[i], x.Out[i]...)
		out.Out[i] = append(out.Out[i], y.Out[i]...)
		msgs := out.Out[i]
		sort.SliceStable(msgs, func(a, b int) bool { return msgs[a].To < msgs[b].To })
	}
	return out, nil
}

func totalWords(s *Schedule) int64 {
	var w int64
	for _, msgs := range s.Out {
		for _, m := range msgs {
			w += m.Words
		}
	}
	return w
}
