package comm

import (
	"testing"
)

// matrix3 is a 3-PE example: PE0<->PE1 12 words, PE1<->PE2 6 words.
func matrix3() [][]int64 {
	return [][]int64{
		{0, 12, 0},
		{12, 0, 6},
		{0, 6, 0},
	}
}

func TestFromMatrix(t *testing.T) {
	s, err := FromMatrix(matrix3())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.TotalBlocks() != 4 {
		t.Errorf("TotalBlocks = %d, want 4", s.TotalBlocks())
	}
	c := s.WordsPerPE()
	if c[0] != 24 || c[1] != 36 || c[2] != 12 {
		t.Errorf("WordsPerPE = %v", c)
	}
	b := s.BlocksPerPE()
	if b[0] != 2 || b[1] != 4 || b[2] != 2 {
		t.Errorf("BlocksPerPE = %v", b)
	}
}

func TestFromMatrixErrors(t *testing.T) {
	if _, err := FromMatrix([][]int64{{0, 1}, {1, 0, 0}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := FromMatrix([][]int64{{0, -1}, {1, 0}}); err == nil {
		t.Error("negative volume accepted")
	}
	if _, err := FromMatrix([][]int64{{3, 1}, {1, 0}}); err == nil {
		t.Error("self-message accepted")
	}
}

func TestSplitBlocks(t *testing.T) {
	s, err := FromMatrix(matrix3())
	if err != nil {
		t.Fatal(err)
	}
	split, err := s.SplitBlocks(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := split.Validate(); err != nil {
		t.Fatal(err)
	}
	// 12 words -> 3 blocks of 4; 6 words -> 4+2.
	if got := split.TotalBlocks(); got != 3+3+2+2 {
		t.Errorf("TotalBlocks = %d, want 10", got)
	}
	// Word totals unchanged by splitting.
	c0, c1 := s.WordsPerPE(), split.WordsPerPE()
	for i := range c0 {
		if c0[i] != c1[i] {
			t.Errorf("PE %d words changed: %d -> %d", i, c0[i], c1[i])
		}
	}
	// Every block at most 4 words, all positive.
	for _, msgs := range split.Out {
		for _, m := range msgs {
			if m.Words <= 0 || m.Words > 4 {
				t.Errorf("block of %d words", m.Words)
			}
		}
	}
	// Uneven tail: last block of the 6-word message is 2 words.
	var sizes []int64
	for _, m := range split.Out[1] {
		if m.To == 2 {
			sizes = append(sizes, m.Words)
		}
	}
	if len(sizes) != 2 || sizes[0] != 4 || sizes[1] != 2 {
		t.Errorf("6-word message split = %v, want [4 2]", sizes)
	}
}

func TestSplitBlocksRejectsNonPositive(t *testing.T) {
	s, _ := FromMatrix(matrix3())
	for _, w := range []int64{0, -1} {
		if sp, err := s.SplitBlocks(w); err == nil || sp != nil {
			t.Errorf("SplitBlocks(%d) = %v, %v; want nil, error", w, sp, err)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s, _ := FromMatrix(matrix3())
	s.Out[0][0].From = 2
	if err := s.Validate(); err == nil {
		t.Error("wrong From accepted")
	}
	s, _ = FromMatrix(matrix3())
	s.Out[0][0].To = 99
	if err := s.Validate(); err == nil {
		t.Error("out-of-range To accepted")
	}
	s, _ = FromMatrix(matrix3())
	s.Out[0][0].Words = 0
	if err := s.Validate(); err == nil {
		t.Error("zero-word block accepted")
	}
	s, _ = FromMatrix(matrix3())
	s.Out[0][0].To = 0
	if err := s.Validate(); err == nil {
		t.Error("self-message accepted")
	}
}

func TestEmptySchedule(t *testing.T) {
	s, err := FromMatrix([][]int64{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalBlocks() != 0 {
		t.Error("single PE has blocks")
	}
	if c := s.WordsPerPE(); c[0] != 0 {
		t.Error("single PE has words")
	}
}
