// Package comm turns a partition's PE-to-PE message matrix into explicit
// communication schedules: per-PE ordered lists of block transfers. Two
// aggregation regimes matter to the paper: maximal blocks (each PE sends
// at most one block to each neighbor, as on a message-passing machine)
// and fixed-size blocks (messages split into cache-line-sized transfer
// units, as on a fine-grained shared-memory machine).
package comm

import (
	"fmt"
	"sort"
)

// Message is one block transfer of Words 64-bit words from PE From to
// PE To.
type Message struct {
	From, To int32
	Words    int64
}

// Schedule lists, for each PE, the blocks it sends during one exchange
// phase, ordered by destination (then by split order for fixed-size
// blocks). A schedule is what the machine simulator executes and what
// the real goroutine runtime follows.
type Schedule struct {
	P   int
	Out [][]Message
}

// FromMatrix builds a maximal-block schedule from a message matrix:
// msg[i][j] words from PE i to PE j become one block. The matrix must be
// square with a zero diagonal and non-negative entries.
func FromMatrix(msg [][]int64) (*Schedule, error) {
	p := len(msg)
	s := &Schedule{P: p, Out: make([][]Message, p)}
	for i := range msg {
		if len(msg[i]) != p {
			return nil, fmt.Errorf("comm: row %d has %d entries, want %d", i, len(msg[i]), p)
		}
		for j, w := range msg[i] {
			switch {
			case w < 0:
				return nil, fmt.Errorf("comm: negative volume %d at (%d,%d)", w, i, j)
			case i == j && w != 0:
				return nil, fmt.Errorf("comm: self-message of %d words on PE %d", w, i)
			case w > 0:
				s.Out[i] = append(s.Out[i], Message{From: int32(i), To: int32(j), Words: w})
			}
		}
		sort.Slice(s.Out[i], func(a, b int) bool { return s.Out[i][a].To < s.Out[i][b].To })
	}
	return s, nil
}

// SplitBlocks returns a new schedule in which every message is split
// into blocks of at most w words (the fixed-size transfer-unit regime;
// the final block of a message may be short). A non-positive w is
// rejected with an error.
func (s *Schedule) SplitBlocks(w int64) (*Schedule, error) {
	if w <= 0 {
		return nil, fmt.Errorf("comm: block size must be positive, got %d", w)
	}
	out := &Schedule{P: s.P, Out: make([][]Message, s.P)}
	for i, msgs := range s.Out {
		for _, m := range msgs {
			for rem := m.Words; rem > 0; rem -= w {
				blk := m
				if rem < w {
					blk.Words = rem
				} else {
					blk.Words = w
				}
				out.Out[i] = append(out.Out[i], blk)
			}
		}
	}
	return out, nil
}

// WordsPerPE returns, for each PE, the number of words it sends plus the
// number it receives (the paper's C_i).
func (s *Schedule) WordsPerPE() []int64 {
	c := make([]int64, s.P)
	for _, msgs := range s.Out {
		for _, m := range msgs {
			c[m.From] += m.Words
			c[m.To] += m.Words
		}
	}
	return c
}

// BlocksPerPE returns, for each PE, the number of blocks it sends plus
// the number it receives (the paper's B_i).
func (s *Schedule) BlocksPerPE() []int64 {
	b := make([]int64, s.P)
	for _, msgs := range s.Out {
		for _, m := range msgs {
			b[m.From]++
			b[m.To]++
		}
	}
	return b
}

// TotalBlocks returns the total number of blocks in the schedule.
func (s *Schedule) TotalBlocks() int {
	n := 0
	for _, msgs := range s.Out {
		n += len(msgs)
	}
	return n
}

// Validate checks internal consistency: in-range PE ids, positive
// volumes, no self-messages.
func (s *Schedule) Validate() error {
	for i, msgs := range s.Out {
		for _, m := range msgs {
			if int(m.From) != i {
				return fmt.Errorf("comm: message from %d stored under PE %d", m.From, i)
			}
			if m.To < 0 || int(m.To) >= s.P {
				return fmt.Errorf("comm: message to out-of-range PE %d", m.To)
			}
			if m.To == m.From {
				return fmt.Errorf("comm: self-message on PE %d", m.From)
			}
			if m.Words <= 0 {
				return fmt.Errorf("comm: non-positive block of %d words", m.Words)
			}
		}
	}
	return nil
}
