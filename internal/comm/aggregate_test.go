package comm

import (
	"math/rand"
	"testing"
)

// randMatrix builds a symmetric random message matrix on p PEs with the
// given traffic density, deterministic in seed. Symmetry matches the
// real exchange (every message has an equal reply), but nothing in
// Aggregate requires it — asymmetric cases ride through the fuzzer.
func randMatrix(rng *rand.Rand, p int, density float64, maxWords int64) [][]int64 {
	msg := make([][]int64, p)
	for i := range msg {
		msg[i] = make([]int64, p)
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			if rng.Float64() < density {
				w := 1 + rng.Int63n(maxWords)
				msg[i][j] = w
				msg[j][i] = w
			}
		}
	}
	return msg
}

func mustSchedule(t *testing.T, msg [][]int64) *Schedule {
	t.Helper()
	s, err := FromMatrix(msg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAggregateSmall(t *testing.T) {
	// 4 PEs on 2 nodes of 2: PE0,1 on node 0; PE2,3 on node 1.
	msg := [][]int64{
		{0, 5, 7, 2}, // 0→1 local; 0→2, 0→3 inter
		{5, 0, 0, 3}, // 1→0 local; 1→3 inter
		{7, 0, 0, 4}, // 2→0 inter; 2→3 local
		{2, 3, 4, 0},
	}
	s := mustSchedule(t, msg)
	a, err := Aggregate(s, ContiguousNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Check(s); err != nil {
		t.Fatal(err)
	}
	if a.NumNodes != 2 || a.Leader[0] != 0 || a.Leader[1] != 2 {
		t.Fatalf("nodes/leaders = %d/%v", a.NumNodes, a.Leader)
	}
	// Fused payloads: node0→node1 = 2+3+7... careful: inter messages
	// from node 0 to node 1 are 0→2 (7), 0→3 (2), 1→3 (3) = 12 words,
	// and symmetrically 12 back.
	inter := a.Internode
	if got := inter.Out[0][0].Words; got != 12 {
		t.Errorf("fused 0→2 block = %d words, want 12", got)
	}
	if got, want := inter.TotalBlocks(), 2; got != want {
		t.Errorf("fused blocks = %d, want %d", got, want)
	}
	// Gather: PE1 owes node 1 exactly 3 words; PE0 is leader (no leg).
	if n := len(a.Gather.Out[0]); n != 0 {
		t.Errorf("leader PE0 has %d gather legs", n)
	}
	if w := a.Gather.Out[1][0].Words; w != 3 {
		t.Errorf("PE1 gather leg = %d words, want 3", w)
	}
	// Scatter on node 1: PE3 receives 2+3=5 words via its leader PE2.
	var toPE3 int64
	for _, m := range a.Scatter.Out[2] {
		if m.To == 3 {
			toPE3 += m.Words
		}
	}
	if toPE3 != 5 {
		t.Errorf("PE3 scattered %d words, want 5", toPE3)
	}
	// Block economics: the flat schedule's 6 inter-node blocks fuse
	// into 2 (one per ordered node pair).
	if got := a.InterBmax(); got >= s.BlocksPerPE()[0] {
		t.Errorf("InterBmax = %d, want below flat B for PE0 (%d)", got, s.BlocksPerPE()[0])
	}
}

// TestAggregateCopiedWords pins the copy accounting on the 4-PE
// example: gather legs carry every inter-node word sent by a
// non-leader, scatter legs every inter-node word received by one.
func TestAggregateCopiedWords(t *testing.T) {
	msg := [][]int64{
		{0, 5, 7, 2},
		{5, 0, 0, 3},
		{7, 0, 0, 4},
		{2, 3, 4, 0},
	}
	s := mustSchedule(t, msg)
	a, err := Aggregate(s, ContiguousNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	// Non-leader inter-node sends: PE1→3 (3), PE3→0 (2), PE3→1 (3) = 8.
	// Non-leader inter-node receives: PE1←3 (3), PE3←0 (2), PE3←1 (3) = 8.
	if got := a.CopiedWords(); got != 16 {
		t.Errorf("CopiedWords = %d, want 16", got)
	}
	// Payload is conserved exactly.
	var flat int64
	for _, row := range msg {
		for _, w := range row {
			flat += w
		}
	}
	if got := a.PayloadWords(); got != flat {
		t.Errorf("PayloadWords = %d, want %d", got, flat)
	}
}

// TestAggregateIdentityNodes: with one PE per node the transform is the
// identity on traffic — no local, gather, or scatter legs, and the
// fused leg IS the flat schedule.
func TestAggregateIdentityNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := mustSchedule(t, randMatrix(rng, 9, 0.5, 40))
	a, err := Aggregate(s, ContiguousNodes(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Check(s); err != nil {
		t.Fatal(err)
	}
	if a.CopiedWords() != 0 || totalWords(a.Local) != 0 {
		t.Fatalf("identity mapping produced copies (%d) or local traffic (%d)",
			a.CopiedWords(), totalWords(a.Local))
	}
	if got, want := a.Internode.TotalBlocks(), s.TotalBlocks(); got != want {
		t.Errorf("fused blocks = %d, want flat %d", got, want)
	}
	gc, gb := a.Internode.WordsPerPE(), a.Internode.BlocksPerPE()
	fc, fb := s.WordsPerPE(), s.BlocksPerPE()
	for i := range fc {
		if gc[i] != fc[i] || gb[i] != fb[i] {
			t.Fatalf("PE %d inter C/B = %d/%d, want flat %d/%d", i, gc[i], gb[i], fc[i], fb[i])
		}
	}
}

// TestAggregateOneNode: everything on one node means no inter-node
// traffic at all — the whole schedule becomes the Local leg.
func TestAggregateOneNode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := mustSchedule(t, randMatrix(rng, 6, 0.6, 25))
	a, err := Aggregate(s, ContiguousNodes(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Check(s); err != nil {
		t.Fatal(err)
	}
	if a.Internode.TotalBlocks() != 0 || a.CopiedWords() != 0 {
		t.Fatalf("single node still has %d fused blocks, %d copied words",
			a.Internode.TotalBlocks(), a.CopiedWords())
	}
	lc := a.Local.WordsPerPE()
	fc := s.WordsPerPE()
	for i := range fc {
		if lc[i] != fc[i] {
			t.Fatalf("PE %d local words = %d, want %d", i, lc[i], fc[i])
		}
	}
}

// TestAggregateInvariantsRandom sweeps random matrices across PE counts
// and node sizes, asserting via Check the full invariant set: leg
// validity, zero self-messages, per-pair (destination-sorted) ordering,
// leader discipline, and exact word conservation.
func TestAggregateInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, p := range []int{1, 2, 3, 5, 8, 16, 33} {
		for _, nodeSize := range []int{1, 2, 3, 4, 8} {
			for trial := 0; trial < 4; trial++ {
				s := mustSchedule(t, randMatrix(rng, p, 0.4, 100))
				a, err := Aggregate(s, ContiguousNodes(nodeSize))
				if err != nil {
					t.Fatalf("p=%d nodeSize=%d: %v", p, nodeSize, err)
				}
				if err := a.Check(s); err != nil {
					t.Fatalf("p=%d nodeSize=%d: %v", p, nodeSize, err)
				}
				// Fewer (or equal) inter-node blocks than the flat
				// schedule's node-crossing block count.
				crossing := 0
				for i := range s.Out {
					for _, m := range s.Out[i] {
						if a.NodeOf[m.From] != a.NodeOf[m.To] {
							crossing++
						}
					}
				}
				if got := a.Internode.TotalBlocks(); got > crossing {
					t.Fatalf("p=%d nodeSize=%d: %d fused blocks from %d crossing messages",
						p, nodeSize, got, crossing)
				}
			}
		}
	}
}

// TestAggregateSplitComposition drives the two transforms together:
// splitting any leg of an aggregated plan preserves word totals and
// block-size bounds, and aggregating an already-split schedule fuses
// its fragments back into one block per node pair.
func TestAggregateSplitComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		s := mustSchedule(t, randMatrix(rng, 12, 0.5, 64))

		// Aggregate ∘ SplitBlocks: fragments of one message fuse back
		// into the same per-node-pair payload, so Check against the
		// split schedule (same traffic, more blocks) must pass.
		split, err := s.SplitBlocks(4)
		if err != nil {
			t.Fatal(err)
		}
		aSplit, err := Aggregate(split, ContiguousNodes(4))
		if err != nil {
			t.Fatal(err)
		}
		if err := aSplit.Check(split); err != nil {
			t.Fatalf("Aggregate∘SplitBlocks: %v", err)
		}
		// The fused leg is independent of the input's block structure.
		aFlat, err := Aggregate(s, ContiguousNodes(4))
		if err != nil {
			t.Fatal(err)
		}
		ic, ib := aFlat.InterCB()
		sc, sb := aSplit.InterCB()
		for i := range ic {
			if ic[i] != sc[i] || ib[i] != sb[i] {
				t.Fatalf("PE %d fused C/B differ across split inputs: %d/%d vs %d/%d",
					i, ic[i], ib[i], sc[i], sb[i])
			}
		}

		// SplitBlocks ∘ Aggregate: re-splitting the fused leg conserves
		// words and respects the block bound.
		resplit, err := aFlat.Internode.SplitBlocks(8)
		if err != nil {
			t.Fatal(err)
		}
		if err := resplit.Validate(); err != nil {
			t.Fatal(err)
		}
		rc := resplit.WordsPerPE()
		fc := aFlat.Internode.WordsPerPE()
		for i := range fc {
			if rc[i] != fc[i] {
				t.Fatalf("PE %d words changed by re-split: %d vs %d", i, rc[i], fc[i])
			}
		}
		for _, msgs := range resplit.Out {
			for _, m := range msgs {
				if m.Words <= 0 || m.Words > 8 {
					t.Fatalf("re-split block of %d words", m.Words)
				}
			}
		}
	}
}

// TestAggregateRejects covers the validation paths.
func TestAggregateRejects(t *testing.T) {
	s := mustSchedule(t, matrix3())
	if _, err := Aggregate(nil, ContiguousNodes(1)); err == nil {
		t.Error("nil schedule accepted")
	}
	if _, err := Aggregate(s, nil); err == nil {
		t.Error("nil node mapping accepted")
	}
	if _, err := Aggregate(s, ContiguousNodes(0)); err == nil {
		t.Error("non-positive node size accepted")
	}
	if _, err := Aggregate(s, func(pe int32) int32 { return pe + 100 }); err == nil {
		t.Error("out-of-range node ids accepted")
	}
	bad := mustSchedule(t, matrix3())
	bad.Out[0][0].Words = -3
	if _, err := Aggregate(bad, ContiguousNodes(2)); err == nil {
		t.Error("invalid schedule accepted")
	}
}

// TestInternodeByNode checks the node-id reprojection the torus replay
// uses: per-node totals equal the fused leg's, with no self-messages.
func TestInternodeByNode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := mustSchedule(t, randMatrix(rng, 10, 0.5, 30))
	a, err := Aggregate(s, ContiguousNodes(3))
	if err != nil {
		t.Fatal(err)
	}
	byNode := a.InternodeByNode()
	if byNode.P != a.NumNodes {
		t.Fatalf("node schedule has %d PEs, want %d nodes", byNode.P, a.NumNodes)
	}
	if err := byNode.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := byNode.TotalBlocks(), a.Internode.TotalBlocks(); got != want {
		t.Errorf("node schedule has %d blocks, fused leg %d", got, want)
	}
	var nodeWords, fusedWords int64
	for _, msgs := range byNode.Out {
		for _, m := range msgs {
			nodeWords += m.Words
		}
	}
	fusedWords = totalWords(a.Internode)
	if nodeWords != fusedWords {
		t.Errorf("node schedule carries %d words, fused leg %d", nodeWords, fusedWords)
	}
}

// TestMerge checks the schedule union used by the phase simulators.
func TestMerge(t *testing.T) {
	s := mustSchedule(t, matrix3())
	a, err := Aggregate(s, ContiguousNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(a.Local, a.Gather)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := totalWords(merged), totalWords(a.Local)+totalWords(a.Gather); got != want {
		t.Errorf("merged words = %d, want %d", got, want)
	}
	for _, msgs := range merged.Out {
		for i := 1; i < len(msgs); i++ {
			if msgs[i].To < msgs[i-1].To {
				t.Fatal("merged schedule not destination-sorted")
			}
		}
	}
	other := &Schedule{P: 5, Out: make([][]Message, 5)}
	if _, err := Merge(s, other); err == nil {
		t.Error("mismatched PE counts accepted")
	}
}
