// Package material models the elastic properties of the ground beneath
// an alluvial valley, in the spirit of the San Fernando Valley model used
// by the Quake applications. The model is a hard-rock halfspace with an
// embedded ellipsoidal basin of soft sediments whose stiffness increases
// with depth. Seismic wavelength is proportional to shear-wave velocity,
// so the mesh sizing function derived from this model is fine in the soft
// basin and coarse in rock — exactly the grading that makes the Quake
// meshes irregular.
//
// Coordinates: x and y are horizontal (km), z is depth below the free
// surface (km, increasing downward). All velocities are km/s, densities
// are in 10^12 kg/km^3 (equivalently g/cm^3), which makes μ = ρ·Vs²
// come out in convenient GPa-like units.
package material

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Model describes a rock halfspace with one soft ellipsoidal basin.
type Model struct {
	// RockVs is the shear-wave velocity of the bedrock halfspace.
	RockVs float64
	// BasinVsSurface is the shear-wave velocity of the basin sediments
	// at the free surface (the softest material in the model).
	BasinVsSurface float64
	// BasinVsGradient is the increase of sediment Vs per km of depth.
	BasinVsGradient float64
	// BasinCenter is the center of the basin ellipsoid at the surface
	// (its Z component is the depth of the ellipsoid center).
	BasinCenter geom.Vec3
	// BasinSemi holds the ellipsoid semi-axes (km).
	BasinSemi geom.Vec3
	// VpVsRatio relates compressional to shear velocity (typically ~2
	// for sediments, √3 for a Poisson solid).
	VpVsRatio float64
	// RockDensity and BasinDensity in g/cm³.
	RockDensity, BasinDensity float64
}

// SanFernando returns a model with properties representative of the San
// Fernando Valley simulations: very soft sediments (Vs down to 0.4 km/s
// near the surface) in a shallow basin within hard rock (Vs = 3 km/s).
func SanFernando() *Model {
	return &Model{
		RockVs:          3.0,
		BasinVsSurface:  0.4,
		BasinVsGradient: 0.25,
		BasinCenter:     geom.V(25, 25, 0),
		BasinSemi:       geom.V(20, 16, 4),
		VpVsRatio:       2.0,
		RockDensity:     2.6,
		BasinDensity:    2.0,
	}
}

// Uniform returns a model with no basin: a homogeneous halfspace with
// the given shear velocity. Meshes graded by it are uniform, which
// turns the "irregular" Quake workload into its regular counterpart —
// the contrast the paper draws against regular grid applications.
func Uniform(vs float64) *Model {
	return &Model{
		RockVs:          vs,
		BasinVsSurface:  vs,
		BasinVsGradient: 0,
		BasinCenter:     geom.V(0, 0, 0),
		BasinSemi:       geom.V(1e-9, 1e-9, 1e-9),
		VpVsRatio:       2.0,
		RockDensity:     2.6,
		BasinDensity:    2.6,
	}
}

// Validate reports whether the model parameters are physically usable.
func (m *Model) Validate() error {
	switch {
	case m.RockVs <= 0:
		return fmt.Errorf("material: RockVs must be positive, got %g", m.RockVs)
	case m.BasinVsSurface <= 0:
		return fmt.Errorf("material: BasinVsSurface must be positive, got %g", m.BasinVsSurface)
	case m.BasinVsSurface > m.RockVs:
		return fmt.Errorf("material: basin (%g) must be softer than rock (%g)", m.BasinVsSurface, m.RockVs)
	case m.BasinSemi.X <= 0 || m.BasinSemi.Y <= 0 || m.BasinSemi.Z <= 0:
		return fmt.Errorf("material: basin semi-axes must be positive, got %v", m.BasinSemi)
	case m.VpVsRatio <= 1:
		return fmt.Errorf("material: VpVsRatio must exceed 1, got %g", m.VpVsRatio)
	case m.RockDensity <= 0 || m.BasinDensity <= 0:
		return fmt.Errorf("material: densities must be positive")
	}
	return nil
}

// basinCoord returns the normalized ellipsoid coordinate of p: values
// below 1 are inside the basin.
func (m *Model) basinCoord(p geom.Vec3) float64 {
	d := p.Sub(m.BasinCenter)
	dx := d.X / m.BasinSemi.X
	dy := d.Y / m.BasinSemi.Y
	dz := d.Z / m.BasinSemi.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// InBasin reports whether p lies inside the sediment basin.
func (m *Model) InBasin(p geom.Vec3) bool { return m.basinCoord(p) < 1 }

// ShearVelocity returns the shear-wave velocity Vs at p. Inside the
// basin the sediments stiffen with depth and blend smoothly into rock at
// the basin boundary; outside, the rock velocity applies.
func (m *Model) ShearVelocity(p geom.Vec3) float64 {
	r := m.basinCoord(p)
	if r >= 1 {
		return m.RockVs
	}
	sediment := m.BasinVsSurface + m.BasinVsGradient*math.Max(0, p.Z)
	if sediment > m.RockVs {
		sediment = m.RockVs
	}
	// Blend sediment into rock over the outer 20% of the ellipsoid so
	// the velocity field (and hence the sizing function) is continuous.
	const blendStart = 0.8
	if r <= blendStart {
		return sediment
	}
	t := (r - blendStart) / (1 - blendStart)
	return sediment + t*(m.RockVs-sediment)
}

// Density returns the mass density at p in g/cm³.
func (m *Model) Density(p geom.Vec3) float64 {
	if m.InBasin(p) {
		return m.BasinDensity
	}
	return m.RockDensity
}

// Elastic returns the Lamé parameters (λ, μ) and density ρ at p, in the
// unit system of the package (μ and λ come out in GPa when velocities
// are km/s and densities g/cm³).
func (m *Model) Elastic(p geom.Vec3) (lambda, mu, rho float64) {
	vs := m.ShearVelocity(p)
	vp := vs * m.VpVsRatio
	rho = m.Density(p)
	mu = rho * vs * vs
	lambda = rho*vp*vp - 2*mu
	return lambda, mu, rho
}

// Wavelength returns the local shear wavelength for a wave of the given
// period (seconds): λ = Vs · T.
func (m *Model) Wavelength(p geom.Vec3, period float64) float64 {
	return m.ShearVelocity(p) * period
}

// Sizing returns a mesh sizing function for resolving waves of the given
// period with pointsPerWavelength nodes per wavelength: the target
// element edge at p is Vs(p)·T / ppw. This is the rule the paper cites:
// "the size of elements in any region of the mesh must be matched to the
// wavelength of ground motion".
func (m *Model) Sizing(period, pointsPerWavelength float64) func(geom.Vec3) float64 {
	if period <= 0 || pointsPerWavelength <= 0 {
		panic(fmt.Sprintf("material: period (%g) and points per wavelength (%g) must be positive",
			period, pointsPerWavelength))
	}
	return func(p geom.Vec3) float64 {
		return m.Wavelength(p, period) / pointsPerWavelength
	}
}
