package material

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestSanFernandoValid(t *testing.T) {
	if err := SanFernando().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	mods := []func(*Model){
		func(m *Model) { m.RockVs = 0 },
		func(m *Model) { m.BasinVsSurface = -1 },
		func(m *Model) { m.BasinVsSurface = m.RockVs + 1 },
		func(m *Model) { m.BasinSemi = geom.V(0, 1, 1) },
		func(m *Model) { m.VpVsRatio = 0.9 },
		func(m *Model) { m.RockDensity = 0 },
	}
	for i, mod := range mods {
		m := SanFernando()
		mod(m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: bad model accepted", i)
		}
	}
}

func TestVelocityInsideAndOutsideBasin(t *testing.T) {
	m := SanFernando()
	center := m.BasinCenter
	if !m.InBasin(center) {
		t.Fatal("basin center not in basin")
	}
	if got := m.ShearVelocity(center); got != m.BasinVsSurface {
		t.Errorf("Vs at basin center surface = %g, want %g", got, m.BasinVsSurface)
	}
	far := geom.V(0, 0, 9)
	if m.InBasin(far) {
		t.Fatal("far corner in basin")
	}
	if got := m.ShearVelocity(far); got != m.RockVs {
		t.Errorf("Vs in rock = %g, want %g", got, m.RockVs)
	}
}

func TestVelocityIncreasesWithDepthInBasin(t *testing.T) {
	m := SanFernando()
	shallow := m.ShearVelocity(geom.V(25, 25, 0.1))
	deep := m.ShearVelocity(geom.V(25, 25, 2))
	if deep <= shallow {
		t.Errorf("Vs(deep)=%g <= Vs(shallow)=%g", deep, shallow)
	}
}

func TestVelocityContinuousAcrossBasinEdge(t *testing.T) {
	m := SanFernando()
	// March along +x through the basin edge and check for jumps.
	prev := m.ShearVelocity(geom.V(25, 25, 1))
	for x := 25.0; x < 50; x += 0.01 {
		v := m.ShearVelocity(geom.V(x, 25, 1))
		if math.Abs(v-prev) > 0.05 {
			t.Fatalf("Vs jump %g -> %g at x=%g", prev, v, x)
		}
		if v < prev-1e-12 {
			t.Fatalf("Vs decreased moving toward rock at x=%g", x)
		}
		prev = v
	}
	if prev != m.RockVs {
		t.Errorf("Vs outside basin = %g, want rock %g", prev, m.RockVs)
	}
}

func TestVelocityBounded(t *testing.T) {
	m := SanFernando()
	for x := 0.0; x <= 50; x += 5 {
		for y := 0.0; y <= 50; y += 5 {
			for z := 0.0; z <= 10; z += 1 {
				v := m.ShearVelocity(geom.V(x, y, z))
				if v < m.BasinVsSurface || v > m.RockVs {
					t.Fatalf("Vs(%g,%g,%g) = %g out of [%g, %g]",
						x, y, z, v, m.BasinVsSurface, m.RockVs)
				}
			}
		}
	}
}

func TestElasticParameters(t *testing.T) {
	m := SanFernando()
	lambda, mu, rho := m.Elastic(geom.V(0, 0, 5)) // rock
	if rho != m.RockDensity {
		t.Errorf("rock density = %g", rho)
	}
	wantMu := m.RockDensity * m.RockVs * m.RockVs
	if math.Abs(mu-wantMu) > 1e-12 {
		t.Errorf("mu = %g, want %g", mu, wantMu)
	}
	// λ must be consistent with Vp = ratio·Vs: λ = ρVp² - 2μ.
	vp := m.RockVs * m.VpVsRatio
	wantLambda := m.RockDensity*vp*vp - 2*wantMu
	if math.Abs(lambda-wantLambda) > 1e-12 {
		t.Errorf("lambda = %g, want %g", lambda, wantLambda)
	}
	if lambda <= 0 || mu <= 0 {
		t.Errorf("non-positive moduli: lambda=%g mu=%g", lambda, mu)
	}
}

func TestWavelengthAndSizing(t *testing.T) {
	m := SanFernando()
	p := geom.V(25, 25, 0) // basin surface, Vs = 0.4
	if got := m.Wavelength(p, 10); math.Abs(got-4.0) > 1e-12 {
		t.Errorf("wavelength = %g, want 4", got)
	}
	h := m.Sizing(10, 8)
	if got := h(p); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("sizing = %g, want 0.5", got)
	}
	// Rock sizing is RockVs/BasinVsSurface times coarser.
	rockH := h(geom.V(0, 0, 9))
	if ratio := rockH / h(p); math.Abs(ratio-m.RockVs/m.BasinVsSurface) > 1e-9 {
		t.Errorf("rock/basin sizing ratio = %g", ratio)
	}
}

func TestSizingHalvesWithPeriod(t *testing.T) {
	m := SanFernando()
	p := geom.V(20, 30, 1)
	h10 := m.Sizing(10, 8)(p)
	h5 := m.Sizing(5, 8)(p)
	if math.Abs(h10/h5-2) > 1e-12 {
		t.Errorf("sizing ratio for halved period = %g, want 2", h10/h5)
	}
}

func TestSizingPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sizing(0, 8) did not panic")
		}
	}()
	SanFernando().Sizing(0, 8)
}

func TestUniformModel(t *testing.T) {
	m := Uniform(1.5)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []geom.Vec3{geom.V(0, 0, 0), geom.V(25, 25, 5), geom.V(50, 50, 10)} {
		if got := m.ShearVelocity(p); got != 1.5 {
			t.Errorf("Vs(%v) = %g, want 1.5", p, got)
		}
		if got := m.Density(p); got != 2.6 {
			t.Errorf("rho(%v) = %g", p, got)
		}
	}
	// Sizing is constant, so meshes graded by it are uniform.
	h := m.Sizing(5, 2)
	if h(geom.V(0, 0, 0)) != h(geom.V(40, 40, 9)) {
		t.Error("uniform sizing not constant")
	}
}
