package network

// Contended-torus replay of the two-level exchange (comm.Aggregate).
// Under aggregation only the fused leader-to-leader blocks enter the
// machine's interconnect, so the torus is a torus of NODES: one torus
// node per aggregation node, carrying the by-node fused schedule. The
// intra-node gather and scatter legs never leave a node; they are
// charged at the local parameters through the uncontended PE-side
// model (machine.Simulate with an infinite network).

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/machine"
)

// AggResult reports the three-phase torus replay of an aggregated
// exchange.
type AggResult struct {
	// GatherTime and ScatterTime are the intra-node phase times at the
	// local parameters (no torus involvement).
	GatherTime  float64
	ScatterTime float64
	// Internode is the fused leg's contended replay over the torus of
	// nodes.
	Internode Result
	// CommTime is the total: gather, then the fused leg, then scatter.
	CommTime float64
}

// SimulateAggregated replays an aggregated exchange over a torus of
// nodes: t must have exactly a.NumNodes PEs. The fused leg runs the
// by-node schedule through the contended torus at the machine's
// parameters; the gather (merged with the same-node payload messages)
// and scatter legs run at the local parameters off the torus. With one
// PE per node and the flat torus, the result reduces exactly to
// Simulate on the flat schedule.
func SimulateAggregated(a *comm.Aggregated, p, local machine.Params, t Torus, cfg Config) (AggResult, error) {
	if t.PEs() != a.NumNodes {
		return AggResult{}, fmt.Errorf("network: torus has %d PEs, aggregation %d nodes",
			t.PEs(), a.NumNodes)
	}
	if local.Tl < 0 || local.Tw < 0 {
		return AggResult{}, fmt.Errorf("network: negative local parameters %+v", local)
	}
	intra, err := comm.Merge(a.Local, a.Gather)
	if err != nil {
		return AggResult{}, err
	}
	inter, err := Simulate(a.InternodeByNode(), p, t, cfg)
	if err != nil {
		return AggResult{}, err
	}
	res := AggResult{
		GatherTime:  machine.Simulate(intra, local, machine.NetworkConfig{}).CommTime,
		ScatterTime: machine.Simulate(a.Scatter, local, machine.NetworkConfig{}).CommTime,
		Internode:   inter,
	}
	res.CommTime = res.GatherTime + res.Internode.CommTime + res.ScatterTime
	return res, nil
}
