// Package network simulates a 3D torus interconnect — the topology of
// the Cray T3D/T3E the paper measured — with finite per-link bandwidth
// and dimension-ordered routing. The paper's models assume the network
// has infinite capacity and constant latency, citing an empirical
// argument in the expanded technical report; this package recreates
// that argument: running the SMVP exchange over a contended torus and
// showing that, at realistic link bandwidths, contention adds little to
// the PE-side costs that dominate.
package network

import (
	"fmt"
	"sort"

	"repro/internal/comm"
	"repro/internal/machine"
)

// Torus is a DX×DY×DZ 3D torus with one PE per node.
type Torus struct {
	DX, DY, DZ int
}

// NewTorus factors p into the most cube-like torus shape with
// DX·DY·DZ = p. It errors if p has no 3-factor decomposition (p must
// be a positive integer; every p works since 1s are allowed, but very
// prime p degenerates to a ring).
func NewTorus(p int) (Torus, error) {
	if p <= 0 {
		return Torus{}, fmt.Errorf("network: torus needs positive PE count, got %d", p)
	}
	best := Torus{DX: 1, DY: 1, DZ: p}
	bestScore := p - 1 // spread of the degenerate ring
	for dx := 1; dx*dx*dx <= p; dx++ {
		if p%dx != 0 {
			continue
		}
		rest := p / dx
		for dy := dx; dy*dy <= rest; dy++ {
			if rest%dy != 0 {
				continue
			}
			dz := rest / dy
			if score := dz - dx; score < bestScore {
				bestScore = score
				best = Torus{DX: dx, DY: dy, DZ: dz}
			}
		}
	}
	return best, nil
}

// PEs returns the number of nodes in the torus.
func (t Torus) PEs() int { return t.DX * t.DY * t.DZ }

// Coord maps a PE id to torus coordinates (x fastest).
func (t Torus) Coord(pe int) (x, y, z int) {
	x = pe % t.DX
	y = (pe / t.DX) % t.DY
	z = pe / (t.DX * t.DY)
	return x, y, z
}

// ID maps torus coordinates to a PE id.
func (t Torus) ID(x, y, z int) int { return x + t.DX*(y+t.DY*z) }

// Link identifies a directed physical channel: the node it leaves,
// the dimension (0..2), and direction (0 = minus, 1 = plus).
type Link struct {
	Node int
	Dim  int8
	Dir  int8
}

// NumLinks returns the number of directed links (6 per node, except
// degenerate dimensions of extent 1, which have none).
func (t Torus) NumLinks() int {
	n := 0
	for dim, extent := range [3]int{t.DX, t.DY, t.DZ} {
		_ = dim
		if extent > 1 {
			n += 2 * t.PEs()
		}
	}
	return n
}

// Route returns the dimension-ordered (X, then Y, then Z) path from PE
// a to PE b as the sequence of directed links traversed, taking the
// shorter way around each ring.
func (t Torus) Route(a, b int) []Link {
	ax, ay, az := t.Coord(a)
	bx, by, bz := t.Coord(b)
	var path []Link
	cur := [3]int{ax, ay, az}
	dst := [3]int{bx, by, bz}
	ext := [3]int{t.DX, t.DY, t.DZ}
	for dim := 0; dim < 3; dim++ {
		n := ext[dim]
		if n == 1 {
			continue
		}
		fwd := ((dst[dim] - cur[dim]) + n) % n
		bwd := n - fwd
		step, dir := 1, int8(1)
		dist := fwd
		if bwd < fwd || (bwd == fwd && dim%2 == 1) {
			step, dir, dist = -1, 0, bwd
		}
		for k := 0; k < dist; k++ {
			var c [3]int = cur
			node := t.ID(c[0], c[1], c[2])
			path = append(path, Link{Node: node, Dim: int8(dim), Dir: dir})
			cur[dim] = ((cur[dim]+step)%n + n) % n
		}
	}
	return path
}

// Hops returns the dimension-ordered hop count between two PEs.
func (t Torus) Hops(a, b int) int { return len(t.Route(a, b)) }

// Config sets the physical parameters of the torus channels.
type Config struct {
	// LinkBytesPerSec is the bandwidth of each directed link; zero
	// means infinite (no contention, pure hop latency).
	LinkBytesPerSec float64
	// HopLatency is the router traversal time per hop.
	HopLatency float64
}

// Result reports a torus exchange simulation.
type Result struct {
	CommTime float64
	PETime   []float64
	// MaxLinkBusy is the busiest single link's total occupancy, and
	// AvgLinkBusy the mean over links that carried traffic.
	MaxLinkBusy float64
	AvgLinkBusy float64
	// MaxHops is the longest route used by any message.
	MaxHops int
}

// Simulate runs the exchange schedule over the torus. Sender network
// interfaces serialize their blocks exactly as in machine.Simulate (the
// per-block cost T_l + words·T_w); each block then traverses its
// dimension-ordered path, queueing at every link behind earlier
// traffic (store-and-forward at link granularity, a conservative model
// — wormhole routing would only lower contention); receivers process
// arrivals in order at the same NI cost. Blocks are processed in
// deterministic order.
func Simulate(s *comm.Schedule, p machine.Params, t Torus, cfg Config) (Result, error) {
	if t.PEs() != s.P {
		return Result{}, fmt.Errorf("network: torus has %d PEs, schedule %d", t.PEs(), s.P)
	}
	type flight struct {
		inject float64
		from   int32
		seq    int
		to     int32
		words  int64
	}
	var flights []flight
	sendDone := make([]float64, s.P)
	for i := 0; i < s.P; i++ {
		busy := 0.0
		for seq, m := range s.Out[i] {
			busy += p.Tl + float64(m.Words)*p.Tw
			flights = append(flights, flight{
				inject: busy, from: m.From, seq: seq, to: m.To, words: m.Words,
			})
		}
		sendDone[i] = busy
	}
	sort.Slice(flights, func(a, b int) bool {
		if flights[a].inject != flights[b].inject {
			return flights[a].inject < flights[b].inject
		}
		if flights[a].from != flights[b].from {
			return flights[a].from < flights[b].from
		}
		return flights[a].seq < flights[b].seq
	})

	linkFree := make(map[Link]float64)
	linkBusy := make(map[Link]float64)
	res := Result{PETime: make([]float64, s.P)}
	type arrival struct {
		at    float64
		words int64
	}
	arrivals := make([][]arrival, s.P)
	for _, f := range flights {
		path := t.Route(int(f.from), int(f.to))
		if len(path) > res.MaxHops {
			res.MaxHops = len(path)
		}
		at := f.inject
		for _, l := range path {
			if cfg.LinkBytesPerSec > 0 {
				start := at
				if free := linkFree[l]; free > start {
					start = free
				}
				dur := float64(f.words) * 8 / cfg.LinkBytesPerSec
				linkFree[l] = start + dur
				linkBusy[l] += dur
				at = start + dur + cfg.HopLatency
			} else {
				at += cfg.HopLatency
			}
		}
		arrivals[f.to] = append(arrivals[f.to], arrival{at: at, words: f.words})
	}
	for i := 0; i < s.P; i++ {
		as := arrivals[i]
		sort.Slice(as, func(a, b int) bool { return as[a].at < as[b].at })
		busy := sendDone[i]
		for _, a := range as {
			if a.at > busy {
				busy = a.at
			}
			busy += p.Tl + float64(a.words)*p.Tw
		}
		res.PETime[i] = busy
		if busy > res.CommTime {
			res.CommTime = busy
		}
	}
	if n := len(linkBusy); n > 0 {
		var sum float64
		for _, b := range linkBusy {
			sum += b
			if b > res.MaxLinkBusy {
				res.MaxLinkBusy = b
			}
		}
		res.AvgLinkBusy = sum / float64(n)
	}
	return res, nil
}
