package network

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/machine"
)

func TestNewTorusShapes(t *testing.T) {
	cases := map[int][3]int{
		1:   {1, 1, 1},
		8:   {2, 2, 2},
		64:  {4, 4, 4},
		128: {4, 4, 8},
		12:  {2, 2, 3},
		7:   {1, 1, 7}, // prime degenerates to a ring
	}
	for p, want := range cases {
		tor, err := NewTorus(p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if tor.PEs() != p {
			t.Errorf("p=%d: PEs = %d", p, tor.PEs())
		}
		got := [3]int{tor.DX, tor.DY, tor.DZ}
		if got != want {
			t.Errorf("p=%d: shape %v, want %v", p, got, want)
		}
	}
	if _, err := NewTorus(0); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestCoordIDRoundtrip(t *testing.T) {
	tor, _ := NewTorus(24)
	for pe := 0; pe < tor.PEs(); pe++ {
		x, y, z := tor.Coord(pe)
		if tor.ID(x, y, z) != pe {
			t.Fatalf("roundtrip failed for %d", pe)
		}
		if x < 0 || x >= tor.DX || y < 0 || y >= tor.DY || z < 0 || z >= tor.DZ {
			t.Fatalf("coord out of range for %d", pe)
		}
	}
}

func TestRouteConnectsAndIsShortest(t *testing.T) {
	tor, _ := NewTorus(64) // 4x4x4
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Intn(64), rng.Intn(64)
		path := tor.Route(a, b)
		// Walk the path and confirm it ends at b.
		cur := a
		for _, l := range path {
			if l.Node != cur {
				t.Fatalf("link leaves %d but walker is at %d", l.Node, cur)
			}
			x, y, z := tor.Coord(cur)
			c := [3]int{x, y, z}
			ext := [3]int{tor.DX, tor.DY, tor.DZ}
			step := 1
			if l.Dir == 0 {
				step = -1
			}
			c[l.Dim] = ((c[l.Dim]+step)%ext[l.Dim] + ext[l.Dim]) % ext[l.Dim]
			cur = tor.ID(c[0], c[1], c[2])
		}
		if cur != b {
			t.Fatalf("route %d->%d ends at %d", a, b, cur)
		}
		// Shortest: per-dimension ring distance sums.
		ax, ay, az := tor.Coord(a)
		bx, by, bz := tor.Coord(b)
		want := ringDist(ax, bx, 4) + ringDist(ay, by, 4) + ringDist(az, bz, 4)
		if len(path) != want {
			t.Fatalf("route %d->%d has %d hops, want %d", a, b, len(path), want)
		}
	}
	if got := tor.Hops(0, 0); got != 0 {
		t.Errorf("self route %d hops", got)
	}
}

func ringDist(a, b, n int) int {
	d := (b - a + n) % n
	if n-d < d {
		return n - d
	}
	return d
}

func TestNumLinks(t *testing.T) {
	tor, _ := NewTorus(8) // 2x2x2
	if got := tor.NumLinks(); got != 6*8 {
		t.Errorf("NumLinks = %d, want 48", got)
	}
	ring, _ := NewTorus(5) // 1x1x5
	if got := ring.NumLinks(); got != 2*5 {
		t.Errorf("ring NumLinks = %d, want 10", got)
	}
}

// randomSchedule builds a symmetric exchange on p PEs.
func randomSchedule(t *testing.T, rng *rand.Rand, p int) *comm.Schedule {
	t.Helper()
	m := make([][]int64, p)
	for i := range m {
		m[i] = make([]int64, p)
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			if rng.Float64() < 0.3 {
				w := int64(3 * (1 + rng.Intn(100)))
				m[i][j], m[j][i] = w, w
			}
		}
	}
	s, err := comm.FromMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimulateRejectsMismatch(t *testing.T) {
	tor, _ := NewTorus(8)
	s := randomSchedule(t, rand.New(rand.NewSource(1)), 16)
	if _, err := Simulate(s, machine.T3E(), tor, Config{}); err == nil {
		t.Error("PE count mismatch accepted")
	}
}

func TestInfiniteLinksMatchMachineSim(t *testing.T) {
	// With infinite link bandwidth and zero hop latency, the torus sim
	// reduces exactly to machine.Simulate with zero transit.
	rng := rand.New(rand.NewSource(5))
	s := randomSchedule(t, rng, 27)
	tor, err := NewTorus(27)
	if err != nil {
		t.Fatal(err)
	}
	p := machine.T3E()
	got, err := Simulate(s, p, tor, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := machine.Simulate(s, p, machine.NetworkConfig{})
	if math.Abs(got.CommTime-want.CommTime) > 1e-12*(1+want.CommTime) {
		t.Errorf("torus %g vs machine %g", got.CommTime, want.CommTime)
	}
	if got.MaxLinkBusy != 0 || got.AvgLinkBusy != 0 {
		t.Error("link busy recorded with infinite links")
	}
}

func TestContentionMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := randomSchedule(t, rng, 64)
	tor, _ := NewTorus(64)
	p := machine.T3E()
	prev := math.Inf(1)
	for _, bw := range []float64{1e6, 1e7, 1e8, 1e9, 0} {
		cfg := Config{LinkBytesPerSec: bw, HopLatency: 100e-9}
		res, err := Simulate(s, p, tor, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// 0 means infinite: must be the fastest of all.
		if bw == 0 {
			if res.CommTime > prev+1e-12 {
				t.Errorf("infinite links slower than finite: %g vs %g", res.CommTime, prev)
			}
			break
		}
		if res.CommTime > prev+1e-12 {
			t.Errorf("more bandwidth slowed exchange: %g -> %g at %g B/s", prev, res.CommTime, bw)
		}
		prev = res.CommTime
		if res.MaxLinkBusy <= 0 || res.AvgLinkBusy <= 0 || res.MaxLinkBusy < res.AvgLinkBusy {
			t.Errorf("implausible link stats: %+v", res)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	s := randomSchedule(t, rng, 16)
	tor, _ := NewTorus(16)
	cfg := Config{LinkBytesPerSec: 5e8, HopLatency: 50e-9}
	a, err := Simulate(s, machine.T3E(), tor, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(s, machine.T3E(), tor, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CommTime != b.CommTime || a.MaxLinkBusy != b.MaxLinkBusy {
		t.Error("torus simulation not deterministic")
	}
}

func TestHopLatencyAddsUp(t *testing.T) {
	// Two PEs on a 2-ring exchanging one block: hop latency appears in
	// the arrival time.
	m := [][]int64{{0, 30}, {30, 0}}
	s, err := comm.FromMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	tor := Torus{DX: 2, DY: 1, DZ: 1}
	p := machine.Params{Name: "t", Tf: 1e-9, Tl: 1e-6, Tw: 10e-9}
	noHop, err := Simulate(s, p, tor, Config{})
	if err != nil {
		t.Fatal(err)
	}
	withHop, err := Simulate(s, p, tor, Config{HopLatency: 5e-6})
	if err != nil {
		t.Fatal(err)
	}
	if withHop.CommTime <= noHop.CommTime {
		t.Errorf("hop latency had no effect: %g vs %g", withHop.CommTime, noHop.CommTime)
	}
	if withHop.MaxHops != 1 {
		t.Errorf("MaxHops = %d, want 1", withHop.MaxHops)
	}
}
