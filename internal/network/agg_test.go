package network

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/machine"
)

func netSchedule(t testing.TB, m [][]int64) *comm.Schedule {
	t.Helper()
	s, err := comm.FromMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func netRandomMatrix(rng *rand.Rand, p int) [][]int64 {
	m := make([][]int64, p)
	for i := range m {
		m[i] = make([]int64, p)
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			if rng.Float64() < 0.5 {
				w := int64(3 * (1 + rng.Intn(100)))
				m[i][j], m[j][i] = w, w
			}
		}
	}
	return m
}

func localNet() machine.Params {
	return machine.Params{Name: "on-node", Tf: 1e-9, Tl: 0.5e-6, Tw: 5e-9}
}

// TestSimulateAggregatedTorusReducesToFlat: with one PE per node the
// node torus is the PE torus and the fused schedule is the flat one,
// so the aggregated replay must match Simulate exactly, contended or
// not.
func TestSimulateAggregatedTorusReducesToFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, p := range []int{8, 12, 27} {
		s := netSchedule(t, netRandomMatrix(rng, p))
		a, err := comm.Aggregate(s, comm.ContiguousNodes(1))
		if err != nil {
			t.Fatal(err)
		}
		tor, err := NewTorus(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []Config{{}, {HopLatency: 100e-9}, {LinkBytesPerSec: 100e6, HopLatency: 100e-9}} {
			flat, err := Simulate(s, machine.T3E(), tor, cfg)
			if err != nil {
				t.Fatal(err)
			}
			agg, err := SimulateAggregated(a, machine.T3E(), localNet(), tor, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if agg.CommTime != flat.CommTime {
				t.Fatalf("p=%d cfg=%+v: aggregated %g != flat %g",
					p, cfg, agg.CommTime, flat.CommTime)
			}
			if agg.GatherTime != 0 || agg.ScatterTime != 0 {
				t.Fatalf("p=%d: identity aggregation has local phases %g/%g",
					p, agg.GatherTime, agg.ScatterTime)
			}
		}
	}
}

// TestSimulateAggregatedNodeTorus: the fused leg rides a torus of
// nodes — the torus size must equal the node count, phases add, and
// the fused replay uses fewer (or equal) injected blocks than the
// flat one, which is visible as a strictly smaller busiest-link
// occupancy on a latency-free contended network.
func TestSimulateAggregatedNodeTorus(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := netSchedule(t, netRandomMatrix(rng, 16))
	a, err := comm.Aggregate(s, comm.ContiguousNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	peTorus, err := NewTorus(16)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong torus size: the PE torus does not fit the 4-node plan.
	if _, err := SimulateAggregated(a, machine.T3E(), localNet(), peTorus, Config{}); err == nil {
		t.Fatal("PE-sized torus accepted for a 4-node plan")
	}
	nodeTorus, err := NewTorus(a.NumNodes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateAggregated(a, machine.T3E(), localNet(), nodeTorus, Config{LinkBytesPerSec: 100e6})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.GatherTime + res.Internode.CommTime + res.ScatterTime
	if math.Abs(res.CommTime-sum) > 1e-18 {
		t.Fatalf("CommTime %g != phase sum %g", res.CommTime, sum)
	}
	if res.GatherTime <= 0 || res.ScatterTime <= 0 {
		t.Fatalf("grouped plan should have local phases, got %g/%g",
			res.GatherTime, res.ScatterTime)
	}
	if _, err := SimulateAggregated(a, machine.T3E(),
		machine.Params{Tf: 1e-9, Tl: -1}, nodeTorus, Config{}); err == nil {
		t.Fatal("negative local parameters accepted")
	}
}

// TestSimulateDegenerateTori covers the contended-replay edge cases:
// a single-PE torus, an all-zero (no-message) schedule, and the 1×1×p
// ring a prime PE count degenerates to — all must simulate without
// error and respect the free-network lower bound.
func TestSimulateDegenerateTori(t *testing.T) {
	// Single PE: no traffic possible, zero comm time.
	tor1, err := NewTorus(1)
	if err != nil {
		t.Fatal(err)
	}
	empty := netSchedule(t, [][]int64{{0}})
	res, err := Simulate(empty, machine.T3E(), tor1, Config{LinkBytesPerSec: 1e6, HopLatency: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommTime != 0 || res.MaxHops != 0 || res.MaxLinkBusy != 0 {
		t.Fatalf("single-PE sim nonzero: %+v", res)
	}

	// Many PEs, no messages: the exchange is a no-op.
	tor4, err := NewTorus(4)
	if err != nil {
		t.Fatal(err)
	}
	silent := netSchedule(t, [][]int64{{0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}})
	res, err = Simulate(silent, machine.T3E(), tor4, Config{LinkBytesPerSec: 1e6, HopLatency: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommTime != 0 {
		t.Fatalf("zero-word schedule took %g s", res.CommTime)
	}
	za, err := comm.Aggregate(silent, comm.ContiguousNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	zt, err := NewTorus(za.NumNodes)
	if err != nil {
		t.Fatal(err)
	}
	zres, err := SimulateAggregated(za, machine.T3E(), localNet(), zt, Config{LinkBytesPerSec: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if zres.CommTime != 0 {
		t.Fatalf("aggregated zero-word schedule took %g s", zres.CommTime)
	}

	// Prime count: the factorization degenerates to a 1×1×7 ring and
	// every route must stay within the ring (≤ 3 hops each way).
	tor7, err := NewTorus(7)
	if err != nil {
		t.Fatal(err)
	}
	if tor7.DX != 1 || tor7.DY != 1 || tor7.DZ != 7 {
		t.Fatalf("NewTorus(7) = %+v, want 1x1x7", tor7)
	}
	rng := rand.New(rand.NewSource(13))
	s7 := netSchedule(t, netRandomMatrix(rng, 7))
	free, err := Simulate(s7, machine.T3E(), tor7, Config{HopLatency: 100e-9})
	if err != nil {
		t.Fatal(err)
	}
	if free.MaxHops > 3 {
		t.Fatalf("ring of 7: max hops %d > 3", free.MaxHops)
	}
	contended, err := Simulate(s7, machine.T3E(), tor7, Config{LinkBytesPerSec: 10e6, HopLatency: 100e-9})
	if err != nil {
		t.Fatal(err)
	}
	if contended.CommTime < free.CommTime {
		t.Fatalf("contention sped up the ring: %g < %g", contended.CommTime, free.CommTime)
	}

	// Aggregating a prime PE count onto a prime node count still
	// replays: 7 PEs on nodes of 3 → 3 nodes, a 1×1×3 ring.
	a, err := comm.Aggregate(s7, comm.ContiguousNodes(3))
	if err != nil {
		t.Fatal(err)
	}
	nodeTor, err := NewTorus(a.NumNodes)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := SimulateAggregated(a, machine.T3E(), localNet(), nodeTor, Config{LinkBytesPerSec: 10e6})
	if err != nil {
		t.Fatal(err)
	}
	if agg.CommTime <= 0 {
		t.Fatal("aggregated ring replay reported zero exchange time")
	}
}
