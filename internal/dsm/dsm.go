// Package dsm models the communication of the SMVP exchange on a
// page-based software distributed shared memory system (the TreadMarks
// class the paper cites as one possible block regime). On a DSM the
// transfer unit is a page of the shared address space: a PE that needs
// one partial sum from a neighbor faults the whole page containing it.
// The words a PE needs are its shared nodes' entries in the neighbor's
// vector layout, so the page-grain volume depends on how those nodes
// cluster in the address space — node ordering suddenly matters to
// communication, not just to cache behavior.
//
// The analysis computes, for a given partition and page size, the exact
// set of pages each PE must fetch from each neighbor, yielding the
// amplification factor over the word-exact message-passing volume and
// the per-PE block (page) counts that plug into the paper's Equation 2.
package dsm

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/partition"
)

// Layout describes how nodal data is placed in each PE's shared
// segment. The natural layout stores a PE's local vector contiguously
// in local-node order (three words per node).
type Layout struct {
	// PageWords is the page size in 64-bit words (e.g. 512 for a 4 KB
	// page).
	PageWords int64
}

// Analysis reports the page-grain communication of one exchange phase.
type Analysis struct {
	PageWords int64
	// Pages[i][j] is the number of distinct pages PE i must fetch from
	// PE j (zero when they share nothing).
	Pages [][]int64
	// WordVolume is the exact (message passing) directed volume in
	// words; PageVolume is the page-grain volume (pages × page size).
	WordVolume int64
	PageVolume int64
	// B[i] and C[i] are per-PE block (page) and word counts under the
	// DSM regime, counting both fetch directions like the paper's
	// accounting.
	B []int64
	C []int64
}

// Amplification returns PageVolume / WordVolume — how much the page
// grain inflates traffic (1.0 means no false sharing at all).
func (a *Analysis) Amplification() float64 {
	if a.WordVolume == 0 {
		return 1
	}
	return float64(a.PageVolume) / float64(a.WordVolume)
}

// Bmax returns the maximum per-PE page count.
func (a *Analysis) Bmax() int64 {
	var m int64
	for _, v := range a.B {
		if v > m {
			m = v
		}
	}
	return m
}

// Cmax returns the maximum per-PE page-grain word count.
func (a *Analysis) Cmax() int64 {
	var m int64
	for _, v := range a.C {
		if v > m {
			m = v
		}
	}
	return m
}

// Analyze computes the page-grain exchange for a communication profile.
// For every ordered PE pair (i ← j), the words PE i needs are the
// shared nodes' three-word entries at their local indices in j's
// segment; the pages are the distinct PageWords-sized ranges covering
// those words.
func Analyze(pr *partition.Profile, layout Layout) (*Analysis, error) {
	sp := obs.StartSpan(obs.TrackDriver, "setup", "dsm.analyze")
	defer sp.End()
	if layout.PageWords <= 0 {
		return nil, fmt.Errorf("dsm: page size must be positive, got %d", layout.PageWords)
	}
	p := pr.P
	a := &Analysis{
		PageWords: layout.PageWords,
		Pages:     make([][]int64, p),
		B:         make([]int64, p),
		C:         make([]int64, p),
	}
	for i := range a.Pages {
		a.Pages[i] = make([]int64, p)
	}

	// Local index of each node on each PE (position in the sorted
	// resident list = position in the PE's vector segment).
	localIndex := make([]map[int32]int64, p)
	for pe := 0; pe < p; pe++ {
		localIndex[pe] = make(map[int32]int64, len(pr.NodesOnPE[pe]))
		for l, g := range pr.NodesOnPE[pe] {
			localIndex[pe][g] = int64(l)
		}
	}

	// For every node shared between a pair, PE i fetches the node's
	// words from j's segment (and vice versa). Collect pages per
	// ordered pair.
	type pairKey struct{ dst, src int32 }
	pages := make(map[pairKey]map[int64]struct{})
	for g, pes := range pr.NodePEs {
		if len(pes) < 2 {
			continue
		}
		for x := 0; x < len(pes); x++ {
			for y := 0; y < len(pes); y++ {
				if x == y {
					continue
				}
				dst, src := pes[x], pes[y]
				l := localIndex[src][int32(g)]
				firstWord := 3 * l
				lastWord := firstWord + 2
				k := pairKey{dst, src}
				set, ok := pages[k]
				if !ok {
					set = make(map[int64]struct{})
					pages[k] = set
				}
				for pg := firstWord / layout.PageWords; pg <= lastWord/layout.PageWords; pg++ {
					set[pg] = struct{}{}
				}
				a.WordVolume += 3
			}
		}
	}
	for k, set := range pages {
		n := int64(len(set))
		a.Pages[k.dst][k.src] = n
		a.PageVolume += n * layout.PageWords
		a.B[k.dst] += n
		a.B[k.src] += n // the source's segment is pulled across the network too
		a.C[k.dst] += n * layout.PageWords
		a.C[k.src] += n * layout.PageWords
	}
	obs.GetCounter("dsm.analyze.calls").Add(1)
	obs.GetCounter("dsm.word_volume").Add(a.WordVolume)
	obs.GetCounter("dsm.page_volume").Add(a.PageVolume)
	obs.GetGauge("dsm.amplification").Set(a.Amplification())
	return a, nil
}
