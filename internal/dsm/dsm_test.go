package dsm

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/octree"
	"repro/internal/partition"
)

func testProfile(t *testing.T, p int) *partition.Profile {
	t.Helper()
	cfg := octree.Config{Origin: geom.V(0, 0, 0), CubeSize: 1, Nx: 2, Ny: 2, Nz: 1, MaxDepth: 3}
	h := func(q geom.Vec3) float64 { return math.Max(0.12, 0.35*q.Dist(geom.V(1, 1, 0))) }
	tr, err := octree.Build(cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mesh.FromTree(tr)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := partition.PartitionMesh(m, p, partition.RCB, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := partition.Analyze(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestAnalyzeRejectsBadPage(t *testing.T) {
	pr := testProfile(t, 4)
	if _, err := Analyze(pr, Layout{PageWords: 0}); err == nil {
		t.Error("zero page size accepted")
	}
}

func TestWordVolumeMatchesProfile(t *testing.T) {
	pr := testProfile(t, 8)
	a, err := Analyze(pr, Layout{PageWords: 64})
	if err != nil {
		t.Fatal(err)
	}
	// The word-exact volume equals the profile's total directed volume.
	if a.WordVolume != pr.TotalWords() {
		t.Errorf("WordVolume = %d, profile total %d", a.WordVolume, pr.TotalWords())
	}
}

func TestAmplificationMonotoneInPageSize(t *testing.T) {
	pr := testProfile(t, 8)
	prev := 0.0
	for _, pw := range []int64{1, 4, 16, 64, 256, 1024} {
		a, err := Analyze(pr, Layout{PageWords: pw})
		if err != nil {
			t.Fatal(err)
		}
		amp := a.Amplification()
		if amp < 1 {
			t.Fatalf("page %d: amplification %g < 1", pw, amp)
		}
		if amp < prev-1e-9 {
			// Not strictly guaranteed for arbitrary layouts, but for
			// 3-word records larger pages can only add unneeded words.
			t.Fatalf("page %d: amplification fell: %g -> %g", pw, prev, amp)
		}
		prev = amp
	}
	// One-word pages have zero false sharing.
	a, err := Analyze(pr, Layout{PageWords: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Amplification() != 1 {
		t.Errorf("1-word pages amplification = %g, want exactly 1", a.Amplification())
	}
}

func TestPageCountsConsistent(t *testing.T) {
	pr := testProfile(t, 8)
	a, err := Analyze(pr, Layout{PageWords: 16})
	if err != nil {
		t.Fatal(err)
	}
	var pageSum int64
	for i := 0; i < pr.P; i++ {
		if a.Pages[i][i] != 0 {
			t.Error("self pages")
		}
		for j := 0; j < pr.P; j++ {
			if (a.Pages[i][j] > 0) != (pr.Msg[j][i] > 0) {
				t.Errorf("page/message mismatch at (%d,%d)", i, j)
			}
			pageSum += a.Pages[i][j]
		}
	}
	if a.PageVolume != pageSum*16 {
		t.Errorf("PageVolume = %d, pages %d × 16", a.PageVolume, pageSum)
	}
	// Pages needed never exceed words needed (pages of ≥3 words hold at
	// least one full record... with 16-word pages a 3-word record spans
	// at most 2 pages).
	for i := 0; i < pr.P; i++ {
		for j := 0; j < pr.P; j++ {
			words := pr.Msg[j][i] // words i needs from j
			if a.Pages[i][j] > words {
				t.Errorf("(%d,%d): %d pages for %d words", i, j, a.Pages[i][j], words)
			}
		}
	}
	if a.Bmax() <= 0 || a.Cmax() <= 0 {
		t.Error("empty maxima")
	}
}

func TestHugePagesCollapseToOne(t *testing.T) {
	pr := testProfile(t, 4)
	a, err := Analyze(pr, Layout{PageWords: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pr.P; i++ {
		for j := 0; j < pr.P; j++ {
			if pr.Msg[j][i] > 0 && a.Pages[i][j] != 1 {
				t.Errorf("(%d,%d): %d pages, want 1 giant page", i, j, a.Pages[i][j])
			}
		}
	}
}
