package par

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/solver"
)

// TestSMVPDotMatchesSMVP pins the fused distributed kernel's contract:
// y is bit-identical to the plain SMVP (the fused dot only adds reads),
// under the flat exchange and every aggregation size, and the dot
// matches a sequential dot over the finished vectors to rounding. The
// dot itself must also be identical across exchange schedules — the
// partial-per-owner grouping does not depend on how messages travel.
func TestSMVPDotMatchesSMVP(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 6, partition.RCB)
	n3 := 3 * d.GlobalNodes
	rng := rand.New(rand.NewSource(19))
	x := make([]float64, n3)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n3)
	if _, err := d.SMVP(want, x); err != nil {
		t.Fatal(err)
	}
	var seq, scale float64
	for i := range x {
		seq += x[i] * want[i]
		scale += math.Abs(x[i] * want[i])
	}

	var flatDot float64
	for _, size := range []int{0, 1, 2, 3, 6} { // 0 = flat exchange
		if size > 0 {
			if err := d.SetAggregation(comm.ContiguousNodes(size)); err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := d.SetAggregation(nil); err != nil {
					t.Fatal(err)
				}
			}()
		}
		y := make([]float64, n3)
		dot, _, err := d.SMVPDot(y, x)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		for i := range y {
			if math.Float64bits(y[i]) != math.Float64bits(want[i]) {
				t.Fatalf("size %d: y[%d] = %x, SMVP %x", size, i,
					math.Float64bits(y[i]), math.Float64bits(want[i]))
			}
		}
		if math.Abs(dot-seq) > 1e-12*(1+scale) {
			t.Fatalf("size %d: fused dot %g, sequential %g", size, dot, seq)
		}
		if size == 0 {
			flatDot = dot
		} else if math.Float64bits(dot) != math.Float64bits(flatDot) {
			t.Fatalf("size %d: aggregated dot %x, flat %x", size,
				math.Float64bits(dot), math.Float64bits(flatDot))
		}
		// Deterministic: a repeat invocation reproduces the dot exactly.
		again, _, err := d.SMVPDot(y, x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(again) != math.Float64bits(dot) {
			t.Fatalf("size %d: repeat dot %x, first %x", size,
				math.Float64bits(again), math.Float64bits(dot))
		}
	}
}

// TestFusedZeroAlloc extends the runtime's steady-state guarantee to
// the fused kernel: the per-PE dot slots are preallocated and the
// coordinator reduction is a plain loop, so SMVPDot performs zero heap
// allocations per op, metrics off and on, flat and aggregated.
func TestFusedZeroAlloc(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 4, partition.RCB)
	x := make([]float64, 3*d.GlobalNodes)
	y := make([]float64, 3*d.GlobalNodes)
	for i := range x {
		x[i] = float64(i%5) * 0.5
	}
	run := func() {
		if _, _, err := d.SMVPDot(y, x); err != nil {
			t.Fatal(err)
		}
	}
	for _, aggregated := range []bool{false, true} {
		if aggregated {
			if err := d.SetAggregation(comm.ContiguousNodes(2)); err != nil {
				t.Fatal(err)
			}
		}
		for _, metrics := range []bool{false, true} {
			prev := obs.Enabled()
			obs.SetEnabled(metrics)
			run() // steady state: buffers and goroutines already live
			if avg := testing.AllocsPerRun(10, run); avg != 0 {
				t.Errorf("SMVPDot (agg=%v, metrics=%v): %.1f allocs/op, want 0", aggregated, metrics, avg)
			}
			obs.SetEnabled(prev)
		}
	}
}

// TestFusedDistCGMatchesUnfused is the end-to-end property test: a
// fused CG solve on the distributed operator reproduces the unfused
// solve to solve tolerance, on the flat and the aggregated exchange
// schedule. (Bit identity is not expected here — the fused dot groups
// terms by owning PE.)
func TestFusedDistCGMatchesUnfused(t *testing.T) {
	f := newFixture(t)
	for _, size := range []int{0, 2} {
		d, _ := f.dist(t, 8, partition.RCB)
		if size > 0 {
			if err := d.SetAggregation(comm.ContiguousNodes(size)); err != nil {
				t.Fatal(err)
			}
		}
		op := Operator{D: d, Shift: 20, MassNode: f.sys.MassNode}
		n := op.Dim()
		rng := rand.New(rand.NewSource(31))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xu := make([]float64, n)
		ru, err := solver.CG(op, b, xu, solver.Config{MaxIter: 2 * n, Tol: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		xf := make([]float64, n)
		rf, err := solver.CG(op, b, xf, solver.Config{MaxIter: 2 * n, Tol: 1e-9, Fused: true})
		if err != nil {
			t.Fatal(err)
		}
		if !ru.Converged || !rf.Converged {
			t.Fatalf("size %d: convergence unfused %v, fused %v", size, ru.Converged, rf.Converged)
		}
		if d := ru.Iterations - rf.Iterations; d < -3 || d > 3 {
			t.Errorf("size %d: iteration counts far apart: unfused %d, fused %d", size, ru.Iterations, rf.Iterations)
		}
		for i := range xu {
			if math.Abs(xu[i]-xf[i]) > 1e-6*(1+math.Abs(xu[i])) {
				t.Fatalf("size %d: x[%d]: unfused %g, fused %g", size, i, xu[i], xf[i])
			}
		}
	}
}

// TestFusedDistCGHealing: the fused path composes with self-healing —
// audits and convergence certification use ap as scratch, never z, so
// the fused iteration's precomputed (z, ρ) survive them.
func TestFusedDistCGHealing(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 4, partition.RCB)
	op := Operator{D: d, Shift: 20, MassNode: f.sys.MassNode}
	n := op.Dim()
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.29)
	}
	x := make([]float64, n)
	res, err := solver.CG(op, b, x, solver.Config{MaxIter: 2 * n, Tol: 1e-8, Fused: true, CheckEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("fused healing solve did not converge: %d iters, residual %g", res.Iterations, res.Residual)
	}
	if res.Detections != 0 {
		t.Errorf("healthy fused solve reported %d detections", res.Detections)
	}
}

// TestSMVPDotErrors: dimension checks and the closed-Dist path mirror
// SMVP's error contract.
func TestSMVPDotErrors(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 2, partition.RCB)
	if _, _, err := d.SMVPDot(make([]float64, 3), make([]float64, 3*d.GlobalNodes)); err == nil {
		t.Error("short y accepted")
	}
	y := make([]float64, 3*d.GlobalNodes)
	x := make([]float64, 3*d.GlobalNodes)
	d.Close()
	if _, _, err := d.SMVPDot(y, x); err == nil {
		t.Error("SMVPDot on closed Dist succeeded")
	}
}
