package par

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// This file is the runtime half of the two-level exchange (the schedule
// transform lives in comm.Aggregate): PEs are grouped onto nodes, and
// all same-source-node traffic bound for one destination node travels as
// a single fused block. On this shared-memory emulation the fused send
// is a copy phase — the leader PE of each node gathers its members'
// outbound buffers into a preallocated per-node-pair staging area — and
// the destination PEs then accumulate their slices of the staging area
// in place, which is the scatter leg. Payload values are copied, never
// recombined, and every PE accumulates in exactly the flat kernel's
// neighbor order, so the aggregated SMVP is bit-identical to the flat
// one. All staging buffers and copy lists are built when aggregation is
// enabled; the steady-state kernel stays allocation-free.

// aggCopy is one gather copy: a leader moves a member PE's completed
// send buffer into its slot of an inter-node staging buffer.
type aggCopy struct {
	dst, src []float64
}

// aggState is the installed aggregation plan. It is immutable after
// construction; the runtime swaps the whole pointer under the dispatch
// mutex, so PEs read a consistent plan for the duration of a kernel.
type aggState struct {
	nodeOf   []int32
	leader   []int32 // per node: its lowest-numbered PE
	numNodes int

	// gather[pe] is the copy list PE pe executes during the fused-send
	// phase; only leaders have entries.
	gather [][]aggCopy
	// recv[pe][k] is the buffer PE pe accumulates from for neighbor
	// index k: the neighbor's own send buffer when the neighbor is on
	// the same node, or its slot in the staging buffer when remote.
	recv [][][]float64
	// fusedOut[pe] / stagedBytes[pe] are the per-kernel metric deltas a
	// leader contributes: fused inter-node blocks sent by its node, and
	// bytes it copied into staging.
	fusedOut    []int64
	stagedBytes []int64
}

// SetAggregation installs (or with nil removes) a two-level exchange
// plan on the Dist: nodeOf maps each PE to its node id (for example
// comm.ContiguousNodes(size)), and from it the runtime derives leaders,
// staging buffers, and copy lists. The aggregated SMVP produces results
// bit-identical to the flat one — values are copied unmodified and
// accumulated in the same order — at the cost of one extra intra-kernel
// barrier and the staging copies. Construction allocates; the kernels
// that follow do not. Like InjectFaults, the swap is excluded from
// in-flight kernels by the dispatch mutex.
//
// Only the phased SMVP (and through it Operator/CG) honors the plan:
// SMVPOverlapped hides communication under interior compute — a
// different latency-tolerance strategy than fusing blocks — and
// DistSim's integrator keeps the flat exchange; both are documented in
// docs/COMMUNICATION.md.
func (d *Dist) SetAggregation(nodeOf func(pe int32) int32) error {
	if nodeOf == nil {
		return d.rt.installAgg(nil)
	}
	a, err := d.rt.buildAgg(nodeOf)
	if err != nil {
		return err
	}
	return d.rt.installAgg(a)
}

// AggregationStats reports the installed plan's fused inter-node block
// count and staged (gather-copied) bytes per kernel, and whether
// aggregation is enabled at all.
func (d *Dist) AggregationStats() (fusedBlocks, stagedBytes int64, enabled bool) {
	d.rt.dispatch.Lock()
	a := d.rt.agg
	d.rt.dispatch.Unlock()
	if a == nil {
		return 0, 0, false
	}
	for pe := range a.fusedOut {
		fusedBlocks += a.fusedOut[pe]
		stagedBytes += a.stagedBytes[pe]
	}
	return fusedBlocks, stagedBytes, true
}

func (rt *peRuntime) installAgg(a *aggState) error {
	rt.dispatch.Lock()
	defer rt.dispatch.Unlock()
	if err := rt.usable(); err != nil {
		return err
	}
	rt.agg = a
	return nil
}

// buildAgg derives the full aggregation plan from the node mapping and
// the runtime's immutable exchange topology. It holds no lock: it reads
// only topology and the workspace send-buffer headers, both fixed at
// construction.
func (rt *peRuntime) buildAgg(nodeOf func(pe int32) int32) (*aggState, error) {
	a := &aggState{
		nodeOf:      make([]int32, rt.p),
		gather:      make([][]aggCopy, rt.p),
		recv:        make([][][]float64, rt.p),
		fusedOut:    make([]int64, rt.p),
		stagedBytes: make([]int64, rt.p),
	}
	maxNode := int32(-1)
	for pe := 0; pe < rt.p; pe++ {
		n := nodeOf(int32(pe))
		if n < 0 {
			return nil, fmt.Errorf("par: nodeOf(%d) = %d, want >= 0", pe, n)
		}
		a.nodeOf[pe] = n
		if n > maxNode {
			maxNode = n
		}
	}
	a.numNodes = int(maxNode) + 1
	a.leader = make([]int32, a.numNodes)
	for n := range a.leader {
		a.leader[n] = -1
	}
	for pe := rt.p - 1; pe >= 0; pe-- {
		a.leader[a.nodeOf[pe]] = int32(pe)
	}

	// Staging volume per ordered node pair: every word a PE sends to a
	// neighbor on another node crosses exactly one pair.
	type pair struct{ src, dst int32 }
	vol := make(map[pair]int)
	for pe := 0; pe < rt.p; pe++ {
		for k, nbr := range rt.neighbors[pe] {
			if a.nodeOf[pe] == a.nodeOf[nbr] {
				continue
			}
			vol[pair{a.nodeOf[pe], a.nodeOf[nbr]}] += len(rt.ws[pe].send[k])
		}
	}
	staging := make(map[pair][]float64, len(vol))
	for pr, words := range vol {
		staging[pr] = make([]float64, 0, words)
	}

	// Slot assignment: scan (srcPE ascending, neighbor index ascending)
	// so the layout is deterministic, appending each member buffer's
	// slot to its pair's staging buffer. The same scan emits the
	// source-node leader's gather copy and the destination PE's recv
	// slice, so the two sides agree on offsets by construction.
	for pe := 0; pe < rt.p; pe++ {
		a.recv[pe] = make([][]float64, len(rt.neighbors[pe]))
	}
	for pe := 0; pe < rt.p; pe++ {
		ws := &rt.ws[pe]
		for k, nbr := range rt.neighbors[pe] {
			if a.nodeOf[pe] == a.nodeOf[nbr] {
				// Same node: the destination keeps reading the source's
				// send buffer in place, exactly as the flat kernel does.
				a.recv[nbr][ws.rev[k]] = ws.send[k]
				continue
			}
			pr := pair{a.nodeOf[pe], a.nodeOf[nbr]}
			buf := staging[pr]
			slot := buf[len(buf) : len(buf)+len(ws.send[k])]
			staging[pr] = buf[:len(buf)+len(ws.send[k])]
			lead := a.leader[pr.src]
			a.gather[lead] = append(a.gather[lead], aggCopy{dst: slot, src: ws.send[k]})
			a.stagedBytes[lead] += 8 * int64(len(slot))
			a.recv[nbr][ws.rev[k]] = slot
		}
	}
	for pr := range vol {
		a.fusedOut[a.leader[pr.src]]++
	}
	return a, nil
}

// aggExchange is the fused-send phase the phased kernel runs between
// its two intra-kernel barriers when aggregation is enabled: the node
// leaders execute their gather copy lists, moving every member's
// completed send buffer into the inter-node staging areas. Non-leader
// PEs have empty lists and just cross the barriers. Timed into Comm —
// these copies are the price of the block reduction.
func (rt *peRuntime) aggExchange(pe int, a *aggState) {
	sp := obs.StartSpanPE("exchange", "par.smvp.gather", pe)
	start := time.Now()
	for _, op := range a.gather[pe] {
		copy(op.dst, op.src)
	}
	rt.tm.Comm[pe] += time.Since(start)
	rt.met.aggFused.Add(a.fusedOut[pe])
	rt.met.aggStagedBytes.Add(a.stagedBytes[pe])
	sp.End()
}
