package par

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fem"
	"repro/internal/geom"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/octree"
	"repro/internal/partition"
)

type fixture struct {
	m   *mesh.Mesh
	mat *material.Model
	sys *fem.System
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	cfg := octree.Config{Origin: geom.V(0, 0, 0), CubeSize: 1, Nx: 2, Ny: 2, Nz: 1, MaxDepth: 3}
	h := func(p geom.Vec3) float64 {
		return math.Max(0.12, 0.35*p.Dist(geom.V(1, 1, 0)))
	}
	tr, err := octree.Build(cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mesh.FromTree(tr)
	if err != nil {
		t.Fatal(err)
	}
	mat := material.SanFernando()
	mat.BasinCenter = geom.V(1, 1, 0)
	mat.BasinSemi = geom.V(0.8, 0.7, 0.6)
	sys, err := fem.Assemble(m, mat)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{m: m, mat: mat, sys: sys}
}

func (f *fixture) dist(t testing.TB, p int, method partition.Method) (*Dist, *partition.Profile) {
	t.Helper()
	pt, err := partition.PartitionMesh(f.m, p, method, 7)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := partition.Analyze(f.m, pt)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDist(f.m, f.mat, pt, pr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d, pr
}

// TestDistributedMatchesSequential is the core numerical validation:
// the distributed SMVP (local multiply + partial-sum exchange) must
// reproduce the sequential global SMVP for every partitioning method
// and PE count.
func TestDistributedMatchesSequential(t *testing.T) {
	f := newFixture(t)
	n3 := 3 * f.m.NumNodes()
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, n3)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n3)
	f.sys.K.MulVec(want, x)

	for _, method := range []partition.Method{partition.RCB, partition.Random, partition.StripesZ} {
		for _, p := range []int{1, 2, 4, 8, 13} {
			d, _ := f.dist(t, p, method)
			got := make([]float64, n3)
			if _, err := d.SMVP(got, x); err != nil {
				t.Fatalf("%v/p=%d: %v", method, p, err)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("%v/p=%d: y[%d] = %g, want %g", method, p, i, got[i], want[i])
				}
			}
		}
	}
}

// TestLocalSumEqualsGlobal checks the assembly identity: scattering the
// per-PE local matrices back to global numbering and summing must
// reproduce the global stiffness exactly (same element contributions,
// same additions, just grouped differently).
func TestLocalSumEqualsGlobal(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 6, partition.RCB)
	n := f.m.NumNodes()
	sum := make(map[[2]int32][9]float64)
	for pe := 0; pe < d.P; pe++ {
		k := d.K[pe]
		for li := 0; li < k.N; li++ {
			gi := d.Nodes[pe][li]
			for idx := k.RowOff[li]; idx < k.RowOff[li+1]; idx++ {
				gj := d.Nodes[pe][k.Col[idx]]
				key := [2]int32{gi, gj}
				blk := sum[key]
				for p := 0; p < 9; p++ {
					blk[p] += k.Val[9*idx+int64(p)]
				}
				sum[key] = blk
			}
		}
	}
	// Compare against the global matrix.
	for i := 0; i < n; i++ {
		for idx := f.sys.K.RowOff[i]; idx < f.sys.K.RowOff[i+1]; idx++ {
			j := f.sys.K.Col[idx]
			got := sum[[2]int32{int32(i), j}]
			for p := 0; p < 9; p++ {
				want := f.sys.K.Val[9*idx+int64(p)]
				if math.Abs(got[p]-want) > 1e-10*(1+math.Abs(want)) {
					t.Fatalf("block (%d,%d)[%d]: sum of locals %g, global %g", i, j, p, got[p], want)
				}
			}
		}
	}
	// And no local block outside the global pattern with nonzero sum.
	for key, blk := range sum {
		if f.sys.K.BlockIndex(key[0], key[1]) < 0 {
			for _, v := range blk {
				if v != 0 {
					t.Fatalf("local-only block (%d,%d) nonzero", key[0], key[1])
				}
			}
		}
	}
}

func TestExchangeListsSymmetric(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 8, partition.RCB)
	for pe := 0; pe < d.P; pe++ {
		for k, nbr := range d.Neighbors[pe] {
			rev := indexOf(d.Neighbors[nbr], int32(pe))
			if rev < 0 {
				t.Fatalf("PE %d lists %d but not vice versa", pe, nbr)
			}
			a, b := d.Shared[pe][k], d.Shared[nbr][rev]
			if len(a) != len(b) {
				t.Fatalf("shared list lengths differ: %d vs %d", len(a), len(b))
			}
			// Same global nodes in the same order on both sides.
			for s := range a {
				ga := d.Nodes[pe][a[s]]
				gb := d.Nodes[nbr][b[s]]
				if ga != gb {
					t.Fatalf("shared order mismatch at %d: %d vs %d", s, ga, gb)
				}
			}
		}
	}
}

func TestNeighborsMatchProfile(t *testing.T) {
	f := newFixture(t)
	d, pr := f.dist(t, 8, partition.RCB)
	for pe := 0; pe < d.P; pe++ {
		cnt := 0
		for j := 0; j < pr.P; j++ {
			if j != pe && pr.Msg[pe][j] > 0 {
				cnt++
			}
		}
		if cnt != len(d.Neighbors[pe]) {
			t.Errorf("PE %d: %d neighbors, profile says %d", pe, len(d.Neighbors[pe]), cnt)
		}
		// Exchange volume agrees with the profile message matrix.
		for k, nbr := range d.Neighbors[pe] {
			words := int64(3 * len(d.Shared[pe][k]))
			if words != pr.Msg[pe][nbr] {
				t.Errorf("PE %d->%d: %d words, profile %d", pe, nbr, words, pr.Msg[pe][nbr])
			}
		}
	}
}

func TestOwnersCoverAllNodes(t *testing.T) {
	f := newFixture(t)
	d, pr := f.dist(t, 5, partition.Linear)
	for v := 0; v < d.GlobalNodes; v++ {
		owner := d.Owner[v]
		found := false
		for _, pe := range pr.NodePEs[v] {
			if pe == owner {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d owned by non-resident PE %d", v, owner)
		}
	}
}

func TestSMVPErrors(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 2, partition.RCB)
	y := make([]float64, 3*d.GlobalNodes)
	if _, err := d.SMVP(y, make([]float64, 5)); err == nil {
		t.Error("short x accepted")
	}
	if _, err := d.SMVP(make([]float64, 5), make([]float64, 3*d.GlobalNodes)); err == nil {
		t.Error("short y accepted")
	}
}

func TestTimingPopulated(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 4, partition.RCB)
	x := make([]float64, 3*d.GlobalNodes)
	y := make([]float64, 3*d.GlobalNodes)
	for i := range x {
		x[i] = 1
	}
	tm, err := d.SMVP(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if tm.MaxCompute() <= 0 {
		t.Error("no compute time recorded")
	}
	if tm.MaxComm() < 0 {
		t.Error("negative comm time")
	}
	if len(tm.Compute) != 4 || len(tm.Comm) != 4 {
		t.Error("wrong timing lengths")
	}
}

func TestFlopsPerPE(t *testing.T) {
	f := newFixture(t)
	d, pr := f.dist(t, 4, partition.RCB)
	fl := d.FlopsPerPE()
	for pe, v := range fl {
		if v <= 0 {
			t.Errorf("PE %d: flops %d", pe, v)
		}
		// Element-based local flops never exceed the residency-based F
		// of the profile (the paper's accounting).
		if v > pr.F[pe] {
			t.Errorf("PE %d: element flops %d > residency F %d", pe, v, pr.F[pe])
		}
	}
}

func TestMeasureTf(t *testing.T) {
	f := newFixture(t)
	tf := MeasureTf(f.sys.K, 3)
	if tf <= 0 || tf > 1e-5 {
		t.Errorf("implausible Tf = %g s/flop", tf)
	}
	if tf2 := MeasureTf(f.sys.K, 0); tf2 <= 0 {
		t.Error("iters=0 not defaulted")
	}
}
