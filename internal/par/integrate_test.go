package par

import (
	"math"
	"testing"

	"repro/internal/fem"
	"repro/internal/geom"
	"repro/internal/partition"
	"repro/internal/solver"
)

func distSim(t *testing.T, f *fixture, p int, ab *fem.AbsorbingDampers) (*DistSim, *Dist) {
	t.Helper()
	d, _ := f.dist(t, p, partition.RCB)
	s, err := NewDistSim(d, f.sys.MassNode, ab)
	if err != nil {
		t.Fatal(err)
	}
	return s, d
}

func simCfg(f *fixture, steps int) fem.SimConfig {
	return fem.SimConfig{
		Dt:    f.sys.StableDt(0.5),
		Steps: steps,
		Source: fem.PointSource{
			Location:  geom.V(1, 1, 0.2),
			Direction: geom.V(0, 0, 1),
			Amplitude: 5,
			PeakFreq:  2,
			Delay:     0.5,
		},
	}
}

// TestDistributedRunMatchesSequential is the flagship validation: the
// distributed application produces the same seismograms as the
// sequential integrator. Exchange summation order differs between the
// two, so agreement is to roundoff accumulated over the run, not
// bit-for-bit.
func TestDistributedRunMatchesSequential(t *testing.T) {
	f := newFixture(t)
	cfg := simCfg(f, 250)
	cfg.Receivers = []int32{
		f.sys.NearestNode(geom.V(1, 1, 0)),
		f.sys.NearestNode(geom.V(0.3, 1.7, 0.4)),
	}
	seq, err := f.sys.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 4, 9} {
		s, _ := distSim(t, f, p, nil)
		dist, err := s.Run(f.m.Coords, cfg)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for r := range cfg.Receivers {
			var peak float64
			for _, v := range seq.Seismograms[r] {
				if v > peak {
					peak = v
				}
			}
			for step := range seq.Seismograms[r] {
				a, b := seq.Seismograms[r][step], dist.Seismograms[r][step]
				if math.Abs(a-b) > 1e-6*(1+peak) {
					t.Fatalf("p=%d receiver %d step %d: seq %g vs dist %g",
						p, r, step, a, b)
				}
			}
		}
		if dist.FlopsSMVP <= 0 || dist.ComputeSeconds <= 0 {
			t.Errorf("p=%d: missing accounting: %+v", p, dist)
		}
		if p > 1 && dist.ExchangeSeconds <= 0 {
			t.Errorf("p=%d: no exchange time recorded", p)
		}
	}
}

// TestDistributedRunWithAbsorbers checks the distributed absorber path
// against the sequential one.
func TestDistributedRunWithAbsorbers(t *testing.T) {
	f := newFixture(t)
	ab, err := fem.BuildAbsorbingDampers(f.sys, f.mat, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := simCfg(f, 200)
	cfg.Absorbers = ab
	cfg.Receivers = []int32{f.sys.NearestNode(geom.V(1, 1, 0.5))}
	seq, err := f.sys.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := distSim(t, f, 6, ab)
	dist, err := s.Run(f.m.Coords, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var peak float64
	for _, v := range seq.Seismograms[0] {
		if v > peak {
			peak = v
		}
	}
	for step := range seq.Seismograms[0] {
		a, b := seq.Seismograms[0][step], dist.Seismograms[0][step]
		if math.Abs(a-b) > 1e-6*(1+peak) {
			t.Fatalf("step %d: seq %g vs dist %g", step, a, b)
		}
	}
}

func TestDistSimErrors(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 2, partition.RCB)
	if _, err := NewDistSim(d, make([]float64, 3), nil); err == nil {
		t.Error("short mass vector accepted")
	}
	badMass := make([]float64, d.GlobalNodes)
	if _, err := NewDistSim(d, badMass, nil); err == nil {
		t.Error("zero mass accepted")
	}
	s, _ := distSim(t, f, 2, nil)
	if _, err := s.Run(f.m.Coords, fem.SimConfig{Dt: 0, Steps: 1}); err == nil {
		t.Error("zero dt accepted")
	}
	cfg := simCfg(f, 5)
	cfg.Receivers = []int32{-1}
	if _, err := s.Run(f.m.Coords, cfg); err == nil {
		t.Error("bad receiver accepted")
	}
	cfg = simCfg(f, 5)
	ab, err := fem.BuildAbsorbingDampers(f.sys, f.mat, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Absorbers = ab
	if _, err := s.Run(f.m.Coords, cfg); err == nil {
		t.Error("absorbers in Run without NewDistSim setup accepted")
	}
	// Mismatched absorber length in setup.
	bad := &fem.AbsorbingDampers{Blocks: make([][9]float64, 2)}
	if _, err := NewDistSim(d, f.sys.MassNode, bad); err == nil {
		t.Error("short absorber table accepted")
	}
}

// TestReplicaConsistency: after a run, the owner-recorded displacement
// of shared nodes must match what any other replica holds. We probe it
// by running two configurations of receivers on both owner and
// non-owner PEs... here approximated by running twice with different
// partitions and comparing seismograms (replicas drift only by
// roundoff).
func TestReplicaConsistency(t *testing.T) {
	f := newFixture(t)
	cfg := simCfg(f, 150)
	cfg.Receivers = []int32{f.sys.NearestNode(geom.V(1, 1, 0.3))}
	s4, _ := distSim(t, f, 4, nil)
	s8, _ := distSim(t, f, 8, nil)
	r4, err := s4.Run(f.m.Coords, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := s8.Run(f.m.Coords, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var peak float64
	for _, v := range r4.Seismograms[0] {
		if v > peak {
			peak = v
		}
	}
	for step := range r4.Seismograms[0] {
		a, b := r4.Seismograms[0][step], r8.Seismograms[0][step]
		if math.Abs(a-b) > 1e-6*(1+peak) {
			t.Fatalf("step %d: p=4 %g vs p=8 %g", step, a, b)
		}
	}
}

// TestDistributedCG solves the shifted system with CG where every
// operator application is a distributed SMVP on goroutine PEs, and
// checks the solution against the sequential operator's CG.
func TestDistributedCG(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 6, partition.RCB)
	distOp := Operator{D: d, Shift: 20, MassNode: f.sys.MassNode}
	seqOp := solver.Shifted{K: f.sys.K, MassNode: f.sys.MassNode, Sigma: 20}
	n := distOp.Dim()
	if n != seqOp.Dim() {
		t.Fatal("dimension mismatch")
	}
	b := make([]float64, n)
	b[5] = 1e2
	b[n-4] = -3e1

	xd := make([]float64, n)
	resD, err := solver.CG(distOp, b, xd, solver.Config{MaxIter: 6 * n, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !resD.Converged {
		t.Fatalf("distributed CG did not converge: %+v", resD)
	}
	xs := make([]float64, n)
	resS, err := solver.CG(seqOp, b, xs, solver.Config{MaxIter: 6 * n, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !resS.Converged {
		t.Fatal("sequential CG did not converge")
	}
	var scale float64
	for i := range xs {
		if v := math.Abs(xs[i]); v > scale {
			scale = v
		}
	}
	for i := range xs {
		if math.Abs(xd[i]-xs[i]) > 1e-5*(1+scale) {
			t.Fatalf("solutions differ at %d: %g vs %g", i, xd[i], xs[i])
		}
	}
	// Iteration counts should be essentially identical (same operator
	// up to roundoff).
	if diff := resD.Iterations - resS.Iterations; diff < -3 || diff > 3 {
		t.Errorf("iteration counts diverge: dist %d vs seq %d", resD.Iterations, resS.Iterations)
	}
}
