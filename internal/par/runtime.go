package par

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// This file is the persistent-PE execution engine. The paper's workload
// is one kernel — y = Kx — executed thousands of times, so the runtime
// is built around steady-state reuse: the PE goroutines are created
// once per Dist and parked on a generation barrier between kernels, and
// every buffer a kernel needs (local vectors, per-neighbor exchange
// buffers, the reverse-neighbor index, the Timing report) is allocated
// once at construction. After the first call, a distributed SMVP
// performs zero heap allocations and zero goroutine spawns; see
// docs/PERFORMANCE.md for the design rationale and the reuse rules.

// errClosed is returned by kernels invoked after Dist.Close.
var errClosed = errors.New("par: Dist has been closed")

// ErrPoisoned is wrapped by every error a faulted Dist returns: once a
// PE has panicked mid-kernel, the runtime's workspaces may hold
// partially written exchange buffers, so the Dist refuses all further
// kernels rather than computing on them. Callers detect the sticky
// state with errors.Is(err, ErrPoisoned) and must build a new Dist.
var ErrPoisoned = errors.New("par: Dist poisoned by an earlier PE fault")

// PEFaultError is the concrete error a Dist returns for the kernel in
// which a PE panicked (and, sticky, for every kernel after it). It
// unwraps to ErrPoisoned, so existing errors.Is checks are unchanged;
// the recovery layer additionally inspects PE and Val with errors.As to
// decide how to rebuild — in particular a Val of *fault.Killed means
// the PE is permanently lost and the run must shrink onto the
// survivors rather than retry at full width.
type PEFaultError struct {
	// PE and Iter locate the first recorded panic: the PE goroutine that
	// died and the injector's kernel-invocation index (0 when no
	// injector was armed).
	PE   int
	Iter int64
	// Val is the recovered panic value of the first fault.
	Val any
	// Faults counts all PE panics recovered during the kernel.
	Faults int
}

func (e *PEFaultError) Error() string {
	return fmt.Sprintf("%v: PE %d panicked during kernel %d: %v (%d PE fault(s); build a new Dist)",
		ErrPoisoned, e.PE, e.Iter, e.Val, e.Faults)
}

// Unwrap makes errors.Is(err, ErrPoisoned) hold.
func (e *PEFaultError) Unwrap() error { return ErrPoisoned }

// barrier is a reusable generation (sense-reversing) barrier for n
// parties: await blocks until all n have arrived, releases them, and
// resets for the next round. The mutex/cond pair both parks waiters
// (PEs may outnumber OS threads by far) and provides the happens-before
// edge that lets PEs read each other's buffers after a crossing without
// any further synchronization.
type barrier struct {
	mu     sync.Mutex
	cond   sync.Cond
	n      int
	count  int
	gen    uint64
	broken bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond.L = &b.mu
	return b
}

// await arrives at the barrier and blocks until the round completes.
// It performs no heap allocations. A poisoned barrier never blocks:
// current waiters are released and later arrivals pass straight
// through, which is what lets the runtime drain a kernel whose PE died
// before reaching the phase synchronization.
//
// The return value reports whether the round completed normally. A
// false return means the caller was released by poison, NOT by the
// arrival of all parties — the barrier made no visibility guarantee, so
// kernel bodies must bail out instead of touching shared buffers whose
// writers may still be mid-phase. (The output is garbage either way;
// the coordinator turns the recorded fault into ErrPoisoned.)
func (b *barrier) await() bool {
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		return false
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return true
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	ok := !b.broken
	b.mu.Unlock()
	return ok
}

// poison permanently breaks the barrier, releasing every waiter.
// Idempotent and safe to call concurrently with await.
func (b *barrier) poison() {
	b.mu.Lock()
	b.broken = true
	b.count = 0
	b.gen++
	b.mu.Unlock()
	b.cond.Broadcast()
}

// peWorkspace is the preallocated private state of one persistent PE.
// Buffer ownership rule: a PE writes only its own x/y/send buffers;
// neighbors read send[k] strictly after a synchronization point (the
// phase barrier in the phased kernel and integrator, the ready channel
// in the overlapped kernel).
type peWorkspace struct {
	// x, y are the PE's local vectors (3·len(nodes) scalars).
	x, y []float64
	// send[k] carries this PE's partial sums for neighbor k
	// (3·len(shared[k]) scalars). Receivers read it in place — the
	// runtime never copies a message twice.
	send [][]float64
	// rev[k] is this PE's position in neighbor k's neighbor list, so
	// the receive side can locate the buffer destined for it without a
	// per-call binary search.
	rev []int
	// ready[k] is signaled (capacity-1, preallocated) by neighbor k
	// when its buffer for this PE is complete; only the overlapped
	// kernel uses it, the phased paths synchronize on the barrier.
	ready []chan struct{}
}

// peRuntime owns one Dist's long-lived PE goroutines, their
// workspaces, and the dispatch machinery. PE goroutines reference only
// the runtime — never the Dist — so a finalizer on the Dist can shut
// the runtime down when callers forget Close.
type peRuntime struct {
	p int

	// Topology, shared (slice headers) with the owning Dist.
	nodes     [][]int32
	k         []*sparse.BCSR
	neighbors [][]int32
	shared    [][][]int32
	owner     []int32
	boundary  [][]int32
	interior  [][]int32

	met distMetrics
	ws  []peWorkspace

	// Dispatch: run publishes body under the dispatch mutex, crosses
	// start (p+1 parties) to release the PEs, and crosses done when
	// they finish. The mutex serializes kernels, which is the Dist
	// concurrency contract: concurrent calls are safe and execute one
	// at a time.
	dispatch sync.Mutex
	start    *barrier
	done     *barrier
	// bar separates intra-kernel phases (post | recv) among the p PEs.
	bar  *barrier
	body func(pe int)

	// In-flight kernel arguments and the reused Timing report. tm is
	// overwritten by the next kernel invocation on this Dist.
	x, y []float64
	tm   Timing

	// fusedDot arms the phased body's fused dot accumulation for the
	// in-flight kernel: each PE folds x·y over its owned nodes into its
	// dotSlots entry during the gather phase. Written under the dispatch
	// mutex, read by PEs between the barriers — same discipline as x/y.
	fusedDot bool
	// dotSlots holds one partial dot per PE at stride dotStride (a full
	// cache line), so concurrent PE writes never share a line.
	// Preallocated: the fused kernel stays at zero allocations per call.
	dotSlots []float64

	// Kernel bodies, bound once so dispatching allocates nothing.
	phasedBody  func(pe int)
	overlapBody func(pe int)

	// fi is the armed fault injector, nil when disarmed (the production
	// default: every hook site is then a single nil check). iter is the
	// injector's kernel index for the in-flight dispatch. Both are
	// written under the dispatch mutex and read by PEs strictly between
	// the start and done barriers, so no further synchronization is
	// needed — the same discipline as body/x/y.
	fi   *fault.Injector
	iter int64

	// agg is the installed two-level exchange plan, nil for the flat
	// exchange (the default). Same discipline as fi: swapped under the
	// dispatch mutex, read by PEs between the barriers. See agg.go.
	agg *aggState

	// Panic containment: runBody records recovered PE panics under
	// faultMu; the coordinator collects them after the done barrier and
	// poisons the Dist (sticky, guarded by dispatch).
	faultMu  sync.Mutex
	faults   []peFault
	poisoned error // guarded by dispatch

	closeOnce sync.Once
	closed    bool // guarded by dispatch
}

// peFault records one recovered PE panic.
type peFault struct {
	pe   int
	iter int64
	val  any
}

// newPERuntime builds the workspaces from the Dist's exchange lists and
// starts the persistent PE goroutines.
func newPERuntime(d *Dist) *peRuntime {
	rt := &peRuntime{
		p:         d.P,
		nodes:     d.Nodes,
		k:         d.K,
		neighbors: d.Neighbors,
		shared:    d.Shared,
		owner:     d.Owner,
		boundary:  d.Boundary,
		interior:  d.Interior,
		met:       newDistMetrics(d.P),
		ws:        make([]peWorkspace, d.P),
		dotSlots:  make([]float64, d.P*dotStride),
		start:     newBarrier(d.P + 1),
		done:      newBarrier(d.P + 1),
		bar:       newBarrier(d.P),
		tm: Timing{
			Compute: make([]time.Duration, d.P),
			Comm:    make([]time.Duration, d.P),
		},
	}
	for pe := 0; pe < rt.p; pe++ {
		w := &rt.ws[pe]
		n := len(rt.nodes[pe])
		w.x = make([]float64, 3*n)
		w.y = make([]float64, 3*n)
		w.send = make([][]float64, len(rt.shared[pe]))
		for k, locals := range rt.shared[pe] {
			w.send[k] = make([]float64, 3*len(locals))
		}
		w.rev = make([]int, len(rt.neighbors[pe]))
		w.ready = make([]chan struct{}, len(rt.neighbors[pe]))
		for k, nbr := range rt.neighbors[pe] {
			w.rev[k] = indexOf(rt.neighbors[nbr], int32(pe))
			w.ready[k] = make(chan struct{}, 1)
		}
	}
	rt.phasedBody = rt.phasedPE
	rt.overlapBody = rt.overlappedPE
	for pe := 0; pe < rt.p; pe++ {
		go rt.peLoop(pe)
	}
	return rt
}

// peLoop is one persistent PE: park on the start barrier, run the
// published body, park on the done barrier, repeat. A nil body is the
// shutdown signal.
func (rt *peRuntime) peLoop(pe int) {
	for {
		rt.start.await()
		body := rt.body
		if body == nil {
			rt.done.await()
			return
		}
		rt.runBody(pe, body)
		rt.done.await()
	}
}

// runBody executes one kernel body with panic containment. A panic
// (injected or genuine) is recovered on the PE goroutine itself, so the
// PE survives to park again and Close keeps working; the recovered
// value is recorded for the coordinator, the phase barrier is poisoned
// so peers stuck at the intra-kernel synchronization drain instead of
// deadlocking, and any overlapped-kernel receivers waiting on this PE's
// ready channels are released. The kernel's output is garbage after a
// fault — the coordinator turns it into an error and poisons the Dist.
func (rt *peRuntime) runBody(pe int, body func(pe int)) {
	defer func() {
		if r := recover(); r != nil {
			rt.faultMu.Lock()
			rt.faults = append(rt.faults, peFault{pe: pe, iter: rt.iter, val: r})
			rt.faultMu.Unlock()
			obs.RecordFlight(obs.FlightFault, "par.pe.panic", pe, rt.iter, 0)
			rt.bar.poison()
			obs.RecordFlight(obs.FlightFault, "par.barrier.poison", pe, rt.iter, 0)
			rt.releaseReady(pe)
		}
	}()
	body(pe)
}

// releaseReady satisfies every receiver that might be blocked waiting
// for a ready signal from the dead PE. The capacity-1 channels make the
// fill idempotent: a select-default send either delivers the one token
// a receiver is waiting for or no-ops on an already-signaled channel.
// Any stale token this leaves behind is unreachable — the Dist is
// poisoned before another kernel can run.
func (rt *peRuntime) releaseReady(pe int) {
	ws := &rt.ws[pe]
	for k, nbr := range rt.neighbors[pe] {
		select {
		case rt.ws[nbr].ready[ws.rev[k]] <- struct{}{}:
		default:
		}
	}
}

// collectFaults drains the panics recovered during the last kernel and
// converts them into the Dist's sticky poison error. Called by the
// coordinator under the dispatch mutex, after the done barrier.
func (rt *peRuntime) collectFaults() error {
	rt.faultMu.Lock()
	faults := rt.faults
	rt.faults = nil
	rt.faultMu.Unlock()
	if len(faults) == 0 {
		return nil
	}
	f := faults[0]
	err := &PEFaultError{PE: f.pe, Iter: f.iter, Val: f.val, Faults: len(faults)}
	rt.poisoned = err
	// The Dist is now permanently poisoned: dump the flight ring so the
	// spans and fault events leading up to the failure survive it.
	obs.DumpFlight("pe fault poisoned dist")
	return err
}

// run executes body(0..p-1) on the persistent PEs and returns once all
// have finished. The done barrier doubles as the buffer-reuse fence:
// no PE can be past it while another still reads a send buffer, so the
// next kernel may overwrite every workspace.
func (rt *peRuntime) run(body func(pe int)) error {
	rt.dispatch.Lock()
	defer rt.dispatch.Unlock()
	if err := rt.usable(); err != nil {
		return err
	}
	if rt.fi != nil {
		rt.iter = rt.fi.BeginKernel()
	}
	rt.body = body
	rt.start.await()
	rt.done.await()
	rt.body = nil
	return rt.collectFaults()
}

// runKernel runs an SMVP body against the global vectors x and y and
// returns the runtime's reused Timing.
func (rt *peRuntime) runKernel(body func(pe int), y, x []float64) (*Timing, error) {
	rt.dispatch.Lock()
	defer rt.dispatch.Unlock()
	if err := rt.usable(); err != nil {
		return nil, err
	}
	if rt.fi != nil {
		rt.iter = rt.fi.BeginKernel()
	}
	rt.x, rt.y = x, y
	rt.body = body
	rt.start.await()
	rt.done.await()
	rt.body = nil
	rt.x, rt.y = nil, nil
	if err := rt.collectFaults(); err != nil {
		return nil, err
	}
	return &rt.tm, nil
}

// dotStride spaces the per-PE dot slots one cache line (8 float64)
// apart so the concurrent slot writes of the fused kernel never share
// a line.
const dotStride = 8

// runKernelDot runs an SMVP body with the fused dot armed and returns
// the x·y dot alongside the Timing. The per-PE partials are summed in
// ascending PE order, so the reduction is deterministic for a given
// partition — repeated calls yield bit-identical dots.
func (rt *peRuntime) runKernelDot(body func(pe int), y, x []float64) (float64, *Timing, error) {
	rt.dispatch.Lock()
	defer rt.dispatch.Unlock()
	if err := rt.usable(); err != nil {
		return 0, nil, err
	}
	if rt.fi != nil {
		rt.iter = rt.fi.BeginKernel()
	}
	rt.x, rt.y = x, y
	rt.fusedDot = true
	rt.body = body
	rt.start.await()
	rt.done.await()
	rt.body = nil
	rt.x, rt.y = nil, nil
	rt.fusedDot = false
	if err := rt.collectFaults(); err != nil {
		return 0, nil, err
	}
	var d float64
	for pe := 0; pe < rt.p; pe++ {
		d += rt.dotSlots[pe*dotStride]
	}
	return d, &rt.tm, nil
}

// usable reports whether kernels may be dispatched: not closed, not
// poisoned. Called under the dispatch mutex.
func (rt *peRuntime) usable() error {
	if rt.closed {
		return errClosed
	}
	if rt.poisoned != nil {
		return rt.poisoned
	}
	return nil
}

// arm installs (or with nil removes) the fault injector. Called under
// no lock by Dist.InjectFaults; takes the dispatch mutex so the swap
// cannot overlap an in-flight kernel.
func (rt *peRuntime) arm(in *fault.Injector) error {
	rt.dispatch.Lock()
	defer rt.dispatch.Unlock()
	if err := rt.usable(); err != nil {
		return err
	}
	rt.fi = in
	return nil
}

// close shuts the PE goroutines down; idempotent.
func (rt *peRuntime) close() {
	rt.closeOnce.Do(func() {
		rt.dispatch.Lock()
		defer rt.dispatch.Unlock()
		rt.closed = true
		rt.body = nil
		rt.start.await() // releases every PE with the nil (shutdown) body
		rt.done.await()
	})
}
