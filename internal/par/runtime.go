package par

import (
	"errors"
	"sync"
	"time"

	"repro/internal/sparse"
)

// This file is the persistent-PE execution engine. The paper's workload
// is one kernel — y = Kx — executed thousands of times, so the runtime
// is built around steady-state reuse: the PE goroutines are created
// once per Dist and parked on a generation barrier between kernels, and
// every buffer a kernel needs (local vectors, per-neighbor exchange
// buffers, the reverse-neighbor index, the Timing report) is allocated
// once at construction. After the first call, a distributed SMVP
// performs zero heap allocations and zero goroutine spawns; see
// docs/PERFORMANCE.md for the design rationale and the reuse rules.

// errClosed is returned by kernels invoked after Dist.Close.
var errClosed = errors.New("par: Dist has been closed")

// barrier is a reusable generation (sense-reversing) barrier for n
// parties: await blocks until all n have arrived, releases them, and
// resets for the next round. The mutex/cond pair both parks waiters
// (PEs may outnumber OS threads by far) and provides the happens-before
// edge that lets PEs read each other's buffers after a crossing without
// any further synchronization.
type barrier struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond.L = &b.mu
	return b
}

// await arrives at the barrier and blocks until the round completes.
// It performs no heap allocations.
func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// peWorkspace is the preallocated private state of one persistent PE.
// Buffer ownership rule: a PE writes only its own x/y/send buffers;
// neighbors read send[k] strictly after a synchronization point (the
// phase barrier in the phased kernel and integrator, the ready channel
// in the overlapped kernel).
type peWorkspace struct {
	// x, y are the PE's local vectors (3·len(nodes) scalars).
	x, y []float64
	// send[k] carries this PE's partial sums for neighbor k
	// (3·len(shared[k]) scalars). Receivers read it in place — the
	// runtime never copies a message twice.
	send [][]float64
	// rev[k] is this PE's position in neighbor k's neighbor list, so
	// the receive side can locate the buffer destined for it without a
	// per-call binary search.
	rev []int
	// ready[k] is signaled (capacity-1, preallocated) by neighbor k
	// when its buffer for this PE is complete; only the overlapped
	// kernel uses it, the phased paths synchronize on the barrier.
	ready []chan struct{}
}

// peRuntime owns one Dist's long-lived PE goroutines, their
// workspaces, and the dispatch machinery. PE goroutines reference only
// the runtime — never the Dist — so a finalizer on the Dist can shut
// the runtime down when callers forget Close.
type peRuntime struct {
	p int

	// Topology, shared (slice headers) with the owning Dist.
	nodes     [][]int32
	k         []*sparse.BCSR
	neighbors [][]int32
	shared    [][][]int32
	owner     []int32
	boundary  [][]int32
	interior  [][]int32

	met distMetrics
	ws  []peWorkspace

	// Dispatch: run publishes body under the dispatch mutex, crosses
	// start (p+1 parties) to release the PEs, and crosses done when
	// they finish. The mutex serializes kernels, which is the Dist
	// concurrency contract: concurrent calls are safe and execute one
	// at a time.
	dispatch sync.Mutex
	start    *barrier
	done     *barrier
	// bar separates intra-kernel phases (post | recv) among the p PEs.
	bar  *barrier
	body func(pe int)

	// In-flight kernel arguments and the reused Timing report. tm is
	// overwritten by the next kernel invocation on this Dist.
	x, y []float64
	tm   Timing

	// Kernel bodies, bound once so dispatching allocates nothing.
	phasedBody  func(pe int)
	overlapBody func(pe int)

	closeOnce sync.Once
	closed    bool // guarded by dispatch
}

// newPERuntime builds the workspaces from the Dist's exchange lists and
// starts the persistent PE goroutines.
func newPERuntime(d *Dist) *peRuntime {
	rt := &peRuntime{
		p:         d.P,
		nodes:     d.Nodes,
		k:         d.K,
		neighbors: d.Neighbors,
		shared:    d.Shared,
		owner:     d.Owner,
		boundary:  d.Boundary,
		interior:  d.Interior,
		met:       newDistMetrics(d.P),
		ws:        make([]peWorkspace, d.P),
		start:     newBarrier(d.P + 1),
		done:      newBarrier(d.P + 1),
		bar:       newBarrier(d.P),
		tm: Timing{
			Compute: make([]time.Duration, d.P),
			Comm:    make([]time.Duration, d.P),
		},
	}
	for pe := 0; pe < rt.p; pe++ {
		w := &rt.ws[pe]
		n := len(rt.nodes[pe])
		w.x = make([]float64, 3*n)
		w.y = make([]float64, 3*n)
		w.send = make([][]float64, len(rt.shared[pe]))
		for k, locals := range rt.shared[pe] {
			w.send[k] = make([]float64, 3*len(locals))
		}
		w.rev = make([]int, len(rt.neighbors[pe]))
		w.ready = make([]chan struct{}, len(rt.neighbors[pe]))
		for k, nbr := range rt.neighbors[pe] {
			w.rev[k] = indexOf(rt.neighbors[nbr], int32(pe))
			w.ready[k] = make(chan struct{}, 1)
		}
	}
	rt.phasedBody = rt.phasedPE
	rt.overlapBody = rt.overlappedPE
	for pe := 0; pe < rt.p; pe++ {
		go rt.peLoop(pe)
	}
	return rt
}

// peLoop is one persistent PE: park on the start barrier, run the
// published body, park on the done barrier, repeat. A nil body is the
// shutdown signal.
func (rt *peRuntime) peLoop(pe int) {
	for {
		rt.start.await()
		body := rt.body
		if body == nil {
			rt.done.await()
			return
		}
		body(pe)
		rt.done.await()
	}
}

// run executes body(0..p-1) on the persistent PEs and returns once all
// have finished. The done barrier doubles as the buffer-reuse fence:
// no PE can be past it while another still reads a send buffer, so the
// next kernel may overwrite every workspace.
func (rt *peRuntime) run(body func(pe int)) error {
	rt.dispatch.Lock()
	defer rt.dispatch.Unlock()
	if rt.closed {
		return errClosed
	}
	rt.body = body
	rt.start.await()
	rt.done.await()
	rt.body = nil
	return nil
}

// runKernel runs an SMVP body against the global vectors x and y and
// returns the runtime's reused Timing.
func (rt *peRuntime) runKernel(body func(pe int), y, x []float64) (*Timing, error) {
	rt.dispatch.Lock()
	defer rt.dispatch.Unlock()
	if rt.closed {
		return nil, errClosed
	}
	rt.x, rt.y = x, y
	rt.body = body
	rt.start.await()
	rt.done.await()
	rt.body = nil
	rt.x, rt.y = nil, nil
	return &rt.tm, nil
}

// close shuts the PE goroutines down; idempotent.
func (rt *peRuntime) close() {
	rt.closeOnce.Do(func() {
		rt.dispatch.Lock()
		defer rt.dispatch.Unlock()
		rt.closed = true
		rt.body = nil
		rt.start.await() // releases every PE with the nil (shutdown) body
		rt.done.await()
	})
}
