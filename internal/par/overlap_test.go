package par

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/partition"
)

func TestOverlappedMatchesSequential(t *testing.T) {
	f := newFixture(t)
	n3 := 3 * f.m.NumNodes()
	rng := rand.New(rand.NewSource(8))
	x := make([]float64, n3)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n3)
	f.sys.K.MulVec(want, x)

	for _, p := range []int{1, 2, 4, 8, 13} {
		d, _ := f.dist(t, p, partition.RCB)
		got := make([]float64, n3)
		tm, err := d.SMVPOverlapped(got, x)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("p=%d: y[%d] = %g, want %g", p, i, got[i], want[i])
			}
		}
		if tm.MaxCompute() <= 0 {
			t.Errorf("p=%d: no compute time", p)
		}
	}
}

func TestOverlappedMatchesPhased(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 8, partition.Multilevel)
	n3 := 3 * f.m.NumNodes()
	x := make([]float64, n3)
	for i := range x {
		x[i] = math.Cos(float64(i) * 0.1)
	}
	a := make([]float64, n3)
	b := make([]float64, n3)
	if _, err := d.SMVP(a, x); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SMVPOverlapped(b, x); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(a[i])) {
			t.Fatalf("phased/overlapped mismatch at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestBoundaryInteriorPartition(t *testing.T) {
	f := newFixture(t)
	d, pr := f.dist(t, 8, partition.RCB)
	for pe := 0; pe < d.P; pe++ {
		// Boundary ∪ Interior = all local rows, disjoint.
		seen := make(map[int32]bool)
		for _, l := range d.Boundary[pe] {
			seen[l] = true
		}
		for _, l := range d.Interior[pe] {
			if seen[l] {
				t.Fatalf("PE %d: row %d both boundary and interior", pe, l)
			}
			seen[l] = true
		}
		if len(seen) != len(d.Nodes[pe]) {
			t.Fatalf("PE %d: %d rows classified, %d local nodes", pe, len(seen), len(d.Nodes[pe]))
		}
		// Every boundary row's global node is shared per the profile.
		for _, l := range d.Boundary[pe] {
			g := d.Nodes[pe][l]
			if len(pr.NodePEs[g]) < 2 {
				t.Fatalf("PE %d: boundary row %d (node %d) not shared", pe, l, g)
			}
		}
	}
	fr := d.BoundaryFraction()
	for pe, v := range fr {
		if v <= 0 || v >= 1 {
			t.Errorf("PE %d: boundary fraction %g (mesh large enough to have interior)", pe, v)
		}
	}
}

func TestOverlappedErrors(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 2, partition.RCB)
	if _, err := d.SMVPOverlapped(make([]float64, 1), make([]float64, 3*d.GlobalNodes)); err == nil {
		t.Error("short y accepted")
	}
	if _, err := d.SMVPOverlapped(make([]float64, 3*d.GlobalNodes), make([]float64, 1)); err == nil {
		t.Error("short x accepted")
	}
}

// TestProfileBoundaryFlops validates the FBoundary accounting added to
// the partition profile against the runtime's row classification.
func TestProfileBoundaryFlops(t *testing.T) {
	f := newFixture(t)
	d, pr := f.dist(t, 8, partition.RCB)
	for pe := 0; pe < d.P; pe++ {
		if pr.FBoundary[pe] < 0 || pr.FBoundary[pe] > pr.F[pe] {
			t.Fatalf("PE %d: FBoundary %d outside [0, %d]", pe, pr.FBoundary[pe], pr.F[pe])
		}
		if len(d.Boundary[pe]) > 0 && pr.FBoundary[pe] == 0 {
			t.Fatalf("PE %d: boundary rows exist but FBoundary = 0", pe)
		}
	}
	if pr.FBoundaryMax() <= 0 {
		t.Error("FBoundaryMax not positive")
	}
}
