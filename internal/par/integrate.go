package par

import (
	"fmt"
	"math"
	"time"

	"repro/internal/fem"
	"repro/internal/geom"
	"repro/internal/obs"
)

// DistSim is the distributed Quake application: the explicit
// central-difference integrator running on goroutine PEs, with exactly
// one stiffness SMVP (local multiply + shared-node exchange) per time
// step — the structure whose communication demands the whole paper
// characterizes.
//
// Replica consistency is the key invariant: displacement, velocity, and
// nodal mass are replicated on every PE where a node resides, and every
// PE applies the identical update to its replicas, so no communication
// beyond the SMVP exchange is ever needed.
type DistSim struct {
	D *Dist
	// Mass[pe][l] is the globally-summed lumped mass of local node l.
	Mass [][]float64
	// dampers[pe] holds the per-local-node 3×3 absorber blocks, nil
	// when absorbers are not configured.
	dampers [][][9]float64
}

// NewDistSim assembles the distributed mass (summing partial lumped
// masses across shared nodes with one setup exchange) and optionally
// scatters boundary dampers to local numbering.
func NewDistSim(d *Dist, massNode []float64, absorbers *fem.AbsorbingDampers) (*DistSim, error) {
	if len(massNode) != d.GlobalNodes {
		return nil, fmt.Errorf("par: mass vector has %d entries, want %d", len(massNode), d.GlobalNodes)
	}
	s := &DistSim{D: d, Mass: make([][]float64, d.P)}
	for pe := 0; pe < d.P; pe++ {
		loc := make([]float64, len(d.Nodes[pe]))
		for l, g := range d.Nodes[pe] {
			if massNode[g] <= 0 {
				return nil, fmt.Errorf("par: node %d has non-positive mass", g)
			}
			loc[l] = massNode[g]
		}
		s.Mass[pe] = loc
	}
	if absorbers != nil {
		if len(absorbers.Blocks) != d.GlobalNodes {
			return nil, fmt.Errorf("par: absorber blocks cover %d nodes, want %d",
				len(absorbers.Blocks), d.GlobalNodes)
		}
		s.dampers = make([][][9]float64, d.P)
		for pe := 0; pe < d.P; pe++ {
			blk := make([][9]float64, len(d.Nodes[pe]))
			for l, g := range d.Nodes[pe] {
				blk[l] = absorbers.Blocks[g]
			}
			s.dampers[pe] = blk
		}
	}
	return s, nil
}

// DistSimResult extends the sequential result with the distributed
// phase timing accumulated over all steps.
type DistSimResult struct {
	fem.SimResult
	// ComputeSeconds and ExchangeSeconds are the maxima over PEs of the
	// per-PE accumulated phase times.
	ComputeSeconds  float64
	ExchangeSeconds float64
}

// Run advances the distributed system cfg.Steps steps. Receivers are
// global node ids; their seismograms are recorded by the owning PE.
// The scheme, source handling, and stability behavior match
// fem.System.Run step for step, so the two integrators produce the same
// trajectories (up to the reordering of floating-point sums).
func (s *DistSim) Run(coords []geom.Vec3, cfg fem.SimConfig) (*DistSimResult, error) {
	d := s.D
	if cfg.Dt <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("par: Dt and Steps must be positive")
	}
	if cfg.Absorbers != nil && s.dampers == nil {
		return nil, fmt.Errorf("par: absorbers passed to Run but not to NewDistSim")
	}
	for _, r := range cfg.Receivers {
		if r < 0 || int(r) >= d.GlobalNodes {
			return nil, fmt.Errorf("par: receiver node %d out of range", r)
		}
	}
	// Locate the source node globally (same rule as fem.System.Run:
	// nearest mesh node).
	srcNode := int32(0)
	bestD := math.Inf(1)
	for i, c := range coords {
		if dist := c.Dist(cfg.Source.Location); dist < bestD {
			bestD = dist
			srcNode = int32(i)
		}
	}
	dir := cfg.Source.Direction.Normalize()
	if dir == (geom.Vec3{}) {
		dir = geom.V(0, 0, 1)
	}

	// Per-PE state.
	u := make([][]float64, d.P)
	v := make([][]float64, d.P)
	ku := make([][]float64, d.P)
	srcLocal := make([]int32, d.P) // local index of source node, -1 if absent
	for pe := 0; pe < d.P; pe++ {
		n := len(d.Nodes[pe])
		u[pe] = make([]float64, 3*n)
		v[pe] = make([]float64, 3*n)
		ku[pe] = make([]float64, 3*n)
		srcLocal[pe] = -1
		if l := indexOf(d.Nodes[pe], srcNode); l >= 0 {
			srcLocal[pe] = int32(l)
		}
	}
	// Receiver bookkeeping: (pe, local) of the owner.
	type rcv struct {
		pe, local int32
	}
	rcvs := make([]rcv, len(cfg.Receivers))
	for i, g := range cfg.Receivers {
		pe := d.Owner[g]
		rcvs[i] = rcv{pe: pe, local: int32(indexOf(d.Nodes[pe], g))}
	}

	res := &DistSimResult{}
	res.Steps = cfg.Steps
	res.Seismograms = make([][]float64, len(cfg.Receivers))
	for i := range res.Seismograms {
		res.Seismograms[i] = make([]float64, cfg.Steps)
	}
	computeAcc := make([]time.Duration, d.P)
	exchangeAcc := make([]time.Duration, d.P)
	updateAcc := make([]time.Duration, d.P)

	// One body drives a whole step on the persistent PEs: local SMVP,
	// post into the runtime's preallocated send buffers, phase barrier,
	// receive, replica update. The coordinator dispatches it once per
	// step (no goroutine spawns, no per-step allocations); fx/fy/fz are
	// refreshed between dispatches, which are full synchronization
	// points. The closure below is created once per Run.
	rt := d.rt
	var fx, fy, fz float64
	stepBody := func(pe int) {
		fi, iter := rt.fi, rt.iter

		// Computation phase: local SMVP.
		sp := obs.StartSpanPE("compute", "par.step.compute", pe)
		t0 := time.Now()
		d.K[pe].MulVec(ku[pe], u[pe])
		dc := time.Since(t0)
		computeAcc[pe] += dc
		rt.met.observeCompute(pe, iter, dc)
		sp.End()

		if fi != nil {
			fi.AfterCompute(pe, iter)
		}

		// Communication phase: exchange and sum partial K·u.
		ws := &rt.ws[pe]
		sp = obs.StartSpanPE("exchange", "par.step.post", pe)
		t0 = time.Now()
		var sent int64
		for k, locals := range d.Shared[pe] {
			buf := ws.send[k]
			for sIdx, l := range locals {
				copy(buf[3*sIdx:3*sIdx+3], ku[pe][3*l:3*l+3])
			}
			if fi != nil {
				fi.CorruptSend(pe, int(d.Neighbors[pe][k]), iter, buf)
			}
			sent += bytesPerSharedNode * int64(len(locals))
		}
		dpost := time.Since(t0)
		exchangeAcc[pe] += dpost
		rt.met.exchBytes[pe].Add(sent)
		rt.met.exchMsgs.Add(int64(len(d.Shared[pe])))
		sp.End()

		// All posts must be visible before anyone reads them. A
		// poisoned release means a peer died with its posts possibly
		// in flight — bail out rather than race on them.
		if !rt.bar.await() {
			return
		}

		sp = obs.StartSpanPE("exchange", "par.step.recv", pe)
		t0 = time.Now()
		var recvd int64
		for k, nbr := range d.Neighbors[pe] {
			buf := rt.ws[nbr].send[ws.rev[k]]
			locals := d.Shared[pe][k]
			reps := 1
			if fi != nil {
				reps = fi.Deliver(int(nbr), pe, iter)
			}
			for ; reps > 0; reps-- {
				for sIdx, l := range locals {
					ku[pe][3*l] += buf[3*sIdx]
					ku[pe][3*l+1] += buf[3*sIdx+1]
					ku[pe][3*l+2] += buf[3*sIdx+2]
				}
				recvd += bytesPerSharedNode * int64(len(locals))
			}
		}
		drecv := time.Since(t0)
		exchangeAcc[pe] += drecv
		rt.met.exchBytes[pe].Add(recvd)
		rt.met.observeExchange(pe, iter, dpost+drecv)
		sp.End()

		// Update phase: identical on every replica; touches only this
		// PE's u/v/ku, so no barrier is needed after the receive.
		sp = obs.StartSpanPE("update", "par.step.update", pe)
		t0 = time.Now()
		nloc := len(d.Nodes[pe])
		for i := 0; i < nloc; i++ {
			invM := 1 / s.Mass[pe][i]
			var rhs [3]float64
			for dd := 0; dd < 3; dd++ {
				k := 3*i + dd
				f := -ku[pe][k]
				if srcLocal[pe] == int32(i) {
					switch dd {
					case 0:
						f += fx
					case 1:
						f += fy
					default:
						f += fz
					}
				}
				rhs[dd] = v[pe][k] + cfg.Dt*(invM*f-cfg.Damping*v[pe][k])
			}
			if cfg.Absorbers != nil {
				blk := &s.dampers[pe][i]
				if blk[0] != 0 || blk[4] != 0 || blk[8] != 0 {
					var a [9]float64
					sc := cfg.Dt * invM
					for p := 0; p < 9; p++ {
						a[p] = sc * blk[p]
					}
					a[0] += 1
					a[4] += 1
					a[8] += 1
					rhs = solve3(&a, rhs)
				}
			}
			for dd := 0; dd < 3; dd++ {
				k := 3*i + dd
				v[pe][k] = rhs[dd]
				u[pe][k] += cfg.Dt * v[pe][k]
			}
		}
		du := time.Since(t0)
		updateAcc[pe] += du
		rt.met.observeUpdate(pe, iter, du)
		sp.End()
	}

	obs.GetCounter("par.distsim.steps").Add(int64(cfg.Steps))
	start := time.Now()
	var flops int64
	for step := 0; step < cfg.Steps; step++ {
		t := float64(step) * cfg.Dt
		amp := cfg.Source.Amplitude * fem.Ricker(t, cfg.Source.PeakFreq, cfg.Source.Delay)
		fx, fy, fz = amp*dir.X, amp*dir.Y, amp*dir.Z

		if err := rt.run(stepBody); err != nil {
			return nil, err
		}
		for pe := 0; pe < d.P; pe++ {
			flops += int64(2 * d.K[pe].NNZ())
		}

		for i, r := range rcvs {
			k := 3 * int(r.local)
			ul := u[r.pe]
			res.Seismograms[i][step] = math.Sqrt(ul[k]*ul[k] + ul[k+1]*ul[k+1] + ul[k+2]*ul[k+2])
		}
		if step%16 == 0 || step == cfg.Steps-1 {
			for pe := 0; pe < d.P; pe++ {
				for i := 0; i < len(u[pe]); i += 7 {
					if math.IsNaN(u[pe][i]) || math.Abs(u[pe][i]) > 1e12 {
						return nil, fmt.Errorf("par: solution diverged at step %d", step)
					}
				}
			}
		}
	}
	res.TotalSeconds = time.Since(start).Seconds()
	res.FlopsSMVP = flops
	for pe := 0; pe < d.P; pe++ {
		if c := computeAcc[pe].Seconds(); c > res.ComputeSeconds {
			res.ComputeSeconds = c
		}
		if e := exchangeAcc[pe].Seconds(); e > res.ExchangeSeconds {
			res.ExchangeSeconds = e
		}
	}
	res.SMVPSeconds = res.ComputeSeconds // the multiply phase only
	for pe := 0; pe < d.P; pe++ {
		for i := 0; i < len(u[pe]); i += 3 {
			m := math.Sqrt(u[pe][i]*u[pe][i] + u[pe][i+1]*u[pe][i+1] + u[pe][i+2]*u[pe][i+2])
			if m > res.MaxDisplacement {
				res.MaxDisplacement = m
			}
		}
	}
	return res, nil
}

// solve3 mirrors fem's 3×3 Cramer solve for the implicit damper.
func solve3(a *[9]float64, b [3]float64) [3]float64 {
	det := a[0]*(a[4]*a[8]-a[5]*a[7]) -
		a[1]*(a[3]*a[8]-a[5]*a[6]) +
		a[2]*(a[3]*a[7]-a[4]*a[6])
	inv := 1 / det
	return [3]float64{
		inv * (b[0]*(a[4]*a[8]-a[5]*a[7]) - a[1]*(b[1]*a[8]-a[5]*b[2]) + a[2]*(b[1]*a[7]-a[4]*b[2])),
		inv * (a[0]*(b[1]*a[8]-a[5]*b[2]) - b[0]*(a[3]*a[8]-a[5]*a[6]) + a[2]*(a[3]*b[2]-b[1]*a[6])),
		inv * (a[0]*(a[4]*b[2]-b[1]*a[7]) - a[1]*(a[3]*b[2]-b[1]*a[6]) + b[0]*(a[3]*a[7]-a[4]*a[6])),
	}
}
