package par

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/solver"
	"repro/internal/testutil"
)

// TestBarrierRounds hammers the generation barrier: every party
// increments its slot before each crossing, and after the crossing all
// slots must show the same round — a straggler or a double-release
// breaks the invariant immediately.
func TestBarrierRounds(t *testing.T) {
	const parties, rounds = 8, 500
	b := newBarrier(parties)
	counts := make([]int, parties)
	var wg sync.WaitGroup
	errs := make(chan error, parties)
	wg.Add(parties)
	for p := 0; p < parties; p++ {
		go func(p int) {
			defer wg.Done()
			for r := 1; r <= rounds; r++ {
				counts[p] = r
				b.await()
				for q := 0; q < parties; q++ {
					if counts[q] != r {
						errs <- fmt.Errorf("party %d saw counts[%d]=%d in round %d", p, q, counts[q], r)
						return
					}
				}
				b.await()
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSMVPZeroAlloc pins the tentpole property: after the first call,
// both distributed kernels run entirely out of the persistent runtime's
// preallocated workspaces — zero heap allocations per op, with metric
// collection both off and on (the atomic-gated counters must stay off
// the allocation path too).
func TestSMVPZeroAlloc(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 4, partition.RCB)
	x := make([]float64, 3*d.GlobalNodes)
	y := make([]float64, 3*d.GlobalNodes)
	for i := range x {
		x[i] = float64(i%5) * 0.5
	}
	kernels := []struct {
		name string
		run  func()
	}{
		{"SMVP", func() {
			if _, err := d.SMVP(y, x); err != nil {
				t.Fatal(err)
			}
		}},
		{"SMVPOverlapped", func() {
			if _, err := d.SMVPOverlapped(y, x); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, metrics := range []bool{false, true} {
		prev := obs.Enabled()
		obs.SetEnabled(metrics)
		for _, k := range kernels {
			k.run() // steady state: buffers and goroutines already live
			if avg := testing.AllocsPerRun(10, k.run); avg != 0 {
				t.Errorf("%s (metrics=%v): %.1f allocs/op, want 0", k.name, metrics, avg)
			}
		}
		obs.SetEnabled(prev)
	}
}

// TestConcurrentSolvesOneDist hammers the concurrency contract: kernel
// invocations on one Dist from many goroutines are safe (the runtime
// serializes them), so independent CG solves may share the operator.
// Each solve keeps its own vectors and workspace; only the Dist — and
// through it the persistent PEs — is shared. Run under -race by `make
// race`.
func TestConcurrentSolvesOneDist(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 4, partition.RCB)
	op := Operator{D: d, Shift: 20, MassNode: f.sys.MassNode}
	n := op.Dim()

	const solvers = 4
	var wg sync.WaitGroup
	errs := make(chan error, solvers)
	wg.Add(solvers)
	for s := 0; s < solvers; s++ {
		go func(s int) {
			defer wg.Done()
			b := make([]float64, n)
			b[(s*7)%n] = 100
			b[(s*13+5)%n] = -30
			x := make([]float64, n)
			ws := solver.NewWorkspace(n)
			for iter := 0; iter < 3; iter++ {
				for i := range x {
					x[i] = 0
				}
				res, err := solver.CG(op, b, x, solver.Config{MaxIter: 4 * n, Tol: 1e-8, Workspace: ws})
				if err != nil {
					errs <- fmt.Errorf("solver %d: %v", s, err)
					return
				}
				if !res.Converged {
					errs <- fmt.Errorf("solver %d did not converge: %+v", s, res)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestTimingOwnership documents the Timing reuse rule: the runtime
// returns the same (reused) Timing on every call, so callers that need
// a result across calls must copy it.
func TestTimingOwnership(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 4, partition.RCB)
	x := make([]float64, 3*d.GlobalNodes)
	y := make([]float64, 3*d.GlobalNodes)
	tm1, err := d.SMVP(y, x)
	if err != nil {
		t.Fatal(err)
	}
	tm2, err := d.SMVPOverlapped(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if tm1 != tm2 {
		t.Errorf("expected the runtime-owned Timing to be reused across calls (got %p vs %p)", tm1, tm2)
	}
}

// TestCloseSemantics: Close is idempotent, and every kernel entry point
// reports the closed state instead of hanging.
func TestCloseSemantics(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	f := newFixture(t)
	pt, err := partition.PartitionMesh(f.m, 3, partition.RCB, 7)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := partition.Analyze(f.m, pt)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDist(f.m, f.mat, pt, pr)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewDistSim(d, f.sys.MassNode, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 3*d.GlobalNodes)
	y := make([]float64, 3*d.GlobalNodes)
	if _, err := d.SMVP(y, x); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Close() // idempotent
	if _, err := d.SMVP(y, x); err == nil {
		t.Error("SMVP on closed Dist succeeded")
	}
	if _, err := d.SMVPOverlapped(y, x); err == nil {
		t.Error("SMVPOverlapped on closed Dist succeeded")
	}
	if _, err := sim.Run(f.m.Coords, simCfg(f, 2)); err == nil {
		t.Error("DistSim.Run on closed Dist succeeded")
	}
}

// TestConcurrentCloseDuringKernels races Close against a stream of
// in-flight kernels from several goroutines: the dispatch mutex must
// make every call either complete normally or report the closed state —
// never hang, race, or panic. Run under -race by `make race`.
func TestConcurrentCloseDuringKernels(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	f := newFixture(t)
	pt, err := partition.PartitionMesh(f.m, 4, partition.RCB, 7)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := partition.Analyze(f.m, pt)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDist(f.m, f.mat, pt, pr)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 4
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	start := make(chan struct{})
	wg.Add(callers)
	for c := 0; c < callers; c++ {
		go func(c int) {
			defer wg.Done()
			x := make([]float64, 3*d.GlobalNodes)
			y := make([]float64, 3*d.GlobalNodes)
			x[c] = 1
			<-start
			for i := 0; ; i++ {
				var err error
				if i%2 == 0 {
					_, err = d.SMVP(y, x)
				} else {
					_, err = d.SMVPOverlapped(y, x)
				}
				if err != nil {
					// The only legal failure is the closed report; anything
					// else (a poisoned barrier, a partial result) is a bug.
					if !errors.Is(err, errClosed) {
						errs <- fmt.Errorf("caller %d kernel %d: %v", c, i, err)
					}
					return
				}
			}
		}(c)
	}
	close(start)
	d.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Close remains idempotent after the race.
	d.Close()
}
