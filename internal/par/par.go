// Package par executes the parallel SMVP for real, on goroutine "PEs",
// following exactly the structure the paper models: a computation phase
// (each PE multiplies its local stiffness matrix by its local vector)
// separated by barriers from a communication phase (PEs sharing mesh
// nodes exchange and sum their partial nodal results). It provides the
// ground truth against which the closed-form model and the discrete
// simulator are validated, and measures the achieved per-flop time T_f
// on the host.
package par

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/fault"
	"repro/internal/fem"
	"repro/internal/geom"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/sparse"
)

// Dist is a distributed SMVP operator: per-PE local stiffness matrices
// assembled from each subdomain's own elements (so the global K is the
// sum of the scattered locals), plus the shared-node exchange lists.
type Dist struct {
	P           int
	GlobalNodes int
	// Nodes[i] lists the global ids of the nodes resident on PE i,
	// sorted ascending. Local index l on PE i refers to Nodes[i][l].
	Nodes [][]int32
	// K[i] is PE i's local stiffness in local numbering, holding only
	// the contributions of PE i's own elements.
	K []*sparse.BCSR
	// Neighbors[i] lists the PEs that share at least one node with i.
	Neighbors [][]int32
	// Shared[i][k] lists the local indices (into Nodes[i]) of the nodes
	// PE i shares with Neighbors[i][k], ordered by global id — the same
	// order both endpoints use, so exchanged buffers line up.
	Shared [][][]int32
	// Owner[v] is the PE responsible for writing node v's result back
	// to a global vector (the lowest-numbered PE of its residency set).
	Owner []int32
	// Boundary[i] lists the local indices of PE i's shared nodes (rows
	// that must be computed before the exchange can begin); Interior[i]
	// is the complement. Both are sorted.
	Boundary [][]int32
	Interior [][]int32

	// rt is the persistent-PE runtime: the long-lived goroutine PEs,
	// their preallocated workspaces, and the operator's telemetry
	// handles (resolved once so the SMVP hot path performs only atomic
	// adds, which no-op while obs is disabled). See runtime.go.
	rt *peRuntime
}

// distMetrics are the telemetry handles of one distributed operator.
// ExchBytes follows the partition profile's C accounting: bytes both
// sent and received by the PE, i.e. 8·C[i] per SMVP invocation.
type distMetrics struct {
	smvps     *obs.Counter
	fusedSmvp *obs.Counter
	exchMsgs  *obs.Counter
	msgBytes  *obs.Histogram
	exchBytes []*obs.Counter
	// Aggregated-exchange counters: fused inter-node blocks sent and
	// bytes gather-copied into staging (zero while aggregation is off).
	aggFused       *obs.Counter
	aggStagedBytes *obs.Counter
	// Per-PE phase accumulators and merged duration histograms: the
	// substrate obs/analyze reads for λ, stragglers, and Eq.(2) drift.
	// One observation per PE per kernel invocation, in nanoseconds.
	phaseCompute   *obs.PEAccum
	phaseExchange  *obs.PEAccum
	phaseUpdate    *obs.PEAccum
	phaseComputeH  *obs.Histogram
	phaseExchangeH *obs.Histogram
	phaseUpdateH   *obs.Histogram
}

func newDistMetrics(p int) distMetrics {
	m := distMetrics{
		smvps:          obs.GetCounter("par.smvp.calls"),
		fusedSmvp:      obs.GetCounter("par.smvp.fused_calls"),
		exchMsgs:       obs.GetCounter("par.exchange.msgs"),
		msgBytes:       obs.GetHistogram("par.exchange.msg_bytes"),
		exchBytes:      make([]*obs.Counter, p),
		aggFused:       obs.GetCounter("par.exchange.agg.fused_blocks"),
		aggStagedBytes: obs.GetCounter("par.exchange.agg.staged_bytes"),
		phaseCompute:   obs.GetPEAccum("par.phase.compute.ns", p),
		phaseExchange:  obs.GetPEAccum("par.phase.exchange.ns", p),
		phaseUpdate:    obs.GetPEAccum("par.phase.update.ns", p),
		phaseComputeH:  obs.GetHistogram("par.phase.compute.hist_ns"),
		phaseExchangeH: obs.GetHistogram("par.phase.exchange.hist_ns"),
		phaseUpdateH:   obs.GetHistogram("par.phase.update.hist_ns"),
	}
	for i := 0; i < p; i++ {
		m.exchBytes[i] = obs.GetCounter(fmt.Sprintf("par.exchange.bytes.pe%d", i))
	}
	return m
}

// Phase observation helpers: each records one PE's phase duration into
// the per-PE accumulator (for λ/straggler/drift analysis), the merged
// histogram (for percentiles), and the flight recorder ring (for
// post-mortems). All three sinks are allocation-free, so these run on
// the kernel hot path with TestSMVPZeroAlloc still at 0 allocs/op.

func (m *distMetrics) observeCompute(pe int, iter int64, d time.Duration) {
	m.phaseCompute.Observe(pe, int64(d))
	m.phaseComputeH.Observe(int64(d))
	obs.RecordFlight(obs.FlightSpan, "par.phase.compute", pe, iter, d)
}

func (m *distMetrics) observeExchange(pe int, iter int64, d time.Duration) {
	m.phaseExchange.Observe(pe, int64(d))
	m.phaseExchangeH.Observe(int64(d))
	obs.RecordFlight(obs.FlightSpan, "par.phase.exchange", pe, iter, d)
}

func (m *distMetrics) observeUpdate(pe int, iter int64, d time.Duration) {
	m.phaseUpdate.Observe(pe, int64(d))
	m.phaseUpdateH.Observe(int64(d))
	obs.RecordFlight(obs.FlightSpan, "par.phase.update", pe, iter, d)
}

// bytesPerSharedNode is the wire size of one shared node's partial sum:
// three float64 words.
const bytesPerSharedNode = 8 * partition.WordsPerNode

// NewDist builds the distributed operator from a mesh, a material
// model, and a partition with its analysis profile.
func NewDist(m *mesh.Mesh, mat *material.Model, pt *partition.Partition, pr *partition.Profile) (*Dist, error) {
	if pr.P != pt.P {
		return nil, fmt.Errorf("par: profile has %d PEs, partition %d", pr.P, pt.P)
	}
	p := pt.P
	d := &Dist{
		P:           p,
		GlobalNodes: m.NumNodes(),
		Nodes:       pr.NodesOnPE,
		K:           make([]*sparse.BCSR, p),
		Neighbors:   make([][]int32, p),
		Shared:      make([][][]int32, p),
		Owner:       make([]int32, m.NumNodes()),
	}
	for v, pes := range pr.NodePEs {
		if len(pes) == 0 {
			return nil, fmt.Errorf("par: node %d resides nowhere", v)
		}
		d.Owner[v] = pes[0]
	}

	// Global-to-local maps.
	g2l := make([]map[int32]int32, p)
	for i := 0; i < p; i++ {
		g2l[i] = make(map[int32]int32, len(d.Nodes[i]))
		for l, g := range d.Nodes[i] {
			g2l[i][g] = int32(l)
		}
	}

	// Elements per PE, then local structure and assembly.
	elems := make([][]int32, p)
	for e, pe := range pt.ElemPE {
		elems[pe] = append(elems[pe], int32(e))
	}
	for i := 0; i < p; i++ {
		// Local edge set from this PE's elements.
		seen := make(map[uint64]struct{})
		var edges [][2]int32
		for _, e := range elems[i] {
			t := m.Tets[e]
			for a := 0; a < 4; a++ {
				for b := a + 1; b < 4; b++ {
					la, lb := g2l[i][t[a]], g2l[i][t[b]]
					if la > lb {
						la, lb = lb, la
					}
					key := uint64(la)<<32 | uint64(lb)
					if _, ok := seen[key]; ok {
						continue
					}
					seen[key] = struct{}{}
					edges = append(edges, [2]int32{la, lb})
				}
			}
		}
		k := sparse.NewBCSRStructure(len(d.Nodes[i]), edges)
		for _, e := range elems[i] {
			t := m.Tets[e]
			var v [4]geom.Vec3
			for a := 0; a < 4; a++ {
				v[a] = m.Coords[t[a]]
			}
			lambda, mu, _ := mat.Elastic(m.Centroid(int(e)))
			blocks, _, ok := fem.ElementStiffness(v, lambda, mu)
			if !ok {
				return nil, fmt.Errorf("par: degenerate element %d", e)
			}
			for a := 0; a < 4; a++ {
				for b := 0; b < 4; b++ {
					k.AddBlock(g2l[i][t[a]], g2l[i][t[b]], &blocks[a][b])
				}
			}
		}
		d.K[i] = k
	}

	// Exchange lists from the residency sets: for every node on 2+ PEs,
	// record it under each unordered PE pair. Node ids ascend during the
	// scan, so each per-pair list is automatically in global-id order.
	type pair struct{ a, b int32 }
	sharedByPair := make(map[pair][]int32)
	for v, pes := range pr.NodePEs {
		for x := 0; x < len(pes); x++ {
			for y := x + 1; y < len(pes); y++ {
				pr := pair{pes[x], pes[y]}
				sharedByPair[pr] = append(sharedByPair[pr], int32(v))
			}
		}
	}
	nbrSet := make([]map[int32][]int32, p) // neighbor -> shared globals
	for i := range nbrSet {
		nbrSet[i] = make(map[int32][]int32)
	}
	for pr, nodes := range sharedByPair {
		nbrSet[pr.a][pr.b] = nodes
		nbrSet[pr.b][pr.a] = nodes
	}
	for i := 0; i < p; i++ {
		for nbr := range nbrSet[i] {
			d.Neighbors[i] = append(d.Neighbors[i], nbr)
		}
		sort.Slice(d.Neighbors[i], func(a, b int) bool { return d.Neighbors[i][a] < d.Neighbors[i][b] })
		d.Shared[i] = make([][]int32, len(d.Neighbors[i]))
		for k, nbr := range d.Neighbors[i] {
			globals := nbrSet[i][nbr]
			locals := make([]int32, len(globals))
			for s, g := range globals {
				locals[s] = g2l[i][g]
			}
			d.Shared[i][k] = locals
		}
	}

	// Boundary/interior row split for the overlapped kernel.
	d.Boundary = make([][]int32, p)
	d.Interior = make([][]int32, p)
	for i := 0; i < p; i++ {
		isBoundary := make([]bool, len(d.Nodes[i]))
		for _, locals := range d.Shared[i] {
			for _, l := range locals {
				isBoundary[l] = true
			}
		}
		for l := range d.Nodes[i] {
			if isBoundary[l] {
				d.Boundary[i] = append(d.Boundary[i], int32(l))
			} else {
				d.Interior[i] = append(d.Interior[i], int32(l))
			}
		}
	}
	d.rt = newPERuntime(d)
	// Safety net for callers that drop a Dist without Close: the PE
	// goroutines reference only d.rt, never d itself, so d can become
	// unreachable and the finalizer then parks the runtime. Explicit
	// Close remains the deterministic path.
	runtime.SetFinalizer(d, (*Dist).Close)
	return d, nil
}

// Close shuts down the persistent PE goroutines. It is idempotent and
// safe to call concurrently with kernels (in-flight calls finish;
// subsequent calls return an error). A Dist that is never closed holds
// P parked goroutines and its workspaces until it is garbage collected.
func (d *Dist) Close() { d.rt.close() }

// InjectFaults arms the Dist's exchange-boundary fault injector with
// plan, or disarms it when plan is nil. The returned Injector reports
// injected-fault counts; it is nil when disarming. Arming is excluded
// from in-flight kernels by the dispatch mutex, and a disarmed Dist
// pays only a nil check per hook site — the steady-state kernels stay
// allocation- and spawn-free (see docs/RELIABILITY.md for the fault
// model and docs/PERFORMANCE.md for the hot-path rules).
//
// Plan iterations count kernel dispatches since arming: every SMVP,
// SMVPOverlapped, or DistSim time step advances the count by one. A
// plan whose panic event fires poisons the Dist permanently: the
// faulted kernel returns an error wrapping ErrPoisoned and every later
// kernel fails fast with the same error.
func (d *Dist) InjectFaults(plan *fault.Plan) (*fault.Injector, error) {
	if plan == nil {
		if err := d.rt.arm(nil); err != nil {
			return nil, err
		}
		return nil, nil
	}
	if err := plan.Validate(d.P); err != nil {
		return nil, err
	}
	in := fault.NewInjector(plan)
	if err := d.rt.arm(in); err != nil {
		return nil, err
	}
	return in, nil
}

// Timing reports per-PE phase durations of one distributed SMVP.
type Timing struct {
	Compute []time.Duration
	Comm    []time.Duration
}

// MaxCompute returns the longest computation phase across PEs.
func (t *Timing) MaxCompute() time.Duration { return maxDur(t.Compute) }

// MaxComm returns the longest communication phase across PEs.
func (t *Timing) MaxComm() time.Duration { return maxDur(t.Comm) }

func maxDur(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

// SMVP computes y = K·x with the distributed operator: scatter x,
// parallel local SMVPs, barrier, partial-sum exchange, gather. x and y
// are global vectors of length 3·GlobalNodes.
//
// The kernel runs on the Dist's persistent PEs against preallocated
// workspaces: in steady state it allocates nothing and spawns no
// goroutines. The returned Timing (per-PE phase durations of this
// invocation) is owned by the Dist and overwritten by the next kernel
// call — copy it if it must survive.
func (d *Dist) SMVP(y, x []float64) (*Timing, error) {
	if len(x) != 3*d.GlobalNodes || len(y) != 3*d.GlobalNodes {
		return nil, fmt.Errorf("par: SMVP needs vectors of length %d, got %d/%d",
			3*d.GlobalNodes, len(x), len(y))
	}
	d.rt.met.smvps.Add(1)
	return d.rt.runKernel(d.rt.phasedBody, y, x)
}

// SMVPDot is the fused distributed kernel: y = K·x and the global dot
// x·y in one pass over the runtime. It runs the same phased body as
// SMVP — y is bit-identical to a plain SMVP, flat or aggregated — with
// the fused dot armed: each PE accumulates x·y over its owned nodes
// during the gather phase into a preallocated padded slot, and the
// coordinator sums the partials in ascending PE order. The reduction
// is deterministic for a given partition but groups terms by PE, so
// the dot agrees with a sequential dot(x, y) to rounding, not bit for
// bit. Steady-state cost matches SMVP: zero allocations, zero
// goroutine spawns, one extra multiply-add per owned scalar.
func (d *Dist) SMVPDot(y, x []float64) (float64, *Timing, error) {
	if len(x) != 3*d.GlobalNodes || len(y) != 3*d.GlobalNodes {
		return 0, nil, fmt.Errorf("par: SMVPDot needs vectors of length %d, got %d/%d",
			3*d.GlobalNodes, len(x), len(y))
	}
	d.rt.met.smvps.Add(1)
	d.rt.met.fusedSmvp.Add(1)
	return d.rt.runKernelDot(d.rt.phasedBody, y, x)
}

// phasedPE is the per-PE body of the phased SMVP: scatter and local
// multiply, post partial sums into the PE's own send buffers, cross the
// phase barrier (the synchronization point separating the computation
// phase from the exchange), then read the neighbors' buffers in place
// and accumulate. Scatter and gather are untimed, as before:
// distribution of x is part of the surrounding application, which
// keeps x resident.
func (rt *peRuntime) phasedPE(pe int) {
	ws := &rt.ws[pe]
	nodes := rt.nodes[pe]
	x, y := rt.x, rt.y
	fi, iter := rt.fi, rt.iter
	agg := rt.agg
	fdot := rt.fusedDot
	for l, g := range nodes {
		copy(ws.x[3*l:3*l+3], x[3*g:3*g+3])
	}

	// Computation phase.
	sp := obs.StartSpanPE("compute", "par.smvp.compute", pe)
	start := time.Now()
	rt.k[pe].MulVec(ws.y, ws.x)
	rt.tm.Compute[pe] = time.Since(start)
	rt.met.observeCompute(pe, iter, rt.tm.Compute[pe])
	sp.End()

	if fi != nil {
		fi.AfterCompute(pe, iter)
	}

	// Communication phase, step 1: post partial sums for each neighbor
	// into this PE's own send buffers.
	sp = obs.StartSpanPE("exchange", "par.smvp.post", pe)
	start = time.Now()
	var sent int64
	for k, locals := range rt.shared[pe] {
		buf := ws.send[k]
		for s, l := range locals {
			copy(buf[3*s:3*s+3], ws.y[3*l:3*l+3])
		}
		if fi != nil {
			fi.CorruptSend(pe, int(rt.neighbors[pe][k]), iter, buf)
		}
		n := bytesPerSharedNode * int64(len(locals))
		sent += n
		rt.met.msgBytes.Observe(n)
	}
	rt.tm.Comm[pe] = time.Since(start)
	rt.met.exchBytes[pe].Add(sent)
	rt.met.exchMsgs.Add(int64(len(rt.shared[pe])))
	sp.End()

	// Every post must be visible before any PE reads its neighbors'
	// buffers; the barrier wait itself is not attributed to Comm (the
	// pre-runtime kernel's pool barrier was likewise uncounted). A
	// poisoned release means a peer died mid-kernel and its posts (or a
	// leader's staging copies) may still be in flight — bail out rather
	// than race on them.
	if !rt.bar.await() {
		return
	}

	// Two-level exchange: the node leaders gather their members' posted
	// buffers into the inter-node staging areas (the fused send), and a
	// second barrier makes the staging visible before anyone reads it.
	var recvBufs [][]float64
	if agg != nil {
		rt.aggExchange(pe, agg)
		if !rt.bar.await() {
			return
		}
		recvBufs = agg.recv[pe]
	}

	// Communication phase, step 2: receive and accumulate, reading the
	// neighbors' send buffers in place (rev locates the buffer destined
	// for this PE on the other side). Under aggregation the remote
	// buffers come from the staging areas instead — same values, same
	// neighbor order, so the sums are bit-identical.
	sp = obs.StartSpanPE("exchange", "par.smvp.recv", pe)
	start = time.Now()
	var recvd int64
	for k, nbr := range rt.neighbors[pe] {
		buf := rt.ws[nbr].send[ws.rev[k]]
		if recvBufs != nil {
			buf = recvBufs[k]
		}
		locals := rt.shared[pe][k]
		reps := 1
		if fi != nil {
			reps = fi.Deliver(int(nbr), pe, iter)
		}
		for ; reps > 0; reps-- {
			for s, l := range locals {
				ws.y[3*l] += buf[3*s]
				ws.y[3*l+1] += buf[3*s+1]
				ws.y[3*l+2] += buf[3*s+2]
			}
			recvd += bytesPerSharedNode * int64(len(locals))
		}
	}
	rt.tm.Comm[pe] += time.Since(start)
	rt.met.exchBytes[pe].Add(recvd)
	rt.met.observeExchange(pe, iter, rt.tm.Comm[pe])
	sp.End()

	// Gather phase: owners write their nodes' results. With the fused
	// dot armed, the same loop folds this PE's share of x·y — the dot
	// over its owned nodes, every term formed from values already in
	// registers — into the PE's padded slot. The y written back is the
	// same either way, so a fused kernel's output is bit-identical to
	// the plain SMVP's.
	if fdot {
		var d float64
		for l, g := range nodes {
			if rt.owner[g] != int32(pe) {
				continue
			}
			y0, y1, y2 := ws.y[3*l], ws.y[3*l+1], ws.y[3*l+2]
			y[3*g] = y0
			y[3*g+1] = y1
			y[3*g+2] = y2
			d += ws.x[3*l] * y0
			d += ws.x[3*l+1] * y1
			d += ws.x[3*l+2] * y2
		}
		rt.dotSlots[pe*dotStride] = d
		return
	}
	for l, g := range nodes {
		if rt.owner[g] != int32(pe) {
			continue
		}
		copy(y[3*g:3*g+3], ws.y[3*l:3*l+3])
	}
}

// FlopsPerPE returns the flop count of each PE's local SMVP (2 flops
// per stored scalar). Note this is the element-assembled operator, so
// it can be slightly below the paper's residency-based F when a shared
// node pair's connecting elements all live on another PE.
func (d *Dist) FlopsPerPE() []int64 {
	out := make([]int64, d.P)
	for i, k := range d.K {
		out[i] = int64(2 * k.NNZ())
	}
	return out
}

// indexOf returns the position of v in the sorted slice s, or -1.
func indexOf(s []int32, v int32) int {
	lo := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if lo < len(s) && s[lo] == v {
		return lo
	}
	return -1
}

// MeasureTf times repeated local SMVPs on the host and returns the
// achieved seconds per flop (the paper's T_f, Section 3.1). The matrix
// should be large enough to overflow cache for a realistic figure.
func MeasureTf(k *sparse.BCSR, iters int) float64 {
	if iters <= 0 {
		iters = 1
	}
	x := make([]float64, 3*k.N)
	y := make([]float64, 3*k.N)
	for i := range x {
		x[i] = float64(i%7) * 0.25
	}
	k.MulVec(y, x) // warm up
	start := time.Now()
	for it := 0; it < iters; it++ {
		k.MulVec(y, x)
	}
	elapsed := time.Since(start).Seconds()
	return elapsed / (float64(iters) * float64(2*k.NNZ()))
}

// Operator adapts the distributed SMVP to the solver.Operator
// interface, so conjugate gradients (package solver) can run on the
// goroutine-PE runtime: every CG iteration then exercises exactly the
// computation+exchange structure the paper models, plus the dot
// products an implicit method adds.
type Operator struct {
	D *Dist
	// Shift, when positive, adds Shift·diag(mass) like solver.Shifted,
	// making the operator positive definite for CG.
	Shift float64
	// MassNode is required when Shift is positive.
	MassNode []float64
}

// Apply implements solver.Operator. A kernel failure — a dimension
// mismatch, a closed Dist, or a Dist poisoned by a PE fault — is
// propagated as an error, and solver.CG aborts the solve with it.
func (o Operator) Apply(y, x []float64) error {
	if _, err := o.D.SMVP(y, x); err != nil {
		return err
	}
	if o.Shift > 0 {
		for i, m := range o.MassNode {
			f := o.Shift * m
			y[3*i] += f * x[3*i]
			y[3*i+1] += f * x[3*i+1]
			y[3*i+2] += f * x[3*i+2]
		}
	}
	return nil
}

// ApplyDot implements solver.FusedOperator: the distributed SMVP and
// the global dot x·y come out of one kernel dispatch, saving the full
// extra sweep over the global vectors (and, on a real machine, one of
// CG's two allreduces per iteration). The mass shift folds its own
// contribution into both y and the dot, like solver.Shifted.ApplyDot.
// The fused dot groups terms by owning PE, so it matches a sequential
// dot to rounding rather than bit for bit — fused distributed CG is
// certified against unfused CG at solve tolerance.
func (o Operator) ApplyDot(y, x []float64) (float64, error) {
	d, _, err := o.D.SMVPDot(y, x)
	if err != nil {
		return 0, err
	}
	if o.Shift > 0 {
		for i, m := range o.MassNode {
			f := o.Shift * m
			x0, x1, x2 := x[3*i], x[3*i+1], x[3*i+2]
			y[3*i] += f * x0
			y[3*i+1] += f * x1
			y[3*i+2] += f * x2
			d += f * (x0*x0 + x1*x1 + x2*x2)
		}
	}
	return d, nil
}

// Dim implements solver.Operator.
func (o Operator) Dim() int { return 3 * o.D.GlobalNodes }
