package par

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/partition"
)

// TestSMVPAggregatedBitIdentical pins the aggregation correctness
// contract: for every node size — identity (one PE per node), proper
// grouping, and one-node (everything local) — the aggregated SMVP must
// produce exactly the flat kernel's bits. The staging copies move
// unmodified float64s and the receive loop keeps the flat neighbor
// order, so even the floating-point rounding must match, not just the
// mathematical value.
func TestSMVPAggregatedBitIdentical(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 6, partition.RCB)
	y, x := vecs(d)
	want := make([]float64, len(y))
	if _, err := d.SMVP(want, x); err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 2, 3, 4, 6, 8} {
		t.Run(fmt.Sprintf("nodesize=%d", size), func(t *testing.T) {
			if err := d.SetAggregation(comm.ContiguousNodes(size)); err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := d.SetAggregation(nil); err != nil {
					t.Fatal(err)
				}
			}()
			for i := range y {
				y[i] = 0
			}
			if _, err := d.SMVP(y, x); err != nil {
				t.Fatal(err)
			}
			for i := range y {
				if y[i] != want[i] {
					t.Fatalf("y[%d] = %x, flat %x (0 ULP required)", i, y[i], want[i])
				}
			}
		})
	}
	// Disabled again: still flat-identical.
	for i := range y {
		y[i] = 0
	}
	if _, err := d.SMVP(y, x); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("after disabling: y[%d] = %x, want %x", i, y[i], want[i])
		}
	}
}

// TestSMVPZeroAllocAggregated extends the runtime's tentpole property
// to the two-level exchange: all staging buffers and copy lists are
// built by SetAggregation, so the aggregated steady-state kernel must
// still allocate nothing — with metrics both off and on.
func TestSMVPZeroAllocAggregated(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 4, partition.RCB)
	if err := d.SetAggregation(comm.ContiguousNodes(2)); err != nil {
		t.Fatal(err)
	}
	y, x := vecs(d)
	run := func() {
		if _, err := d.SMVP(y, x); err != nil {
			t.Fatal(err)
		}
	}
	for _, metrics := range []bool{false, true} {
		prev := obs.Enabled()
		obs.SetEnabled(metrics)
		run() // steady state
		if avg := testing.AllocsPerRun(10, run); avg != 0 {
			t.Errorf("aggregated SMVP (metrics=%v): %.1f allocs/op, want 0", metrics, avg)
		}
		obs.SetEnabled(prev)
	}
}

// TestAggregationStats checks the plan accounting: a fresh Dist
// reports disabled; an enabled plan reports one fused block per
// ordered node pair with traffic (cross-checked against comm.Aggregate
// on the same exchange topology) and a positive staged-byte volume;
// disabling zeroes it again.
func TestAggregationStats(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 4, partition.RCB)
	if _, _, enabled := d.AggregationStats(); enabled {
		t.Fatal("fresh Dist reports aggregation enabled")
	}
	if err := d.SetAggregation(comm.ContiguousNodes(2)); err != nil {
		t.Fatal(err)
	}
	fused, staged, enabled := d.AggregationStats()
	if !enabled {
		t.Fatal("enabled plan reports disabled")
	}
	if fused <= 0 || staged <= 0 {
		t.Fatalf("fused=%d staged=%d, want both positive", fused, staged)
	}
	// Cross-check against the comm-layer transform on the same topology:
	// the runtime's fused block count must equal the Aggregated plan's.
	s := distSchedule(t, d)
	a, err := comm.Aggregate(s, comm.ContiguousNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	if want := totalBlocks(a.Internode); fused != want {
		t.Fatalf("runtime fused blocks = %d, comm.Aggregate says %d", fused, want)
	}
	if err := d.SetAggregation(nil); err != nil {
		t.Fatal(err)
	}
	if _, _, enabled := d.AggregationStats(); enabled {
		t.Fatal("disabled plan still reports enabled")
	}
}

// distSchedule rebuilds the flat comm.Schedule of a Dist's exchange
// lists (3 words per shared node per direction).
func distSchedule(t *testing.T, d *Dist) *comm.Schedule {
	t.Helper()
	msg := make([][]int64, d.P)
	for i := range msg {
		msg[i] = make([]int64, d.P)
	}
	for pe := 0; pe < d.P; pe++ {
		for k, nbr := range d.Neighbors[pe] {
			msg[pe][nbr] = int64(3 * len(d.Shared[pe][k]))
		}
	}
	s, err := comm.FromMatrix(msg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func totalBlocks(s *comm.Schedule) int64 {
	var n int64
	for _, msgs := range s.Out {
		n += int64(len(msgs))
	}
	return n
}

// TestSetAggregationRejects: a mapping that assigns a negative node id
// is refused and leaves the Dist flat; a closed Dist refuses the swap.
func TestSetAggregationRejects(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 4, partition.RCB)
	if err := d.SetAggregation(func(pe int32) int32 { return -1 }); err == nil {
		t.Fatal("negative node mapping accepted")
	}
	if err := d.SetAggregation(comm.ContiguousNodes(0)); err == nil {
		t.Fatal("ContiguousNodes(0) mapping accepted")
	}
	if _, _, enabled := d.AggregationStats(); enabled {
		t.Fatal("rejected mapping left aggregation enabled")
	}
	y, x := vecs(d)
	if _, err := d.SMVP(y, x); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if err := d.SetAggregation(comm.ContiguousNodes(2)); err == nil {
		t.Fatal("SetAggregation on closed Dist succeeded")
	}
}

// TestPanicContainmentAggregated repeats the fault containment check
// with the two-level exchange installed: the aggregated kernel has an
// extra intra-kernel barrier, and a PE that dies before reaching it
// must not strand the leaders waiting to gather — the poisoned barrier
// drains everyone and the kernel reports ErrPoisoned.
func TestPanicContainmentAggregated(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 4, partition.RCB)
	if err := d.SetAggregation(comm.ContiguousNodes(2)); err != nil {
		t.Fatal(err)
	}
	in, err := d.InjectFaults(mustPlan(t, "panic:pe=1,iter=1"))
	if err != nil {
		t.Fatal(err)
	}
	y, x := vecs(d)
	done := make(chan error, 1)
	go func() {
		_, err := d.SMVP(y, x)
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(watchdog):
		t.Fatal("injected PE panic deadlocked the aggregated kernel")
	}
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("aggregated faulted kernel error: %v, want ErrPoisoned", err)
	}
	if got := in.Count(fault.Panic); got != 1 {
		t.Fatalf("injector counted %d panics, want 1", got)
	}
	if _, err := d.SMVP(y, x); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("SMVP after poison: %v", err)
	}
	closed := make(chan struct{})
	go func() {
		d.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(watchdog):
		t.Fatal("Close deadlocked on a poisoned aggregated Dist")
	}
}
