package par

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// SMVPOverlapped computes y = K·x with the restructured kernel the
// paper's footnote 1 describes but the Quake applications did not
// implement: each PE computes its boundary rows first, posts their
// partial sums to its neighbors, computes its interior rows while the
// messages are in flight, and only then waits for incoming partials.
// Interior computation hides the exchange.
//
// Unlike the phased SMVP, whose PEs meet at a barrier between the
// computation and exchange phases, this variant lets PEs proceed
// independently between the boundary computation and the receive: the
// only cross-PE synchronization is the preallocated per-neighbor ready
// channel signaled when a message buffer is complete. The kernel runs
// on the same persistent PEs and workspaces as SMVP — no goroutines
// are spawned and nothing is allocated in steady state.
//
// The returned Timing attributes boundary+interior work to Compute and
// post+receive (including any wait) to Comm; like SMVP's, it is owned
// by the Dist and overwritten by the next kernel call.
func (d *Dist) SMVPOverlapped(y, x []float64) (*Timing, error) {
	if len(x) != 3*d.GlobalNodes || len(y) != 3*d.GlobalNodes {
		return nil, fmt.Errorf("par: SMVPOverlapped needs vectors of length %d, got %d/%d",
			3*d.GlobalNodes, len(x), len(y))
	}
	d.rt.met.smvps.Add(1)
	return d.rt.runKernel(d.rt.overlapBody, y, x)
}

// overlappedPE is the per-PE body of the overlapped kernel. Message
// delivery is the ready-channel signal: the receiver then reads the
// sender's buffer in place. Each directed pair carries exactly one
// message per invocation and every receive is drained before the done
// barrier, so the capacity-1 channels and the send buffers are clean
// for reuse by the next kernel.
func (rt *peRuntime) overlappedPE(pe int) {
	ws := &rt.ws[pe]
	nodes := rt.nodes[pe]
	x, y := rt.x, rt.y
	fi, iter := rt.fi, rt.iter
	for l, g := range nodes {
		copy(ws.x[3*l:3*l+3], x[3*g:3*g+3])
	}

	// Boundary rows first.
	sp := obs.StartSpanPE("compute", "par.overlap.boundary", pe)
	t0 := time.Now()
	rt.k[pe].MulVecRows(ws.y, ws.x, rt.boundary[pe])
	boundaryDur := time.Since(t0)
	sp.End()

	// Fault hook before the posts: a PE that dies here has promised
	// messages its neighbors will wait for — the containment in runBody
	// releases their ready channels.
	if fi != nil {
		fi.AfterCompute(pe, iter)
	}

	// Post partials while interior work remains.
	sp = obs.StartSpanPE("exchange", "par.overlap.post", pe)
	t0 = time.Now()
	var sent int64
	for k, locals := range rt.shared[pe] {
		buf := ws.send[k]
		for s, l := range locals {
			copy(buf[3*s:3*s+3], ws.y[3*l:3*l+3])
		}
		if fi != nil {
			fi.CorruptSend(pe, int(rt.neighbors[pe][k]), iter, buf)
		}
		rt.ws[rt.neighbors[pe][k]].ready[ws.rev[k]] <- struct{}{}
		n := bytesPerSharedNode * int64(len(locals))
		sent += n
		rt.met.msgBytes.Observe(n)
	}
	postDur := time.Since(t0)
	rt.met.exchBytes[pe].Add(sent)
	rt.met.exchMsgs.Add(int64(len(rt.shared[pe])))
	sp.End()

	// Interior rows overlap the exchange.
	sp = obs.StartSpanPE("compute", "par.overlap.interior", pe)
	t0 = time.Now()
	rt.k[pe].MulVecRows(ws.y, ws.x, rt.interior[pe])
	interiorDur := time.Since(t0)
	sp.End()

	// Receive and accumulate.
	sp = obs.StartSpanPE("exchange", "par.overlap.recv", pe)
	t0 = time.Now()
	var recvd int64
	for k, nbr := range rt.neighbors[pe] {
		<-ws.ready[k]
		buf := rt.ws[nbr].send[ws.rev[k]]
		locals := rt.shared[pe][k]
		reps := 1
		if fi != nil {
			reps = fi.Deliver(int(nbr), pe, iter)
		}
		for ; reps > 0; reps-- {
			for s, l := range locals {
				ws.y[3*l] += buf[3*s]
				ws.y[3*l+1] += buf[3*s+1]
				ws.y[3*l+2] += buf[3*s+2]
			}
			recvd += bytesPerSharedNode * int64(len(locals))
		}
	}
	recvDur := time.Since(t0)
	rt.met.exchBytes[pe].Add(recvd)
	sp.End()

	for l, g := range nodes {
		if rt.owner[g] != int32(pe) {
			continue
		}
		copy(y[3*g:3*g+3], ws.y[3*l:3*l+3])
	}
	rt.tm.Compute[pe] = boundaryDur + interiorDur
	rt.tm.Comm[pe] = postDur + recvDur
	rt.met.observeCompute(pe, iter, rt.tm.Compute[pe])
	rt.met.observeExchange(pe, iter, rt.tm.Comm[pe])
}

// BoundaryFraction returns, for each PE, the fraction of its local
// block rows that are boundary rows — a quick gauge of how much work is
// available to hide communication behind (1 − fraction of interior).
func (d *Dist) BoundaryFraction() []float64 {
	out := make([]float64, d.P)
	for i := 0; i < d.P; i++ {
		total := len(d.Boundary[i]) + len(d.Interior[i])
		if total > 0 {
			out[i] = float64(len(d.Boundary[i])) / float64(total)
		}
	}
	return out
}
