package par

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// SMVPOverlapped computes y = K·x with the restructured kernel the
// paper's footnote 1 describes but the Quake applications did not
// implement: each PE computes its boundary rows first, posts their
// partial sums to its neighbors, computes its interior rows while the
// messages are in flight, and only then waits for incoming partials.
// Interior computation hides the exchange.
//
// Unlike SMVP, which runs phase-by-phase on a worker pool with implicit
// barriers, this variant runs one goroutine per PE with buffered
// channels, because the whole point is that PEs proceed independently
// between the boundary computation and the receive.
//
// The returned Timing attributes boundary+interior work to Compute and
// post+receive (including any wait) to Comm.
func (d *Dist) SMVPOverlapped(y, x []float64) (*Timing, error) {
	if len(x) != 3*d.GlobalNodes || len(y) != 3*d.GlobalNodes {
		return nil, fmt.Errorf("par: SMVPOverlapped needs vectors of length %d, got %d/%d",
			3*d.GlobalNodes, len(x), len(y))
	}
	tm := &Timing{
		Compute: make([]time.Duration, d.P),
		Comm:    make([]time.Duration, d.P),
	}
	// in[i][k] carries the buffer from Neighbors[i][k] to PE i.
	in := make([][]chan []float64, d.P)
	for i := 0; i < d.P; i++ {
		in[i] = make([]chan []float64, len(d.Neighbors[i]))
		for k := range in[i] {
			in[i][k] = make(chan []float64, 1)
		}
	}
	// Reverse index: revIdx[i][k] is PE i's position in the neighbor
	// list of Neighbors[i][k].
	revIdx := make([][]int, d.P)
	for i := 0; i < d.P; i++ {
		revIdx[i] = make([]int, len(d.Neighbors[i]))
		for k, nbr := range d.Neighbors[i] {
			revIdx[i][k] = indexOf(d.Neighbors[nbr], int32(i))
		}
	}

	d.met.smvps.Add(1)
	var wg sync.WaitGroup
	wg.Add(d.P)
	for pe := 0; pe < d.P; pe++ {
		go func(pe int) {
			defer wg.Done()
			nodes := d.Nodes[pe]
			xl := make([]float64, 3*len(nodes))
			for l, g := range nodes {
				copy(xl[3*l:3*l+3], x[3*g:3*g+3])
			}
			yl := make([]float64, 3*len(nodes))

			// Boundary rows first.
			sp := obs.StartSpanPE("compute", "par.overlap.boundary", pe)
			t0 := time.Now()
			d.K[pe].MulVecRows(yl, xl, d.Boundary[pe])
			boundaryDur := time.Since(t0)
			sp.End()

			// Post partials while interior work remains.
			sp = obs.StartSpanPE("exchange", "par.overlap.post", pe)
			t0 = time.Now()
			var sent int64
			for k, locals := range d.Shared[pe] {
				buf := make([]float64, 3*len(locals))
				for s, l := range locals {
					copy(buf[3*s:3*s+3], yl[3*l:3*l+3])
				}
				in[d.Neighbors[pe][k]][revIdx[pe][k]] <- buf
				n := bytesPerSharedNode * int64(len(locals))
				sent += n
				d.met.msgBytes.Observe(n)
			}
			postDur := time.Since(t0)
			d.met.exchBytes[pe].Add(sent)
			d.met.exchMsgs.Add(int64(len(d.Shared[pe])))
			sp.End()

			// Interior rows overlap the exchange.
			sp = obs.StartSpanPE("compute", "par.overlap.interior", pe)
			t0 = time.Now()
			d.K[pe].MulVecRows(yl, xl, d.Interior[pe])
			interiorDur := time.Since(t0)
			sp.End()

			// Receive and accumulate.
			sp = obs.StartSpanPE("exchange", "par.overlap.recv", pe)
			t0 = time.Now()
			var recvd int64
			for k := range d.Neighbors[pe] {
				buf := <-in[pe][k]
				locals := d.Shared[pe][k]
				for s, l := range locals {
					yl[3*l] += buf[3*s]
					yl[3*l+1] += buf[3*s+1]
					yl[3*l+2] += buf[3*s+2]
				}
				recvd += bytesPerSharedNode * int64(len(locals))
			}
			recvDur := time.Since(t0)
			d.met.exchBytes[pe].Add(recvd)
			sp.End()

			for l, g := range nodes {
				if d.Owner[g] != int32(pe) {
					continue
				}
				copy(y[3*g:3*g+3], yl[3*l:3*l+3])
			}
			tm.Compute[pe] = boundaryDur + interiorDur
			tm.Comm[pe] = postDur + recvDur
		}(pe)
	}
	wg.Wait()
	return tm, nil
}

// BoundaryFraction returns, for each PE, the fraction of its local
// block rows that are boundary rows — a quick gauge of how much work is
// available to hide communication behind (1 − fraction of interior).
func (d *Dist) BoundaryFraction() []float64 {
	out := make([]float64, d.P)
	for i := 0; i < d.P; i++ {
		total := len(d.Boundary[i]) + len(d.Interior[i])
		if total > 0 {
			out[i] = float64(len(d.Boundary[i])) / float64(total)
		}
	}
	return out
}
