package par

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/partition"
	"repro/internal/solver"
)

// watchdog is the containment deadline: a PE panic must surface as a
// returned error well within it, never as a hung barrier.
const watchdog = 30 * time.Second

func mustPlan(t *testing.T, s string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return p
}

func vecs(d *Dist) (y, x []float64) {
	n := 3 * d.GlobalNodes
	y = make([]float64, n)
	x = make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	return y, x
}

// TestPanicContainmentPhased injects a panic into one PE mid-kernel and
// requires the phased SMVP to return an error wrapping ErrPoisoned
// within the watchdog — the other PEs must be released from the phase
// barrier, not left waiting on the dead PE. Every later kernel must
// fail fast with the same sticky error, and Close must still work.
func TestPanicContainmentPhased(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 4, partition.RCB)
	in, err := d.InjectFaults(mustPlan(t, "panic:pe=2,iter=1"))
	if err != nil {
		t.Fatal(err)
	}
	y, x := vecs(d)

	done := make(chan error, 1)
	go func() {
		_, err := d.SMVP(y, x)
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(watchdog):
		t.Fatal("injected PE panic deadlocked the kernel instead of returning an error")
	}
	if err == nil {
		t.Fatal("faulted kernel returned nil error")
	}
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("faulted kernel error does not wrap ErrPoisoned: %v", err)
	}
	if got := in.Count(fault.Panic); got != 1 {
		t.Fatalf("injector counted %d panics, want 1", got)
	}

	// Sticky poison: every kernel entry point fails fast.
	if _, err := d.SMVP(y, x); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("SMVP after poison: %v", err)
	}
	if _, err := d.SMVPOverlapped(y, x); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("SMVPOverlapped after poison: %v", err)
	}
	s, err := NewDistSim(d, f.sys.MassNode, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(f.m.Coords, simCfg(f, 3)); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("DistSim.Run after poison: %v", err)
	}
	// Re-arming a poisoned Dist is refused too.
	if _, err := d.InjectFaults(nil); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("InjectFaults after poison: %v", err)
	}

	closed := make(chan struct{})
	go func() {
		d.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(watchdog):
		t.Fatal("Close deadlocked on a poisoned Dist")
	}
}

// TestPanicContainmentOverlapped repeats the containment check for the
// overlapped kernel, whose PEs synchronize on per-neighbor ready
// channels instead of the phase barrier: the dying PE's unposted
// messages must be force-released so its neighbors' receives return.
func TestPanicContainmentOverlapped(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 4, partition.RCB)
	// Fire on the second kernel so one clean overlapped pass precedes it.
	if _, err := d.InjectFaults(mustPlan(t, "panic:pe=1,iter=2")); err != nil {
		t.Fatal(err)
	}
	y, x := vecs(d)
	if _, err := d.SMVPOverlapped(y, x); err != nil {
		t.Fatalf("clean kernel before the fault: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := d.SMVPOverlapped(y, x)
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(watchdog):
		t.Fatal("injected PE panic deadlocked the overlapped kernel")
	}
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("overlapped kernel error does not wrap ErrPoisoned: %v", err)
	}
	if _, err := d.SMVPOverlapped(y, x); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("second overlapped kernel after poison: %v", err)
	}
}

// TestSelfHealingCGUnderCorruption is the end-to-end robustness check:
// a seeded bit-corruption plan flips exponent bits in exchanged partial
// sums mid-solve, and self-healing CG must detect the damage via its
// true-residual audits, roll back to a certified checkpoint, and still
// converge to the fault-free answer.
func TestSelfHealingCGUnderCorruption(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 4, partition.RCB)
	op := Operator{D: d, Shift: 20, MassNode: f.sys.MassNode}
	n := op.Dim()
	b := make([]float64, n)
	b[5] = 1e2
	b[n-4] = -3e1

	clean := make([]float64, n)
	if res, err := solver.CG(op, b, clean, solver.Config{MaxIter: 6 * n, Tol: 1e-10}); err != nil || !res.Converged {
		t.Fatalf("fault-free solve: converged=%v err=%v", res != nil && res.Converged, err)
	}

	// Directed at PE 0, which owns its shared boundary nodes (owners are
	// the first resident PE), so the flipped partial sums reach the
	// gathered result; bit 62 makes the corruption drastic rather than a
	// transient CG can quietly absorb.
	in, err := d.InjectFaults(mustPlan(t, "seed:3;corrupt:pe=1->0,iter=4,bit=62;corrupt:pe=1->0,iter=40,bit=62"))
	if err != nil {
		t.Fatal(err)
	}
	healed := make([]float64, n)
	res, err := solver.CG(op, b, healed, solver.Config{
		MaxIter: 6 * n, Tol: 1e-10, CheckEvery: 5, MaxRecoveries: 8,
	})
	if err != nil {
		t.Fatalf("self-healing solve failed: %v", err)
	}
	if !res.Converged {
		t.Fatalf("self-healing solve did not converge: %+v", res)
	}
	if got := in.Count(fault.Corrupt); got < 1 {
		t.Fatalf("corruption plan never fired (injected %d)", got)
	}
	if res.Detections < 1 {
		t.Fatalf("corruption fired but CG detected nothing: %+v", res)
	}
	if res.Rollbacks+res.Restarts < 1 {
		t.Fatalf("CG detected corruption but never rolled back or restarted: %+v", res)
	}

	var scale float64
	for _, v := range clean {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for i := range clean {
		if math.Abs(healed[i]-clean[i]) > 1e-6*(1+scale) {
			t.Fatalf("healed solution differs from fault-free at %d: %g vs %g", i, healed[i], clean[i])
		}
	}

	// Disarm and confirm the Dist is unharmed.
	if _, err := d.InjectFaults(nil); err != nil {
		t.Fatal(err)
	}
	y, x := vecs(d)
	if _, err := d.SMVP(y, x); err != nil {
		t.Fatalf("kernel after disarm: %v", err)
	}
}

// TestDropAndDupPerturbResult confirms drop and duplicate faults reach
// the exchange: a dropped or doubled partial-sum block must change the
// SMVP result on the shared boundary, and a later disarmed kernel must
// reproduce the clean answer (one-shot events do not linger).
func TestDropAndDupPerturbResult(t *testing.T) {
	f := newFixture(t)
	// Direction matters: only partial sums flowing toward the owner of
	// the shared nodes (the first resident PE, here PE 0) reach the
	// gathered global result.
	for _, plan := range []string{"drop:pe=1->0,iter=1", "dup:pe=1->0,iter=1"} {
		d, _ := f.dist(t, 2, partition.RCB)
		y, x := vecs(d)
		ref := make([]float64, len(y))
		if _, err := d.SMVP(ref, x); err != nil {
			t.Fatal(err)
		}
		in, err := d.InjectFaults(mustPlan(t, plan))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.SMVP(y, x); err != nil {
			t.Fatalf("%s: faulted kernel: %v", plan, err)
		}
		if in.Total() == 0 {
			t.Fatalf("%s: plan never fired", plan)
		}
		diff := false
		for i := range y {
			if y[i] != ref[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatalf("%s: fault did not perturb the result", plan)
		}
		if _, err := d.SMVP(y, x); err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if y[i] != ref[i] {
				t.Fatalf("%s: one-shot fault leaked into a later kernel at %d", plan, i)
			}
		}
		d.Close()
	}
}

// TestInjectFaultsValidation checks arming-time validation: plans whose
// events reference PEs outside the Dist are rejected, and a nil plan
// disarms without error.
func TestInjectFaultsValidation(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 2, partition.RCB)
	if _, err := d.InjectFaults(mustPlan(t, "panic:pe=9,iter=1")); err == nil {
		t.Fatal("plan with out-of-range PE was accepted")
	}
	if _, err := d.InjectFaults(mustPlan(t, "drop:pe=0->5,iter=1")); err == nil {
		t.Fatal("plan with out-of-range destination was accepted")
	}
	in, err := d.InjectFaults(nil)
	if err != nil || in != nil {
		t.Fatalf("disarming: injector=%v err=%v", in, err)
	}
	y, x := vecs(d)
	if _, err := d.SMVP(y, x); err != nil {
		t.Fatal(err)
	}
}

// TestStallDelaysKernel checks that a stall event holds its PE inside
// the kernel for the requested duration without corrupting the result.
func TestStallDelaysKernel(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 2, partition.RCB)
	y, x := vecs(d)
	ref := make([]float64, len(y))
	if _, err := d.SMVP(ref, x); err != nil {
		t.Fatal(err)
	}
	const hold = 50 * time.Millisecond
	if _, err := d.InjectFaults(mustPlan(t, "stall:pe=0,dur=50ms")); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if _, err := d.SMVP(y, x); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el < hold {
		t.Fatalf("stalled kernel finished in %v, want ≥ %v", el, hold)
	}
	for i := range y {
		if y[i] != ref[i] {
			t.Fatalf("stall changed the result at %d", i)
		}
	}
}

// TestKillFaultTyped checks the recovery layer's entry contract: a kill
// fault surfaces as a *PEFaultError that still wraps ErrPoisoned, names
// the dead PE, and carries the *fault.Killed panic value — everything
// internal/recover needs to decide to shrink instead of retry.
func TestKillFaultTyped(t *testing.T) {
	f := newFixture(t)
	d, _ := f.dist(t, 4, partition.RCB)
	if _, err := d.InjectFaults(mustPlan(t, "kill:pe=2,iter=1")); err != nil {
		t.Fatal(err)
	}
	y, x := vecs(d)
	done := make(chan error, 1)
	go func() {
		_, err := d.SMVP(y, x)
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(watchdog):
		t.Fatal("kill fault deadlocked the kernel")
	}
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("kill error does not wrap ErrPoisoned: %v", err)
	}
	var pf *PEFaultError
	if !errors.As(err, &pf) {
		t.Fatalf("kill error is not a *PEFaultError: %v", err)
	}
	if pf.PE != 2 || pf.Iter != 1 || pf.Faults != 1 {
		t.Fatalf("fault record %+v", pf)
	}
	k, ok := pf.Val.(*fault.Killed)
	if !ok {
		t.Fatalf("panic value %T, want *fault.Killed", pf.Val)
	}
	if k.PE != 2 {
		t.Fatalf("killed value %+v", k)
	}
	// A plain injected panic must NOT look like a kill.
	d2, _ := f.dist(t, 4, partition.RCB)
	if _, err := d2.InjectFaults(mustPlan(t, "panic:pe=1,iter=1")); err != nil {
		t.Fatal(err)
	}
	_, err = d2.SMVP(y, x)
	if !errors.As(err, &pf) {
		t.Fatalf("panic error is not a *PEFaultError: %v", err)
	}
	if _, ok := pf.Val.(*fault.Killed); ok {
		t.Fatal("software panic misreported as a kill")
	}
}
