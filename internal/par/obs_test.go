package par

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/partition"
)

// TestExchangeBytesMatchProfile asserts the telemetry cross-check at
// the heart of the observability layer: the bytes the runtime actually
// moves through each PE during one SMVP equal the partition profile's
// analytic C accounting (words sent + received, ×8 bytes/word), for
// both the barrier and the overlapped kernels.
func TestExchangeBytesMatchProfile(t *testing.T) {
	f := newFixture(t)
	const p = 4
	d, pr := f.dist(t, p, partition.RCB)

	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	x := make([]float64, 3*d.GlobalNodes)
	y := make([]float64, 3*d.GlobalNodes)
	for i := range x {
		x[i] = float64(i%5) * 0.5
	}

	peBytes := func(snap *obs.Snapshot, pe int) int64 {
		return snap.Counters[fmt.Sprintf("par.exchange.bytes.pe%d", pe)]
	}

	for _, kernel := range []struct {
		name string
		run  func() error
	}{
		{"SMVP", func() error { _, err := d.SMVP(y, x); return err }},
		{"SMVPOverlapped", func() error { _, err := d.SMVPOverlapped(y, x); return err }},
	} {
		before := obs.Default.Snapshot()
		if err := kernel.run(); err != nil {
			t.Fatal(err)
		}
		after := obs.Default.Snapshot()
		for pe := 0; pe < p; pe++ {
			got := peBytes(after, pe) - peBytes(before, pe)
			want := 8 * pr.C[pe]
			if got != want {
				t.Errorf("%s: PE %d exchanged %d bytes, profile C accounting says %d",
					kernel.name, pe, got, want)
			}
		}
		msgs := after.Counters["par.exchange.msgs"] - before.Counters["par.exchange.msgs"]
		if want := pr.TotalMessages(); msgs != want {
			t.Errorf("%s: %d messages observed, profile says %d", kernel.name, msgs, want)
		}
	}
}

// TestDistSimExchangeBytes checks the distributed integrator's per-step
// exchange accounting: steps × 8·C[i] bytes per PE.
func TestDistSimExchangeBytes(t *testing.T) {
	f := newFixture(t)
	const p, steps = 4, 5
	d, pr := f.dist(t, p, partition.RCB)
	sim, err := NewDistSim(d, f.sys.MassNode, nil)
	if err != nil {
		t.Fatal(err)
	}

	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	before := obs.Default.Snapshot()
	cfg := simCfg(f, steps)
	if _, err := sim.Run(f.m.Coords, cfg); err != nil {
		t.Fatal(err)
	}
	after := obs.Default.Snapshot()
	for pe := 0; pe < p; pe++ {
		name := fmt.Sprintf("par.exchange.bytes.pe%d", pe)
		got := after.Counters[name] - before.Counters[name]
		want := steps * 8 * pr.C[pe]
		if got != want {
			t.Errorf("PE %d exchanged %d bytes over %d steps, want %d", pe, got, steps, want)
		}
	}
}
