package par

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/partition"
)

// TestPhaseAccumsPopulated asserts the per-PE phase accumulators and
// merged histograms fill during SMVP: one observation per PE per
// invocation, for both kernels.
func TestPhaseAccumsPopulated(t *testing.T) {
	f := newFixture(t)
	const p = 4
	d, _ := f.dist(t, p, partition.RCB)

	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	x := make([]float64, 3*d.GlobalNodes)
	y := make([]float64, 3*d.GlobalNodes)
	for i := range x {
		x[i] = float64(i%7) * 0.25
	}

	before := obs.Default.Snapshot()
	const iters = 5
	for i := 0; i < iters; i++ {
		if _, err := d.SMVP(y, x); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < iters; i++ {
		if _, err := d.SMVPOverlapped(y, x); err != nil {
			t.Fatal(err)
		}
	}
	delta := obs.Default.Snapshot().Sub(before)

	for _, name := range []string{"par.phase.compute.ns", "par.phase.exchange.ns"} {
		as, found := delta.PEAccums[name]
		if !found {
			t.Fatalf("%s missing from snapshot", name)
		}
		if len(as.Count) < p {
			t.Fatalf("%s has %d slots, want >= %d", name, len(as.Count), p)
		}
		for pe := 0; pe < p; pe++ {
			if as.Count[pe] != 2*iters {
				t.Errorf("%s PE%d count = %d, want %d", name, pe, as.Count[pe], 2*iters)
			}
			if as.Sum[pe] <= 0 {
				t.Errorf("%s PE%d sum = %d, want > 0", name, pe, as.Sum[pe])
			}
			// Max is a process-lifetime high-water mark — Sub copies it
			// verbatim — so it cannot be bounded by this window's Sum when
			// earlier tests already observed a slow kernel.
			if as.Max[pe] <= 0 {
				t.Errorf("%s PE%d max = %d, want > 0", name, pe, as.Max[pe])
			}
		}
	}
	for _, name := range []string{"par.phase.compute.hist_ns", "par.phase.exchange.hist_ns"} {
		hs, found := delta.Histograms[name]
		if !found || hs.Count != int64(2*iters*p) {
			t.Errorf("%s count = %d (found=%v), want %d", name, hs.Count, found, 2*iters*p)
		}
		if q := hs.Quantile(0.5); q <= 0 {
			t.Errorf("%s p50 = %g, want > 0", name, q)
		}
	}
}

// TestDistSimPhaseAccums asserts the explicit integrator records all
// three phases, including update.
func TestDistSimPhaseAccums(t *testing.T) {
	f := newFixture(t)
	const p = 4
	d, _ := f.dist(t, p, partition.RCB)

	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	before := obs.Default.Snapshot()
	const steps = 6
	sim, err := NewDistSim(d, f.sys.MassNode, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(f.m.Coords, simCfg(f, steps)); err != nil {
		t.Fatal(err)
	}
	delta := obs.Default.Snapshot().Sub(before)

	for _, name := range []string{
		"par.phase.compute.ns", "par.phase.exchange.ns", "par.phase.update.ns",
	} {
		as, found := delta.PEAccums[name]
		if !found {
			t.Fatalf("%s missing from snapshot", name)
		}
		for pe := 0; pe < p; pe++ {
			if as.Count[pe] != steps {
				t.Errorf("%s PE%d count = %d, want %d", name, pe, as.Count[pe], steps)
			}
		}
	}
}

// TestFlightDumpOnFault injects a kill and asserts the runtime dumps
// the flight ring: the dump must hold the phase spans leading up to the
// failure and the fault events themselves.
func TestFlightDumpOnFault(t *testing.T) {
	f := newFixture(t)
	const p = 4
	d, _ := f.dist(t, p, partition.RCB)

	path := filepath.Join(t.TempDir(), "fault.trace.json")
	obs.FlightRecorder.SetDumpPath(path)
	defer obs.FlightRecorder.SetDumpPath("")

	x := make([]float64, 3*d.GlobalNodes)
	y := make([]float64, 3*d.GlobalNodes)
	for i := range x {
		x[i] = 1
	}

	// A few healthy kernels first, so the ring holds spans.
	for i := 0; i < 3; i++ {
		if _, err := d.SMVP(y, x); err != nil {
			t.Fatal(err)
		}
	}

	plan := &fault.Plan{Events: []fault.Event{{Kind: fault.Kill, PE: 2, Iter: 2}}}
	if _, err := d.InjectFaults(plan); err != nil {
		t.Fatal(err)
	}
	// Armed-kernel iter 1 is clean; iter 2 kills PE 2 and poisons the
	// Dist, which must trigger the auto-dump.
	if _, err := d.SMVP(y, x); err != nil {
		t.Fatalf("iter 1 should run clean: %v", err)
	}
	_, err := d.SMVP(y, x)
	var pf *PEFaultError
	if !errors.As(err, &pf) || pf.PE != 2 {
		t.Fatalf("iter 2 should fault on PE 2, got %v", err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("flight dump not written: %v", err)
	}
	var dump struct {
		Reason string `json:"reason"`
		Events []struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
			PE   int    `json:"pe"`
		} `json:"events"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if !strings.Contains(dump.Reason, "fault") {
		t.Errorf("dump reason = %q, want a fault reason", dump.Reason)
	}
	var spans, faults int
	var sawKill, sawPanic, sawPoison bool
	for _, e := range dump.Events {
		switch e.Kind {
		case "span":
			spans++
		case "fault":
			faults++
			switch e.Name {
			case "fault.injected.kill":
				sawKill = e.PE == 2 || sawKill
			case "par.pe.panic":
				sawPanic = e.PE == 2 || sawPanic
			case "par.barrier.poison":
				sawPoison = true
			}
		}
	}
	if spans == 0 {
		t.Error("dump holds no phase spans")
	}
	if !sawKill || !sawPanic || !sawPoison {
		t.Errorf("dump missing fault chain: kill=%v panic=%v poison=%v (faults=%d)",
			sawKill, sawPanic, sawPoison, faults)
	}
}
