package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func renderToString(t *testing.T, tab *Table) string {
	t.Helper()
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestPhaseSummary(t *testing.T) {
	// The profile a traced aggregated SMVP run produces: the two-level
	// exchange adds the par.smvp.gather phase next to the classic ones.
	stats := []obs.PhaseStat{
		{Name: "par.smvp.compute", Count: 64, Total: 640 * time.Microsecond, Max: 15 * time.Microsecond, Tracks: 8},
		{Name: "par.smvp.gather", Count: 8, Total: 80 * time.Microsecond, Max: 12 * time.Microsecond, Tracks: 2},
		{Name: "par.smvp.accumulate", Count: 0, Total: 0, Max: 0, Tracks: 0},
	}
	out := renderToString(t, PhaseSummary("phases", stats))
	for _, want := range []string{"phase", "count", "tracks", "total", "max", "mean",
		"par.smvp.gather", "10 µs"} { // mean of the gather row: 80µs / 8
		if !strings.Contains(out, want) {
			t.Errorf("PhaseSummary missing %q:\n%s", want, out)
		}
	}
	// The zero-count row must render (mean guarded against divide by
	// zero) rather than panic or vanish.
	if !strings.Contains(out, "par.smvp.accumulate") {
		t.Errorf("zero-count phase dropped:\n%s", out)
	}
}

func TestAggregationSummaryAnalytic(t *testing.T) {
	// No replay times anywhere: the time columns must be omitted.
	rows := []AggregationRow{
		{NodeSize: 1, Nodes: 16, FlatBmax: 9, InterBmax: 9, FlatBlocks: 120, FusedBlocks: 120, PayloadWords: 5000},
		{NodeSize: 4, Nodes: 4, FlatBmax: 9, InterBmax: 3, FlatBlocks: 120, FusedBlocks: 12, PayloadWords: 5000, CopiedWords: 2500, Beta: 1.25},
	}
	out := renderToString(t, AggregationSummary("tradeoff", rows))
	for _, want := range []string{"node size", "fused B_max", "copied words", "copy overhead", "β",
		"0.5", // 2500/5000
		"1.25"} {
		if !strings.Contains(out, want) {
			t.Errorf("analytic table missing %q:\n%s", want, out)
		}
	}
	for _, reject := range []string{"exchange", "vs flat"} {
		if strings.Contains(out, reject) {
			t.Errorf("analytic table has time column %q:\n%s", reject, out)
		}
	}
}

func TestAggregationSummaryTimed(t *testing.T) {
	rows := []AggregationRow{
		{NodeSize: 1, Nodes: 8, FlatBmax: 7, InterBmax: 7, FlatBlocks: 40, FusedBlocks: 40,
			PayloadWords: 900, Beta: 1, FlatComm: 200e-6, AggComm: 200e-6},
		{NodeSize: 8, Nodes: 1, FlatBmax: 7, FlatBlocks: 40,
			PayloadWords: 900, CopiedWords: 900, Beta: 1, FlatComm: 200e-6, AggComm: 50e-6},
		// A row with a missing flat anchor renders "-" instead of a ratio.
		{NodeSize: 2, Nodes: 4, FlatBmax: 7, InterBmax: 4, FlatBlocks: 40, FusedBlocks: 10,
			PayloadWords: 900, CopiedWords: 300, Beta: 1.1, AggComm: 120e-6},
	}
	out := renderToString(t, AggregationSummary("tradeoff", rows))
	for _, want := range []string{"exchange", "vs flat",
		"1.000", // flat anchor ratio
		"0.250", // 50µs / 200µs
		"50 µs"} {
		if !strings.Contains(out, want) {
			t.Errorf("timed table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.HasSuffix(strings.TrimRight(last, " "), "-") {
		t.Errorf("missing flat anchor should render '-' ratio, got %q", last)
	}
}
