package report

// AggregationRow is one node size of a two-level exchange sweep: the
// blocks-vs-words tradeoff of comm.Aggregate on one scenario/partition,
// optionally with replayed exchange times.
type AggregationRow struct {
	NodeSize int // PEs per node (1 = flat exchange)
	Nodes    int
	// FlatBmax / InterBmax are the paper's B_max before aggregation and
	// the max fused inter-node blocks per PE after.
	FlatBmax, InterBmax int64
	// FlatBlocks / FusedBlocks are the directed totals.
	FlatBlocks, FusedBlocks int64
	// PayloadWords is the application's exchange volume; CopiedWords is
	// the extra gather+scatter staging volume aggregation adds.
	PayloadWords, CopiedWords int64
	// Beta is the Eq.(2) error bound evaluated on the fused leg.
	Beta float64
	// FlatComm / AggComm are replayed exchange times in seconds; both
	// zero means the sweep was analytic only and the columns are
	// omitted.
	FlatComm, AggComm float64
}

// AggregationSummary renders the tradeoff table of a node-size sweep:
// how many expensive inter-node blocks the two-level exchange removes
// (the paper's latency-bound term) and how many cheap copied words it
// pays for them.
func AggregationSummary(title string, rows []AggregationRow) *Table {
	timed := false
	for _, r := range rows {
		if r.FlatComm != 0 || r.AggComm != 0 {
			timed = true
			break
		}
	}
	headers := []string{"node size", "nodes", "B_max", "fused B_max",
		"blocks", "fused", "payload words", "copied words", "copy overhead", "β"}
	if timed {
		headers = append(headers, "exchange", "vs flat")
	}
	t := New(title, headers...)
	for _, r := range rows {
		overhead := 0.0
		if r.PayloadWords > 0 {
			overhead = float64(r.CopiedWords) / float64(r.PayloadWords)
		}
		cells := []string{
			Int(int64(r.NodeSize)),
			Int(int64(r.Nodes)),
			Int(r.FlatBmax),
			Int(r.InterBmax),
			Int(r.FlatBlocks),
			Int(r.FusedBlocks),
			Int(r.PayloadWords),
			Int(r.CopiedWords),
			F(overhead, 3),
			F(r.Beta, 3),
		}
		if timed {
			cells = append(cells, SI(r.AggComm, "s"))
			ratio := "-"
			if r.FlatComm > 0 {
				ratio = F(r.AggComm/r.FlatComm, 3)
			}
			cells = append(cells, ratio)
		}
		t.AddRow(cells...)
	}
	return t
}
