// Package report renders the experiment tables and data series the
// benchmark harness produces: fixed-width text tables (mirroring the
// paper's figures) and CSV for plotting.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table in CSV form (header row first). Cells containing
// commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(strconv.Quote(c))
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown writes the table as a GitHub-flavored Markdown table, with
// the title as a bold caption line.
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("**")
		b.WriteString(t.Title)
		b.WriteString("**\n\n")
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	b.WriteString("|")
	for range t.Headers {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Int formats an integer with thousands separators, the way the paper's
// tables print flop and word counts.
func Int(v int64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	s := strconv.FormatInt(v, 10)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// SI formats a value with an SI suffix (n, µ, m, "", K, M, G) chosen by
// magnitude, with three significant digits — handy for times and rates.
func SI(v float64, unit string) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	type scale struct {
		factor float64
		prefix string
	}
	scales := []scale{
		{1e9, "G"}, {1e6, "M"}, {1e3, "K"}, {1, ""},
		{1e-3, "m"}, {1e-6, "µ"}, {1e-9, "n"},
	}
	if abs == 0 {
		return "0 " + unit
	}
	for _, s := range scales {
		if abs >= s.factor {
			return fmt.Sprintf("%.3g %s%s", v/s.factor, s.prefix, unit)
		}
	}
	return fmt.Sprintf("%.3g n%s", v/1e-9, unit)
}
