package report

import (
	"time"

	"repro/internal/obs"
)

// PhaseSummary renders the tracer's per-phase aggregates as a table:
// one row per span name, sorted by total time, with the invocation
// count, the number of distinct tracks (PEs) the phase ran on, and
// total / max / mean span durations. This is the human-readable
// companion to the Chrome trace the -trace flag writes.
func PhaseSummary(title string, stats []obs.PhaseStat) *Table {
	t := New(title, "phase", "count", "tracks", "total", "max", "mean")
	for _, s := range stats {
		mean := time.Duration(0)
		if s.Count > 0 {
			mean = s.Total / time.Duration(s.Count)
		}
		t.AddRow(s.Name,
			Int(s.Count),
			Int(int64(s.Tracks)),
			SI(s.Total.Seconds(), "s"),
			SI(s.Max.Seconds(), "s"),
			SI(mean.Seconds(), "s"))
	}
	return t
}
