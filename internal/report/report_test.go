package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := New("Title", "a", "bbbb", "c")
	tab.AddRow("1", "2", "3")
	tab.AddRow("10", "20") // short row padded
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a ") || !strings.Contains(lines[1], "bbbb") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("separator = %q", lines[2])
	}
	if len(lines) != 5 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Columns aligned: '2' and '20' start at the same offset.
	if strings.Index(lines[3], "2") != strings.Index(lines[4], "20") {
		t.Errorf("columns unaligned:\n%s", out)
	}
}

func TestTableRenderNoTitle(t *testing.T) {
	tab := New("", "x")
	tab.AddRow("1")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(sb.String(), "\n") {
		t.Error("leading newline with empty title")
	}
}

func TestCSV(t *testing.T) {
	tab := New("t", "a", "b")
	tab.AddRow("1", "x,y")
	tab.AddRow("2", `say "hi"`)
	var sb strings.Builder
	if err := tab.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `1,"x,y"` {
		t.Errorf("quoted cell = %q", lines[1])
	}
	if !strings.Contains(lines[2], `\"hi\"`) {
		t.Errorf("escaped quotes = %q", lines[2])
	}
}

func TestInt(t *testing.T) {
	cases := map[int64]string{
		0:          "0",
		999:        "999",
		1000:       "1,000",
		24640110:   "24,640,110",
		-162372024: "-162,372,024",
	}
	for v, want := range cases {
		if got := Int(v); got != want {
			t.Errorf("Int(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestF(t *testing.T) {
	if got := F(3.14159, 2); got != "3.14" {
		t.Errorf("F = %q", got)
	}
	if got := F(2, 0); got != "2" {
		t.Errorf("F = %q", got)
	}
}

func TestSI(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0 s"},
		{22e-6, "22 µs"},
		{5e-9, "5 ns"},
		{1.5e-3, "1.5 ms"},
		{3, "3 s"},
		{2.5e3, "2.5 Ks"},
		{6e8, "600 Ms"},
		{2e9, "2 Gs"},
		{3e-10, "0.3 ns"},
	}
	for _, c := range cases {
		if got := SI(c.v, "s"); got != c.want {
			t.Errorf("SI(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestMarkdown(t *testing.T) {
	tab := New("My Table", "a", "b")
	tab.AddRow("1", "x|y")
	var sb strings.Builder
	if err := tab.Markdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"**My Table**",
		"| a | b |",
		"|---|---|",
		`| 1 | x\|y |`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	// No caption line for untitled tables.
	var sb2 strings.Builder
	if err := New("", "x").Markdown(&sb2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb2.String(), "**") {
		t.Error("unexpected caption")
	}
}
