package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/par"
	rec "repro/internal/recover"
	"repro/internal/regress"
	"repro/internal/solver"
)

// The durable-job metrics. Like the serve.* block in cache.go, all are
// registered once and documented in docs/OBSERVABILITY.md under the
// doc-drift guard.
var (
	jobAccepted   = obs.GetCounter("serve.job.accepted")
	jobDedup      = obs.GetCounter("serve.job.dedup")
	jobCompleted  = obs.GetCounter("serve.job.completed")
	jobFailed     = obs.GetCounter("serve.job.failed")
	jobCanceled   = obs.GetCounter("serve.job.canceled")
	jobRequeued   = obs.GetCounter("serve.job.requeued")
	jobMigrations = obs.GetCounter("serve.job.migrations")
	jobReplays    = obs.GetCounter("serve.job.replays")
	jobItersSaved = obs.GetCounter("serve.job.resumed_iters_saved")
	jobGCPruned   = obs.GetCounter("serve.job.gc.pruned")

	jobJournalRecords     = obs.GetCounter("serve.job.journal.records")
	jobJournalCompactions = obs.GetCounter("serve.job.journal.compactions")
	jobJournalDropped     = obs.GetCounter("serve.job.journal.dropped")
	jobJournalErrors      = obs.GetCounter("serve.job.journal.errors")
	jobJournalBytes       = obs.GetGauge("serve.job.journal.bytes")
)

// JobState is one station of the job lifecycle:
//
//	queued ──→ running ──→ completed | failed | canceled
//	  ↑            │
//	  └────────────┘  (engine shutdown requeues a durable job)
//
// A worker death inside running does not change the state — the job
// migrates to another pool worker and stays running. Terminal states
// never transition again.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobCompleted JobState = "completed"
	JobFailed    JobState = "failed"
	JobCanceled  JobState = "canceled"
)

func (s JobState) valid() bool {
	switch s {
	case JobQueued, JobRunning, JobCompleted, JobFailed, JobCanceled:
		return true
	}
	return false
}

func (s JobState) terminal() bool {
	return s == JobCompleted || s == JobFailed || s == JobCanceled
}

// jobKeepCkpts is the per-job durable-checkpoint window: the newest
// file is what a resume reads; the ones behind it only buy tolerance
// to a torn latest write.
const jobKeepCkpts = 3

// maxJobEvents bounds one job's buffered event history; past it the
// oldest events fall off and a late stream resume skips ahead.
const maxJobEvents = 4096

// Job is one accepted solve tracked through its whole life: admission,
// execution, worker migrations, durable checkpoints, and the terminal
// result. All fields behind mu; the identity fields before it are
// immutable after creation.
type Job struct {
	id       string
	idem     string
	req      *SolveRequest
	key      Key
	fp       Fingerprints
	cacheHit bool
	accepted time.Time

	mu         sync.Mutex
	state      JobState
	attempts   int
	migrations int
	ckptIter   int
	ckptState  *solver.State
	result     *SolveResult
	errMsg     string
	err        error
	finished   time.Time
	replayed   bool
	events     []event
	nextSeq    int64
	// termEmitted marks that the terminal result/error event is in the
	// buffer, so a stream can end only after delivering it.
	termEmitted bool
	done        chan struct{}

	// Durable-resume state loaded at replay, consumed by the first
	// attempt.
	resumeState   *solver.State
	resumeKernels int64
	resumePlan    string
	resumed       bool
}

// JobStatus is a job's point-in-time public state (GET /v1/jobs/{id}).
type JobStatus struct {
	ID             string    `json:"id"`
	State          JobState  `json:"state"`
	Key            Key       `json:"key"`
	IdempotencyKey string    `json:"idempotency_key,omitempty"`
	AcceptedAt     time.Time `json:"accepted_at"`
	// Attempts counts dispatches onto a worker; Migrations counts the
	// re-dispatches forced by a worker death mid-solve.
	Attempts   int `json:"attempts"`
	Migrations int `json:"migrations"`
	// CheckpointIter is the iteration of the newest in-flight
	// checkpoint — where a migration or restart resumes from.
	CheckpointIter int `json:"checkpoint_iter"`
	// NextEvent is the sequence number a stream resume should pass as
	// from_event to continue without gaps.
	NextEvent int64 `json:"next_event"`
	// Replayed marks a job recovered from the journal by an engine
	// restart rather than accepted by this process.
	Replayed bool         `json:"replayed,omitempty"`
	Result   *SolveResult `json:"result,omitempty"`
	Error    string       `json:"error,omitempty"`
	Finished *time.Time   `json:"finished_at,omitempty"`
}

// newJobID draws a crypto-random 12-hex-digit id: ids must stay unique
// across process restarts sharing one journal, so a counter won't do.
func newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to wall-clock nanoseconds; worse distribution,
		// same restart-safety.
		return fmt.Sprintf("j%012x", time.Now().UnixNano()&0xffffffffffff)
	}
	return "j" + hex.EncodeToString(b[:])
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:             j.id,
		State:          j.state,
		Key:            j.key,
		IdempotencyKey: j.idem,
		AcceptedAt:     j.accepted,
		Attempts:       j.attempts,
		Migrations:     j.migrations,
		CheckpointIter: j.ckptIter,
		NextEvent:      j.nextSeq + 1,
		Replayed:       j.replayed,
		Result:         j.result,
		Error:          j.errMsg,
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// emit appends one event to the job's buffer, assigning its sequence
// number. The buffer is bounded: a stream that falls maxJobEvents
// behind loses its oldest events and resumes from what remains.
func (j *Job) emit(ev event) {
	j.mu.Lock()
	j.nextSeq++
	ev.Seq = j.nextSeq
	ev.JobID = j.id
	j.events = append(j.events, ev)
	if ev.Event == "result" || ev.Event == "error" {
		j.termEmitted = true
	}
	if len(j.events) > maxJobEvents {
		j.events = j.events[len(j.events)-maxJobEvents:]
	}
	j.mu.Unlock()
}

// eventsFrom copies the buffered events with Seq >= from and reports
// whether the job has reached a terminal state (no more will come).
func (j *Job) eventsFrom(from int64) ([]event, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	i := sort.Search(len(j.events), func(i int) bool { return j.events[i].Seq >= from })
	out := append([]event(nil), j.events[i:]...)
	return out, j.state.terminal() && j.termEmitted
}

// checkpoint records an in-flight solver snapshot: the migration and
// restart resume point. The State's slices are private copies (the
// solver never aliases them), so retaining the pointer is safe.
func (j *Job) checkpoint(st *solver.State) {
	j.mu.Lock()
	j.ckptState = st
	j.ckptIter = st.Iter
	j.mu.Unlock()
}

// await blocks until the job reaches a terminal state.
func (j *Job) await(ctx context.Context, closing <-chan struct{}) (*SolveResult, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, fmt.Errorf("serve: %w awaiting job %s: %w", ErrCanceled, j.id, ctx.Err())
	case <-closing:
		return nil, fmt.Errorf("serve: %w while awaiting job %s", ErrClosed, j.id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// jobManager owns the job table and its journal. A manager without a
// journal dir is fully functional but volatile — jobs die with the
// process, exactly the pre-journal behavior.
type jobManager struct {
	eng        *Engine
	dir        string // journal dir; "" = volatile
	jl         *journal
	retain     int
	journalMax int64
	ckptBudget int64

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	byIdem map[string]*Job
}

// newJobManager opens (or skips) the journal and rebuilds the job
// table from it. Jobs that were queued or running when the previous
// process died come back queued with Replayed set — the engine
// re-admits them; terminal jobs are retained for idempotent
// re-submission until evicted.
func newJobManager(e *Engine, cfg Config) (*jobManager, []*Job, error) {
	m := &jobManager{
		eng:        e,
		dir:        cfg.JournalDir,
		retain:     cfg.RetainJobs,
		journalMax: cfg.JournalMaxBytes,
		ckptBudget: cfg.CheckpointBudgetBytes,
		jobs:       make(map[string]*Job),
		byIdem:     make(map[string]*Job),
	}
	if cfg.JournalDir == "" {
		return m, nil, nil
	}
	jl, recs, err := openJournal(cfg.JournalDir)
	if err != nil {
		return nil, nil, err
	}
	m.jl = jl
	for _, r := range recs {
		switch r.Op {
		case "accept":
			if _, ok := m.jobs[r.ID]; ok {
				continue
			}
			j := &Job{
				id:       r.ID,
				idem:     r.Idem,
				req:      r.Req,
				accepted: r.Time,
				state:    JobQueued,
				done:     make(chan struct{}),
			}
			sess := SessionSpec{Scenario: r.Req.Scenario, PEs: r.Req.PEs,
				Method: r.Req.Method, NodeSize: r.Req.NodeSize}
			if k, err := sess.key(cfg); err == nil {
				j.key = k
			}
			m.jobs[r.ID] = j
			m.order = append(m.order, r.ID)
			if r.Idem != "" {
				m.byIdem[r.Idem] = j
			}
		case "state":
			j, ok := m.jobs[r.ID]
			if !ok {
				continue
			}
			j.state = r.State
			j.attempts = r.Attempts
			j.migrations = r.Migrations
			j.ckptIter = r.CkptIter
			j.result = r.Result
			j.errMsg = r.Error
			if r.Error != "" {
				j.err = errors.New(r.Error)
			}
			if !r.Time.IsZero() && r.State.terminal() {
				j.finished = r.Time
				close(j.done)
			}
		}
	}
	var replay []*Job
	for _, id := range m.order {
		j := m.jobs[id]
		if j.state.terminal() {
			continue
		}
		// Accepted but unfinished: back to the queue, marked as a
		// replay. A request that no longer validates (e.g. a journal
		// from a build with wider limits) fails cleanly instead.
		j.state = JobQueued
		j.replayed = true
		if err := j.req.Validate(); err != nil {
			m.fail(j, nil, fmt.Errorf("serve: replayed job %s: %w", j.id, err))
			continue
		}
		replay = append(replay, j)
	}
	// Startup housekeeping: rewrite the journal down to the live set,
	// drop checkpoint dirs that belong to no surviving unfinished job,
	// and enforce the disk budget on what remains.
	m.compact()
	m.gcOrphans()
	m.sweepBudget()
	return m, replay, nil
}

func (m *jobManager) durable() bool { return m.jl != nil }

func (m *jobManager) ckptDir(id string) string {
	return filepath.Join(m.dir, "ckpt", id)
}

// create registers a new job (journaling its acceptance) or, when the
// idempotency key is already known, returns the existing job as dup.
func (m *jobManager) create(req *SolveRequest, a *artifact, hit bool) (j, dup *Job) {
	m.mu.Lock()
	if req.IdempotencyKey != "" {
		if prev, ok := m.byIdem[req.IdempotencyKey]; ok {
			m.mu.Unlock()
			return nil, prev
		}
	}
	j = &Job{
		id:       newJobID(),
		idem:     req.IdempotencyKey,
		req:      req,
		key:      a.key,
		fp:       a.fp,
		cacheHit: hit,
		accepted: time.Now(),
		state:    JobQueued,
		done:     make(chan struct{}),
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	if j.idem != "" {
		m.byIdem[j.idem] = j
	}
	m.evictLocked()
	m.mu.Unlock()

	jobAccepted.Add(1)
	m.jl.append(&jobRecord{Op: "accept", ID: j.id, Time: j.accepted, Idem: j.idem, Req: req})
	fp := a.fp
	j.emit(event{Event: "accepted", CacheHit: &hit, Fingerprints: &fp})
	return j, nil
}

// lookup returns the job with the given id.
func (m *jobManager) lookup(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// lookupIdem returns the job already holding an idempotency key.
func (m *jobManager) lookupIdem(idem string) *Job {
	if idem == "" {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byIdem[idem]
}

// statuses snapshots every tracked job in acceptance order.
func (m *jobManager) statuses() []JobStatus {
	m.mu.Lock()
	order := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(order))
	for _, id := range order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	return out
}

// terminalNow reads the job's terminal-ness under its own lock:
// j.state belongs to j.mu, not to the manager's map lock.
func (j *Job) terminalNow() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.terminal()
}

// evictLocked drops the oldest terminal jobs beyond the retention
// bound. Caller holds m.mu (the m.mu → j.mu order is acquired nowhere
// in reverse).
func (m *jobManager) evictLocked() {
	terminal := 0
	for _, id := range m.order {
		if m.jobs[id].terminalNow() {
			terminal++
		}
	}
	for i := 0; terminal > m.retain && i < len(m.order); {
		j := m.jobs[m.order[i]]
		if !j.terminalNow() {
			i++
			continue
		}
		delete(m.jobs, j.id)
		if j.idem != "" && m.byIdem[j.idem] == j {
			delete(m.byIdem, j.idem)
		}
		m.order = append(m.order[:i], m.order[i+1:]...)
		terminal--
	}
}

// logState appends the job's current state to the journal and compacts
// the WAL when it has outgrown its budget.
func (m *jobManager) logState(j *Job) {
	if m.jl == nil {
		return
	}
	m.jl.append(j.stateRecord())
	if m.jl.size() > m.journalMax {
		m.compact()
	}
}

func (j *Job) stateRecord() *jobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := &jobRecord{
		Op:         "state",
		ID:         j.id,
		Time:       time.Now(),
		State:      j.state,
		Attempts:   j.attempts,
		Migrations: j.migrations,
		CkptIter:   j.ckptIter,
		Replayed:   j.replayed,
		Error:      j.errMsg,
	}
	if j.state.terminal() {
		r.Result = j.result
	}
	return r
}

// compact rewrites the journal to exactly the live job set: one accept
// and one current-state record per tracked job.
func (m *jobManager) compact() {
	if m.jl == nil {
		return
	}
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	recs := make([]*jobRecord, 0, 2*len(jobs))
	for _, j := range jobs {
		recs = append(recs, &jobRecord{Op: "accept", ID: j.id, Time: j.accepted, Idem: j.idem, Req: j.req})
		recs = append(recs, j.stateRecord())
	}
	m.jl.compact(recs)
}

// setRunning moves a queued job into execution (counting the attempt).
func (m *jobManager) setRunning(j *Job) {
	j.mu.Lock()
	j.state = JobRunning
	j.attempts++
	j.mu.Unlock()
	m.logState(j)
}

// migrated records one worker-death re-dispatch: the job stays
// running, on a different worker, resuming from resumeIter.
func (m *jobManager) migrated(j *Job, deadPE int, resumeIter int) {
	j.mu.Lock()
	j.migrations++
	j.attempts++
	j.mu.Unlock()
	jobMigrations.Add(1)
	jobItersSaved.Add(int64(resumeIter))
	obs.RecordFlight(obs.FlightRecovery, "serve.job.migrate", deadPE, int64(resumeIter), 0)
	m.logState(j)
	j.emit(event{Event: "migrated", Iter: resumeIter})
}

// complete finishes a job successfully.
func (m *jobManager) complete(j *Job, res *SolveResult) {
	j.mu.Lock()
	j.state = JobCompleted
	j.result = res
	j.errMsg = ""
	j.err = nil
	j.finished = time.Now()
	close(j.done)
	j.mu.Unlock()
	jobCompleted.Add(1)
	m.logState(j)
	j.emit(event{Event: "result", Result: res})
	m.gcJob(j)
}

// fail finishes a job with an error the client cannot retry away.
func (m *jobManager) fail(j *Job, res *SolveResult, err error) {
	m.finishErr(j, JobFailed, res, err)
	jobFailed.Add(1)
}

// cancel finishes a job stopped by its deadline or its caller.
func (m *jobManager) cancel(j *Job, res *SolveResult, err error) {
	m.finishErr(j, JobCanceled, res, err)
	jobCanceled.Add(1)
}

func (m *jobManager) finishErr(j *Job, state JobState, res *SolveResult, err error) {
	j.mu.Lock()
	j.state = state
	j.result = res
	j.err = err
	j.errMsg = ""
	if err != nil {
		j.errMsg = err.Error()
	}
	j.finished = time.Now()
	close(j.done)
	j.mu.Unlock()
	m.logState(j)
	j.emit(event{Event: "error", Error: j.errMsg, Result: res})
	m.gcJob(j)
}

// requeue parks an interrupted durable job for the next process: state
// back to queued, checkpoint retained, no terminal event. The caller
// holds the engine's closing guarantee that no new attempt starts in
// this process.
func (m *jobManager) requeue(j *Job) {
	j.mu.Lock()
	j.state = JobQueued
	j.mu.Unlock()
	jobRequeued.Add(1)
	m.logState(j)
}

// gcJob deletes a terminal job's checkpoint directory — the journal
// carries its result; the snapshots have nothing left to resume.
func (m *jobManager) gcJob(j *Job) {
	if m.dir == "" {
		return
	}
	m.removeCkptDir(m.ckptDir(j.id))
	m.sweepBudget()
}

func (m *jobManager) removeCkptDir(dir string) {
	n := 0
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() {
				n++
			}
		}
	}
	if err := os.RemoveAll(dir); err == nil && n > 0 {
		jobGCPruned.Add(int64(n))
	}
}

// gcOrphans removes checkpoint directories owned by no live unfinished
// job — terminal jobs' leftovers and dirs from jobs the journal no
// longer tracks.
func (m *jobManager) gcOrphans() {
	if m.dir == "" {
		return
	}
	root := filepath.Join(m.dir, "ckpt")
	entries, err := os.ReadDir(root)
	if err != nil {
		return
	}
	m.mu.Lock()
	live := make(map[string]bool, len(m.jobs))
	for id, j := range m.jobs {
		if !j.terminalNow() {
			live[id] = true
		}
	}
	m.mu.Unlock()
	for _, e := range entries {
		if e.IsDir() && !live[e.Name()] {
			m.removeCkptDir(filepath.Join(root, e.Name()))
		}
	}
}

// sweepBudget enforces the checkpoint disk budget: when the ckpt tree
// exceeds it, whole job directories are pruned oldest-first (by the
// owning job's acceptance time; unknown dirs count as oldest), never
// touching jobs still queued or running.
func (m *jobManager) sweepBudget() {
	if m.dir == "" || m.ckptBudget <= 0 {
		return
	}
	root := filepath.Join(m.dir, "ckpt")
	entries, err := os.ReadDir(root)
	if err != nil {
		return
	}
	type cdir struct {
		path     string
		size     int64
		accepted time.Time
		live     bool
	}
	var dirs []cdir
	var total int64
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		d := cdir{path: filepath.Join(root, e.Name())}
		if sub, err := os.ReadDir(d.path); err == nil {
			for _, f := range sub {
				if info, err := f.Info(); err == nil && !f.IsDir() {
					d.size += info.Size()
				}
			}
		}
		if j, ok := m.lookup(e.Name()); ok {
			st := j.Status()
			d.accepted = st.AcceptedAt
			d.live = !st.State.terminal()
		}
		total += d.size
		dirs = append(dirs, d)
	}
	if total <= m.ckptBudget {
		return
	}
	sort.Slice(dirs, func(a, b int) bool { return dirs[a].accepted.Before(dirs[b].accepted) })
	for _, d := range dirs {
		if total <= m.ckptBudget {
			break
		}
		if d.live {
			continue
		}
		m.removeCkptDir(d.path)
		total -= d.size
	}
}

// loadResume reads a job's newest durable checkpoint, refusing one
// written against a different mesh. ok is false when there is nothing
// (or nothing valid) to resume from.
func (m *jobManager) loadResume(id string, meshID uint64) (st *solver.State, kernels int64, plan string, ok bool) {
	if m.dir == "" {
		return nil, 0, "", false
	}
	store, err := rec.NewStore(m.ckptDir(id))
	if err != nil {
		return nil, 0, "", false
	}
	ck, _, err := store.Latest()
	if err != nil || ck.MeshID != meshID {
		return nil, 0, "", false
	}
	return ck.State(), ck.FaultIter, ck.FaultPlan, true
}

// close runs the final compaction and closes the journal. Called after
// the engine has drained every running job.
func (m *jobManager) close() {
	m.compact()
	if m.jl != nil {
		m.jl.close()
	}
}

// admittedJob is one job holding an admission slot: created by
// Engine.acceptJob, consumed exactly once by run.
type admittedJob struct {
	e    *Engine
	job  *Job
	art  *artifact
	spec SolveSpec
	// done releases the admission slot and the engine tracking ref;
	// run defers it.
	done func()
}

// run executes the job to a terminal state (or a durable requeue at
// engine shutdown). It is the engine's single solve path: budgets,
// worker checkout, plain / elastic-supervised / migrating CG,
// certification, pool return, job bookkeeping.
func (aj *admittedJob) run(ctx context.Context) (*SolveResult, error) {
	e, a, j, spec := aj.e, aj.art, aj.job, aj.spec
	defer aj.done()

	// Wait for a run slot (the queued half of admission).
	runRelease, err := e.acquireRun(ctx)
	if err != nil {
		if errors.Is(err, ErrClosed) {
			return nil, aj.park(nil, fmt.Errorf("serve: %w while queued", ErrClosed))
		}
		solvesCanceled.Add(1)
		cerr := fmt.Errorf("serve: %w while queued: %w", ErrCanceled, err)
		e.jobs.cancel(j, nil, cerr)
		return nil, cerr
	}
	defer runRelease()
	e.jobs.setRunning(j)
	if hold := e.holdSolve; hold != nil {
		hold()
	}

	var plan *fault.Plan
	planStr := spec.Faults
	if j.resumed && j.resumePlan != planStr {
		// The durable checkpoint recorded the plan as of the snapshot;
		// trust it over the original request (it is the same canonical
		// string unless every event was already consumed).
		planStr = j.resumePlan
	}
	if planStr != "" {
		if plan, err = fault.Parse(planStr); err != nil {
			ferr := fmt.Errorf("%w: fault plan: %w", ErrBadRequest, err)
			solvesFailed.Add(1)
			e.jobs.fail(j, nil, ferr)
			return nil, ferr
		}
	}
	// A plan with revive events needs the elastic supervisor (only it
	// regrows); anything else can migrate between full-width workers.
	elastic := plan != nil && spec.Recovery != RecoveryMigrate

	// Budgets: iteration cap and wall deadline, both clamped to the
	// engine limits. The deadline fires through ctx at checkpoint
	// boundaries, leaving the worker healthy.
	n := 3 * a.mesh.NumNodes()
	maxIter := spec.MaxIter
	if maxIter <= 0 || maxIter > e.cfg.MaxIter {
		maxIter = e.cfg.MaxIter
	}
	if def := 4 * n; spec.MaxIter <= 0 && def < maxIter {
		maxIter = def
	}
	deadline := spec.Deadline
	if deadline <= 0 || deadline > e.cfg.MaxDeadline {
		deadline = e.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	tol := spec.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	shift := spec.Shift
	if shift <= 0 {
		shift = 20
	}

	// The per-job durable checkpoint store: every in-flight snapshot
	// lands here (pruned to a bounded tail), so a migration or a
	// process restart resumes instead of recomputing.
	var store *rec.Store
	if e.jobs.durable() {
		if store, err = rec.NewStore(e.jobs.ckptDir(j.id)); err != nil {
			store = nil
			jobJournalErrors.Add(1)
		}
	}

	b := rhsFor(spec.RHSSeed, n)
	x := make([]float64, n)
	normB := norm2(b)

	// inj is the current attempt's injector (nil without a plan on the
	// non-elastic path); kernelBase is the global kernel count already
	// executed by dead workers and previous processes.
	var inj *fault.Injector
	kernelBase := j.resumeKernels
	injIter := func() int64 {
		if inj != nil {
			return inj.Iter()
		}
		return kernelBase
	}

	emit := func(st *solver.State) {
		if d := e.cfg.CheckpointDelay; d > 0 {
			time.Sleep(d)
		}
		if slow := e.slowCheckpoint; slow != nil {
			slow(st.Iter)
		}
		j.checkpoint(st)
		if store != nil {
			if !elastic {
				// The elastic supervisor writes its own checkpoints
				// (with the shrunk partition); here we are the writer.
				ck := &rec.Checkpoint{
					MeshID: a.meshID,
					P:      int32(a.part.P),
					ElemPE: a.part.ElemPE,
					Iter:   int64(st.Iter),
					Rho:    st.Rho,
					X:      st.X,
					R:      st.R,
					PDir:   st.P,

					FaultIter: injIter(),
				}
				if plan != nil {
					ck.FaultPlan = plan.String()
				}
				if _, err := store.Save(ck); err != nil {
					obs.GetCounter("recover.checkpoint.errors").Add(1)
				}
			}
			store.Prune(jobKeepCkpts)
		}
		rel := norm2(st.R)
		if normB > 0 {
			rel /= normB
		}
		j.emit(event{Event: "progress", Iter: st.Iter, Residual: rel})
		if spec.OnProgress != nil {
			streamEvents.Add(1)
			spec.OnProgress(Progress{Iter: st.Iter, Residual: rel})
		}
	}

	scfg := solver.Config{
		MaxIter:         maxIter,
		Tol:             tol,
		CheckpointEvery: e.cfg.CheckpointEvery,
		OnCheckpoint:    emit,
	}

	res := &SolveResult{JobID: j.id, CacheHit: j.cacheHit, Fingerprints: a.fp, Width: a.part.P}
	start := time.Now()
	finish := func(sr *solver.Result, d *par.Dist) {
		if sr != nil {
			res.Iterations = sr.Iterations
			res.Residual = sr.Residual
			res.Converged = sr.Converged
		}
		res.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
		if d != nil {
			certify(res, d, shift, a.massNode, b, x, normB)
		}
		res.SolutionFP = regress.Vector(x)
		res.SolutionNorm = norm2(x)
	}

	if elastic {
		return aj.runElastic(ctx, plan, scfg, b, x, shift, kernelBase, store, res, finish)
	}

	// The migrating path: plain CG on a checked-out worker; a worker
	// death (kill fault, PE panic, barrier poison) re-dispatches the
	// job onto a fresh full-width worker resuming from the newest
	// checkpoint. Because the artifacts are canonical and the State
	// snapshot is the exact tuple entering its iteration, the migrated
	// trajectory is bit-identical to an uninterrupted solve.
	resume := j.resumeState
	maxAttempts := e.cfg.MaxAttempts
	for {
		w, err := a.checkout()
		if err != nil {
			solvesFailed.Add(1)
			e.jobs.fail(j, nil, err)
			return nil, err
		}
		if plan != nil {
			if inj, err = w.dist.InjectFaults(plan); err != nil {
				a.release(w, false)
				ferr := fmt.Errorf("%w: arming fault plan: %w", ErrBadRequest, err)
				solvesFailed.Add(1)
				e.jobs.fail(j, nil, ferr)
				return nil, ferr
			}
			inj.Advance(kernelBase)
		}
		if resume == nil {
			for i := range x {
				x[i] = 0
			}
		}
		scfg.Workspace = w.ws
		scfg.Resume = resume
		scfg.Interrupt = func(int) bool { return ctx.Err() != nil || e.closingNow() }
		op := par.Operator{D: w.dist, Shift: shift, MassNode: a.massNode}
		sr, serr := solver.CG(op, b, x, scfg)
		switch {
		case serr == nil:
			finish(sr, w.dist)
			res.Migrations = j.Status().Migrations
			if plan != nil {
				// Disarm before pooling: a healthy worker must not
				// carry this solve's plan into the next request.
				w.dist.InjectFaults(nil)
			}
			a.release(w, true)
			solvesOK.Add(1)
			e.jobs.complete(j, res)
			return res, nil
		case errors.Is(serr, solver.ErrInterrupted):
			if plan != nil {
				w.dist.InjectFaults(nil)
			}
			a.release(w, true)
			if e.closingNow() {
				finish(sr, nil)
				return res, aj.park(res, fmt.Errorf("serve: %w: engine closing", ErrClosed))
			}
			res.Canceled = true
			finish(sr, nil)
			solvesCanceled.Add(1)
			cerr := fmt.Errorf("serve: %w: %w", ErrCanceled, ctx.Err())
			e.jobs.cancel(j, res, cerr)
			return res, cerr
		default:
			deadPE, died := rec.DeadPE(serr)
			if !died && errors.Is(serr, par.ErrPoisoned) {
				died, deadPE = true, -1
			}
			last := j.lastCheckpoint()
			if died && j.Status().Attempts < maxAttempts && last != nil {
				// Live migration: the worker is dead, the job is not.
				kernelBase = injIter()
				a.release(w, false)
				resume = last
				e.jobs.migrated(j, deadPE, last.Iter)
				continue
			}
			finish(sr, nil)
			res.Migrations = j.Status().Migrations
			a.release(w, false)
			solvesFailed.Add(1)
			ferr := fmt.Errorf("serve: solve failed: %w", serr)
			e.jobs.fail(j, res, ferr)
			return res, ferr
		}
	}
}

// lastCheckpoint returns the newest in-flight snapshot.
func (j *Job) lastCheckpoint() *solver.State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ckptState
}

// park requeues a durable job interrupted by engine shutdown (the
// next process resumes it from its checkpoint); a volatile job is
// canceled — there is nowhere for it to survive.
func (aj *admittedJob) park(res *SolveResult, err error) error {
	if aj.e.jobs.durable() {
		aj.e.jobs.requeue(aj.job)
		return err
	}
	solvesCanceled.Add(1)
	aj.e.jobs.cancel(aj.job, res, err)
	return err
}

// runElastic is the supervised path for plans that shrink and regrow:
// recover.Supervise owns the injector and absorbs
// kill→shrink→revive→grow transitions; the wall deadline and engine
// shutdown ride its Stop hook. Durable checkpoints flow through the
// supervisor itself so they carry the live (possibly shrunk)
// partition.
func (aj *admittedJob) runElastic(ctx context.Context, plan *fault.Plan, scfg solver.Config,
	b, x []float64, shift float64, kernelBase int64, store *rec.Store,
	res *SolveResult, finish func(*solver.Result, *par.Dist)) (*SolveResult, error) {

	e, a, j := aj.e, aj.art, aj.job
	w, err := a.checkout()
	if err != nil {
		solvesFailed.Add(1)
		e.jobs.fail(j, nil, err)
		return nil, err
	}
	if j.resumeState != nil {
		scfg.Resume = j.resumeState
	}
	scfg.Workspace = w.ws
	solvesSupervise.Add(1)
	sys := &rec.System{
		Mesh: a.mesh, Material: a.mat, Part: a.part,
		Shift: shift, MassNode: a.massNode, NodeOf: a.nodeOf,
	}
	out, serr := rec.Supervise(w.dist, sys, b, x, rec.SuperviseConfig{
		Solver:         scfg,
		Plan:           plan,
		Store:          store,
		MeshID:         a.meshID,
		AdvanceKernels: kernelBase,
		Stop:           func() bool { return ctx.Err() != nil || e.closingNow() },
	})
	var final *par.Dist
	healthy := false
	if out != nil {
		res.Shrinks = out.Shrinks
		res.Grows = out.Grows
		res.Migrations = out.Migrations
		res.DeadPEs = out.DeadPEs
		res.RevivedPEs = out.RevivedPEs
		if out.Part != nil {
			res.Width = out.Part.P
		}
		final = out.Dist
		healthy = out.Dist == w.dist && serr == nil
	}
	var sr *solver.Result
	if out != nil {
		sr = out.Result
	}
	switch {
	case serr == nil:
		finish(sr, final)
		if healthy {
			w.dist.InjectFaults(nil)
		}
		a.release(w, healthy)
		if final != nil && final != w.dist {
			final.Close()
		}
		solvesOK.Add(1)
		e.jobs.complete(j, res)
		return res, nil
	case errors.Is(serr, solver.ErrInterrupted):
		if final == w.dist {
			w.dist.InjectFaults(nil)
		}
		a.release(w, final == w.dist)
		if final != nil && final != w.dist {
			final.Close()
		}
		if e.closingNow() {
			finish(sr, nil)
			return res, aj.park(res, fmt.Errorf("serve: %w: engine closing", ErrClosed))
		}
		res.Canceled = true
		finish(sr, nil)
		solvesCanceled.Add(1)
		cerr := fmt.Errorf("serve: %w: %w", ErrCanceled, ctx.Err())
		e.jobs.cancel(j, res, cerr)
		return res, cerr
	default:
		finish(sr, nil)
		a.release(w, false)
		if final != nil && final != w.dist {
			final.Close()
		}
		solvesFailed.Add(1)
		ferr := fmt.Errorf("serve: supervised solve failed: %w", serr)
		e.jobs.fail(j, res, ferr)
		return res, ferr
	}
}
