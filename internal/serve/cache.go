package serve

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/comm"
	"repro/internal/fem"
	"repro/internal/material"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/partition"
	iq "repro/internal/quake"
	rec "repro/internal/recover"
	"repro/internal/regress"
	"repro/internal/solver"
)

// The serving metrics. Resolved once at package init (the obs registry
// is process-global); all are documented in docs/OBSERVABILITY.md and
// covered by the doc-drift guard.
var (
	cacheHits       = obs.GetCounter("serve.cache.hits")
	cacheMisses     = obs.GetCounter("serve.cache.misses")
	admitRejected   = obs.GetCounter("serve.admit.rejected")
	queueDepth      = obs.GetGauge("serve.queue.depth")
	inflight        = obs.GetGauge("serve.inflight")
	solvesOK        = obs.GetCounter("serve.solves.ok")
	solvesCanceled  = obs.GetCounter("serve.solves.canceled")
	solvesFailed    = obs.GetCounter("serve.solves.failed")
	poolSpawns      = obs.GetCounter("serve.pool.spawns")
	poolReuses      = obs.GetCounter("serve.pool.reuses")
	poolDiscards    = obs.GetCounter("serve.pool.discards")
	sessionsOpened  = obs.GetCounter("serve.sessions.opened")
	sessionsClosed  = obs.GetCounter("serve.sessions.closed")
	streamEvents    = obs.GetCounter("serve.stream.events")
	solvesSupervise = obs.GetCounter("serve.solves.supervised")
)

// Key is the cache key of a solve's setup artifacts: everything the
// expensive pipeline stages depend on, and nothing they don't. Two
// requests with equal keys share one mesh, partition, schedule,
// assembly, and warm-worker pool.
type Key struct {
	Scenario string `json:"scenario"`
	P        int    `json:"pes"`
	Method   string `json:"method"`
	NodeSize int    `json:"nodesize"`
}

func (k Key) String() string {
	return fmt.Sprintf("%s/p%d/%s/node%d", k.Scenario, k.P, k.Method, k.NodeSize)
}

// Fingerprint is the FNV-1a hash of the canonical key encoding — the
// same hash family the regress golden file uses for the artifacts the
// key names.
func (k Key) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(k.String())) // fnv.Write never errors
	return h.Sum64()
}

// Fingerprints are the deterministic identities of one cache entry's
// artifacts: the key hash plus the regress FNV-1a fingerprints of the
// built mesh, partition, and exchange schedule. Equal fingerprints
// mean bit-identical artifacts — the same hashes the golden regression
// suite pins, so a client can correlate a served solve with the exact
// pinned pipeline state.
type Fingerprints struct {
	Key       uint64 `json:"key"`
	Mesh      uint64 `json:"mesh"`
	Partition uint64 `json:"partition"`
	Schedule  uint64 `json:"schedule"`
}

// entry is one cache slot: built at most once, shared by every
// request that hashes to its key.
type entry struct {
	once sync.Once
	art  *artifact
	err  error
}

// worker is one warm pool member: a persistent-PE distributed operator
// plus a reusable CG workspace. A worker serves one solve at a time.
type worker struct {
	dist *par.Dist
	ws   *solver.Workspace
}

// artifact is everything a (scenario, p, method, nodesize) tuple needs
// to solve, built once and kept warm: the immutable setup products and
// a bounded pool of idle workers.
type artifact struct {
	key  Key
	fp   Fingerprints
	mesh *mesh.Mesh
	// meshID is the recover-layer checkpoint identity of the mesh; a
	// durable checkpoint written against a different mesh is refused at
	// resume.
	meshID uint64
	mat    *material.Model
	// massNode is the assembled lumped mass (per mesh node), the
	// diagonal the shifted CG operator adds.
	massNode []float64
	part     *partition.Partition
	prof     *partition.Profile
	sched    *comm.Schedule
	// nodeOf is the two-level aggregation map (nil when nodesize ≤ 1);
	// it is installed on every worker's Dist.
	nodeOf func(pe int32) int32

	mu     sync.Mutex
	idle   []*worker
	warm   int
	closed bool
}

// artifact returns the cache entry for k, building it on first use.
// hit reports whether the artifacts already existed. Concurrent first
// requests for one key build once; the losers of the race block on the
// build and then count as hits (the setup they skipped is exactly the
// point).
func (e *Engine) artifact(k Key) (a *artifact, hit bool, err error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, false, ErrClosed
	}
	en, ok := e.entries[k]
	if !ok {
		en = &entry{}
		e.entries[k] = en
	}
	e.mu.Unlock()

	built := false
	en.once.Do(func() {
		built = true
		cacheMisses.Add(1)
		en.art, en.err = e.build(k)
	})
	if en.err != nil {
		return nil, false, en.err
	}
	if !built {
		cacheHits.Add(1)
	}
	return en.art, !built, nil
}

// build runs the full setup pipeline for a key — mesh, partition,
// analysis, schedule, assembly, fingerprints — and pre-spawns one warm
// worker so the first solve pays no Dist construction either.
func (e *Engine) build(k Key) (*artifact, error) {
	sp := obs.StartSpan(obs.TrackDriver, "serve", "serve.build")
	defer sp.End()

	scen, err := e.cfg.Scenarios(k.Scenario)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	m, err := scen.Mesh()
	if err != nil {
		return nil, fmt.Errorf("serve: meshing %s: %w", k.Scenario, err)
	}
	method, err := partition.MethodByName(k.Method)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	pt, err := partition.PartitionMesh(m, k.P, method, 1)
	if err != nil {
		return nil, fmt.Errorf("serve: partitioning %s: %w", k, err)
	}
	pr, err := partition.Analyze(m, pt)
	if err != nil {
		return nil, fmt.Errorf("serve: analyzing %s: %w", k, err)
	}
	sched, err := comm.FromMatrix(pr.Msg)
	if err != nil {
		return nil, fmt.Errorf("serve: scheduling %s: %w", k, err)
	}
	mat := iq.Material()
	sys, err := fem.Assemble(m, mat)
	if err != nil {
		return nil, fmt.Errorf("serve: assembling %s: %w", k.Scenario, err)
	}
	a := &artifact{
		key:    k,
		mesh:   m,
		meshID: rec.MeshID(m),
		mat:    mat,
		// The mesh and massNode are shared across all workers and
		// solves; both are treated as immutable from here on.
		massNode: sys.MassNode,
		part:     pt,
		prof:     pr,
		sched:    sched,
		warm:     e.cfg.WarmPool,
		fp: Fingerprints{
			Key:       k.Fingerprint(),
			Mesh:      regress.Mesh(m),
			Partition: regress.Partition(pt),
			Schedule:  regress.Schedule(sched),
		},
	}
	if k.NodeSize > 1 {
		a.nodeOf = comm.ContiguousNodes(k.NodeSize)
	}
	w, err := a.spawn()
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.idle = append(a.idle, w)
	a.mu.Unlock()
	return a, nil
}

// spawn builds a fresh worker from the canonical artifacts.
func (a *artifact) spawn() (*worker, error) {
	d, err := par.NewDist(a.mesh, a.mat, a.part, a.prof)
	if err != nil {
		return nil, fmt.Errorf("serve: building Dist for %s: %w", a.key, err)
	}
	if a.nodeOf != nil {
		if err := d.SetAggregation(a.nodeOf); err != nil {
			d.Close()
			return nil, fmt.Errorf("serve: aggregating %s: %w", a.key, err)
		}
	}
	poolSpawns.Add(1)
	return &worker{dist: d, ws: solver.NewWorkspace(3 * a.mesh.NumNodes())}, nil
}

// checkout takes an idle warm worker, or spawns a transient one when
// the pool is empty (concurrent solves beyond WarmPool).
func (a *artifact) checkout() (*worker, error) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(a.idle); n > 0 {
		w := a.idle[n-1]
		a.idle = a.idle[:n-1]
		a.mu.Unlock()
		poolReuses.Add(1)
		return w, nil
	}
	a.mu.Unlock()
	return a.spawn()
}

// release returns a worker to the pool. Unhealthy workers (poisoned or
// superseded Dists) and overflow beyond the warm bound are closed
// instead; Dist.Close is idempotent, so a Dist the recovery supervisor
// already closed is safe here.
func (a *artifact) release(w *worker, healthy bool) {
	if healthy {
		a.mu.Lock()
		if !a.closed && len(a.idle) < a.warm {
			a.idle = append(a.idle, w)
			a.mu.Unlock()
			return
		}
		a.mu.Unlock()
	}
	poolDiscards.Add(1)
	w.dist.Close()
}

// Warm reports the idle warm workers currently pooled.
func (a *artifact) Warm() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.idle)
}

// close releases the pooled workers and refuses further checkouts.
func (a *artifact) close() {
	a.mu.Lock()
	idle := a.idle
	a.idle = nil
	a.closed = true
	a.mu.Unlock()
	for _, w := range idle {
		w.dist.Close()
	}
}
