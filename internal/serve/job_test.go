package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestJobSurvivesWorkerKill is the tentpole's live-migration pin: a
// kill fault murders the worker mid-solve and the job must finish on a
// different pool worker — certified, at full width, bit-identical to
// an uninterrupted reference solve — with the serve.job.* metrics
// proving it resumed from a checkpoint instead of starting over.
func TestJobSurvivesWorkerKill(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	e := newTestEngine(t, Config{})
	srv := startServer(t, e)

	// The uninterrupted reference (also the cold build).
	const plain = `{"scenario":"tiny-mig","pes":4,"tol":1e-10}`
	ref := mustSolve(t, srv, plain)
	if !ref.Converged || !ref.Certified {
		t.Fatalf("reference solve: converged=%v certified=%v", ref.Converged, ref.Certified)
	}

	migrations0 := jobMigrations.Value()
	saved0 := jobItersSaved.Value()
	supervised0 := solvesSupervise.Value()
	res := mustSolve(t, srv, `{"scenario":"tiny-mig","pes":4,"tol":1e-10,"faults":"kill:pe=1,iter=5","recovery":"migrate"}`)
	if !res.Converged {
		t.Fatal("migrated solve did not converge")
	}
	if !res.Certified || res.CertResidual > 1e-6 {
		t.Fatalf("migrated answer not certified: certified=%v residual=%g", res.Certified, res.CertResidual)
	}
	if res.Width != 4 {
		t.Fatalf("migrated solve finished at width %d, want the full 4 (no shrink)", res.Width)
	}
	if res.Migrations != 1 {
		t.Fatalf("result reports %d migrations, want exactly 1", res.Migrations)
	}
	if res.SolutionFP != ref.SolutionFP {
		t.Fatalf("migrated solve diverged from the uninterrupted reference: fp %x vs %x",
			res.SolutionFP, ref.SolutionFP)
	}
	if res.JobID == "" {
		t.Fatal("solve result carries no job id")
	}
	if d := jobMigrations.Value() - migrations0; d != 1 {
		t.Fatalf("serve.job.migrations advanced by %d, want 1", d)
	}
	// The resume point proves pre-checkpoint iterations were NOT re-run.
	if d := jobItersSaved.Value() - saved0; d < 1 {
		t.Fatalf("serve.job.resumed_iters_saved advanced by %d, want >= 1", d)
	}
	// Migration must not have gone through the elastic supervisor.
	if d := solvesSupervise.Value() - supervised0; d != 0 {
		t.Fatalf("serve.solves.supervised advanced by %d on the migrate path, want 0", d)
	}

	// The job record agrees: two dispatches, one forced by the death.
	st, ok := e.Job(res.JobID)
	if !ok {
		t.Fatalf("job %s not tracked", res.JobID)
	}
	if st.State != JobCompleted || st.Attempts != 2 || st.Migrations != 1 {
		t.Fatalf("job status after migration: %+v", st)
	}

	// The tuple keeps serving on a healthy worker afterwards.
	after := mustSolve(t, srv, plain)
	if !after.Converged || !after.CacheHit {
		t.Fatalf("tuple dead after migration: converged=%v hit=%v", after.Converged, after.CacheHit)
	}
}

// TestJobSurvivesProcessRestart is the tentpole's crash-recovery pin:
// an engine is closed mid-solve (the SIGTERM path) and a fresh engine
// on the same journal directory must replay the job, resume it from
// its durable checkpoint, and finish it — then garbage-collect the
// checkpoints it no longer needs.
func TestJobSurvivesProcessRestart(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()

	e1 := newTestEngine(t, Config{JournalDir: dir, CheckpointDelay: 2 * time.Millisecond})
	st, err := e1.Submit(&SolveRequest{Scenario: "tiny-rst", PEs: 2, Tol: 1e-12})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Wait until the solve is demonstrably mid-flight with durable
	// checkpoints behind it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, ok := e1.Job(st.ID)
		if !ok {
			t.Fatalf("job %s vanished", st.ID)
		}
		if cur.State.terminal() {
			t.Fatalf("job finished before the forced restart (state %s) — pacing too weak", cur.State)
		}
		if cur.CheckpointIter >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached checkpoint 3: %+v", cur)
		}
		time.Sleep(time.Millisecond)
	}
	requeued0 := jobRequeued.Value()
	e1.Close() // the running job parks at its next checkpoint
	if d := jobRequeued.Value() - requeued0; d != 1 {
		t.Fatalf("serve.job.requeued advanced by %d on shutdown, want 1", d)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt", st.ID)); err != nil {
		t.Fatalf("parked job left no durable checkpoints: %v", err)
	}

	// The restarted process: same journal, fresh everything else.
	replays0 := jobReplays.Value()
	saved0 := jobItersSaved.Value()
	gc0 := jobGCPruned.Value()
	e2 := newTestEngine(t, Config{JournalDir: dir})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := e2.AwaitJob(ctx, st.ID)
	if err != nil {
		t.Fatalf("awaiting replayed job: %v", err)
	}
	if !res.Converged || !res.Certified {
		t.Fatalf("replayed job: converged=%v certified=%v", res.Converged, res.Certified)
	}
	if res.JobID != st.ID {
		t.Fatalf("replayed result names job %q, want %q", res.JobID, st.ID)
	}
	fin, ok := e2.Job(st.ID)
	if !ok || fin.State != JobCompleted || !fin.Replayed {
		t.Fatalf("replayed job status: ok=%v %+v", ok, fin)
	}
	if d := jobReplays.Value() - replays0; d != 1 {
		t.Fatalf("serve.job.replays advanced by %d, want 1", d)
	}
	// It resumed at iteration >= 3 rather than recomputing from zero.
	if d := jobItersSaved.Value() - saved0; d < 3 {
		t.Fatalf("serve.job.resumed_iters_saved advanced by %d, want >= 3", d)
	}
	// A deterministic re-run of the same spec must agree bit for bit.
	ref, err := e2.Solve(context.Background(), &SolveRequest{Scenario: "tiny-rst", PEs: 2, Tol: 1e-12})
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	if res.SolutionFP != ref.SolutionFP {
		t.Fatalf("replayed solve diverged from reference: fp %x vs %x", res.SolutionFP, ref.SolutionFP)
	}
	// Terminal jobs keep no checkpoints (GC satellite).
	if _, err := os.Stat(filepath.Join(dir, "ckpt", st.ID)); !os.IsNotExist(err) {
		t.Fatalf("completed job's checkpoint dir still present (stat err %v)", err)
	}
	if d := jobGCPruned.Value() - gc0; d < 1 {
		t.Fatalf("serve.job.gc.pruned advanced by %d, want >= 1", d)
	}
}

// TestIdempotencyKeyDedups: a retried submission with the same key
// binds to the original job instead of running a second solve.
func TestIdempotencyKeyDedups(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	e := newTestEngine(t, Config{})
	srv := startServer(t, e)
	const body = `{"scenario":"tiny-idem","pes":2,"tol":1e-9,"idempotency_key":"retry-me"}`

	accepted0 := jobAccepted.Value()
	dedup0 := jobDedup.Value()
	first := mustSolve(t, srv, body)
	again := mustSolve(t, srv, body)
	if first.JobID == "" || first.JobID != again.JobID {
		t.Fatalf("idempotent retry got a different job: %q vs %q", first.JobID, again.JobID)
	}
	if first.SolutionFP != again.SolutionFP {
		t.Fatalf("idempotent retry diverged: %x vs %x", first.SolutionFP, again.SolutionFP)
	}
	if d := jobAccepted.Value() - accepted0; d != 1 {
		t.Fatalf("serve.job.accepted advanced by %d for a retried submission, want 1", d)
	}
	if d := jobDedup.Value() - dedup0; d != 1 {
		t.Fatalf("serve.job.dedup advanced by %d, want 1", d)
	}
	// A different key is a different job.
	other := mustSolve(t, srv, `{"scenario":"tiny-idem","pes":2,"tol":1e-9,"idempotency_key":"someone-else"}`)
	if other.JobID == first.JobID {
		t.Fatal("distinct idempotency keys shared a job")
	}
}

// TestDetachAndJobsAPI: a detached submission answers 202 immediately
// with a pollable job, the jobs list tracks it, and its ndjson event
// feed is resumable from an arbitrary sequence number.
func TestDetachAndJobsAPI(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	e := newTestEngine(t, Config{})
	srv := startServer(t, e)
	client := srv.Client()

	resp := postSolve(t, srv, `{"scenario":"tiny-jobs","pes":2,"tol":1e-9,"detach":true}`)
	var st JobStatus
	err := json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("detach: status %d, job %+v, err %v", resp.StatusCode, st, err)
	}

	// Poll the job to completion through the API.
	deadline := time.Now().Add(30 * time.Second)
	for {
		r2, err := client.Get(srv.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r2.Body).Decode(&st)
		r2.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("detached job never finished: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if st.State != JobCompleted || st.Result == nil || !st.Result.Converged {
		t.Fatalf("detached job: %+v", st)
	}

	// The list endpoint knows it.
	r3, err := client.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err = json.NewDecoder(r3.Body).Decode(&list)
	r3.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range list.Jobs {
		found = found || j.ID == st.ID
	}
	if !found {
		t.Fatalf("job %s missing from /v1/jobs", st.ID)
	}

	// Full event feed: accepted first, result last, seq contiguous.
	evs := readEvents(t, client, srv.URL+"/v1/jobs/"+st.ID+"/events")
	if len(evs) < 3 {
		t.Fatalf("want >= 3 events (accepted, progress, result), got %+v", evs)
	}
	if evs[0].Event != "accepted" || evs[0].Seq != 1 {
		t.Fatalf("first event: %+v", evs[0])
	}
	last := evs[len(evs)-1]
	if last.Event != "result" || last.Result == nil || !last.Result.Converged {
		t.Fatalf("last event: %+v", last)
	}
	for i, ev := range evs {
		if ev.Seq != int64(i)+1 {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.JobID != st.ID {
			t.Fatalf("event %d names job %q, want %q", i, ev.JobID, st.ID)
		}
	}

	// Resume mid-stream: from the terminal event's seq, exactly one
	// event comes back.
	tail := readEvents(t, client, fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", srv.URL, st.ID, last.Seq))
	if len(tail) != 1 || tail[0].Event != "result" || tail[0].Seq != last.Seq {
		t.Fatalf("resumed stream: %+v", tail)
	}
}

// readEvents consumes one ndjson stream to EOF.
func readEvents(t *testing.T, client *http.Client, url string) []event {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, msg)
	}
	var evs []event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad ndjson line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return evs
}

// TestStreamIdempotentResume: retrying a streamed solve with the same
// idempotency key and a from_event offset continues the original job's
// feed without re-running it.
func TestStreamIdempotentResume(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	e := newTestEngine(t, Config{})
	srv := startServer(t, e)
	const body = `{"scenario":"tiny-resume","pes":2,"tol":1e-9,"stream":true,"idempotency_key":"stream-1"}`

	full := streamSolveEvents(t, srv, body)
	if len(full) < 3 || full[0].Event != "accepted" || full[len(full)-1].Event != "result" {
		t.Fatalf("first stream: %+v", full)
	}
	jobID := full[0].JobID

	accepted0 := jobAccepted.Value()
	resumeAt := full[len(full)-1].Seq
	retry := streamSolveEvents(t, srv, fmt.Sprintf(
		`{"scenario":"tiny-resume","pes":2,"tol":1e-9,"stream":true,"idempotency_key":"stream-1","from_event":%d}`, resumeAt))
	if d := jobAccepted.Value() - accepted0; d != 0 {
		t.Fatalf("streamed retry accepted %d new jobs, want 0", d)
	}
	if len(retry) != 1 || retry[0].Event != "result" || retry[0].JobID != jobID {
		t.Fatalf("resumed retry stream: %+v", retry)
	}
}

// streamSolveEvents posts one streaming solve and consumes the feed.
func streamSolveEvents(t *testing.T, srv *httptest.Server, body string) []event {
	t.Helper()
	resp := postSolve(t, srv, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %d: %s", resp.StatusCode, msg)
	}
	var evs []event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad ndjson line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestRetryAfterJitter pins the anti-stampede satellite: the 429
// Retry-After value is drawn from [1,3], not a constant.
func TestRetryAfterJitter(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := retryAfterSeconds()
		if v < 1 || v > 3 {
			t.Fatalf("retryAfterSeconds() = %d outside [1,3]", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Fatalf("200 draws produced a single value %v — no jitter", seen)
	}
}

// TestOrphanCheckpointGC: checkpoint directories that belong to no
// journaled job are swept at engine startup.
func TestOrphanCheckpointGC(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	orphan := filepath.Join(dir, "ckpt", "j-dead-beef")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, "ckpt-000000001.qck"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	gc0 := jobGCPruned.Value()
	newTestEngine(t, Config{JournalDir: dir})
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan checkpoint dir survived startup GC (stat err %v)", err)
	}
	if d := jobGCPruned.Value() - gc0; d < 1 {
		t.Fatalf("serve.job.gc.pruned advanced by %d, want >= 1", d)
	}
}

// TestJobFailsWhenAttemptsExhausted: with a migration budget of zero
// (MaxAttempts=1) a killed worker is a terminal failure, recorded as
// such on the job.
func TestJobFailsWhenAttemptsExhausted(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	e := newTestEngine(t, Config{MaxAttempts: 1})
	failed0 := jobFailed.Value()
	migrations0 := jobMigrations.Value()
	_, err := e.Solve(context.Background(),
		&SolveRequest{Scenario: "tiny-exh", PEs: 4, Faults: "kill:pe=1,iter=5", Recovery: RecoveryMigrate})
	if err == nil {
		t.Fatal("kill with no migration budget did not fail")
	}
	if d := jobFailed.Value() - failed0; d != 1 {
		t.Fatalf("serve.job.failed advanced by %d, want 1", d)
	}
	if d := jobMigrations.Value() - migrations0; d != 0 {
		t.Fatalf("serve.job.migrations advanced by %d with MaxAttempts=1, want 0", d)
	}
	// The failed attempt is on the record.
	var st JobStatus
	for _, s := range e.Jobs() {
		if s.State == JobFailed {
			st = s
		}
	}
	if st.ID == "" || st.Attempts != 1 || st.Error == "" {
		t.Fatalf("failed job status: %+v", st)
	}
}

// TestTerminalJobEviction: RetainJobs bounds the in-memory record;
// the oldest terminal jobs fall off while live jobs are untouchable.
func TestTerminalJobEviction(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	e := newTestEngine(t, Config{RetainJobs: 2})
	var ids []string
	for i := 0; i < 5; i++ {
		res, err := e.Solve(context.Background(),
			&SolveRequest{Scenario: "tiny-evict", PEs: 2, Tol: 1e-9, RHSSeed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, res.JobID)
	}
	// Eviction runs at admission, so the cap is RetainJobs terminal
	// records plus the job being admitted.
	if got := len(e.Jobs()); got != 3 {
		t.Fatalf("%d jobs retained, want 3", got)
	}
	for _, id := range ids[:2] {
		if _, ok := e.Job(id); ok {
			t.Fatalf("old terminal job %s still tracked past the retention bound", id)
		}
	}
	if _, ok := e.Job(ids[4]); !ok {
		t.Fatal("newest job evicted")
	}
}

// TestJobsAPIErrors: unknown IDs are 404s and a malformed event
// cursor is a 400.
func TestJobsAPIErrors(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	e := newTestEngine(t, Config{})
	srv := startServer(t, e)
	client := srv.Client()
	for _, url := range []string{"/v1/jobs/nope", "/v1/jobs/nope/events"} {
		resp, err := client.Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", url, resp.StatusCode)
		}
	}
	res := mustSolve(t, srv, `{"scenario":"tiny-apierr","pes":2,"tol":1e-9}`)
	for _, q := range []string{"?from=-1", "?from=banana"} {
		resp, err := client.Get(srv.URL + "/v1/jobs/" + res.JobID + "/events" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("events%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestMigrateRejectsRevive: the migrate strategy cannot honor revive
// events (only the elastic supervisor regrows), so the combination is
// a 400, not a surprise at solve time.
func TestMigrateRejectsRevive(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	e := newTestEngine(t, Config{})
	srv := startServer(t, e)
	resp := postSolve(t, srv,
		`{"scenario":"tiny-rej","pes":4,"faults":"kill:pe=1,iter=5;revive:pe=1,iter=15","recovery":"migrate"}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("migrate+revive status %d, want 400", resp.StatusCode)
	}
}
