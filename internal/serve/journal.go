package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The job journal is the engine's write-ahead log: one append-only
// file of CRC-checked records, each a jobRecord JSON document framed
// by a fixed binary header. Appends are synced before the engine
// acknowledges the job, so "accepted" means "survives a process
// crash". The framing follows the QSIMCKPT discipline from
// internal/recover/checkpoint.go — magic, explicit payload length,
// CRC-32C, a strict bounds-checked decoder — scaled down to a record
// stream: replay walks records until the first torn or corrupt frame,
// truncates the tail there (a crash mid-append leaves at worst one
// torn final record), and rebuilds the job table from what survived.
//
//	offset size  field
//	0      4     magic "QJL1"
//	4      4     payload length in bytes (little-endian)
//	8      4     CRC-32C (Castagnoli) of the payload
//	12     …     payload (one JSON jobRecord)
const (
	journalMagic     = "QJL1"
	journalHeaderLen = 4 + 4 + 4
	// maxJournalRecord bounds one record's payload so a corrupted
	// length field cannot demand gigabytes; a SolveRequest body is
	// itself capped at maxRequestBytes, which this dominates.
	maxJournalRecord = maxRequestBytes + (1 << 16)
	// journalFile is the WAL's name inside Config.JournalDir.
	journalFile = "jobs.wal"
)

// jobRecord is one journal entry. Op "accept" carries the request and
// creates the job; op "state" moves it through the lifecycle and, at a
// terminal state, carries the result. Records for one job ID apply in
// file order; replay keeps the last state seen.
type jobRecord struct {
	Op   string    `json:"op"` // accept | state
	ID   string    `json:"id"`
	Time time.Time `json:"time"`

	// accept fields.
	Idem string        `json:"idem,omitempty"`
	Req  *SolveRequest `json:"req,omitempty"`

	// state fields.
	State      JobState     `json:"state,omitempty"`
	Attempts   int          `json:"attempts,omitempty"`
	Migrations int          `json:"migrations,omitempty"`
	CkptIter   int          `json:"ckpt_iter,omitempty"`
	Replayed   bool         `json:"replayed,omitempty"`
	Result     *SolveResult `json:"result,omitempty"`
	Error      string       `json:"error,omitempty"`
}

// encodeJournalRecord frames one record for appending.
func encodeJournalRecord(rec *jobRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding journal record: %w", err)
	}
	if len(payload) > maxJournalRecord {
		return nil, fmt.Errorf("serve: journal record %d bytes exceeds %d", len(payload), maxJournalRecord)
	}
	buf := make([]byte, 0, journalHeaderLen+len(payload))
	buf = append(buf, journalMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoliJL))
	return append(buf, payload...), nil
}

var castagnoliJL = crc32.MakeTable(crc32.Castagnoli)

// errJournalTorn marks a frame that stops short of its declared
// length: the normal artifact of a crash mid-append, distinguished
// from outright corruption only for observability (both truncate).
var errJournalTorn = fmt.Errorf("serve: journal record torn")

// decodeJournalRecord parses one framed record from the head of data,
// returning the record and the bytes consumed. It never panics on
// hostile input and never reads past the declared payload
// (FuzzDecodeJournal holds it to that).
func decodeJournalRecord(data []byte) (*jobRecord, int, error) {
	if len(data) < journalHeaderLen {
		return nil, 0, errJournalTorn
	}
	if string(data[:4]) != journalMagic {
		return nil, 0, fmt.Errorf("serve: journal record has bad magic")
	}
	plen := binary.LittleEndian.Uint32(data[4:])
	if plen > maxJournalRecord {
		return nil, 0, fmt.Errorf("serve: journal record claims %d bytes", plen)
	}
	if uint32(len(data)-journalHeaderLen) < plen {
		return nil, 0, errJournalTorn
	}
	payload := data[journalHeaderLen : journalHeaderLen+int(plen)]
	if sum := crc32.Checksum(payload, castagnoliJL); sum != binary.LittleEndian.Uint32(data[8:]) {
		return nil, 0, fmt.Errorf("serve: journal record checksum mismatch")
	}
	rec := &jobRecord{}
	if err := json.Unmarshal(payload, rec); err != nil {
		return nil, 0, fmt.Errorf("serve: journal record payload: %w", err)
	}
	switch rec.Op {
	case "accept":
		if rec.Req == nil {
			return nil, 0, fmt.Errorf("serve: journal accept record without a request")
		}
	case "state":
		if !rec.State.valid() {
			return nil, 0, fmt.Errorf("serve: journal state record with state %q", rec.State)
		}
	default:
		return nil, 0, fmt.Errorf("serve: journal record op %q", rec.Op)
	}
	if rec.ID == "" {
		return nil, 0, fmt.Errorf("serve: journal record without a job id")
	}
	return rec, journalHeaderLen + int(plen), nil
}

// journal is the open WAL: appends under a mutex, fsync per record,
// compaction by tmp+rename. A nil *journal is valid and inert (the
// engine without a JournalDir), so call sites stay unconditional.
type journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	bytes  int64
	closed bool
}

// openJournal opens (creating if needed) dir's WAL and replays it,
// returning the surviving records in file order. A torn or corrupt
// tail is truncated away — counted, not fatal — so a crash mid-append
// costs at most the record being written.
func openJournal(dir string) (*journal, []*jobRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("serve: reading journal: %w", err)
	}
	var recs []*jobRecord
	good := 0
	for good < len(data) {
		rec, n, derr := decodeJournalRecord(data[good:])
		if derr != nil {
			jobJournalDropped.Add(1)
			break
		}
		recs = append(recs, rec)
		good += n
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	if err := f.Truncate(int64(good)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: truncating journal tail: %w", err)
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: seeking journal: %w", err)
	}
	j := &journal{f: f, path: path, bytes: int64(good)}
	jobJournalBytes.Set(float64(j.bytes))
	return j, recs, nil
}

// append frames, writes, and syncs one record. Errors are counted and
// returned; the in-memory job table stays authoritative either way.
func (j *journal) append(rec *jobRecord) error {
	if j == nil {
		return nil
	}
	buf, err := encodeJournalRecord(rec)
	if err != nil {
		jobJournalErrors.Add(1)
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		jobJournalErrors.Add(1)
		return fmt.Errorf("serve: journal %w", ErrClosed)
	}
	if _, err := j.f.Write(buf); err != nil {
		jobJournalErrors.Add(1)
		return fmt.Errorf("serve: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		jobJournalErrors.Add(1)
		return fmt.Errorf("serve: journal sync: %w", err)
	}
	j.bytes += int64(len(buf))
	jobJournalRecords.Add(1)
	jobJournalBytes.Set(float64(j.bytes))
	return nil
}

// size reports the journal's current byte length.
func (j *journal) size() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bytes
}

// compact atomically rewrites the WAL to exactly recs (the live job
// set re-serialized), dropping every superseded state record and every
// evicted job. The rewrite goes to a temp file, syncs, and renames
// over the WAL, so a crash mid-compaction leaves either the old or the
// new journal, never a mix.
func (j *journal) compact(recs []*jobRecord) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("serve: journal %w", ErrClosed)
	}
	tmp, err := os.CreateTemp(filepath.Dir(j.path), "jobs-*.tmp")
	if err != nil {
		jobJournalErrors.Add(1)
		return fmt.Errorf("serve: journal compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var total int64
	for _, rec := range recs {
		buf, err := encodeJournalRecord(rec)
		if err != nil {
			tmp.Close()
			jobJournalErrors.Add(1)
			return err
		}
		if _, err := tmp.Write(buf); err != nil {
			tmp.Close()
			jobJournalErrors.Add(1)
			return fmt.Errorf("serve: journal compact: %w", err)
		}
		total += int64(len(buf))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		jobJournalErrors.Add(1)
		return fmt.Errorf("serve: journal compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		jobJournalErrors.Add(1)
		return fmt.Errorf("serve: journal compact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		jobJournalErrors.Add(1)
		return fmt.Errorf("serve: journal compact rename: %w", err)
	}
	j.f.Close()
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.closed = true
		jobJournalErrors.Add(1)
		return fmt.Errorf("serve: reopening compacted journal: %w", err)
	}
	j.f = f
	j.bytes = total
	jobJournalCompactions.Add(1)
	jobJournalBytes.Set(float64(j.bytes))
	return nil
}

// close flushes and closes the WAL file.
func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	j.f.Sync()
	j.f.Close()
}
